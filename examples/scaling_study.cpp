// Scaling study: measures real hybrid-parallel iteration time across
// in-process rank counts and exchange strategies on THIS machine, then asks
// the cluster model what the same configuration would do on the paper's
// 64-socket OPA cluster.
//
//   $ ./scaling_study
#include <cstdio>

#include "cluster/simulator.hpp"
#include "common/timer.hpp"
#include "core/dist_trainer.hpp"

using namespace dlrm;

namespace {

DlrmConfig demo_config() {
  DlrmConfig c;
  c.name = "scaling-demo";
  c.minibatch = 1024;
  c.global_batch_strong = 1024;
  c.local_batch_weak = 128;
  c.pooling = 8;
  c.dim = 32;
  c.table_rows.assign(8, 50000);
  c.bottom_mlp = {16, 128, 32};
  c.top_mlp = {256, 128, 1};
  c.validate();
  return c;
}

double measure_real(const DlrmConfig& cfg, int ranks, ExchangeStrategy strategy) {
  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 5);
  double ms = 0.0;
  run_ranks(ranks, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.global_batch = cfg.global_batch_strong;
    opts.dist.exchange = strategy;
    opts.dist.overlap = true;
    auto backend = QueueBackend::ccl_like(1);
    DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);
    trainer.train(1);  // warmup
    const int iters = 6;
    const Timer t;
    trainer.train(iters);
    if (comm.rank() == 0) ms = t.elapsed_ms() / iters;
  });
  return ms;
}

}  // namespace

int main() {
  const DlrmConfig cfg = demo_config();

  std::printf("== real strong scaling on this machine (in-process ranks) ==\n");
  std::printf("%-8s %-14s %-10s %-8s\n", "ranks", "strategy", "ms/iter", "speedup");
  const double base = measure_real(cfg, 1, ExchangeStrategy::kAlltoall);
  std::printf("%-8d %-14s %-10.2f %-8s\n", 1, "-", base, "1.00x");
  for (int r : {2, 4, 8}) {
    for (auto s : {ExchangeStrategy::kScatterList, ExchangeStrategy::kAlltoall}) {
      const double ms = measure_real(cfg, r, s);
      std::printf("%-8d %-14s %-10.2f %.2fx\n", r, to_string(s), ms, base / ms);
    }
  }

  std::printf("\n== projected on the paper's 64-socket CLX/OPA cluster ==\n");
  const DlrmConfig paper_cfg = large_config();
  SimOptions o;
  o.socket = clx_8280();
  o.topo = Topology::pruned_fat_tree(64);
  o.backend = SimBackend::kCcl;
  o.strategy = ExchangeStrategy::kAlltoall;
  DlrmSimulator sim(paper_cfg, o);
  std::printf("%-8s %-12s %-12s %-12s\n", "ranks", "compute ms", "comm ms", "total ms");
  for (int r : {4, 8, 16, 32, 64}) {
    const auto it = sim.iteration(r, paper_cfg.global_batch_strong);
    std::printf("%-8d %-12.1f %-12.1f %-12.1f\n", r, it.compute_ms(),
                it.comm_ms(), it.total_ms());
  }
  return 0;
}
