// Quickstart: build a small DLRM, train it for a few iterations on a
// synthetic workload, and print the loss curve.
//
//   $ ./quickstart
//
// Walks through the core public API: DlrmConfig -> DlrmModel -> Optimizer ->
// Trainer, with a RandomDataset supplying minibatches.
#include <cstdio>

#include "core/trainer.hpp"

using namespace dlrm;

int main() {
  // 1. Describe the topology (a shrunk Small config: 4 tables, 64-dim
  //    embeddings, 2-layer bottom MLP, 3-layer top MLP).
  DlrmConfig config;
  config.name = "quickstart";
  config.minibatch = 256;
  config.global_batch_strong = 512;
  config.local_batch_weak = 256;
  config.pooling = 10;       // lookups per table per sample
  config.dim = 64;           // embedding dimension E
  config.table_rows = {50000, 20000, 80000, 10000};
  config.bottom_mlp = {64, 128, 64};  // input width -> hidden -> E
  config.top_mlp = {256, 128, 1};
  config.validate();

  // 2. Instantiate the model. ModelOptions picks the embedding update
  //    strategy (race-free is the paper's recommendation) and precision.
  ModelOptions options;
  options.update_strategy = UpdateStrategy::kRaceFree;
  options.embed_precision = EmbedPrecision::kFp32;
  DlrmModel model(config, options, /*seed=*/42);

  // 3. A synthetic workload: uniform indices, Gaussian dense features.
  RandomDataset data(config.bottom_mlp.front(), config.table_rows,
                     config.pooling, /*seed=*/7);

  // 4. Dense optimizer for the MLPs (embeddings update sparsely in-place).
  SgdFp32 sgd;
  sgd.attach(model.mlp_param_slots());

  // 5. Train.
  Trainer trainer(model, sgd, data, {.lr = 0.05f, .batch = config.minibatch});
  std::printf("training a %lld-parameter MLP side + %.1f MB of tables\n",
              static_cast<long long>(config.allreduce_elems()),
              static_cast<double>(config.table_bytes()) / 1e6);
  for (int step = 0; step < 5; ++step) {
    const double loss = trainer.train(20);
    std::printf("iter %3lld  mean loss %.4f\n",
                static_cast<long long>(trainer.iterations_done()), loss);
  }

  // 6. Profile one iteration to see where time goes (cf. paper Fig. 8).
  Profiler prof;
  MiniBatch mb;
  data.fill(0, config.minibatch, mb);
  model.train_step(mb, 0.05f, sgd, &prof);
  std::printf("\nper-op timing of one training iteration:\n%s",
              prof.report().c_str());
  return 0;
}
