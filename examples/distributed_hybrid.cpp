// Hybrid-parallel distributed training on in-process ranks: embedding
// tables model-parallel, MLPs data-parallel with overlapped alltoall and
// DDP allreduce — the paper's Sect. IV strategy end to end, driven by
// DistributedTrainer with the prefetching data pipeline.
//
//   $ ./distributed_hybrid [ranks=4]
#include <cstdio>
#include <cstdlib>

#include "core/dist_trainer.hpp"

using namespace dlrm;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int64_t global_batch = 512;

  DlrmConfig cfg;
  cfg.name = "hybrid-demo";
  cfg.minibatch = global_batch;
  cfg.global_batch_strong = global_batch;
  cfg.local_batch_weak = global_batch / ranks;
  cfg.pooling = 4;
  cfg.dim = 32;
  cfg.table_rows.assign(8, 20000);  // 8 tables spread round-robin over ranks
  cfg.bottom_mlp = {16, 64, 32};
  cfg.top_mlp = {128, 64, 1};
  cfg.validate();

  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 3);

  std::printf("hybrid-parallel DLRM on %d in-process ranks, GN=%lld\n", ranks,
              static_cast<long long>(global_batch));
  std::printf("tables: %lld (model parallel), MLP params: %lld (data parallel)\n\n",
              static_cast<long long>(cfg.tables()),
              static_cast<long long>(cfg.allreduce_elems()));

  run_ranks(ranks, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = global_batch;
    opts.dist.exchange = ExchangeStrategy::kAlltoall;  // the HPC-native pattern
    opts.dist.overlap = true;
    auto backend = QueueBackend::ccl_like(/*workers=*/2);
    DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);

    for (int chunk = 0; chunk < 5; ++chunk) {
      const double loss = trainer.train(10);  // global mean, same on all ranks
      if (comm.rank() == 0) {
        std::printf("iter %3lld  global mean loss %.4f  (a2a wait %.3f ms, "
                    "allreduce wait %.3f ms)\n",
                    static_cast<long long>(trainer.iterations_done()), loss,
                    trainer.model().last_alltoall_wait_sec() * 1e3,
                    trainer.model().last_allreduce_wait_sec() * 1e3);
      }
    }
    if (comm.rank() == 0) {
      std::printf("\nloader cost: %.2f ms exposed, %.2f ms hidden behind "
                  "compute (prefetch depth %d)\n",
                  trainer.loader_exposed_sec() * 1e3,
                  trainer.loader_hidden_sec() * 1e3,
                  trainer.prefetch().depth());
      std::printf("rank 0 owned tables:");
      for (auto t : trainer.model().owned_tables()) {
        std::printf(" %lld", static_cast<long long>(t));
      }
      std::printf("\n");
    }
  });
  return 0;
}
