// Hybrid-parallel distributed training on in-process ranks: embedding
// tables model-parallel under a pluggable ShardingPlan, MLPs data-parallel
// with overlapped alltoall and DDP allreduce — the paper's Sect. IV
// strategy end to end, driven by DistributedTrainer with the prefetching
// data pipeline. The demo table set is skewed (one 8x hot table) so the
// cost-balanced and row-split plans have something to fix.
//
// With a checkpoint directory, the run resumes from any snapshot found
// there (even one written with a different rank count or sharding policy)
// and snapshots every 10 iterations — kill it mid-run and start it again.
//
//   $ ./distributed_hybrid [ranks=4] [round_robin|balanced|row_split] [ckpt_dir]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/dist_trainer.hpp"

using namespace dlrm;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const char* ckpt_dir = argc > 3 ? argv[3] : nullptr;
  ShardingPolicy policy = ShardingPolicy::kRoundRobin;
  if (argc > 2) {
    if (std::strcmp(argv[2], "balanced") == 0) {
      policy = ShardingPolicy::kGreedyBalanced;
    } else if (std::strcmp(argv[2], "row_split") == 0) {
      policy = ShardingPolicy::kRowSplit;
    } else if (std::strcmp(argv[2], "round_robin") != 0) {
      std::fprintf(stderr, "bad policy: %s\n", argv[2]);
      return 2;
    }
  }
  const std::int64_t global_batch = 512;

  DlrmConfig cfg;
  cfg.name = "hybrid-demo";
  cfg.minibatch = global_batch;
  cfg.global_batch_strong = global_batch;
  cfg.local_batch_weak = global_batch / ranks;
  cfg.pooling = 4;
  cfg.dim = 32;
  cfg.table_rows.assign(8, 20000);
  cfg.table_rows[0] = 160000;  // hot table: 8x the rows of the rest
  cfg.bottom_mlp = {16, 64, 32};
  cfg.top_mlp = {128, 64, 1};
  cfg.validate();

  // 8x the lookups on the hot table as well (production-style skew).
  std::vector<std::int64_t> poolings(cfg.table_rows.size(), cfg.pooling);
  poolings[0] = cfg.pooling * 8;
  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, poolings, 3);

  std::printf("hybrid-parallel DLRM on %d in-process ranks, GN=%lld, "
              "sharding=%s\n", ranks, static_cast<long long>(global_batch),
              to_string(policy));
  std::printf("tables: %lld (model parallel), MLP params: %lld (data parallel)\n\n",
              static_cast<long long>(cfg.tables()),
              static_cast<long long>(cfg.allreduce_elems()));

  run_ranks(ranks, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = global_batch;
    opts.prefetch_workers = 2;  // sharded stream: batch i on worker i % 2
    opts.sharding.policy = policy;
    opts.dist.exchange = ExchangeStrategy::kAlltoall;  // the HPC-native pattern
    opts.dist.overlap = true;
    auto backend = QueueBackend::ccl_like(/*workers=*/2);
    DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);

    if (ckpt_dir != nullptr) {
      const bool resumed = trainer.resume_from(ckpt_dir);
      trainer.set_checkpointing(ckpt_dir, /*save_every=*/10);
      if (comm.rank() == 0 && resumed) {
        std::printf("resumed from %s at step %lld\n", ckpt_dir,
                    static_cast<long long>(trainer.iterations_done()));
      }
    }
    if (comm.rank() == 0) {
      std::printf("%s\n", trainer.model().plan().describe().c_str());
    }
    for (int chunk = 0; chunk < 5; ++chunk) {
      const double loss = trainer.train(10);  // global mean, same on all ranks
      if (comm.rank() == 0) {
        std::printf("iter %3lld  global mean loss %.4f  (a2a wait %.3f ms, "
                    "allreduce wait %.3f ms)\n",
                    static_cast<long long>(trainer.iterations_done()), loss,
                    trainer.model().last_alltoall_wait_sec() * 1e3,
                    trainer.model().last_allreduce_wait_sec() * 1e3);
      }
    }
    const auto imb = trainer.embedding_imbalance();
    if (comm.rank() == 0) {
      std::printf("\nembedding time: max rank %.2f ms / mean %.2f ms "
                  "(imbalance %.2fx)\n",
                  imb.max_sec * 1e3, imb.mean_sec * 1e3, imb.ratio());
      std::printf("loader cost: %.2f ms exposed, %.2f ms hidden behind "
                  "compute (prefetch depth %d, %d workers)\n",
                  trainer.loader_exposed_sec() * 1e3,
                  trainer.loader_hidden_sec() * 1e3,
                  trainer.prefetch().depth(), trainer.prefetch().workers());
      std::printf("rank 0 shards:");
      for (const auto& sh : trainer.model().owned_shards()) {
        std::printf(" t%lld[%lld:%lld)", static_cast<long long>(sh.table),
                    static_cast<long long>(sh.row_begin),
                    static_cast<long long>(sh.row_end));
      }
      std::printf("\n");
    }
  });
  return 0;
}
