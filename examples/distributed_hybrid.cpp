// Hybrid-parallel distributed training on in-process ranks: embedding
// tables model-parallel, MLPs data-parallel with overlapped alltoall and
// DDP allreduce — the paper's Sect. IV strategy end to end.
//
//   $ ./distributed_hybrid [ranks=4]
#include <cstdio>
#include <cstdlib>

#include "core/distributed.hpp"
#include "core/model.hpp"
#include "data/loader.hpp"
#include "stats/metrics.hpp"

using namespace dlrm;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int64_t global_batch = 512;

  DlrmConfig cfg;
  cfg.name = "hybrid-demo";
  cfg.minibatch = global_batch;
  cfg.global_batch_strong = global_batch;
  cfg.local_batch_weak = global_batch / ranks;
  cfg.pooling = 4;
  cfg.dim = 32;
  cfg.table_rows.assign(8, 20000);  // 8 tables spread round-robin over ranks
  cfg.bottom_mlp = {16, 64, 32};
  cfg.top_mlp = {128, 64, 1};
  cfg.validate();

  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 3);

  std::printf("hybrid-parallel DLRM on %d in-process ranks, GN=%lld\n", ranks,
              static_cast<long long>(global_batch));
  std::printf("tables: %lld (model parallel), MLP params: %lld (data parallel)\n\n",
              static_cast<long long>(cfg.tables()),
              static_cast<long long>(cfg.allreduce_elems()));

  run_ranks(ranks, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
    DistributedOptions opts;
    opts.exchange = ExchangeStrategy::kAlltoall;  // the HPC-native pattern
    opts.overlap = true;
    opts.lr = 0.05f;
    auto backend = QueueBackend::ccl_like(/*workers=*/2);
    DistributedDlrm model(cfg, opts, comm, backend.get(), global_batch);

    DataLoader loader(data, global_batch, comm.rank(), comm.size(),
                      model.owned_tables(), LoaderMode::kLocalSlice);
    HybridBatch hb;
    Meter loss;
    for (int iter = 0; iter < 50; ++iter) {
      loader.next(iter, hb);
      loss.add(model.train_step(hb));
      if ((iter + 1) % 10 == 0 && comm.rank() == 0) {
        std::printf("iter %3d  rank0 mean loss %.4f  (a2a wait %.3f ms, "
                    "allreduce wait %.3f ms)\n",
                    iter + 1, loss.mean(),
                    model.last_alltoall_wait_sec() * 1e3,
                    model.last_allreduce_wait_sec() * 1e3);
        loss.clear();
      }
    }
    if (comm.rank() == 0) {
      std::printf("\nrank 0 owned tables:");
      for (auto t : model.owned_tables()) std::printf(" %lld", static_cast<long long>(t));
      std::printf("\n");
    }
  });
  return 0;
}
