// Ad click-through-rate training end to end: the workload DLRM's intro
// motivates. Trains on the Criteo-Terabyte stand-in (planted logistic
// teacher, Zipf-skewed categorical features), evaluates ROC-AUC on held-out
// samples, and compares FP32 against BF16 Split-SGD mixed precision.
//
//   $ ./ad_click_training
#include <cstdio>

#include "core/trainer.hpp"

using namespace dlrm;

namespace {

DlrmConfig ctr_config() {
  DlrmConfig c;
  c.name = "ad-ctr";
  c.minibatch = 512;
  c.global_batch_strong = 1024;
  c.local_batch_weak = 512;
  c.pooling = 1;  // one category per feature, like Criteo
  c.dim = 32;
  c.table_rows.assign(26, 5000);  // 26 categorical features
  c.index_skew = 1.05;
  c.bottom_mlp = {13, 128, 64, 32};  // 13 dense features, as in Criteo
  c.top_mlp = {128, 64, 1};
  c.validate();
  return c;
}

double train_and_eval(EmbedPrecision precision, Optimizer& opt,
                      const Dataset& data, const DlrmConfig& cfg) {
  ModelOptions options;
  options.embed_precision = precision;
  options.update_strategy = UpdateStrategy::kRaceFree;
  DlrmModel model(cfg, options, /*seed=*/2020);
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data, {.lr = 0.15f, .batch = cfg.minibatch});
  trainer.train(/*iters=*/400);
  return trainer.evaluate(/*first=*/1000000, /*n=*/8192);
}

}  // namespace

int main() {
  const DlrmConfig cfg = ctr_config();

  CtrParams params;
  params.dense_dim = cfg.bottom_mlp.front();
  params.rows = cfg.table_rows;
  params.pooling = cfg.pooling;
  params.index_skew = cfg.index_skew;
  params.dense_scale = 0.9f;
  params.sparse_scale = 1.1f;
  params.seed = 99;
  SyntheticCtrDataset data(params);

  std::printf("click-log stand-in: 13 dense + 26 categorical features\n");
  std::printf("Bayes-optimal AUC of the generator: %.4f\n\n",
              data.teacher_auc(8192));

  SgdFp32 fp32;
  const double auc_fp32 = train_and_eval(EmbedPrecision::kFp32, fp32, data, cfg);
  std::printf("FP32 trained AUC:            %.4f\n", auc_fp32);

  SplitSgdBf16 bf16(16);
  const double auc_bf16 =
      train_and_eval(EmbedPrecision::kBf16Split, bf16, data, cfg);
  std::printf("BF16 Split-SGD trained AUC:  %.4f  (|diff| = %.4f)\n", auc_bf16,
              std::abs(auc_fp32 - auc_bf16));
  std::printf(
      "\nSplit-SGD stores the bf16 model + hidden low halves — the same\n"
      "capacity as FP32, no separate master weights (paper Sect. VII).\n");
  return 0;
}
