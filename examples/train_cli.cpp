// dlrm-train: command-line driver exposing the whole stack.
//
//   $ ./train_cli --config=small --scale-rows=64 --scale-batch=8
//                 --ranks=4 --strategy=alltoall --precision=bf16
//                 --iters=50 --lr=0.05 [--blocking] [--profile]
//                 [--loader=sliced|naive] [--no-prefetch] [--prefetch-depth=N]
//                 [--prefetch-workers=W] [--autotune-pipeline]
//                 [--stall-target=F] [--max-pipeline-workers=N]
//                 [--max-prefetch-depth=N]
//                 [--sharding=round_robin|balanced|row_split]
//                 [--row-split-threshold=N] [--lr-schedule=SPEC]
//                 [--checkpoint-dir=DIR] [--save-every=N] [--resume]
//                 [--async-ckpt] [--keep-last=N] [--grad-accum=A]
//                 [--print-step-losses]
//                 [--emb-cache-rows=K] [--emb-cache-policy=hist|counter|off]
//                 [--rebalance-threshold=X] [--rebalance-every=N]
//
// Configs: small | large | mlperf (paper Table I), optionally scaled down.
// With --ranks=1 the single-process model runs; otherwise DistributedTrainer
// drives the hybrid-parallel loop on in-process ranks. Either way the data
// pipeline prefetches batches behind compute with --prefetch-workers
// threads, each materializing the interleaved shard {i : i % W == w} of the
// stream (losses are bit-identical for any W; disable with --no-prefetch;
// --loader=naive reproduces the reference full-global-batch loader).
// --sharding picks the embedding-table placement: round_robin (the paper's
// t % R layout), balanced (cost-model LPT packing), or row_split (big
// tables split into row-range shards; threshold via --row-split-threshold,
// default = ceil(total rows / ranks)). Every strategy accepts rank counts
// that do not divide the batch (uneven chunk-convention local slices).
// --lr-schedule applies a first-class LrSchedule over the run, e.g.
// "step:0.5:0.25", "warmup:0.1", "poly" (see optim/lr_schedule.hpp).
//
// --precision selects the end-to-end data path:
//   fp32       — everything fp32 (default).
//   bf16       — the paper's BF16 mode: bf16 MLP tensors/GEMMs with fp32
//                accumulation, Split-SGD master weights for MLPs and
//                embeddings, and 2-byte gradient/exchange payloads in
//                distributed runs.
//   bf16split | bf16split8 | fp16 | fp24 — embedding-table-only precision
//                ablations (Fig. 16); the MLP stack stays fp32.
// Checkpointing (src/ckpt): --checkpoint-dir enables snapshots into DIR,
// written every --save-every iterations (and at eval points); --resume
// restores the snapshot in DIR first and continues until --iters total
// iterations. The snapshot geometry is free: a run may resume a checkpoint
// saved with a different --ranks / --sharding. --async-ckpt moves snapshot
// serialization and commit onto a background writer thread per rank (the
// training loop only stages the state — same bytes on disk); --keep-last
// retains the N most recent snapshots (step-addressed manifests).
// --grad-accum=A splits each batch into A micro-batches with fp32 gradient
// accumulation and one optimizer step (and, distributed, one allreduce) per
// window — same effective batch, ~A× smaller activations.
// --print-step-losses drives
// the loop one iteration at a time and prints "STEP_LOSS <iter> <loss>"
// lines (the resume-parity smoke diffs them; bypasses --lr-schedule).
// --check-loss-decreases exits nonzero unless the mean loss of the last
// quarter of iterations is below that of the first quarter (CI smoke).
// --emb-cache-rows puts the top-K rows of every table (shard) into the
// hot-row fp32 working tier; --emb-cache-policy picks admission: hist =
// one-shot from measured lookup histograms, counter = runtime counters
// with periodic decay. Bit-identical losses either way.
// --rebalance-threshold enables live shard re-balancing (distributed runs):
// when the windowed max/mean embedding-time ratio exceeds X at a
// --rebalance-every step boundary, the plan is recomputed from runtime
// lookup stats and the shards are migrated in place (bit-exact).
// --autotune-pipeline puts the prefetch pipeline's shape under a runtime
// feedback controller (src/data/autotune.hpp): starting from
// --prefetch-workers/--prefetch-depth, it grows or shrinks workers and ring
// depth at window boundaries until the measured exposed-stall fraction sits
// below --stall-target, bounded by --max-pipeline-workers /
// --max-prefetch-depth. Resizes are loss-neutral (bit-identical batches).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dist_trainer.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"

using namespace dlrm;

namespace {

struct Args {
  std::string config = "small";
  std::int64_t scale_rows = 64;
  std::int64_t scale_batch = 8;
  int ranks = 1;
  std::string strategy = "alltoall";
  std::string precision = "fp32";
  std::string update = "racefree";
  int iters = 20;
  float lr = 0.05f;
  std::string loader = "sliced";
  std::string sharding = "round_robin";
  std::int64_t row_split_threshold = 0;
  std::string lr_schedule;
  std::string checkpoint_dir;
  std::int64_t save_every = 0;
  bool resume = false;
  bool async_ckpt = false;
  int keep_last = 1;
  int grad_accum = 1;
  bool print_step_losses = false;
  bool prefetch = true;
  int prefetch_depth = 2;
  int prefetch_workers = 1;
  bool autotune_pipeline = false;
  double stall_target = 0.05;
  int max_pipeline_workers = 8;
  int max_prefetch_depth = 8;
  bool blocking = false;
  bool profile = false;
  bool check_loss = false;
  std::int64_t emb_cache_rows = 0;
  std::string emb_cache_policy = "hist";
  double rebalance_threshold = 0.0;
  std::int64_t rebalance_every = 32;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Args parse(int argc, char** argv) {
  Args a;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (parse_flag(argv[i], "--config", &v)) a.config = v;
    else if (parse_flag(argv[i], "--scale-rows", &v)) a.scale_rows = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--scale-batch", &v)) a.scale_batch = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--ranks", &v)) a.ranks = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--strategy", &v)) a.strategy = v;
    else if (parse_flag(argv[i], "--precision", &v)) a.precision = v;
    else if (parse_flag(argv[i], "--update", &v)) a.update = v;
    else if (parse_flag(argv[i], "--iters", &v)) a.iters = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--lr", &v)) a.lr = static_cast<float>(std::atof(v.c_str()));
    else if (parse_flag(argv[i], "--loader", &v)) a.loader = v;
    else if (parse_flag(argv[i], "--sharding", &v)) a.sharding = v;
    else if (parse_flag(argv[i], "--row-split-threshold", &v)) a.row_split_threshold = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--lr-schedule", &v)) a.lr_schedule = v;
    else if (parse_flag(argv[i], "--checkpoint-dir", &v)) a.checkpoint_dir = v;
    else if (parse_flag(argv[i], "--save-every", &v)) a.save_every = std::atoll(v.c_str());
    else if (std::strcmp(argv[i], "--resume") == 0) a.resume = true;
    else if (std::strcmp(argv[i], "--async-ckpt") == 0) a.async_ckpt = true;
    else if (parse_flag(argv[i], "--keep-last", &v)) a.keep_last = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--grad-accum", &v)) a.grad_accum = std::atoi(v.c_str());
    else if (std::strcmp(argv[i], "--print-step-losses") == 0) a.print_step_losses = true;
    else if (parse_flag(argv[i], "--prefetch-depth", &v)) a.prefetch_depth = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--prefetch-workers", &v)) a.prefetch_workers = std::atoi(v.c_str());
    else if (std::strcmp(argv[i], "--autotune-pipeline") == 0) a.autotune_pipeline = true;
    else if (parse_flag(argv[i], "--stall-target", &v)) a.stall_target = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--max-pipeline-workers", &v)) a.max_pipeline_workers = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--max-prefetch-depth", &v)) a.max_prefetch_depth = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--emb-cache-rows", &v)) a.emb_cache_rows = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--emb-cache-policy", &v)) a.emb_cache_policy = v;
    else if (parse_flag(argv[i], "--rebalance-threshold", &v)) a.rebalance_threshold = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--rebalance-every", &v)) a.rebalance_every = std::atoll(v.c_str());
    else if (std::strcmp(argv[i], "--no-prefetch") == 0) a.prefetch = false;
    else if (std::strcmp(argv[i], "--blocking") == 0) a.blocking = true;
    else if (std::strcmp(argv[i], "--profile") == 0) a.profile = true;
    else if (std::strcmp(argv[i], "--check-loss-decreases") == 0) a.check_loss = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (a.prefetch_depth < 1) {
    std::fprintf(stderr, "bad --prefetch-depth (must be >= 1)\n");
    std::exit(2);
  }
  if (a.prefetch_workers < 1) {
    std::fprintf(stderr, "bad --prefetch-workers (must be >= 1)\n");
    std::exit(2);
  }
  if (a.autotune_pipeline && !a.prefetch) {
    std::fprintf(stderr, "--autotune-pipeline needs the prefetch pipeline "
                         "(drop --no-prefetch)\n");
    std::exit(2);
  }
  if (a.stall_target <= 0.0 || a.stall_target >= 1.0) {
    std::fprintf(stderr, "bad --stall-target (must be in (0, 1))\n");
    std::exit(2);
  }
  if (a.max_pipeline_workers < a.prefetch_workers) {
    std::fprintf(stderr,
                 "bad --max-pipeline-workers (must be >= --prefetch-workers)\n");
    std::exit(2);
  }
  if (a.max_prefetch_depth < a.prefetch_depth) {
    std::fprintf(stderr,
                 "bad --max-prefetch-depth (must be >= --prefetch-depth)\n");
    std::exit(2);
  }
  if (a.resume && a.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
    std::exit(2);
  }
  if (a.resume && a.check_loss) {
    // The quarter-comparison is defined over one uninterrupted run; a
    // resumed continuation has no meaningful "first quarter".
    std::fprintf(stderr, "--resume and --check-loss-decreases conflict\n");
    std::exit(2);
  }
  if (a.save_every < 0) {
    std::fprintf(stderr, "bad --save-every (must be >= 0)\n");
    std::exit(2);
  }
  if (a.keep_last < 1) {
    std::fprintf(stderr, "bad --keep-last (must be >= 1)\n");
    std::exit(2);
  }
  if (a.grad_accum < 1) {
    std::fprintf(stderr, "bad --grad-accum (must be >= 1)\n");
    std::exit(2);
  }
  if (a.emb_cache_rows < 0) {
    std::fprintf(stderr, "bad --emb-cache-rows (must be >= 0)\n");
    std::exit(2);
  }
  if (a.rebalance_every < 1) {
    std::fprintf(stderr, "bad --rebalance-every (must be >= 1)\n");
    std::exit(2);
  }
  return a;
}

EmbCachePolicy parse_cache_policy(const std::string& s) {
  if (s == "hist") return EmbCachePolicy::kHist;
  if (s == "counter") return EmbCachePolicy::kCounter;
  if (s == "off") return EmbCachePolicy::kOff;
  std::fprintf(stderr, "bad --emb-cache-policy (hist|counter|off)\n");
  std::exit(2);
}

ExchangeStrategy parse_strategy(const std::string& s) {
  if (s == "scatterlist") return ExchangeStrategy::kScatterList;
  if (s == "fusedscatter") return ExchangeStrategy::kFusedScatter;
  if (s == "alltoall") return ExchangeStrategy::kAlltoall;
  std::fprintf(stderr, "bad --strategy (scatterlist|fusedscatter|alltoall)\n");
  std::exit(2);
}

EmbedPrecision parse_embed_precision(const std::string& s) {
  if (s == "fp32") return EmbedPrecision::kFp32;
  if (s == "bf16") return EmbedPrecision::kBf16Split;  // full bf16 data path
  if (s == "bf16split") return EmbedPrecision::kBf16Split;
  if (s == "bf16split8") return EmbedPrecision::kBf16Split8;
  if (s == "fp16") return EmbedPrecision::kFp16Stochastic;
  if (s == "fp24") return EmbedPrecision::kFp24;
  std::fprintf(stderr,
               "bad --precision (fp32|bf16|bf16split|bf16split8|fp16|fp24)\n");
  std::exit(2);
}

UpdateStrategy parse_update(const std::string& s) {
  if (s == "reference") return UpdateStrategy::kReference;
  if (s == "atomic") return UpdateStrategy::kAtomicXchg;
  if (s == "rtm") return UpdateStrategy::kRtm;
  if (s == "racefree") return UpdateStrategy::kRaceFree;
  std::fprintf(stderr, "bad --update (reference|atomic|rtm|racefree)\n");
  std::exit(2);
}

LoaderMode parse_loader(const std::string& s) {
  if (s == "sliced") return LoaderMode::kLocalSlice;
  if (s == "naive") return LoaderMode::kFullGlobalBatch;
  std::fprintf(stderr, "bad --loader (sliced|naive)\n");
  std::exit(2);
}

ShardingPolicy parse_sharding(const std::string& s) {
  if (s == "round_robin") return ShardingPolicy::kRoundRobin;
  if (s == "balanced") return ShardingPolicy::kGreedyBalanced;
  if (s == "row_split") return ShardingPolicy::kRowSplit;
  std::fprintf(stderr, "bad --sharding (round_robin|balanced|row_split)\n");
  std::exit(2);
}

/// Checkpoint plumbing + the training drive shared by the single-process
/// and distributed paths: restore when --resume asked for it, enable
/// periodic snapshots, then train up to `args.iters` TOTAL iterations
/// (a resumed run only trains the remainder). With --print-step-losses the
/// loop runs one iteration at a time emitting "STEP_LOSS <iter> <loss>"
/// lines (printed by rank 0 only in distributed runs). Returns the mean
/// loss over the iterations this invocation trained; `*trained` receives
/// that iteration count (less than --iters after a resume).
template <typename TrainerT>
double drive_training(TrainerT& trainer, const Args& args,
                      const LrSchedule& sched, Profiler* prof, bool printer,
                      std::int64_t* trained);

/// Trains from iteration `start` (the trainer's current position — nonzero
/// after a resume) to `total`, applying the schedule (when set) at eight
/// boundaries spaced over the WHOLE [0, total] run, so a resumed run picks
/// the schedule up at its restored fraction instead of replaying it over
/// the remainder. Returns the iteration-weighted mean loss of the
/// iterations this invocation trained.
template <typename TrainerT>
double train_scheduled(TrainerT& trainer, std::int64_t start,
                       std::int64_t total, const LrSchedule& sched,
                       Profiler* prof) {
  const std::int64_t iters = total - start;
  if (!sched || iters <= 0) return trainer.train(std::max<std::int64_t>(iters, 0), prof);
  const int segments = static_cast<int>(std::min<std::int64_t>(total, 8));
  double weighted = 0.0;
  std::int64_t done = start;
  for (int seg = 1; seg <= segments; ++seg) {
    const std::int64_t target = total * seg / segments;
    if (target <= done) continue;
    const double frac = static_cast<double>(seg) / segments;
    trainer.set_lr(sched(frac));
    weighted += trainer.train(target - done, prof) * static_cast<double>(target - done);
    done = target;
  }
  return weighted / static_cast<double>(iters);
}

AutotuneOptions make_autotune(const Args& a) {
  AutotuneOptions t;
  t.enabled = a.autotune_pipeline;
  t.stall_target = a.stall_target;
  t.max_workers = a.max_pipeline_workers;
  t.max_depth = a.max_prefetch_depth;
  return t;
}

/// End-of-run controller summary (rank 0 / single-process printer only).
template <typename TrainerT>
void print_autotune_summary(const TrainerT& trainer, const Args& args) {
  if (!args.autotune_pipeline) return;
  const PipelineController& pc = trainer.pipeline_controller();
  std::printf("pipeline autotune: target %.1f%%, %lld windows, %lld resizes, "
              "workers %d -> %d, depth %d -> %d, last window stall %.1f%%\n",
              args.stall_target * 100.0,
              static_cast<long long>(pc.windows()),
              static_cast<long long>(pc.resizes()), args.prefetch_workers,
              pc.workers(), args.prefetch_depth, pc.depth(),
              pc.last_stall_frac() * 100.0);
}

/// Applies --checkpoint-dir/--save-every/--resume to any trainer (both the
/// plain and the --check-loss-decreases paths go through this).
template <typename TrainerT>
void setup_checkpointing(TrainerT& trainer, const Args& args, bool printer) {
  if (args.checkpoint_dir.empty()) return;
  if (args.resume) {
    if (trainer.resume_from(args.checkpoint_dir)) {
      if (printer) {
        std::printf("resumed from %s at step %lld\n",
                    args.checkpoint_dir.c_str(),
                    static_cast<long long>(trainer.iterations_done()));
      }
    } else if (printer) {
      std::printf("no checkpoint in %s; starting fresh\n",
                  args.checkpoint_dir.c_str());
    }
  }
  CheckpointOptions copts;
  copts.save_every = args.save_every;
  copts.async = args.async_ckpt;
  copts.keep_last = args.keep_last;
  trainer.set_checkpointing(args.checkpoint_dir, copts);
}

template <typename TrainerT>
double drive_training(TrainerT& trainer, const Args& args,
                      const LrSchedule& sched, Profiler* prof, bool printer,
                      std::int64_t* trained) {
  setup_checkpointing(trainer, args, printer);
  const std::int64_t start =
      std::min<std::int64_t>(trainer.iterations_done(), args.iters);
  const std::int64_t remaining = args.iters - start;
  *trained = remaining;  // what THIS invocation runs (less after a resume)
  if (!args.print_step_losses) {
    const double loss = train_scheduled(trainer, start, args.iters, sched, prof);
    trainer.finish_checkpoints();  // commit any in-flight background save
    return loss;
  }
  double sum = 0.0;
  for (std::int64_t i = 0; i < remaining; ++i) {
    const double loss = trainer.train(1, prof);
    sum += loss;
    if (printer) {
      // %.17g: two bit-identical runs print identical lines, so the resume
      // smoke can literally diff them.
      std::printf("STEP_LOSS %lld %.17g\n",
                  static_cast<long long>(trainer.iterations_done()), loss);
    }
  }
  trainer.finish_checkpoints();  // commit any in-flight background save
  return remaining > 0 ? sum / static_cast<double>(remaining) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  DlrmConfig cfg = args.config == "small"    ? small_config()
                   : args.config == "large"  ? large_config()
                   : args.config == "mlperf" ? mlperf_config()
                                             : (std::fprintf(stderr, "bad --config\n"),
                                                std::exit(2), DlrmConfig{});
  cfg = cfg.scaled_down(args.scale_rows, args.scale_batch);
  // --precision=bf16 turns on the end-to-end bf16 MLP data path; the other
  // values are embedding-only ablations on top of an fp32 MLP stack.
  cfg.mlp_precision =
      args.precision == "bf16" ? Precision::kBf16 : Precision::kFp32;
  cfg.validate();

  std::printf("dlrm-train: %s  tables=%lld dim=%lld batch=%lld  "
              "model=%.1f MB  ranks=%d  mlp=%s\n",
              cfg.name.c_str(), static_cast<long long>(cfg.tables()),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.minibatch),
              static_cast<double>(cfg.table_bytes()) / 1e6, args.ranks,
              to_string(cfg.mlp_precision));

  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 1);

  // Loss-decrease check bookkeeping: compare the first and last quarters.
  if (args.check_loss && args.iters < 8) {
    std::fprintf(stderr, "--check-loss-decreases needs --iters >= 8\n");
    return 2;
  }
  const int quarter = args.iters / 4;

  LrSchedule schedule;
  if (!parse_lr_schedule(args.lr_schedule, args.lr, &schedule)) {
    std::fprintf(stderr, "bad --lr-schedule (none|constant|step|warmup|poly)\n");
    return 2;
  }

  if (args.ranks <= 1) {
    ModelOptions mo;
    mo.embed_precision = parse_embed_precision(args.precision);
    mo.update_strategy = parse_update(args.update);
    mo.emb_cache.capacity = args.emb_cache_rows;
    mo.emb_cache.policy = parse_cache_policy(args.emb_cache_policy);
    DlrmModel model(cfg, mo, 42);
    if (mo.emb_cache.enabled() &&
        mo.emb_cache.policy == EmbCachePolicy::kHist) {
      // One-shot admission from the same measured histograms the
      // distributed planners use.
      const LookupStats stats =
          measure_lookup_stats(data, /*samples=*/512, /*buckets=*/64);
      for (std::int64_t t = 0; t < model.tables(); ++t) {
        model.table(t).admit_top_rows_from_histogram(
            stats.row_histograms[static_cast<std::size_t>(t)]);
      }
    }
    // The trainer owns the optimizer matched to the MLP precision
    // (SGD-FP32 or Split-SGD-BF16). The data pipeline runs exactly like
    // the distributed one: W workers prefetching behind compute.
    Trainer trainer(model, data,
                    {.lr = args.lr,
                     .batch = cfg.minibatch,
                     .grad_accum = args.grad_accum,
                     .prefetch = args.prefetch,
                     .prefetch_depth = args.prefetch_depth,
                     .prefetch_workers = args.prefetch_workers,
                     .autotune = make_autotune(args)});
    Profiler prof;
    Profiler* prof_ptr = args.profile ? &prof : nullptr;
    const Timer t;
    double first_loss = 0.0, last_loss = 0.0, loss = 0.0;
    std::int64_t trained = args.iters;
    if (args.check_loss && quarter > 0) {
      setup_checkpointing(trainer, args, true);
      first_loss = trainer.train(quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(0.5));
      trainer.train(args.iters - 2 * quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(1.0));
      last_loss = trainer.train(quarter, prof_ptr);
      trainer.finish_checkpoints();
      loss = last_loss;
    } else {
      loss = drive_training(trainer, args, schedule, prof_ptr, true, &trained);
    }
    std::printf("%lld iters in %.2f s (%.2f ms/iter), final mean loss %.4f "
                "(optimizer %s)\n",
                static_cast<long long>(trained), t.elapsed_sec(),
                t.elapsed_ms() / static_cast<double>(std::max<std::int64_t>(trained, 1)),
                loss, trainer.optimizer().name().c_str());
    if (mo.emb_cache.enabled()) {
      EmbCacheStats cs;
      for (std::int64_t t = 0; t < model.tables(); ++t) {
        const EmbCacheStats one = model.table(t).cache_stats();
        cs.hits += one.hits;
        cs.misses += one.misses;
        cs.evictions += one.evictions;
        cs.admissions += one.admissions;
        cs.capacity += one.capacity;
        cs.resident += one.resident;
      }
      std::printf("emb cache (%s, %lld rows/table): hit rate %.1f%% "
                  "(%lld hits / %lld misses), resident %lld/%lld, "
                  "%lld admissions, %lld evictions\n",
                  args.emb_cache_policy.c_str(),
                  static_cast<long long>(args.emb_cache_rows),
                  cs.hit_rate() * 100.0, static_cast<long long>(cs.hits),
                  static_cast<long long>(cs.misses),
                  static_cast<long long>(cs.resident),
                  static_cast<long long>(cs.capacity),
                  static_cast<long long>(cs.admissions),
                  static_cast<long long>(cs.evictions));
    }
    print_autotune_summary(trainer, args);
    if (args.profile) std::printf("%s", prof.report().c_str());
    if (args.check_loss && quarter > 0) {
      std::printf("loss check: first-quarter %.4f -> last-quarter %.4f\n",
                  first_loss, last_loss);
      if (!(last_loss < first_loss)) {
        std::fprintf(stderr, "FAIL: loss did not decrease\n");
        return 1;
      }
    }
    return 0;
  }

  const std::int64_t gn = cfg.minibatch;
  int exit_code = 0;
  // Parse every enum flag before spawning rank threads (parse errors exit).
  DistributedTrainerOptions topts;
  topts.lr = args.lr;
  topts.global_batch = gn;
  topts.grad_accum = args.grad_accum;
  topts.loader_mode = parse_loader(args.loader);
  topts.prefetch = args.prefetch;
  topts.prefetch_depth = args.prefetch_depth;
  topts.prefetch_workers = args.prefetch_workers;
  topts.autotune = make_autotune(args);
  topts.sharding.policy = parse_sharding(args.sharding);
  topts.sharding.row_split_threshold = args.row_split_threshold;
  topts.dist.exchange = parse_strategy(args.strategy);
  topts.dist.embed_precision = parse_embed_precision(args.precision);
  topts.dist.update_strategy = parse_update(args.update);
  topts.dist.overlap = !args.blocking;
  topts.dist.emb_cache.capacity = args.emb_cache_rows;
  topts.dist.emb_cache.policy = parse_cache_policy(args.emb_cache_policy);
  topts.rebalance.threshold = args.rebalance_threshold;
  topts.rebalance.check_every = args.rebalance_every;
  topts.rebalance.policy = topts.sharding.policy == ShardingPolicy::kRoundRobin
                               ? ShardingPolicy::kGreedyBalanced
                               : topts.sharding.policy;
  run_ranks(args.ranks, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
    auto backend = args.blocking ? nullptr : QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cfg, data, comm, backend.get(), topts);
    Profiler prof;
    Profiler* prof_ptr = args.profile ? &prof : nullptr;
    const Timer t;
    double first_loss = 0.0, last_loss = 0.0, loss = 0.0;
    std::int64_t trained = args.iters;
    if (args.check_loss && quarter > 0) {
      setup_checkpointing(trainer, args, comm.rank() == 0);
      first_loss = trainer.train(quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(0.5));
      const double mid = trainer.train(args.iters - 2 * quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(1.0));
      last_loss = trainer.train(quarter, prof_ptr);
      trainer.finish_checkpoints();
      loss = (first_loss * quarter + mid * (args.iters - 2 * quarter) +
              last_loss * quarter) /
             args.iters;
    } else {
      loss = drive_training(trainer, args, schedule, prof_ptr,
                            comm.rank() == 0, &trained);
    }
    const auto imb = trainer.embedding_imbalance();
    if (comm.rank() == 0) {
      std::printf("%lld iters in %.2f s (%.2f ms/iter), global mean loss %.4f\n",
                  static_cast<long long>(trained), t.elapsed_sec(),
                  t.elapsed_ms() /
                      static_cast<double>(std::max<std::int64_t>(trained, 1)),
                  loss);
      std::printf("%s", trainer.model().plan().describe().c_str());
      std::printf("embedding time: max rank %.2f ms / mean %.2f ms "
                  "(imbalance %.2fx)\n",
                  imb.max_sec * 1e3, imb.mean_sec * 1e3, imb.ratio());
      if (topts.dist.emb_cache.enabled()) {
        std::printf("emb cache (%s, %lld rows/shard): hit rate %.1f%% "
                    "(%lld hits / %lld misses, all ranks)\n",
                    args.emb_cache_policy.c_str(),
                    static_cast<long long>(args.emb_cache_rows),
                    imb.cache_hit_rate() * 100.0,
                    static_cast<long long>(imb.cache_hits),
                    static_cast<long long>(imb.cache_misses));
      }
      if (topts.rebalance.enabled()) {
        const auto& rs = trainer.rebalance_stats();
        std::printf("rebalance: %lld checks, %lld migrations, %lld rows "
                    "moved, %.2f ms stalled, first trigger at step %lld\n",
                    static_cast<long long>(rs.checks),
                    static_cast<long long>(rs.rebalances),
                    static_cast<long long>(rs.rows_migrated),
                    rs.stall_sec * 1e3,
                    static_cast<long long>(rs.first_trigger_step));
      }
      std::printf("loader: %s, prefetch %s(depth %d, workers %d): exposed "
                  "%.2f ms, hidden %.2f ms\n",
                  args.loader.c_str(), args.prefetch ? "on" : "off",
                  args.prefetch_depth, args.prefetch_workers,
                  trainer.loader_exposed_sec() * 1e3,
                  trainer.loader_hidden_sec() * 1e3);
      print_autotune_summary(trainer, args);
      if (args.profile) std::printf("%s", prof.report().c_str());
      if (args.check_loss && quarter > 0) {
        std::printf("loss check: first-quarter %.4f -> last-quarter %.4f\n",
                    first_loss, last_loss);
        if (!(last_loss < first_loss)) {
          std::fprintf(stderr, "FAIL: loss did not decrease\n");
          exit_code = 1;
        }
      }
    }
  });
  return exit_code;
}
