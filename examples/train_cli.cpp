// dlrm-train: command-line driver exposing the whole stack.
//
//   $ ./train_cli --config=small --scale-rows=64 --scale-batch=8
//                 --ranks=4 --strategy=alltoall --precision=bf16
//                 --iters=50 --lr=0.05 [--blocking] [--profile]
//                 [--loader=sliced|naive] [--no-prefetch] [--prefetch-depth=N]
//                 [--sharding=round_robin|balanced|row_split]
//                 [--row-split-threshold=N] [--lr-schedule=SPEC]
//
// Configs: small | large | mlperf (paper Table I), optionally scaled down.
// With --ranks=1 the single-process model runs; otherwise DistributedTrainer
// drives the hybrid-parallel loop on in-process ranks, with the data
// pipeline prefetching batches behind compute (disable with --no-prefetch;
// --loader=naive reproduces the reference full-global-batch loader).
// --sharding picks the embedding-table placement: round_robin (the paper's
// t % R layout), balanced (cost-model LPT packing), or row_split (big
// tables split into row-range shards; threshold via --row-split-threshold,
// default = ceil(total rows / ranks)). The alltoall strategy also accepts
// rank counts that do not divide the batch (uneven local slices).
// --lr-schedule applies a first-class LrSchedule over the run, e.g.
// "step:0.5:0.25", "warmup:0.1", "poly" (see optim/lr_schedule.hpp).
//
// --precision selects the end-to-end data path:
//   fp32       — everything fp32 (default).
//   bf16       — the paper's BF16 mode: bf16 MLP tensors/GEMMs with fp32
//                accumulation, Split-SGD master weights for MLPs and
//                embeddings, and 2-byte gradient/exchange payloads in
//                distributed runs.
//   bf16split | bf16split8 | fp16 | fp24 — embedding-table-only precision
//                ablations (Fig. 16); the MLP stack stays fp32.
// --check-loss-decreases exits nonzero unless the mean loss of the last
// quarter of iterations is below that of the first quarter (CI smoke).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dist_trainer.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"

using namespace dlrm;

namespace {

struct Args {
  std::string config = "small";
  std::int64_t scale_rows = 64;
  std::int64_t scale_batch = 8;
  int ranks = 1;
  std::string strategy = "alltoall";
  std::string precision = "fp32";
  std::string update = "racefree";
  int iters = 20;
  float lr = 0.05f;
  std::string loader = "sliced";
  std::string sharding = "round_robin";
  std::int64_t row_split_threshold = 0;
  std::string lr_schedule;
  bool prefetch = true;
  int prefetch_depth = 2;
  bool blocking = false;
  bool profile = false;
  bool check_loss = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Args parse(int argc, char** argv) {
  Args a;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (parse_flag(argv[i], "--config", &v)) a.config = v;
    else if (parse_flag(argv[i], "--scale-rows", &v)) a.scale_rows = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--scale-batch", &v)) a.scale_batch = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--ranks", &v)) a.ranks = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--strategy", &v)) a.strategy = v;
    else if (parse_flag(argv[i], "--precision", &v)) a.precision = v;
    else if (parse_flag(argv[i], "--update", &v)) a.update = v;
    else if (parse_flag(argv[i], "--iters", &v)) a.iters = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--lr", &v)) a.lr = static_cast<float>(std::atof(v.c_str()));
    else if (parse_flag(argv[i], "--loader", &v)) a.loader = v;
    else if (parse_flag(argv[i], "--sharding", &v)) a.sharding = v;
    else if (parse_flag(argv[i], "--row-split-threshold", &v)) a.row_split_threshold = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--lr-schedule", &v)) a.lr_schedule = v;
    else if (parse_flag(argv[i], "--prefetch-depth", &v)) a.prefetch_depth = std::atoi(v.c_str());
    else if (std::strcmp(argv[i], "--no-prefetch") == 0) a.prefetch = false;
    else if (std::strcmp(argv[i], "--blocking") == 0) a.blocking = true;
    else if (std::strcmp(argv[i], "--profile") == 0) a.profile = true;
    else if (std::strcmp(argv[i], "--check-loss-decreases") == 0) a.check_loss = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (a.prefetch_depth < 1) {
    std::fprintf(stderr, "bad --prefetch-depth (must be >= 1)\n");
    std::exit(2);
  }
  return a;
}

ExchangeStrategy parse_strategy(const std::string& s) {
  if (s == "scatterlist") return ExchangeStrategy::kScatterList;
  if (s == "fusedscatter") return ExchangeStrategy::kFusedScatter;
  if (s == "alltoall") return ExchangeStrategy::kAlltoall;
  std::fprintf(stderr, "bad --strategy (scatterlist|fusedscatter|alltoall)\n");
  std::exit(2);
}

EmbedPrecision parse_embed_precision(const std::string& s) {
  if (s == "fp32") return EmbedPrecision::kFp32;
  if (s == "bf16") return EmbedPrecision::kBf16Split;  // full bf16 data path
  if (s == "bf16split") return EmbedPrecision::kBf16Split;
  if (s == "bf16split8") return EmbedPrecision::kBf16Split8;
  if (s == "fp16") return EmbedPrecision::kFp16Stochastic;
  if (s == "fp24") return EmbedPrecision::kFp24;
  std::fprintf(stderr,
               "bad --precision (fp32|bf16|bf16split|bf16split8|fp16|fp24)\n");
  std::exit(2);
}

UpdateStrategy parse_update(const std::string& s) {
  if (s == "reference") return UpdateStrategy::kReference;
  if (s == "atomic") return UpdateStrategy::kAtomicXchg;
  if (s == "rtm") return UpdateStrategy::kRtm;
  if (s == "racefree") return UpdateStrategy::kRaceFree;
  std::fprintf(stderr, "bad --update (reference|atomic|rtm|racefree)\n");
  std::exit(2);
}

LoaderMode parse_loader(const std::string& s) {
  if (s == "sliced") return LoaderMode::kLocalSlice;
  if (s == "naive") return LoaderMode::kFullGlobalBatch;
  std::fprintf(stderr, "bad --loader (sliced|naive)\n");
  std::exit(2);
}

ShardingPolicy parse_sharding(const std::string& s) {
  if (s == "round_robin") return ShardingPolicy::kRoundRobin;
  if (s == "balanced") return ShardingPolicy::kGreedyBalanced;
  if (s == "row_split") return ShardingPolicy::kRowSplit;
  std::fprintf(stderr, "bad --sharding (round_robin|balanced|row_split)\n");
  std::exit(2);
}

/// Trains `iters` iterations through any trainer with train/set_lr,
/// applying the schedule (when set) at eight evenly spaced boundaries.
/// Returns the iteration-weighted mean loss.
template <typename TrainerT>
double train_scheduled(TrainerT& trainer, int iters, const LrSchedule& sched,
                       Profiler* prof) {
  if (!sched || iters <= 0) return trainer.train(iters, prof);
  const int segments = std::min(iters, 8);
  double weighted = 0.0;
  int done = 0;
  for (int seg = 1; seg <= segments; ++seg) {
    const int target = iters * seg / segments;
    if (target == done) continue;
    const double frac = static_cast<double>(seg) / segments;
    trainer.set_lr(sched(frac));
    weighted += trainer.train(target - done, prof) * (target - done);
    done = target;
  }
  return weighted / iters;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  DlrmConfig cfg = args.config == "small"    ? small_config()
                   : args.config == "large"  ? large_config()
                   : args.config == "mlperf" ? mlperf_config()
                                             : (std::fprintf(stderr, "bad --config\n"),
                                                std::exit(2), DlrmConfig{});
  cfg = cfg.scaled_down(args.scale_rows, args.scale_batch);
  // --precision=bf16 turns on the end-to-end bf16 MLP data path; the other
  // values are embedding-only ablations on top of an fp32 MLP stack.
  cfg.mlp_precision =
      args.precision == "bf16" ? Precision::kBf16 : Precision::kFp32;
  cfg.validate();

  std::printf("dlrm-train: %s  tables=%lld dim=%lld batch=%lld  "
              "model=%.1f MB  ranks=%d  mlp=%s\n",
              cfg.name.c_str(), static_cast<long long>(cfg.tables()),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.minibatch),
              static_cast<double>(cfg.table_bytes()) / 1e6, args.ranks,
              to_string(cfg.mlp_precision));

  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 1);

  // Loss-decrease check bookkeeping: compare the first and last quarters.
  if (args.check_loss && args.iters < 8) {
    std::fprintf(stderr, "--check-loss-decreases needs --iters >= 8\n");
    return 2;
  }
  const int quarter = args.iters / 4;

  LrSchedule schedule;
  if (!parse_lr_schedule(args.lr_schedule, args.lr, &schedule)) {
    std::fprintf(stderr, "bad --lr-schedule (none|constant|step|warmup|poly)\n");
    return 2;
  }

  if (args.ranks <= 1) {
    ModelOptions mo;
    mo.embed_precision = parse_embed_precision(args.precision);
    mo.update_strategy = parse_update(args.update);
    DlrmModel model(cfg, mo, 42);
    // The trainer owns the optimizer matched to the MLP precision
    // (SGD-FP32 or Split-SGD-BF16).
    Trainer trainer(model, data, {.lr = args.lr, .batch = cfg.minibatch});
    Profiler prof;
    Profiler* prof_ptr = args.profile ? &prof : nullptr;
    const Timer t;
    double first_loss = 0.0, last_loss = 0.0, loss = 0.0;
    if (args.check_loss && quarter > 0) {
      first_loss = trainer.train(quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(0.5));
      trainer.train(args.iters - 2 * quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(1.0));
      last_loss = trainer.train(quarter, prof_ptr);
      loss = last_loss;
    } else {
      loss = train_scheduled(trainer, args.iters, schedule, prof_ptr);
    }
    std::printf("%d iters in %.2f s (%.2f ms/iter), final mean loss %.4f "
                "(optimizer %s)\n",
                args.iters, t.elapsed_sec(), t.elapsed_ms() / args.iters, loss,
                trainer.optimizer().name().c_str());
    if (args.profile) std::printf("%s", prof.report().c_str());
    if (args.check_loss && quarter > 0) {
      std::printf("loss check: first-quarter %.4f -> last-quarter %.4f\n",
                  first_loss, last_loss);
      if (!(last_loss < first_loss)) {
        std::fprintf(stderr, "FAIL: loss did not decrease\n");
        return 1;
      }
    }
    return 0;
  }

  const std::int64_t gn = cfg.minibatch;
  // Uneven local slices (GN % R != 0) need the alltoallv exchange path.
  DLRM_CHECK(gn % args.ranks == 0 || args.strategy == "alltoall",
             "GN % ranks != 0 needs --strategy=alltoall");
  int exit_code = 0;
  // Parse every enum flag before spawning rank threads (parse errors exit).
  DistributedTrainerOptions topts;
  topts.lr = args.lr;
  topts.global_batch = gn;
  topts.loader_mode = parse_loader(args.loader);
  topts.prefetch = args.prefetch;
  topts.prefetch_depth = args.prefetch_depth;
  topts.sharding.policy = parse_sharding(args.sharding);
  topts.sharding.row_split_threshold = args.row_split_threshold;
  topts.dist.exchange = parse_strategy(args.strategy);
  topts.dist.embed_precision = parse_embed_precision(args.precision);
  topts.dist.update_strategy = parse_update(args.update);
  topts.dist.overlap = !args.blocking;
  run_ranks(args.ranks, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
    auto backend = args.blocking ? nullptr : QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cfg, data, comm, backend.get(), topts);
    Profiler prof;
    Profiler* prof_ptr = args.profile ? &prof : nullptr;
    const Timer t;
    double first_loss = 0.0, last_loss = 0.0, loss = 0.0;
    if (args.check_loss && quarter > 0) {
      first_loss = trainer.train(quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(0.5));
      const double mid = trainer.train(args.iters - 2 * quarter, prof_ptr);
      if (schedule) trainer.set_lr(schedule(1.0));
      last_loss = trainer.train(quarter, prof_ptr);
      loss = (first_loss * quarter + mid * (args.iters - 2 * quarter) +
              last_loss * quarter) /
             args.iters;
    } else {
      loss = train_scheduled(trainer, args.iters, schedule, prof_ptr);
    }
    const auto imb = trainer.embedding_imbalance();
    if (comm.rank() == 0) {
      std::printf("%d iters in %.2f s (%.2f ms/iter), global mean loss %.4f\n",
                  args.iters, t.elapsed_sec(), t.elapsed_ms() / args.iters,
                  loss);
      std::printf("%s", trainer.model().plan().describe().c_str());
      std::printf("embedding time: max rank %.2f ms / mean %.2f ms "
                  "(imbalance %.2fx)\n",
                  imb.max_sec * 1e3, imb.mean_sec * 1e3, imb.ratio());
      std::printf("loader: %s, prefetch %s(depth %d): exposed %.2f ms, "
                  "hidden %.2f ms\n",
                  args.loader.c_str(), args.prefetch ? "on" : "off",
                  args.prefetch_depth, trainer.loader_exposed_sec() * 1e3,
                  trainer.loader_hidden_sec() * 1e3);
      if (args.profile) std::printf("%s", prof.report().c_str());
      if (args.check_loss && quarter > 0) {
        std::printf("loss check: first-quarter %.4f -> last-quarter %.4f\n",
                    first_loss, last_loss);
        if (!(last_loss < first_loss)) {
          std::fprintf(stderr, "FAIL: loss did not decrease\n");
          exit_code = 1;
        }
      }
    }
  });
  return exit_code;
}
