// dlrm-train: command-line driver exposing the whole stack.
//
//   $ ./train_cli --config=small --scale-rows=64 --scale-batch=8
//                 --ranks=4 --strategy=alltoall --precision=bf16split
//                 --iters=50 --lr=0.05 [--blocking] [--profile]
//
// Configs: small | large | mlperf (paper Table I), optionally scaled down.
// With --ranks=1 the single-process model runs; otherwise the
// hybrid-parallel trainer runs on in-process ranks.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/distributed.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/loader.hpp"

using namespace dlrm;

namespace {

struct Args {
  std::string config = "small";
  std::int64_t scale_rows = 64;
  std::int64_t scale_batch = 8;
  int ranks = 1;
  std::string strategy = "alltoall";
  std::string precision = "fp32";
  std::string update = "racefree";
  int iters = 20;
  float lr = 0.05f;
  bool blocking = false;
  bool profile = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Args parse(int argc, char** argv) {
  Args a;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (parse_flag(argv[i], "--config", &v)) a.config = v;
    else if (parse_flag(argv[i], "--scale-rows", &v)) a.scale_rows = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--scale-batch", &v)) a.scale_batch = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--ranks", &v)) a.ranks = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--strategy", &v)) a.strategy = v;
    else if (parse_flag(argv[i], "--precision", &v)) a.precision = v;
    else if (parse_flag(argv[i], "--update", &v)) a.update = v;
    else if (parse_flag(argv[i], "--iters", &v)) a.iters = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--lr", &v)) a.lr = static_cast<float>(std::atof(v.c_str()));
    else if (std::strcmp(argv[i], "--blocking") == 0) a.blocking = true;
    else if (std::strcmp(argv[i], "--profile") == 0) a.profile = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

ExchangeStrategy parse_strategy(const std::string& s) {
  if (s == "scatterlist") return ExchangeStrategy::kScatterList;
  if (s == "fusedscatter") return ExchangeStrategy::kFusedScatter;
  if (s == "alltoall") return ExchangeStrategy::kAlltoall;
  std::fprintf(stderr, "bad --strategy (scatterlist|fusedscatter|alltoall)\n");
  std::exit(2);
}

EmbedPrecision parse_precision(const std::string& s) {
  if (s == "fp32") return EmbedPrecision::kFp32;
  if (s == "bf16split") return EmbedPrecision::kBf16Split;
  if (s == "bf16split8") return EmbedPrecision::kBf16Split8;
  if (s == "fp16") return EmbedPrecision::kFp16Stochastic;
  if (s == "fp24") return EmbedPrecision::kFp24;
  std::fprintf(stderr, "bad --precision (fp32|bf16split|bf16split8|fp16|fp24)\n");
  std::exit(2);
}

UpdateStrategy parse_update(const std::string& s) {
  if (s == "reference") return UpdateStrategy::kReference;
  if (s == "atomic") return UpdateStrategy::kAtomicXchg;
  if (s == "rtm") return UpdateStrategy::kRtm;
  if (s == "racefree") return UpdateStrategy::kRaceFree;
  std::fprintf(stderr, "bad --update (reference|atomic|rtm|racefree)\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  DlrmConfig cfg = args.config == "small"    ? small_config()
                   : args.config == "large"  ? large_config()
                   : args.config == "mlperf" ? mlperf_config()
                                             : (std::fprintf(stderr, "bad --config\n"),
                                                std::exit(2), DlrmConfig{});
  cfg = cfg.scaled_down(args.scale_rows, args.scale_batch);
  cfg.validate();

  std::printf("dlrm-train: %s  tables=%lld dim=%lld batch=%lld  "
              "model=%.1f MB  ranks=%d\n",
              cfg.name.c_str(), static_cast<long long>(cfg.tables()),
              static_cast<long long>(cfg.dim),
              static_cast<long long>(cfg.minibatch),
              static_cast<double>(cfg.table_bytes()) / 1e6, args.ranks);

  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 1);

  if (args.ranks <= 1) {
    ModelOptions mo;
    mo.embed_precision = parse_precision(args.precision);
    mo.update_strategy = parse_update(args.update);
    DlrmModel model(cfg, mo, 42);
    SgdFp32 sgd;
    sgd.attach(model.mlp_param_slots());
    Trainer trainer(model, sgd, data, {.lr = args.lr, .batch = cfg.minibatch});
    Profiler prof;
    const Timer t;
    const double loss = trainer.train(args.iters, args.profile ? &prof : nullptr);
    std::printf("%d iters in %.2f s (%.2f ms/iter), final mean loss %.4f\n",
                args.iters, t.elapsed_sec(),
                t.elapsed_ms() / args.iters, loss);
    if (args.profile) std::printf("%s", prof.report().c_str());
    return 0;
  }

  const std::int64_t gn = cfg.minibatch;
  DLRM_CHECK(gn % args.ranks == 0, "batch must divide by ranks");
  run_ranks(args.ranks, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
    DistributedOptions opts;
    opts.exchange = parse_strategy(args.strategy);
    opts.embed_precision = parse_precision(args.precision);
    opts.update_strategy = parse_update(args.update);
    opts.overlap = !args.blocking;
    opts.lr = args.lr;
    auto backend = args.blocking ? nullptr : QueueBackend::ccl_like(2);
    DistributedDlrm model(cfg, opts, comm, backend.get(), gn);
    DataLoader loader(data, gn, comm.rank(), comm.size(), model.owned_tables(),
                      LoaderMode::kLocalSlice);
    HybridBatch hb;
    Profiler prof;
    Meter loss;
    const Timer t;
    for (int i = 0; i < args.iters; ++i) {
      loader.next(i, hb);
      loss.add(model.train_step(hb, args.profile ? &prof : nullptr));
    }
    if (comm.rank() == 0) {
      std::printf("%d iters in %.2f s (%.2f ms/iter), rank0 mean loss %.4f\n",
                  args.iters, t.elapsed_sec(), t.elapsed_ms() / args.iters,
                  loss.mean());
      if (args.profile) std::printf("%s", prof.report().c_str());
    }
  });
  return 0;
}
