// dlrm-serve: online inference driver over the serving subsystem.
//
//   $ ./serve_cli --config=small --scale-rows=256 --scale-batch=16
//                 --qps=2000 --requests=2000 --fanout=4 --zipf=0.9
//                 --max-batch=32 --max-wait-us=1000 [--queue-cap=N]
//                 [--slo-ms=X] [--drop-when-full] [--train-iters=N]
//                 [--publish-every=N] [--checkpoint-dir=DIR]
//                 [--serve-ranks=R] [--serve-sharding=round_robin|row_split]
//                 [--row-split-threshold=N] [--slo-class-mix=F]
//                 [--p99-target-us=X] [--check-serving] [--profile]
//
// Trains the model briefly (--train-iters) to get non-trivial weights,
// publishes them into a snapshot, then drives the engine with an open-loop
// Poisson load generator (Zipf-skewed keys) and prints the latency
// percentiles plus one BENCH_JSON row. With --checkpoint-dir the snapshot
// is restored from an existing checkpoint instead (any saved geometry).
// --publish-every=N republishes fresh weights every N served requests
// while training continues — the serve-while-training loop, with snapshots
// handed over at micro-batch boundaries.
//
// --serve-ranks=R > 1 serves through the model-parallel sharded tier: R
// serving ranks over a ThreadComm, each holding only its plan shards
// (--serve-sharding picks the geometry), with embedding lookups fanned out
// and gathered per micro-batch. Results are bit-identical to the
// single-process engine. --slo-class-mix=F marks a (1-F) fraction of the
// generated load as batch class; --p99-target-us arms the admission
// controller, which defers and then sheds batch traffic whenever the
// measured rolling interactive p99 approaches the target (hysteresis
// re-admission on recovery).
//
// --check-serving exits nonzero unless the request accounting closes
// (served + rejected + shed == generated) and the served scores match
// per-request offline forwards bit-for-bit (CI smoke).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/config.hpp"
#include "core/sharding.hpp"
#include "core/trainer.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/sharded.hpp"
#include "serve/snapshot.hpp"
#include "stats/profiler.hpp"

namespace dlrm {
namespace {

struct Args {
  std::string config = "small";
  std::int64_t scale_rows = 64;
  std::int64_t scale_batch = 8;
  double qps = 2000.0;
  std::int64_t requests = 2000;
  std::int64_t fanout = 4;
  double zipf = 0.9;
  std::int64_t key_space = 1 << 16;
  std::int64_t max_batch = 32;
  std::int64_t max_wait_us = 1000;
  std::int64_t queue_cap = 1024;
  double slo_ms = 5.0;
  bool bucket_batches = false;
  bool drop_when_full = false;
  int train_iters = 8;
  std::int64_t publish_every = 0;  // 0 = serve one frozen snapshot
  std::string checkpoint_dir;
  int serve_ranks = 1;
  std::string serve_sharding = "round_robin";
  std::int64_t row_split_threshold = 0;  // <= 0: ceil(total_rows / ranks)
  double slo_class_mix = 1.0;            // interactive fraction
  double p99_target_us = 0.0;            // 0 disables admission control
  bool check_serving = false;
  bool profile = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--config", &v)) a.config = v;
    else if (parse_flag(argv[i], "--scale-rows", &v)) a.scale_rows = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--scale-batch", &v)) a.scale_batch = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--qps", &v)) a.qps = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--requests", &v)) a.requests = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--fanout", &v)) a.fanout = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--zipf", &v)) a.zipf = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--key-space", &v)) a.key_space = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--max-batch", &v)) a.max_batch = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--max-wait-us", &v)) a.max_wait_us = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--queue-cap", &v)) a.queue_cap = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--slo-ms", &v)) a.slo_ms = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--train-iters", &v)) a.train_iters = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--publish-every", &v)) a.publish_every = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--checkpoint-dir", &v)) a.checkpoint_dir = v;
    else if (parse_flag(argv[i], "--serve-ranks", &v)) a.serve_ranks = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--serve-sharding", &v)) a.serve_sharding = v;
    else if (parse_flag(argv[i], "--row-split-threshold", &v)) a.row_split_threshold = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--slo-class-mix", &v)) a.slo_class_mix = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--p99-target-us", &v)) a.p99_target_us = std::atof(v.c_str());
    else if (std::strcmp(argv[i], "--bucket-batches") == 0) a.bucket_batches = true;
    else if (std::strcmp(argv[i], "--drop-when-full") == 0) a.drop_when_full = true;
    else if (std::strcmp(argv[i], "--check-serving") == 0) a.check_serving = true;
    else if (std::strcmp(argv[i], "--profile") == 0) a.profile = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

DlrmConfig pick_config(const Args& a) {
  DlrmConfig c;
  if (a.config == "small") c = small_config();
  else if (a.config == "large") c = large_config();
  else if (a.config == "mlperf") c = mlperf_config();
  else {
    std::fprintf(stderr, "unknown config: %s\n", a.config.c_str());
    std::exit(2);
  }
  return c.scaled_down(a.scale_rows, a.scale_batch);
}

ShardingPlan pick_plan(const Args& a, const DlrmConfig& c) {
  if (a.serve_sharding == "round_robin") {
    return ShardingPlan::round_robin(c.table_rows, a.serve_ranks);
  }
  if (a.serve_sharding == "row_split") {
    const std::vector<double> costs(c.table_rows.size(), 1.0);
    return ShardingPlan::row_split(c.table_rows, a.serve_ranks, costs,
                                   a.row_split_threshold);
  }
  std::fprintf(stderr, "unknown serve sharding: %s\n",
               a.serve_sharding.c_str());
  std::exit(2);
}

/// Drives one engine (single-process or sharded — identical member
/// surface) through the Poisson load, optionally republishing fresh
/// weights from `trainer` into the idle snapshot buffer.
template <class Engine, class Snapshot>
void drive(const Args& args, Engine& engine, Snapshot& snapA, Snapshot& snapB,
           DlrmModel& model, Trainer& trainer, serve::PoissonLoadGen& gen) {
  engine.start();
  if (args.publish_every > 0 && args.checkpoint_dir.empty()) {
    // Serve-while-training: load on this thread, training + publication on
    // another, double-buffered snapshots handed over at batch boundaries.
    std::atomic<bool> done{false};
    std::thread publisher([&] {
      Snapshot* snaps[2] = {&snapA, &snapB};
      int pub = 0;
      while (!done.load()) {
        trainer.train(1);
        Snapshot* idle = snaps[(++pub) % 2];
        idle->publish_from(model, trainer.iterations_done());
        engine.set_snapshot(idle);
        // The retired buffer is only reusable once the handover is
        // adopted; bounded wait so shutdown (done) stays reachable.
        while (!engine.wait_snapshot_swapped(0.05) && !done.load()) {
        }
        if (done.load()) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            static_cast<double>(args.publish_every) / args.qps));
      }
    });
    gen.run();
    done.store(true);
    publisher.join();
  } else {
    gen.run();
  }
  engine.stop();
}

void print_summary(const Args& args, const serve::ServeStats& s) {
  std::printf(
      "served %lld requests (%lld samples) in %.3f s: %.0f req/s, "
      "batch mean %.1f\n",
      static_cast<long long>(s.requests), static_cast<long long>(s.samples),
      s.wall_sec, s.throughput_rps, s.mean_batch);
  std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  "
              "(SLO %.1f ms violated %lld, rejected %lld, shed %lld)\n",
              s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms, args.slo_ms,
              static_cast<long long>(s.slo_violations),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.shed));
  if (args.slo_class_mix < 1.0 || args.p99_target_us > 0.0) {
    for (int c = 0; c < serve::kNumSloClasses; ++c) {
      const auto& cs = s.by_class[static_cast<std::size_t>(c)];
      std::printf(
          "  class %-11s admitted %lld served %lld shed %lld deferred %lld"
          "  p50 %.3f  p95 %.3f  p99 %.3f ms\n",
          serve::to_string(static_cast<serve::SloClass>(c)),
          static_cast<long long>(cs.admitted),
          static_cast<long long>(cs.served), static_cast<long long>(cs.shed),
          static_cast<long long>(cs.deferred), cs.p50_ms, cs.p95_ms,
          cs.p99_ms);
    }
    if (args.p99_target_us > 0.0) {
      std::printf("  admission: state %s, rolling interactive p99 %.3f ms "
                  "(target %.3f ms)\n",
                  serve::to_string(s.admission_state), s.admission_p99_ms,
                  args.p99_target_us * 1e-3);
    }
  }
  std::printf(
      "BENCH_JSON {\"bench\":\"serve_cli\",\"qps_offered\":%g,"
      "\"max_batch\":%lld,\"max_wait_us\":%lld,\"requests\":%lld,"
      "\"serve_ranks\":%d,\"sharding\":\"%s\",\"interactive_frac\":%g,"
      "\"p99_target_us\":%g,"
      "\"p50_ms\":%.6g,\"p95_ms\":%.6g,\"p99_ms\":%.6g,"
      "\"interactive_p99_ms\":%.6g,\"batch_p99_ms\":%.6g,"
      "\"throughput_rps\":%.6g,\"mean_batch\":%.6g,\"slo_violations\":%lld,"
      "\"rejected\":%lld,\"shed\":%lld,\"deferred\":%lld,"
      "\"admission_state\":\"%s\"}\n",
      args.qps, static_cast<long long>(args.max_batch),
      static_cast<long long>(args.max_wait_us),
      static_cast<long long>(s.requests), args.serve_ranks,
      args.serve_sharding.c_str(), args.slo_class_mix, args.p99_target_us,
      s.p50_ms, s.p95_ms, s.p99_ms, s.by_class[0].p99_ms, s.by_class[1].p99_ms,
      s.throughput_rps, s.mean_batch, static_cast<long long>(s.slo_violations),
      static_cast<long long>(s.rejected), static_cast<long long>(s.shed),
      static_cast<long long>(s.by_class[1].deferred),
      serve::to_string(s.admission_state));
}

int check_serving(const Args& args, const serve::ServeStats& s,
                  const std::vector<serve::Response>& responses,
                  const serve::LoadGenOptions& lopts,
                  serve::ModelSnapshot& offline_snap, const Dataset& data) {
  if (s.requests + s.rejected + s.shed != args.requests || s.requests < 1) {
    std::fprintf(stderr,
                 "CHECK FAILED: %lld answered + %lld rejected + %lld shed "
                 "!= %lld submitted\n",
                 static_cast<long long>(s.requests),
                 static_cast<long long>(s.rejected),
                 static_cast<long long>(s.shed),
                 static_cast<long long>(args.requests));
    return 1;
  }
  // Bit-exactness: every served score must equal an offline per-request
  // forward on the final snapshot. Only valid for a frozen snapshot. The
  // offline reference is always the *single-process* snapshot, so for
  // --serve-ranks > 1 this doubles as the sharded-parity check.
  if (args.publish_every == 0) {
    const std::vector<serve::Request> trace = serve::make_trace(lopts);
    std::map<std::int64_t, float> offline;
    MiniBatch mb;
    for (const serve::Request& r : trace) {
      data.fill(r.key, r.fanout, mb);
      offline[r.id] = offline_snap.forward(mb)[0];
    }
    for (const serve::Response& r : responses) {
      if (offline.at(r.id) != r.score0) {
        std::fprintf(
            stderr,
            "CHECK FAILED: request %lld served %.9g != offline %.9g\n",
            static_cast<long long>(r.id), static_cast<double>(r.score0),
            static_cast<double>(offline.at(r.id)));
        return 1;
      }
    }
  }
  std::printf("CHECK OK: all requests accounted%s\n",
              args.publish_every == 0 ? ", scores match offline forwards"
                                      : "");
  return 0;
}

int run(const Args& args) {
  const DlrmConfig c = pick_config(args);
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
  // The single-process snapshot always exists: it serves when
  // --serve-ranks=1 and is the offline reference for --check-serving.
  serve::ModelSnapshot snapA(c, {}), snapB(c, {});
  if (!args.checkpoint_dir.empty()) {
    snapA.publish_from_checkpoint(args.checkpoint_dir);
    std::printf("restored snapshot version %lld from %s\n",
                static_cast<long long>(snapA.version()),
                args.checkpoint_dir.c_str());
  } else {
    trainer.train(args.train_iters);
    snapA.publish_from(model, trainer.iterations_done());
  }

  Profiler prof;
  Profiler* profp = args.profile ? &prof : nullptr;

  serve::LoadGenOptions lopts;
  lopts.qps = args.qps;
  lopts.requests = args.requests;
  lopts.fanout = args.fanout;
  lopts.key_space = args.key_space;
  lopts.zipf_s = args.zipf;
  lopts.drop_when_full = args.drop_when_full;
  lopts.interactive_frac = args.slo_class_mix;

  serve::AdmissionOptions admission;
  admission.p99_target_ms = args.p99_target_us * 1e-3;

  serve::ServeStats s;
  std::vector<serve::Response> responses;
  if (args.serve_ranks > 1) {
    const ShardingPlan plan = pick_plan(args, c);
    std::printf("sharded serving: %d ranks, %lld shards (%s)\n",
                args.serve_ranks, static_cast<long long>(plan.num_shards()),
                args.serve_sharding.c_str());
    serve::ShardedSnapshot shardA(c, {}, plan), shardB(c, {}, plan);
    if (!args.checkpoint_dir.empty()) {
      shardA.publish_from_checkpoint(args.checkpoint_dir);
    } else {
      shardA.publish_from(model, trainer.iterations_done());
    }
    serve::ShardedEngineOptions eopts;
    eopts.policy = {.max_batch = args.max_batch,
                    .max_wait_us = args.max_wait_us};
    eopts.queue_capacity = args.queue_cap;
    eopts.slo_ms = args.slo_ms;
    eopts.admission = admission;
    serve::ShardedInferenceEngine engine(shardA, data, eopts, profp);
    serve::PoissonLoadGen gen(engine, lopts);
    drive(args, engine, shardA, shardB, model, trainer, gen);
    s = engine.stats();
    responses = engine.responses();
  } else {
    serve::EngineOptions eopts;
    eopts.policy = {.max_batch = args.max_batch,
                    .max_wait_us = args.max_wait_us};
    eopts.queue_capacity = args.queue_cap;
    eopts.slo_ms = args.slo_ms;
    eopts.bucket_batches = args.bucket_batches;
    eopts.admission = admission;
    serve::InferenceEngine engine(snapA, data, eopts, profp);
    serve::PoissonLoadGen gen(engine, lopts);
    drive(args, engine, snapA, snapB, model, trainer, gen);
    s = engine.stats();
    responses = engine.responses();
  }

  print_summary(args, s);
  if (args.profile) std::printf("%s", prof.report().c_str());
  if (args.check_serving) {
    return check_serving(args, s, responses, lopts, snapA, data);
  }
  return 0;
}

}  // namespace
}  // namespace dlrm

int main(int argc, char** argv) { return dlrm::run(dlrm::parse_args(argc, argv)); }
