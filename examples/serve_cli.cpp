// dlrm-serve: online inference driver over the serving subsystem.
//
//   $ ./serve_cli --config=small --scale-rows=256 --scale-batch=16
//                 --qps=2000 --requests=2000 --fanout=4 --zipf=0.9
//                 --max-batch=32 --max-wait-us=1000 [--queue-cap=N]
//                 [--slo-ms=X] [--drop-when-full] [--train-iters=N]
//                 [--publish-every=N] [--checkpoint-dir=DIR]
//                 [--check-serving] [--profile]
//
// Trains the model briefly (--train-iters) to get non-trivial weights,
// publishes them into a ModelSnapshot, then drives the InferenceEngine
// with an open-loop Poisson load generator (Zipf-skewed keys) and prints
// the latency percentiles plus one BENCH_JSON row. With --checkpoint-dir
// the snapshot is restored from an existing checkpoint instead (any saved
// geometry). --publish-every=N republishes fresh weights every N served
// requests while training continues — the serve-while-training loop, with
// snapshots handed over at micro-batch boundaries. --check-serving exits
// nonzero unless every submitted request was answered and the batched
// scores match per-request offline forwards bit-for-bit (CI smoke).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/config.hpp"
#include "core/trainer.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/snapshot.hpp"
#include "stats/profiler.hpp"

namespace dlrm {
namespace {

struct Args {
  std::string config = "small";
  std::int64_t scale_rows = 64;
  std::int64_t scale_batch = 8;
  double qps = 2000.0;
  std::int64_t requests = 2000;
  std::int64_t fanout = 4;
  double zipf = 0.9;
  std::int64_t key_space = 1 << 16;
  std::int64_t max_batch = 32;
  std::int64_t max_wait_us = 1000;
  std::int64_t queue_cap = 1024;
  double slo_ms = 5.0;
  bool bucket_batches = false;
  bool drop_when_full = false;
  int train_iters = 8;
  std::int64_t publish_every = 0;  // 0 = serve one frozen snapshot
  std::string checkpoint_dir;
  bool check_serving = false;
  bool profile = false;
};

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--config", &v)) a.config = v;
    else if (parse_flag(argv[i], "--scale-rows", &v)) a.scale_rows = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--scale-batch", &v)) a.scale_batch = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--qps", &v)) a.qps = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--requests", &v)) a.requests = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--fanout", &v)) a.fanout = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--zipf", &v)) a.zipf = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--key-space", &v)) a.key_space = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--max-batch", &v)) a.max_batch = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--max-wait-us", &v)) a.max_wait_us = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--queue-cap", &v)) a.queue_cap = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--slo-ms", &v)) a.slo_ms = std::atof(v.c_str());
    else if (parse_flag(argv[i], "--train-iters", &v)) a.train_iters = std::atoi(v.c_str());
    else if (parse_flag(argv[i], "--publish-every", &v)) a.publish_every = std::atoll(v.c_str());
    else if (parse_flag(argv[i], "--checkpoint-dir", &v)) a.checkpoint_dir = v;
    else if (std::strcmp(argv[i], "--bucket-batches") == 0) a.bucket_batches = true;
    else if (std::strcmp(argv[i], "--drop-when-full") == 0) a.drop_when_full = true;
    else if (std::strcmp(argv[i], "--check-serving") == 0) a.check_serving = true;
    else if (std::strcmp(argv[i], "--profile") == 0) a.profile = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

DlrmConfig pick_config(const Args& a) {
  DlrmConfig c;
  if (a.config == "small") c = small_config();
  else if (a.config == "large") c = large_config();
  else if (a.config == "mlperf") c = mlperf_config();
  else {
    std::fprintf(stderr, "unknown config: %s\n", a.config.c_str());
    std::exit(2);
  }
  return c.scaled_down(a.scale_rows, a.scale_batch);
}

int run(const Args& args) {
  const DlrmConfig c = pick_config(args);
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
  serve::ModelSnapshot snapA(c, {}), snapB(c, {});
  if (!args.checkpoint_dir.empty()) {
    snapA.publish_from_checkpoint(args.checkpoint_dir);
    std::printf("restored snapshot version %lld from %s\n",
                static_cast<long long>(snapA.version()),
                args.checkpoint_dir.c_str());
  } else {
    trainer.train(args.train_iters);
    snapA.publish_from(model, trainer.iterations_done());
  }

  Profiler prof;
  serve::EngineOptions eopts;
  eopts.policy = {.max_batch = args.max_batch, .max_wait_us = args.max_wait_us};
  eopts.queue_capacity = args.queue_cap;
  eopts.slo_ms = args.slo_ms;
  eopts.bucket_batches = args.bucket_batches;
  serve::InferenceEngine engine(snapA, data, eopts,
                                args.profile ? &prof : nullptr);
  engine.start();

  serve::LoadGenOptions lopts;
  lopts.qps = args.qps;
  lopts.requests = args.requests;
  lopts.fanout = args.fanout;
  lopts.key_space = args.key_space;
  lopts.zipf_s = args.zipf;
  lopts.drop_when_full = args.drop_when_full;
  serve::PoissonLoadGen gen(engine, lopts);

  if (args.publish_every > 0 && args.checkpoint_dir.empty()) {
    // Serve-while-training: load on this thread, training + publication on
    // another, double-buffered snapshots handed over at batch boundaries.
    std::atomic<bool> done{false};
    std::thread publisher([&] {
      serve::ModelSnapshot* snaps[2] = {&snapA, &snapB};
      int pub = 0;
      while (!done.load()) {
        trainer.train(1);
        serve::ModelSnapshot* idle = snaps[(++pub) % 2];
        idle->publish_from(model, trainer.iterations_done());
        engine.set_snapshot(idle);
        // The retired buffer is only reusable once the handover is
        // adopted; bounded wait so shutdown (done) stays reachable.
        while (!engine.wait_snapshot_swapped(0.05) && !done.load()) {
        }
        if (done.load()) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            static_cast<double>(args.publish_every) / args.qps));
      }
    });
    gen.run();
    done.store(true);
    publisher.join();
  } else {
    gen.run();
  }
  engine.stop();

  const serve::ServeStats s = engine.stats();
  std::printf(
      "served %lld requests (%lld samples) in %.3f s: %.0f req/s, "
      "batch mean %.1f\n",
      static_cast<long long>(s.requests), static_cast<long long>(s.samples),
      s.wall_sec, s.throughput_rps, s.mean_batch);
  std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  "
              "(SLO %.1f ms violated %lld, rejected %lld)\n",
              s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms, args.slo_ms,
              static_cast<long long>(s.slo_violations),
              static_cast<long long>(s.rejected));
  std::printf(
      "BENCH_JSON {\"bench\":\"serve_cli\",\"qps_offered\":%g,"
      "\"max_batch\":%lld,\"max_wait_us\":%lld,\"requests\":%lld,"
      "\"p50_ms\":%.6g,\"p95_ms\":%.6g,\"p99_ms\":%.6g,"
      "\"throughput_rps\":%.6g,\"mean_batch\":%.6g,\"slo_violations\":%lld,"
      "\"rejected\":%lld}\n",
      args.qps, static_cast<long long>(args.max_batch),
      static_cast<long long>(args.max_wait_us),
      static_cast<long long>(s.requests), s.p50_ms, s.p95_ms, s.p99_ms,
      s.throughput_rps, s.mean_batch, static_cast<long long>(s.slo_violations),
      static_cast<long long>(s.rejected));
  if (args.profile) std::printf("%s", prof.report().c_str());

  if (args.check_serving) {
    if (s.requests + s.rejected != args.requests || s.requests < 1) {
      std::fprintf(stderr, "CHECK FAILED: %lld answered + %lld rejected != "
                           "%lld submitted\n",
                   static_cast<long long>(s.requests),
                   static_cast<long long>(s.rejected),
                   static_cast<long long>(args.requests));
      return 1;
    }
    // Bit-exactness: every served score must equal an offline per-request
    // forward on the final snapshot. Only valid for a frozen snapshot.
    if (args.publish_every == 0) {
      const std::vector<serve::Request> trace = serve::make_trace(lopts);
      std::map<std::int64_t, float> offline;
      MiniBatch mb;
      serve::ModelSnapshot& snap = snapA;
      for (const serve::Request& r : trace) {
        data.fill(r.key, r.fanout, mb);
        offline[r.id] = snap.forward(mb)[0];
      }
      for (const serve::Response& r : engine.responses()) {
        if (offline.at(r.id) != r.score0) {
          std::fprintf(stderr,
                       "CHECK FAILED: request %lld served %.9g != offline "
                       "%.9g\n",
                       static_cast<long long>(r.id),
                       static_cast<double>(r.score0),
                       static_cast<double>(offline.at(r.id)));
          return 1;
        }
      }
    }
    std::printf("CHECK OK: all requests served%s\n",
                args.publish_every == 0 ? ", scores match offline forwards"
                                        : "");
  }
  return 0;
}

}  // namespace
}  // namespace dlrm

int main(int argc, char** argv) { return dlrm::run(dlrm::parse_args(argc, argv)); }
