// Reproduces paper Table I: the three DLRM model specifications.
#include <cstdio>

#include "bench_util.hpp"
#include "core/config.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

std::string mlp_str(const std::vector<std::int64_t>& dims) {
  std::string s;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) s += "-";
    s += std::to_string(dims[i]);
  }
  return s;
}

}  // namespace

int main() {
  banner("Table I: DLRM model specifications used in this work");
  const DlrmConfig configs[] = {small_config(), large_config(), mlperf_config()};

  row({"parameter", "Small", "Large", "MLPerf"}, 26);
  auto prow = [&](const char* name, auto get) {
    row({name, get(configs[0]), get(configs[1]), get(configs[2])}, 26);
  };
  prow("Minibatch (N)", [](const DlrmConfig& c) { return fmt_int(c.minibatch); });
  prow("Global MB strong (GN)",
       [](const DlrmConfig& c) { return fmt_int(c.global_batch_strong); });
  prow("Local MB weak (LN)",
       [](const DlrmConfig& c) { return fmt_int(c.local_batch_weak); });
  prow("Lookups/table (P)", [](const DlrmConfig& c) { return fmt_int(c.pooling); });
  prow("Tables (S)", [](const DlrmConfig& c) { return fmt_int(c.tables()); });
  prow("Embedding dim (E)", [](const DlrmConfig& c) { return fmt_int(c.dim); });
  prow("Max rows/table (M)", [](const DlrmConfig& c) {
    std::int64_t mx = 0;
    for (auto m : c.table_rows) mx = std::max(mx, m);
    return fmt_int(mx);
  });
  prow("Bottom MLP", [](const DlrmConfig& c) { return mlp_str(c.bottom_mlp); });
  prow("Top MLP (from interact.)",
       [](const DlrmConfig& c) { return mlp_str(c.top_mlp_full()); });
  prow("Interaction out (padded)",
       [](const DlrmConfig& c) { return fmt_int(c.interaction_out()); });

  std::printf(
      "\nNote: the MLPerf top MLP is 1024-1024-512-256-1 (MLPerf v0.7), which\n"
      "reproduces the paper's own Table II allreduce size of 9.0 MB; the\n"
      "512-512-256-1 printed in the paper's Table I is inconsistent with it.\n");
  return 0;
}
