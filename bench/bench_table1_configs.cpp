// Reproduces paper Table I: the three DLRM model specifications, plus a
// measured checkpoint save/restore cost for the (scaled-down) Table I
// models — the snapshot I/O a week-long Criteo run pays for fault
// tolerance.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/config.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

std::string mlp_str(const std::vector<std::int64_t>& dims) {
  std::string s;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) s += "-";
    s += std::to_string(dims[i]);
  }
  return s;
}

/// Save+restore wall time and on-disk volume of a full training snapshot
/// for one Table I config (scaled down to bench size).
void bench_checkpoint_io(const DlrmConfig& full, const char* name) {
  const DlrmConfig cfg = full.scaled_down(/*row_divisor=*/64,
                                          /*batch_divisor=*/8);
  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 1);
  DlrmModel model(cfg, {}, 42);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = cfg.minibatch});
  trainer.train(2);  // snapshot a real mid-training state

  const std::string dir =
      (std::filesystem::temp_directory_path() / "dlrm_bench_ckpt").string() +
      "_" + name;
  std::filesystem::remove_all(dir);

  const double save_sec =
      time_median_sec([&] { trainer.save_checkpoint(dir); }, 3);
  std::int64_t bytes = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    bytes += static_cast<std::int64_t>(e.file_size());
  }
  const double restore_sec = time_median_sec(
      [&] { (void)trainer.resume_from(dir); }, 3);
  std::filesystem::remove_all(dir);

  // Background checkpointing: the training thread only pays the staging
  // capture (plus back-pressure, drained between reps here), so the
  // exposed stall per snapshot should be a small fraction of save_sec.
  const std::string adir = dir + "_async";
  std::filesystem::remove_all(adir);
  CheckpointOptions copts;
  copts.async = true;
  trainer.set_checkpointing(adir, copts);
  // 5 reps: the first TWO each fault in one of the two staging buffers, so
  // a median of 5 lands on the warmed steady state.
  std::vector<double> stalls;
  for (int rep = 0; rep < 5; ++rep) {
    const double before = trainer.checkpoint_stall_sec();
    trainer.checkpoint_at_eval();
    stalls.push_back(trainer.checkpoint_stall_sec() - before);
    trainer.finish_checkpoints();
  }
  std::sort(stalls.begin(), stalls.end());
  const double async_stall_sec = stalls[stalls.size() / 2];
  const double stall_ratio =
      async_stall_sec > 0.0 ? save_sec / async_stall_sec : 0.0;
  std::filesystem::remove_all(adir);

  std::printf(
      "checkpoint [%s/64]: %.1f MB, save %.1f ms, restore %.1f ms, "
      "async exposed stall %.3f ms (%.0fx lower)\n",
      name, static_cast<double>(bytes) / 1e6, save_sec * 1e3,
      restore_sec * 1e3, async_stall_sec * 1e3, stall_ratio);
  JsonRow("checkpoint_io")
      .add("config", name)
      .add("row_divisor", 64)
      .add("bytes", bytes)
      .add("save_sec", save_sec)
      .add("restore_sec", restore_sec)
      .add("async_stall_sec", async_stall_sec)
      .add("stall_ratio", stall_ratio)
      .emit();
}

}  // namespace

int main() {
  banner("Table I: DLRM model specifications used in this work");
  const DlrmConfig configs[] = {small_config(), large_config(), mlperf_config()};

  row({"parameter", "Small", "Large", "MLPerf"}, 26);
  auto prow = [&](const char* name, auto get) {
    row({name, get(configs[0]), get(configs[1]), get(configs[2])}, 26);
  };
  prow("Minibatch (N)", [](const DlrmConfig& c) { return fmt_int(c.minibatch); });
  prow("Global MB strong (GN)",
       [](const DlrmConfig& c) { return fmt_int(c.global_batch_strong); });
  prow("Local MB weak (LN)",
       [](const DlrmConfig& c) { return fmt_int(c.local_batch_weak); });
  prow("Lookups/table (P)", [](const DlrmConfig& c) { return fmt_int(c.pooling); });
  prow("Tables (S)", [](const DlrmConfig& c) { return fmt_int(c.tables()); });
  prow("Embedding dim (E)", [](const DlrmConfig& c) { return fmt_int(c.dim); });
  prow("Max rows/table (M)", [](const DlrmConfig& c) {
    std::int64_t mx = 0;
    for (auto m : c.table_rows) mx = std::max(mx, m);
    return fmt_int(mx);
  });
  prow("Bottom MLP", [](const DlrmConfig& c) { return mlp_str(c.bottom_mlp); });
  prow("Top MLP (from interact.)",
       [](const DlrmConfig& c) { return mlp_str(c.top_mlp_full()); });
  prow("Interaction out (padded)",
       [](const DlrmConfig& c) { return fmt_int(c.interaction_out()); });

  std::printf(
      "\nNote: the MLPerf top MLP is 1024-1024-512-256-1 (MLPerf v0.7), which\n"
      "reproduces the paper's own Table II allreduce size of 9.0 MB; the\n"
      "512-512-256-1 printed in the paper's Table I is inconsistent with it.\n");

  banner("Checkpoint I/O: full-snapshot save/restore cost (rows / 64)");
  bench_checkpoint_io(small_config(), "small");
  return 0;
}
