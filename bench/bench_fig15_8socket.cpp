// Reproduces paper Fig. 15: strong scaling on the 8-socket shared-memory
// node (SKX 8180, UPI twisted hypercube): Compute / AllReduce / Alltoall
// per-iteration split for the three configs.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks) {
  std::printf("\n-- %s (GN=%lld) --\n", cfg.name.c_str(),
              static_cast<long long>(cfg.global_batch_strong));
  row({"sockets", "compute ms", "allreduce ms", "alltoall ms", "total ms"}, 14);
  for (int r : ranks) {
    SimOptions o;
    o.socket = skx_8180();
    o.topo = Topology::twisted_hypercube8();
    // The 8-socket runs use the paper's own non-temporal one-sided flows
    // with dedicated SGD cores — CCL-like behaviour.
    o.backend = SimBackend::kCcl;
    o.strategy = ExchangeStrategy::kAlltoall;
    o.overlap = true;
    o.skewed_indices = cfg.name == "MLPerf";
    const auto it = DlrmSimulator(cfg, o).iteration(r, cfg.global_batch_strong);
    row({fmt_int(r), fmt(it.compute_ms(), 1),
         fmt(it.ar_wait_ms + it.ar_framework_ms, 1),
         fmt(it.a2a_wait_ms + it.a2a_framework_ms, 1), fmt(it.total_ms(), 1)},
        14);
  }
}

}  // namespace

int main() {
  banner("Fig. 15: strong scaling on the 8-socket shared-memory node (simulated)");
  run_config(small_config(), {1, 2, 4, 8});
  run_config(large_config(), {4, 8});
  run_config(mlperf_config(), {1, 2, 4, 8});
  std::printf(
      "\nExpected shape (paper): behaves like a small cluster, except the\n"
      "alltoall cost does NOT decrease from 4 to 8 sockets (twisted-\n"
      "hypercube alltoall schedule is not optimally tuned; even optimal\n"
      "algorithms would only gain ~1.5x).\n");
  return 0;
}
