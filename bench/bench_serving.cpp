// Serving bench: QPS × batch-policy sweep over the online inference path.
//
// For each (offered QPS, batching policy) cell, a Poisson load generator
// drives the InferenceEngine for a fixed request count and one BENCH_JSON
// row reports the per-request latency percentiles, achieved throughput,
// and batch-shape statistics. The point of the sweep is the serving
// trade-off: batch=1 minimizes queueing at low load but saturates first;
// dynamic micro-batching amortizes the forward pass and sustains higher
// offered load at an equal-or-better p99.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/config.hpp"
#include "core/trainer.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/snapshot.hpp"

namespace dlrm {
namespace {

DlrmConfig bench_config() {
  // Table I "small" scaled down so a cell finishes in well under a second
  // of compute; the batching trade-off shape is what matters, not scale.
  return small_config().scaled_down(/*row_divisor=*/256, /*batch_divisor=*/64);
}

struct Policy {
  const char* name;
  serve::BatchPolicy policy;
  bool bucket = false;  // pow2 batch-size bucketing (padded execution)
};

void run_cell(serve::ModelSnapshot& snap, const Dataset& data, double qps,
              const Policy& pol) {
  serve::EngineOptions eopts;
  eopts.policy = pol.policy;
  eopts.queue_capacity = 4096;
  eopts.slo_ms = 5.0;
  eopts.bucket_batches = pol.bucket;
  serve::InferenceEngine engine(snap, data, eopts);
  engine.start();

  serve::LoadGenOptions lopts;
  lopts.qps = qps;
  lopts.requests = static_cast<std::int64_t>(qps / 2);  // ~0.5 s of load
  if (lopts.requests < 500) lopts.requests = 500;
  lopts.fanout = 4;
  lopts.key_space = 1 << 16;
  lopts.zipf_s = 0.9;
  serve::PoissonLoadGen gen(engine, lopts);
  gen.run();
  engine.stop();

  const serve::ServeStats s = engine.stats();
  bench::JsonRow("serving")
      .add("qps_offered", qps)
      .add("policy", pol.name)
      .add("max_batch", pol.policy.max_batch)
      .add("max_wait_us", pol.policy.max_wait_us)
      .add("bucketed", pol.bucket ? 1 : 0)
      .add("requests", s.requests)
      .add("fanout", lopts.fanout)
      .add("p50_ms", s.p50_ms)
      .add("p95_ms", s.p95_ms)
      .add("p99_ms", s.p99_ms)
      .add("max_ms", s.max_ms)
      .add("throughput_rps", s.throughput_rps)
      .add("mean_batch", s.mean_batch)
      .add("batches", s.batches)
      .add("slo_violations", s.slo_violations)
      .emit();
  bench::row({bench::fmt(qps, 0), pol.name, bench::fmt(s.p50_ms),
              bench::fmt(s.p99_ms), bench::fmt(s.throughput_rps, 0),
              bench::fmt(s.mean_batch, 1)});
}

}  // namespace
}  // namespace dlrm

int main() {
  using namespace dlrm;
  bench::banner("online serving: QPS x batch-policy sweep");

  const DlrmConfig c = bench_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  // Serve real (briefly trained) weights, published through the snapshot
  // path the serving engine uses in production.
  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
  trainer.train(8);
  serve::ModelSnapshot snap(c, {});
  snap.publish_from(model, trainer.iterations_done());

  const std::vector<Policy> policies = {
      {"batch1", {.max_batch = 1, .max_wait_us = 0}},
      {"dyn32_1ms", {.max_batch = 32, .max_wait_us = 1000}},
      // Same dynamic policy with pow2 bucketing: pays a few padded rows per
      // batch to keep the engine on ~log2(max_batch) stable shapes.
      {"dyn32_1ms_pow2", {.max_batch = 32, .max_wait_us = 1000}, true},
  };
  const std::vector<double> qps_sweep = {1000.0, 4000.0, 12000.0};

  bench::row({"qps", "policy", "p50ms", "p99ms", "rps", "meanB"});
  for (const double qps : qps_sweep) {
    for (const Policy& pol : policies) {
      run_cell(snap, data, qps, pol);
    }
  }
  return 0;
}
