// Serving bench: QPS × batch-policy sweep over the online inference path,
// plus the admission-control and sharded-tier sections.
//
// For each (offered QPS, batching policy) cell, a Poisson load generator
// drives the InferenceEngine for a fixed request count and one BENCH_JSON
// row reports the per-request latency percentiles, achieved throughput,
// and batch-shape statistics. The point of the sweep is the serving
// trade-off: batch=1 minimizes queueing at low load but saturates first;
// dynamic micro-batching amortizes the forward pass and sustains higher
// offered load at an equal-or-better p99.
//
// The "serving_admission" section overloads the engine with a 2-class mix
// (60% interactive / 40% batch) with and without the p99-driven admission
// controller: the controller-on row must show batch traffic shed while
// the interactive p99 improves vs the controller-off baseline. The
// "serving_sharded" section replays one trace through the model-parallel
// tier at R ∈ {1, 2} for the per-rank overhead of the broadcast/gather
// protocol (results are bit-identical by construction; what is measured
// is cost).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/config.hpp"
#include "core/sharding.hpp"
#include "core/trainer.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/sharded.hpp"
#include "serve/snapshot.hpp"

namespace dlrm {
namespace {

DlrmConfig bench_config() {
  // Table I "small" scaled down so a cell finishes in well under a second
  // of compute; the batching trade-off shape is what matters, not scale.
  return small_config().scaled_down(/*row_divisor=*/256, /*batch_divisor=*/64);
}

struct Policy {
  const char* name;
  serve::BatchPolicy policy;
  bool bucket = false;  // pow2 batch-size bucketing (padded execution)
};

void run_cell(serve::ModelSnapshot& snap, const Dataset& data, double qps,
              const Policy& pol) {
  serve::EngineOptions eopts;
  eopts.policy = pol.policy;
  eopts.queue_capacity = 4096;
  eopts.slo_ms = 5.0;
  eopts.bucket_batches = pol.bucket;
  serve::InferenceEngine engine(snap, data, eopts);
  engine.start();

  serve::LoadGenOptions lopts;
  lopts.qps = qps;
  lopts.requests = static_cast<std::int64_t>(qps / 2);  // ~0.5 s of load
  if (lopts.requests < 500) lopts.requests = 500;
  lopts.fanout = 4;
  lopts.key_space = 1 << 16;
  lopts.zipf_s = 0.9;
  serve::PoissonLoadGen gen(engine, lopts);
  gen.run();
  engine.stop();

  const serve::ServeStats s = engine.stats();
  bench::JsonRow("serving")
      .add("qps_offered", qps)
      .add("policy", pol.name)
      .add("max_batch", pol.policy.max_batch)
      .add("max_wait_us", pol.policy.max_wait_us)
      .add("bucketed", pol.bucket ? 1 : 0)
      .add("requests", s.requests)
      .add("fanout", lopts.fanout)
      .add("p50_ms", s.p50_ms)
      .add("p95_ms", s.p95_ms)
      .add("p99_ms", s.p99_ms)
      .add("max_ms", s.max_ms)
      .add("throughput_rps", s.throughput_rps)
      .add("mean_batch", s.mean_batch)
      .add("batches", s.batches)
      .add("slo_violations", s.slo_violations)
      .emit();
  bench::row({bench::fmt(qps, 0), pol.name, bench::fmt(s.p50_ms),
              bench::fmt(s.p99_ms), bench::fmt(s.throughput_rps, 0),
              bench::fmt(s.mean_batch, 1)});
}

// One overload run with a 60/40 interactive/batch mix; `target_us` == 0
// disables the controller (the coordinated-omission-free baseline).
void run_admission_cell(serve::ModelSnapshot& snap, const Dataset& data,
                        double target_us) {
  serve::EngineOptions eopts;
  eopts.policy = {.max_batch = 32, .max_wait_us = 1000};
  eopts.queue_capacity = 256;
  eopts.slo_ms = 5.0;
  eopts.admission.p99_target_ms = target_us * 1e-3;
  serve::InferenceEngine engine(snap, data, eopts);
  engine.start();

  serve::LoadGenOptions lopts;
  lopts.qps = 20000.0;  // far past saturation on one core
  lopts.requests = 4000;
  lopts.fanout = 4;
  lopts.key_space = 1 << 16;
  lopts.zipf_s = 0.9;
  lopts.interactive_frac = 0.6;
  lopts.drop_when_full = true;
  serve::PoissonLoadGen gen(engine, lopts);
  gen.run();
  engine.stop();

  const serve::ServeStats s = engine.stats();
  const auto& inter = s.by_class[0];
  const auto& batch = s.by_class[1];
  bench::JsonRow("serving_admission")
      .add("qps_offered", lopts.qps)
      .add("interactive_frac", lopts.interactive_frac)
      .add("p99_target_us", target_us)
      .add("requests", lopts.requests)
      .add("served", s.requests)
      .add("rejected", s.rejected)
      .add("shed", s.shed)
      .add("deferred", batch.deferred)
      .add("interactive_served", inter.served)
      .add("interactive_p50_ms", inter.p50_ms)
      .add("interactive_p99_ms", inter.p99_ms)
      .add("batch_served", batch.served)
      .add("batch_p99_ms", batch.p99_ms)
      .add("admission_state", serve::to_string(s.admission_state))
      .emit();
  bench::row({target_us > 0 ? "controller" : "baseline",
              bench::fmt(inter.p99_ms), bench::fmt(batch.p99_ms),
              bench::fmt(static_cast<double>(s.shed), 0),
              bench::fmt(static_cast<double>(s.rejected), 0)});
}

// Offline trace replay through the sharded tier at R ranks: wall-clock per
// request of the broadcast/lookup/gather/merge/dense pipeline.
void run_sharded_cell(const DlrmConfig& c, DlrmModel& model,
                      std::int64_t version, const Dataset& data, int ranks,
                      bool bucket = false) {
  const ShardingPlan plan = ShardingPlan::round_robin(c.table_rows, ranks);
  serve::ShardedSnapshot snap(c, {}, plan);
  snap.publish_from(model, version);

  serve::LoadGenOptions lopts;
  lopts.qps = 1e6;
  lopts.requests = 2000;
  lopts.fanout = 4;
  lopts.key_space = 1 << 16;
  lopts.zipf_s = 0.9;
  const std::vector<serve::Request> trace = serve::make_trace(lopts);

  serve::ShardedEngineOptions eopts;
  eopts.policy = {.max_batch = 32, .max_wait_us = 0};
  eopts.bucket_batches = bucket;
  Profiler prof;
  serve::ShardedInferenceEngine engine(snap, data, eopts, &prof);
  const double t0 = now_sec();
  const std::vector<serve::Response> rs = engine.run_trace(trace);
  const double wall = now_sec() - t0;

  bench::JsonRow("serving_sharded")
      .add("serve_ranks", ranks)
      .add("shards", plan.num_shards())
      .add("bucketed", bucket ? 1 : 0)
      .add("padded_rows", prof.total_sec("serve_padded"))
      .add("requests", static_cast<std::int64_t>(rs.size()))
      .add("fanout", lopts.fanout)
      .add("wall_sec", wall)
      .add("throughput_rps", static_cast<double>(rs.size()) / wall)
      .emit();
  bench::row({std::string("R") + std::to_string(ranks) +
                  (bucket ? "_pow2" : ""),
              bench::fmt(static_cast<double>(rs.size()) / wall, 0)});
}

}  // namespace
}  // namespace dlrm

int main() {
  using namespace dlrm;
  bench::banner("online serving: QPS x batch-policy sweep");

  const DlrmConfig c = bench_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  // Serve real (briefly trained) weights, published through the snapshot
  // path the serving engine uses in production.
  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
  trainer.train(8);
  serve::ModelSnapshot snap(c, {});
  snap.publish_from(model, trainer.iterations_done());

  const std::vector<Policy> policies = {
      {"batch1", {.max_batch = 1, .max_wait_us = 0}},
      {"dyn32_1ms", {.max_batch = 32, .max_wait_us = 1000}},
      // Same dynamic policy with pow2 bucketing: pays a few padded rows per
      // batch to keep the engine on ~log2(max_batch) stable shapes.
      {"dyn32_1ms_pow2", {.max_batch = 32, .max_wait_us = 1000}, true},
  };
  const std::vector<double> qps_sweep = {1000.0, 4000.0, 12000.0};

  bench::row({"qps", "policy", "p50ms", "p99ms", "rps", "meanB"});
  for (const double qps : qps_sweep) {
    for (const Policy& pol : policies) {
      run_cell(snap, data, qps, pol);
    }
  }

  bench::banner("admission control: 2-class overload, controller off/on");
  bench::row({"mode", "int_p99", "bat_p99", "shed", "rej"});
  run_admission_cell(snap, data, /*target_us=*/0.0);
  run_admission_cell(snap, data, /*target_us=*/20000.0);

  bench::banner("sharded serving tier: trace replay per rank count");
  bench::row({"ranks", "rps"});
  for (const int ranks : {1, 2}) {
    run_sharded_cell(c, model, trainer.iterations_done(), data, ranks);
  }
  // Pow2 bucketing on the sharded path (pads before the broadcast so every
  // rank runs the padded shape); results stay bit-identical, cost differs.
  run_sharded_cell(c, model, trainer.iterations_done(), data, /*ranks=*/2,
                   /*bucket=*/true);
  return 0;
}
