// Reproduces paper Figs. 3/4 as validated graph properties: the UPI twisted
// hypercube and the OPA pruned fat tree.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/topology.hpp"

using namespace dlrm;
using namespace dlrm::bench;

int main() {
  banner("Fig. 3: 8-socket UPI twisted hypercube");
  const Topology upi = Topology::twisted_hypercube8();
  std::printf("sockets: %d, unique UPI links: %d, aggregate: %.0f GB/s (paper: ~260)\n",
              upi.sockets(), upi.unique_links(), upi.aggregate_bw() / 1e9);
  std::printf("hop matrix (0=self):\n    ");
  for (int b = 0; b < 8; ++b) std::printf("%2d ", b);
  std::printf("\n");
  for (int a = 0; a < 8; ++a) {
    std::printf("%2d: ", a);
    for (int b = 0; b < 8; ++b) std::printf("%2d ", upi.hops(a, b));
    std::printf("\n");
  }
  std::printf("per socket: 3 neighbours at 1 hop, 4 at 2 hops; mean hops %.3f\n",
              upi.mean_hops(8));

  banner("Fig. 4: 64-socket OPA pruned fat tree (2 leaves x 32, 2:1 pruning)");
  const Topology opa = Topology::pruned_fat_tree(64);
  std::printf("sockets: %d, endpoint bw: %.1f GB/s, latency: %.1f us\n",
              opa.sockets(), opa.injection_bw() / 1e9, opa.latency() * 1e6);
  std::printf("leaf-local hops: %d, cross-leaf hops: %d\n", opa.hops(0, 1),
              opa.hops(0, 63));
  std::printf("cross-leaf uplink capacity: %.0f GB/s per direction (16 x 12.5)\n",
              16 * 12.5);

  banner("Derived collective bandwidths");
  row({"topology", "op", "ranks", "per-rank GB/s"}, 22);
  for (int r : {2, 4, 8}) {
    row({"UPI-hypercube", "alltoall", fmt_int(r), fmt(upi.alltoall_rank_bw(r) / 1e9, 1)}, 22);
  }
  for (int r : {8, 32, 64}) {
    row({"OPA-fat-tree", "alltoall", fmt_int(r), fmt(opa.alltoall_rank_bw(r) / 1e9, 1)}, 22);
  }
  for (int r : {8, 64}) {
    row({"OPA-fat-tree", "allreduce", fmt_int(r), fmt(opa.allreduce_rank_bw(r) / 1e9, 1)}, 22);
  }
  std::printf(
      "\nNote how the UPI alltoall bandwidth does not grow 4 -> 8 sockets\n"
      "(twisted-hypercube schedule) and how 2:1 pruning lowers the 64-rank\n"
      "fat-tree alltoall below the 12.5 GB/s NIC line.\n");
  return 0;
}
