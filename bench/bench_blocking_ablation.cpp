// Ablation: the blocked [Cb][Nb][bn][bc] / [Kb][Cb][bc][bk] tensor layouts
// vs the flat layout across minibatch sizes — the design choice of paper
// Sect. III.B ("small minibatch values may not fully exploit reuse").
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "kernels/mlp.hpp"

using namespace dlrm;
using namespace dlrm::bench;

int main() {
  banner("Ablation: blocked vs flat MLP layouts across minibatch sizes");
  const std::int64_t width = 1024;
  std::vector<std::int64_t> dims(4, width);

  row({"N", "blocked fwd ms", "flat fwd ms", "speedup", "blocked bwd ms",
       "flat bwd ms", "speedup"},
      16);
  for (std::int64_t n : {64, 128, 256, 512, 1024, 2048}) {
    Rng rng(n);
    Mlp blocked(dims, Activation::kRelu, Activation::kRelu);
    blocked.init(rng);
    blocked.set_batch(n);
    Rng rng2(n);
    MlpFlat flat(dims, Activation::kRelu, Activation::kRelu);
    flat.init(rng2);
    flat.set_batch(n);

    Tensor<float> x({n, width});
    fill_uniform(x, rng, 1.0f);
    Tensor<float> dy({n, width});
    fill_uniform(dy, rng, 0.1f);

    const double bf = time_median_sec([&] { blocked.forward(x); }) * 1e3;
    const double bb = time_median_sec([&] { blocked.backward(dy); }) * 1e3;
    const double ff = time_median_sec([&] { flat.forward(x); }) * 1e3;
    const double fb = time_median_sec([&] { flat.backward(dy); }) * 1e3;
    row({fmt_int(n), fmt(bf, 2), fmt(ff, 2), fmt(ff / bf, 2) + "x", fmt(bb, 2),
         fmt(fb, 2), fmt(fb / bb, 2) + "x"},
        16);
  }

  // Block-size sweep at fixed shape: which (bn, bc/bk) targets win.
  std::printf("\n-- block-target sweep, N=1024, C=K=1024, fwd+bwd --\n");
  row({"bn", "bc=bk", "fwd ms", "bwd ms"}, 12);
  for (std::int64_t bn : {16, 32, 64}) {
    for (std::int64_t bck : {32, 64}) {
      Rng rng(99);
      BlockTargets t{bn, bck, bck};
      Mlp mlp(dims, Activation::kRelu, Activation::kRelu, t);
      mlp.init(rng);
      mlp.set_batch(1024);
      Tensor<float> x({1024, width});
      fill_uniform(x, rng, 1.0f);
      Tensor<float> dy({1024, width});
      fill_uniform(dy, rng, 0.1f);
      const double f = time_median_sec([&] { mlp.forward(x); }) * 1e3;
      const double b = time_median_sec([&] { mlp.backward(dy); }) * 1e3;
      row({fmt_int(bn), fmt_int(bck), fmt(f, 2), fmt(b, 2)}, 12);
    }
  }
  return 0;
}
