// Micro-benchmark (google-benchmark): batch-reduce GEMM kernel vs naive
// reference, and the micro-tile (bn/bk) ablation behind the paper's blocked
// layout choice (Sect. III.B).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "kernels/gemm.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace dlrm;

struct BrgemmFixture {
  std::vector<Tensor<float>> as, bs;
  std::vector<const float*> aptrs, bptrs;
  Tensor<float> c;

  BrgemmFixture(int count, int m, int k, int n) {
    Rng rng(1);
    for (int i = 0; i < count; ++i) {
      as.emplace_back(std::vector<std::int64_t>{m, k});
      bs.emplace_back(std::vector<std::int64_t>{k, n});
      fill_uniform(as.back(), rng, 1.0f);
      fill_uniform(bs.back(), rng, 1.0f);
      aptrs.push_back(as.back().data());
      bptrs.push_back(bs.back().data());
    }
    c.reshape({m, n});
    c.zero();
  }
};

// Sweep micro-tile shapes: (count, bn, bc, bk).
void BM_BatchReduceGemm(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const int k = static_cast<int>(state.range(2));
  const int n = static_cast<int>(state.range(3));
  BrgemmFixture f(count, m, k, n);
  for (auto _ : state) {
    batchreduce_gemm(f.aptrs.data(), f.bptrs.data(), f.c.data(), count, m, k,
                     n, true);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * count * m * k * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BatchReduceGemm)
    ->Args({16, 32, 64, 64})
    ->Args({16, 16, 64, 64})
    ->Args({16, 48, 64, 64})
    ->Args({16, 32, 32, 64})
    ->Args({16, 32, 64, 32})
    ->Args({16, 32, 64, 16})
    ->Args({32, 32, 64, 64})
    ->Args({16, 32, 13, 37});  // generic-width fallback path

void BM_GemmReference(benchmark::State& state) {
  const int m = 32, k = 64, n = 64, count = 16;
  BrgemmFixture f(count, m, k, n);
  for (auto _ : state) {
    for (int i = 0; i < count; ++i) {
      gemm_reference(f.aptrs[static_cast<std::size_t>(i)],
                     f.bptrs[static_cast<std::size_t>(i)], f.c.data(), m, k, n,
                     1.0f, 1.0f);
    }
    benchmark::DoNotOptimize(f.c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * count * m * k * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmReference);

void BM_BatchReduceGemmAt(benchmark::State& state) {
  // Transposed-A variant (backward-by-weights pass).
  const int count = 16, m = 64, k = 32, n = 64;
  std::vector<Tensor<float>> as, bs;
  std::vector<const float*> aptrs, bptrs;
  Rng rng(2);
  for (int i = 0; i < count; ++i) {
    as.emplace_back(std::vector<std::int64_t>{k, m});
    bs.emplace_back(std::vector<std::int64_t>{k, n});
    fill_uniform(as.back(), rng, 1.0f);
    fill_uniform(bs.back(), rng, 1.0f);
    aptrs.push_back(as.back().data());
    bptrs.push_back(bs.back().data());
  }
  Tensor<float> c({m, n});
  c.zero();
  for (auto _ : state) {
    batchreduce_gemm_at(aptrs.data(), bptrs.data(), c.data(), count, m, k, n, true);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * count * m * k * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BatchReduceGemmAt);

}  // namespace

BENCHMARK_MAIN();
