// Reproduces paper Fig. 5: single-socket MLP training kernel performance.
//
// Compares the blocked batch-reduce implementation ("this work") against the
// flat large-GEMM baseline ("framework/MKL-style") for all three passes
// (FWD, BWD overall) at N=1024, C=K in {1024, 2048, 4096}, 5 layers.
// Absolute GFLOPS depend on this machine; the *ratio* blocked/flat and the
// fraction of the measured FMA peak are the reproduced quantities.
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "kernels/mlp.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

double mlp_gflops(std::int64_t n, const std::vector<std::int64_t>& dims,
                  double sec, double flop_mult) {
  double flops = 0.0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    flops += 2.0 * static_cast<double>(n) * static_cast<double>(dims[i]) *
             static_cast<double>(dims[i + 1]);
  }
  return flops * flop_mult / sec / 1e9;
}

}  // namespace

int main() {
  banner("Fig. 5: MLP training kernel performance, single socket (real)");
  const std::int64_t n = 1024;
  const int threads = static_cast<int>(std::thread::hardware_concurrency());
  const double peak =
      measured_core_peak_flops() * threads / 1e9;  // machine proxy, GFLOPS
  std::printf("threads=%d, measured FMA peak proxy: %.0f GFLOPS\n", threads, peak);

  row({"C=K", "pass", "impl", "GFLOPS", "%peak"}, 12);
  for (std::int64_t width : {1024, 2048, 4096}) {
    // 5-layer MLP as in the paper's standalone kernel study.
    std::vector<std::int64_t> dims(6, width);
    Rng rng(width);

    Mlp blocked(dims, Activation::kRelu, Activation::kRelu);
    blocked.init(rng);
    blocked.set_batch(n);
    MlpFlat flat(dims, Activation::kRelu, Activation::kRelu);
    Rng rng2(width);
    flat.init(rng2);
    flat.set_batch(n);

    Tensor<float> x({n, width});
    fill_uniform(x, rng, 1.0f);
    Tensor<float> dy({n, width});
    fill_uniform(dy, rng, 0.1f);

    const double fwd_blocked = time_median_sec([&] { blocked.forward(x); });
    const double bwd_blocked = time_median_sec([&] { blocked.backward(dy); });
    const double fwd_flat = time_median_sec([&] { flat.forward(x); });
    const double bwd_flat = time_median_sec([&] { flat.backward(dy); });

    auto emit = [&](const char* pass, const char* impl, double sec, double mult) {
      const double gf = mlp_gflops(n, dims, sec, mult);
      row({fmt_int(width), pass, impl, fmt(gf, 0), fmt(gf / peak * 100, 0) + "%"}, 12);
    };
    emit("FWD", "this-work", fwd_blocked, 1.0);
    emit("FWD", "flat-GEMM", fwd_flat, 1.0);
    emit("BWD", "this-work", bwd_blocked, 2.0);  // bwd_d + bwd_w
    emit("BWD", "flat-GEMM", bwd_flat, 2.0);
    std::printf("  speedup blocked/flat: FWD %.2fx, BWD %.2fx\n",
                fwd_flat / fwd_blocked, bwd_flat / bwd_blocked);
  }
  std::printf(
      "\nExpected shape (paper): blocked implementation ~72%% of peak vs\n"
      "~61%% for the framework large-GEMM path (~18%% slower than ours).\n");
  return 0;
}
