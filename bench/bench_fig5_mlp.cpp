// Reproduces paper Fig. 5: single-socket MLP training kernel performance.
//
// Compares the blocked batch-reduce implementation ("this work") against the
// flat large-GEMM baseline ("framework/MKL-style") for all three passes
// (FWD, BWD overall) at N=1024, C=K in {1024, 2048, 4096}, 5 layers, and
// sweeps the blocked implementation over fp32 vs bf16 (paper Sect. III.C:
// bf16 tiles with fp32 accumulation — on real AVX512-BF16 silicon the bf16
// path doubles FMA throughput; in this software emulation the reproduced
// quantity is correctness of the sweep plumbing plus the halved tensor
// footprint). One BENCH_JSON row is emitted per (width, pass, impl) config.
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "kernels/mlp.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

double mlp_gflops(std::int64_t n, const std::vector<std::int64_t>& dims,
                  double sec, double flop_mult) {
  double flops = 0.0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    flops += 2.0 * static_cast<double>(n) * static_cast<double>(dims[i]) *
             static_cast<double>(dims[i + 1]);
  }
  return flops * flop_mult / sec / 1e9;
}

}  // namespace

int main() {
  banner("Fig. 5: MLP training kernel performance, single socket (real)");
  const std::int64_t n = 1024;
  const int threads = static_cast<int>(std::thread::hardware_concurrency());
  const double peak =
      measured_core_peak_flops() * threads / 1e9;  // machine proxy, GFLOPS
  std::printf("threads=%d, measured FMA peak proxy: %.0f GFLOPS\n", threads, peak);

  row({"C=K", "pass", "impl", "GFLOPS", "%peak"}, 14);
  for (std::int64_t width : {1024, 2048, 4096}) {
    // 5-layer MLP as in the paper's standalone kernel study.
    std::vector<std::int64_t> dims(6, width);
    Rng rng(width);

    Mlp blocked(dims, Activation::kRelu, Activation::kRelu);
    blocked.init(rng);
    blocked.set_batch(n);
    Mlp blocked16(dims, Activation::kRelu, Activation::kRelu, {},
                  Precision::kBf16);
    Rng rng16(width);
    blocked16.init(rng16);
    blocked16.set_batch(n);
    MlpFlat flat(dims, Activation::kRelu, Activation::kRelu);
    Rng rng2(width);
    flat.init(rng2);
    flat.set_batch(n);

    Tensor<float> x({n, width});
    fill_uniform(x, rng, 1.0f);
    Tensor<float> dy({n, width});
    fill_uniform(dy, rng, 0.1f);

    const double fwd_blocked = time_median_sec([&] { blocked.forward(x); });
    const double bwd_blocked = time_median_sec([&] { blocked.backward(dy); });
    const double fwd_bf16 = time_median_sec([&] { blocked16.forward(x); });
    const double bwd_bf16 = time_median_sec([&] { blocked16.backward(dy); });
    const double fwd_flat = time_median_sec([&] { flat.forward(x); });
    const double bwd_flat = time_median_sec([&] { flat.backward(dy); });

    auto emit = [&](const char* pass, const char* impl, double sec, double mult) {
      const double gf = mlp_gflops(n, dims, sec, mult);
      row({fmt_int(width), pass, impl, fmt(gf, 0), fmt(gf / peak * 100, 0) + "%"}, 14);
      JsonRow("fig5_mlp")
          .add("width", width)
          .add("batch", n)
          .add("pass", pass)
          .add("impl", impl)
          .add("sec", sec)
          .add("gflops", gf)
          .add("pct_peak", gf / peak * 100.0)
          .emit();
    };
    emit("FWD", "blocked-fp32", fwd_blocked, 1.0);
    emit("FWD", "blocked-bf16", fwd_bf16, 1.0);
    emit("FWD", "flat-GEMM", fwd_flat, 1.0);
    emit("BWD", "blocked-fp32", bwd_blocked, 2.0);  // bwd_d + bwd_w
    emit("BWD", "blocked-bf16", bwd_bf16, 2.0);
    emit("BWD", "flat-GEMM", bwd_flat, 2.0);
    std::printf("  speedup blocked-fp32/flat: FWD %.2fx, BWD %.2fx; "
                "bf16/fp32: FWD %.2fx, BWD %.2fx\n",
                fwd_flat / fwd_blocked, bwd_flat / bwd_blocked,
                fwd_blocked / fwd_bf16, bwd_blocked / bwd_bf16);
  }
  std::printf(
      "\nExpected shape (paper): blocked implementation ~72%% of peak vs\n"
      "~61%% for the framework large-GEMM path (~18%% slower than ours).\n");
  return 0;
}
