// Reproduces paper Fig. 14: weak-scaling communication split
// (Alltoall/Allreduce x Framework/Wait).
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks) {
  std::printf("\n-- %s (LN=%lld) --\n", cfg.name.c_str(),
              static_cast<long long>(cfg.local_batch_weak));
  row({"mode", "backend", "ranks", "a2a-frame", "ar-frame", "a2a-wait",
       "ar-wait"},
      12);
  for (bool overlap : {true, false}) {
    for (SimBackend backend : {SimBackend::kMpi, SimBackend::kCcl}) {
      for (int r : ranks) {
        SimOptions o;
        o.socket = clx_8280();
        o.topo = Topology::pruned_fat_tree(64);
        o.backend = backend;
        o.strategy = ExchangeStrategy::kAlltoall;
        o.overlap = overlap;
        o.skewed_indices = cfg.name == "MLPerf";
        const auto it =
            DlrmSimulator(cfg, o).iteration(r, cfg.local_batch_weak * r);
        row({overlap ? "Overlap" : "Blocking", to_string(backend), fmt_int(r),
             fmt(it.a2a_framework_ms, 2), fmt(it.ar_framework_ms, 2),
             fmt(it.a2a_wait_ms, 2), fmt(it.ar_wait_ms, 2)},
            12);
      }
    }
  }
}

}  // namespace

int main() {
  banner("Fig. 14: weak-scaling comm split (simulated)");
  run_config(large_config(), {4, 8, 16, 32, 64});
  run_config(mlperf_config(), {2, 4, 8, 16, 26});
  std::printf(
      "\nExpected shape (paper): under weak scaling the alltoall volume per\n"
      "rank stays constant while allreduce cost grows with R, so the MLPerf\n"
      "comm cost first falls (to ~8R) then rises again.\n");
  // Placement quality under weak scaling (GN grows with R): per-rank
  // embedding-time imbalance of the three sharding policies.
  run_sharding_imbalance("fig14_weak_comm_split", /*weak=*/true);
  return 0;
}
