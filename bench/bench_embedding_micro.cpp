// Micro-benchmark (google-benchmark): EmbeddingBag kernels — update
// strategies under uniform vs Zipf index streams, and the fused
// backward+update ablation (paper Sect. III.A: up to 1.6x).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "kernels/embedding.hpp"

namespace {

using namespace dlrm;

BagBatch make_bags(std::int64_t n, std::int64_t pooling, std::int64_t rows,
                   double skew) {
  BagBatch bags;
  bags.indices.reshape({n * pooling});
  bags.offsets.reshape({n + 1});
  Rng rng(7);
  ZipfSampler zipf(rows, skew);
  for (std::int64_t i = 0; i < n * pooling; ++i) bags.indices[i] = zipf(rng);
  for (std::int64_t i = 0; i <= n; ++i) bags.offsets[i] = i * pooling;
  return bags;
}

constexpr std::int64_t kRows = 200000, kDim = 64, kBatch = 2048, kPool = 20;

void BM_EmbeddingForward(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim);
  Rng rng(1);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> out({kBatch, kDim});
  for (auto _ : state) {
    table.forward(bags, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GB/s"] = benchmark::Counter(
      static_cast<double>(kBatch * kPool * kDim * 4),
      benchmark::Counter::kIsIterationInvariantRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_EmbeddingForward);

// strategy x skew sweep for the fused update.
void BM_EmbeddingUpdate(benchmark::State& state) {
  const auto strategy = static_cast<UpdateStrategy>(state.range(0));
  const double skew = state.range(1) == 0 ? 0.0 : 1.05;
  EmbeddingTable table(kRows, kDim);
  Rng rng(2);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, skew);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  for (auto _ : state) {
    table.fused_backward_update(dy.data(), bags, 0.01f, strategy);
  }
  state.SetLabel(std::string(to_string(strategy)) +
                 (skew > 0 ? "/zipf" : "/uniform"));
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kBatch * kPool),
      benchmark::Counter::kIsIterationInvariantRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_EmbeddingUpdate)
    ->ArgsProduct({{static_cast<long>(UpdateStrategy::kAtomicXchg),
                    static_cast<long>(UpdateStrategy::kRtm),
                    static_cast<long>(UpdateStrategy::kRaceFree)},
                   {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Fused vs unfused update (the 1.6x claim).
void BM_EmbeddingUpdateUnfused(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim);
  Rng rng(3);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  Tensor<float> dlookup;
  for (auto _ : state) {
    table.backward(dy.data(), bags, dlookup);
    table.apply_update(dlookup, bags, 0.01f, UpdateStrategy::kRaceFree);
  }
  state.SetLabel("unfused/RaceFree");
}
BENCHMARK(BM_EmbeddingUpdateUnfused)->Unit(benchmark::kMillisecond);

void BM_EmbeddingUpdateFused(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim);
  Rng rng(3);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  for (auto _ : state) {
    table.fused_backward_update(dy.data(), bags, 0.01f, UpdateStrategy::kRaceFree);
  }
  state.SetLabel("fused/RaceFree");
}
BENCHMARK(BM_EmbeddingUpdateFused)->Unit(benchmark::kMillisecond);

// The naive reference kernel on a small table (it is O(M*E), keep it tiny).
void BM_EmbeddingUpdateReference(benchmark::State& state) {
  EmbeddingTable table(20000, kDim);
  Rng rng(4);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(256, 4, 20000, 0.0);
  Tensor<float> dy({256, kDim});
  fill_uniform(dy, rng, 0.1f);
  Tensor<float> dlookup;
  for (auto _ : state) {
    table.backward(dy.data(), bags, dlookup);
    table.apply_update(dlookup, bags, 0.01f, UpdateStrategy::kReference);
  }
  state.SetLabel("reference/dense-sweep");
}
BENCHMARK(BM_EmbeddingUpdateReference)->Unit(benchmark::kMillisecond);

// Split-SGD embedding update (16-bit hi/lo) vs fp32.
void BM_EmbeddingUpdateSplit(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim, EmbedPrecision::kBf16Split);
  Rng rng(5);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  for (auto _ : state) {
    table.fused_backward_update(dy.data(), bags, 0.01f, UpdateStrategy::kRaceFree);
  }
  state.SetLabel("fused/RaceFree/bf16-split");
}
BENCHMARK(BM_EmbeddingUpdateSplit)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
