// Micro-benchmark (google-benchmark): EmbeddingBag kernels — update
// strategies under uniform vs Zipf index streams, the fused
// backward+update ablation (paper Sect. III.A: up to 1.6x), and the
// hot-row cache tier. Before the google-benchmark run, a BENCH_JSON row
// is emitted per (precision, Zipf alpha, cache capacity) sweep point so
// future PRs can track the cache's hit-rate/throughput trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "kernels/embedding.hpp"

namespace {

using namespace dlrm;

BagBatch make_bags(std::int64_t n, std::int64_t pooling, std::int64_t rows,
                   double skew) {
  BagBatch bags;
  bags.indices.reshape({n * pooling});
  bags.offsets.reshape({n + 1});
  Rng rng(7);
  ZipfSampler zipf(rows, skew);
  for (std::int64_t i = 0; i < n * pooling; ++i) bags.indices[i] = zipf(rng);
  for (std::int64_t i = 0; i <= n; ++i) bags.offsets[i] = i * pooling;
  return bags;
}

constexpr std::int64_t kRows = 200000, kDim = 64, kBatch = 2048, kPool = 20;

void BM_EmbeddingForward(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim);
  Rng rng(1);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> out({kBatch, kDim});
  for (auto _ : state) {
    table.forward(bags, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GB/s"] = benchmark::Counter(
      static_cast<double>(kBatch * kPool * kDim * 4),
      benchmark::Counter::kIsIterationInvariantRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_EmbeddingForward);

// strategy x skew sweep for the fused update.
void BM_EmbeddingUpdate(benchmark::State& state) {
  const auto strategy = static_cast<UpdateStrategy>(state.range(0));
  const double skew = state.range(1) == 0 ? 0.0 : 1.05;
  EmbeddingTable table(kRows, kDim);
  Rng rng(2);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, skew);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  for (auto _ : state) {
    table.fused_backward_update(dy.data(), bags, 0.01f, strategy);
  }
  state.SetLabel(std::string(to_string(strategy)) +
                 (skew > 0 ? "/zipf" : "/uniform"));
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(kBatch * kPool),
      benchmark::Counter::kIsIterationInvariantRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_EmbeddingUpdate)
    ->ArgsProduct({{static_cast<long>(UpdateStrategy::kAtomicXchg),
                    static_cast<long>(UpdateStrategy::kRtm),
                    static_cast<long>(UpdateStrategy::kRaceFree)},
                   {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Fused vs unfused update (the 1.6x claim).
void BM_EmbeddingUpdateUnfused(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim);
  Rng rng(3);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  Tensor<float> dlookup;
  for (auto _ : state) {
    table.backward(dy.data(), bags, dlookup);
    table.apply_update(dlookup, bags, 0.01f, UpdateStrategy::kRaceFree);
  }
  state.SetLabel("unfused/RaceFree");
}
BENCHMARK(BM_EmbeddingUpdateUnfused)->Unit(benchmark::kMillisecond);

void BM_EmbeddingUpdateFused(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim);
  Rng rng(3);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  for (auto _ : state) {
    table.fused_backward_update(dy.data(), bags, 0.01f, UpdateStrategy::kRaceFree);
  }
  state.SetLabel("fused/RaceFree");
}
BENCHMARK(BM_EmbeddingUpdateFused)->Unit(benchmark::kMillisecond);

// The naive reference kernel on a small table (it is O(M*E), keep it tiny).
void BM_EmbeddingUpdateReference(benchmark::State& state) {
  EmbeddingTable table(20000, kDim);
  Rng rng(4);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(256, 4, 20000, 0.0);
  Tensor<float> dy({256, kDim});
  fill_uniform(dy, rng, 0.1f);
  Tensor<float> dlookup;
  for (auto _ : state) {
    table.backward(dy.data(), bags, dlookup);
    table.apply_update(dlookup, bags, 0.01f, UpdateStrategy::kReference);
  }
  state.SetLabel("reference/dense-sweep");
}
BENCHMARK(BM_EmbeddingUpdateReference)->Unit(benchmark::kMillisecond);

// Split-SGD embedding update (16-bit hi/lo) vs fp32.
void BM_EmbeddingUpdateSplit(benchmark::State& state) {
  EmbeddingTable table(kRows, kDim, EmbedPrecision::kBf16Split);
  Rng rng(5);
  table.init(rng, 1.0f);
  BagBatch bags = make_bags(kBatch, kPool, kRows, 0.0);
  Tensor<float> dy({kBatch, kDim});
  fill_uniform(dy, rng, 0.1f);
  for (auto _ : state) {
    table.fused_backward_update(dy.data(), bags, 0.01f, UpdateStrategy::kRaceFree);
  }
  state.SetLabel("fused/RaceFree/bf16-split");
}
BENCHMARK(BM_EmbeddingUpdateSplit)->Unit(benchmark::kMillisecond);

// ---- Hot-row cache sweep ---------------------------------------------------
//
// Measures the combined forward + fused-update path (the two kernels the
// tier dispatches) per (precision, Zipf alpha, cache capacity). Capacity 0
// is the uncached baseline each speedup is computed against. Admission is
// the exact top-K of the measured index stream, so the sweep reports the
// tier's ceiling rather than a policy's approximation of it.
void emit_cache_sweep_rows() {
  const std::int64_t lookups = kBatch * kPool;
  for (EmbedPrecision precision :
       {EmbedPrecision::kFp32, EmbedPrecision::kBf16Split}) {
    for (double alpha : {0.8, 1.05}) {
      BagBatch bags = make_bags(kBatch, kPool, kRows, alpha);
      // Exact per-row frequency of this stream → top-K admission set.
      std::vector<std::int64_t> freq(static_cast<std::size_t>(kRows), 0);
      for (std::int64_t i = 0; i < lookups; ++i) {
        ++freq[static_cast<std::size_t>(bags.indices[i])];
      }
      std::vector<std::int64_t> order(static_cast<std::size_t>(kRows));
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
        return freq[static_cast<std::size_t>(a)] >
               freq[static_cast<std::size_t>(b)];
      });

      double base_sec = 0.0;
      for (double frac : {0.0, 0.05, 0.10}) {
        EmbeddingTable table(kRows, kDim, precision);
        Rng rng(6);
        table.init(rng, 1.0f);
        Tensor<float> out({kBatch, kDim});
        Tensor<float> dy({kBatch, kDim});
        fill_uniform(dy, rng, 0.1f);

        const std::int64_t cap =
            static_cast<std::int64_t>(frac * static_cast<double>(kRows));
        if (cap > 0) {
          EmbCacheOptions copts;
          copts.capacity = cap;
          copts.policy = EmbCachePolicy::kHist;
          table.configure_cache(copts);
          table.admit_rows(order.data(), cap);
        }
        table.reset_cache_stats();

        const double sec = dlrm::bench::time_median_sec([&] {
          table.forward(bags, out.data());
          table.fused_backward_update(dy.data(), bags, 0.01f,
                                      UpdateStrategy::kRaceFree);
        });
        if (frac == 0.0) base_sec = sec;
        const EmbCacheStats st = table.cache_stats();
        dlrm::bench::JsonRow("emb_cache_sweep")
            .add("precision", to_string(precision))
            .add("zipf_alpha", alpha)
            .add("rows", kRows)
            .add("capacity_rows", cap)
            .add("capacity_frac", frac)
            .add("lookups", lookups)
            .add("hit_rate", st.hit_rate())
            .add("ns_per_row", sec / static_cast<double>(lookups) * 1e9)
            .add("speedup_vs_uncached", sec > 0 ? base_sec / sec : 1.0)
            .emit();
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  emit_cache_sweep_rows();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
