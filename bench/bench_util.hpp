// Shared helpers for the figure/table reproduction benches: aligned table
// printing, repetition timing, and a measured machine peak proxy.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace dlrm::bench {

/// Prints a header banner naming the reproduced paper artifact.
inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row printer: pass column strings.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// Median-of-repetitions timing of fn() in seconds; runs one warmup.
inline double time_median_sec(const std::function<void()>& fn, int reps = 5) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const Timer t;
    fn();
    times.push_back(t.elapsed_sec());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Measured single-core FMA throughput proxy (FLOP/s) via an in-register
/// kernel; multiply by core count for a machine peak estimate. Used to
/// report "fraction of peak" like Fig. 5 without trusting nominal numbers.
double measured_core_peak_flops();

}  // namespace dlrm::bench
