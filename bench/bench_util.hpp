// Shared helpers for the figure/table reproduction benches: aligned table
// printing, repetition timing, and a measured machine peak proxy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace dlrm::bench {

/// Prints a header banner naming the reproduced paper artifact.
inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Fixed-width row printer: pass column strings.
inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

/// Median-of-repetitions timing of fn() in seconds; runs one warmup.
inline double time_median_sec(const std::function<void()>& fn, int reps = 5) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const Timer t;
    fn();
    times.push_back(t.elapsed_sec());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Measured single-core FMA throughput proxy (FLOP/s) via an in-register
/// kernel; multiply by core count for a machine peak estimate. Used to
/// report "fraction of peak" like Fig. 5 without trusting nominal numbers.
double measured_core_peak_flops();

/// Real mini-run comparing the sharding policies on a skewed table set (one
/// table 8x the rows and lookups of the rest): trains a few iterations per
/// (policy, rank count) on in-process ranks and emits one BENCH_JSON row
/// each with the per-rank embedding-time max/mean (placement quality), the
/// planner's modelled cost imbalance, per-rank row footprints, and the
/// first/last losses (convergence check). `weak` scales GN with the rank
/// count (Fig. 14 geometry) instead of holding it fixed (Fig. 11).
void run_sharding_imbalance(const std::string& bench_name, bool weak);

/// Real mini-run of the live shard re-balancer: starts from a deliberately
/// lopsided placement of the skewed table set, trains with the imbalance
/// watcher armed, and emits one BENCH_JSON row per rank count with the
/// steps-to-trigger, the migration stall, rows migrated, and the windowed
/// embedding-time imbalance before vs after the move.
void run_sharding_rebalance(const std::string& bench_name);

/// One machine-consumable result line: benches emit a compact JSON object
/// per configuration so successive PRs can track precision/performance
/// trajectories by grepping "^BENCH_JSON".
///
///   JsonRow("fig5_mlp").add("width", 1024).add("impl", "blocked-bf16")
///       .add("gflops", 123.4).emit();
/// → BENCH_JSON {"bench":"fig5_mlp","width":1024,"impl":"blocked-bf16",...}
class JsonRow {
 public:
  explicit JsonRow(const std::string& bench) { add("bench", bench); }

  JsonRow& add(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\":\"" + value + "\"");
    return *this;
  }
  JsonRow& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonRow& add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back("\"" + key + "\":" + buf);
    return *this;
  }
  JsonRow& add(const std::string& key, long long value) {
    fields_.push_back("\"" + key + "\":" + std::to_string(value));
    return *this;
  }
  JsonRow& add(const std::string& key, std::int64_t value) {
    return add(key, static_cast<long long>(value));
  }
  JsonRow& add(const std::string& key, int value) {
    return add(key, static_cast<long long>(value));
  }

  void emit() const {
    std::string line = "BENCH_JSON {";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) line += ",";
      line += fields_[i];
    }
    line += "}";
    std::printf("%s\n", line.c_str());
  }

 private:
  std::vector<std::string> fields_;
};

}  // namespace dlrm::bench
