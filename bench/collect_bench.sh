#!/usr/bin/env bash
# Runs a set of benchmark binaries and aggregates every BENCH_JSON row they
# emit into one machine-readable file (default BENCH_PR10.json: a JSON array,
# one element per row, each annotated with the binary it came from).
#
#   $ bench/collect_bench.sh <build-dir> [out.json] [bench ...]
#
# With no bench names, runs the PR 10 headline set: the Fig. 13 weak-scaling
# breakdown with the elastic-pipeline controller ablation (off/on rows plus
# per-window convergence-trace rows), the serving sweep — policy cells, the
# 2-class admission-control overload (controller off/on), and the
# sharded-tier replay rows including the pow2-bucketed cell — the Table I
# config rows, and the single-socket training throughput row the stall
# numbers are read against. Any bench binary that emits BENCH_JSON rows can
# be named explicitly instead. Raw logs land next to the output file.
set -euo pipefail

BUILD_DIR="${1:?usage: collect_bench.sh <build-dir> [out.json] [bench ...]}"
OUT="${2:-BENCH_PR10.json}"
shift || true
[ "$#" -gt 0 ] && shift || true
BENCHES=("$@")
if [ "${#BENCHES[@]}" -eq 0 ]; then
  BENCHES=(bench_table1_configs bench_serving bench_fig7_single_socket
           bench_fig13_weak_breakdown)
fi

LOG_DIR="$(dirname "${OUT}")"
[ "${LOG_DIR}" = "" ] && LOG_DIR="."
TMP_ROWS="$(mktemp "${TMPDIR:-/tmp}/bench_rows.XXXXXX")"
trap 'rm -f "${TMP_ROWS}"' EXIT

for b in "${BENCHES[@]}"; do
  bin="${BUILD_DIR}/${b}"
  if [ ! -x "${bin}" ]; then
    echo "collect_bench: skipping ${b} (not built at ${bin})" >&2
    continue
  fi
  log="${LOG_DIR}/${b}.log"
  echo "collect_bench: running ${b} ..." >&2
  "${bin}" > "${log}"
  # Re-tag each row with its source binary:  {"source":"<b>",<original row>}
  sed -n "s/^BENCH_JSON {/{\"source\":\"${b}\",/p" "${log}" >> "${TMP_ROWS}"
done

if [ ! -s "${TMP_ROWS}" ]; then
  echo "collect_bench: no BENCH_JSON rows produced" >&2
  exit 1
fi

{
  echo "["
  sed '$!s/$/,/' "${TMP_ROWS}"
  echo "]"
} > "${OUT}"
echo "collect_bench: $(wc -l < "${TMP_ROWS}") rows -> ${OUT}"
