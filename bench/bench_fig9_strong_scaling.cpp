// Reproduces paper Fig. 9: DLRM strong-scaling speed-up and efficiency for
// the four communication strategies (ScatterList / FusedScatter / Alltoall
// on the MPI backend, Alltoall on the CCL backend), on the simulated
// 64-socket CLX + OPA cluster.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

struct Variant {
  const char* name;
  SimBackend backend;
  ExchangeStrategy strategy;
};

const Variant kVariants[] = {
    {"MPI-ScatterList", SimBackend::kMpi, ExchangeStrategy::kScatterList},
    {"MPI-FusedScatter", SimBackend::kMpi, ExchangeStrategy::kFusedScatter},
    {"MPI-Alltoall", SimBackend::kMpi, ExchangeStrategy::kAlltoall},
    {"CCL-Alltoall", SimBackend::kCcl, ExchangeStrategy::kAlltoall},
};

DlrmSimulator make_sim(const DlrmConfig& cfg, const Variant& v) {
  SimOptions o;
  o.socket = clx_8280();
  o.topo = Topology::pruned_fat_tree(64);
  o.backend = v.backend;
  o.strategy = v.strategy;
  o.overlap = true;
  o.skewed_indices = cfg.name == "MLPerf";
  return DlrmSimulator(cfg, o);
}

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks,
                int baseline_ranks) {
  std::printf("\n-- %s (GN=%lld), baseline: best single-%d-rank time --\n",
              cfg.name.c_str(), static_cast<long long>(cfg.global_batch_strong),
              baseline_ranks);
  // Baseline: the optimized (CCL-Alltoall) variant at the smallest feasible
  // rank count, exactly as in the paper.
  const double base_ms =
      make_sim(cfg, kVariants[3])
          .iteration(baseline_ranks, cfg.global_batch_strong)
          .total_ms() *
      baseline_ranks;  // normalize to "rank-time" product for R0 != 1

  row({"ranks", "variant", "ms/iter", "speedup", "efficiency"}, 16);
  for (int r : ranks) {
    for (const auto& v : kVariants) {
      const double ms =
          make_sim(cfg, v).iteration(r, cfg.global_batch_strong).total_ms();
      const double speedup = base_ms / baseline_ranks / ms;
      const double eff = speedup * baseline_ranks / r;
      row({fmt_int(r), v.name, fmt(ms, 2), fmt(speedup, 2), fmt(eff * 100, 0) + "%"},
          16);
    }
  }
}

}  // namespace

int main() {
  banner("Fig. 9: DLRM strong scaling (speed-up and efficiency, simulated)");
  run_config(small_config(), {2, 4, 8}, 1);
  run_config(large_config(), {4, 8, 16, 32, 64}, 4);
  run_config(mlperf_config(), {2, 4, 8, 16, 26}, 1);
  std::printf(
      "\nExpected shape (paper): up to ~8.5x at 26R for MLPerf (~33%% eff),\n"
      "~5-6x at 8x sockets for Small/Large (~60-71%% eff); native alltoall\n"
      ">2x over scatter-based; CCL-Alltoall adds up to ~1.4x over MPI.\n");
  return 0;
}
