// Reproduces paper Fig. 12: DLRM weak-scaling speed-up and efficiency
// (local minibatch fixed per rank, GN = LN * R).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

struct Variant {
  const char* name;
  SimBackend backend;
  ExchangeStrategy strategy;
};

const Variant kVariants[] = {
    {"MPI-ScatterList", SimBackend::kMpi, ExchangeStrategy::kScatterList},
    {"MPI-FusedScatter", SimBackend::kMpi, ExchangeStrategy::kFusedScatter},
    {"MPI-Alltoall", SimBackend::kMpi, ExchangeStrategy::kAlltoall},
    {"CCL-Alltoall", SimBackend::kCcl, ExchangeStrategy::kAlltoall},
};

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks,
                int baseline_ranks, bool naive_loader) {
  std::printf("\n-- %s (LN=%lld) --\n", cfg.name.c_str(),
              static_cast<long long>(cfg.local_batch_weak));
  SimOptions base_opts;
  base_opts.socket = clx_8280();
  base_opts.topo = Topology::pruned_fat_tree(64);
  base_opts.backend = SimBackend::kCcl;
  base_opts.strategy = ExchangeStrategy::kAlltoall;
  base_opts.skewed_indices = cfg.name == "MLPerf";
  base_opts.naive_loader = naive_loader;
  const double base_ms =
      DlrmSimulator(cfg, base_opts)
          .iteration(baseline_ranks, cfg.local_batch_weak * baseline_ranks)
          .total_ms();

  row({"ranks", "variant", "ms/iter", "speedup", "efficiency"}, 16);
  for (int r : ranks) {
    for (const auto& v : kVariants) {
      SimOptions o = base_opts;
      o.backend = v.backend;
      o.strategy = v.strategy;
      const double ms = DlrmSimulator(cfg, o)
                            .iteration(r, cfg.local_batch_weak * r)
                            .total_ms();
      // Weak scaling: work grows with R, so speedup = (R/R0) * t(R0)/t(R).
      const double speedup =
          static_cast<double>(r) / baseline_ranks * base_ms / ms;
      const double eff = base_ms / ms;
      row({fmt_int(r), v.name, fmt(ms, 2), fmt(speedup, 2), fmt(eff * 100, 0) + "%"},
          16);
    }
  }
}

}  // namespace

int main() {
  banner("Fig. 12: DLRM weak scaling (speed-up and efficiency, simulated)");
  run_config(small_config(), {2, 4, 8}, 1, false);
  run_config(large_config(), {4, 8, 16, 32, 64}, 4, false);
  run_config(mlperf_config(), {2, 4, 8, 16, 26}, 1, true);
  std::printf(
      "\nExpected shape (paper): ~17x at 26R for MLPerf (~65%% eff), ~13.5x\n"
      "at 64R/4R for Large (~84%% eff), ~6.4x at 8R for Small (~80%% eff).\n");
  return 0;
}
