// Micro-benchmark (google-benchmark): Split-SGD-BF16 vs plain FP32 SGD vs
// FP16-with-master-weights — update throughput and the capacity accounting
// of paper Sect. VII. Before the google-benchmark run, a BENCH_JSON row is
// emitted per optimizer config (fp32 / bf16-split sweep) so future PRs can
// track the precision-performance trajectory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "optim/optimizer.hpp"

namespace {

using namespace dlrm;

constexpr std::int64_t kParams = 1 << 22;  // 4M parameters

struct Fixture {
  Tensor<float> p{std::vector<std::int64_t>{kParams}};
  Tensor<float> g{std::vector<std::int64_t>{kParams}};
  Fixture() {
    Rng rng(1);
    fill_uniform(p, rng, 1.0f);
    fill_uniform(g, rng, 0.01f);
  }
  std::vector<ParamSlot> slots() { return {{p.data(), g.data(), kParams}}; }
};

template <typename Opt>
void run_opt(benchmark::State& state, Opt& opt, Fixture& f) {
  opt.attach(f.slots());
  for (auto _ : state) {
    opt.step(0.01f);
    benchmark::DoNotOptimize(f.p.data());
  }
  state.counters["params/s"] = benchmark::Counter(
      static_cast<double>(kParams),
      benchmark::Counter::kIsIterationInvariantRate, benchmark::Counter::kIs1000);
  state.counters["state_bytes"] =
      static_cast<double>(opt.state_bytes());
}

void BM_SgdFp32(benchmark::State& state) {
  Fixture f;
  SgdFp32 opt;
  run_opt(state, opt, f);
}
BENCHMARK(BM_SgdFp32)->Unit(benchmark::kMillisecond);

void BM_SplitSgdBf16(benchmark::State& state) {
  Fixture f;
  SplitSgdBf16 opt(16);
  run_opt(state, opt, f);
}
BENCHMARK(BM_SplitSgdBf16)->Unit(benchmark::kMillisecond);

void BM_Fp16MasterSgd(benchmark::State& state) {
  Fixture f;
  Fp16MasterSgd opt;
  run_opt(state, opt, f);
}
BENCHMARK(BM_Fp16MasterSgd)->Unit(benchmark::kMillisecond);

void BM_Fp24Sgd(benchmark::State& state) {
  Fixture f;
  Fp24Sgd opt;
  run_opt(state, opt, f);
}
BENCHMARK(BM_Fp24Sgd)->Unit(benchmark::kMillisecond);

// One JSON trajectory row per optimizer configuration: median step time,
// update throughput, and the Sect. VII capacity accounting.
void emit_json_rows() {
  struct Config {
    const char* precision;
    std::unique_ptr<Optimizer> opt;
  };
  Config configs[] = {
      {"fp32", std::make_unique<SgdFp32>()},
      {"bf16", std::make_unique<SplitSgdBf16>(16)},
      {"bf16-lo8", std::make_unique<SplitSgdBf16>(8)},
      {"fp16-master", std::make_unique<Fp16MasterSgd>()},
      {"fp24", std::make_unique<Fp24Sgd>()},
  };
  for (auto& cfg : configs) {
    Fixture f;
    cfg.opt->attach(f.slots());
    const double sec =
        dlrm::bench::time_median_sec([&] { cfg.opt->step(0.01f); });
    dlrm::bench::JsonRow("split_sgd_micro")
        .add("precision", cfg.precision)
        .add("optimizer", cfg.opt->name())
        .add("params", kParams)
        .add("sec_per_step", sec)
        .add("params_per_sec", static_cast<double>(kParams) / sec)
        .add("state_bytes", cfg.opt->state_bytes())
        .emit();
  }
}

}  // namespace

int main(int argc, char** argv) {
  emit_json_rows();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
