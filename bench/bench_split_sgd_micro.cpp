// Micro-benchmark (google-benchmark): Split-SGD-BF16 vs plain FP32 SGD vs
// FP16-with-master-weights — update throughput and the capacity accounting
// of paper Sect. VII.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "optim/optimizer.hpp"

namespace {

using namespace dlrm;

constexpr std::int64_t kParams = 1 << 22;  // 4M parameters

struct Fixture {
  Tensor<float> p{std::vector<std::int64_t>{kParams}};
  Tensor<float> g{std::vector<std::int64_t>{kParams}};
  Fixture() {
    Rng rng(1);
    fill_uniform(p, rng, 1.0f);
    fill_uniform(g, rng, 0.01f);
  }
  std::vector<ParamSlot> slots() { return {{p.data(), g.data(), kParams}}; }
};

template <typename Opt>
void run_opt(benchmark::State& state, Opt& opt, Fixture& f) {
  opt.attach(f.slots());
  for (auto _ : state) {
    opt.step(0.01f);
    benchmark::DoNotOptimize(f.p.data());
  }
  state.counters["params/s"] = benchmark::Counter(
      static_cast<double>(kParams),
      benchmark::Counter::kIsIterationInvariantRate, benchmark::Counter::kIs1000);
  state.counters["state_bytes"] =
      static_cast<double>(opt.state_bytes());
}

void BM_SgdFp32(benchmark::State& state) {
  Fixture f;
  SgdFp32 opt;
  run_opt(state, opt, f);
}
BENCHMARK(BM_SgdFp32)->Unit(benchmark::kMillisecond);

void BM_SplitSgdBf16(benchmark::State& state) {
  Fixture f;
  SplitSgdBf16 opt(16);
  run_opt(state, opt, f);
}
BENCHMARK(BM_SplitSgdBf16)->Unit(benchmark::kMillisecond);

void BM_Fp16MasterSgd(benchmark::State& state) {
  Fixture f;
  Fp16MasterSgd opt;
  run_opt(state, opt, f);
}
BENCHMARK(BM_Fp16MasterSgd)->Unit(benchmark::kMillisecond);

void BM_Fp24Sgd(benchmark::State& state) {
  Fixture f;
  Fp24Sgd opt;
  run_opt(state, opt, f);
}
BENCHMARK(BM_Fp24Sgd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
