// Reproduces paper Fig. 16: training accuracy (ROC-AUC vs % of epoch) with
// mixed-precision BF16 Split-SGD, compared against FP32 and FP24 (1-8-15),
// on the Criteo-Terabyte stand-in dataset. Also reports the paper's two
// negative results: Split-SGD with only 8 low bits, and FP16 embeddings
// with stochastic rounding.
//
// The reproduced claims:
//   * BF16 Split-SGD tracks FP32 to ~1e-3 AUC at every checkpoint.
//   * FP24 (1-8-15) converges visibly lower.
//   * 8 retained LSBs are not enough; FP16+stochastic falls short of SOTA.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "core/trainer.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

// MLPerf-shaped but scaled so the run finishes in ~a minute.
DlrmConfig fig16_config() {
  DlrmConfig c;
  c.name = "MLPerf-fig16";
  c.minibatch = 512;
  c.global_batch_strong = 512;
  c.local_batch_weak = 512;
  c.pooling = 1;
  c.dim = 32;
  c.table_rows.assign(26, 4000);
  c.index_skew = 1.05;
  c.bottom_mlp = {13, 128, 64, 32};
  c.top_mlp = {128, 64, 1};
  c.validate();
  return c;
}

SyntheticCtrDataset fig16_data(const DlrmConfig& c) {
  CtrParams p;
  p.dense_dim = c.bottom_mlp.front();
  p.rows = c.table_rows;
  p.pooling = c.pooling;
  p.index_skew = c.index_skew;
  p.dense_scale = 0.9f;
  p.sparse_scale = 1.1f;
  p.bias = -1.1f;
  p.seed = 2020;
  return SyntheticCtrDataset(p);
}

std::vector<EvalPoint> run_variant(const DlrmConfig& cfg, const Dataset& data,
                                   EmbedPrecision embed, Optimizer& opt,
                                   std::int64_t train_samples, int points) {
  ModelOptions mo;
  mo.embed_precision = embed;
  DlrmModel model(cfg, mo, 1234);
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data,
                  {.lr = 0.20f, .batch = cfg.minibatch, .seed = 1234});
  // MLPerf-style polynomial decay: late-training updates become tiny —
  // exactly the regime where FP24 truncates gradient progress away while
  // Split-SGD's exact fp32 master keeps accumulating it. (0.20 * (1 -
  // 0.97*frac)^1.5 + 0.0005, now a first-class schedule object.)
  const LrSchedule schedule =
      LrSchedule::poly_decay(0.20f, 0.0005f, /*power=*/1.5, /*span=*/0.97);
  return trainer.train_with_eval(train_samples, /*eval_samples=*/16384, points,
                                 schedule);
}

}  // namespace

int main() {
  banner("Fig. 16: ROC-AUC vs % of epoch, mixed-precision training (real)");
  const DlrmConfig cfg = fig16_config();
  const SyntheticCtrDataset data = fig16_data(cfg);
  const std::int64_t train_samples = 512 * 700;
  const int points = 10;

  std::printf("teacher (Bayes) AUC bound: %.4f\n", data.teacher_auc(16384));

  struct Run {
    const char* name;
    std::vector<EvalPoint> points;
  };
  std::vector<Run> runs;

  {
    SgdFp32 opt;
    runs.push_back({"FP32 (Ref)", run_variant(cfg, data, EmbedPrecision::kFp32,
                                              opt, train_samples, points)});
  }
  {
    SplitSgdBf16 opt(16);
    runs.push_back({"BF16 (SplitSGD)",
                    run_variant(cfg, data, EmbedPrecision::kBf16Split, opt,
                                train_samples, points)});
  }
  {
    Fp24Sgd opt;
    runs.push_back({"FP24 (1-8-15)", run_variant(cfg, data, EmbedPrecision::kFp24,
                                                 opt, train_samples, points)});
  }
  {
    SplitSgdBf16 opt(8);
    runs.push_back({"BF16 (Split, 8 LSB)",
                    run_variant(cfg, data, EmbedPrecision::kBf16Split8, opt,
                                train_samples, points)});
  }
  {
    Fp16MasterSgd opt;
    runs.push_back({"FP16 (stoch. emb)",
                    run_variant(cfg, data, EmbedPrecision::kFp16Stochastic, opt,
                                train_samples, points)});
  }

  // Table: one row per eval checkpoint.
  std::vector<std::string> header{"% epoch"};
  for (const auto& r : runs) header.push_back(r.name);
  row(header, 20);
  for (int p = 0; p < points; ++p) {
    std::vector<std::string> cells{
        fmt(runs[0].points[static_cast<std::size_t>(p)].epoch_fraction * 100, 0) + "%"};
    for (const auto& r : runs) {
      cells.push_back(fmt(r.points[static_cast<std::size_t>(p)].auc, 4));
    }
    row(cells, 20);
  }

  for (const auto& r : runs) {
    JsonRow("fig16_convergence")
        .add("variant", r.name)
        .add("final_auc", r.points.back().auc)
        .add("final_train_loss", r.points.back().train_loss)
        .add("eval_points", static_cast<int>(r.points.size()))
        .emit();
  }

  const double fp32 = runs[0].points.back().auc;
  const double bf16 = runs[1].points.back().auc;
  const double fp24 = runs[2].points.back().auc;
  std::printf("\nfinal: FP32=%.4f  BF16-Split=%.4f (|diff|=%.4f)  FP24=%.4f\n",
              fp32, bf16, std::abs(fp32 - bf16), fp24);

  // The FP24 deficit of the paper's full-epoch terabyte run comes from late
  // training, where per-update steps shrink below the FP24 ulp and round
  // away — a regime our scaled run plateaus before reaching. Demonstrate
  // the mechanism directly: accumulate 20k tiny updates (well below the
  // FP24 ulp at |w|=1, but far above fp32 resolution).
  std::printf("\n-- update-accumulation stall (mechanism behind the FP24 gap) --\n");
  const float tiny = 5e-7f;  // |update| < ulp_fp24(1.0)/2 = 7.6e-7
  const int steps = 20000;
  float w_fp32 = 1.0f, w_fp24 = 1.0f;
  SplitF32 w_split = split_f32(1.0f);
  std::uint16_t w_bf16 = f32_to_bf16_rne(1.0f);
  for (int i = 0; i < steps; ++i) {
    w_fp32 -= tiny;
    w_fp24 = f32_to_f24_rne(w_fp24 - tiny);
    w_split = split_f32(combine_f32(w_split.hi, w_split.lo) - tiny);
    w_bf16 = f32_to_bf16_rne(bf16_to_f32(w_bf16) - tiny);
  }
  std::printf("after %d updates of -%.1e:\n", steps, static_cast<double>(tiny));
  std::printf("  FP32:           %.7f (moved %.4f)\n", w_fp32, 1.0f - w_fp32);
  std::printf("  BF16 Split-SGD: %.7f (hidden master moved %.4f)\n",
              combine_f32(w_split.hi, w_split.lo),
              1.0f - combine_f32(w_split.hi, w_split.lo));
  std::printf("  FP24 (1-8-15):  %.7f (STALLED: updates below ulp/2)\n", w_fp24);
  std::printf("  BF16 naive RNE: %.7f (STALLED)\n", bf16_to_f32(w_bf16));

  std::printf(
      "\nReproduced claims: BF16 Split-SGD within 0.001 of FP32 at every\n"
      "checkpoint (paper: <0.001); 8 retained LSBs consistently below.\n"
      "Caveat: at this scaled size the AUC plateaus before updates shrink\n"
      "under the FP24 ulp, so the FP24/FP16 end-of-epoch deficit of the\n"
      "paper's terabyte run does not separate here; the stall experiment\n"
      "above shows the exact mechanism that produces it at full scale.\n");
  return 0;
}
