// Reproduces paper Fig. 8: single-socket time split across key ops
// (Embeddings / MLP / Rest) before and after the optimizations.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"
#include "core/model.hpp"
#include "data/dataset.hpp"
#include "optim/optimizer.hpp"
#include "stats/profiler.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void real_split(const char* label, const DlrmConfig& cfg, const Dataset& data,
                UpdateStrategy strategy, bool optimized, int reps) {
  ModelOptions mo;
  mo.update_strategy = strategy;
  mo.fused_embedding_update = optimized;
  DlrmModel model(cfg, mo, 11);
  model.set_batch(cfg.minibatch);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  MiniBatch mb;
  data.fill(0, cfg.minibatch, mb);
  model.train_step(mb, 0.1f, opt);  // warmup

  Profiler prof;
  for (int i = 0; i < reps; ++i) {
    data.fill(i * cfg.minibatch, cfg.minibatch, mb);
    model.train_step(mb, 0.1f, opt, &prof);
  }
  const double emb = prof.total_sec_prefix("emb_");
  const double mlp = prof.total_sec_prefix("bottom_mlp_") +
                     prof.total_sec_prefix("top_mlp_");
  const double total = prof.total_sec_prefix("");
  const double rest = total - emb - mlp;
  row({label, to_string(strategy),
       fmt(emb / total * 100, 0) + "%", fmt(mlp / total * 100, 0) + "%",
       fmt(rest / total * 100, 0) + "%", fmt(total / reps * 1e3, 1)},
      22);
}

}  // namespace

int main() {
  banner("Fig. 8: single-socket time split across key ops");

  row({"config", "strategy", "Embeddings", "MLP", "Rest", "ms/iter"}, 22);
  {
    DlrmConfig cfg = small_config().scaled_down(16, 4);
    RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 5);
    real_split("Small-scaled", cfg, data, UpdateStrategy::kReference, false, 2);
    for (UpdateStrategy s : {UpdateStrategy::kAtomicXchg, UpdateStrategy::kRtm,
                             UpdateStrategy::kRaceFree}) {
      real_split("Small-scaled", cfg, data, s, true, 6);
    }
  }
  {
    DlrmConfig cfg = mlperf_config().scaled_down(400, 1);
    CtrParams p;
    p.dense_dim = cfg.bottom_mlp.front();
    p.rows = cfg.table_rows;
    p.pooling = cfg.pooling;
    p.index_skew = 1.05;
    SyntheticCtrDataset data(p);
    real_split("MLPerf-scaled", cfg, data, UpdateStrategy::kReference, false, 2);
    for (UpdateStrategy s : {UpdateStrategy::kAtomicXchg, UpdateStrategy::kRtm,
                             UpdateStrategy::kRaceFree}) {
      real_split("MLPerf-scaled", cfg, data, s, true, 6);
    }
  }

  // Paper-scale splits from the cost model.
  std::printf("\n-- simulated at paper scale (SKX 8180, N=2048) --\n");
  row({"config", "strategy", "Embeddings", "MLP", "Rest"}, 22);
  for (const char* name : {"Small", "MLPerf"}) {
    const DlrmConfig cfg =
        std::string(name) == "Small" ? small_config() : mlperf_config();
    SimOptions o;
    o.socket = skx_8180();
    o.skewed_indices = std::string(name) == "MLPerf";
    DlrmSimulator sim(cfg, o);
    for (UpdateStrategy s :
         {UpdateStrategy::kReference, UpdateStrategy::kAtomicXchg,
          UpdateStrategy::kRtm, UpdateStrategy::kRaceFree}) {
      const bool optimized = s != UpdateStrategy::kReference;
      const auto split = sim.single_socket_split(s, 2048, optimized);
      row({name, to_string(s), fmt(split.emb_ms / split.total_ms() * 100, 0) + "%",
           fmt(split.mlp_ms / split.total_ms() * 100, 0) + "%",
           fmt(split.rest_ms / split.total_ms() * 100, 0) + "%"},
          22);
    }
  }
  std::printf(
      "\nExpected shape (paper): Reference is ~99%% embeddings; after\n"
      "optimization embeddings are ~30%% (Small) and <20%% (MLPerf).\n");
  return 0;
}
