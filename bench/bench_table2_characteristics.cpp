// Reproduces paper Table II: DLRM model characteristics for distributed
// runs, computed from first principles (Eqs. 1 and 2).
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/machine.hpp"
#include "core/config.hpp"

using namespace dlrm;
using namespace dlrm::bench;

int main() {
  banner("Table II: DLRM model characteristics for distributed runs");
  const DlrmConfig configs[] = {small_config(), large_config(), mlperf_config()};

  row({"parameter", "Small", "Large", "MLPerf", "paper"}, 30);
  auto prow = [&](const char* name, auto get, const char* paper) {
    row({name, get(configs[0]), get(configs[1]), get(configs[2]), paper}, 30);
  };

  prow("Table memory (GB)",
       [](const DlrmConfig& c) { return fmt(static_cast<double>(c.table_bytes()) / 1e9, 1); },
       "2 / 384 / 98");
  prow("Min sockets (96GB | 192GB)",
       [](const DlrmConfig& c) {
         return fmt_int(c.min_sockets(96e9)) + " | " + fmt_int(c.min_sockets(192e9));
       },
       "1 / 4 / 1*");
  prow("Max ranks (model parallel)",
       [](const DlrmConfig& c) { return fmt_int(c.max_ranks()); }, "8 / 64 / 26");
  prow("Allreduce size (MB, Eq.1)",
       [](const DlrmConfig& c) {
         return fmt(static_cast<double>(c.allreduce_elems()) * 4 / (1024.0 * 1024.0), 1);
       },
       "9.5 / 1047 / 9.0");
  prow("Alltoall volume (MB, Eq.2)",
       [](const DlrmConfig& c) {
         return fmt(static_cast<double>(c.alltoall_elems(c.global_batch_strong)) * 4 /
                        (1024.0 * 1024.0),
                    1);
       },
       "15.8 / 1024 / 208");

  std::printf(
      "\nEq.1: sum over MLP layers of f_in*f_out + f_out (rank independent).\n"
      "Eq.2: S * GN * E, proportional to the global minibatch.\n"
      "MLPerf fits one socket only on the 192 GB nodes (the paper's '1*').\n");
  return 0;
}
