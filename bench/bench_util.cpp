#include "bench_util.hpp"

#include <vector>

#include "core/dist_trainer.hpp"

namespace dlrm::bench {

namespace {

// 64 independent accumulator lanes of fused multiply-adds (8+ vector
// registers of chains — enough ILP to saturate both FMA ports); with
// -O3 -march=native this compiles to a dense stream of vector FMAs.
double fma_kernel(std::int64_t iters) {
  constexpr int kLanes = 64;
  float acc[kLanes], mul[kLanes], add[kLanes];
  for (int i = 0; i < kLanes; ++i) {
    acc[i] = 1.0f + 1e-7f * i;
    mul[i] = 1.0f + 1e-9f * i;
    add[i] = 1e-9f * i;
  }
  for (std::int64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < kLanes; ++i) acc[i] = acc[i] * mul[i] + add[i];
  }
  double sink = 0.0;
  for (int i = 0; i < kLanes; ++i) sink += acc[i];
  return sink;
}

}  // namespace

void run_sharding_imbalance(const std::string& bench_name, bool weak) {
  std::printf("\n-- sharding placement quality (real mini-run, %s scaling) --\n",
              weak ? "weak" : "strong");
  row({"policy", "ranks", "emb-max(ms)", "emb-mean(ms)", "imb", "max-rows"},
      13);

  // One hot table with 8x the rows and 8x the lookups of the rest — the
  // production skew round-robin placement cannot balance, and a table too
  // large for one rank's even share (the row-split planner caps it).
  DlrmConfig cfg;
  cfg.name = "sharding-imbalance";
  cfg.pooling = 2;
  cfg.dim = 16;
  cfg.table_rows.assign(8, 3000);
  cfg.table_rows[0] = 24000;
  cfg.bottom_mlp = {8, 32, 16};
  cfg.top_mlp = {32, 1};
  cfg.validate();
  std::vector<std::int64_t> poolings(cfg.table_rows.size(), cfg.pooling);
  poolings[0] = cfg.pooling * 8;
  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, poolings, 7);

  std::int64_t biggest = 0;
  for (auto m : cfg.table_rows) biggest = std::max(biggest, m);

  const int iters = 8;
  for (int R : {2, 4}) {
    const std::int64_t gn = weak ? 128 * R : 256;
    for (ShardingPolicy policy :
         {ShardingPolicy::kRoundRobin, ShardingPolicy::kGreedyBalanced,
          ShardingPolicy::kRowSplit}) {
      double first_loss = 0.0, last_loss = 0.0;
      double emb_max = 0.0, emb_mean = 0.0;
      double cost_imb = 0.0;
      std::int64_t max_rows = 0, num_shards = 0;
      run_ranks(R, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
        DistributedTrainerOptions opts;
        opts.lr = 0.05f;
        opts.global_batch = gn;
        opts.sharding.policy = policy;
        auto backend = QueueBackend::ccl_like(2);
        DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);
        const double f = trainer.train(iters / 2);
        const double l = trainer.train(iters - iters / 2);
        const auto imb = trainer.embedding_imbalance();
        if (comm.rank() == 0) {
          first_loss = f;
          last_loss = l;
          emb_max = imb.max_sec;
          emb_mean = imb.mean_sec;
          const ShardingPlan& plan = trainer.model().plan();
          cost_imb = plan.cost_imbalance();
          num_shards = plan.num_shards();
          for (int r = 0; r < R; ++r) {
            max_rows = std::max(max_rows, plan.rank_rows(r));
          }
        }
      });
      row({to_string(policy), fmt_int(R), fmt(emb_max * 1e3, 2),
           fmt(emb_mean * 1e3, 2),
           fmt(emb_mean > 0 ? emb_max / emb_mean : 1.0, 2),
           fmt_int(max_rows)},
          13);
      JsonRow(bench_name)
          .add("section", "sharding_imbalance")
          .add("scaling", weak ? "weak" : "strong")
          .add("policy", to_string(policy))
          .add("ranks", R)
          .add("global_batch", gn)
          .add("iters", iters)
          .add("num_shards", num_shards)
          .add("emb_max_ms", emb_max * 1e3)
          .add("emb_mean_ms", emb_mean * 1e3)
          .add("emb_imbalance", emb_mean > 0 ? emb_max / emb_mean : 1.0)
          .add("plan_cost_imbalance", cost_imb)
          .add("max_rank_rows", max_rows)
          .add("biggest_table_rows", biggest)
          .add("first_loss", first_loss)
          .add("last_loss", last_loss)
          .emit();
    }
  }
  std::printf(
      "Expected shape: round-robin pins the 8x table's work to one rank\n"
      "(emb-max >> emb-mean); GreedyBalanced packs against it; RowSplit\n"
      "additionally caps max-rows below the biggest table (%lld rows).\n",
      static_cast<long long>(biggest));
}

void run_sharding_rebalance(const std::string& bench_name) {
  std::printf("\n-- live shard re-balancing (real mini-run) --\n");
  row({"ranks", "trigger@", "stall(ms)", "rows-moved", "imb-pre", "imb-post"},
      13);

  // Same skewed table set as run_sharding_imbalance.
  DlrmConfig cfg;
  cfg.name = "sharding-rebalance";
  cfg.pooling = 2;
  cfg.dim = 16;
  cfg.table_rows.assign(8, 3000);
  cfg.table_rows[0] = 24000;
  cfg.bottom_mlp = {8, 32, 16};
  cfg.top_mlp = {32, 1};
  cfg.validate();
  std::vector<std::int64_t> poolings(cfg.table_rows.size(), cfg.pooling);
  poolings[0] = cfg.pooling * 8;
  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, poolings, 7);
  const std::int64_t tables = static_cast<std::int64_t>(cfg.table_rows.size());

  for (int R : {2, 4}) {
    // Deliberately lopsided start: ranks 1..R-1 hold one cold table each,
    // rank 0 holds everything else including the 8x hot table.
    std::vector<Shard> shards;
    for (std::int64_t t = 0; t < tables; ++t) {
      const std::int64_t tail = t - (tables - (R - 1));
      shards.push_back({t, 0, cfg.table_rows[static_cast<std::size_t>(t)],
                        tail >= 0 ? static_cast<int>(tail) + 1 : 0});
    }
    const ShardingPlan lopsided =
        ShardingPlan::custom(tables, R, shards, ShardingPolicy::kRoundRobin);

    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = 256;
    opts.initial_plan = lopsided;

    // Reference: the same placement left alone (the pre-migration spread).
    double imb_pre = 0.0;
    run_ranks(R, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
      auto backend = QueueBackend::ccl_like(2);
      DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);
      trainer.train(8);
      const auto imb = trainer.embedding_imbalance();
      if (comm.rank() == 0) imb_pre = imb.ratio();
    });

    // Watched run: trigger, migrate, then measure the settled window.
    opts.rebalance.threshold = 1.3;
    opts.rebalance.check_every = 4;
    opts.rebalance.max_rebalances = 1;
    std::int64_t trigger_step = -1, rows_moved = 0, checks = 0, rebalances = 0;
    double stall_ms = 0.0, imb_post = 0.0;
    run_ranks(R, /*threads_per_rank=*/2, [&](ThreadComm& comm) {
      auto backend = QueueBackend::ccl_like(2);
      DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);
      trainer.train(16);  // the trigger budget
      // Settle on the migrated plan; 23 total iters leaves the last window
      // (past the final check at iter 20) non-empty for the post reading.
      trainer.train(7);
      const auto imb = trainer.embedding_imbalance_window();
      const auto& rs = trainer.rebalance_stats();
      if (comm.rank() == 0) {
        trigger_step = rs.first_trigger_step;
        rows_moved = rs.rows_migrated;
        checks = rs.checks;
        rebalances = rs.rebalances;
        stall_ms = rs.stall_sec * 1e3;
        imb_post = imb.ratio();
      }
    });

    row({fmt_int(R), fmt_int(trigger_step), fmt(stall_ms, 2),
         fmt_int(rows_moved), fmt(imb_pre, 2), fmt(imb_post, 2)},
        13);
    JsonRow(bench_name)
        .add("section", "sharding_rebalance")
        .add("ranks", R)
        .add("global_batch", opts.global_batch)
        .add("threshold", opts.rebalance.threshold)
        .add("check_every", opts.rebalance.check_every)
        .add("checks", checks)
        .add("rebalances", rebalances)
        .add("steps_to_trigger", trigger_step)
        .add("migration_stall_ms", stall_ms)
        .add("rows_migrated", rows_moved)
        .add("imbalance_before", imb_pre)
        .add("imbalance_after", imb_post)
        .emit();
  }
  std::printf(
      "Expected shape: the watcher fires within the first checks, the stall\n"
      "is a few ms on these table sizes, and the settled window imbalance\n"
      "drops toward 1 from the lopsided start.\n");
}

double measured_core_peak_flops() {
  static double cached = [] {
    const std::int64_t iters = 40'000'000;
    volatile double sink = fma_kernel(1024);  // warmup
    const Timer t;
    sink = sink + fma_kernel(iters);
    const double sec = t.elapsed_sec();
    (void)sink;
    // 64 lanes x 2 flops per iteration; the compiler vectorizes the lane
    // loop, so this measures the achievable FMA rate of one core.
    return 64.0 * 2.0 * static_cast<double>(iters) / sec;
  }();
  return cached;
}

}  // namespace dlrm::bench
