#include "bench_util.hpp"

namespace dlrm::bench {

namespace {

// 64 independent accumulator lanes of fused multiply-adds (8+ vector
// registers of chains — enough ILP to saturate both FMA ports); with
// -O3 -march=native this compiles to a dense stream of vector FMAs.
double fma_kernel(std::int64_t iters) {
  constexpr int kLanes = 64;
  float acc[kLanes], mul[kLanes], add[kLanes];
  for (int i = 0; i < kLanes; ++i) {
    acc[i] = 1.0f + 1e-7f * i;
    mul[i] = 1.0f + 1e-9f * i;
    add[i] = 1e-9f * i;
  }
  for (std::int64_t it = 0; it < iters; ++it) {
    for (int i = 0; i < kLanes; ++i) acc[i] = acc[i] * mul[i] + add[i];
  }
  double sink = 0.0;
  for (int i = 0; i < kLanes; ++i) sink += acc[i];
  return sink;
}

}  // namespace

double measured_core_peak_flops() {
  static double cached = [] {
    const std::int64_t iters = 40'000'000;
    volatile double sink = fma_kernel(1024);  // warmup
    const Timer t;
    sink = sink + fma_kernel(iters);
    const double sec = t.elapsed_sec();
    (void)sink;
    // 64 lanes x 2 flops per iteration; the compiler vectorizes the lane
    // loop, so this measures the achievable FMA rate of one core.
    return 64.0 * 2.0 * static_cast<double>(iters) / sec;
  }();
  return cached;
}

}  // namespace dlrm::bench
