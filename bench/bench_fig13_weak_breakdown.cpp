// Reproduces paper Fig. 13: weak-scaling compute/communication break-up —
// including the MLPerf data-loader artifact (compute grows with ranks
// because the reference loader materializes the full global batch).
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks,
                bool naive_loader) {
  std::printf("\n-- %s (LN=%lld, loader=%s) --\n", cfg.name.c_str(),
              static_cast<long long>(cfg.local_batch_weak),
              naive_loader ? "reference-full-GN" : "sliced");
  row({"mode", "backend", "ranks", "compute ms", "loader ms", "comm ms",
       "total ms"},
      12);
  for (bool overlap : {true, false}) {
    for (SimBackend backend : {SimBackend::kMpi, SimBackend::kCcl}) {
      for (int r : ranks) {
        SimOptions o;
        o.socket = clx_8280();
        o.topo = Topology::pruned_fat_tree(64);
        o.backend = backend;
        o.strategy = ExchangeStrategy::kAlltoall;
        o.overlap = overlap;
        o.skewed_indices = cfg.name == "MLPerf";
        o.naive_loader = naive_loader;
        const auto it =
            DlrmSimulator(cfg, o).iteration(r, cfg.local_batch_weak * r);
        row({overlap ? "Overlap" : "Blocking", to_string(backend), fmt_int(r),
             fmt(it.compute_ms() - it.loader_ms, 1), fmt(it.loader_ms, 1),
             fmt(it.comm_ms(), 1), fmt(it.total_ms(), 1)},
            12);
      }
    }
  }
}

}  // namespace

int main() {
  banner("Fig. 13: compute/comm break-up, weak scaling (simulated)");
  run_config(large_config(), {4, 8, 16, 32, 64}, false);
  run_config(mlperf_config(), {2, 4, 8, 16, 26}, true);
  std::printf(
      "\nExpected shape (paper): Large compute stays flat; MLPerf 'compute'\n"
      "creeps upward purely from the loader reading the full global batch\n"
      "on every rank (Sect. VI.D.2).\n");
  return 0;
}
