// Reproduces paper Fig. 13: weak-scaling compute/communication break-up —
// including the MLPerf data-loader artifact (compute grows with ranks
// because the reference loader materializes the full global batch).
//
// Two parts:
//   * simulated — the paper's 64-socket cluster model, both loader modes;
//   * measured  — real in-process weak scaling through DistributedTrainer,
//     splitting the loader cost into the part still exposed to the step and
//     the part hidden behind compute by the prefetch pipeline (BENCH_JSON
//     rows, loader x prefetch ablation), plus the elastic-pipeline
//     controller ablation (off vs on, with per-window convergence-trace
//     rows).
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"
#include "core/dist_trainer.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks,
                bool naive_loader) {
  std::printf("\n-- %s (LN=%lld, loader=%s) --\n", cfg.name.c_str(),
              static_cast<long long>(cfg.local_batch_weak),
              naive_loader ? "reference-full-GN" : "sliced");
  row({"mode", "backend", "ranks", "compute ms", "loader ms", "comm ms",
       "total ms"},
      12);
  for (bool overlap : {true, false}) {
    for (SimBackend backend : {SimBackend::kMpi, SimBackend::kCcl}) {
      for (int r : ranks) {
        SimOptions o;
        o.socket = clx_8280();
        o.topo = Topology::pruned_fat_tree(64);
        o.backend = backend;
        o.strategy = ExchangeStrategy::kAlltoall;
        o.overlap = overlap;
        o.skewed_indices = cfg.name == "MLPerf";
        o.naive_loader = naive_loader;
        const auto it =
            DlrmSimulator(cfg, o).iteration(r, cfg.local_batch_weak * r);
        row({overlap ? "Overlap" : "Blocking", to_string(backend), fmt_int(r),
             fmt(it.compute_ms() - it.loader_ms, 1), fmt(it.loader_ms, 1),
             fmt(it.comm_ms(), 1), fmt(it.total_ms(), 1)},
            12);
      }
    }
  }
}

// Weak-scaling shape small enough for in-process measurement.
DlrmConfig measured_config(int ranks) {
  DlrmConfig c;
  c.name = "measured-weak";
  c.local_batch_weak = 64;
  c.minibatch = c.local_batch_weak * ranks;
  c.global_batch_strong = c.minibatch;
  c.pooling = 4;
  c.dim = 32;
  c.table_rows.assign(8, 20000);
  c.bottom_mlp = {13, 64, 32};
  c.top_mlp = {64, 32, 1};
  c.validate();
  return c;
}

void run_measured() {
  std::printf("\n-- measured weak scaling (in-process ranks, LN=64): loader "
              "exposed vs hidden, per worker count --\n");
  row({"ranks", "loader", "prefetch", "workers", "step ms", "exposed ms",
       "hidden ms"},
      19);
  // Pipeline ablation per (ranks, loader mode): synchronous baseline, then
  // the worker sweep — how much of the remaining exposed cost one producer
  // leaves on the table versus W sharded producers.
  struct PipelineConfig {
    bool prefetch;
    int workers;
  };
  const PipelineConfig pipelines[] = {{false, 1}, {true, 1}, {true, 2},
                                      {true, 4}};
  for (int r : {1, 2, 4}) {
    const DlrmConfig cfg = measured_config(r);
    RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 7);
    for (LoaderMode mode :
         {LoaderMode::kFullGlobalBatch, LoaderMode::kLocalSlice}) {
      for (const PipelineConfig& pc : pipelines) {
        const int iters = 8;
        double step_ms = 0.0, exposed_ms = 0.0, hidden_ms = 0.0;
        std::int64_t bytes = 0;
        run_ranks(r, /*threads_per_rank=*/1, [&](ThreadComm& comm) {
          DistributedTrainerOptions opts;
          opts.global_batch = cfg.minibatch;
          opts.loader_mode = mode;
          opts.prefetch = pc.prefetch;
          opts.prefetch_depth = 2;
          opts.prefetch_workers = pc.workers;
          auto backend = QueueBackend::ccl_like(1);
          DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);
          trainer.train(2);  // warmup (fills the pipeline)
          const double e0 = trainer.loader_exposed_sec();
          const double h0 = trainer.loader_hidden_sec();
          const Timer t;
          trainer.train(iters);
          if (comm.rank() == 0) {
            step_ms = t.elapsed_ms() / iters;
            exposed_ms = (trainer.loader_exposed_sec() - e0) * 1e3 / iters;
            hidden_ms = (trainer.loader_hidden_sec() - h0) * 1e3 / iters;
            bytes = trainer.loader().bytes_per_iteration();
          }
        });
        const char* loader_name =
            mode == LoaderMode::kFullGlobalBatch ? "reference-full-GN"
                                                 : "sliced";
        row({fmt_int(r), loader_name, pc.prefetch ? "on" : "off",
             fmt_int(pc.prefetch ? pc.workers : 0), fmt(step_ms, 2),
             fmt(exposed_ms, 2), fmt(hidden_ms, 2)},
            19);
        JsonRow("fig13_weak_breakdown")
            .add("ranks", r)
            .add("loader", loader_name)
            .add("prefetch", pc.prefetch ? 1 : 0)
            .add("prefetch_workers", pc.prefetch ? pc.workers : 0)
            .add("step_ms", step_ms)
            .add("loader_exposed_ms", exposed_ms)
            .add("loader_hidden_ms", hidden_ms)
            .add("loader_bytes_per_iter", bytes)
            .emit();
      }
    }
  }
  std::printf(
      "\nExpected shape: reference-full-GN loader cost grows with ranks while\n"
      "sliced stays flat; prefetch moves most of either cost from the exposed\n"
      "column into the hidden one, and extra workers shrink what one producer\n"
      "still exposes (the InTune input-bound regime).\n");
}

// Elastic pipeline controller on the same weak-scaling shape: the
// reference-full-GN loader keeps the pipeline input-bound at one worker,
// and the controller-on row must converge the exposed stall below target
// by growing the shape — with per-window convergence-trace rows — while
// the controller-off row shows what the static shape leaves exposed.
void run_autotune() {
  std::printf("\n-- elastic pipeline controller (reference-full-GN loader): "
              "off vs on --\n");
  row({"ranks", "autotune", "step ms", "stall frac", "resizes", "workers",
       "depth"},
      12);
  for (int r : {1, 2}) {
    const DlrmConfig cfg = measured_config(r);
    RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 7);
    for (bool tune : {false, true}) {
      const int iters = 40;
      double step_ms = 0.0;
      double stall_frac = 0.0;
      std::int64_t resizes = 0;
      int workers = 1, depth = 2;
      std::vector<AutotuneSample> trace;
      run_ranks(r, /*threads_per_rank=*/1, [&](ThreadComm& comm) {
        DistributedTrainerOptions opts;
        opts.global_batch = cfg.minibatch;
        opts.loader_mode = LoaderMode::kFullGlobalBatch;
        opts.prefetch = true;
        opts.prefetch_depth = 2;
        opts.prefetch_workers = 1;
        opts.autotune.enabled = tune;
        opts.autotune.stall_target = 0.1;
        opts.autotune.window = 8;
        opts.autotune.max_workers = 4;
        opts.autotune.max_depth = 4;
        auto backend = QueueBackend::ccl_like(1);
        DistributedTrainer trainer(cfg, data, comm, backend.get(), opts);
        trainer.train(2);  // warmup (fills the pipeline)
        const double e0 = trainer.loader_exposed_sec();
        const Timer t;
        trainer.train(iters);
        if (comm.rank() == 0) {
          const double wall = t.elapsed_sec();
          step_ms = wall * 1e3 / iters;
          stall_frac = (trainer.loader_exposed_sec() - e0) / wall;
          const PipelineController& pc = trainer.pipeline_controller();
          resizes = pc.resizes();
          workers = pc.enabled() ? pc.workers() : opts.prefetch_workers;
          depth = pc.enabled() ? pc.depth() : opts.prefetch_depth;
          trace = pc.trace();
        }
      });
      row({fmt_int(r), tune ? "on" : "off", fmt(step_ms, 2),
           fmt(stall_frac, 3), fmt_int(static_cast<int>(resizes)),
           fmt_int(workers), fmt_int(depth)},
          12);
      JsonRow("fig13_autotune")
          .add("ranks", r)
          .add("autotune", tune ? 1 : 0)
          .add("iters", iters)
          .add("step_ms", step_ms)
          .add("stall_frac", stall_frac)
          .add("resizes", resizes)
          .add("final_workers", workers)
          .add("final_depth", depth)
          .emit();
      // Convergence trace: the shape each decision window ran at and the
      // stall fraction it measured there.
      for (const AutotuneSample& s : trace) {
        JsonRow("fig13_autotune_trace")
            .add("ranks", r)
            .add("step", s.step)
            .add("stall_frac", s.stall_frac)
            .add("workers", s.workers)
            .add("depth", s.depth)
            .add("resized", s.resized ? 1 : 0)
            .emit();
      }
    }
  }
  std::printf(
      "\nExpected shape: the controller steers the stall fraction toward the\n"
      "target from whichever side the static shape starts on — growing\n"
      "workers (then depth) when the one-producer stall is exposed, or\n"
      "trimming slack buffers when the loader is already hidden (the\n"
      "trace rows show the walk). Losses are bit-identical either way;\n"
      "tests/test_autotune.cpp holds the injected-stall growth case.\n");
}

}  // namespace

int main() {
  banner("Fig. 13: compute/comm break-up, weak scaling (simulated)");
  run_config(large_config(), {4, 8, 16, 32, 64}, false);
  run_config(mlperf_config(), {2, 4, 8, 16, 26}, true);
  std::printf(
      "\nExpected shape (paper): Large compute stays flat; MLPerf 'compute'\n"
      "creeps upward purely from the loader reading the full global batch\n"
      "on every rank (Sect. VI.D.2).\n");
  run_measured();
  run_autotune();
  return 0;
}
