// Reproduces paper Fig. 11: strong-scaling communication cost split into
// Alltoall/Allreduce x Framework/Wait, with and without overlap, MPI vs CCL.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks) {
  std::printf("\n-- %s (GN=%lld) --\n", cfg.name.c_str(),
              static_cast<long long>(cfg.global_batch_strong));
  row({"mode", "backend", "ranks", "a2a-frame", "ar-frame", "a2a-wait",
       "ar-wait"},
      12);
  for (bool overlap : {true, false}) {
    for (SimBackend backend : {SimBackend::kMpi, SimBackend::kCcl}) {
      for (int r : ranks) {
        SimOptions o;
        o.socket = clx_8280();
        o.topo = Topology::pruned_fat_tree(64);
        o.backend = backend;
        o.strategy = ExchangeStrategy::kAlltoall;
        o.overlap = overlap;
        o.skewed_indices = cfg.name == "MLPerf";
        const auto it = DlrmSimulator(cfg, o).iteration(r, cfg.global_batch_strong);
        row({overlap ? "Overlap" : "Blocking", to_string(backend), fmt_int(r),
             fmt(it.a2a_framework_ms, 2), fmt(it.ar_framework_ms, 2),
             fmt(it.a2a_wait_ms, 2), fmt(it.ar_wait_ms, 2)},
            12);
      }
    }
  }
}

}  // namespace

int main() {
  banner("Fig. 11: Alltoall/Allreduce framework vs wait split (simulated)");
  run_config(large_config(), {4, 8, 16, 32, 64});
  run_config(mlperf_config(), {2, 4, 8, 16, 26});
  std::printf(
      "\nExpected shape (paper): with the MPI backend + overlap the exposed\n"
      "allreduce cost shows up under Alltoall-Wait (in-order completion);\n"
      "MLPerf transitions from alltoall-bound to allreduce-bound as ranks\n"
      "grow; pre/post framework costs are backend independent.\n");
  // Placement quality under strong scaling: per-rank embedding-time
  // imbalance of the three sharding policies on a skewed table set.
  run_sharding_imbalance("fig11_comm_split", /*weak=*/false);
  // Live re-balancing: the runtime answer to the same placement problem.
  run_sharding_rebalance("fig11_comm_split");
  return 0;
}
