// Real collective benchmarks on the in-process rank world: allreduce and
// the three embedding-exchange strategies (the call-granularity effect the
// paper measured framework-level).
#include <cstdio>

#include "bench_util.hpp"
#include "comm/exchange.hpp"
#include "comm/thread_comm.hpp"
#include "common/rng.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void bench_allreduce(int ranks, std::int64_t elems) {
  double ms = 0.0;
  run_ranks(ranks, 0, [&](ThreadComm& comm) {
    std::vector<float> buf(static_cast<std::size_t>(elems), 1.0f);
    comm.allreduce(buf.data(), elems);  // warmup
    const int iters = 20;
    const Timer t;
    for (int i = 0; i < iters; ++i) comm.allreduce(buf.data(), elems);
    if (comm.rank() == 0) ms = t.elapsed_ms() / iters;
  });
  const double gb = static_cast<double>(elems) * 4 / 1e9;
  row({fmt_int(ranks), fmt(gb * 1e3, 1) + " MB", fmt(ms, 3),
       fmt(2.0 * gb * (ranks - 1) / ranks / (ms / 1e3), 2) + " GB/s"},
      16);
}

void bench_exchange(int ranks, ExchangeStrategy strategy, std::int64_t tables,
                    std::int64_t dim, std::int64_t gn) {
  double ms = 0.0;
  run_ranks(ranks, 0, [&](ThreadComm& comm) {
    EmbeddingExchange ex(comm, nullptr, strategy, tables, dim, gn);
    std::vector<Tensor<float>> outs;
    std::vector<const float*> ptrs;
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
      outs.emplace_back(std::vector<std::int64_t>{gn, dim});
      fill_uniform(outs.back(), rng, 1.0f);
      ptrs.push_back(outs.back().data());
    }
    Tensor<float> sliced({tables, ex.local_batch(), dim});
    {
      auto h = ex.start_forward(ptrs);  // warmup
      ex.finish_forward(h, sliced.data());
    }
    const int iters = 20;
    const Timer t;
    for (int i = 0; i < iters; ++i) {
      auto h = ex.start_forward(ptrs);
      ex.finish_forward(h, sliced.data());
    }
    if (comm.rank() == 0) ms = t.elapsed_ms() / iters;
  });
  row({fmt_int(ranks), to_string(strategy), fmt(ms, 3)}, 16);
}

}  // namespace

int main() {
  banner("Real in-process collectives (ThreadComm)");

  std::printf("\n-- allreduce (reduce-scatter + allgather), 9.5 MB buffer --\n");
  row({"ranks", "size", "ms", "busbw"}, 16);
  for (int r : {2, 4, 8}) bench_allreduce(r, 2499137);  // Small's Eq.1 size

  std::printf("\n-- embedding exchange fwd, S=16 tables, E=64, GN=4096 --\n");
  row({"ranks", "strategy", "ms"}, 16);
  for (int r : {2, 4, 8}) {
    for (auto s : {ExchangeStrategy::kScatterList, ExchangeStrategy::kFusedScatter,
                   ExchangeStrategy::kAlltoall}) {
      bench_exchange(r, s, 16, 64, 4096);
    }
  }
  std::printf(
      "\nExpected shape: Alltoall <= FusedScatter <= ScatterList (call-count\n"
      "overhead), mirroring the paper's >2x end-to-end benefit at scale.\n");
  return 0;
}
