// Reproduces paper Fig. 10: strong-scaling compute/communication time
// break-up, with and without overlap, MPI vs CCL backends (Large and
// MLPerf configs).
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

void run_config(const DlrmConfig& cfg, const std::vector<int>& ranks) {
  std::printf("\n-- %s (GN=%lld) --\n", cfg.name.c_str(),
              static_cast<long long>(cfg.global_batch_strong));
  row({"mode", "backend", "ranks", "compute ms", "comm ms", "total ms"}, 13);
  for (bool overlap : {true, false}) {
    for (SimBackend backend : {SimBackend::kMpi, SimBackend::kCcl}) {
      for (int r : ranks) {
        SimOptions o;
        o.socket = clx_8280();
        o.topo = Topology::pruned_fat_tree(64);
        o.backend = backend;
        o.strategy = ExchangeStrategy::kAlltoall;
        o.overlap = overlap;
        o.skewed_indices = cfg.name == "MLPerf";
        const auto it = DlrmSimulator(cfg, o).iteration(r, cfg.global_batch_strong);
        row({overlap ? "Overlapping" : "Blocking", to_string(backend),
             fmt_int(r), fmt(it.compute_ms(), 1), fmt(it.comm_ms(), 1),
             fmt(it.total_ms(), 1)},
            13);
      }
    }
  }
}

}  // namespace

int main() {
  banner("Fig. 10: compute/comm break-up, strong scaling (simulated)");
  run_config(large_config(), {4, 8, 16, 32, 64});
  run_config(mlperf_config(), {2, 4, 8, 16, 26});
  std::printf(
      "\nExpected shape (paper): overlapping MPI inflates even the compute\n"
      "time (unpinned progress-thread interference); CCL keeps compute flat\n"
      "and hides most communication.\n");
  return 0;
}
