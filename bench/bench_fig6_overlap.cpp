// Reproduces paper Figs. 2/6: overlapping the SGD allreduce
// (reduce-scatter + allgather) with the backward-pass GEMMs of a standalone
// MLP, on real rank threads, plus the simulated 8-CLX-node numbers.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"
#include "comm/ddp.hpp"
#include "comm/thread_comm.hpp"
#include "common/rng.hpp"
#include "kernels/mlp.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

// Real measurement: R rank threads train a 5-layer C=K MLP; compare the
// blocking allreduce schedule against start()/compute/finish() overlap.
void real_overlap(int ranks, std::int64_t n, std::int64_t width,
                  int threads_per_rank) {
  std::printf("\n-- real: %d ranks x %d threads, N=%lld, C=K=%lld --\n", ranks,
              threads_per_rank, static_cast<long long>(n),
              static_cast<long long>(width));
  double blocking_ms = 0.0, overlap_ms = 0.0, gemm_ms = 0.0, comm_ms = 0.0;

  for (bool overlap : {false, true}) {
    double total = 0.0, gemm = 0.0, comm = 0.0;
    run_ranks(ranks, threads_per_rank, [&](ThreadComm& comm_handle) {
      std::vector<std::int64_t> dims(6, width);
      Rng rng(7);
      Mlp mlp(dims, Activation::kRelu, Activation::kRelu);
      mlp.init(rng);
      mlp.set_batch(n / ranks);
      Tensor<float> x({n / ranks, width});
      fill_uniform(x, rng, 1.0f);
      Tensor<float> dy({n / ranks, width});
      fill_uniform(dy, rng, 0.1f);

      auto backend = overlap ? QueueBackend::ccl_like(2) : nullptr;
      DdpAllreducer ddp(comm_handle, backend.get(), 2);
      ddp.attach(mlp.param_slots());

      mlp.forward(x);
      const int iters = 5;
      const Timer t;
      double local_gemm = 0.0, local_comm = 0.0;
      for (int i = 0; i < iters; ++i) {
        mlp.forward(x);
        const Timer tb;
        if (overlap) {
          // Fig. 2 schedule: launch the reduce-scatter/allgather while the
          // backward GEMMs still run.
          mlp.backward(dy);
          local_gemm += tb.elapsed_sec();
          ddp.start();
          ddp.finish();
        } else {
          mlp.backward(dy);
          local_gemm += tb.elapsed_sec();
          ddp.run();
        }
        local_comm += ddp.wait_sec() + ddp.framework_sec();
      }
      if (comm_handle.rank() == 0) {
        total = t.elapsed_sec() / iters * 1e3;
        gemm = local_gemm / iters * 1e3;
        comm = local_comm / iters * 1e3;
      }
    });
    if (overlap) {
      overlap_ms = total;
    } else {
      blocking_ms = total;
      gemm_ms = gemm;
      comm_ms = comm;
    }
  }
  row({"schedule", "iter ms", "bwd GEMM ms", "comm ms"}, 14);
  row({"blocking", fmt(blocking_ms, 2), fmt(gemm_ms, 2), fmt(comm_ms, 2)}, 14);
  row({"overlapped", fmt(overlap_ms, 2), "-", "-"}, 14);
}

}  // namespace

int main() {
  banner("Fig. 2/6: overlapping MLP GEMMs with the SGD allreduce");
  // Scaled to this machine: 4 in-process ranks.
  real_overlap(4, 1008, 1024, 4);

  // Paper-scale simulation: 8 CLX nodes, 1 process/node, N=1008, C=K=1024.
  std::printf("\n-- simulated: 8 CLX nodes (1 rank/node, 4 EPs), N=1008, C=K=1024 --\n");
  DlrmConfig mlp_only;
  mlp_only.name = "mlp-only";
  mlp_only.minibatch = 1008;
  mlp_only.global_batch_strong = 1008;
  mlp_only.local_batch_weak = 126;
  mlp_only.pooling = 1;
  mlp_only.dim = 64;
  mlp_only.table_rows.assign(8, 64);  // negligible embeddings
  mlp_only.bottom_mlp = {1024, 1024, 1024, 1024, 1024, 64};
  mlp_only.top_mlp = {1};
  SimOptions o;
  o.socket = clx_8280();
  o.topo = Topology::pruned_fat_tree(64);
  o.backend = SimBackend::kCcl;
  o.overlap = true;
  DlrmSimulator sim(mlp_only, o);
  // N=1008 is the paper's per-node minibatch: GN = 8 * 1008.
  const auto it = sim.iteration(8, 8 * 1008);
  row({"pass", "GEMM ms", "comm exposed ms"}, 20);
  row({"BWD+UPD", fmt(it.mlp_ms, 2), fmt(it.ar_wait_ms, 2)}, 20);
  std::printf(
      "\nExpected shape (paper): with 4 dedicated comm cores the reduce-\n"
      "scatter/allgather hides completely behind the backward GEMMs\n"
      "(e.g. 5.4 ms GEMM vs 2.8 ms comm per pass on 8 CLX nodes).\n");
  return 0;
}
