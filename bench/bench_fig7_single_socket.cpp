// Reproduces paper Fig. 7: single-socket DLRM time per iteration for the
// four embedding-update strategies (Reference / AtomicXchg / RTM / RaceFree)
// on the Small and MLPerf configs.
//
// Two modes:
//  (a) REAL: the configs scaled down in rows/batch to fit this machine,
//      executed end to end. The Reference column runs the authentic naive
//      kernel (serial, dense full-table gradient) with the flat MLP.
//  (b) SIMULATED: paper-scale numbers from the calibrated cost model.
#include <cstdio>

#include "bench_util.hpp"
#include "cluster/simulator.hpp"
#include "core/model.hpp"
#include "data/dataset.hpp"
#include "optim/optimizer.hpp"

using namespace dlrm;
using namespace dlrm::bench;

namespace {

double real_iter_ms(const DlrmConfig& cfg, const Dataset& data,
                    UpdateStrategy strategy, bool optimized, int reps) {
  ModelOptions mo;
  mo.update_strategy = strategy;
  mo.fused_embedding_update = optimized;
  DlrmModel model(cfg, mo, 42);
  model.set_batch(cfg.minibatch);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  MiniBatch mb;
  data.fill(0, cfg.minibatch, mb);
  model.train_step(mb, 0.1f, opt);  // warmup
  const Timer t;
  for (int i = 0; i < reps; ++i) {
    data.fill(i * cfg.minibatch, cfg.minibatch, mb);
    model.train_step(mb, 0.1f, opt);
  }
  return t.elapsed_ms() / reps;
}

void real_config(const char* label, const DlrmConfig& cfg, const Dataset& data,
                 int ref_reps, int opt_reps) {
  std::printf("\n-- real (scaled): %s, N=%lld --\n", label,
              static_cast<long long>(cfg.minibatch));
  row({"strategy", "ms/iter", "speedup vs ref"}, 18);
  const double ref =
      real_iter_ms(cfg, data, UpdateStrategy::kReference, false, ref_reps);
  row({"Reference", fmt(ref, 1), "1.0x"}, 18);
  for (UpdateStrategy s : {UpdateStrategy::kAtomicXchg, UpdateStrategy::kRtm,
                           UpdateStrategy::kRaceFree}) {
    const double ms = real_iter_ms(cfg, data, s, true, opt_reps);
    row({to_string(s), fmt(ms, 1), fmt(ref / ms, 1) + "x"}, 18);
  }
}

void simulated_paper_scale() {
  std::printf("\n-- simulated at paper scale (SKX 8180, N=2048) --\n");
  row({"config", "strategy", "ms/iter", "paper ms"}, 16);
  struct Case {
    const char* config;
    UpdateStrategy strategy;
    bool optimized;
    bool skewed;
    const char* paper;
  };
  const Case cases[] = {
      {"Small", UpdateStrategy::kReference, false, false, "4288"},
      {"Small", UpdateStrategy::kAtomicXchg, true, false, "40.4"},
      {"Small", UpdateStrategy::kRtm, true, false, "38.3"},
      {"Small", UpdateStrategy::kRaceFree, true, false, "38.9"},
      {"MLPerf", UpdateStrategy::kReference, false, true, "272"},
      {"MLPerf", UpdateStrategy::kAtomicXchg, true, true, "106.3"},
      {"MLPerf", UpdateStrategy::kRtm, true, true, "96.8"},
      {"MLPerf", UpdateStrategy::kRaceFree, true, true, "34.8"},
  };
  for (const auto& c : cases) {
    const DlrmConfig cfg =
        std::string(c.config) == "Small" ? small_config() : mlperf_config();
    SimOptions o;
    o.socket = skx_8180();
    o.skewed_indices = c.skewed;
    DlrmSimulator sim(cfg, o);
    const double ms = sim.single_socket_ms(c.strategy, 2048, c.optimized);
    row({c.config, to_string(c.strategy), fmt(ms, 1), c.paper}, 16);
  }
}

}  // namespace

int main() {
  banner("Fig. 7: DLRM single-socket performance by update strategy");

  // Real runs, scaled: Small shape with 1/16 rows and 1/8 batch.
  {
    DlrmConfig cfg = small_config().scaled_down(16, 4);
    RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 3);
    real_config("Small-scaled (uniform indices)", cfg, data, 2, 6);
  }
  // MLPerf shape with skewed (hot-row) indices, scaled.
  {
    DlrmConfig cfg = mlperf_config().scaled_down(400, 1);
    CtrParams p;
    p.dense_dim = cfg.bottom_mlp.front();
    p.rows = cfg.table_rows;
    p.pooling = cfg.pooling;
    p.index_skew = 1.05;
    SyntheticCtrDataset data(p);
    real_config("MLPerf-scaled (Zipf indices)", cfg, data, 2, 6);
  }

  simulated_paper_scale();
  std::printf(
      "\nExpected shape (paper): ~110x Reference->optimized for Small, ~8x\n"
      "for MLPerf; on the skewed stream RaceFree beats AtomicXchg/RTM by\n"
      "the contention factor, while on uniform streams all three tie.\n");
  return 0;
}
