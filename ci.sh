#!/usr/bin/env bash
# CI entry point: tier-1 verify in Release, then an ASan/UBSan Debug pass
# over the tier1-labelled unit tests (benches off, portable codegen, the
# "slow" label — smoke runs and long multi-rank convergence suites — is
# excluded to keep the sanitizer pass bounded on the 1-CPU container), then
# a ThreadSanitizer pass over the concurrency-heavy suites (prefetch
# pipeline, in-process collectives, DDP, embedding exchange, and the
# sharded-geometry training suites).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==== Release build + full ctest (tier-1 verify) ===="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "==== Bench collection (BENCH_PR10.json) ===="
bench/collect_bench.sh build BENCH_PR10.json

echo "==== Debug + ASan/UBSan unit-test pass ===="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DDLRM_SANITIZE=ON \
  -DDLRM_BUILD_BENCH=OFF \
  -DDLRM_NATIVE_ARCH=OFF
cmake --build build-asan -j "${JOBS}"
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan -L tier1 --output-on-failure \
        -j "${JOBS}" --timeout 900

echo "==== Debug + TSan concurrency pass (prefetch/comm/ddp/exchange/sharding) ===="
# test_prefetch includes the randomized stall/early-shutdown soak over the
# multi-worker pipeline; test_prefetch_workers drives it through full
# training loops (worker-count loss parity + the dedicated eval stream).
# test_emb_cache races the hot-row tier against the concurrent update
# strategies; test_rebalance migrates shards (alltoallv) mid-training.
# test_serving races the load-generator, batcher, and snapshot-publisher
# threads through the bounded queue, the double-buffered snapshot handover,
# and the shared Profiler. test_async_ckpt races the training thread
# against the per-rank background checkpoint writers (staging handoff,
# back-pressure, cross-rank commit group); test_grad_accum runs the
# accumulation window across the multi-rank trainers. test_sharded_serving
# races the R serving-rank threads (broadcast/gather per micro-batch), the
# load generator, the admission-controlled queue, and the sharded snapshot
# handover. test_autotune drives the elastic-pipeline controller's rebuild +
# seek + prefill resize cycles through live training loops and the
# slow-loader/consumer-jitter soak.
TSAN_SUITES='test_prefetch|test_prefetch_workers|test_comm|test_ddp|test_exchange|test_sharding|test_emb_cache|test_rebalance|test_serving|test_sharded_serving|test_async_ckpt|test_grad_accum|test_autotune'
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DDLRM_SANITIZE=thread \
  -DDLRM_BUILD_BENCH=OFF \
  -DDLRM_BUILD_EXAMPLES=OFF \
  -DDLRM_NATIVE_ARCH=OFF
cmake --build build-tsan -j "${JOBS}" \
  --target test_prefetch test_prefetch_workers test_comm test_ddp \
           test_exchange test_sharding test_emb_cache test_rebalance \
           test_serving test_sharded_serving test_async_ckpt \
           test_grad_accum test_autotune
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-tsan -R "${TSAN_SUITES}" --output-on-failure \
        -j "${JOBS}" --timeout 1800

echo "CI OK"
