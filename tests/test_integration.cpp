// Cross-module integration tests: mixed precision through the distributed
// stack, loader modes through training, and failure-injection cases.
#include <gtest/gtest.h>

#include "core/distributed.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/loader.hpp"
#include "stats/metrics.hpp"

namespace dlrm {
namespace {

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 32;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {256, 256, 256, 256};
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 1};
  c.validate();
  return c;
}

TEST(Integration, DistributedSplitPrecisionMatchesSingleProcess) {
  // Hybrid-parallel training with BF16 Split-SGD embeddings must equal the
  // single-process model bit-for-bit on the embedding side (the race-free
  // update is deterministic and Split-SGD masters are exact).
  const DlrmConfig c = tiny_config();
  const std::int64_t GN = 64;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 31);

  // Single process.
  ModelOptions mo;
  mo.embed_precision = EmbedPrecision::kBf16Split;
  DlrmModel single(c, mo, 55);
  single.set_batch(GN);
  SgdFp32 opt;
  opt.attach(single.mlp_param_slots());
  MiniBatch mb;
  for (int i = 0; i < 3; ++i) {
    data.fill(i * GN, GN, mb);
    single.train_step(mb, 0.05f, opt);
  }
  std::vector<float> expect(16);
  single.table(1).read_row(3, expect.data());

  // Distributed (2 ranks).
  std::vector<float> got(16);
  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedOptions opts;
    opts.embed_precision = EmbedPrecision::kBf16Split;
    opts.lr = 0.05f;
    opts.seed = 55;
    DistributedDlrm model(c, opts, comm, nullptr, GN);
    DataLoader loader(data, GN, comm.rank(), comm.size(), model.owned_tables(),
                      LoaderMode::kLocalSlice);
    HybridBatch hb;
    for (int i = 0; i < 3; ++i) {
      loader.next(i, hb);
      model.train_step(hb);
    }
    if (comm.rank() == 1) {  // table 1 owned by rank 1
      model.owned_table(0).read_row(3, got.data());
    }
  });
  for (int e = 0; e < 16; ++e) {
    // Both sides read bf16 hi halves; the hidden masters follow identical
    // update sequences, so the views must agree to bf16 resolution.
    EXPECT_NEAR(expect[static_cast<std::size_t>(e)],
                got[static_cast<std::size_t>(e)], 1e-2f)
        << e;
  }
}

TEST(Integration, NaiveAndSlicedLoaderTrainIdentically) {
  // The reference (full global batch) and optimized loaders must feed
  // byte-identical data into training.
  const DlrmConfig c = tiny_config();
  const std::int64_t GN = 64;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 41);

  Tensor<float> logits_by_mode({2, GN});
  for (int mode = 0; mode < 2; ++mode) {
    run_ranks(2, 1, [&](ThreadComm& comm) {
      DistributedOptions opts;
      opts.seed = 7;
      DistributedDlrm model(c, opts, comm, nullptr, GN);
      DataLoader loader(data, GN, comm.rank(), comm.size(),
                        model.owned_tables(),
                        mode == 0 ? LoaderMode::kFullGlobalBatch
                                  : LoaderMode::kLocalSlice);
      HybridBatch hb;
      for (int i = 0; i < 2; ++i) {
        loader.next(i, hb);
        model.train_step(hb);
      }
      loader.next(0, hb);
      const Tensor<float>& logits = model.forward(hb);
      for (std::int64_t i = 0; i < model.local_batch(); ++i) {
        logits_by_mode[mode * GN + comm.rank() * model.local_batch() + i] =
            logits[i];
      }
    });
  }
  for (std::int64_t i = 0; i < GN; ++i) {
    ASSERT_EQ(logits_by_mode[i], logits_by_mode[GN + i]) << i;
  }
}

TEST(Integration, TrainerLrScheduleTakesEffect) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 43);
  DlrmModel model(c, {}, 3);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data, {.lr = 0.1f, .batch = 32});
  EXPECT_FLOAT_EQ(trainer.lr(), 0.1f);
  trainer.set_lr(0.0f);  // freeze
  auto slots = model.mlp_param_slots();
  const float before = slots[0].param[0];
  trainer.train(2);
  EXPECT_EQ(slots[0].param[0], before) << "lr=0 must freeze dense params";
}

TEST(Integration, MismatchedBatchThrows) {
  const DlrmConfig c = tiny_config();
  DlrmModel model(c, {}, 4);
  model.set_batch(32);
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 44);
  MiniBatch mb;
  data.fill(0, 16, mb);  // wrong batch
  EXPECT_THROW(model.forward(mb), CheckError);
}

TEST(Integration, DistributedRejectsWrongOwnedBags) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 45);
  run_ranks(2, 1, [&](ThreadComm& comm) {
    DistributedOptions opts;
    DistributedDlrm model(c, opts, comm, nullptr, 64);
    DataLoader loader(data, 64, comm.rank(), comm.size(), model.owned_tables(),
                      LoaderMode::kLocalSlice);
    HybridBatch hb;
    loader.next(0, hb);
    hb.owned_bags.pop_back();  // corrupt: missing one owned table
    EXPECT_THROW(model.train_step(hb), CheckError);
    // Recover so both ranks stay in lockstep for the next collective-free exit.
  });
}

}  // namespace
}  // namespace dlrm
