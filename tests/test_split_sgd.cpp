// Long-horizon Split-SGD-BF16 validation (paper Sect. VII):
//   * hi/lo recombination bit-exact against an fp32 master copy over 10k
//     SGD steps, and
//   * a convergence smoke test: bf16 MLP + Split-SGD reaches the same loss
//     as the fp32 stack within tolerance on a tiny synthetic dataset.
#include "optim/optimizer.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kernels/loss.hpp"
#include "kernels/mlp.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {
namespace {

TEST(SplitSgd10k, RecombinationBitExactVsFp32MasterOver10kSteps) {
  // An explicit fp32 master trajectory and the Split-SGD hi|lo trajectory
  // must agree bit for bit for 10'000 steps: the visible bf16 weight is
  // always the truncation of the master, and the hidden low half carries the
  // remaining mantissa exactly.
  const std::int64_t n = 513;
  Rng rng(2024);
  Tensor<float> master({n});            // explicit fp32 master
  Tensor<float> split_p({n}), g({n});   // Split-SGD visible params + grads
  for (std::int64_t i = 0; i < n; ++i) {
    master[i] = rng.uniform(-2.0f, 2.0f);
    split_p[i] = master[i];
  }
  SplitSgdBf16 opt(16);
  opt.attach({{split_p.data(), g.data(), n}});

  const float lr = 0.013f;
  for (int iter = 0; iter < 10000; ++iter) {
    for (std::int64_t i = 0; i < n; ++i) {
      // Mix magnitudes so some updates are far below the bf16 ulp.
      g[i] = rng.uniform(-1.0f, 1.0f) * ((i % 3 == 0) ? 1e-4f : 1.0f);
    }
    opt.step(lr);
    for (std::int64_t i = 0; i < n; ++i) master[i] -= lr * g[i];
    // Spot-check a stride each step; full check every 1000 steps.
    const std::int64_t stride = (iter % 1000 == 999) ? 1 : 61;
    for (std::int64_t i = 0; i < n; i += stride) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(split_p[i]),
                std::bit_cast<std::uint32_t>(
                    bf16_to_f32(f32_to_bf16_trunc(master[i]))))
          << "iter " << iter << " i " << i;
    }
  }
}

// Tiny synthetic binary-classification set: labels from a random teacher
// MLP, so the task is learnable and the loss floor is well below the 0.693
// chance level.
struct SyntheticTask {
  std::int64_t n = 256, in = 16;
  Tensor<float> x{{256, 16}};
  Tensor<float> y{{256}};

  SyntheticTask() {
    Rng rng(99);
    fill_uniform(x, rng, 1.0f);
    Mlp teacher({in, 8, 1}, Activation::kRelu, Activation::kNone);
    Rng trng(7);
    teacher.init(trng);
    teacher.set_batch(n);
    const Tensor<float>& logits = teacher.forward(x);
    for (std::int64_t i = 0; i < n; ++i) y[i] = logits[i] > 0.0f ? 1.0f : 0.0f;
  }
};

double train_epochs(Mlp& mlp, Optimizer& opt, const SyntheticTask& task,
                    int iters) {
  mlp.set_batch(task.n);
  opt.attach(mlp.param_slots());
  Tensor<float> dlogits({task.n, 1});
  double loss = 0.0;
  for (int it = 0; it < iters; ++it) {
    const Tensor<float>& logits = mlp.forward(task.x);
    loss = bce_with_logits(logits.data(), task.y.data(), task.n, dlogits.data());
    mlp.backward(dlogits);
    opt.step(0.5f);
  }
  return loss;
}

TEST(SplitSgdConvergence, Bf16MatchesFp32LossOnSyntheticTask) {
  SyntheticTask task;
  const std::vector<std::int64_t> dims{16, 32, 1};
  const int iters = 300;

  Rng rng1(42), rng2(42);
  Mlp fp32_mlp(dims, Activation::kRelu, Activation::kNone);
  fp32_mlp.init(rng1);
  SgdFp32 fp32_opt;
  const double fp32_loss = train_epochs(fp32_mlp, fp32_opt, task, iters);

  Mlp bf16_mlp(dims, Activation::kRelu, Activation::kNone, {},
               Precision::kBf16);
  bf16_mlp.init(rng2);
  SplitSgdBf16 split_opt(16);
  const double bf16_loss = train_epochs(bf16_mlp, split_opt, task, iters);

  // Both must have learned (well under chance-level 0.693)...
  EXPECT_LT(fp32_loss, 0.35);
  EXPECT_LT(bf16_loss, 0.35);
  // ...and the bf16+Split-SGD loss must track the fp32 loss.
  EXPECT_NEAR(bf16_loss, fp32_loss, 0.1);
}

TEST(SplitSgdConvergence, PlainBf16RoundingStallsWhereSplitSgdLearns) {
  // The negative control from the paper: rounding the weights to bf16 after
  // every update (no hidden low bits) loses small updates and converges
  // measurably worse than Split-SGD on the same task and schedule.
  SyntheticTask task;
  const std::vector<std::int64_t> dims{16, 32, 1};
  const int iters = 300;
  const float lr = 0.02f;  // small steps make truncation losses visible

  Rng rng1(42), rng2(42);
  Mlp split_mlp(dims, Activation::kRelu, Activation::kNone, {},
                Precision::kBf16);
  split_mlp.init(rng1);
  split_mlp.set_batch(task.n);
  SplitSgdBf16 split_opt(16);
  auto split_slots = split_mlp.param_slots();
  split_opt.attach(split_slots);

  Mlp naive_mlp(dims, Activation::kRelu, Activation::kNone, {},
                Precision::kBf16);
  naive_mlp.init(rng2);
  naive_mlp.set_batch(task.n);
  auto naive_slots = naive_mlp.param_slots();
  // Snap the naive params to the bf16 grid to match Split-SGD's start.
  for (auto& s : naive_slots) {
    for (std::int64_t i = 0; i < s.size; ++i) {
      s.param[i] = bf16_to_f32(f32_to_bf16_rne(s.param[i]));
    }
  }

  Tensor<float> dlogits({task.n, 1});
  double split_loss = 0.0, naive_loss = 0.0;
  for (int it = 0; it < iters; ++it) {
    const Tensor<float>& ls = split_mlp.forward(task.x);
    split_loss = bce_with_logits(ls.data(), task.y.data(), task.n, dlogits.data());
    split_mlp.backward(dlogits);
    split_opt.step(lr);

    const Tensor<float>& ln = naive_mlp.forward(task.x);
    naive_loss = bce_with_logits(ln.data(), task.y.data(), task.n, dlogits.data());
    naive_mlp.backward(dlogits);
    for (auto& s : naive_slots) {
      for (std::int64_t i = 0; i < s.size; ++i) {
        s.param[i] = bf16_to_f32(f32_to_bf16_rne(s.param[i] - lr * s.grad[i]));
      }
    }
  }
  // Split-SGD must end at least as good as naive bf16 rounding; typically
  // clearly better because sub-ulp updates accumulate in the low halves.
  EXPECT_LE(split_loss, naive_loss + 1e-6);
}

}  // namespace
}  // namespace dlrm
