// Sharded serving tier + admission control.
//
//   * Bit-exact parity: ShardedInferenceEngine::run_trace vs the
//     single-process InferenceEngine over the full R∈{1,2,4} ×
//     {round_robin, row_split} × {fp32, bf16} matrix, plus the
//     checkpoint-publication path.
//   * AdmissionController unit behaviour: hysteresis state walk under
//     synthetic p99 pressure, batch-class records never move the window.
//   * RequestQueue: strict-priority draining, shed/defer counters, batch
//     re-admission after recovery.
//   * Engine-level integration: a 2-class mix against a throttled target
//     sheds batch traffic while interactive requests keep being served,
//     with closed accounting.
//   * Live sharded serving under load + snapshot handover (the TSan leg).
#include "serve/sharded.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/timer.hpp"
#include "core/trainer.hpp"
#include "serve/loadgen.hpp"
#include "serve/snapshot.hpp"

namespace dlrm {
namespace {

namespace fs = std::filesystem;
using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::AdmissionState;
using serve::BatchPolicy;
using serve::InferenceEngine;
using serve::LoadGenOptions;
using serve::ModelSnapshot;
using serve::PoissonLoadGen;
using serve::PopStatus;
using serve::Request;
using serve::RequestQueue;
using serve::Response;
using serve::ShardedEngineOptions;
using serve::ShardedInferenceEngine;
using serve::ShardedSnapshot;
using serve::SloClass;
using serve::SubmitResult;

DlrmConfig serve_config(Precision mlp = Precision::kFp32) {
  DlrmConfig c;
  c.name = "serve-tiny";
  c.minibatch = 32;
  c.global_batch_strong = 32;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {120, 90, 140, 60};
  c.bottom_mlp = {8, 16, 16};
  c.top_mlp = {16, 8, 1};
  c.mlp_precision = mlp;
  c.validate();
  return c;
}

RandomDataset serve_data(const DlrmConfig& c) {
  return RandomDataset(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
}

ModelOptions model_options(Precision mlp) {
  ModelOptions mopts;
  mopts.embed_precision = mlp == Precision::kBf16 ? EmbedPrecision::kBf16Split
                                                  : EmbedPrecision::kFp32;
  return mopts;
}

ShardingPlan make_plan(const DlrmConfig& c, int ranks, bool row_split) {
  if (!row_split) return ShardingPlan::round_robin(c.table_rows, ranks);
  // Uniform costs; threshold 64 splits three of the four tables.
  const std::vector<double> costs(c.table_rows.size(), 1.0);
  return ShardingPlan::row_split(c.table_rows, ranks, costs,
                                 /*row_threshold=*/64);
}

std::vector<Request> fixed_trace() {
  LoadGenOptions lopts;
  lopts.qps = 1e6;  // stamps only; run_trace ignores pacing
  lopts.requests = 60;
  lopts.fanout = 3;
  lopts.key_space = 4096;
  lopts.zipf_s = 0.9;
  lopts.seed = 5;
  return serve::make_trace(lopts);
}

// ---------------------------------------------------------------------------
// Bit-exact parity matrix

using ParityParam = std::tuple<int, bool, Precision>;  // ranks, row_split, mlp

class ShardedParityTest : public ::testing::TestWithParam<ParityParam> {};

TEST_P(ShardedParityTest, MatchesSingleProcessBitExact) {
  const auto [ranks, row_split, mlp] = GetParam();
  const DlrmConfig c = serve_config(mlp);
  const ModelOptions mopts = model_options(mlp);
  const RandomDataset data = serve_data(c);
  const ShardingPlan plan = make_plan(c, ranks, row_split);
  // A table splits into at most `ranks` shards, so R=1 degenerates to
  // full-table placement (still a distinct code path worth the cell).
  if (row_split && ranks > 1) ASSERT_TRUE(plan.has_split_tables());

  DlrmModel model(c, mopts, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(4);

  ModelSnapshot ref_snap(c, mopts);
  ref_snap.publish_from(model, trainer.iterations_done());
  ShardedSnapshot sharded_snap(c, mopts, plan);
  sharded_snap.publish_from(model, trainer.iterations_done());

  const std::vector<Request> trace = fixed_trace();
  InferenceEngine ref(ref_snap, data,
                      {.policy = {.max_batch = 8, .max_wait_us = 0}});
  const std::vector<Response> want = ref.run_trace(trace);

  ShardedEngineOptions sopts;
  sopts.policy = {.max_batch = 8, .max_wait_us = 0};
  ShardedInferenceEngine engine(sharded_snap, data, sopts);
  ASSERT_EQ(engine.ranks(), ranks);
  const std::vector<Response> got = engine.run_trace(trace);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "request " << i;
    EXPECT_EQ(got[i].batch, want[i].batch) << "request " << i;
    // Bitwise: EXPECT_EQ on float, not NEAR.
    EXPECT_EQ(got[i].score0, want[i].score0) << "request " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ShardedParityTest,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Bool(),
                       ::testing::Values(Precision::kFp32, Precision::kBf16)),
    [](const ::testing::TestParamInfo<ParityParam>& tpi) {
      return "R" + std::to_string(std::get<0>(tpi.param)) +
             (std::get<1>(tpi.param) ? "_row_split_" : "_round_robin_") +
             std::string(to_string(std::get<2>(tpi.param)));
    });

// Pow2 bucketing on the sharded path: with bucket_batches set on BOTH
// engines, the sharded tier pads each micro-batch to the next power-of-two
// before the broadcast (every rank sees the padded request list), and the
// real scores stay bitwise identical to the single-process pow2 engine.
// Regression for the bug where ShardedEngineOptions silently ignored
// bucketing altogether.
TEST(ShardedServing, Pow2BucketingMatchesSingleProcessBitExact) {
  for (const Precision mlp : {Precision::kFp32, Precision::kBf16}) {
    for (const int ranks : {2, 4}) {
      for (const bool row_split : {false, true}) {
        const DlrmConfig c = serve_config(mlp);
        const ModelOptions mopts = model_options(mlp);
        const RandomDataset data = serve_data(c);
        const ShardingPlan plan = make_plan(c, ranks, row_split);

        DlrmModel model(c, mopts, /*seed=*/21);
        Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
        trainer.train(4);

        ModelSnapshot ref_snap(c, mopts);
        ref_snap.publish_from(model, trainer.iterations_done());
        ShardedSnapshot sharded_snap(c, mopts, plan);
        sharded_snap.publish_from(model, trainer.iterations_done());

        // 60 requests x fanout 3 at max_batch 8: micro-batches of up to 24
        // samples, never a power of two unless padded.
        const std::vector<Request> trace = fixed_trace();
        Profiler ref_prof;
        InferenceEngine ref(ref_snap, data,
                            {.policy = {.max_batch = 8, .max_wait_us = 0},
                             .bucket_batches = true},
                            &ref_prof);
        const std::vector<Response> want = ref.run_trace(trace);

        ShardedEngineOptions sopts;
        sopts.policy = {.max_batch = 8, .max_wait_us = 0};
        sopts.bucket_batches = true;
        Profiler prof;
        ShardedInferenceEngine engine(sharded_snap, data, sopts, &prof);
        const std::vector<Response> got = engine.run_trace(trace);

        // Padding actually happened on both engines — and identically.
        EXPECT_GT(prof.total_sec("serve_padded"), 0.0);
        EXPECT_EQ(prof.total_sec("serve_padded"),
                  ref_prof.total_sec("serve_padded"));

        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].id, want[i].id) << "request " << i;
          EXPECT_EQ(got[i].batch, want[i].batch) << "request " << i;
          EXPECT_EQ(got[i].score0, want[i].score0)
              << "R" << ranks << (row_split ? " row_split " : " round_robin ")
              << to_string(mlp) << " request " << i;
        }
      }
    }
  }
}

// Checkpoint publication: a sharded snapshot restored from a checkpoint
// directory serves bit-identically to a single-process snapshot restored
// from the same checkpoint (cross-geometry resharding included).
TEST(ShardedServing, CheckpointPublicationServesIdentically) {
  const DlrmConfig c = serve_config(Precision::kBf16);
  const ModelOptions mopts = model_options(Precision::kBf16);
  const RandomDataset data = serve_data(c);
  const fs::path dir = fs::temp_directory_path() / "dlrm_sharded_serve_ckpt";
  fs::remove_all(dir);

  DlrmModel model(c, mopts, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(4);
  trainer.save_checkpoint(dir.string());

  ModelSnapshot ref_snap(c, mopts);
  ref_snap.publish_from_checkpoint(dir.string());
  const ShardingPlan plan = make_plan(c, /*ranks=*/2, /*row_split=*/true);
  ShardedSnapshot sharded_snap(c, mopts, plan);
  sharded_snap.publish_from_checkpoint(dir.string());
  EXPECT_EQ(sharded_snap.version(), trainer.iterations_done());
  EXPECT_EQ(sharded_snap.version(), ref_snap.version());

  const std::vector<Request> trace = fixed_trace();
  InferenceEngine ref(ref_snap, data,
                      {.policy = {.max_batch = 8, .max_wait_us = 0}});
  const std::vector<Response> want = ref.run_trace(trace);
  ShardedEngineOptions sopts;
  sopts.policy = {.max_batch = 8, .max_wait_us = 0};
  ShardedInferenceEngine engine(sharded_snap, data, sopts);
  const std::vector<Response> got = engine.run_trace(trace);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].score0, want[i].score0) << "request " << i;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// AdmissionController unit behaviour

AdmissionOptions tight_admission() {
  AdmissionOptions a;
  a.p99_target_ms = 10.0;  // defer at 7, shed at 9, exit at 6
  a.window = 8;
  a.min_samples = 4;
  return a;
}

TEST(Admission, HysteresisStateWalk) {
  AdmissionController ctrl(tight_admission());
  EXPECT_EQ(ctrl.state(), AdmissionState::kOpen);

  // Below min_samples: no transitions no matter how bad the latency.
  ctrl.record(SloClass::kInteractive, 100.0);
  ctrl.record(SloClass::kInteractive, 100.0);
  ctrl.record(SloClass::kInteractive, 100.0);
  EXPECT_EQ(ctrl.state(), AdmissionState::kOpen);

  // Fourth sample reaches min_samples; p99 (window max) = 100 >= 9 -> shed.
  ctrl.record(SloClass::kInteractive, 100.0);
  EXPECT_EQ(ctrl.state(), AdmissionState::kShed);
  EXPECT_TRUE(ctrl.shed_batch());
  EXPECT_TRUE(ctrl.hold_batch());

  // Recovery below the shed threshold but above exit: still shedding
  // (hysteresis) until the window's p99 drops to <= 6.
  for (int i = 0; i < 7; ++i) ctrl.record(SloClass::kInteractive, 8.0);
  EXPECT_EQ(ctrl.state(), AdmissionState::kShed);
  ctrl.record(SloClass::kInteractive, 8.0);  // 100 ages out, p99 = 8 > 6
  EXPECT_EQ(ctrl.state(), AdmissionState::kShed);
  for (int i = 0; i < 8; ++i) ctrl.record(SloClass::kInteractive, 1.0);
  EXPECT_EQ(ctrl.state(), AdmissionState::kOpen);
  EXPECT_FALSE(ctrl.hold_batch());

  // Mid-band entry: p99 in [defer, shed) defers without shedding.
  for (int i = 0; i < 8; ++i) ctrl.record(SloClass::kInteractive, 8.0);
  EXPECT_EQ(ctrl.state(), AdmissionState::kDefer);
  EXPECT_FALSE(ctrl.shed_batch());
  EXPECT_TRUE(ctrl.hold_batch());
  // Defer escalates to shed when p99 crosses the shed threshold.
  ctrl.record(SloClass::kInteractive, 50.0);
  EXPECT_EQ(ctrl.state(), AdmissionState::kShed);
}

TEST(Admission, BatchRecordsNeverMoveTheWindow) {
  AdmissionController ctrl(tight_admission());
  for (int i = 0; i < 32; ++i) ctrl.record(SloClass::kBatch, 1000.0);
  EXPECT_EQ(ctrl.state(), AdmissionState::kOpen);
  EXPECT_EQ(ctrl.samples(), 0);
  EXPECT_EQ(ctrl.rolling_p99_ms(), 0.0);
}

TEST(Admission, DisabledControllerNeverTransitions) {
  AdmissionController ctrl(AdmissionOptions{});  // p99_target_ms = 0
  for (int i = 0; i < 64; ++i) ctrl.record(SloClass::kInteractive, 1e6);
  EXPECT_EQ(ctrl.state(), AdmissionState::kOpen);
  EXPECT_FALSE(ctrl.shed_batch());
  EXPECT_FALSE(ctrl.hold_batch());
}

// ---------------------------------------------------------------------------
// RequestQueue: strict priority, shed, defer, re-admission

Request make_req(std::int64_t id, SloClass slo) {
  Request r;
  r.id = id;
  r.key = id;
  r.fanout = 1;
  r.submit_sec = now_sec();
  r.slo = slo;
  return r;
}

TEST(RequestQueueTest, StrictPriorityDraining) {
  RequestQueue q(/*capacity_per_class=*/8, AdmissionOptions{});
  q.open();
  ASSERT_EQ(q.submit(make_req(1, SloClass::kBatch), false), SubmitResult::kOk);
  ASSERT_EQ(q.submit(make_req(2, SloClass::kBatch), false), SubmitResult::kOk);
  ASSERT_EQ(q.submit(make_req(3, SloClass::kInteractive), false),
            SubmitResult::kOk);

  Request r;
  ASSERT_TRUE(q.pop_first(r));
  EXPECT_EQ(r.id, 3);  // interactive jumps the earlier batch arrivals
  ASSERT_TRUE(q.pop_first(r));
  EXPECT_EQ(r.id, 1);
  ASSERT_TRUE(q.pop_first(r));
  EXPECT_EQ(r.id, 2);
  q.close();
  EXPECT_FALSE(q.pop_first(r));
}

TEST(RequestQueueTest, ShedsBatchUnderSyntheticP99Pressure) {
  AdmissionOptions a = tight_admission();
  a.min_samples = 1;
  RequestQueue q(/*capacity_per_class=*/8, a);
  q.open();
  // One terrible interactive latency flips the controller to kShed.
  q.record_latency(SloClass::kInteractive, 1000.0);
  EXPECT_EQ(q.admission_state(), AdmissionState::kShed);

  EXPECT_EQ(q.submit(make_req(1, SloClass::kBatch), false),
            SubmitResult::kShed);
  EXPECT_EQ(q.submit(make_req(2, SloClass::kBatch), true), SubmitResult::kShed);
  // Interactive traffic is never shed.
  EXPECT_EQ(q.submit(make_req(3, SloClass::kInteractive), false),
            SubmitResult::kOk);

  const auto counters = q.counters();
  EXPECT_EQ(counters.shed[1], 2);
  EXPECT_EQ(counters.shed[0], 0);
  EXPECT_EQ(counters.admitted[0], 1);
  q.close();
}

TEST(RequestQueueTest, DefersThenReadmitsBatchWithHysteresis) {
  AdmissionOptions a = tight_admission();
  a.min_samples = 1;
  a.window = 4;
  RequestQueue q(/*capacity_per_class=*/8, a);
  q.open();
  ASSERT_EQ(q.submit(make_req(1, SloClass::kBatch), false), SubmitResult::kOk);

  // p99 = 8ms: defer band. The queued batch request is held, not dropped.
  q.record_latency(SloClass::kInteractive, 8.0);
  EXPECT_EQ(q.admission_state(), AdmissionState::kDefer);
  Request r;
  EXPECT_EQ(q.pop_fitting(/*budget=*/4, /*deadline_sec=*/now_sec() + 0.01, r),
            PopStatus::kTimeout);
  EXPECT_EQ(q.counters().deferred[1], 1);

  // Recovery: window floods with good latencies, batch drains again.
  for (int i = 0; i < 4; ++i) q.record_latency(SloClass::kInteractive, 1.0);
  EXPECT_EQ(q.admission_state(), AdmissionState::kOpen);
  ASSERT_EQ(q.pop_fitting(/*budget=*/4, now_sec() + 0.01, r),
            PopStatus::kPopped);
  EXPECT_EQ(r.id, 1);
  q.close();
}

TEST(RequestQueueTest, CloseDrainsHeldBatchWork) {
  AdmissionOptions a = tight_admission();
  a.min_samples = 1;
  RequestQueue q(/*capacity_per_class=*/8, a);
  q.open();
  ASSERT_EQ(q.submit(make_req(7, SloClass::kBatch), false), SubmitResult::kOk);
  q.record_latency(SloClass::kInteractive, 1000.0);  // hold the batch class
  q.close();
  // Shutdown drain ignores the hold: admitted work is always served.
  Request r;
  ASSERT_TRUE(q.pop_first(r));
  EXPECT_EQ(r.id, 7);
  EXPECT_FALSE(q.pop_first(r));
}

// ---------------------------------------------------------------------------
// Engine-level integration: 2-class mix against a throttled p99 target

TEST(ShardedServing, AdmissionShedsBatchKeepsInteractive) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);
  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(4);
  ModelSnapshot snap(c, {});
  snap.publish_from(model, trainer.iterations_done());

  serve::EngineOptions opts;
  opts.policy = {.max_batch = 8, .max_wait_us = 100};
  // Impossible target: the first interactive completions trip the shed
  // state, so batch arrivals after warm-up are refused.
  opts.admission.p99_target_ms = 1e-3;
  opts.admission.window = 32;
  opts.admission.min_samples = 1;
  InferenceEngine engine(snap, data, opts);
  engine.start();

  LoadGenOptions lopts;
  lopts.qps = 8000;
  lopts.requests = 400;
  lopts.fanout = 2;
  lopts.key_space = 4096;
  lopts.interactive_frac = 0.5;
  lopts.drop_when_full = true;
  PoissonLoadGen gen(engine, lopts);
  gen.run();
  engine.stop();

  const auto s = engine.stats();
  const auto& inter = s.by_class[0];
  const auto& batch = s.by_class[1];
  EXPECT_GT(batch.shed, 0) << "overload never shed batch traffic";
  EXPECT_EQ(inter.shed, 0) << "interactive traffic must never be shed";
  EXPECT_GT(inter.served, 0);
  EXPECT_EQ(s.admission_state, AdmissionState::kShed);
  // Accounting closes: every generated request was served, rejected
  // (full-queue drop), or shed.
  EXPECT_EQ(gen.sent() + gen.dropped(), lopts.requests);
  EXPECT_EQ(s.requests + s.rejected + s.shed, lopts.requests);
  EXPECT_EQ(s.requests, gen.sent());
  EXPECT_EQ(inter.served + batch.served, s.requests);
  // Per-class percentiles are over served requests only, and ordered.
  EXPECT_LE(inter.p50_ms, inter.p99_ms);
  EXPECT_GT(s.admission_p99_ms, 0.0);
}

// Without a controller the same overload never sheds anything.
TEST(ShardedServing, NoControllerNeverSheds) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);
  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(4);
  ModelSnapshot snap(c, {});
  snap.publish_from(model, trainer.iterations_done());

  serve::EngineOptions opts;
  opts.policy = {.max_batch = 8, .max_wait_us = 100};
  InferenceEngine engine(snap, data, opts);
  engine.start();
  LoadGenOptions lopts;
  lopts.qps = 8000;
  lopts.requests = 200;
  lopts.fanout = 2;
  lopts.interactive_frac = 0.5;
  lopts.drop_when_full = true;
  PoissonLoadGen gen(engine, lopts);
  gen.run();
  engine.stop();

  const auto s = engine.stats();
  EXPECT_EQ(s.shed, 0);
  EXPECT_EQ(s.admission_state, AdmissionState::kOpen);
  EXPECT_EQ(s.requests + s.rejected, lopts.requests);
}

// Class-mix traces: single-class traces are byte-identical to the
// pre-class-mix generator (no RNG draw when interactive_frac == 1), and a
// mixed trace stamps both classes while keeping the same keys.
TEST(ShardedServing, ClassMixTraceStampsClasses) {
  LoadGenOptions lopts;
  lopts.qps = 1e6;
  lopts.requests = 200;
  lopts.fanout = 2;
  lopts.key_space = 1024;
  lopts.seed = 9;
  const std::vector<Request> pure = serve::make_trace(lopts);
  for (const Request& r : pure) EXPECT_EQ(r.slo, SloClass::kInteractive);

  lopts.interactive_frac = 0.5;
  const std::vector<Request> mixed = serve::make_trace(lopts);
  ASSERT_EQ(mixed.size(), pure.size());
  std::int64_t batch_count = 0;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(mixed[i].id, pure[i].id);
    EXPECT_EQ(mixed[i].fanout, pure[i].fanout);
    if (mixed[i].slo == SloClass::kBatch) ++batch_count;
  }
  EXPECT_GT(batch_count, 40);
  EXPECT_LT(batch_count, 160);
}

// Regression: the all-batch extreme (interactive_frac == 0) must skip the
// class draw exactly like the all-interactive one does, so BOTH
// single-class traces are byte-identical to each other (and therefore to a
// pre-class-mix trace) — same keys, fanouts and arrival stamps, only the
// stamped class differs. Previously only frac >= 1 skipped the draw, so an
// all-batch trace silently consumed extra RNG and shifted every key.
TEST(ShardedServing, AllBatchTraceByteIdenticalToAllInteractive) {
  LoadGenOptions lopts;
  lopts.qps = 1e6;
  lopts.requests = 200;
  lopts.fanout = 2;
  lopts.key_space = 1024;
  lopts.seed = 9;
  lopts.interactive_frac = 1.0;
  const std::vector<Request> interactive = serve::make_trace(lopts);
  lopts.interactive_frac = 0.0;
  const std::vector<Request> batch = serve::make_trace(lopts);

  ASSERT_EQ(batch.size(), interactive.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].slo, SloClass::kBatch) << "request " << i;
    EXPECT_EQ(batch[i].id, interactive[i].id) << "request " << i;
    EXPECT_EQ(batch[i].key, interactive[i].key) << "request " << i;
    EXPECT_EQ(batch[i].fanout, interactive[i].fanout) << "request " << i;
    EXPECT_EQ(batch[i].submit_sec, interactive[i].submit_sec)
        << "request " << i;
  }
}

// ---------------------------------------------------------------------------
// Live sharded serving under Poisson load with snapshot handover (TSan leg:
// R serving ranks + loadgen thread + publisher thread share the engine).

TEST(ShardedServing, LiveServingWithSnapshotHandover) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);
  const ShardingPlan plan = make_plan(c, /*ranks=*/2, /*row_split=*/true);

  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(1);

  ShardedSnapshot snapA(c, {}, plan), snapB(c, {}, plan);
  snapA.publish_from(model, trainer.iterations_done());

  ShardedEngineOptions opts;
  opts.policy = {.max_batch = 16, .max_wait_us = 200};
  opts.queue_capacity = 256;
  ShardedInferenceEngine engine(snapA, data, opts);
  engine.start();

  LoadGenOptions lopts;
  lopts.qps = 3000;
  lopts.requests = 300;
  lopts.fanout = 2;
  lopts.key_space = 4096;
  lopts.zipf_s = 0.9;
  lopts.interactive_frac = 0.7;
  PoissonLoadGen gen(engine, lopts);
  std::thread load([&] { gen.run(); });

  ShardedSnapshot* snaps[2] = {&snapA, &snapB};
  for (int pub = 0; pub < 4; ++pub) {
    trainer.train(1);
    ShardedSnapshot* idle = snaps[(pub + 1) % 2];
    idle->publish_from(model, trainer.iterations_done());
    engine.set_snapshot(idle);
    if (!engine.wait_snapshot_swapped(0.5)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  load.join();
  engine.stop();

  EXPECT_EQ(gen.sent(), lopts.requests);
  const std::vector<Response> rs = engine.responses();
  ASSERT_EQ(static_cast<std::int64_t>(rs.size()), lopts.requests);
  std::set<std::int64_t> versions;
  std::int64_t batch_served = 0;
  for (const Response& r : rs) {
    versions.insert(r.version);
    if (r.slo == SloClass::kBatch) ++batch_served;
  }
  EXPECT_GE(versions.size(), 2u) << "no snapshot handover was observed";
  EXPECT_GT(batch_served, 0);
  const auto s = engine.stats();
  EXPECT_EQ(s.requests, lopts.requests);
  EXPECT_EQ(s.samples, lopts.requests * lopts.fanout);
  EXPECT_LE(s.p50_ms, s.p99_ms);
}

}  // namespace
}  // namespace dlrm
