// Tests for the blocked fully connected layers and MLP stacks: correctness
// against flat/naive computation and numerical gradient checks.
#include "kernels/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "kernels/gemm.hpp"

namespace dlrm {
namespace {

TEST(PickBlock, ReturnsLargestDivisorAtMostTarget) {
  EXPECT_EQ(pick_block(1024, 64), 64);
  EXPECT_EQ(pick_block(1024, 48), 32);  // 48 does not divide 1024
  EXPECT_EQ(pick_block(13, 64), 13);
  EXPECT_EQ(pick_block(13, 8), 1);  // 13 prime, target below it
  EXPECT_EQ(pick_block(1, 64), 1);
  EXPECT_EQ(pick_block(1008, 32), 28);
  EXPECT_EQ(pick_block(479, 32), 1);  // prime
}

TEST(PickBlock, PropertySweep) {
  for (std::int64_t dim = 1; dim <= 300; ++dim) {
    for (std::int64_t target : {1, 2, 7, 16, 64}) {
      const std::int64_t b = pick_block(dim, target);
      ASSERT_GE(b, 1);
      ASSERT_LE(b, std::min(dim, target));
      ASSERT_EQ(dim % b, 0) << dim << " " << target;
      // Maximality: no larger divisor <= target.
      for (std::int64_t d = b + 1; d <= std::min(dim, target); ++d) {
        ASSERT_NE(dim % d, 0) << dim << " " << target << " " << d;
      }
    }
  }
}

// Naive flat forward: y = act(x W^T + bias), W flat [K][C].
void naive_forward(const float* x, const float* w, const float* bias,
                   float* y, std::int64_t n, std::int64_t c, std::int64_t k,
                   Activation act) {
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ik = 0; ik < k; ++ik) {
      float acc = bias[ik];
      for (std::int64_t ic = 0; ic < c; ++ic) {
        acc += x[in * c + ic] * w[ik * c + ic];
      }
      if (act == Activation::kRelu) acc = acc > 0 ? acc : 0;
      if (act == Activation::kSigmoid) acc = 1.0f / (1.0f + std::exp(-acc));
      y[in * k + ik] = acc;
    }
  }
}

using FcShape = std::tuple<std::int64_t, std::int64_t, std::int64_t>;  // n, c, k

class FullyConnectedTest : public ::testing::TestWithParam<FcShape> {};

TEST_P(FullyConnectedTest, ForwardMatchesNaive) {
  const auto [n, c, k] = GetParam();
  Rng rng(n + c + k);
  FullyConnected fc(c, k, Activation::kRelu);
  fc.init(rng);

  Tensor<float> w_flat({k, c});
  fc.weights().unpack_to(w_flat.data());
  Tensor<float> x({n, c});
  fill_uniform(x, rng, 1.0f);

  const std::int64_t bn = pick_block(n, 32);
  BlockedActivations xb(n, c, bn, fc.bc());
  BlockedActivations yb(n, k, bn, fc.bk());
  xb.pack_from(x.data());
  fc.forward(xb, yb);
  Tensor<float> y({n, k});
  yb.unpack_to(y.data());

  Tensor<float> ref({n, k});
  naive_forward(x.data(), w_flat.data(), fc.bias().data(), ref.data(), n, c, k,
                Activation::kRelu);
  EXPECT_LE(max_abs_diff(y, ref), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FullyConnectedTest,
    ::testing::Values(FcShape{16, 16, 16}, FcShape{64, 128, 64},
                      FcShape{32, 13, 64}, FcShape{48, 100, 1},
                      FcShape{128, 256, 128}, FcShape{10, 5, 3}));

// Finite-difference gradient check on a small MLP: perturb every weight and
// input, compare numerical and analytical gradients of a scalar loss.
TEST(MlpGradientCheck, WeightsBiasAndInput) {
  const std::int64_t n = 4, c = 6, h = 5, o = 3;
  Rng rng(1234);
  Mlp mlp({c, h, o}, Activation::kRelu, Activation::kNone);
  mlp.init(rng);
  mlp.set_batch(n);

  Tensor<float> x({n, c});
  fill_uniform(x, rng, 1.0f);
  // Random linear loss L = sum(out * coeff) so dL/dout = coeff.
  Tensor<float> coeff({n, o});
  fill_uniform(coeff, rng, 1.0f);

  auto loss_of = [&]() {
    const Tensor<float>& out = mlp.forward(x);
    double l = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i) l += out[i] * coeff[i];
    return l;
  };

  // Analytical gradients.
  loss_of();
  const Tensor<float>& dx = mlp.backward(coeff);

  const double eps = 1e-3;
  // Check input gradient.
  for (std::int64_t i = 0; i < x.size(); i += 5) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(eps);
    const double lp = loss_of();
    x[i] = saved - static_cast<float>(eps);
    const double lm = loss_of();
    x[i] = saved;
    const double num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(num, dx[i], 5e-2) << "input " << i;
  }

  // Check weight gradients of each layer (sampled).
  loss_of();
  mlp.backward(coeff);
  for (std::size_t l = 0; l < mlp.layer_count(); ++l) {
    auto& layer = mlp.layer(l);
    float* wp = layer.weights().raw().data();
    const float* gp = layer.weight_grads().raw().data();
    const std::int64_t sz = layer.weights().raw().size();
    for (std::int64_t i = 0; i < sz; i += 7) {
      const float saved = wp[i];
      wp[i] = saved + static_cast<float>(eps);
      const double lp = loss_of();
      wp[i] = saved - static_cast<float>(eps);
      const double lm = loss_of();
      wp[i] = saved;
      const double num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(num, gp[i], 5e-2) << "layer " << l << " w " << i;
    }
    // Bias gradients.
    float* bp = layer.bias().data();
    const float* dbp = layer.bias_grads().data();
    for (std::int64_t i = 0; i < layer.bias().size(); ++i) {
      const float saved = bp[i];
      bp[i] = saved + static_cast<float>(eps);
      const double lp = loss_of();
      bp[i] = saved - static_cast<float>(eps);
      const double lm = loss_of();
      bp[i] = saved;
      const double num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(num, dbp[i], 5e-2) << "layer " << l << " b " << i;
    }
  }
}

TEST(MlpVsFlat, IdenticalResultsSameInit) {
  // The blocked implementation and the flat baseline must agree bit-tightly
  // (same arithmetic, different order → small tolerance).
  const std::int64_t n = 32;
  std::vector<std::int64_t> dims{24, 48, 16, 8};
  Rng rng1(77), rng2(77);

  Mlp mlp(dims, Activation::kRelu, Activation::kSigmoid);
  mlp.init(rng1);
  mlp.set_batch(n);
  MlpFlat flat(dims, Activation::kRelu, Activation::kSigmoid);
  flat.init(rng2);
  flat.set_batch(n);

  Tensor<float> x({n, dims.front()});
  Rng rngx(5);
  fill_uniform(x, rngx, 1.0f);

  const Tensor<float>& y1 = mlp.forward(x);
  const Tensor<float>& y2 = flat.forward(x);
  EXPECT_LE(max_abs_diff(y1, y2), 1e-4f);

  Tensor<float> dy({n, dims.back()});
  Rng rngg(6);
  fill_uniform(dy, rngg, 1.0f);
  const Tensor<float>& dx1 = mlp.backward(dy);
  const Tensor<float>& dx2 = flat.backward(dy);
  EXPECT_LE(max_abs_diff(dx1, dx2), 1e-4f);
}

TEST(Mlp, ParamCountMatchesEq1) {
  // Eq. 1 of the paper: sum over layers of f_in*f_out + f_out.
  Mlp mlp({512, 512, 64}, Activation::kRelu, Activation::kRelu);
  EXPECT_EQ(mlp.param_count(), 512 * 512 + 512 + 512 * 64 + 64);
}

TEST(Mlp, ParamSlotsCoverAllParams) {
  Mlp mlp({8, 16, 4}, Activation::kRelu, Activation::kNone);
  auto slots = mlp.param_slots();
  std::int64_t total = 0;
  for (const auto& s : slots) {
    EXPECT_NE(s.param, nullptr);
    EXPECT_NE(s.grad, nullptr);
    total += s.size;
  }
  EXPECT_EQ(total, mlp.param_count());
}

TEST(Mlp, BatchResizeWorks) {
  Rng rng(9);
  Mlp mlp({16, 32, 8}, Activation::kRelu, Activation::kNone);
  mlp.init(rng);
  for (std::int64_t n : {16, 64, 16, 32}) {
    mlp.set_batch(n);
    Tensor<float> x({n, 16});
    fill_uniform(x, rng, 1.0f);
    const Tensor<float>& y = mlp.forward(x);
    EXPECT_EQ(y.size(), n * 8);
  }
}

TEST(Mlp, SigmoidOutputInUnitInterval) {
  Rng rng(10);
  Mlp mlp({8, 8, 1}, Activation::kRelu, Activation::kSigmoid);
  mlp.init(rng);
  mlp.set_batch(16);
  Tensor<float> x({16, 8});
  fill_uniform(x, rng, 3.0f);
  const Tensor<float>& y = mlp.forward(x);
  for (std::int64_t i = 0; i < y.size(); ++i) {
    EXPECT_GT(y[i], 0.0f);
    EXPECT_LT(y[i], 1.0f);
  }
}

}  // namespace
}  // namespace dlrm
