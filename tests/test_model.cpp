// End-to-end tests of the single-process DLRM model: shape plumbing,
// gradient checks through the full net, learning on a planted signal, and
// equivalence across embedding update strategies.
#include "core/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/loss.hpp"

namespace dlrm {
namespace {

// A tiny config that exercises every component quickly.
DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 32;
  c.global_batch_strong = 64;
  c.local_batch_weak = 32;
  c.pooling = 3;
  c.dim = 16;
  c.table_rows = {200, 150, 300, 120};
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.interaction_pad = 32;
  c.validate();
  return c;
}

RandomDataset tiny_data(const DlrmConfig& c, std::uint64_t seed = 5) {
  return RandomDataset(c.bottom_mlp.front(), c.table_rows, c.pooling, seed);
}

TEST(DlrmModel, ForwardShapesAndFiniteness) {
  const DlrmConfig c = tiny_config();
  DlrmModel model(c, {}, 1);
  model.set_batch(32);
  RandomDataset data = tiny_data(c);
  MiniBatch mb;
  data.fill(0, 32, mb);
  const Tensor<float>& logits = model.forward(mb);
  EXPECT_EQ(logits.size(), 32);
  for (std::int64_t i = 0; i < 32; ++i) EXPECT_TRUE(std::isfinite(logits[i]));
}

TEST(DlrmModel, TrainStepReducesLossOnFixedBatch) {
  const DlrmConfig c = tiny_config();
  DlrmModel model(c, {}, 2);
  model.set_batch(32);
  RandomDataset data = tiny_data(c);
  MiniBatch mb;
  data.fill(0, 32, mb);

  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  const double first = model.train_step(mb, 0.05f, opt);
  double last = first;
  for (int i = 0; i < 30; ++i) last = model.train_step(mb, 0.05f, opt);
  EXPECT_LT(last, first * 0.7) << "model failed to overfit a fixed batch";
}

TEST(DlrmModel, GradientCheckThroughWholeNetwork) {
  const DlrmConfig c = tiny_config();
  DlrmModel model(c, {}, 3);
  const std::int64_t n = 8;
  model.set_batch(n);
  RandomDataset data = tiny_data(c);
  MiniBatch mb;
  data.fill(0, n, mb);

  auto loss_of = [&]() {
    const Tensor<float>& logits = model.forward(mb);
    return bce_with_logits(logits.data(), mb.labels.data(), n, nullptr);
  };

  // Analytical MLP gradients with lr=0 (no embedding mutation).
  const Tensor<float>& logits = model.forward(mb);
  Tensor<float> dlogits({n});
  bce_with_logits(logits.data(), mb.labels.data(), n, dlogits.data());
  model.backward(mb, dlogits, /*lr=*/0.0f);

  const double eps = 1e-2;
  for (auto& slot : model.mlp_param_slots()) {
    for (std::int64_t i = 0; i < slot.size; i += std::max<std::int64_t>(1, slot.size / 7)) {
      const float saved = slot.param[i];
      slot.param[i] = saved + static_cast<float>(eps);
      const double lp = loss_of();
      slot.param[i] = saved - static_cast<float>(eps);
      const double lm = loss_of();
      slot.param[i] = saved;
      const double num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(num, slot.grad[i], 2e-3) << "param elem " << i;
    }
  }
}

TEST(DlrmModel, EmbeddingGradientFlowsToTables) {
  // Training with lr > 0 must move looked-up embedding rows.
  const DlrmConfig c = tiny_config();
  DlrmModel model(c, {}, 4);
  model.set_batch(16);
  RandomDataset data = tiny_data(c);
  MiniBatch mb;
  data.fill(0, 16, mb);

  std::vector<float> before(static_cast<std::size_t>(c.dim));
  std::vector<float> after(static_cast<std::size_t>(c.dim));
  const std::int64_t probe_row = mb.bags[0].indices[0];
  model.table(0).read_row(probe_row, before.data());

  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  model.train_step(mb, 0.1f, opt);
  model.table(0).read_row(probe_row, after.data());

  float moved = 0.0f;
  for (std::int64_t e = 0; e < c.dim; ++e) {
    moved += std::fabs(after[static_cast<std::size_t>(e)] - before[static_cast<std::size_t>(e)]);
  }
  EXPECT_GT(moved, 0.0f);
}

TEST(DlrmModel, UpdateStrategiesAgree) {
  // One training step under each strategy produces (nearly) the same model.
  const DlrmConfig c = tiny_config();
  RandomDataset data = tiny_data(c);
  MiniBatch mb;
  data.fill(0, 32, mb);

  auto logits_after_step = [&](UpdateStrategy strategy, bool fused) {
    ModelOptions mo;
    mo.update_strategy = strategy;
    mo.fused_embedding_update = fused;
    DlrmModel model(c, mo, 7);
    model.set_batch(32);
    SgdFp32 opt;
    opt.attach(model.mlp_param_slots());
    model.train_step(mb, 0.05f, opt);
    return model.forward(mb).clone();
  };

  const Tensor<float> ref = logits_after_step(UpdateStrategy::kReference, false);
  for (UpdateStrategy s : {UpdateStrategy::kAtomicXchg, UpdateStrategy::kRtm,
                           UpdateStrategy::kRaceFree}) {
    for (bool fused : {false, true}) {
      const Tensor<float> got = logits_after_step(s, fused);
      EXPECT_LE(max_abs_diff(ref, got), 1e-3f)
          << to_string(s) << " fused=" << fused;
    }
  }
}

TEST(DlrmModel, SplitPrecisionTracksFp32) {
  const DlrmConfig c = tiny_config();
  RandomDataset data = tiny_data(c);
  MiniBatch mb;
  data.fill(0, 32, mb);

  ModelOptions fp32_opts;
  DlrmModel fp32_model(c, fp32_opts, 8);
  ModelOptions split_opts;
  split_opts.embed_precision = EmbedPrecision::kBf16Split;
  DlrmModel split_model(c, split_opts, 8);
  fp32_model.set_batch(32);
  split_model.set_batch(32);

  SgdFp32 o1, o2;
  o1.attach(fp32_model.mlp_param_slots());
  o2.attach(split_model.mlp_param_slots());
  double l1 = 0, l2 = 0;
  for (int i = 0; i < 5; ++i) {
    data.fill(i * 32, 32, mb);
    l1 = fp32_model.train_step(mb, 0.05f, o1);
    l2 = split_model.train_step(mb, 0.05f, o2);
  }
  // bf16 model weights round the forward, but the trajectories must stay
  // close (the Fig. 16 claim: same convergence to ~1e-3).
  EXPECT_NEAR(l1, l2, 0.05);
}

TEST(DlrmModel, ModelBytesAccounting) {
  const DlrmConfig c = tiny_config();
  DlrmModel model(c, {}, 9);
  std::int64_t table_elems = 0;
  for (auto m : c.table_rows) table_elems += m * c.dim;
  EXPECT_GE(model.model_bytes(), table_elems * 4);
}

TEST(DlrmModel, ProfilerSeesAllPhases) {
  const DlrmConfig c = tiny_config();
  DlrmModel model(c, {}, 10);
  model.set_batch(32);
  RandomDataset data = tiny_data(c);
  MiniBatch mb;
  data.fill(0, 32, mb);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  Profiler prof;
  model.train_step(mb, 0.05f, opt, &prof);
  for (const char* key : {"emb_fwd", "bottom_mlp_fwd", "interaction_fwd",
                          "top_mlp_fwd", "loss", "top_mlp_bwd",
                          "interaction_bwd", "bottom_mlp_bwd", "emb_bwd_upd",
                          "opt_step"}) {
    EXPECT_EQ(prof.count(key), 1) << key;
  }
}

}  // namespace
}  // namespace dlrm
