// Tests for EmbeddingBag forward/backward and the four update strategies
// (Algorithms 1–4) across storage precisions.
#include "kernels/embedding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"

namespace dlrm {
namespace {

// Builds a random bag batch: n bags with `pooling` lookups each, indices
// drawn Zipf(s) (s=0 → uniform) over `rows`.
BagBatch make_bags(std::int64_t n, std::int64_t pooling, std::int64_t rows,
                   double skew, std::uint64_t seed) {
  BagBatch bags;
  bags.indices.reshape({n * pooling});
  bags.offsets.reshape({n + 1});
  Rng rng(seed);
  ZipfSampler zipf(rows, skew);
  for (std::int64_t i = 0; i < n * pooling; ++i) bags.indices[i] = zipf(rng);
  for (std::int64_t i = 0; i <= n; ++i) bags.offsets[i] = i * pooling;
  return bags;
}

// Serial ground-truth update: W[I[s]] -= lr * dL[s].
void serial_update(Tensor<float>& w, const Tensor<float>& dlookup,
                   const BagBatch& bags, float lr, std::int64_t dim) {
  for (std::int64_t s = 0; s < bags.lookups(); ++s) {
    const std::int64_t row = bags.indices[s];
    for (std::int64_t e = 0; e < dim; ++e) {
      w[row * dim + e] -= lr * dlookup[s * dim + e];
    }
  }
}

TEST(EmbeddingForward, MatchesNaive) {
  const std::int64_t rows = 100, dim = 16, n = 12, pooling = 4;
  Rng rng(1);
  EmbeddingTable table(rows, dim);
  table.init(rng, 0.5f);
  BagBatch bags = make_bags(n, pooling, rows, 0.0, 2);
  bags.validate(rows);

  Tensor<float> out({n, dim});
  table.forward(bags, out.data());

  for (std::int64_t b = 0; b < n; ++b) {
    std::vector<float> expect(static_cast<std::size_t>(dim), 0.0f);
    std::vector<float> row(static_cast<std::size_t>(dim));
    for (std::int64_t s = bags.offsets[b]; s < bags.offsets[b + 1]; ++s) {
      table.read_row(bags.indices[s], row.data());
      for (std::int64_t e = 0; e < dim; ++e) expect[static_cast<std::size_t>(e)] += row[static_cast<std::size_t>(e)];
    }
    for (std::int64_t e = 0; e < dim; ++e) {
      ASSERT_NEAR(out[b * dim + e], expect[static_cast<std::size_t>(e)], 1e-5f);
    }
  }
}

TEST(EmbeddingForward, EmptyBagYieldsZero) {
  EmbeddingTable table(10, 8);
  Rng rng(3);
  table.init(rng, 1.0f);
  BagBatch bags;
  bags.indices.reshape({2});
  bags.indices[0] = 1;
  bags.indices[1] = 2;
  bags.offsets.reshape({4});
  bags.offsets[0] = 0;
  bags.offsets[1] = 2;
  bags.offsets[2] = 2;  // bag 1 empty
  bags.offsets[3] = 2;  // bag 2 empty
  Tensor<float> out({3, 8});
  out.fill(9.0f);
  table.forward(bags, out.data());
  for (std::int64_t e = 0; e < 8; ++e) {
    EXPECT_EQ(out[1 * 8 + e], 0.0f);
    EXPECT_EQ(out[2 * 8 + e], 0.0f);
  }
}

TEST(EmbeddingBackward, ExpandsGradientsPerLookup) {
  const std::int64_t rows = 50, dim = 8, n = 6, pooling = 3;
  EmbeddingTable table(rows, dim);
  BagBatch bags = make_bags(n, pooling, rows, 0.0, 5);
  Tensor<float> dy({n, dim});
  Rng rng(6);
  fill_uniform(dy, rng, 1.0f);

  Tensor<float> dlookup;
  table.backward(dy.data(), bags, dlookup);
  ASSERT_EQ(dlookup.size(), n * pooling * dim);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t s = bags.offsets[b]; s < bags.offsets[b + 1]; ++s) {
      for (std::int64_t e = 0; e < dim; ++e) {
        ASSERT_EQ(dlookup[s * dim + e], dy[b * dim + e]);
      }
    }
  }
}

// Parameterized over (strategy, skew): every parallel strategy must agree
// with the serial ground truth. High skew (hot rows) exercises contention.
using StratCase = std::tuple<UpdateStrategy, double>;

class UpdateStrategyTest : public ::testing::TestWithParam<StratCase> {};

TEST_P(UpdateStrategyTest, MatchesSerialGroundTruth) {
  const auto [strategy, skew] = GetParam();
  const std::int64_t rows = 200, dim = 32, n = 64, pooling = 8;
  const float lr = 0.05f;

  Rng rng(11);
  EmbeddingTable table(rows, dim);
  table.init(rng, 1.0f);

  // Snapshot initial weights for the ground truth.
  Tensor<float> w0({rows, dim});
  for (std::int64_t r = 0; r < rows; ++r) table.read_row(r, w0.data() + r * dim);

  BagBatch bags = make_bags(n, pooling, rows, skew, 12);
  Tensor<float> dy({n, dim});
  fill_uniform(dy, rng, 1.0f);
  Tensor<float> dlookup;
  table.backward(dy.data(), bags, dlookup);

  table.apply_update(dlookup, bags, lr, strategy);

  Tensor<float> expect = w0.clone();
  serial_update(expect, dlookup, bags, lr, dim);

  Tensor<float> got({rows, dim});
  for (std::int64_t r = 0; r < rows; ++r) table.read_row(r, got.data() + r * dim);
  // Atomic/RTM reorder float additions → tolerance; RaceFree/Reference are
  // deterministic but share the tolerance for simplicity.
  EXPECT_LE(max_abs_diff(got, expect), 1e-4f);
}

TEST_P(UpdateStrategyTest, FusedMatchesUnfused) {
  const auto [strategy, skew] = GetParam();
  const std::int64_t rows = 150, dim = 16, n = 48, pooling = 5;
  const float lr = 0.1f;

  Rng rng(21);
  EmbeddingTable a(rows, dim), b(rows, dim);
  a.init(rng, 1.0f);
  // Copy a into b.
  std::vector<float> row(static_cast<std::size_t>(dim));
  for (std::int64_t r = 0; r < rows; ++r) {
    a.read_row(r, row.data());
    b.write_row(r, row.data());
  }

  BagBatch bags = make_bags(n, pooling, rows, skew, 22);
  Tensor<float> dy({n, dim});
  fill_uniform(dy, rng, 1.0f);

  Tensor<float> dlookup;
  a.backward(dy.data(), bags, dlookup);
  a.apply_update(dlookup, bags, lr, strategy);
  b.fused_backward_update(dy.data(), bags, lr, strategy);

  Tensor<float> wa({rows, dim}), wb({rows, dim});
  for (std::int64_t r = 0; r < rows; ++r) {
    a.read_row(r, wa.data() + r * dim);
    b.read_row(r, wb.data() + r * dim);
  }
  EXPECT_LE(max_abs_diff(wa, wb), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSkews, UpdateStrategyTest,
    ::testing::Combine(
        ::testing::Values(UpdateStrategy::kReference,
                          UpdateStrategy::kAtomicXchg, UpdateStrategy::kRtm,
                          UpdateStrategy::kRaceFree),
        ::testing::Values(0.0, 1.2)),
    [](const ::testing::TestParamInfo<StratCase>& tpi) {
      return std::string(to_string(std::get<0>(tpi.param))) +
             (std::get<1>(tpi.param) > 0 ? "_zipf" : "_uniform");
    });

TEST(RaceFreeDeterminism, SameResultAcrossRuns) {
  // The race-free strategy must be bitwise deterministic run to run.
  const std::int64_t rows = 300, dim = 8, n = 128, pooling = 10;
  BagBatch bags = make_bags(n, pooling, rows, 1.0, 31);
  Tensor<float> dy({n, dim});
  Rng rng(32);
  fill_uniform(dy, rng, 1.0f);

  auto run_once = [&]() {
    Rng init(33);
    EmbeddingTable t(rows, dim);
    t.init(init, 1.0f);
    t.fused_backward_update(dy.data(), bags, 0.01f, UpdateStrategy::kRaceFree);
    Tensor<float> w({rows, dim});
    for (std::int64_t r = 0; r < rows; ++r) t.read_row(r, w.data() + r * dim);
    return w;
  };
  Tensor<float> w1 = run_once();
  Tensor<float> w2 = run_once();
  EXPECT_EQ(max_abs_diff(w1, w2), 0.0f);
}

TEST(SplitPrecision, MasterSequenceBitExactVsFp32) {
  // Split-SGD with race-free updates must track fp32 SGD bit-for-bit: the
  // (hi,lo) pair *is* the fp32 master weight.
  const std::int64_t rows = 64, dim = 8, n = 32, pooling = 4;
  const float lr = 0.02f;

  Rng rng(41);
  EmbeddingTable fp32(rows, dim, EmbedPrecision::kFp32);
  EmbeddingTable split(rows, dim, EmbedPrecision::kBf16Split);
  Rng i1(42), i2(42);
  fp32.init(i1, 1.0f);
  split.init(i2, 1.0f);

  for (int iter = 0; iter < 10; ++iter) {
    BagBatch bags = make_bags(n, pooling, rows, 0.8, 100 + static_cast<std::uint64_t>(iter));
    Tensor<float> dy({n, dim});
    fill_uniform(dy, rng, 1.0f);
    fp32.fused_backward_update(dy.data(), bags, lr, UpdateStrategy::kRaceFree);
    split.fused_backward_update(dy.data(), bags, lr, UpdateStrategy::kRaceFree);
  }

  // Compare: split's bf16 view must equal the bf16 truncation of fp32's
  // weights — i.e. the hidden master matches exactly.
  std::vector<float> rf(static_cast<std::size_t>(dim)), rs(static_cast<std::size_t>(dim));
  for (std::int64_t r = 0; r < rows; ++r) {
    fp32.read_row(r, rf.data());
    split.read_row(r, rs.data());
    for (std::int64_t e = 0; e < dim; ++e) {
      EXPECT_EQ(bf16_to_f32(f32_to_bf16_trunc(rf[static_cast<std::size_t>(e)])),
                rs[static_cast<std::size_t>(e)])
          << "row " << r << " e " << e;
    }
  }
}

TEST(SplitPrecision, Split8LosesAccuracy) {
  // With only 8 low bits the hidden master cannot track fp32 exactly.
  const std::int64_t rows = 32, dim = 4, n = 16, pooling = 4;
  const float lr = 0.003f;
  Rng rng(51);
  EmbeddingTable fp32(rows, dim, EmbedPrecision::kFp32);
  EmbeddingTable s8(rows, dim, EmbedPrecision::kBf16Split8);
  Rng i1(52), i2(52);
  fp32.init(i1, 1.0f);
  s8.init(i2, 1.0f);

  double drift = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    BagBatch bags = make_bags(n, pooling, rows, 0.0, 200 + static_cast<std::uint64_t>(iter));
    Tensor<float> dy({n, dim});
    fill_uniform(dy, rng, 0.1f);
    fp32.fused_backward_update(dy.data(), bags, lr, UpdateStrategy::kRaceFree);
    s8.fused_backward_update(dy.data(), bags, lr, UpdateStrategy::kRaceFree);
  }
  std::vector<float> rf(static_cast<std::size_t>(dim)), rs(static_cast<std::size_t>(dim));
  for (std::int64_t r = 0; r < rows; ++r) {
    fp32.read_row(r, rf.data());
    s8.read_row(r, rs.data());
    for (std::int64_t e = 0; e < dim; ++e) {
      drift += std::fabs(rf[static_cast<std::size_t>(e)] - rs[static_cast<std::size_t>(e)]);
    }
  }
  EXPECT_GT(drift, 0.0);  // some drift must appear with truncated state
}

TEST(Fp16Stochastic, UpdatesStayOnF16GridAndTrackTrend) {
  const std::int64_t rows = 16, dim = 4;
  EmbeddingTable t(rows, dim, EmbedPrecision::kFp16Stochastic);
  Rng rng(61);
  t.init(rng, 1.0f);

  BagBatch bags;
  bags.indices.reshape({1});
  bags.indices[0] = 3;
  bags.offsets.reshape({2});
  bags.offsets[0] = 0;
  bags.offsets[1] = 1;

  std::vector<float> before(static_cast<std::size_t>(dim)), after(static_cast<std::size_t>(dim));
  t.read_row(3, before.data());
  Tensor<float> dy({1, dim});
  dy.fill(1.0f);
  for (int i = 0; i < 100; ++i) {
    t.fused_backward_update(dy.data(), bags, 0.01f, UpdateStrategy::kRaceFree);
  }
  t.read_row(3, after.data());
  for (std::int64_t e = 0; e < dim; ++e) {
    // Moved in the right direction by roughly 100 * 0.01 = 1.0.
    EXPECT_NEAR(before[static_cast<std::size_t>(e)] - after[static_cast<std::size_t>(e)], 1.0f, 0.2f);
    // Still on the fp16 grid.
    const float v = after[static_cast<std::size_t>(e)];
    EXPECT_EQ(v, f16_to_f32(f32_to_f16_rne(v)));
  }
}

TEST(Storage, ByteAccounting) {
  const std::int64_t rows = 1000, dim = 64;
  EmbeddingTable fp32(rows, dim, EmbedPrecision::kFp32);
  EmbeddingTable split(rows, dim, EmbedPrecision::kBf16Split);
  EmbeddingTable split8(rows, dim, EmbedPrecision::kBf16Split8);
  EmbeddingTable f16(rows, dim, EmbedPrecision::kFp16Stochastic);
  const std::int64_t elems = rows * dim;
  EXPECT_EQ(fp32.storage_bytes(), elems * 4);
  EXPECT_EQ(split.storage_bytes(), elems * 4);  // no overhead vs fp32!
  EXPECT_EQ(split8.storage_bytes(), elems * 3);
  EXPECT_EQ(f16.storage_bytes(), elems * 2);
  // Model (fwd/bwd) traffic: 2x reduction for 16-bit weights.
  EXPECT_EQ(fp32.model_bytes(), elems * 4);
  EXPECT_EQ(split.model_bytes(), elems * 2);
}

TEST(BagBatch, ValidateCatchesCorruption) {
  BagBatch bags = make_bags(4, 2, 10, 0.0, 71);
  EXPECT_NO_THROW(bags.validate(10));
  bags.indices[0] = 99;
  EXPECT_THROW(bags.validate(10), CheckError);
  bags = make_bags(4, 2, 10, 0.0, 72);
  bags.offsets[2] = 100;
  EXPECT_THROW(bags.validate(10), CheckError);
}

TEST(AtomicAddFloat, ConcurrentSumsExactCount) {
  float value = 0.0f;
  ThreadPool pool(8);
  pool.parallel_for(0, 100000, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) atomic_add_float(&value, 1.0f);
  });
  EXPECT_EQ(value, 100000.0f);  // integers up to 2^24 are exact in fp32
}

}  // namespace
}  // namespace dlrm
