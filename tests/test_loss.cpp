// Tests for BCE-with-logits loss.
#include "kernels/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {
namespace {

TEST(BceLoss, KnownValues) {
  // x = 0 → loss = log(2) regardless of label.
  const float x0 = 0.0f, y1 = 1.0f;
  float dl = 0.0f;
  EXPECT_NEAR(bce_with_logits(&x0, &y1, 1, &dl), std::log(2.0), 1e-6);
  EXPECT_NEAR(dl, 0.5f - 1.0f, 1e-6f);

  // Confident correct prediction → tiny loss.
  const float xc = 10.0f;
  EXPECT_LT(bce_with_logits(&xc, &y1, 1, nullptr), 1e-4);
  // Confident wrong prediction → ~|x| loss.
  const float y0 = 0.0f;
  EXPECT_NEAR(bce_with_logits(&xc, &y0, 1, nullptr), 10.0, 1e-3);
}

TEST(BceLoss, StableForExtremeLogits) {
  const float big = 500.0f, y = 1.0f;
  float dl;
  const double l = bce_with_logits(&big, &y, 1, &dl);
  EXPECT_TRUE(std::isfinite(l));
  const float nbig = -500.0f;
  const double l2 = bce_with_logits(&nbig, &y, 1, &dl);
  EXPECT_TRUE(std::isfinite(l2));
  EXPECT_NEAR(l2, 500.0, 1e-3);
}

TEST(BceLoss, GradientMatchesFiniteDifference) {
  Rng rng(5);
  const std::int64_t n = 16;
  Tensor<float> x({n}), y({n}), dx({n});
  for (std::int64_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-3.0f, 3.0f);
    y[i] = rng.next_float() < 0.5f ? 0.0f : 1.0f;
  }
  bce_with_logits(x.data(), y.data(), n, dx.data());
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < n; ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(eps);
    const double lp = bce_with_logits(x.data(), y.data(), n, nullptr);
    x[i] = saved - static_cast<float>(eps);
    const double lm = bce_with_logits(x.data(), y.data(), n, nullptr);
    x[i] = saved;
    EXPECT_NEAR((lp - lm) / (2 * eps), dx[i], 1e-4);
  }
}

TEST(BceLoss, MeanSemantics) {
  // Doubling the batch with identical samples keeps the loss, halves grads.
  const float x = 1.3f, y = 1.0f;
  float d1;
  const double l1 = bce_with_logits(&x, &y, 1, &d1);
  float xs[2] = {x, x}, ys[2] = {y, y}, ds[2];
  const double l2 = bce_with_logits(xs, ys, 2, ds);
  EXPECT_NEAR(l1, l2, 1e-7);
  EXPECT_NEAR(ds[0], d1 / 2, 1e-7);
}

TEST(BceLoss, EmptyBatchThrows) {
  const float x = 0.0f, y = 0.0f;
  EXPECT_THROW(bce_with_logits(&x, &y, 0, nullptr), CheckError);
}

}  // namespace
}  // namespace dlrm
