// Tier-1 tests for background (double-buffered) checkpointing: async saves
// must be byte-identical to synchronous ones at the same step (single and
// multi-rank), back-to-back saves back-pressure instead of dropping
// snapshots, keep_last retention keeps older steps restorable through their
// step-addressed manifests, torn files left by a killed background save are
// swept on resume, and a resume from an async snapshot reproduces the
// uninterrupted run bit-for-bit.
#include "ckpt/async.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/dist_trainer.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"

namespace dlrm {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dlrm_async_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file: " << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in), {});
}

void expect_same_bytes(const std::string& a, const std::string& b) {
  EXPECT_TRUE(read_file(a) == read_file(b))
      << "files differ: " << a << " vs " << b;
}

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "async-tiny";
  c.minibatch = 32;
  c.global_batch_strong = 32;
  c.local_batch_weak = 8;
  c.pooling = 2;
  c.dim = 8;
  c.table_rows = {120, 90, 60, 150};
  c.bottom_mlp = {6, 16, 8};
  c.top_mlp = {16, 8, 1};
  c.validate();
  return c;
}

// ---------------------------------------------------------------------------
// Byte identity: the async path must produce the exact bytes of a sync save
// ---------------------------------------------------------------------------

TEST(AsyncCkpt, SyncAsyncByteIdenticalSingleRank) {
  for (const bool bf16 : {false, true}) {
    SCOPED_TRACE(bf16 ? "bf16" : "fp32");
    DlrmConfig c = tiny_config();
    if (bf16) c.mlp_precision = Precision::kBf16;
    ModelOptions mo;
    if (bf16) mo.embed_precision = EmbedPrecision::kBf16Split;
    RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 5);
    DlrmModel model(c, mo, 42);
    Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
    trainer.train(3);

    const std::string sync_dir = test_dir(bf16 ? "sync_b" : "sync_f");
    const std::string async_dir = test_dir(bf16 ? "async_b" : "async_f");
    trainer.save_checkpoint(sync_dir);

    CheckpointOptions opts;
    opts.async = true;
    trainer.set_checkpointing(async_dir, opts);
    trainer.checkpoint_at_eval();
    trainer.finish_checkpoints();

    expect_same_bytes(ckpt::manifest_path(sync_dir),
                      ckpt::manifest_path(async_dir));
    expect_same_bytes(ckpt::rank_file_path(sync_dir, 0, 3),
                      ckpt::rank_file_path(async_dir, 0, 3));
  }
}

TEST(AsyncCkpt, SyncAsyncByteIdenticalTwoRanks) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 5);
  const std::string sync_dir = test_dir("sync_r2");
  const std::string async_dir = test_dir("async_r2");

  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = c.minibatch;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    trainer.train(2);
    trainer.save_checkpoint(sync_dir);

    CheckpointOptions copts;
    copts.async = true;
    trainer.set_checkpointing(async_dir, copts);
    trainer.checkpoint_at_eval();
    trainer.finish_checkpoints();
    // finish_checkpoints returning on every rank implies the commit group
    // fully drained; barrier so rank 0 compares after all files landed.
    comm.barrier();
    if (comm.rank() == 0) {
      expect_same_bytes(ckpt::manifest_path(sync_dir),
                        ckpt::manifest_path(async_dir));
      expect_same_bytes(ckpt::rank_file_path(sync_dir, 0, 2),
                        ckpt::rank_file_path(async_dir, 0, 2));
      expect_same_bytes(ckpt::rank_file_path(sync_dir, 1, 2),
                        ckpt::rank_file_path(async_dir, 1, 2));
    }
    comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Back-pressure and rotation
// ---------------------------------------------------------------------------

// Saves every step with no waiting in between: the depth-1 staging queue
// back-pressures the second save until the first commit lands, so no
// snapshot is dropped and the final committed step is the last one.
TEST(AsyncCkpt, BackToBackSavesBackpressure) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 5);
  DlrmModel model(c, {}, 42);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
  const std::string dir = test_dir("backpressure");
  CheckpointOptions opts;
  opts.save_every = 1;
  opts.async = true;
  trainer.set_checkpointing(dir, opts);
  trainer.train(4);
  trainer.finish_checkpoints();

  ckpt::CheckpointReader reader(dir);
  EXPECT_EQ(reader.step(), 4);

  DlrmModel model2(c, {}, 43);
  Trainer t2(model2, data, {.lr = 0.05f, .batch = c.minibatch});
  EXPECT_TRUE(t2.resume_from(dir));
  EXPECT_EQ(t2.iterations_done(), 4);
}

TEST(AsyncCkpt, KeepLastRotationAndStepAddressedRestore) {
  for (const bool async : {false, true}) {
    SCOPED_TRACE(async ? "async" : "sync");
    const DlrmConfig c = tiny_config();
    RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 5);
    DlrmModel model(c, {}, 42);
    Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
    const std::string dir = test_dir(async ? "keep_a" : "keep_s");
    CheckpointOptions opts;
    opts.save_every = 1;
    opts.async = async;
    opts.keep_last = 2;
    trainer.set_checkpointing(dir, opts);
    trainer.train(3);
    trainer.finish_checkpoints();

    // Retention window of 2: steps 2 and 3 kept, step 1 pruned.
    EXPECT_FALSE(fs::exists(ckpt::step_manifest_path(dir, 1)));
    EXPECT_FALSE(fs::exists(ckpt::rank_file_path(dir, 0, 1)));
    EXPECT_TRUE(fs::exists(ckpt::step_manifest_path(dir, 2)));
    EXPECT_TRUE(fs::exists(ckpt::step_manifest_path(dir, 3)));
    EXPECT_TRUE(fs::exists(ckpt::rank_file_path(dir, 0, 2)));
    EXPECT_TRUE(fs::exists(ckpt::rank_file_path(dir, 0, 3)));

    // The commit manifest points at the newest step; the older retained
    // step stays restorable through its step-addressed manifest.
    EXPECT_EQ(ckpt::CheckpointReader(dir).step(), 3);
    ckpt::CheckpointReader older(dir, 2);
    EXPECT_EQ(older.step(), 2);
    DlrmModel m2(c, {}, 7);
    older.load_dense(m2.bottom_mlp(), m2.top_mlp());  // structurally sound
  }
}

// ---------------------------------------------------------------------------
// Torn-file GC
// ---------------------------------------------------------------------------

TEST(AsyncCkpt, TornFileGcSweepsUncommittedDebris) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 5);
  DlrmModel model(c, {}, 42);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
  trainer.train(2);
  const std::string dir = test_dir("torn");
  trainer.save_checkpoint(dir);

  // Debris a kill mid-background-save would leave: a FileWriter staging
  // file and step-suffixed files beyond the committed manifest.
  const auto junk = [&](const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    out << "torn";
  };
  junk(dir + "/stale.dlrmckpt.tmp");
  junk(ckpt::rank_file_path(dir, 0, 99));
  junk(ckpt::step_manifest_path(dir, 99));

  EXPECT_EQ(ckpt::gc_torn_files(dir, 2), 3);
  EXPECT_FALSE(fs::exists(dir + "/stale.dlrmckpt.tmp"));
  EXPECT_FALSE(fs::exists(ckpt::rank_file_path(dir, 0, 99)));
  EXPECT_FALSE(fs::exists(ckpt::step_manifest_path(dir, 99)));
  // The committed snapshot survives and restores.
  EXPECT_TRUE(fs::exists(ckpt::manifest_path(dir)));
  EXPECT_TRUE(fs::exists(ckpt::rank_file_path(dir, 0, 2)));

  // resume_from sweeps the same debris automatically.
  junk(ckpt::rank_file_path(dir, 0, 98));
  DlrmModel model2(c, {}, 43);
  Trainer t2(model2, data, {.lr = 0.05f, .batch = c.minibatch});
  EXPECT_TRUE(t2.resume_from(dir));
  EXPECT_EQ(t2.iterations_done(), 2);
  EXPECT_FALSE(fs::exists(ckpt::rank_file_path(dir, 0, 98)));
}

// ---------------------------------------------------------------------------
// Resume parity through the async path
// ---------------------------------------------------------------------------

TEST(AsyncCkpt, AsyncSnapshotResumesBitExact) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 5);

  // Reference: 6 uninterrupted steps.
  std::vector<double> straight;
  {
    DlrmModel model(c, {}, 42);
    Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
    for (int i = 0; i < 6; ++i) straight.push_back(trainer.train(1));
  }

  const std::string dir = test_dir("resume");
  {
    DlrmModel model(c, {}, 42);
    Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
    CheckpointOptions opts;
    opts.save_every = 3;
    opts.async = true;
    trainer.set_checkpointing(dir, opts);
    trainer.train(3);
    trainer.finish_checkpoints();
  }
  {
    DlrmModel model(c, {}, 99);  // different init: state must come from disk
    Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
    ASSERT_TRUE(trainer.resume_from(dir));
    ASSERT_EQ(trainer.iterations_done(), 3);
    for (int i = 3; i < 6; ++i) {
      const double loss = trainer.train(1);
      EXPECT_EQ(loss, straight[static_cast<std::size_t>(i)])
          << "step " << i + 1;
    }
  }
}

}  // namespace
}  // namespace dlrm
