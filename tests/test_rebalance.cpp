// Live shard re-balancing + distributed hot-row cache tests.
//
// The two tentpole invariants:
//   * The cache tier is bit-invisible at the training-loop level: per-step
//     GLOBAL losses with the cache on equal the cache-off run exactly, for
//     every rank count, precision and admission policy.
//   * A migration loses no training state: re-balancing mid-run onto plan P
//     produces the same per-step losses and the same final embedding bytes
//     as an uninterrupted run that used P from step 0 (full-table plans are
//     placement-invariant), and a reshard onto ANY plan — row splits
//     included — moves every row's storage bytes verbatim.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/dist_trainer.hpp"
#include "core/model.hpp"

namespace dlrm {
namespace {

namespace fs = std::filesystem;

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "rebalance-tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};  // S = 6
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

// Worst legal placement (the exchange requires every rank to own at least
// one shard): rank 1 gets only the last table, rank 0 everything else. With
// 6 equal-traffic tables the rank-0/rank-1 embedding-time split is ~5:1, a
// windowed max/mean ratio of ~5/3 — far above any sensible threshold, and
// guaranteed to differ from a balanced recomputation.
ShardingPlan skewed_plan(const DlrmConfig& c, int ranks) {
  std::vector<Shard> shards;
  for (std::int64_t t = 0; t < c.tables(); ++t) {
    Shard s;
    s.table = t;
    s.row_begin = 0;
    s.row_end = c.table_rows[static_cast<std::size_t>(t)];
    s.rank = t == c.tables() - 1 ? ranks - 1 : 0;
    shards.push_back(s);
  }
  return ShardingPlan::custom(c.tables(), ranks, std::move(shards),
                              ShardingPolicy::kRoundRobin);
}

// Per-step global losses of one distributed run (rank 0's view; identical
// on every rank by construction).
std::vector<double> run_losses(const DlrmConfig& c, const Dataset& data,
                               int R, int iters,
                               const DistributedTrainerOptions& base) {
  std::vector<double> losses(static_cast<std::size_t>(iters), 0.0);
  run_ranks(R, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), base);
    for (int i = 0; i < iters; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) losses[static_cast<std::size_t>(i)] = loss;
    }
  });
  return losses;
}

using CacheParityCase =
    std::tuple<int, EmbedPrecision, EmbCachePolicy>;  // R, precision, policy

class CacheLossParityTest : public ::testing::TestWithParam<CacheParityCase> {
};

TEST_P(CacheLossParityTest, LossesBitIdenticalCacheOnVsOff) {
  const auto [R, prec, policy] = GetParam();
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const int iters = 5;

  DistributedTrainerOptions off;
  off.lr = 0.05f;
  off.global_batch = 64;
  off.dist.embed_precision = prec;

  DistributedTrainerOptions on = off;
  on.dist.emb_cache.capacity = 24;
  on.dist.emb_cache.policy = policy;
  on.dist.emb_cache.refresh_every = 2;

  const std::vector<double> ref = run_losses(c, data, R, iters, off);
  const std::vector<double> got = run_losses(c, data, R, iters, on);
  for (int i = 0; i < iters; ++i) {
    EXPECT_EQ(ref[static_cast<std::size_t>(i)],
              got[static_cast<std::size_t>(i)])
        << "iteration " << i;
  }
}

std::string cache_case_name(
    const ::testing::TestParamInfo<CacheParityCase>& info) {
  std::string s = "R" + std::to_string(std::get<0>(info.param));
  s += std::get<1>(info.param) == EmbedPrecision::kFp32 ? "_fp32"
                                                        : "_bf16split";
  s += std::get<2>(info.param) == EmbCachePolicy::kHist ? "_hist" : "_counter";
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheLossParityTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(EmbedPrecision::kFp32,
                                         EmbedPrecision::kBf16Split),
                       ::testing::Values(EmbCachePolicy::kHist,
                                         EmbCachePolicy::kCounter)),
    cache_case_name);

// Bytes of every logical table, assembled from each rank's shard exports
// (one buffer per table, shards written at row_begin * row_bytes).
class TableBytes {
 public:
  void init(const DlrmConfig& c, std::int64_t row_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!tables_.empty()) return;
    for (std::int64_t t = 0; t < c.tables(); ++t) {
      tables_.emplace_back(
          static_cast<std::size_t>(c.table_rows[static_cast<std::size_t>(t)] *
                                   row_bytes),
          0);
    }
    row_bytes_ = row_bytes;
  }

  void add_shards(DistributedDlrm& model) {
    const std::vector<Shard> shards = model.owned_shards();
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const Shard& s = shards[k];
      EmbeddingTable& table = model.owned_table(static_cast<std::int64_t>(k));
      std::vector<unsigned char> bytes(
          static_cast<std::size_t>(s.rows() * row_bytes_));
      table.export_rows(0, s.rows(), bytes.data());
      std::lock_guard<std::mutex> lock(mu_);
      std::memcpy(tables_[static_cast<std::size_t>(s.table)].data() +
                      s.row_begin * row_bytes_,
                  bytes.data(), bytes.size());
    }
  }

  const std::vector<std::vector<unsigned char>>& tables() const {
    return tables_;
  }

 private:
  std::mutex mu_;
  std::int64_t row_bytes_ = 0;
  std::vector<std::vector<unsigned char>> tables_;
};

// Migration parity: start on the WORST plan, train N steps, force a
// re-balance (recomputed from runtime stats), train M more — every loss and
// the final embedding bytes must equal an uninterrupted run that used the
// migrated plan from step 0. Full-table plans are placement-invariant, so
// "same math, different owners" is exactly what a lossless migration gives.
TEST(Rebalance, MigrationPreservesLossSequenceAndState) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const int R = 2, N = 4, M = 4;

  DistributedTrainerOptions opts;
  opts.lr = 0.05f;
  opts.global_batch = 64;
  opts.dist.emb_cache.capacity = 16;  // migration must carry cached rows too
  opts.dist.emb_cache.policy = EmbCachePolicy::kCounter;
  opts.dist.emb_cache.refresh_every = 2;
  opts.initial_plan = skewed_plan(c, R);
  // Enable runtime stats without ever auto-triggering: the test decides
  // when to migrate.
  opts.rebalance.threshold = 1e9;
  opts.rebalance.check_every = 1000;

  std::vector<double> run_a(static_cast<std::size_t>(N + M), 0.0);
  ShardingPlan migrated;
  TableBytes bytes_a;
  run_ranks(R, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    for (int i = 0; i < N; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) run_a[static_cast<std::size_t>(i)] = loss;
    }
    ASSERT_TRUE(trainer.rebalance_now());
    EXPECT_EQ(trainer.rebalance_stats().rebalances, 1);
    EXPECT_GT(trainer.rebalance_stats().rows_migrated, 0);
    for (int i = N; i < N + M; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) run_a[static_cast<std::size_t>(i)] = loss;
    }
    bytes_a.init(c, trainer.model().owned_shards().empty()
                        ? EmbeddingTable::checkpoint_row_bytes(
                              opts.dist.embed_precision, c.dim)
                        : trainer.model().owned_table(0).checkpoint_row_bytes());
    bytes_a.add_shards(trainer.model());
    if (comm.rank() == 0) migrated = trainer.model().plan();
  });
  ASSERT_FALSE(migrated.empty());
  // The recomputed plan must actually spread the tables.
  EXPECT_GT(migrated.rank_rows(1), 0);

  DistributedTrainerOptions opts_b = opts;
  opts_b.initial_plan = migrated;
  opts_b.rebalance = RebalanceOptions{};  // plain run, no stats, no trigger
  std::vector<double> run_b(static_cast<std::size_t>(N + M), 0.0);
  TableBytes bytes_b;
  run_ranks(R, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts_b);
    for (int i = 0; i < N + M; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) run_b[static_cast<std::size_t>(i)] = loss;
    }
    bytes_b.init(c, trainer.model().owned_table(0).checkpoint_row_bytes());
    bytes_b.add_shards(trainer.model());
  });

  for (int i = 0; i < N + M; ++i) {
    EXPECT_EQ(run_a[static_cast<std::size_t>(i)],
              run_b[static_cast<std::size_t>(i)])
        << "iteration " << i;
  }
  EXPECT_EQ(bytes_a.tables(), bytes_b.tables());
}

// Raw reshard onto an arbitrary row-split plan: every row's checkpoint
// bytes must survive the alltoallv verbatim (bit-exact state migration even
// when the training math on the new plan would differ in summation order).
TEST(Rebalance, ReshardToRowSplitPlanMovesStateVerbatim) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const int R = 2;

  // Target: table 0 split across both ranks, the rest with flipped owners.
  std::vector<Shard> shards;
  for (std::int64_t t = 0; t < c.tables(); ++t) {
    const std::int64_t rows = c.table_rows[static_cast<std::size_t>(t)];
    if (t == 0) {
      shards.push_back({0, 0, rows / 2, 1});
      shards.push_back({0, rows / 2, rows, 0});
    } else {
      Shard s;
      s.table = t;
      s.row_begin = 0;
      s.row_end = rows;
      s.rank = static_cast<int>((t + 1) % R);
      shards.push_back(s);
    }
  }
  const ShardingPlan target = ShardingPlan::custom(
      c.tables(), R, std::move(shards), ShardingPolicy::kRowSplit);

  TableBytes before, after;
  run_ranks(R, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = 64;
    opts.dist.emb_cache.capacity = 16;
    opts.dist.emb_cache.policy = EmbCachePolicy::kCounter;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    trainer.train(3);  // put real training state into every table
    before.init(c, trainer.model().owned_table(0).checkpoint_row_bytes());
    before.add_shards(trainer.model());
    comm.barrier();  // all exports done before anyone migrates
    const DistributedDlrm::ReshardResult res =
        trainer.model().reshard(target);
    EXPECT_TRUE(res.changed);
    EXPECT_GT(res.rows_moved, 0);
    EXPECT_GT(res.bytes_moved, 0);
    after.init(c, trainer.model().owned_table(0).checkpoint_row_bytes());
    after.add_shards(trainer.model());
    // Reshard onto the SAME plan is a no-op on every rank.
    const DistributedDlrm::ReshardResult again =
        trainer.model().reshard(target);
    EXPECT_FALSE(again.changed);
    EXPECT_EQ(again.rows_moved, 0);
  });
  EXPECT_EQ(before.tables(), after.tables());
}

// Auto-trigger end to end: a lopsided placement plus a modest threshold must
// fire within the first few windows and spread the plan. Rank 1 owns only the
// smallest table (180 of 1500 rows), so the windowed max/mean time ratio sits
// near 1.76; the threshold leaves headroom for scheduler noise.
TEST(Rebalance, AutoTriggerFiresOnImbalancedPlacement) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const int R = 2;

  std::vector<double> off_losses;
  std::vector<double> on_losses;
  run_ranks(R, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = 64;
    opts.initial_plan = skewed_plan(c, R);
    opts.rebalance.threshold = 1.3;
    opts.rebalance.check_every = 2;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    for (int i = 0; i < 8; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) on_losses.push_back(loss);
    }
    const auto& rs = trainer.rebalance_stats();
    EXPECT_GE(rs.checks, 4);
    EXPECT_GE(rs.rebalances, 1);
    EXPECT_GT(rs.rows_migrated, 0);
    EXPECT_GE(rs.first_trigger_step, 2);
    EXPECT_LE(rs.first_trigger_step, 8);
    EXPECT_GT(trainer.model().plan().rank_rows(1), 0)
        << "migration left every table on rank 0";
  });

  // The whole re-balance (trigger + migration) must be loss-transparent:
  // same losses as a run that never rebalances (full-table placement
  // invariance).
  DistributedTrainerOptions base;
  base.lr = 0.05f;
  base.global_batch = 64;
  base.initial_plan = skewed_plan(c, R);
  off_losses = run_losses(c, data, R, 8, base);
  ASSERT_EQ(on_losses.size(), off_losses.size());
  for (std::size_t i = 0; i < off_losses.size(); ++i) {
    EXPECT_EQ(on_losses[i], off_losses[i]) << "iteration " << i;
  }
}

// Distributed checkpoint with the cache on: shard files and manifest must be
// byte-identical to a cache-off run — the tier is derived state end to end.
TEST(Rebalance, CheckpointBytesUnaffectedByCache) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const int R = 2;

  auto run_and_save = [&](bool cache_on, const std::string& name) {
    const fs::path dir = fs::temp_directory_path() / ("dlrm_cache_ckpt_" + name);
    fs::remove_all(dir);
    run_ranks(R, 2, [&](ThreadComm& comm) {
      DistributedTrainerOptions opts;
      opts.lr = 0.05f;
      opts.global_batch = 64;
      if (cache_on) {
        opts.dist.emb_cache.capacity = 24;
        opts.dist.emb_cache.policy = EmbCachePolicy::kCounter;
        opts.dist.emb_cache.refresh_every = 2;
      }
      auto backend = QueueBackend::ccl_like(2);
      DistributedTrainer trainer(c, data, comm, backend.get(), opts);
      trainer.train(4);
      trainer.save_checkpoint(dir.string());
    });
    return dir;
  };

  const fs::path on = run_and_save(true, "on");
  const fs::path off = run_and_save(false, "off");

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  std::map<std::string, std::string> files_on, files_off;
  for (const auto& e : fs::directory_iterator(on)) {
    files_on[e.path().filename().string()] = slurp(e.path());
  }
  for (const auto& e : fs::directory_iterator(off)) {
    files_off[e.path().filename().string()] = slurp(e.path());
  }
  EXPECT_EQ(files_on, files_off);
  fs::remove_all(on);
  fs::remove_all(off);
}

}  // namespace
}  // namespace dlrm
