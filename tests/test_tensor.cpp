// Tests for the tensor container and the blocked MLP layouts.
#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "tensor/blocked.hpp"

namespace dlrm {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor<float> t({3, 4});
  EXPECT_EQ(t.size(), 12);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
}

TEST(Tensor, FillAndIndex) {
  Tensor<float> t({2, 3});
  t.fill(1.5f);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 1.5f);
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor<float> t({4});
  t.fill(2.0f);
  Tensor<float> c = t.clone();
  c[0] = -1.0f;
  EXPECT_EQ(t[0], 2.0f);
  EXPECT_EQ(c[0], -1.0f);
}

TEST(Tensor, AlignedStorage) {
  Tensor<float> t({17});
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % kAlignment, 0u);
  Tensor<std::int64_t> u({3, 5});
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u.data()) % kAlignment, 0u);
}

TEST(Tensor, IntTensor) {
  Tensor<std::int64_t> t({5});
  t.fill(-3);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], -3);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor<float> a({3}), b({3});
  a.fill(1.0f);
  b.fill(1.0f);
  b[2] = 1.25f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.25f);
}

TEST(Tensor, BadShapeThrows) {
  EXPECT_THROW(Tensor<float>({-1, 2}), CheckError);
  EXPECT_THROW(Tensor<float>(std::vector<std::int64_t>{}), CheckError);
}

// --- Blocked layouts ---------------------------------------------------------

using BlockedShape = std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>;

class BlockedActivationsTest : public ::testing::TestWithParam<BlockedShape> {};

TEST_P(BlockedActivationsTest, PackUnpackRoundTrip) {
  const auto [n, c, bn, bc] = GetParam();
  Rng rng(n * 1000 + c);
  Tensor<float> flat({n, c});
  fill_uniform(flat, rng, 2.0f);

  BlockedActivations blocked(n, c, bn, bc);
  blocked.pack_from(flat.data());
  Tensor<float> back({n, c});
  blocked.unpack_to(back.data());
  EXPECT_EQ(max_abs_diff(flat, back), 0.0f);
}

TEST_P(BlockedActivationsTest, BlockContentsMatchFlat) {
  const auto [n, c, bn, bc] = GetParam();
  Rng rng(42);
  Tensor<float> flat({n, c});
  fill_uniform(flat, rng, 1.0f);
  BlockedActivations blocked(n, c, bn, bc);
  blocked.pack_from(flat.data());
  // Element (in, ic) of block (icb, inb) equals flat[inb*bn+in][icb*bc+ic].
  for (std::int64_t icb = 0; icb < blocked.cb(); ++icb) {
    for (std::int64_t inb = 0; inb < blocked.nb(); ++inb) {
      const float* blk = blocked.block(icb, inb);
      for (std::int64_t in = 0; in < bn; ++in) {
        for (std::int64_t ic = 0; ic < bc; ++ic) {
          ASSERT_EQ(blk[in * bc + ic], flat.at(inb * bn + in, icb * bc + ic));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedActivationsTest,
    ::testing::Values(BlockedShape{8, 8, 2, 4}, BlockedShape{32, 64, 8, 16},
                      BlockedShape{64, 128, 32, 64}, BlockedShape{6, 10, 3, 5},
                      BlockedShape{128, 13, 16, 13}, BlockedShape{2, 2, 1, 1},
                      BlockedShape{48, 1, 16, 1}));

class BlockedWeightsTest : public ::testing::TestWithParam<BlockedShape> {};

TEST_P(BlockedWeightsTest, PackUnpackRoundTrip) {
  const auto [k, c, bk, bc] = GetParam();
  Rng rng(k * 31 + c);
  Tensor<float> flat({k, c});
  fill_uniform(flat, rng, 2.0f);

  BlockedWeights blocked(k, c, bk, bc);
  blocked.pack_from(flat.data());
  Tensor<float> back({k, c});
  blocked.unpack_to(back.data());
  EXPECT_EQ(max_abs_diff(flat, back), 0.0f);
}

TEST_P(BlockedWeightsTest, BlockContentsMatchFlat) {
  const auto [k, c, bk, bc] = GetParam();
  Rng rng(17);
  Tensor<float> flat({k, c});
  fill_uniform(flat, rng, 1.0f);
  BlockedWeights blocked(k, c, bk, bc);
  blocked.pack_from(flat.data());
  // Element (ic, ik) of block (ikb, icb) equals flat[ikb*bk+ik][icb*bc+ic].
  for (std::int64_t ikb = 0; ikb < blocked.kb(); ++ikb) {
    for (std::int64_t icb = 0; icb < blocked.cb(); ++icb) {
      const float* blk = blocked.block(ikb, icb);
      for (std::int64_t ic = 0; ic < bc; ++ic) {
        for (std::int64_t ik = 0; ik < bk; ++ik) {
          ASSERT_EQ(blk[ic * bk + ik], flat.at(ikb * bk + ik, icb * bc + ic));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedWeightsTest,
    ::testing::Values(BlockedShape{8, 8, 2, 4}, BlockedShape{64, 32, 16, 8},
                      BlockedShape{128, 64, 64, 32}, BlockedShape{10, 6, 5, 3},
                      BlockedShape{1, 16, 1, 16}, BlockedShape{512, 13, 64, 13}));

TEST(Blocking, ValidateRejectsNonDivisible) {
  Blocking b{10, 10, 3, 5};
  EXPECT_THROW(b.validate(), CheckError);
  Blocking ok{10, 10, 5, 5};
  EXPECT_NO_THROW(ok.validate());
}

}  // namespace
}  // namespace dlrm
