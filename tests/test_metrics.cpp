// Tests for ROC-AUC and meters.
#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "stats/profiler.hpp"

namespace dlrm {
namespace {

TEST(RocAuc, PerfectSeparation) {
  const float scores[] = {0.1f, 0.2f, 0.8f, 0.9f};
  const float labels[] = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels, 4), 1.0);
}

TEST(RocAuc, PerfectInversion) {
  const float scores[] = {0.9f, 0.8f, 0.2f, 0.1f};
  const float labels[] = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels, 4), 0.0);
}

TEST(RocAuc, RandomScoresNearHalf) {
  Rng rng(3);
  const std::int64_t n = 20000;
  std::vector<float> scores(static_cast<std::size_t>(n)), labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    scores[static_cast<std::size_t>(i)] = rng.next_float();
    labels[static_cast<std::size_t>(i)] = rng.next_float() < 0.3f ? 1.0f : 0.0f;
  }
  EXPECT_NEAR(roc_auc(scores.data(), labels.data(), n), 0.5, 0.02);
}

TEST(RocAuc, TiesGetAverageRank) {
  // All scores equal → AUC must be exactly 0.5 under average-rank ties.
  const float scores[] = {1.0f, 1.0f, 1.0f, 1.0f};
  const float labels[] = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels, 4), 0.5);
}

TEST(RocAuc, KnownSmallCase) {
  // scores: pos {3, 1}, neg {2}. Pairs: (3>2)=1, (1<2)=0 → AUC = 0.5.
  const float scores[] = {3.0f, 1.0f, 2.0f};
  const float labels[] = {1, 1, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels, 3), 0.5);
}

TEST(RocAuc, DegenerateClassesReturnHalf) {
  const float scores[] = {0.3f, 0.7f};
  const float ones[] = {1, 1};
  const float zeros[] = {0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, ones, 2), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc(scores, zeros, 2), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc(scores, ones, 0), 0.5);
}

TEST(RocAuc, InvariantUnderMonotoneTransform) {
  Rng rng(4);
  const std::int64_t n = 500;
  std::vector<float> s(static_cast<std::size_t>(n)), s2(static_cast<std::size_t>(n)),
      l(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    s[static_cast<std::size_t>(i)] = rng.uniform(-2.0f, 2.0f);
    s2[static_cast<std::size_t>(i)] = 3.0f * s[static_cast<std::size_t>(i)] + 7.0f;
    l[static_cast<std::size_t>(i)] = rng.next_float() < 0.4f ? 1.0f : 0.0f;
  }
  EXPECT_DOUBLE_EQ(roc_auc(s.data(), l.data(), n), roc_auc(s2.data(), l.data(), n));
}

TEST(AucAccumulator, MatchesSingleShot) {
  Rng rng(5);
  const std::int64_t n = 1000;
  std::vector<float> s(static_cast<std::size_t>(n)), l(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    s[static_cast<std::size_t>(i)] = rng.next_float();
    l[static_cast<std::size_t>(i)] = rng.next_float() < 0.5f ? 1.0f : 0.0f;
  }
  AucAccumulator acc;
  acc.add(s.data(), l.data(), 300);
  acc.add(s.data() + 300, l.data() + 300, 700);
  EXPECT_DOUBLE_EQ(acc.compute(), roc_auc(s.data(), l.data(), n));
  EXPECT_EQ(acc.count(), n);
  acc.clear();
  EXPECT_EQ(acc.count(), 0);
}

TEST(Meter, MeanAndClear) {
  Meter m;
  EXPECT_EQ(m.mean(), 0.0);
  m.add(1.0);
  m.add(2.0);
  m.add(6.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  m.clear();
  EXPECT_EQ(m.count(), 0);
}

TEST(Profiler, CountersAndPrefixSums) {
  Profiler prof;
  prof.add("emb_fwd", 0.5);
  prof.add("emb_bwd", 0.25);
  prof.add("mlp_fwd", 1.0);
  EXPECT_DOUBLE_EQ(prof.total_sec("emb_fwd"), 0.5);
  EXPECT_DOUBLE_EQ(prof.total_sec_prefix("emb_"), 0.75);
  EXPECT_EQ(prof.count("mlp_fwd"), 1);
  EXPECT_EQ(prof.count("missing"), 0);
  const std::string report = prof.report();
  EXPECT_NE(report.find("emb_fwd"), std::string::npos);
  prof.reset();
  EXPECT_DOUBLE_EQ(prof.total_sec_prefix(""), 0.0);
}

TEST(Profiler, ScopeTimesBlocks) {
  Profiler prof;
  {
    Profiler::Scope s(prof, "work");
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + i;
  }
  EXPECT_GT(prof.total_sec("work"), 0.0);
  EXPECT_EQ(prof.count("work"), 1);
}

}  // namespace
}  // namespace dlrm
