// Online serving path: batcher determinism, snapshot-publication parity
// (served scores bit-identical to offline forwards on the same published
// weights, fp32 and bf16, in-process and from checkpoint directories),
// queue backpressure and clean shutdown, serve-while-training snapshot
// handover, and SLO accounting sanity. Runs under the TSan pass in ci.sh —
// the batcher, load-generator, and publisher threads all share the engine
// and the Profiler.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/trainer.hpp"
#include "serve/loadgen.hpp"
#include "serve/snapshot.hpp"

namespace dlrm {
namespace {

namespace fs = std::filesystem;
using serve::BatchPolicy;
using serve::EngineOptions;
using serve::InferenceEngine;
using serve::LoadGenOptions;
using serve::ModelSnapshot;
using serve::PoissonLoadGen;
using serve::Request;
using serve::Response;

DlrmConfig serve_config(Precision mlp = Precision::kFp32) {
  DlrmConfig c;
  c.name = "serve-tiny";
  c.minibatch = 32;
  c.global_batch_strong = 32;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {120, 90, 140, 60};
  c.bottom_mlp = {8, 16, 16};
  c.top_mlp = {16, 8, 1};
  c.mlp_precision = mlp;
  c.validate();
  return c;
}

RandomDataset serve_data(const DlrmConfig& c) {
  return RandomDataset(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
}

/// A snapshot published from a freshly trained model (few steps so the
/// weights are non-trivial).
void train_and_publish(const DlrmConfig& c, const ModelOptions& mopts,
                       const Dataset& data, ModelSnapshot& snap,
                       int iters = 4) {
  DlrmModel model(c, mopts, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(iters);
  snap.publish_from(model, trainer.iterations_done());
}

std::vector<Request> fixed_trace() {
  LoadGenOptions lopts;
  lopts.qps = 1e6;  // stamps only; run_trace ignores pacing
  lopts.requests = 60;
  lopts.fanout = 3;
  lopts.key_space = 4096;
  lopts.zipf_s = 0.9;
  lopts.seed = 5;
  return serve::make_trace(lopts);
}

std::map<std::int64_t, float> scores_by_id(const std::vector<Response>& rs) {
  std::map<std::int64_t, float> out;
  for (const Response& r : rs) out[r.id] = r.score0;
  return out;
}

// Two fresh engines over identically published snapshots must produce the
// same batching and bit-identical scores for the same trace.
TEST(Serving, TraceReplayIsDeterministic) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);
  const std::vector<Request> trace = fixed_trace();

  std::vector<std::vector<Response>> runs;
  for (int run = 0; run < 2; ++run) {
    ModelSnapshot snap(c, {});
    train_and_publish(c, {}, data, snap);
    InferenceEngine engine(snap, data,
                           {.policy = {.max_batch = 8, .max_wait_us = 0}});
    runs.push_back(engine.run_trace(trace));
  }
  ASSERT_EQ(runs[0].size(), trace.size());
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[0][i].id, runs[1][i].id);
    EXPECT_EQ(runs[0][i].batch, runs[1][i].batch) << "request " << i;
    EXPECT_EQ(runs[0][i].score0, runs[1][i].score0) << "request " << i;
  }
}

// Per-sample forwards are independent of batch composition, so dynamic
// micro-batches must score every request bit-identically to batch=1.
TEST(Serving, DynamicBatchingMatchesBatchOneBitExact) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);
  const std::vector<Request> trace = fixed_trace();

  ModelSnapshot snap(c, {});
  train_and_publish(c, {}, data, snap);

  InferenceEngine batched(snap, data,
                          {.policy = {.max_batch = 16, .max_wait_us = 0}});
  const auto dyn = scores_by_id(batched.run_trace(trace));
  InferenceEngine single(snap, data,
                         {.policy = {.max_batch = 1, .max_wait_us = 0}});
  const auto one = scores_by_id(single.run_trace(trace));

  ASSERT_EQ(dyn.size(), one.size());
  for (const auto& [id, score] : dyn) {
    ASSERT_TRUE(one.count(id));
    EXPECT_EQ(score, one.at(id)) << "request id " << id;
  }
  // Batching actually happened.
  const auto s = batched.stats();
  EXPECT_GT(s.mean_batch, 1.0);
}

// Publication parity: scores served from a snapshot restored out of a
// checkpoint directory must be bit-identical to (a) offline per-request
// forwards on that snapshot and (b) a snapshot published in-process from
// the live model that wrote the checkpoint. Covers the fp32 and bf16
// embedding/MLP codecs.
class ServingCkptParityTest : public ::testing::TestWithParam<Precision> {};

TEST_P(ServingCkptParityTest, CheckpointAndInProcessPublishServeIdentically) {
  const Precision precision = GetParam();
  const DlrmConfig c = serve_config(precision);
  ModelOptions mopts;
  mopts.embed_precision = precision == Precision::kBf16
                              ? EmbedPrecision::kBf16Split
                              : EmbedPrecision::kFp32;
  const RandomDataset data = serve_data(c);
  const fs::path dir =
      fs::temp_directory_path() /
      ("dlrm_serve_ckpt_" + std::string(to_string(precision)));
  fs::remove_all(dir);

  DlrmModel model(c, mopts, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(4);
  trainer.save_checkpoint(dir.string());

  ModelSnapshot live(c, mopts);
  live.publish_from(model, trainer.iterations_done());
  ModelSnapshot restored(c, mopts);
  restored.publish_from_checkpoint(dir.string());
  EXPECT_EQ(restored.version(), trainer.iterations_done());

  const std::vector<Request> trace = fixed_trace();
  InferenceEngine engine(restored, data,
                         {.policy = {.max_batch = 8, .max_wait_us = 0}});
  const std::vector<Response> served = engine.run_trace(trace);
  ASSERT_EQ(served.size(), trace.size());

  // Offline reference: each request forwarded alone on the in-process
  // snapshot (exercises a different batch geometry AND the other
  // publication path at once).
  std::map<std::int64_t, float> offline;
  MiniBatch mb;
  for (const Request& r : trace) {
    data.fill(r.key, r.fanout, mb);
    offline[r.id] = live.forward(mb)[0];
  }
  for (const Response& r : served) {
    ASSERT_TRUE(offline.count(r.id));
    EXPECT_EQ(r.score0, offline.at(r.id)) << "request id " << r.id;
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Precisions, ServingCkptParityTest,
                         ::testing::Values(Precision::kFp32, Precision::kBf16),
                         [](const ::testing::TestParamInfo<Precision>& tpi) {
                           return std::string(to_string(tpi.param));
                         });

// Bounded queue: try_submit sheds load once the queue is full (accounted as
// rejected), stop() drains everything accepted, and submits after shutdown
// are refused.
TEST(Serving, BackpressureRejectionAndCleanShutdown) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);
  ModelSnapshot snap(c, {});
  train_and_publish(c, {}, data, snap);

  EngineOptions opts;
  opts.policy = {.max_batch = 4, .max_wait_us = 100};
  opts.queue_capacity = 4;
  InferenceEngine engine(snap, data, opts);

  // Closed queue (not started): both submit flavours refuse.
  EXPECT_FALSE(engine.try_submit({.id = 0, .key = 0, .fanout = 1}));
  EXPECT_FALSE(engine.submit({.id = 0, .key = 0, .fanout = 1}));

  engine.start();
  std::int64_t accepted = 0, rejected = 0;
  for (std::int64_t i = 0; i < 64; ++i) {
    Request r;
    r.id = i;
    r.key = i;
    r.fanout = 2;
    r.submit_sec = now_sec();
    if (engine.try_submit(r)) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // Blocking submits always land (backpressure, not shedding).
  for (std::int64_t i = 64; i < 96; ++i) {
    Request r;
    r.id = i;
    r.key = i;
    r.fanout = 2;
    r.submit_sec = now_sec();
    EXPECT_TRUE(engine.submit(r));
    ++accepted;
  }
  engine.stop();

  const auto s = engine.stats();
  EXPECT_EQ(static_cast<std::int64_t>(engine.responses().size()), accepted);
  EXPECT_EQ(s.requests, accepted);
  EXPECT_EQ(s.rejected, rejected);
  EXPECT_FALSE(engine.submit({.id = 999, .key = 0, .fanout = 1}));
  EXPECT_FALSE(engine.try_submit({.id = 999, .key = 0, .fanout = 1}));
}

// Serve-while-training: a publisher thread repeatedly publishes fresh
// weights into the idle buffer of a snapshot pair and hands it over while
// the Poisson load generator drives the engine. Every request must be
// answered, and the responses must observe a snapshot version advance.
// (TSan validates the handover and the shared Profiler.)
TEST(Serving, ServeWhileTrainingObservesNewSnapshots) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);

  DlrmModel model(c, {}, /*seed=*/21);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = 32});
  trainer.train(1);

  ModelSnapshot snapA(c, {}), snapB(c, {});
  snapA.publish_from(model, trainer.iterations_done());

  Profiler prof;
  EngineOptions opts;
  opts.policy = {.max_batch = 16, .max_wait_us = 200};
  opts.queue_capacity = 256;
  InferenceEngine engine(snapA, data, opts, &prof);
  engine.start();

  LoadGenOptions lopts;
  lopts.qps = 4000;
  lopts.requests = 400;
  lopts.fanout = 2;
  lopts.key_space = 4096;
  lopts.zipf_s = 0.9;
  PoissonLoadGen gen(engine, lopts);
  std::thread load([&] { gen.run(); });

  // Alternate publishing into whichever snapshot the engine is NOT using;
  // wait for each handover to be adopted before reclaiming the retired
  // buffer (the republish-while-forwarding race TSan would catch).
  ModelSnapshot* snaps[2] = {&snapA, &snapB};
  for (int pub = 0; pub < 4; ++pub) {
    trainer.train(1);
    ModelSnapshot* idle = snaps[(pub + 1) % 2];
    idle->publish_from(model, trainer.iterations_done());
    engine.set_snapshot(idle);
    // Traffic drained already? Then no more adoptions happen: stop
    // publishing rather than touch a possibly-still-referenced buffer.
    if (!engine.wait_snapshot_swapped(0.5)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  load.join();
  engine.stop();

  EXPECT_EQ(gen.sent(), lopts.requests);
  const std::vector<Response> rs = engine.responses();
  ASSERT_EQ(static_cast<std::int64_t>(rs.size()), lopts.requests);
  std::set<std::int64_t> versions;
  for (const Response& r : rs) versions.insert(r.version);
  EXPECT_GE(versions.size(), 2u) << "no snapshot handover was observed";
  EXPECT_EQ(*versions.rbegin(), trainer.iterations_done());
  // The serving scopes landed in the shared profiler.
  EXPECT_EQ(prof.count("serve_latency"), lopts.requests);
  EXPECT_GT(prof.count("serve_forward"), 0);
}

// Percentile/throughput bookkeeping: ordered percentiles, request/batch
// accounting consistent, SLO violations within [0, requests].
TEST(Serving, SloAccountingIsSane) {
  const DlrmConfig c = serve_config();
  const RandomDataset data = serve_data(c);
  ModelSnapshot snap(c, {});
  train_and_publish(c, {}, data, snap);

  EngineOptions opts;
  opts.policy = {.max_batch = 8, .max_wait_us = 100};
  opts.slo_ms = 2.0;
  InferenceEngine engine(snap, data, opts);
  engine.start();
  LoadGenOptions lopts;
  lopts.qps = 3000;
  lopts.requests = 200;
  lopts.fanout = 2;
  PoissonLoadGen gen(engine, lopts);
  gen.run();
  engine.stop();

  const auto s = engine.stats();
  EXPECT_EQ(s.requests, lopts.requests);
  EXPECT_GE(s.batches, 1);
  EXPECT_EQ(s.samples, lopts.requests * lopts.fanout);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms);
  EXPECT_GT(s.p50_ms, 0.0);
  EXPECT_GE(s.mean_batch, 1.0);
  EXPECT_GT(s.throughput_rps, 0.0);
  EXPECT_GE(s.slo_violations, 0);
  EXPECT_LE(s.slo_violations, s.requests);
}

}  // namespace
}  // namespace dlrm
