// Tests for the asynchronous communication engines: FIFO execution,
// in-order completion semantics (MPI-like) and independent completion
// (CCL-like), plus mixed async/blocking collective interleavings.
#include "comm/backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "comm/thread_comm.hpp"

namespace dlrm {
namespace {

TEST(QueueBackend, ExecutesSubmittedOps) {
  QueueBackend backend("test", 1);
  std::atomic<int> counter{0};
  std::vector<CommRequest> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(backend.submit(CommOpKind::kOther, [&] { counter++; }));
  }
  for (auto& r : reqs) backend.wait(r);
  EXPECT_EQ(counter.load(), 10);
}

TEST(QueueBackend, SingleWorkerCompletesInOrder) {
  QueueBackend backend("mpi", 1);
  std::atomic<int> stage{0};
  // Op A is slow; op B records whether A finished first.
  std::atomic<bool> a_done_before_b{false};
  auto a = backend.submit(CommOpKind::kAllreduce, [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stage = 1;
  });
  auto b = backend.submit(CommOpKind::kAlltoall, [&] {
    a_done_before_b = (stage.load() == 1);
  });
  // Waiting on B alone must pay for A too (the paper's in-order artifact).
  const double waited = backend.wait(b);
  EXPECT_TRUE(a_done_before_b.load());
  EXPECT_TRUE(b.done());
  EXPECT_TRUE(a.done());  // implied by in-order completion
  EXPECT_GE(waited, 0.045);
}

TEST(QueueBackend, MultiWorkerCompletesIndependently) {
  QueueBackend backend("ccl", 2);
  std::atomic<bool> slow_done{false};
  auto slow = backend.submit(CommOpKind::kAllreduce, [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    slow_done = true;
  });
  auto fast = backend.submit(CommOpKind::kAlltoall, [] {});
  const double waited = backend.wait(fast);
  // The fast op completed on the second worker without paying for the slow
  // one: out-of-order completion, the CCL behaviour.
  EXPECT_LT(waited, 0.08);
  EXPECT_FALSE(slow_done.load());
  backend.wait(slow);
  EXPECT_TRUE(slow_done.load());
}

TEST(QueueBackend, WaitReturnsBlockedTime) {
  QueueBackend backend("test", 1);
  auto slow = backend.submit(CommOpKind::kOther, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  EXPECT_GE(backend.wait(slow), 0.025);
  // Waiting again on a finished op is free.
  EXPECT_LT(backend.wait(slow), 0.005);
}

TEST(QueueBackend, ExecTimeRecorded) {
  QueueBackend backend("test", 1);
  auto r = backend.submit(CommOpKind::kOther, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  backend.wait(r);
  EXPECT_GE(r.exec_sec(), 0.015);
  EXPECT_EQ(r.kind(), CommOpKind::kOther);
}

TEST(QueueBackend, DrainsQueueOnShutdown) {
  std::atomic<int> counter{0};
  {
    QueueBackend backend("test", 1);
    for (int i = 0; i < 5; ++i) {
      backend.submit(CommOpKind::kOther, [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        counter++;
      });
    }
    // Destructor must wait for all queued ops.
  }
  EXPECT_EQ(counter.load(), 5);
}

TEST(AsyncCollectives, TicketedOpsMatchAcrossRanks) {
  // Each rank drives its collectives through its own backend worker; results
  // must match the blocking path.
  const int R = 4;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    QueueBackend backend("mpi", 1);
    std::vector<float> a(256, static_cast<float>(comm.rank() + 1));
    std::vector<float> b(256, static_cast<float>(comm.rank() + 1));
    const auto seq_a = comm.ticket();
    const auto seq_b = comm.ticket();
    auto ra = backend.submit(CommOpKind::kAllreduce, [&, seq_a] {
      comm.allreduce_seq(seq_a, a.data(), 256);
    });
    auto rb = backend.submit(CommOpKind::kAllreduce, [&, seq_b] {
      comm.allreduce_seq(seq_b, b.data(), 256);
    });
    backend.wait(ra);
    backend.wait(rb);
    const float expect = static_cast<float>(R * (R + 1)) / 2.0f;
    for (float v : a) ASSERT_FLOAT_EQ(v, expect);
    for (float v : b) ASSERT_FLOAT_EQ(v, expect);
  });
}

TEST(AsyncCollectives, MixedAsyncAndBlockingKeepProgramOrder) {
  const int R = 3;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    QueueBackend backend("mpi", 1);
    std::vector<float> async_buf(64, 1.0f);
    const auto seq = comm.ticket();  // reserved BEFORE the blocking op
    auto req = backend.submit(CommOpKind::kAllreduce, [&, seq] {
      comm.allreduce_seq(seq, async_buf.data(), 64);
    });
    // Blocking collective issued after the async one — program order holds.
    std::vector<float> sync_buf(64, 2.0f);
    comm.allreduce(sync_buf.data(), 64);
    backend.wait(req);
    for (float v : async_buf) ASSERT_FLOAT_EQ(v, static_cast<float>(R));
    for (float v : sync_buf) ASSERT_FLOAT_EQ(v, 2.0f * R);
  });
}

TEST(AsyncCollectives, MultiWorkerOverlappingCollectives) {
  const int R = 4;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    QueueBackend backend("ccl", 2);
    std::vector<std::vector<float>> bufs;
    std::vector<CommRequest> reqs;
    for (int i = 0; i < 8; ++i) {
      bufs.emplace_back(128, static_cast<float>(i + comm.rank()));
    }
    for (int i = 0; i < 8; ++i) {
      const auto seq = comm.ticket();
      reqs.push_back(backend.submit(CommOpKind::kAllreduce, [&, i, seq] {
        comm.allreduce_seq(seq, bufs[static_cast<std::size_t>(i)].data(), 128);
      }));
    }
    for (auto& r : reqs) backend.wait(r);
    for (int i = 0; i < 8; ++i) {
      const float expect = static_cast<float>(i * R + R * (R - 1) / 2);
      for (float v : bufs[static_cast<std::size_t>(i)]) ASSERT_FLOAT_EQ(v, expect);
    }
  });
}

}  // namespace
}  // namespace dlrm
