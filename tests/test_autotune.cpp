// Elastic pipeline shape under the PipelineController: policy unit tests
// (growth order, shrink hysteresis, hold windows), the loss-neutrality
// contract — per-step losses bit-identical with the controller on or off,
// single-process and distributed, fp32 and bf16, with resizes *forced* so
// the parity holds across real rebuild+seek+prefill cycles — and the
// slow-loader soak with consumer-side jitter: under an injected producer
// stall the controller grows the pipeline and the measured stall fraction
// converges below target while the stream stays bit-exact. Runs under the
// CI TSan pass.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

#include "common/timer.hpp"
#include "core/dist_trainer.hpp"
#include "core/model.hpp"
#include "data/autotune.hpp"
#include "data/loader.hpp"
#include "data/prefetch.hpp"

namespace dlrm {
namespace {

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};  // S = 6
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

/// window=1, no hold, tight bounds — every decide() call is a full window,
/// so the policy sequence is directly observable.
AutotuneOptions unit_options() {
  AutotuneOptions a;
  a.enabled = true;
  a.stall_target = 0.2;
  a.window = 1;
  a.max_workers = 4;
  a.max_depth = 4;
  a.hold_windows = 0;
  return a;
}

TEST(PipelineController, GrowsWorkersFirstThenDepthUpToBounds) {
  PipelineController pc(unit_options(), 1, 1);
  // Input-bound every window: workers double to the cap, then depth.
  const std::vector<std::pair<int, int>> want = {
      {2, 1}, {4, 1}, {4, 2}, {4, 4}};
  for (std::size_t i = 0; i < want.size(); ++i) {
    const PipelineDecision d = pc.decide(0.5, 1.0, static_cast<std::int64_t>(i));
    EXPECT_TRUE(d.resize) << "window " << i;
    EXPECT_EQ(d.workers, want[i].first) << "window " << i;
    EXPECT_EQ(d.depth, want[i].second) << "window " << i;
    EXPECT_EQ(d.stall_frac, 0.5);
  }
  // Saturated at the bounds: still input-bound, but no further resize.
  const PipelineDecision d = pc.decide(0.5, 1.0, 99);
  EXPECT_FALSE(d.resize);
  EXPECT_EQ(pc.workers(), 4);
  EXPECT_EQ(pc.depth(), 4);
  EXPECT_EQ(pc.resizes(), 4);
  EXPECT_EQ(pc.windows(), 5);
  ASSERT_EQ(pc.trace().size(), 5u);
  EXPECT_TRUE(pc.trace()[0].resized);
  EXPECT_FALSE(pc.trace()[4].resized);
  // Trace records the shape the window RAN at, not the post-resize shape.
  EXPECT_EQ(pc.trace()[1].workers, 2);
  EXPECT_EQ(pc.trace()[4].workers, 4);
}

TEST(PipelineController, ShrinksWithHysteresisDownToFloors) {
  PipelineController pc(unit_options(), 4, 4);
  // Quiet windows (frac 0 < target * shrink_margin = 0.05): each shrink
  // needs shrink_streak = 2 consecutive low windows, depth first.
  const std::vector<std::pair<int, int>> want = {
      {4, 4},  // streak 1: hold shape
      {4, 2},  // streak 2: depth 4 -> 2
      {4, 2}, {4, 1},
      {4, 1}, {2, 1},
      {2, 1}, {1, 1}};
  for (std::size_t i = 0; i < want.size(); ++i) {
    pc.decide(0.0, 1.0, static_cast<std::int64_t>(i));
    EXPECT_EQ(pc.workers(), want[i].first) << "window " << i;
    EXPECT_EQ(pc.depth(), want[i].second) << "window " << i;
  }
  // At the floors: quiet windows stop resizing.
  pc.decide(0.0, 1.0, 98);
  const PipelineDecision d = pc.decide(0.0, 1.0, 99);
  EXPECT_FALSE(d.resize);
  EXPECT_EQ(pc.workers(), 1);
  EXPECT_EQ(pc.depth(), 1);
  EXPECT_EQ(pc.resizes(), 4);
}

TEST(PipelineController, DeadBandWindowResetsShrinkStreak) {
  PipelineController pc(unit_options(), 4, 4);
  pc.decide(0.0, 1.0, 0);   // streak 1
  pc.decide(0.1, 1.0, 1);   // dead band (0.05 < 0.1 < 0.2): streak resets
  pc.decide(0.0, 1.0, 2);   // streak 1 again
  EXPECT_EQ(pc.resizes(), 0);
  pc.decide(0.0, 1.0, 3);   // streak 2: now the shrink fires
  EXPECT_EQ(pc.resizes(), 1);
  EXPECT_EQ(pc.depth(), 2);
}

TEST(PipelineController, HoldWindowsSuppressBackToBackResizes) {
  AutotuneOptions a = unit_options();
  a.hold_windows = 2;
  PipelineController pc(a, 1, 1);
  EXPECT_TRUE(pc.decide(0.5, 1.0, 0).resize);   // -> (2, 1), hold 2
  EXPECT_FALSE(pc.decide(0.5, 1.0, 1).resize);  // held
  EXPECT_FALSE(pc.decide(0.5, 1.0, 2).resize);  // held
  EXPECT_TRUE(pc.decide(0.5, 1.0, 3).resize);   // -> (4, 1)
  EXPECT_EQ(pc.workers(), 4);
  EXPECT_EQ(pc.resizes(), 2);
}

TEST(PipelineController, DisabledControllerIsInert) {
  PipelineController pc;  // default: disabled
  EXPECT_FALSE(pc.enabled());
  pc.observe(1.0, 1.0);
  pc.observe(1.0, 1.0);
  EXPECT_FALSE(pc.window_complete());
  const PipelineDecision d = pc.decide(1.0, 1.0, 0);
  EXPECT_FALSE(d.resize);
  EXPECT_EQ(pc.windows(), 0);
  EXPECT_EQ(pc.resizes(), 0);
  EXPECT_TRUE(pc.trace().empty());
}

/// Forces a resize at (almost) every window regardless of wall-clock
/// timing: any measured fraction (>= 0) exceeds a negative target, so the
/// controller grows deterministically until saturated — which is exactly
/// what the loss-parity tests need (real rebuild + seek + prefill cycles
/// on a machine-independent schedule).
AutotuneOptions forced_growth() {
  AutotuneOptions a;
  a.enabled = true;
  a.stall_target = -1.0;
  a.window = 2;
  a.max_workers = 4;
  a.max_depth = 4;
  a.hold_windows = 0;
  return a;
}

/// Per-iteration single-process losses with the given controller config.
std::vector<double> trainer_losses(const DlrmConfig& c, const Dataset& data,
                                   int iters, const AutotuneOptions& tune,
                                   std::int64_t* resizes = nullptr) {
  DlrmModel model(c, {}, 77);
  Trainer trainer(model, data,
                  {.lr = 0.05f,
                   .batch = c.minibatch,
                   .prefetch = true,
                   .prefetch_depth = 2,
                   .prefetch_workers = 1,
                   .autotune = tune});
  std::vector<double> out;
  for (int i = 0; i < iters; ++i) out.push_back(trainer.train(1));
  if (resizes != nullptr) *resizes = trainer.pipeline_controller().resizes();
  return out;
}

/// Per-iteration GLOBAL losses of an R-rank run (rank 0's view; identical
/// on every rank by construction).
std::vector<double> distributed_losses(const DlrmConfig& c,
                                       const Dataset& data, int ranks,
                                       int iters, const AutotuneOptions& tune,
                                       std::int64_t* resizes = nullptr) {
  std::vector<double> out(static_cast<std::size_t>(iters), 0.0);
  const DlrmConfig& cc = c;
  run_ranks(ranks, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = 64;
    opts.seed = 77;
    opts.prefetch = true;
    opts.prefetch_depth = 2;
    opts.prefetch_workers = 1;
    opts.autotune = tune;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    for (int i = 0; i < iters; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) out[static_cast<std::size_t>(i)] = loss;
    }
    if (comm.rank() == 0 && resizes != nullptr) {
      *resizes = trainer.pipeline_controller().resizes();
    }
  });
  return out;
}

class AutotuneParityTest
    : public ::testing::TestWithParam<std::tuple<int, Precision>> {};

// The acceptance bar: with resizes forced at every window, per-step losses
// are bit-identical to the controller-off run — every rebuild + seek +
// prefill cycle is loss-neutral. EXPECT_EQ on doubles: exact bits.
TEST_P(AutotuneParityTest, LossesBitIdenticalControllerOnOrOff) {
  const auto [R, precision] = GetParam();
  DlrmConfig c = tiny_config();
  c.mlp_precision = precision;
  const int iters = 10;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  std::int64_t resizes = 0;
  const std::vector<double> ref =
      distributed_losses(c, data, R, iters, AutotuneOptions{});
  const std::vector<double> got =
      distributed_losses(c, data, R, iters, forced_growth(), &resizes);
  // window=2 over 10 iters: workers 1->2->4, then depth 2->4.
  EXPECT_GE(resizes, 3);
  for (int i = 0; i < iters; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              ref[static_cast<std::size_t>(i)])
        << "R " << R << " iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AutotuneParityTest,
    ::testing::Values(std::tuple<int, Precision>{1, Precision::kFp32},
                      std::tuple<int, Precision>{2, Precision::kFp32},
                      std::tuple<int, Precision>{4, Precision::kFp32},
                      std::tuple<int, Precision>{1, Precision::kBf16},
                      std::tuple<int, Precision>{2, Precision::kBf16},
                      std::tuple<int, Precision>{4, Precision::kBf16}),
    [](const ::testing::TestParamInfo<std::tuple<int, Precision>>& tpi) {
      return "R" + std::to_string(std::get<0>(tpi.param)) + "_" +
             std::string(to_string(std::get<1>(tpi.param)));
    });

// Same contract on the single-process Trainer (MiniBatch stream).
TEST(AutotuneParity, TrainerLossesBitIdenticalControllerOnOrOff) {
  for (const Precision precision : {Precision::kFp32, Precision::kBf16}) {
    DlrmConfig c = tiny_config();
    c.mlp_precision = precision;
    RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

    std::int64_t resizes = 0;
    const std::vector<double> ref =
        trainer_losses(c, data, 10, AutotuneOptions{});
    const std::vector<double> got =
        trainer_losses(c, data, 10, forced_growth(), &resizes);
    EXPECT_GE(resizes, 3);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i], ref[i])
          << to_string(precision) << " iteration " << i;
    }
  }
}

// The ROADMAP soak-test follow-on: a deliberately slow producer (injected
// per-load stall) against a consumer with pseudo-random per-step jitter.
// Driving a raw pipeline through the same observe/decide/rebuild loop the
// trainers use, the controller must (a) grow the shape beyond one worker,
// (b) converge the measured window stall fraction below target, and (c)
// never corrupt the stream across resizes (bit-exact vs a sync loader).
TEST(AutotuneSoak, SlowLoaderConvergesBelowTargetUnderConsumerJitter) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  std::vector<std::int64_t> all_tables(c.table_rows.size());
  std::iota(all_tables.begin(), all_tables.end(), 0);
  DataLoader loader(data, c.minibatch, 0, 1, all_tables,
                    LoaderMode::kFullGlobalBatch);
  DataLoader ref(data, c.minibatch, 0, 1, all_tables,
                 LoaderMode::kFullGlobalBatch);

  AutotuneOptions a;
  a.enabled = true;
  a.stall_target = 0.25;
  a.window = 8;
  a.max_workers = 4;
  a.max_depth = 4;
  a.hold_windows = 1;
  PipelineController ctrl(a, 1, 1);

  // One worker stalls 1.6 ms per load; the consumer "computes" 0.5-0.9 ms
  // per step. One worker can't keep up (stall frac ~0.5); the grown shape
  // hides the load entirely.
  const auto stall = [](int /*w*/, std::int64_t /*iter*/) {
    std::this_thread::sleep_for(std::chrono::microseconds(1600));
  };

  std::vector<std::unique_ptr<DataLoader>> clones;
  std::unique_ptr<PrefetchPipeline<MiniBatch>> pipe;
  const auto rebuild = [&](int workers, int depth) {
    pipe.reset();  // joins the worker threads before their clones go away
    clones.clear();
    PrefetchOptions popts{.enabled = true,
                          .depth = depth,
                          .workers = workers,
                          .stall_hook = stall};
    auto wl = make_worker_loaders<MiniBatch>(loader, popts,
                                             &DataLoader::next_full);
    clones = std::move(wl.clones);
    DataLoader* sync = &loader;
    pipe = std::make_unique<PrefetchPipeline<MiniBatch>>(
        [sync](std::int64_t it, MiniBatch& out) { sync->next_full(it, out); },
        std::move(wl.fns), popts);
  };
  rebuild(ctrl.workers(), ctrl.depth());
  pipe->prefill();

  MiniBatch want;
  int low_windows = 0;
  int max_workers_seen = 1;
  std::int64_t it = 0;
  const std::int64_t max_steps = a.window * 40;
  while (low_windows < 2 && it < max_steps) {
    const Timer step_timer;
    const MiniBatch& got = pipe->next(it);
    const double exposed = pipe->last_wait_sec();
    // Stream integrity across resizes (read before any rebuild below
    // invalidates the reference).
    ref.next_full(it, want);
    ASSERT_EQ(got.labels.data()[0], want.labels.data()[0]) << "iter " << it;
    ASSERT_EQ(got.dense.data()[0], want.dense.data()[0]) << "iter " << it;
    // Consumer-side jitter: deterministic hash-driven compute time.
    const auto h = static_cast<std::uint32_t>(it * 2654435761u);
    std::this_thread::sleep_for(std::chrono::microseconds(500 + h % 400));
    ++it;
    ctrl.observe(exposed, step_timer.elapsed_sec());
    if (!ctrl.window_complete()) continue;
    const PipelineDecision d =
        ctrl.decide(ctrl.window_exposed_sec(), ctrl.window_wall_sec(), it);
    if (d.stall_frac < a.stall_target && ctrl.workers() > 1) {
      ++low_windows;  // only converged windows at a GROWN shape count
    } else {
      low_windows = 0;
    }
    if (d.resize) {
      rebuild(d.workers, d.depth);
      pipe->seek(it);
      pipe->prefill();
      max_workers_seen = std::max(max_workers_seen, ctrl.workers());
    }
  }
  EXPECT_GT(max_workers_seen, 1) << "controller never grew the pipeline";
  EXPECT_GT(ctrl.resizes(), 0);
  EXPECT_EQ(low_windows, 2)
      << "stall fraction never converged below target (last "
      << ctrl.last_stall_frac() << " vs " << a.stall_target << ")";
  EXPECT_LT(ctrl.last_stall_frac(), a.stall_target);
}

}  // namespace
}  // namespace dlrm
