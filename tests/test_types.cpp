// Unit and property tests for the low-precision numeric types
// (bf16 / fp16 / fp24 / Split-SGD splitting).
#include "common/types.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace dlrm {
namespace {

TEST(Bf16, ExactValuesRoundTrip) {
  // Values exactly representable in bf16 survive a round trip bit-for-bit.
  const float values[] = {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 128.0f, 1.5f};
  for (float v : values) {
    EXPECT_EQ(v, bf16_to_f32(f32_to_bf16_rne(v))) << v;
    EXPECT_EQ(v, bf16_to_f32(f32_to_bf16_trunc(v))) << v;
  }
}

TEST(Bf16, RneRoundsToNearest) {
  // 1.0 + 2^-8 is exactly halfway between bf16 neighbours 1.0 and 1.0078125;
  // RNE must choose the even mantissa (1.0).
  const float halfway = 1.0f + 0x1.0p-8f;
  EXPECT_EQ(1.0f, bf16_to_f32(f32_to_bf16_rne(halfway)));
  // Slightly above halfway rounds up.
  const float above = 1.0f + 0x1.1p-8f;
  EXPECT_EQ(1.0f + 0x1.0p-7f, bf16_to_f32(f32_to_bf16_rne(above)));
  // Truncation always rounds towards zero.
  EXPECT_EQ(1.0f, bf16_to_f32(f32_to_bf16_trunc(above)));
}

TEST(Bf16, RelativeErrorBound) {
  // bf16 has 8 mantissa bits including the implicit one: relative error of
  // RNE conversion is at most 2^-8 for normal values.
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const float v = rng.uniform(-1e6f, 1e6f);
    if (std::fabs(v) < 1e-30f) continue;
    const float r = bf16_to_f32(f32_to_bf16_rne(v));
    EXPECT_LE(std::fabs(r - v) / std::fabs(v), 0x1.0p-8f) << v;
  }
}

TEST(Bf16, NanAndInfHandled) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isnan(bf16_to_f32(f32_to_bf16_rne(nan))));
  EXPECT_EQ(inf, bf16_to_f32(f32_to_bf16_rne(inf)));
  EXPECT_EQ(-inf, bf16_to_f32(f32_to_bf16_rne(-inf)));
}

TEST(Bf16, ExhaustiveRoundTripAllBitPatterns) {
  // Every bf16 bit pattern — normals, subnormals, ±0, ±inf, and every NaN
  // payload — widens to fp32 and converts back to the identical bits, for
  // both the RNE and the truncating conversion.
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const std::uint16_t h = static_cast<std::uint16_t>(bits);
    EXPECT_EQ(f32_to_bf16_rne(bf16_to_f32(h)), h) << std::hex << bits;
    EXPECT_EQ(f32_to_bf16_trunc(bf16_to_f32(h)), h) << std::hex << bits;
  }
}

TEST(Bf16, NanPayloadHandling) {
  // Payload in the top 7 mantissa bits survives the conversion.
  const float payload_nan = std::bit_cast<float>(0x7FA50000u);
  EXPECT_EQ(f32_to_bf16_rne(payload_nan), 0x7FA5u);
  EXPECT_EQ(f32_to_bf16_stochastic(payload_nan, 0xFFFFu), 0x7FA5u);
  // Sign of the NaN is preserved.
  const float neg_nan = std::bit_cast<float>(0xFFA50000u);
  EXPECT_EQ(f32_to_bf16_rne(neg_nan), 0xFFA5u);
  // A NaN whose payload lives only in the discarded low bits must be quieted
  // (0x7F80 would read back as +inf).
  const float low_nan = std::bit_cast<float>(0x7F800001u);
  EXPECT_EQ(f32_to_bf16_rne(low_nan), 0x7FC0u);
  EXPECT_TRUE(std::isnan(bf16_to_f32(f32_to_bf16_rne(low_nan))));
  const float neg_low_nan = std::bit_cast<float>(0xFF800001u);
  EXPECT_EQ(f32_to_bf16_rne(neg_low_nan), 0xFFC0u);
}

TEST(Bf16, InfinityAndOverflow) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(f32_to_bf16_rne(inf), 0x7F80u);
  EXPECT_EQ(f32_to_bf16_rne(-inf), 0xFF80u);
  // The largest finite fp32 overflows the bf16 exponent under RNE -> ±inf.
  const float max_f32 = std::numeric_limits<float>::max();
  EXPECT_EQ(f32_to_bf16_rne(max_f32), 0x7F80u);
  EXPECT_EQ(f32_to_bf16_rne(-max_f32), 0xFF80u);
  // The largest bf16-representable value stays finite.
  const float max_bf16 = bf16_to_f32(0x7F7Fu);
  EXPECT_EQ(f32_to_bf16_rne(max_bf16), 0x7F7Fu);
}

TEST(Bf16, SubnormalsRoundCorrectly) {
  // Smallest positive bf16 subnormal is 2^-133 (mantissa ulp at the minimum
  // exponent); fp32 values round onto that grid like any other.
  const float min_sub = bf16_to_f32(0x0001u);
  EXPECT_EQ(f32_to_bf16_rne(min_sub), 0x0001u);
  // Halfway between 0 and the smallest subnormal: RNE ties to even (zero).
  EXPECT_EQ(f32_to_bf16_rne(min_sub * 0.5f), 0x0000u);
  // Just above halfway rounds up to the subnormal.
  EXPECT_EQ(f32_to_bf16_rne(min_sub * 0.75f), 0x0001u);
  // Signed zero is preserved exactly.
  EXPECT_EQ(f32_to_bf16_rne(-0.0f), 0x8000u);
  EXPECT_EQ(f32_to_bf16_rne(0.0f), 0x0000u);
  // Largest fp32 subnormal rounds to the bf16 subnormal/normal boundary.
  const float big_sub = std::bit_cast<float>(0x007FFFFFu);
  const float r = bf16_to_f32(f32_to_bf16_rne(big_sub));
  EXPECT_NEAR(r / big_sub, 1.0, 0x1.0p-7);
}

TEST(Bf16, BulkConvertersMatchScalar) {
  Rng rng(21);
  const std::int64_t n = 1000;
  std::vector<float> src(static_cast<std::size_t>(n));
  for (auto& v : src) v = rng.uniform(-1e3f, 1e3f);
  std::vector<bf16> mid(static_cast<std::size_t>(n));
  std::vector<float> back(static_cast<std::size_t>(n));
  f32_to_bf16_n(src.data(), mid.data(), n);
  bf16_to_f32_n(mid.data(), back.data(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(mid[static_cast<std::size_t>(i)].bits, f32_to_bf16_rne(src[static_cast<std::size_t>(i)]));
    EXPECT_EQ(back[static_cast<std::size_t>(i)],
              bf16_to_f32(f32_to_bf16_rne(src[static_cast<std::size_t>(i)])));
  }
}

TEST(Fp16, KnownValues) {
  EXPECT_EQ(f32_to_f16_rne(0.0f), 0x0000u);
  EXPECT_EQ(f32_to_f16_rne(1.0f), 0x3C00u);
  EXPECT_EQ(f32_to_f16_rne(-2.0f), 0xC000u);
  EXPECT_EQ(f32_to_f16_rne(65504.0f), 0x7BFFu);  // max finite half
  EXPECT_EQ(f32_to_f16_rne(65536.0f), 0x7C00u);  // overflow -> inf
  EXPECT_EQ(f16_to_f32(0x3C00u), 1.0f);
  EXPECT_EQ(f16_to_f32(0x7C00u), std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isnan(f16_to_f32(0x7E00u)));
}

TEST(Fp16, SubnormalsRoundTrip) {
  // Smallest positive subnormal half is 2^-24.
  EXPECT_EQ(f32_to_f16_rne(0x1.0p-24f), 0x0001u);
  EXPECT_EQ(f16_to_f32(0x0001u), 0x1.0p-24f);
  // Largest subnormal.
  EXPECT_EQ(f16_to_f32(0x03FFu), 0x1.FF8p-15f);
  EXPECT_EQ(f32_to_f16_rne(0x1.FF8p-15f), 0x03FFu);
  // Values below half the smallest subnormal underflow to zero.
  EXPECT_EQ(f32_to_f16_rne(0x1.0p-26f), 0x0000u);
}

TEST(Fp16, RoundTripThroughAllBitPatterns) {
  // Every finite fp16 value converts to fp32 and back to the same bits.
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const std::uint16_t h = static_cast<std::uint16_t>(bits);
    const std::uint16_t exp = (h >> 10) & 0x1Fu;
    if (exp == 0x1Fu) continue;  // inf/NaN
    EXPECT_EQ(f32_to_f16_rne(f16_to_f32(h)), h) << std::hex << bits;
  }
}

TEST(Fp16, RelativeErrorBound) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const float v = rng.uniform(-1000.0f, 1000.0f);
    if (std::fabs(v) < 1e-3f) continue;
    const float r = f16_to_f32(f32_to_f16_rne(v));
    EXPECT_LE(std::fabs(r - v) / std::fabs(v), 0x1.0p-11f) << v;
  }
}

TEST(Fp24, GridHasLow8BitsZero) {
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const float v = rng.uniform(-1e4f, 1e4f);
    const float r = f32_to_f24_rne(v);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(r) & 0xFFu, 0u) << v;
    if (std::fabs(v) > 1e-6f) {
      EXPECT_LE(std::fabs(r - v) / std::fabs(v), 0x1.0p-16f) << v;
    }
  }
}

TEST(Fp24, IdempotentOnGrid) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const float v = f32_to_f24_rne(rng.uniform(-10.0f, 10.0f));
    EXPECT_EQ(v, f32_to_f24_rne(v));
  }
}

TEST(Split, ExactReconstruction) {
  // Core Split-SGD invariant: hi|lo is the original fp32, bitwise.
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    const float v = std::bit_cast<float>(rng.next_u32());
    if (std::isnan(v)) continue;
    const SplitF32 s = split_f32(v);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(combine_f32(s.hi, s.lo)),
              std::bit_cast<std::uint32_t>(v));
    // The hi half interpreted as bf16 equals the truncated conversion.
    EXPECT_EQ(s.hi, f32_to_bf16_trunc(v));
  }
}

TEST(Split, PartialLowBitsMasksCorrectly) {
  const float v = 1.2345678f;
  const SplitF32 s = split_f32(v);
  // 16 bits keeps everything.
  EXPECT_EQ(combine_f32_partial(s.hi, s.lo, 16), v);
  // 0 bits reduces to the truncated bf16 value.
  EXPECT_EQ(combine_f32_partial(s.hi, s.lo, 0), bf16_to_f32(s.hi));
  // 8 bits: closer to v than 0 bits, no further than 16 bits.
  const float p8 = combine_f32_partial(s.hi, s.lo, 8);
  EXPECT_LE(std::fabs(p8 - v), std::fabs(bf16_to_f32(s.hi) - v));
}

TEST(StochasticRounding, Bf16MeanIsUnbiased) {
  // Averaged over many random roundings, the stochastic bf16 value of x
  // should approach x (unbiasedness) — the key property that lets tiny
  // gradient updates accumulate instead of being lost to truncation.
  Rng rng(99);
  const float x = 1.0f + 0x1.8p-9f;  // strictly between two bf16 neighbours
  double sum = 0.0;
  const int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    sum += bf16_to_f32(f32_to_bf16_stochastic(x, rng.next_u16()));
  }
  const double mean = sum / kTrials;
  EXPECT_NEAR(mean, x, 2e-5);
}

TEST(StochasticRounding, RoundsToNeighbours) {
  Rng rng(100);
  const float x = 2.7182818f;
  const float lo = bf16_to_f32(f32_to_bf16_trunc(x));
  const float hi = std::bit_cast<float>(
      ((static_cast<std::uint32_t>(f32_to_bf16_trunc(x)) + 1) << 16));
  for (int i = 0; i < 1000; ++i) {
    const float r = bf16_to_f32(f32_to_bf16_stochastic(x, rng.next_u16()));
    EXPECT_TRUE(r == lo || r == hi) << r;
  }
}

TEST(StochasticRounding, Fp16ExactValuesStable) {
  // Values already on the fp16 grid are never perturbed.
  Rng rng(101);
  for (int i = 0; i < 2000; ++i) {
    const float v = f16_to_f32(f32_to_f16_rne(rng.uniform(-100.f, 100.f)));
    EXPECT_EQ(f32_to_f16_stochastic(v, rng.next_u16()), f32_to_f16_rne(v));
  }
}

// Parameterized sweep: conversions are monotone non-decreasing on positives.
class MonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityTest, ConversionsAreMonotone) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    float a = rng.uniform(0.0f, 1e5f);
    float b = rng.uniform(0.0f, 1e5f);
    if (a > b) std::swap(a, b);
    EXPECT_LE(bf16_to_f32(f32_to_bf16_rne(a)), bf16_to_f32(f32_to_bf16_rne(b)));
    EXPECT_LE(f32_to_f24_rne(a), f32_to_f24_rne(b));
    if (b < 60000.0f) {
      EXPECT_LE(f16_to_f32(f32_to_f16_rne(a)), f16_to_f32(f32_to_f16_rne(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dlrm
