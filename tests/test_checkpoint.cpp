// Tier-1 tests for the sharded checkpoint/restore subsystem (src/ckpt):
// container-format primitives, canonical embedding-row export/import for
// every storage precision, single-process save/restore bit-exactness, the
// save_every / eval-point hooks, RNG stream round-trip through the
// manifest, and the corruption/mismatch negative paths (truncated file,
// flipped byte, version mismatch, model/optimizer mismatch). The full
// multi-rank resume-parity matrix lives in test_checkpoint_resume (slow).
#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"

namespace dlrm {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dlrm_ckpt_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::vector<unsigned char>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "ckpt-tiny";
  c.minibatch = 32;
  c.global_batch_strong = 32;
  c.local_batch_weak = 8;
  c.pooling = 2;
  c.dim = 8;
  c.table_rows = {120, 90, 60, 150};
  c.bottom_mlp = {6, 16, 8};
  c.top_mlp = {16, 8, 1};
  c.validate();
  return c;
}

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

TEST(CkptFormat, Crc32KnownValue) {
  EXPECT_EQ(ckpt::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(ckpt::crc32("", 0), 0u);
}

TEST(CkptFormat, ByteWriterReaderRoundTrip) {
  ckpt::ByteWriter w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f32(1.5f);
  w.f64(-2.25);
  w.str("hello");
  w.vec_i64({3, 1, 4, 1, 5});

  ckpt::ByteReader r(w.data(), w.size(), "test");
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.vec_i64(), (std::vector<std::int64_t>{3, 1, 4, 1, 5}));
  EXPECT_EQ(r.remaining(), 0u);
  // Reading past the end is a contract violation, not UB.
  EXPECT_THROW(r.u8(), CheckError);
}

TEST(CkptFormat, FileRoundTripAndMissingSection) {
  const std::string dir = test_dir("format");
  fs::create_directories(dir);
  const std::string path = dir + "/f.dlrmckpt";
  {
    ckpt::FileWriter w(path);
    ckpt::ByteWriter a, b;
    a.u32(11);
    b.str("payload");
    w.section("alpha", a);
    w.section("beta", b);
    w.finish();
  }
  ckpt::FileReader r(path);
  EXPECT_TRUE(r.has("alpha"));
  EXPECT_TRUE(r.has("beta"));
  EXPECT_FALSE(r.has("gamma"));
  EXPECT_EQ(r.open("alpha").u32(), 11u);
  EXPECT_EQ(r.open("beta").str(), "payload");
  EXPECT_THROW(r.open("gamma"), CheckError);
}

TEST(CkptFormat, UnfinishedWriterLeavesNoFile) {
  const std::string dir = test_dir("unfinished");
  fs::create_directories(dir);
  const std::string path = dir + "/f.dlrmckpt";
  {
    ckpt::FileWriter w(path);
    ckpt::ByteWriter a;
    a.u32(1);
    w.section("alpha", a);
    // no finish(): simulated crash mid-write
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// Canonical embedding-row encoding
// ---------------------------------------------------------------------------

TEST(CkptEmbedding, ExportImportRoundTripAllPrecisions) {
  for (EmbedPrecision prec :
       {EmbedPrecision::kFp32, EmbedPrecision::kBf16Split,
        EmbedPrecision::kBf16Split8, EmbedPrecision::kFp16Stochastic,
        EmbedPrecision::kFp24}) {
    SCOPED_TRACE(to_string(prec));
    EmbeddingTable src(50, 8, prec);
    Rng rng(123);
    src.init(rng, 1.0f);

    const std::int64_t rb = src.checkpoint_row_bytes();
    std::vector<unsigned char> payload(static_cast<std::size_t>(50 * rb));
    src.export_rows(0, 50, payload.data());

    EmbeddingTable dst(50, 8, prec);
    dst.import_rows(0, 50, payload.data());
    // Re-export compares the complete storage state (hi + hidden lo
    // halves), not just the decoded model weights.
    std::vector<unsigned char> again(payload.size());
    dst.export_rows(0, 50, again.data());
    EXPECT_EQ(payload, again);
  }
}

TEST(CkptEmbedding, EncodingIsShardGeometryFree) {
  // A shard view's export must be byte-identical to the matching slice of
  // the full table's export — that is what makes resharding-on-restore a
  // pure copy.
  EmbeddingTable full(60, 8, EmbedPrecision::kBf16Split);
  Rng rng(7);
  full.init(rng, 1.0f);

  EmbeddingTable shard(20, 8, EmbedPrecision::kBf16Split, /*row_begin=*/15,
                       /*global_rows=*/60);
  Rng rng2(7);
  shard.init(rng2, 1.0f);

  const std::int64_t rb = full.checkpoint_row_bytes();
  std::vector<unsigned char> whole(static_cast<std::size_t>(60 * rb));
  full.export_rows(0, 60, whole.data());
  std::vector<unsigned char> piece(static_cast<std::size_t>(20 * rb));
  shard.export_rows(0, 20, piece.data());
  EXPECT_TRUE(std::equal(piece.begin(), piece.end(), whole.begin() + 15 * rb));
}

// ---------------------------------------------------------------------------
// Single-process save/restore
// ---------------------------------------------------------------------------

// Trains 3 steps, snapshots, trains 3 more recording per-step losses; a
// *fresh* trainer (different model init seed, so nothing can match by
// accident) restored from the snapshot must reproduce the continuation
// bit-for-bit.
void expect_bitexact_resume(Precision mlp_prec, EmbedPrecision embed_prec,
                            const std::string& dirname) {
  DlrmConfig c = tiny_config();
  c.mlp_precision = mlp_prec;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir = test_dir(dirname);

  ModelOptions mo;
  mo.embed_precision = embed_prec;
  std::vector<double> want;
  {
    DlrmModel model(c, mo, 42);
    Trainer trainer(model, data, {.lr = 0.1f, .batch = c.minibatch});
    trainer.train(3);
    trainer.save_checkpoint(dir);
    for (int i = 0; i < 3; ++i) want.push_back(trainer.train(1));
  }
  {
    DlrmModel model(c, mo, 999);  // different init — restore must overwrite
    Trainer trainer(model, data, {.lr = 0.5f, .batch = c.minibatch});
    ASSERT_TRUE(trainer.resume_from(dir));
    EXPECT_EQ(trainer.iterations_done(), 3);
    EXPECT_EQ(trainer.lr(), 0.1f);  // saved lr wins over the ctor's
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(trainer.train(1), want[static_cast<std::size_t>(i)])
          << "post-restore step " << i;
    }
  }
}

TEST(CkptTrainer, ResumeBitExactFp32) {
  expect_bitexact_resume(Precision::kFp32, EmbedPrecision::kFp32, "sp_fp32");
}

TEST(CkptTrainer, ResumeBitExactBf16SplitSgd) {
  // The hard case: Split-SGD master weights live half in the params and
  // half in optimizer/table lo state; all of it must survive the round
  // trip or the continuation drifts.
  expect_bitexact_resume(Precision::kBf16, EmbedPrecision::kBf16Split,
                         "sp_bf16");
}

TEST(CkptTrainer, TrailingSlashDirSurvivesStaleShardGc) {
  // remove_stale_shards compares filenames; a non-canonical dir spelling
  // (trailing slash) must not make it delete the live shard file.
  DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir = test_dir("trailing_slash") + "/";
  DlrmModel model(c, {}, 42);
  Trainer trainer(model, data, {.lr = 0.1f, .batch = c.minibatch});
  trainer.train(2);
  trainer.save_checkpoint(dir);
  trainer.train(2);
  trainer.save_checkpoint(dir);  // GC pass runs with the slash-y dir
  DlrmModel model2(c, {}, 999);
  Trainer trainer2(model2, data, {.lr = 0.1f, .batch = c.minibatch});
  ASSERT_TRUE(trainer2.resume_from(dir));
  EXPECT_EQ(trainer2.iterations_done(), 4);
}

TEST(CkptTrainer, SaveEveryWritesPeriodicSnapshots) {
  DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir = test_dir("save_every");
  DlrmModel model(c, {}, 42);
  Trainer trainer(model, data, {.lr = 0.1f, .batch = c.minibatch});
  trainer.set_checkpointing(dir, /*save_every=*/2);
  trainer.train(5);
  ASSERT_TRUE(ckpt::CheckpointReader::exists(dir));
  // Saves fired at iterations 2 and 4; the snapshot holds the last one.
  EXPECT_EQ(ckpt::CheckpointReader(dir).step(), 4);
}

TEST(CkptTrainer, EvalPointCheckpoints) {
  DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir = test_dir("eval_point");
  DlrmModel model(c, {}, 42);
  Trainer trainer(model, data, {.lr = 0.1f, .batch = c.minibatch});
  trainer.set_checkpointing(dir);  // no periodic saves: eval points only
  trainer.train_with_eval(/*train_samples=*/4 * c.minibatch,
                          /*eval_samples=*/c.minibatch, /*eval_points=*/2);
  ASSERT_TRUE(ckpt::CheckpointReader::exists(dir));
  // The last eval point sits at the end of the training stream.
  EXPECT_EQ(ckpt::CheckpointReader(dir).step(), 4);
}

TEST(CkptTrainer, RngStreamsRoundTripThroughManifest) {
  const std::string dir = test_dir("rng");
  // Mid-stream snapshot, including a cached Box–Muller half.
  Rng stream(321);
  for (int i = 0; i < 101; ++i) (void)stream.next_u64();
  (void)stream.gaussian();  // leaves the second half cached
  ckpt::TrainerState state;
  state.step = 1;
  state.lr = 0.1f;
  state.rng_streams.push_back(stream.state());

  Mlp bottom({4, 4}, Activation::kRelu, Activation::kRelu);
  Mlp top({4, 1}, Activation::kRelu, Activation::kNone);
  Rng init(1);
  bottom.init(init);
  top.init(init);
  SgdFp32 opt;
  ckpt::CheckpointWriter writer(dir, 0, state.step);
  writer.write_shards({}, {});
  writer.write_manifest(ckpt::ModelConfigKey{}, state,
                        ShardingPlan::round_robin({16}, 1), bottom, top, opt);

  ckpt::CheckpointReader reader(dir);
  ASSERT_EQ(reader.rng_streams().size(), 1u);
  Rng restored(0);
  restored.set_state(reader.rng_streams()[0]);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.gaussian(), stream.gaussian());
    EXPECT_EQ(restored.next_u64(), stream.next_u64());
  }
}

// ---------------------------------------------------------------------------
// Corruption and mismatch negatives
// ---------------------------------------------------------------------------

class CkptNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = tiny_config();
    data_ = std::make_unique<RandomDataset>(c_.bottom_mlp.front(),
                                            c_.table_rows, c_.pooling, 11);
    dir_ = test_dir("negative");
    DlrmModel model(c_, {}, 42);
    Trainer trainer(model, *data_, {.lr = 0.1f, .batch = c_.minibatch});
    trainer.train(2);
    trainer.save_checkpoint(dir_);
  }

  /// Restore attempt with a fresh trainer; the matrix tests prove the happy
  /// path, here we only care how it fails.
  void expect_resume_error(const std::string& needle) {
    DlrmModel model(c_, {}, 42);
    Trainer trainer(model, *data_, {.lr = 0.1f, .batch = c_.minibatch});
    try {
      trainer.resume_from(dir_);
      FAIL() << "resume_from should have thrown (wanted '" << needle << "')";
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  }

  DlrmConfig c_;
  std::unique_ptr<RandomDataset> data_;
  std::string dir_;
};

TEST_F(CkptNegativeTest, MissingDirectoryIsFreshStart) {
  DlrmModel model(c_, {}, 42);
  Trainer trainer(model, *data_, {.lr = 0.1f, .batch = c_.minibatch});
  EXPECT_FALSE(trainer.resume_from(dir_ + "_nonexistent"));
  EXPECT_EQ(trainer.iterations_done(), 0);
}

TEST_F(CkptNegativeTest, TruncatedManifestFails) {
  const std::string path = ckpt::manifest_path(dir_);
  auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 32u);
  bytes.resize(bytes.size() - 17);
  write_file(path, bytes);
  expect_resume_error("truncated");
}

TEST_F(CkptNegativeTest, FlippedByteFailsCrc) {
  // Offset 50 sits inside the "meta" payload (16-byte header + 20-byte
  // section frame + >30-byte payload), so the reader must report a CRC
  // mismatch, not a parse error.
  const std::string path = ckpt::manifest_path(dir_);
  auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[50] ^= 0x40;
  write_file(path, bytes);
  expect_resume_error("CRC mismatch");
}

TEST_F(CkptNegativeTest, FlippedByteInShardFileFailsCrc) {
  // The fixture saved after train(2), so the snapshot is step 2.
  const std::string path = ckpt::rank_file_path(dir_, 0, 2);
  auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() - 10] ^= 0x01;  // inside the last shard's row payload
  write_file(path, bytes);
  expect_resume_error("CRC mismatch");
}

TEST_F(CkptNegativeTest, StaleManifestCannotPairWithNewerShards) {
  // Kill-between-renames scenario: an old manifest must never silently
  // restore against a newer save's shard files. Rank files are
  // step-suffixed and GC'd only after the new manifest commits, so the
  // resurrected old manifest points at shard files that no longer exist.
  const std::string manifest = ckpt::manifest_path(dir_);
  const auto old_manifest = read_file(manifest);
  {
    DlrmModel model(c_, {}, 42);
    Trainer trainer(model, *data_, {.lr = 0.1f, .batch = c_.minibatch});
    ASSERT_TRUE(trainer.resume_from(dir_));
    trainer.train(2);
    trainer.save_checkpoint(dir_);  // step 4: GCs the step-2 rank file
  }
  EXPECT_FALSE(fs::exists(ckpt::rank_file_path(dir_, 0, 2)));
  write_file(manifest, old_manifest);  // "torn" directory: old manifest back
  expect_resume_error("cannot open checkpoint file");
}

TEST_F(CkptNegativeTest, HugeSectionLengthFails) {
  // A corrupt 64-bit payload length near UINT64_MAX must not overflow the
  // bounds check into an out-of-bounds read.
  ckpt::ByteWriter file;
  file.bytes(ckpt::kMagic, sizeof(ckpt::kMagic));
  file.u32(ckpt::kFormatVersion);
  file.u32(0);
  file.str("meta");
  file.u64(0xFFFFFFFFFFFFFFFFull);  // declared payload length
  file.u32(0);                      // crc
  const std::string path = ckpt::manifest_path(dir_);
  write_file(path,
             std::vector<unsigned char>(file.data(), file.data() + file.size()));
  expect_resume_error("truncated");
}

TEST_F(CkptNegativeTest, BadMagicFails) {
  const std::string path = ckpt::manifest_path(dir_);
  auto bytes = read_file(path);
  bytes[0] ^= 0xFF;
  write_file(path, bytes);
  expect_resume_error("bad magic");
}

TEST_F(CkptNegativeTest, VersionMismatchFails) {
  const std::string path = ckpt::manifest_path(dir_);
  auto bytes = read_file(path);
  bytes[8] = 99;  // the u32 version field follows the 8-byte magic
  write_file(path, bytes);
  expect_resume_error("version");
}

TEST_F(CkptNegativeTest, ModelConfigMismatchFails) {
  DlrmConfig other = c_;
  other.table_rows[2] = 61;  // one table grew a row
  other.validate();
  RandomDataset data(other.bottom_mlp.front(), other.table_rows,
                     other.pooling, 11);
  DlrmModel model(other, {}, 42);
  Trainer trainer(model, data, {.lr = 0.1f, .batch = other.minibatch});
  try {
    trainer.resume_from(dir_);
    FAIL() << "resume into a different model should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("table rows differ"),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST_F(CkptNegativeTest, GlobalBatchMismatchFails) {
  DlrmModel model(c_, {}, 42);
  Trainer trainer(model, *data_, {.lr = 0.1f, .batch = c_.minibatch * 2});
  EXPECT_THROW(trainer.resume_from(dir_), CheckError);
}

TEST_F(CkptNegativeTest, OptimizerMismatchFails) {
  ckpt::CheckpointReader reader(dir_);
  SplitSgdBf16 other;  // snapshot was saved with SGD-FP32
  try {
    reader.check_optimizer(other);
    FAIL() << "optimizer mismatch should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("optimizer"), std::string::npos);
  }
}

}  // namespace
}  // namespace dlrm
