// Multi-worker sharded data pipeline, proven at the training-loop level:
// per-step losses must be bit-identical across any prefetch worker count
// and prefetch on/off, for single-process and distributed runs (even and
// uneven GN % R), in fp32 and bf16 — and the dedicated eval stream must
// leave the training pipeline completely untouched while reproducing the
// legacy reseek path's results bit-for-bit. Runs under the CI TSan pass.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/dist_trainer.hpp"
#include "core/model.hpp"

namespace dlrm {
namespace {

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};  // S = 6
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

/// Per-iteration GLOBAL losses of an R-rank run with the given pipeline
/// shape (rank 0's view; identical on every rank by construction).
std::vector<double> distributed_losses(const DlrmConfig& c,
                                       const Dataset& data, std::int64_t gn,
                                       int ranks, int iters, bool prefetch,
                                       int workers) {
  std::vector<double> out(static_cast<std::size_t>(iters), 0.0);
  const DlrmConfig& cc = c;
  run_ranks(ranks, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = gn;
    opts.seed = 77;
    opts.prefetch = prefetch;
    opts.prefetch_depth = 2;
    opts.prefetch_workers = workers;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    for (int i = 0; i < iters; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) out[static_cast<std::size_t>(i)] = loss;
    }
  });
  return out;
}

// ranks, global batch (64 % R may be != 0), precision
using WorkerCase = std::tuple<int, std::int64_t, Precision>;

class PrefetchWorkerParityTest : public ::testing::TestWithParam<WorkerCase> {
};

// The acceptance matrix: losses bit-identical across workers ∈ {1,2,4} and
// prefetch off, for R ∈ {1,2,4} (plus an uneven GN % R geometry), fp32 and
// bf16. EXPECT_EQ on doubles — exact bits, not a tolerance.
TEST_P(PrefetchWorkerParityTest, LossesBitIdenticalAcrossWorkerCounts) {
  const auto [R, GN, precision] = GetParam();
  DlrmConfig c = tiny_config();
  c.mlp_precision = precision;
  const int iters = 5;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  const std::vector<double> ref =
      distributed_losses(c, data, GN, R, iters, /*prefetch=*/false,
                         /*workers=*/1);
  for (int workers : {1, 2, 4}) {
    const std::vector<double> got =
        distributed_losses(c, data, GN, R, iters, /*prefetch=*/true, workers);
    for (int i = 0; i < iters; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)])
          << "workers " << workers << " iteration " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefetchWorkerParityTest,
    ::testing::Values(WorkerCase{1, 64, Precision::kFp32},
                      WorkerCase{2, 64, Precision::kFp32},
                      WorkerCase{4, 64, Precision::kFp32},
                      WorkerCase{1, 64, Precision::kBf16},
                      WorkerCase{2, 64, Precision::kBf16},
                      WorkerCase{4, 64, Precision::kBf16},
                      // Uneven local batches: GN % R != 0 (chunk-convention
                      // slices through the sharded workers).
                      WorkerCase{2, 33, Precision::kFp32},
                      WorkerCase{2, 33, Precision::kBf16}),
    [](const ::testing::TestParamInfo<WorkerCase>& tpi) {
      return "R" + std::to_string(std::get<0>(tpi.param)) + "_GN" +
             std::to_string(std::get<1>(tpi.param)) + "_" +
             std::string(to_string(std::get<2>(tpi.param)));
    });

// The single-process Trainer rides the same engine (MiniBatch stream):
// training losses must be bit-identical with the pipeline off or on at any
// worker count.
TEST(TrainerPipeline, LossesBitIdenticalAcrossWorkerCounts) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const int iters = 6;

  auto losses = [&](bool prefetch, int workers) {
    DlrmModel model(c, {}, 77);
    Trainer trainer(model, data,
                    {.lr = 0.05f,
                     .batch = c.minibatch,
                     .prefetch = prefetch,
                     .prefetch_depth = 2,
                     .prefetch_workers = workers});
    std::vector<double> out;
    for (int i = 0; i < iters; ++i) out.push_back(trainer.train(1));
    return out;
  };

  const std::vector<double> ref = losses(false, 1);
  for (int workers : {1, 2, 4}) {
    const std::vector<double> got = losses(true, workers);
    for (int i = 0; i < iters; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)])
          << "workers " << workers << " iteration " << i;
    }
  }
}

/// train_with_eval results for one eval-stream mode (rank 0's view).
std::vector<EvalPoint> eval_points(const DlrmConfig& c, const Dataset& data,
                                   bool dedicated) {
  std::vector<EvalPoint> out;
  const DlrmConfig& cc = c;
  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = 64;
    opts.seed = 77;
    opts.prefetch_workers = 2;
    opts.dedicated_eval_stream = dedicated;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    const auto points = trainer.train_with_eval(/*train_samples=*/64 * 6,
                                                /*eval_samples=*/128,
                                                /*eval_points=*/3);
    if (comm.rank() == 0) out = points;
  });
  return out;
}

// The dedicated eval pipeline must change nothing about the numbers: same
// AUC, same per-interval train losses, bit for bit, as the legacy path that
// streams eval batches through the training pipeline.
TEST(DedicatedEvalStream, TrainWithEvalBitIdenticalToLegacyReseekPath) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  const std::vector<EvalPoint> legacy = eval_points(c, data, false);
  const std::vector<EvalPoint> dedicated = eval_points(c, data, true);
  ASSERT_EQ(legacy.size(), dedicated.size());
  for (std::size_t p = 0; p < legacy.size(); ++p) {
    EXPECT_EQ(dedicated[p].epoch_fraction, legacy[p].epoch_fraction);
    EXPECT_EQ(dedicated[p].train_loss, legacy[p].train_loss) << "point " << p;
    EXPECT_EQ(dedicated[p].auc, legacy[p].auc) << "point " << p;
  }
}

// An eval pass must perform ZERO reseeks of the training stream and leave
// its cursor untouched — and training after the eval must continue exactly
// as if the eval never happened. The legacy path is the ablation: it pays
// a reseek (flush + cold refill) on the shared pipeline.
TEST(DedicatedEvalStream, EvalPassLeavesTrainingPipelineUntouched) {
  const DlrmConfig c = tiny_config();
  const DlrmConfig& cc = c;
  const std::int64_t GN = 64;
  const int pre_iters = 3, post_iters = 3;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  // Uninterrupted reference losses over pre+post iterations.
  const std::vector<double> ref = distributed_losses(
      c, data, GN, 2, pre_iters + post_iters, /*prefetch=*/true, 2);

  for (bool dedicated : {true, false}) {
    std::vector<double> got(static_cast<std::size_t>(pre_iters + post_iters),
                            0.0);
    std::int64_t train_reseeks = -1, cursor_after_eval = -1;
    bool eval_stream_built = false;
    run_ranks(2, 2, [&](ThreadComm& comm) {
      DistributedTrainerOptions opts;
      opts.lr = 0.05f;
      opts.global_batch = GN;
      opts.seed = 77;
      opts.prefetch_workers = 2;
      opts.dedicated_eval_stream = dedicated;
      auto backend = QueueBackend::ccl_like(2);
      DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
      for (int i = 0; i < pre_iters; ++i) {
        const double loss = trainer.train(1);
        if (comm.rank() == 0) got[static_cast<std::size_t>(i)] = loss;
      }
      trainer.evaluate(GN * 100, 128);
      if (comm.rank() == 0) {
        train_reseeks = trainer.prefetch().reseeks();
        cursor_after_eval = trainer.prefetch().next_iter();
        eval_stream_built = trainer.eval_prefetch() != nullptr;
      }
      for (int i = 0; i < post_iters; ++i) {
        const double loss = trainer.train(1);
        if (comm.rank() == 0) {
          got[static_cast<std::size_t>(pre_iters + i)] = loss;
        }
      }
    });
    // Train losses are unaffected by the eval pass on BOTH paths (the
    // legacy reseek restores the exact cursor; the dedicated stream never
    // moves it) — the difference is the pipeline-state cost.
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], ref[i]) << (dedicated ? "dedicated" : "legacy")
                                << " iteration " << i;
    }
    if (dedicated) {
      EXPECT_EQ(train_reseeks, 0);  // the tentpole guarantee
      EXPECT_EQ(cursor_after_eval, pre_iters);  // cursor untouched
      EXPECT_TRUE(eval_stream_built);
    } else {
      // Legacy: the eval pass dragged the shared pipeline to the eval
      // range (one reseek here, a second when training resumes).
      EXPECT_GT(train_reseeks, 0);
      EXPECT_EQ(cursor_after_eval, 102);  // GN*100/GN + ceil(128/64) batches
      EXPECT_FALSE(eval_stream_built);
    }
  }
}

}  // namespace
}  // namespace dlrm
