// Tests for the dense optimizers, in particular the Split-SGD-BF16 bit
// exactness property (paper Sect. VII).
#include "optim/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dlrm {
namespace {

struct Params {
  Tensor<float> p, g;
  explicit Params(std::int64_t n) : p({n}), g({n}) {}
  ParamSlot slot() { return {p.data(), g.data(), p.size()}; }
};

TEST(SgdFp32, BasicStep) {
  Params x(4);
  x.p.fill(1.0f);
  x.g.fill(0.5f);
  SgdFp32 opt;
  opt.attach({x.slot()});
  opt.step(0.1f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(x.p[i], 0.95f);
}

TEST(SplitSgd, MasterTrajectoryBitExactVsFp32) {
  // Run fp32 SGD and Split-SGD with identical gradient streams; the hidden
  // split master must equal the fp32 weights bit for bit at every step.
  const std::int64_t n = 257;
  Rng rng(1);
  Params ref(n), split(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = rng.uniform(-2.0f, 2.0f);
    ref.p[i] = v;
    split.p[i] = v;
  }
  SgdFp32 ref_opt;
  ref_opt.attach({ref.slot()});
  SplitSgdBf16 split_opt(16);
  split_opt.attach({split.slot()});

  for (int iter = 0; iter < 100; ++iter) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float g = rng.uniform(-0.1f, 0.1f);
      ref.g[i] = g;
      split.g[i] = g;
    }
    ref_opt.step(0.01f);
    split_opt.step(0.01f);
    // The split param is the bf16 truncation of the fp32 master.
    for (std::int64_t i = 0; i < n; i += 17) {
      EXPECT_EQ(split.p[i], bf16_to_f32(f32_to_bf16_trunc(ref.p[i])))
          << "iter " << iter << " i " << i;
    }
  }
}

TEST(SplitSgd, ParamsAlwaysOnBf16Grid) {
  const std::int64_t n = 64;
  Rng rng(2);
  Params x(n);
  for (std::int64_t i = 0; i < n; ++i) x.p[i] = rng.uniform(-1.0f, 1.0f);
  SplitSgdBf16 opt;
  opt.attach({x.slot()});
  for (int iter = 0; iter < 20; ++iter) {
    for (std::int64_t i = 0; i < n; ++i) x.g[i] = rng.uniform(-1.0f, 1.0f);
    opt.step(0.05f);
    for (std::int64_t i = 0; i < n; ++i) {
      // Low 16 bits must be zero: kernels see a pure bf16 weight.
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x.p[i]) & 0xFFFFu, 0u);
    }
  }
}

TEST(SplitSgd, TinyUpdatesAccumulateUnlikePlainBf16) {
  // A gradient too small to move a bf16 value must still accumulate in the
  // hidden low bits and eventually flip the visible weight — the core reason
  // Split-SGD converges where naive bf16 SGD stalls.
  Params x(1);
  x.p[0] = 1.0f;
  SplitSgdBf16 opt;
  opt.attach({x.slot()});
  x.g[0] = 1e-4f;  // step of 1e-6 << bf16 ulp at 1.0 (≈0.0078)
  bool moved = false;
  for (int iter = 0; iter < 20000 && !moved; ++iter) {
    opt.step(0.01f);
    moved = x.p[0] != 1.0f;
  }
  EXPECT_TRUE(moved);
  // Naive bf16 rounding of each step would never move:
  float naive = 1.0f;
  for (int iter = 0; iter < 1000; ++iter) {
    naive = bf16_to_f32(f32_to_bf16_rne(naive - 0.01f * 1e-4f));
  }
  EXPECT_EQ(naive, 1.0f);
}

TEST(SplitSgd, EightLowBitsDriftFromFp32) {
  const std::int64_t n = 128;
  Rng rng(3);
  Params ref(n), s8(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = rng.uniform(-1.0f, 1.0f);
    ref.p[i] = v;
    s8.p[i] = v;
  }
  SgdFp32 ref_opt;
  ref_opt.attach({ref.slot()});
  SplitSgdBf16 s8_opt(8);
  s8_opt.attach({s8.slot()});
  for (int iter = 0; iter < 500; ++iter) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float g = rng.uniform(-0.01f, 0.01f);
      ref.g[i] = g;
      s8.g[i] = g;
    }
    ref_opt.step(0.01f);
    s8_opt.step(0.01f);
  }
  double drift = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    drift += std::fabs(ref.p[i] - s8.p[i]);
  }
  EXPECT_GT(drift, 0.0);
}

TEST(Fp24Sgd, WeightsStayOnFp24Grid) {
  const std::int64_t n = 32;
  Rng rng(4);
  Params x(n);
  for (std::int64_t i = 0; i < n; ++i) x.p[i] = rng.uniform(-3.0f, 3.0f);
  Fp24Sgd opt;
  opt.attach({x.slot()});
  for (int iter = 0; iter < 10; ++iter) {
    for (std::int64_t i = 0; i < n; ++i) x.g[i] = rng.uniform(-1.0f, 1.0f);
    opt.step(0.02f);
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(x.p[i]) & 0xFFu, 0u);
    }
  }
}

TEST(Fp16MasterSgd, ViewIsF16OfMaster) {
  const std::int64_t n = 16;
  Rng rng(5);
  Params ref(n), mixed(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = rng.uniform(-1.0f, 1.0f);
    ref.p[i] = v;
    mixed.p[i] = v;
  }
  SgdFp32 ref_opt;
  ref_opt.attach({ref.slot()});
  Fp16MasterSgd opt;
  opt.attach({mixed.slot()});
  for (int iter = 0; iter < 50; ++iter) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float g = rng.uniform(-0.1f, 0.1f);
      ref.g[i] = g;
      mixed.g[i] = g;
    }
    ref_opt.step(0.01f);
    opt.step(0.01f);
    // The master tracks fp32 exactly, the visible params are its f16 view.
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(mixed.p[i], f16_to_f32(f32_to_f16_rne(ref.p[i])));
    }
  }
}

TEST(StateBytes, CapacityAccounting) {
  // Sect. VII: Split-SGD == fp32 capacity; fp16+master == 3x fp16 model.
  const std::int64_t n = 1000;
  Params a(n), b(n), c(n), d(n);
  SgdFp32 sgd;
  sgd.attach({a.slot()});
  SplitSgdBf16 split;
  split.attach({b.slot()});
  Fp16MasterSgd f16m;
  f16m.attach({c.slot()});
  Fp24Sgd f24;
  f24.attach({d.slot()});
  EXPECT_EQ(sgd.state_bytes(), n * 4);
  EXPECT_EQ(split.state_bytes(), n * 4);  // the headline: zero overhead
  EXPECT_EQ(f16m.state_bytes(), n * 6);   // 3x the fp16 model size
  EXPECT_EQ(f24.state_bytes(), n * 3);
}

TEST(Optimizers, AttachTwiceThrows) {
  Params x(4);
  SgdFp32 opt;
  opt.attach({x.slot()});
  EXPECT_THROW(opt.attach({x.slot()}), CheckError);
}

TEST(Optimizers, MultipleSlots) {
  Params a(8), b(16);
  a.p.fill(1.0f);
  b.p.fill(2.0f);
  a.g.fill(1.0f);
  b.g.fill(1.0f);
  SgdFp32 opt;
  opt.attach({a.slot(), b.slot()});
  opt.step(0.5f);
  EXPECT_FLOAT_EQ(a.p[0], 0.5f);
  EXPECT_FLOAT_EQ(b.p[15], 1.5f);
}

}  // namespace
}  // namespace dlrm
