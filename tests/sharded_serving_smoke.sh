#!/usr/bin/env bash
# Sharded serving + admission control end-to-end smoke (ctest tier1).
#
# Three legs over a ~2-second Poisson load:
#   sharded   — 2 serving ranks, round_robin plan; --check-serving requires
#               every served score to equal a per-request offline forward on
#               the single-process snapshot, bit-for-bit (sharded parity);
#   row_split — 2 ranks with row-range shards (threshold forces splits), the
#               merge path under the same bit-exact check;
#   admission — single-process overload with a 60/40 interactive/batch mix
#               and an unreachable p99 target: batch traffic must shed,
#               interactive traffic must keep being served, and the
#               accounting must close (served + rejected + shed == offered).
set -euo pipefail

SERVE_CLI="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dlrm_sharded_serve_smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

run_leg() {
  local leg="$1"; shift
  local requests="$1"; shift
  "${SERVE_CLI}" --config=small --scale-rows=256 --scale-batch=16 \
      --qps=1000 --requests="${requests}" --fanout=4 --max-batch=32 \
      --max-wait-us=1000 --check-serving "$@" > "${WORK}/${leg}.log" || {
    echo "FAIL(${leg}): serve_cli exited nonzero" >&2
    cat "${WORK}/${leg}.log" >&2
    exit 1
  }
  grep -q '^CHECK OK' "${WORK}/${leg}.log" || {
    echo "FAIL(${leg}): serving check did not pass" >&2
    cat "${WORK}/${leg}.log" >&2
    exit 1
  }
  local json
  json="$(grep '^BENCH_JSON' "${WORK}/${leg}.log")"
  [[ -n "${json}" ]] || {
    echo "FAIL(${leg}): no BENCH_JSON row" >&2
    exit 1
  }
  echo "${json#BENCH_JSON }" > "${WORK}/${leg}.json"
  echo "leg ${leg}: $(grep '^served' "${WORK}/${leg}.log")"
}

# Bit-exact sharded parity at 2 ranks, both plan geometries.
run_leg sharded 1500 --serve-ranks=2 --serve-sharding=round_robin
python3 -c '
import json
row = json.load(open("'"${WORK}"'/sharded.json"))
assert row["serve_ranks"] == 2, row
assert row["requests"] == 1500, row
assert row["throughput_rps"] > 0, row
assert row["shed"] == 0 and row["rejected"] == 0, row
'

run_leg row_split 1500 --serve-ranks=2 --serve-sharding=row_split \
    --row-split-threshold=64
python3 -c '
import json
row = json.load(open("'"${WORK}"'/row_split.json"))
assert row["sharding"] == "row_split", row
assert row["requests"] == 1500, row
assert row["p50_ms"] > 0 and row["p50_ms"] <= row["p99_ms"], row
'

# Admission control under a 2-class overload: offered 8x the sustainable
# rate with an unreachable target; batch must shed, interactive must not,
# and served + rejected + shed == offered (checked again by serve_cli).
"${SERVE_CLI}" --config=small --scale-rows=256 --scale-batch=16 \
    --qps=8000 --requests=2000 --fanout=4 --max-batch=32 --max-wait-us=1000 \
    --queue-cap=64 --slo-class-mix=0.6 --p99-target-us=1000 \
    --drop-when-full --check-serving > "${WORK}/admission.log" || {
  echo "FAIL(admission): serve_cli exited nonzero" >&2
  cat "${WORK}/admission.log" >&2
  exit 1
}
grep -q '^CHECK OK' "${WORK}/admission.log" || {
  echo "FAIL(admission): accounting check did not pass" >&2
  cat "${WORK}/admission.log" >&2
  exit 1
}
grep '^BENCH_JSON' "${WORK}/admission.log" | sed 's/^BENCH_JSON //' \
    | python3 -c '
import json, sys
row = json.loads(sys.stdin.read())
assert row["shed"] > 0, ("no batch traffic was shed", row)
assert row["interactive_frac"] == 0.6, row
assert row["admission_state"] in ("defer", "shed"), row
# Interactive requests kept flowing while batch was shed.
assert row["interactive_p99_ms"] > 0, row
'
echo "leg admission: $(grep '^served' "${WORK}/admission.log")"

echo "sharded serving smoke OK"
