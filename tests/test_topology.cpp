// Tests for the fabric models: graph properties of Figs. 3/4 and the
// qualitative behaviour of the collective time estimates.
#include "cluster/topology.hpp"

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace dlrm {
namespace {

TEST(TwistedHypercube, GraphMatchesFig3) {
  const Topology t = Topology::twisted_hypercube8();
  EXPECT_EQ(t.sockets(), 8);
  EXPECT_EQ(t.unique_links(), 12);
  // Every socket: 3 neighbours at one hop, 4 at two hops (diameter 2).
  for (int a = 0; a < 8; ++a) {
    int one = 0, two = 0;
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      const int h = t.hops(a, b);
      ASSERT_GE(h, 1);
      ASSERT_LE(h, 2) << "diameter must be 2";
      one += (h == 1);
      two += (h == 2);
    }
    EXPECT_EQ(one, 3) << "socket " << a;
    EXPECT_EQ(two, 4) << "socket " << a;
  }
  // Mean hops over all pairs: (3*1 + 4*2) / 7.
  EXPECT_NEAR(t.mean_hops(8), 11.0 / 7.0, 1e-9);
  // Aggregate ≈ 260 GB/s as the paper states.
  EXPECT_NEAR(t.aggregate_bw() / 1e9, 264.0, 10.0);
}

TEST(FatTree, HopsAndPruning) {
  const Topology t = Topology::pruned_fat_tree(64);
  EXPECT_EQ(t.sockets(), 64);
  EXPECT_EQ(t.hops(0, 5), 1);    // same leaf
  EXPECT_EQ(t.hops(0, 40), 3);   // across the root
  EXPECT_EQ(t.hops(33, 60), 1);  // same second leaf
  // 100 Gb/s endpoints at ~1 us.
  EXPECT_NEAR(t.injection_bw() / 1e9, 12.5, 1e-6);
  EXPECT_NEAR(t.latency(), 1e-6, 1e-9);
}

TEST(FatTree, PruningHurtsCrossLeafAlltoall) {
  const Topology t = Topology::pruned_fat_tree(64);
  // Inside one leaf the alltoall is NIC-bound; across leaves the 2:1
  // pruning reduces effective per-rank bandwidth.
  EXPECT_NEAR(t.alltoall_rank_bw(32) / 1e9, 12.5, 1e-6);
  EXPECT_LT(t.alltoall_rank_bw(64), t.alltoall_rank_bw(32));
  EXPECT_GT(t.alltoall_rank_bw(64) / 1e9, 5.0);
  // Allreduce rings barely cross the root: no pruning penalty.
  EXPECT_NEAR(t.allreduce_rank_bw(64) / 1e9, 12.5, 1e-6);
}

TEST(TwistedHypercube, AlltoallDoesNotScaleFourToEight) {
  // The paper's observation: alltoall cost does not drop as expected from 4
  // to 8 sockets. Per-message volume drops 4x going 2R->4R; check the time
  // improvement 4->8 is much smaller than the ideal 4x.
  const Topology t = Topology::twisted_hypercube8();
  const std::int64_t volume = 64LL * 1024 * 1024;
  const double t4 = t.alltoall_time(4, volume, 1.0);
  const double t8 = t.alltoall_time(8, volume, 1.0);
  const double improvement = t4 / t8;
  EXPECT_LT(improvement, 2.0);  // far below the ideal 4x
  EXPECT_GT(improvement, 0.7);  // but not a regression beyond noise
}

TEST(Collectives, AllreduceMatchesChunkedRingFormula) {
  const Topology t = Topology::pruned_fat_tree(64);
  const std::int64_t bytes = 100 * 1000 * 1000;
  for (int r : {2, 8, 32, 64}) {
    const double expect =
        2.0 * (r - 1) * (static_cast<double>(bytes) / r) / 12.5e9 +
        2.0 * (r - 1) * 1e-6;
    EXPECT_NEAR(t.allreduce_time(r, bytes, 1.0), expect, expect * 1e-9) << r;
  }
  // Degenerate single rank: free.
  EXPECT_EQ(t.allreduce_time(1, bytes, 1.0), 0.0);
}

TEST(Collectives, AllreduceCostGrowsWithRanks) {
  // Fixed buffer: cost rises towards 2*bytes/bw as R grows (strong-scaling
  // challenge of Eq. 1: size independent of R).
  const Topology t = Topology::pruned_fat_tree(64);
  const std::int64_t bytes = 9 * 1024 * 1024;
  double prev = 0.0;
  for (int r : {2, 4, 8, 16, 32, 64}) {
    const double now = t.allreduce_time(r, bytes, 1.0);
    EXPECT_GT(now, prev);
    prev = now;
  }
}

TEST(Collectives, AlltoallStrongScalingShrinksPerRankCost) {
  // Fixed total volume (strong scaling): per-rank traffic is V*(R-1)/R^2,
  // so 2 -> 8 ranks ideally improves by (1/4)/(7/64) = 16/7 ≈ 2.29 (the
  // paper's "reduces 4x when doubling ranks" asymptotic).
  const Topology t = Topology::pruned_fat_tree(64);
  const std::int64_t volume = 208LL * 1024 * 1024;
  const double t2 = t.alltoall_time(2, volume, 1.0);
  const double t8 = t.alltoall_time(8, volume, 1.0);
  EXPECT_GT(t2 / t8, 2.0);
  EXPECT_LT(t2 / t8, 2.5);
  // And 2 -> 4 approaches the asymptotic 4x ratio: (1/4)/(3/16) = 4/3.
  const double t4 = t.alltoall_time(4, volume, 1.0);
  EXPECT_NEAR(t2 / t4, 4.0 / 3.0, 0.05);
}

TEST(Collectives, ScatterSlowerThanAlltoall) {
  // A root-serialized scatter moves the same payload through one injection
  // link; the alltoall uses all R links simultaneously.
  const Topology t = Topology::pruned_fat_tree(64);
  const std::int64_t volume = 64LL * 1024 * 1024;
  for (int r : {4, 16, 32}) {
    EXPECT_GT(t.scatter_time(r, volume, 1.0),
              t.alltoall_time(r, volume, 1.0) * 1.5)
        << r;
  }
}

TEST(Collectives, BandwidthFactorScalesTime) {
  const Topology t = Topology::pruned_fat_tree(64);
  const std::int64_t bytes = 32 * 1024 * 1024;
  const double full = t.allreduce_time(16, bytes, 1.0);
  const double half = t.allreduce_time(16, bytes, 0.5);
  EXPECT_NEAR(half / full, 2.0, 0.05);  // latency term causes slight deviation
}

TEST(Topology, BadArgumentsThrow) {
  const Topology t = Topology::twisted_hypercube8();
  EXPECT_THROW(t.hops(0, 8), CheckError);
  EXPECT_THROW(t.mean_hops(9), CheckError);
  EXPECT_THROW(Topology::pruned_fat_tree(65), CheckError);
}

}  // namespace
}  // namespace dlrm
