// Hot-row cache tier unit tests: the working tier must be bit-invisible —
// forward outputs and the canonical checkpoint encoding are identical with
// the cache on or off, for every storage precision, across admissions,
// evictions and counter-driven re-admission.
#include "kernels/embedding.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "common/rng.hpp"

namespace dlrm {
namespace {

BagBatch make_bags(std::int64_t n, std::int64_t pooling, std::int64_t rows,
                   double skew, std::uint64_t seed) {
  BagBatch bags;
  bags.indices.reshape({n * pooling});
  bags.offsets.reshape({n + 1});
  Rng rng(seed);
  ZipfSampler zipf(rows, skew);
  for (std::int64_t i = 0; i < n * pooling; ++i) bags.indices[i] = zipf(rng);
  for (std::int64_t i = 0; i <= n; ++i) bags.offsets[i] = i * pooling;
  return bags;
}

Tensor<float> random_grad(std::int64_t n, std::int64_t dim,
                          std::uint64_t seed) {
  Tensor<float> dy({n, dim});
  Rng rng(seed);
  for (std::int64_t i = 0; i < n * dim; ++i) dy[i] = rng.uniform(-1.0f, 1.0f);
  return dy;
}

std::vector<unsigned char> export_all(const EmbeddingTable& t) {
  std::vector<unsigned char> bytes(
      static_cast<std::size_t>(t.rows() * t.checkpoint_row_bytes()));
  t.export_rows(0, t.rows(), bytes.data());
  return bytes;
}

constexpr EmbedPrecision kAllPrecisions[] = {
    EmbedPrecision::kFp32, EmbedPrecision::kBf16Split,
    EmbedPrecision::kBf16Split8, EmbedPrecision::kFp16Stochastic,
    EmbedPrecision::kFp24};

class EmbCacheParityTest : public ::testing::TestWithParam<
                               std::tuple<EmbedPrecision, EmbCachePolicy>> {};

// Twin tables, identical init and identical Zipf training traffic; only one
// has the cache tier. Every forward output and the final storage bytes must
// be bit-identical — the tier is a pure performance feature.
TEST_P(EmbCacheParityTest, ForwardAndStorageBitIdentical) {
  const auto [prec, policy] = GetParam();
  const std::int64_t rows = 400, dim = 16, n = 32, pooling = 4;
  Rng r1(7), r2(7);
  EmbeddingTable plain(rows, dim, prec);
  EmbeddingTable cached(rows, dim, prec);
  plain.init(r1, 0.25f);
  cached.init(r2, 0.25f);

  EmbCacheOptions co;
  co.capacity = 48;
  co.policy = policy;
  co.refresh_every = 3;  // exercise counter decay/re-admission mid-run
  cached.configure_cache(co);
  if (policy == EmbCachePolicy::kHist) {
    // Zipf head: rows 0..capacity-1 are the hot set.
    std::vector<std::int64_t> hot(48);
    std::iota(hot.begin(), hot.end(), 0);
    cached.admit_rows(hot.data(), static_cast<std::int64_t>(hot.size()));
  }

  Tensor<float> out_plain({n, dim}), out_cached({n, dim});
  for (int iter = 0; iter < 10; ++iter) {
    const BagBatch bags =
        make_bags(n, pooling, rows, 1.05, 100 + static_cast<std::uint64_t>(iter));
    plain.forward(bags, out_plain.data());
    cached.forward(bags, out_cached.data());
    ASSERT_EQ(std::memcmp(out_plain.data(), out_cached.data(),
                          static_cast<std::size_t>(n * dim) * sizeof(float)),
              0)
        << "forward diverged at iteration " << iter;
    const Tensor<float> dy =
        random_grad(n, dim, 500 + static_cast<std::uint64_t>(iter));
    plain.fused_backward_update(dy.data(), bags, 0.05f,
                                UpdateStrategy::kRaceFree);
    cached.fused_backward_update(dy.data(), bags, 0.05f,
                                 UpdateStrategy::kRaceFree);
  }
  EXPECT_EQ(export_all(plain), export_all(cached));
  if (policy == EmbCachePolicy::kHist) {
    EXPECT_GT(cached.cache_stats().hits, 0);
  } else {
    // kCounter must have run at least one re-admission pass by now.
    EXPECT_GT(cached.cache_stats().refreshes, 0);
    EXPECT_GT(cached.cache_stats().hits, 0);
  }
}

// to_string(EmbedPrecision) contains '-' which gtest param names reject.
std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      out.push_back(c);
    }
  }
  return out;
}

std::string parity_name(
    const ::testing::TestParamInfo<std::tuple<EmbedPrecision, EmbCachePolicy>>&
        info) {
  return sanitize(std::string(to_string(std::get<0>(info.param))) + "_" +
                  to_string(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    AllPrecisions, EmbCacheParityTest,
    ::testing::Combine(::testing::ValuesIn(kAllPrecisions),
                       ::testing::Values(EmbCachePolicy::kHist,
                                         EmbCachePolicy::kCounter)),
    parity_name);

class EmbCacheEvictionTest
    : public ::testing::TestWithParam<EmbedPrecision> {};

// Admission churn: rows trained while resident must re-encode through the
// exact codec on eviction — storage stays bit-identical to the uncached
// twin after the resident set is replaced wholesale.
TEST_P(EmbCacheEvictionTest, EvictionRoundTripIsBitExact) {
  const EmbedPrecision prec = GetParam();
  const std::int64_t rows = 200, dim = 16, n = 24, pooling = 4;
  Rng r1(11), r2(11);
  EmbeddingTable plain(rows, dim, prec);
  EmbeddingTable cached(rows, dim, prec);
  plain.init(r1, 0.5f);
  cached.init(r2, 0.5f);

  EmbCacheOptions co;
  co.capacity = 32;
  co.policy = EmbCachePolicy::kHist;
  cached.configure_cache(co);
  std::vector<std::int64_t> set_a(32), set_b(32);
  std::iota(set_a.begin(), set_a.end(), 0);    // rows 0..31
  std::iota(set_b.begin(), set_b.end(), 100);  // rows 100..131, disjoint
  cached.admit_rows(set_a.data(), 32);

  const BagBatch bags = make_bags(n, pooling, rows, 1.2, 21);
  const Tensor<float> dy = random_grad(n, dim, 22);
  plain.fused_backward_update(dy.data(), bags, 0.1f,
                              UpdateStrategy::kRaceFree);
  cached.fused_backward_update(dy.data(), bags, 0.1f,
                               UpdateStrategy::kRaceFree);

  // Replace the resident set: every row of set A that was updated in the
  // arena must be written back losslessly.
  cached.admit_rows(set_b.data(), 32);
  EXPECT_GT(cached.cache_stats().evictions, 0);
  EXPECT_EQ(export_all(plain), export_all(cached));
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, EmbCacheEvictionTest,
                         ::testing::ValuesIn(kAllPrecisions),
                         [](const ::testing::TestParamInfo<EmbedPrecision>& i) {
                           return sanitize(to_string(i.param));
                         });

// The update strategies that tolerate non-deterministic float ordering
// (atomic CAS, lock-guarded stripes) must still converge to the same values
// as the serial reference within rounding, cache on or off.
TEST(EmbCache, ConcurrentStrategiesMatchReferenceWithinRounding) {
  const std::int64_t rows = 300, dim = 16, n = 32, pooling = 4;
  const BagBatch bags = make_bags(n, pooling, rows, 1.0, 31);
  const Tensor<float> dy = random_grad(n, dim, 32);

  Rng rr(5);
  EmbeddingTable ref(rows, dim, EmbedPrecision::kFp32);
  ref.init(rr, 0.5f);
  ref.fused_backward_update(dy.data(), bags, 0.1f, UpdateStrategy::kReference);
  std::vector<float> ref_row(static_cast<std::size_t>(dim));
  std::vector<float> got_row(static_cast<std::size_t>(dim));

  for (UpdateStrategy s :
       {UpdateStrategy::kAtomicXchg, UpdateStrategy::kRtm}) {
    Rng rc(5);
    EmbeddingTable cached(rows, dim, EmbedPrecision::kFp32);
    cached.init(rc, 0.5f);
    EmbCacheOptions co;
    co.capacity = 64;
    co.policy = EmbCachePolicy::kHist;
    cached.configure_cache(co);
    std::vector<std::int64_t> hot(64);
    std::iota(hot.begin(), hot.end(), 0);
    cached.admit_rows(hot.data(), 64);
    cached.fused_backward_update(dy.data(), bags, 0.1f, s);
    for (std::int64_t row = 0; row < rows; ++row) {
      ref.read_row(row, ref_row.data());
      cached.read_row(row, got_row.data());
      for (std::int64_t e = 0; e < dim; ++e) {
        ASSERT_NEAR(ref_row[static_cast<std::size_t>(e)],
                    got_row[static_cast<std::size_t>(e)], 1e-4f)
            << "strategy " << to_string(s) << " row " << row;
      }
    }
  }
}

// kCounter admission must discover a Zipf head it was never told about.
TEST(EmbCache, CounterPolicyAdaptsToSkew) {
  const std::int64_t rows = 2000, dim = 16, n = 64, pooling = 8;
  Rng rng(3);
  EmbeddingTable table(rows, dim);
  table.init(rng, 0.25f);
  EmbCacheOptions co;
  co.capacity = 100;  // 5% of rows
  co.policy = EmbCachePolicy::kCounter;
  co.refresh_every = 4;
  table.configure_cache(co);

  Tensor<float> out({n, dim});
  for (int iter = 0; iter < 40; ++iter) {
    const BagBatch bags =
        make_bags(n, pooling, rows, 1.2, 900 + static_cast<std::uint64_t>(iter));
    table.forward(bags, out.data());
  }
  const EmbCacheStats cs = table.cache_stats();
  EXPECT_GT(cs.refreshes, 0);
  EXPECT_EQ(cs.capacity, 100);
  EXPECT_GT(cs.resident, 0);
  // Zipf(1.2) concentrates well over half the traffic in the top 5% of
  // rows; the counter tier must capture a solid share of it.
  EXPECT_GT(cs.hit_rate(), 0.4) << "hits " << cs.hits << " misses "
                                << cs.misses;
}

// kHist admission on a row-range shard view: the histogram is over the
// LOGICAL table; the shard must admit only rows in its own range and stay
// bit-identical to an uncached twin of the same shard.
TEST(EmbCache, HistAdmissionOnShardView) {
  const std::int64_t global_rows = 300, dim = 16, n = 24, pooling = 2;
  const std::int64_t row_begin = 100, shard_rows = 120;
  Rng r1(13), r2(13);
  EmbeddingTable plain(shard_rows, dim, EmbedPrecision::kBf16Split, row_begin,
                       global_rows);
  EmbeddingTable cached(shard_rows, dim, EmbedPrecision::kBf16Split, row_begin,
                        global_rows);
  plain.init(r1, 0.25f);
  cached.init(r2, 0.25f);

  EmbCacheOptions co;
  co.capacity = 20;
  co.policy = EmbCachePolicy::kHist;
  cached.configure_cache(co);
  // Global histogram with all mass in buckets overlapping the shard.
  std::vector<double> hist(30, 0.0);  // 10 rows per bucket
  for (std::size_t b = 10; b < 16; ++b) hist[b] = 100.0 - static_cast<double>(b);
  cached.admit_top_rows_from_histogram(hist);
  EXPECT_GT(cached.cache_stats().resident, 0);
  EXPECT_LE(cached.cache_stats().resident, 20);

  Tensor<float> out_plain({n, dim}), out_cached({n, dim});
  for (int iter = 0; iter < 4; ++iter) {
    const BagBatch bags = make_bags(n, pooling, shard_rows, 0.9,
                                    700 + static_cast<std::uint64_t>(iter));
    plain.forward(bags, out_plain.data());
    cached.forward(bags, out_cached.data());
    ASSERT_EQ(std::memcmp(out_plain.data(), out_cached.data(),
                          static_cast<std::size_t>(n * dim) * sizeof(float)),
              0);
    const Tensor<float> dy =
        random_grad(n, dim, 800 + static_cast<std::uint64_t>(iter));
    plain.fused_backward_update(dy.data(), bags, 0.05f,
                                UpdateStrategy::kRaceFree);
    cached.fused_backward_update(dy.data(), bags, 0.05f,
                                 UpdateStrategy::kRaceFree);
  }
  EXPECT_EQ(export_all(plain), export_all(cached));
}

// The cache is DERIVED state: the checkpoint codec reads through it, so an
// export needs no flush, records nothing cache-specific, and the manifest
// format is unchanged.
TEST(EmbCache, CheckpointStateIsDerivedOnly) {
  EXPECT_EQ(ckpt::kFormatVersion, 2u)
      << "the cache tier must not grow the checkpoint format";
  const std::int64_t rows = 150, dim = 16, n = 16, pooling = 4;
  Rng rng(17);
  EmbeddingTable table(rows, dim, EmbedPrecision::kBf16Split);
  table.init(rng, 0.5f);
  EmbCacheOptions co;
  co.capacity = 24;
  co.policy = EmbCachePolicy::kHist;
  table.configure_cache(co);
  std::vector<std::int64_t> hot(24);
  std::iota(hot.begin(), hot.end(), 0);
  table.admit_rows(hot.data(), 24);

  const BagBatch bags = make_bags(n, pooling, rows, 1.1, 41);
  const Tensor<float> dy = random_grad(n, dim, 42);
  table.fused_backward_update(dy.data(), bags, 0.1f,
                              UpdateStrategy::kRaceFree);

  // Dirty resident rows: export must already see their latest state...
  const std::vector<unsigned char> before_flush = export_all(table);
  table.flush_cache();
  const std::vector<unsigned char> after_flush = export_all(table);
  EXPECT_EQ(before_flush, after_flush);

  // ...and importing that payload into a cache-less table reproduces the
  // storage exactly (nothing about the tier leaks into the encoding).
  EmbeddingTable restored(rows, dim, EmbedPrecision::kBf16Split);
  restored.import_rows(0, rows, before_flush.data());
  EXPECT_EQ(export_all(restored), before_flush);
}

// Reconfiguring with capacity 0 / kOff drains the tier and returns the
// table to the plain path.
TEST(EmbCache, DisableWritesBackAndRestoresPlainPath) {
  const std::int64_t rows = 100, dim = 8;
  Rng r1(19), r2(19);
  EmbeddingTable plain(rows, dim, EmbedPrecision::kFp24);
  EmbeddingTable cached(rows, dim, EmbedPrecision::kFp24);
  plain.init(r1, 0.5f);
  cached.init(r2, 0.5f);
  EmbCacheOptions co;
  co.capacity = 16;
  co.policy = EmbCachePolicy::kHist;
  cached.configure_cache(co);
  std::vector<std::int64_t> hot(16);
  std::iota(hot.begin(), hot.end(), 0);
  cached.admit_rows(hot.data(), 16);

  const BagBatch bags = make_bags(12, 4, rows, 1.0, 51);
  const Tensor<float> dy = random_grad(12, dim, 52);
  plain.fused_backward_update(dy.data(), bags, 0.1f,
                              UpdateStrategy::kRaceFree);
  cached.fused_backward_update(dy.data(), bags, 0.1f,
                               UpdateStrategy::kRaceFree);

  cached.configure_cache(EmbCacheOptions{});  // off
  EXPECT_FALSE(cached.cache_enabled());
  EXPECT_EQ(cached.cache_bytes(), 0);
  EXPECT_EQ(export_all(plain), export_all(cached));
}

}  // namespace
}  // namespace dlrm
