// Tests for the end-to-end bf16 MLP data path (paper Sect. III.B–III.C):
// VNNI weight packing, bf16 batch-reduce GEMM vs fp32 reference, bf16
// FWD/BWD within rtol 2e-2 of the fp32 stack, Split-SGD integration, and a
// convergence smoke on the full DLRM model.
#include "kernels/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "kernels/gemm.hpp"
#include "optim/optimizer.hpp"
#include "tensor/blocked.hpp"

namespace dlrm {
namespace {

constexpr float kRtol = 2e-2f;  // acceptance tolerance vs the fp32 reference

// ||a - b||_2 / ||b||_2 — tensor-level relative error vs the reference.
float rel_l2_diff(const Tensor<float>& a, const Tensor<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  double num = 0.0, den = 1e-24;
  for (std::int64_t i = 0; i < b.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    num += d * d;
    den += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(std::sqrt(num / den));
}

// max |a - b| normalized by ||b||_inf (relative to the reference scale).
// Looser than the L2 metric: a single ReLU mask flip at a near-zero
// pre-activation shows up here but washes out of the norm.
float rel_inf_diff(const Tensor<float>& a, const Tensor<float>& b) {
  float scale = 1e-12f;
  for (std::int64_t i = 0; i < b.size(); ++i) {
    scale = std::max(scale, std::fabs(b[i]));
  }
  return max_abs_diff(a, b) / scale;
}

TEST(VnniWeights, PackFromMatchesBlockedLayout) {
  const std::int64_t k = 48, c = 26, bk = 16, bc = 13;  // odd bc pads
  Rng rng(3);
  Tensor<float> flat({k, c});
  fill_uniform(flat, rng, 1.0f);
  BlockedWeights w(k, c, bk, bc);
  w.pack_from(flat.data());

  VnniWeights v(k, c, bk, bc);
  v.pack_from(w);
  EXPECT_EQ(v.pairs(), (bc + 1) / 2);

  for (std::int64_t ikb = 0; ikb < v.kb(); ++ikb) {
    for (std::int64_t icb = 0; icb < v.cb(); ++icb) {
      const bf16* tile = v.block(ikb, icb);
      for (std::int64_t ic = 0; ic < bc; ++ic) {
        for (std::int64_t ik = 0; ik < bk; ++ik) {
          const float expect = bf16_to_f32(
              f32_to_bf16_rne(flat[(ikb * bk + ik) * c + icb * bc + ic]));
          const float got =
              to_float(tile[((ic / 2) * bk + ik) * 2 + (ic % 2)]);
          ASSERT_EQ(got, expect) << ikb << " " << icb << " " << ic << " " << ik;
        }
      }
      // Odd-bc padding lane must be +0 so it cannot pollute dot products.
      for (std::int64_t ik = 0; ik < bk; ++ik) {
        ASSERT_EQ(tile[((bc / 2) * bk + ik) * 2 + 1].bits, 0u);
      }
    }
  }
}

TEST(VnniWeights, PackTransposedMatchesExplicitTranspose) {
  const std::int64_t k = 32, c = 24, bk = 16, bc = 8;
  Rng rng(4);
  Tensor<float> flat({k, c});
  fill_uniform(flat, rng, 1.0f);
  BlockedWeights w(k, c, bk, bc);
  w.pack_from(flat.data());

  // WT as a VnniWeights shaped (rows=C, cols=K, row_block=bc, col_block=bk).
  VnniWeights vt(c, k, bc, bk);
  vt.pack_transposed_from(w);

  for (std::int64_t icb = 0; icb < vt.kb(); ++icb) {   // C blocks
    for (std::int64_t ikb = 0; ikb < vt.cb(); ++ikb) { // K blocks
      const bf16* tile = vt.block(icb, ikb);
      for (std::int64_t r = 0; r < bk; ++r) {    // reduction (K) in tile
        for (std::int64_t j = 0; j < bc; ++j) {  // output (C) in tile
          const float expect = bf16_to_f32(
              f32_to_bf16_rne(flat[(ikb * bk + r) * c + icb * bc + j]));
          const float got = to_float(tile[((r / 2) * bc + j) * 2 + (r % 2)]);
          ASSERT_EQ(got, expect) << icb << " " << ikb << " " << r << " " << j;
        }
      }
    }
  }
}

TEST(BatchReduceGemmBf16, MatchesFp32OnDecodedInputs) {
  // The bf16 kernel with exactly-representable inputs must agree with the
  // fp32 kernel up to fp32 accumulation-order differences.
  for (int n : {16, 32, 64, 13, 1}) {
    const int count = 3, m = 8, k = 13;  // odd k exercises the tail path
    Rng rng(100 + n);
    std::vector<std::vector<float>> af(count), bflat(count);
    std::vector<std::vector<bf16>> a16(count), b16(count);
    std::vector<const float*> afp, bfp;
    std::vector<const bf16*> ap, bp;
    const int kp = (k + 1) / 2;
    for (int i = 0; i < count; ++i) {
      af[i].resize(static_cast<std::size_t>(m * k));
      bflat[i].resize(static_cast<std::size_t>(k * n));
      a16[i].resize(static_cast<std::size_t>(m * k));
      b16[i].assign(static_cast<std::size_t>(kp * n * 2), bf16());
      for (auto& v : af[i]) v = bf16_to_f32(f32_to_bf16_rne(rng.uniform(-1.f, 1.f)));
      for (auto& v : bflat[i]) v = bf16_to_f32(f32_to_bf16_rne(rng.uniform(-1.f, 1.f)));
      for (int x = 0; x < m * k; ++x) a16[i][static_cast<std::size_t>(x)] = bf16(af[i][static_cast<std::size_t>(x)]);
      for (int ik = 0; ik < k; ++ik) {
        for (int j = 0; j < n; ++j) {
          b16[i][static_cast<std::size_t>(((ik / 2) * n + j) * 2 + ik % 2)] =
              bf16(bflat[i][static_cast<std::size_t>(ik * n + j)]);
        }
      }
      afp.push_back(af[i].data());
      bfp.push_back(bflat[i].data());
      ap.push_back(a16[i].data());
      bp.push_back(b16[i].data());
    }
    std::vector<float> c16(static_cast<std::size_t>(m * n), -1.0f);
    std::vector<float> cref(static_cast<std::size_t>(m * n), -1.0f);
    batchreduce_gemm_bf16(ap.data(), bp.data(), c16.data(), count, m, k, n,
                          /*accumulate=*/false);
    batchreduce_gemm(afp.data(), bfp.data(), cref.data(), count, m, k, n,
                     /*accumulate=*/false);
    for (int x = 0; x < m * n; ++x) {
      ASSERT_NEAR(c16[static_cast<std::size_t>(x)], cref[static_cast<std::size_t>(x)], 1e-4f)
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(BatchReduceGemmBf16At, MatchesFp32OnDecodedInputs) {
  const int count = 4, m = 8, k = 10, n = 13;
  Rng rng(55);
  std::vector<std::vector<float>> af(count), bflat(count);
  std::vector<std::vector<bf16>> a16(count), b16(count);
  std::vector<const float*> afp, bfp;
  std::vector<const bf16*> ap, bp;
  for (int i = 0; i < count; ++i) {
    af[i].resize(static_cast<std::size_t>(k * m));  // stored [K][M]
    bflat[i].resize(static_cast<std::size_t>(k * n));
    for (auto& v : af[i]) v = bf16_to_f32(f32_to_bf16_rne(rng.uniform(-1.f, 1.f)));
    for (auto& v : bflat[i]) v = bf16_to_f32(f32_to_bf16_rne(rng.uniform(-1.f, 1.f)));
    a16[i].resize(af[i].size());
    b16[i].resize(bflat[i].size());
    for (std::size_t x = 0; x < af[i].size(); ++x) a16[i][x] = bf16(af[i][x]);
    for (std::size_t x = 0; x < bflat[i].size(); ++x) b16[i][x] = bf16(bflat[i][x]);
    afp.push_back(af[i].data());
    bfp.push_back(bflat[i].data());
    ap.push_back(a16[i].data());
    bp.push_back(b16[i].data());
  }
  std::vector<float> c16(static_cast<std::size_t>(m * n));
  std::vector<float> cref(static_cast<std::size_t>(m * n));
  batchreduce_gemm_bf16_at(ap.data(), bp.data(), c16.data(), count, m, k, n, false);
  batchreduce_gemm_at(afp.data(), bfp.data(), cref.data(), count, m, k, n, false);
  for (int x = 0; x < m * n; ++x) {
    ASSERT_NEAR(c16[static_cast<std::size_t>(x)], cref[static_cast<std::size_t>(x)], 1e-4f);
  }
}

// The acceptance check, operator level: with identical state (weights on the
// bf16 grid, identically rounded inputs), every bf16 pass — FWD, BWD-data,
// BWD-weights — must match the fp32 pass within rtol 2e-2 (it is in fact
// ~1e-3: the only differences are fp32 accumulation order and the one final
// RNE down-convert of the outputs).
class FcBf16OpTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(FcBf16OpTest, AllThreePassesMatchFp32OnIdenticalState) {
  const auto [n, c, k] = GetParam();
  Rng rng1(n + 2 * c + k), rng2(n + 2 * c + k);
  FullyConnected ref(c, k, Activation::kRelu);
  ref.init(rng1);
  FullyConnected low(c, k, Activation::kRelu, {}, Precision::kBf16);
  low.init(rng2);

  // Put both weight sets on the bf16 grid (the steady state under
  // Split-SGD), so the fp32 layer computes on exactly the values the bf16
  // layer sees.
  for (FullyConnected* fc : {&ref, &low}) {
    Tensor<float>& w = fc->weights().raw();
    for (std::int64_t i = 0; i < w.size(); ++i) {
      w[i] = bf16_to_f32(f32_to_bf16_rne(w[i]));
    }
    Tensor<float>& b = fc->bias();
    for (std::int64_t i = 0; i < b.size(); ++i) {
      b[i] = bf16_to_f32(f32_to_bf16_rne(b[i]));
    }
  }

  // Inputs and output-gradients pre-rounded to bf16 values.
  Tensor<float> x({n, c}), dy({n, k});
  Rng rngx(17);
  fill_uniform(x, rngx, 1.0f);
  fill_uniform(dy, rngx, 1.0f);
  for (std::int64_t i = 0; i < x.size(); ++i) x[i] = bf16_to_f32(f32_to_bf16_rne(x[i]));
  for (std::int64_t i = 0; i < dy.size(); ++i) dy[i] = bf16_to_f32(f32_to_bf16_rne(dy[i]));

  const std::int64_t bn = pick_block(n, 32);
  // fp32 reference pass.
  BlockedActivations xr(n, c, bn, ref.bc()), yr(n, k, bn, ref.bk());
  BlockedActivations dyr(n, k, bn, ref.bk()), dxr(n, c, bn, ref.bc());
  xr.pack_from(x.data());
  dyr.pack_from(dy.data());
  ref.forward(xr, yr);
  ref.backward(xr, yr, dyr, dxr);

  // bf16 pass on the same values.
  BlockedActivationsBf16 xl(n, c, bn, low.bc()), yl(n, k, bn, low.bk());
  BlockedActivationsBf16 dyl(n, k, bn, low.bk()), dxl(n, c, bn, low.bc());
  xl.pack_from(x.data());
  dyl.pack_from(dy.data());
  low.forward(xl, yl);
  low.backward(xl, yl, dyl, dxl);

  Tensor<float> a({n, k}), b({n, k});
  yr.unpack_to(a.data());
  yl.unpack_to(b.data());
  EXPECT_LE(rel_l2_diff(b, a), kRtol);
  EXPECT_LE(rel_inf_diff(b, a), kRtol);

  Tensor<float> dxa({n, c}), dxb({n, c});
  dxr.unpack_to(dxa.data());
  dxl.unpack_to(dxb.data());
  EXPECT_LE(rel_l2_diff(dxb, dxa), kRtol);
  EXPECT_LE(rel_inf_diff(dxb, dxa), kRtol);

  EXPECT_LE(rel_l2_diff(low.weight_grads().raw(), ref.weight_grads().raw()), kRtol);
  EXPECT_LE(rel_l2_diff(low.bias_grads(), ref.bias_grads()), kRtol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FcBf16OpTest,
    ::testing::Values(std::make_tuple(64, 128, 64), std::make_tuple(32, 13, 64),
                      std::make_tuple(48, 100, 1), std::make_tuple(16, 16, 16),
                      std::make_tuple(128, 256, 128)));

// End-to-end stack comparison: forward outputs stay within rtol 2e-2; deep
// backward gradients accumulate relu-mask flips between the two (different-
// precision, hence slightly different) networks, so they get a documented
// looser bound. Training equivalence is established by the convergence tests.
class MlpBf16VsFp32 : public ::testing::TestWithParam<std::vector<std::int64_t>> {};

TEST_P(MlpBf16VsFp32, ForwardAndBackwardWithinRtol) {
  const std::vector<std::int64_t> dims = GetParam();
  const std::int64_t n = 64;
  Rng rng1(7), rng2(7);

  Mlp ref(dims, Activation::kRelu, Activation::kNone);
  ref.init(rng1);
  ref.set_batch(n);
  Mlp low(dims, Activation::kRelu, Activation::kNone, {}, Precision::kBf16);
  low.init(rng2);
  low.set_batch(n);
  EXPECT_EQ(low.precision(), Precision::kBf16);

  Tensor<float> x({n, dims.front()});
  Rng rngx(11);
  fill_uniform(x, rngx, 1.0f);

  const Tensor<float>& yref = ref.forward(x);
  const Tensor<float>& ylow = low.forward(x);
  EXPECT_LE(rel_l2_diff(ylow, yref), kRtol);
  EXPECT_LE(rel_inf_diff(ylow, yref), kRtol);

  Tensor<float> dy({n, dims.back()});
  Rng rngg(13);
  fill_uniform(dy, rngg, 1.0f);
  const Tensor<float>& dxref = ref.backward(dy);
  const Tensor<float>& dxlow = low.backward(dy);
  // Deep-net gradient bound: bf16 forward-state divergence flips a few ReLU
  // masks relative to the fp32 net, so end-to-end gradients carry more than
  // per-op rounding. 10% L2 is the observed envelope across these shapes.
  const float deep_tol = 0.1f;
  EXPECT_LE(rel_l2_diff(dxlow, dxref), deep_tol);

  // Weight and bias gradients feed the optimizer: same envelope.
  for (std::size_t l = 0; l < ref.layer_count(); ++l) {
    EXPECT_LE(rel_l2_diff(low.layer(l).weight_grads().raw(),
                          ref.layer(l).weight_grads().raw()),
              deep_tol)
        << "layer " << l;
    EXPECT_LE(rel_l2_diff(low.layer(l).bias_grads(), ref.layer(l).bias_grads()),
              deep_tol)
        << "layer " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpBf16VsFp32,
    ::testing::Values(std::vector<std::int64_t>{64, 128, 64},
                      std::vector<std::int64_t>{13, 512, 256, 128},  // MLPerf bottom
                      std::vector<std::int64_t>{128, 1024, 512, 1},  // width-1 head
                      std::vector<std::int64_t>{24, 48, 16, 8}));

TEST(MlpBf16, SplitSgdMatchesExplicitFp32Master) {
  // Two identical bf16 MLPs: one stepped by SplitSgdBf16, the other by an
  // explicit fp32 master copy (update master, publish its bf16 truncation).
  // The visible weights must match bit for bit at every step — the Split-SGD
  // recombination is exactly an fp32 master kept in two 16-bit halves.
  const std::int64_t n = 32;
  const std::vector<std::int64_t> dims{16, 32, 8};
  Rng rng1(21), rng2(21);

  Mlp a(dims, Activation::kRelu, Activation::kNone, {}, Precision::kBf16);
  a.init(rng1);
  a.set_batch(n);
  Mlp b(dims, Activation::kRelu, Activation::kNone, {}, Precision::kBf16);
  b.init(rng2);
  b.set_batch(n);

  SplitSgdBf16 opt(16);
  auto slots_a = a.param_slots();
  opt.attach(slots_a);

  // Manual master for b: snapshot fp32 params, then publish truncations
  // (exactly what attach() did for a).
  auto slots_b = b.param_slots();
  std::vector<std::vector<float>> master(slots_b.size());
  for (std::size_t s = 0; s < slots_b.size(); ++s) {
    master[s].assign(slots_b[s].param, slots_b[s].param + slots_b[s].size);
    for (std::int64_t i = 0; i < slots_b[s].size; ++i) {
      slots_b[s].param[i] = bf16_to_f32(f32_to_bf16_trunc(master[s][static_cast<std::size_t>(i)]));
    }
  }

  Rng rngx(31);
  const float lr = 0.05f;
  for (int iter = 0; iter < 50; ++iter) {
    Tensor<float> x({n, dims.front()});
    Tensor<float> dy({n, dims.back()});
    fill_uniform(x, rngx, 1.0f);
    fill_uniform(dy, rngx, 0.5f);
    a.forward(x);
    a.backward(dy);
    b.forward(x);
    b.backward(dy);

    opt.step(lr);
    for (std::size_t s = 0; s < slots_b.size(); ++s) {
      for (std::int64_t i = 0; i < slots_b[s].size; ++i) {
        master[s][static_cast<std::size_t>(i)] -= lr * slots_b[s].grad[i];
        slots_b[s].param[i] =
            bf16_to_f32(f32_to_bf16_trunc(master[s][static_cast<std::size_t>(i)]));
      }
    }
    for (std::size_t s = 0; s < slots_a.size(); ++s) {
      for (std::int64_t i = 0; i < slots_a[s].size; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(slots_a[s].param[i]),
                  std::bit_cast<std::uint32_t>(slots_b[s].param[i]))
            << "iter " << iter << " slot " << s << " i " << i;
      }
    }
  }
}

TEST(MlpBf16, WeightsStayOnBf16GridUnderSplitSgd) {
  Mlp mlp({16, 32, 4}, Activation::kRelu, Activation::kNone, {},
          Precision::kBf16);
  Rng rng(5);
  mlp.init(rng);
  mlp.set_batch(16);
  SplitSgdBf16 opt;
  auto slots = mlp.param_slots();
  opt.attach(slots);
  Tensor<float> x({16, 16}), dy({16, 4});
  for (int iter = 0; iter < 5; ++iter) {
    fill_uniform(x, rng, 1.0f);
    fill_uniform(dy, rng, 1.0f);
    mlp.forward(x);
    mlp.backward(dy);
    opt.step(0.1f);
    for (const auto& s : slots) {
      for (std::int64_t i = 0; i < s.size; ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(s.param[i]) & 0xFFFFu, 0u);
      }
    }
  }
}

TEST(MlpBf16, FullModelTrainingLossDecreases100Iters) {
  // End-to-end acceptance: the DLRM model in bf16 (bf16 MLP path + Split-SGD
  // dense optimizer + bf16-split embeddings) trains for 100 iterations with
  // decreasing loss. Tiny topology so the test stays fast under ASan/Debug
  // on one core; the ctest train_cli smoke covers the paper-shaped config.
  DlrmConfig cfg;
  cfg.name = "tiny";
  cfg.minibatch = 64;
  cfg.pooling = 5;
  cfg.dim = 16;
  cfg.table_rows = {1000, 1000};
  cfg.bottom_mlp = {16, 32, 16};
  cfg.top_mlp = {32, 1};
  cfg.validate();
  cfg.mlp_precision = Precision::kBf16;
  ModelOptions mo;
  mo.embed_precision = EmbedPrecision::kBf16Split;
  DlrmModel model(cfg, mo, 42);
  RandomDataset data(cfg.bottom_mlp.front(), cfg.table_rows, cfg.pooling, 1);
  Trainer trainer(model, data, {.lr = 0.05f, .batch = cfg.minibatch});
  EXPECT_EQ(trainer.optimizer().name(), "Split-SGD-BF16");

  const double first = trainer.train(25);
  trainer.train(50);
  const double last = trainer.train(25);
  EXPECT_EQ(trainer.iterations_done(), 100);
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace dlrm
