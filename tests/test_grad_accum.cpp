// Micro-batch gradient accumulation tests: an A-way accumulation window
// must train (to tolerance) like the unsplit effective batch while the
// model itself runs at batch/A (the ~A× activation-memory win), the split
// must be deterministic (fixed fp32 summation order), the distributed
// window must cost exactly ONE allreduce, and checkpoints taken under
// accumulation must resume bit-exactly — and refuse a grad_accum change.
#include "optim/accum.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "core/dist_trainer.hpp"
#include "core/model.hpp"
#include "core/trainer.hpp"

namespace dlrm {
namespace {

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "accum-tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

// Per-window losses of a single-process run at effective batch `batch`
// split into `accum` micro-batches.
std::vector<double> sp_losses(const DlrmConfig& c, const Dataset& data,
                              std::int64_t batch, int accum, int windows,
                              std::uint64_t seed = 42) {
  DlrmModel model(c, {}, seed);
  Trainer trainer(model, data,
                  {.lr = 0.05f, .batch = batch, .seed = seed,
                   .grad_accum = accum});
  EXPECT_EQ(model.batch(), batch / accum);  // activations live at micro size
  std::vector<double> out;
  for (int i = 0; i < windows; ++i) out.push_back(trainer.train(1));
  return out;
}

// ---------------------------------------------------------------------------
// Single-process parity, determinism, footprint
// ---------------------------------------------------------------------------

using SpCase = std::tuple<int, Precision>;  // accum, mlp precision

class GradAccumSpParityTest : public ::testing::TestWithParam<SpCase> {};

TEST_P(GradAccumSpParityTest, WindowLossMatchesUnsplitBatch) {
  const auto [A, precision] = GetParam();
  DlrmConfig c = tiny_config();
  c.mlp_precision = precision;
  const int windows = 4;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  const std::vector<double> ref = sp_losses(c, data, c.minibatch, 1, windows);
  const std::vector<double> acc = sp_losses(c, data, c.minibatch, A, windows);

  // The dense window sum is mathematically the full-batch gradient, but the
  // sparse rows update eagerly per micro-batch (micros later in the window
  // see slightly newer embeddings) and bf16 additionally rounds the smaller
  // per-micro payloads, so parity is to tolerance, not bitwise.
  const double tol = precision == Precision::kBf16 ? 3e-2 : 1e-2;
  for (int i = 0; i < windows; ++i) {
    EXPECT_NEAR(acc[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)], tol)
        << "window " << i << " A=" << A;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GradAccumSpParityTest,
    ::testing::Values(SpCase{2, Precision::kFp32}, SpCase{4, Precision::kFp32},
                      SpCase{2, Precision::kBf16},
                      SpCase{4, Precision::kBf16}),
    [](const ::testing::TestParamInfo<SpCase>& tpi) {
      return "A" + std::to_string(std::get<0>(tpi.param)) + "_" +
             std::string(to_string(std::get<1>(tpi.param)));
    });

// Fixed summation order: the accumulated path must be run-to-run bitwise
// deterministic, not merely close.
TEST(GradAccum, DeterministicAcrossRuns) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::vector<double> a = sp_losses(c, data, c.minibatch, 4, 5);
  const std::vector<double> b = sp_losses(c, data, c.minibatch, 4, 5);
  EXPECT_EQ(a, b);
}

TEST(GradAccum, RejectsIndivisibleWindow) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  DlrmModel model(c, {}, 42);
  EXPECT_THROW(Trainer(model, data, {.batch = 64, .grad_accum = 3}),
               CheckError);
  EXPECT_THROW(Trainer(model, data, {.batch = 64, .grad_accum = 0}),
               CheckError);
}

// ---------------------------------------------------------------------------
// Distributed parity and allreduce frequency
// ---------------------------------------------------------------------------

using DistCase = std::tuple<int, Precision>;  // ranks, mlp precision

class GradAccumDistParityTest : public ::testing::TestWithParam<DistCase> {};

// R ranks x A micro-batches vs the same R-rank run without accumulation:
// the only deltas are the in-window effects tested above, so the same
// tolerances apply at every rank count.
TEST_P(GradAccumDistParityTest, WindowLossMatchesUnsplitAtSameRanks) {
  const auto [R, precision] = GetParam();
  DlrmConfig c = tiny_config();
  c.mlp_precision = precision;
  const std::int64_t GN = 64;
  const int windows = 4;
  const std::uint64_t seed = 77;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const DlrmConfig& cc = c;

  auto run = [&](int accum) {
    std::vector<double> losses(static_cast<std::size_t>(windows), 0.0);
    run_ranks(R, 2, [&](ThreadComm& comm) {
      DistributedTrainerOptions opts;
      opts.lr = 0.05f;
      opts.global_batch = GN;
      opts.seed = seed;
      opts.grad_accum = accum;
      auto backend = QueueBackend::ccl_like(2);
      DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
      EXPECT_EQ(trainer.global_batch(), GN);  // effective, regardless of A
      EXPECT_EQ(trainer.model().global_batch(), GN / accum);
      for (int i = 0; i < windows; ++i) {
        const double loss = trainer.train(1);
        if (comm.rank() == 0) losses[static_cast<std::size_t>(i)] = loss;
      }
      // One optimizer step per window, exactly one allreduce each.
      EXPECT_EQ(trainer.model().allreduce_runs(), windows);
    });
    return losses;
  };

  const std::vector<double> ref = run(1);
  const double tol = precision == Precision::kBf16 ? 3e-2 : 1e-2;
  for (const int A : {2, 4}) {
    const std::vector<double> acc = run(A);
    for (int i = 0; i < windows; ++i) {
      EXPECT_NEAR(acc[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)], tol)
          << "window " << i << " R=" << R << " A=" << A;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GradAccumDistParityTest,
    ::testing::Values(DistCase{1, Precision::kFp32},
                      DistCase{2, Precision::kFp32},
                      DistCase{4, Precision::kFp32},
                      DistCase{1, Precision::kBf16},
                      DistCase{2, Precision::kBf16},
                      DistCase{4, Precision::kBf16}),
    [](const ::testing::TestParamInfo<DistCase>& tpi) {
      return "R" + std::to_string(std::get<0>(tpi.param)) + "_" +
             std::string(to_string(std::get<1>(tpi.param)));
    });

// ---------------------------------------------------------------------------
// Checkpointing under accumulation
// ---------------------------------------------------------------------------

TEST(GradAccum, CheckpointResumesBitExactAndRefusesWindowChange) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dlrm_accum_ckpt").string();
  std::filesystem::remove_all(dir);

  const std::vector<double> straight = sp_losses(c, data, c.minibatch, 2, 4);
  {
    DlrmModel model(c, {}, 42);
    Trainer trainer(model, data,
                    {.lr = 0.05f, .batch = c.minibatch, .grad_accum = 2});
    trainer.train(2);
    trainer.save_checkpoint(dir);
  }
  {
    DlrmModel model(c, {}, 9);
    Trainer trainer(model, data,
                    {.lr = 0.05f, .batch = c.minibatch, .grad_accum = 2});
    ASSERT_TRUE(trainer.resume_from(dir));
    ASSERT_EQ(trainer.iterations_done(), 2);
    // The saved cursor repositions the stream at window granularity, so the
    // continued run replays the exact micro-batches of the straight run.
    for (int i = 2; i < 4; ++i) {
      EXPECT_EQ(trainer.train(1), straight[static_cast<std::size_t>(i)])
          << "window " << i;
    }
  }
  {
    // Same effective batch, different window split: the data cursor no
    // longer matches step * grad_accum, so resume must refuse instead of
    // silently replaying or skipping micro-batches.
    DlrmModel model(c, {}, 9);
    Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
    EXPECT_THROW(trainer.resume_from(dir), CheckError);
  }
}

}  // namespace
}  // namespace dlrm
