// Tests for the multi-worker sharded data pipeline: prefetch on/off and any
// worker count must hand over bit-identical batches, backpressure must stay
// bounded, shutdown mid-stream must neither deadlock nor leak, and the
// randomized stall/early-shutdown soak must deliver every batch exactly
// once (the ASan/TSan CI passes run this file).
#include "data/prefetch.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <random>
#include <thread>

namespace dlrm {
namespace {

void expect_bitwise_equal(const HybridBatch& a, const HybridBatch& b) {
  ASSERT_EQ(a.dense.size(), b.dense.size());
  ASSERT_EQ(a.labels.size(), b.labels.size());
  EXPECT_EQ(std::memcmp(a.dense.data(), b.dense.data(),
                        static_cast<std::size_t>(a.dense.size()) * 4),
            0);
  EXPECT_EQ(std::memcmp(a.labels.data(), b.labels.data(),
                        static_cast<std::size_t>(a.labels.size()) * 4),
            0);
  ASSERT_EQ(a.owned_bags.size(), b.owned_bags.size());
  for (std::size_t k = 0; k < a.owned_bags.size(); ++k) {
    ASSERT_EQ(a.owned_bags[k].lookups(), b.owned_bags[k].lookups());
    ASSERT_EQ(a.owned_bags[k].batch(), b.owned_bags[k].batch());
    for (std::int64_t i = 0; i < a.owned_bags[k].lookups(); ++i) {
      ASSERT_EQ(a.owned_bags[k].indices[i], b.owned_bags[k].indices[i]);
    }
    for (std::int64_t i = 0; i <= a.owned_bags[k].batch(); ++i) {
      ASSERT_EQ(a.owned_bags[k].offsets[i], b.owned_bags[k].offsets[i]);
    }
  }
}

TEST(PrefetchLoader, BitIdenticalToSynchronousLoaderAtEveryDepth) {
  RandomDataset data(6, 4, 300, 3, 13);
  const std::int64_t GN = 16;
  for (int depth = 1; depth <= 4; ++depth) {
    DataLoader sync_loader(data, GN, /*rank=*/1, /*ranks=*/2, {1, 3},
                           LoaderMode::kLocalSlice);
    DataLoader async_loader(data, GN, 1, 2, {1, 3}, LoaderMode::kLocalSlice);
    PrefetchLoader prefetch(async_loader, {.enabled = true, .depth = depth});
    HybridBatch ref;
    for (std::int64_t iter = 0; iter < 10; ++iter) {
      sync_loader.next(iter, ref);
      const HybridBatch& got = prefetch.next(iter);
      SCOPED_TRACE("depth " + std::to_string(depth) + " iter " +
                   std::to_string(iter));
      expect_bitwise_equal(ref, got);
    }
  }
}

TEST(PrefetchLoader, DisabledModeIsAPassthrough) {
  RandomDataset data(4, 2, 100, 2, 17);
  DataLoader sync_loader(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
  DataLoader wrapped(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
  PrefetchLoader prefetch(wrapped, {.enabled = false});
  HybridBatch ref;
  for (std::int64_t iter = 0; iter < 4; ++iter) {
    sync_loader.next(iter, ref);
    expect_bitwise_equal(ref, prefetch.next(iter));
    // Nothing is hidden in synchronous mode.
    EXPECT_EQ(prefetch.last_wait_sec(), prefetch.last_load_sec());
  }
}

TEST(PrefetchLoader, ReseekRestartsTheStreamDeterministically) {
  RandomDataset data(5, 3, 200, 2, 19);
  DataLoader sync_loader(data, 12, 0, 2, {0, 2}, LoaderMode::kLocalSlice);
  DataLoader wrapped(data, 12, 0, 2, {0, 2}, LoaderMode::kLocalSlice);
  PrefetchLoader prefetch(wrapped, {.enabled = true, .depth = 3});
  HybridBatch ref;
  // Sequential, then jump backwards (train -> re-eval pattern), then far
  // forwards (eval range), then back to the training stream.
  const std::int64_t script[] = {0, 1, 2, 1, 2, 50, 51, 3, 4};
  for (std::int64_t iter : script) {
    sync_loader.next(iter, ref);
    SCOPED_TRACE("iter " + std::to_string(iter));
    expect_bitwise_equal(ref, prefetch.next(iter));
  }
}

TEST(PrefetchLoader, BackpressureBoundsTheProducer) {
  RandomDataset data(4, 2, 100, 2, 23);
  for (int depth = 1; depth <= 4; ++depth) {
    DataLoader loader(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
    PrefetchLoader prefetch(loader, {.enabled = true, .depth = depth});
    std::int64_t consumed = 0;
    for (std::int64_t iter = 0; iter < 6; ++iter) {
      prefetch.next(iter);
      ++consumed;
    }
    // Give the producer a moment to run as far ahead as it can, then check
    // the bound: everything consumed + at most depth ready + one in flight.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(200);
    while (prefetch.batches_loaded() < consumed + depth &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_LE(prefetch.batches_loaded(), consumed + depth + 1)
        << "depth " << depth;
  }
}

TEST(PrefetchLoader, CleanShutdownMidStream) {
  RandomDataset data(4, 2, 100, 2, 29);
  // Destroy the pipeline at every early stage: before the first batch,
  // with the queue full and the producer blocked on backpressure, and
  // mid-consumption. Completion without hanging is the assertion (and the
  // sanitizer CI passes catch leaks/races).
  for (int depth = 1; depth <= 4; ++depth) {
    for (int consume = 0; consume <= 3; ++consume) {
      DataLoader loader(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
      PrefetchLoader prefetch(loader, {.enabled = true, .depth = depth});
      for (std::int64_t iter = 0; iter < consume; ++iter) prefetch.next(iter);
    }
  }
}

TEST(PrefetchLoader, AccountingAccumulates) {
  RandomDataset data(4, 2, 100, 2, 31);
  DataLoader loader(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
  PrefetchLoader prefetch(loader, {.enabled = true, .depth = 2});
  for (std::int64_t iter = 0; iter < 5; ++iter) prefetch.next(iter);
  EXPECT_GT(prefetch.total_load_sec(), 0.0);
  EXPECT_GE(prefetch.total_wait_sec(), 0.0);
  EXPECT_GE(prefetch.batches_loaded(), 5);
}

TEST(PrefetchLoader, RejectsBadDepth) {
  RandomDataset data(4, 2, 100, 2, 37);
  DataLoader loader(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
  EXPECT_THROW(PrefetchLoader(loader, {.enabled = true, .depth = 0}),
               CheckError);
  EXPECT_THROW(
      PrefetchLoader(loader, {.enabled = true, .depth = 2, .workers = 0}),
      CheckError);
}

// The tentpole contract: W workers each materialize the interleaved shard
// {i : i % W == w} of the stream, and the reassembled hand-off is
// bit-identical to the synchronous loader for every (W, depth) shape —
// including W > depth+1 (more workers than ring slots).
TEST(PrefetchLoader, BitIdenticalForEveryWorkerCount) {
  RandomDataset data(6, 4, 300, 3, 13);
  const std::int64_t GN = 16;
  for (int workers : {1, 2, 3, 4, 6}) {
    for (int depth : {1, 2, 4}) {
      DataLoader sync_loader(data, GN, 1, 2, {1, 3}, LoaderMode::kLocalSlice);
      DataLoader async_loader(data, GN, 1, 2, {1, 3}, LoaderMode::kLocalSlice);
      PrefetchLoader prefetch(
          async_loader, {.enabled = true, .depth = depth, .workers = workers});
      EXPECT_EQ(prefetch.workers(), workers);
      HybridBatch ref;
      for (std::int64_t iter = 0; iter < 12; ++iter) {
        sync_loader.next(iter, ref);
        const HybridBatch& got = prefetch.next(iter);
        SCOPED_TRACE("workers " + std::to_string(workers) + " depth " +
                     std::to_string(depth) + " iter " + std::to_string(iter));
        expect_bitwise_equal(ref, got);
      }
      EXPECT_EQ(prefetch.reseeks(), 0);
    }
  }
}

TEST(PrefetchLoader, ReseekRestartsAllWorkersDeterministically) {
  RandomDataset data(5, 3, 200, 2, 19);
  DataLoader sync_loader(data, 12, 0, 2, {0, 2}, LoaderMode::kLocalSlice);
  DataLoader wrapped(data, 12, 0, 2, {0, 2}, LoaderMode::kLocalSlice);
  PrefetchLoader prefetch(wrapped,
                          {.enabled = true, .depth = 3, .workers = 3});
  HybridBatch ref;
  const std::int64_t script[] = {0, 1, 2, 1, 2, 50, 51, 3, 4};
  for (std::int64_t iter : script) {
    sync_loader.next(iter, ref);
    SCOPED_TRACE("iter " + std::to_string(iter));
    expect_bitwise_equal(ref, prefetch.next(iter));
  }
  EXPECT_EQ(prefetch.reseeks(), 3);  // jumps to 1, 50, 3
}

// seek() + prefill() is the warm-restore path: reposition the stream
// without consuming, block until the ring is full, then hand off batches
// from the new cursor — with no reseek charged and no wasted loads.
TEST(PrefetchLoader, SeekAndPrefillWarmTheRing) {
  RandomDataset data(5, 3, 200, 2, 19);
  DataLoader sync_loader(data, 12, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
  DataLoader wrapped(data, 12, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
  for (int workers : {1, 3}) {
    PrefetchLoader prefetch(wrapped,
                            {.enabled = true, .depth = 3, .workers = workers});
    prefetch.seek(41);
    EXPECT_EQ(prefetch.next_iter(), 41);
    prefetch.prefill();
    EXPECT_GE(prefetch.ready_batches(), 3);
    HybridBatch ref;
    for (std::int64_t iter = 41; iter < 47; ++iter) {
      sync_loader.next(iter, ref);
      SCOPED_TRACE("workers " + std::to_string(workers) + " iter " +
                   std::to_string(iter));
      expect_bitwise_equal(ref, prefetch.next(iter));
    }
    EXPECT_EQ(prefetch.reseeks(), 0);
    EXPECT_EQ(prefetch.next_iter(), 47);
  }
}

TEST(PrefetchLoader, BackpressureBoundsTheWorkers) {
  RandomDataset data(4, 2, 100, 2, 23);
  for (int workers : {2, 4}) {
    for (int depth = 1; depth <= 3; ++depth) {
      DataLoader loader(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
      PrefetchLoader prefetch(
          loader, {.enabled = true, .depth = depth, .workers = workers});
      std::int64_t consumed = 0;
      for (std::int64_t iter = 0; iter < 6; ++iter) {
        prefetch.next(iter);
        ++consumed;
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(200);
      while (prefetch.batches_loaded() < consumed + depth &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      // The ring bounds outstanding batches at depth+1 regardless of W.
      EXPECT_LE(prefetch.batches_loaded(), consumed + depth + 1)
          << "workers " << workers << " depth " << depth;
    }
  }
}

TEST(PrefetchLoader, CleanShutdownMidStreamWithWorkers) {
  RandomDataset data(4, 2, 100, 2, 29);
  // Destroy the pipeline at every early stage for several worker counts:
  // before the first batch, with the ring full and workers blocked on
  // backpressure, and mid-consumption. Completion without hanging is the
  // assertion (and the sanitizer CI passes catch leaks/races).
  for (int workers : {2, 3}) {
    for (int depth = 1; depth <= 3; ++depth) {
      for (int consume = 0; consume <= 3; ++consume) {
        DataLoader loader(data, 8, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
        PrefetchLoader prefetch(
            loader, {.enabled = true, .depth = depth, .workers = workers});
        for (std::int64_t iter = 0; iter < consume; ++iter) {
          prefetch.next(iter);
        }
      }
    }
  }
}

// Stress/soak: randomized producer stalls, randomized seeks, and early
// shutdown at randomized pipeline states, 200 trials. Every consumed batch
// is bit-compared against the synchronous reference (no loss, duplication,
// or reordering — the in-order hand-off check inside next() backstops it),
// and every trial must join cleanly. The CI TSan pass runs this file, so
// the stalls double as a race amplifier.
TEST(PrefetchLoader, StressRandomStallsSeeksAndEarlyShutdown) {
  RandomDataset data(5, 3, 200, 2, 41);
  const std::int64_t GN = 12;
  DataLoader sync_loader(data, GN, 0, 2, {0, 2}, LoaderMode::kLocalSlice);
  HybridBatch ref;
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 200; ++trial) {
    const int workers = 1 + static_cast<int>(rng() % 4);
    const int depth = 1 + static_cast<int>(rng() % 3);
    const std::uint32_t stall_salt = rng();
    PrefetchOptions opts;
    opts.enabled = true;
    opts.depth = depth;
    opts.workers = workers;
    opts.stall_hook = [stall_salt](int w, std::int64_t iter) {
      // Deterministic pseudo-random stall per (worker, iter): ~1 in 3
      // loads sleeps up to 300us, desynchronizing the workers.
      const std::uint32_t h = stall_salt ^
                              (static_cast<std::uint32_t>(iter) * 2654435761u) ^
                              (static_cast<std::uint32_t>(w) * 40503u);
      if (h % 3u == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(h % 300u));
      }
    };
    DataLoader loader(data, GN, 0, 2, {0, 2}, LoaderMode::kLocalSlice);
    PrefetchLoader prefetch(loader, opts);

    std::int64_t iter = 0;
    if (rng() % 4 == 0) {
      iter = static_cast<std::int64_t>(rng() % 40);
      prefetch.seek(iter);
      if (rng() % 2 == 0) prefetch.prefill(static_cast<int>(rng() % 3));
    }
    const int consume = static_cast<int>(rng() % 7);
    for (int i = 0; i < consume; ++i) {
      if (rng() % 8 == 0) {
        iter = static_cast<std::int64_t>(rng() % 40);  // mid-stream reseek
      }
      sync_loader.next(iter, ref);
      SCOPED_TRACE("trial " + std::to_string(trial) + " iter " +
                   std::to_string(iter));
      expect_bitwise_equal(ref, prefetch.next(iter));
      ++iter;
    }
    // Early shutdown here: the destructor must drain stalled workers and
    // join without deadlock, whatever state the ring is in.
  }
}

}  // namespace
}  // namespace dlrm
