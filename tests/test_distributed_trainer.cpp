// End-to-end tests for DistributedTrainer: the paper's hybrid-parallelism
// correctness claim (R-rank training ≡ one big-batch single-process model)
// checked at the training-loop level — per-iteration GLOBAL mean loss parity
// against the single-process Trainer on the same GN stream, in fp32 and
// bf16 — plus prefetch on/off determinism and distributed evaluation.
#include "core/dist_trainer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/model.hpp"

namespace dlrm {
namespace {

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};  // S = 6
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

// Per-iteration losses of the single-process reference on global batches.
std::vector<double> single_process_losses(const DlrmConfig& c,
                                          const Dataset& data,
                                          std::int64_t gn, int iters,
                                          std::uint64_t seed, float lr) {
  DlrmModel model(c, {}, seed);
  // The owning ctor matches the dense optimizer to c.mlp_precision, exactly
  // like DistributedDlrm does internally.
  Trainer trainer(model, data, {.lr = lr, .batch = gn, .seed = seed});
  std::vector<double> out;
  for (int i = 0; i < iters; ++i) out.push_back(trainer.train(1));
  return out;
}

using ParityCase = std::tuple<int, Precision>;  // ranks, mlp precision

class DistributedTrainerParityTest
    : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DistributedTrainerParityTest, GlobalLossMatchesSingleProcess) {
  const auto [R, precision] = GetParam();
  DlrmConfig c = tiny_config();
  c.mlp_precision = precision;
  const std::int64_t GN = 64;
  const int iters = 6;
  const std::uint64_t seed = 77;
  const float lr = 0.05f;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  const std::vector<double> ref =
      single_process_losses(c, data, GN, iters, seed, lr);

  std::vector<double> dist(static_cast<std::size_t>(iters), 0.0);
  const DlrmConfig& cc = c;
  run_ranks(R, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = lr;
    opts.global_batch = GN;
    opts.seed = seed;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    for (int i = 0; i < iters; ++i) {
      const double loss = trainer.train(1);  // global mean, allreduced
      if (comm.rank() == 0) dist[static_cast<std::size_t>(i)] = loss;
    }
    EXPECT_EQ(trainer.iterations_done(), iters);
  });

  // fp32: differences come only from reduction order (DDP averaging,
  // sliced interaction). bf16: the distributed path additionally rounds
  // the gradient/exchange wire payloads to bf16, which the single-process
  // model does not, so the drift per step is one bf16 ulp scale.
  const double tol = precision == Precision::kBf16 ? 2e-2 : 3e-3;
  for (int i = 0; i < iters; ++i) {
    EXPECT_NEAR(dist[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)], tol)
        << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistributedTrainerParityTest,
    ::testing::Values(ParityCase{1, Precision::kFp32},
                      ParityCase{2, Precision::kFp32},
                      ParityCase{4, Precision::kFp32},
                      ParityCase{1, Precision::kBf16},
                      ParityCase{2, Precision::kBf16},
                      ParityCase{4, Precision::kBf16}),
    [](const ::testing::TestParamInfo<ParityCase>& tpi) {
      return "R" + std::to_string(std::get<0>(tpi.param)) + "_" +
             std::string(to_string(std::get<1>(tpi.param)));
    });

// The prefetch pipeline must not change training at all: same seeds, same
// batches, bit-identical loss sequence whether batches are materialized
// synchronously inside the step or ahead of it on the producer thread.
TEST(DistributedTrainer, PrefetchOnOffIdenticalLossSequences) {
  const DlrmConfig c = tiny_config();
  const DlrmConfig& cc = c;
  const std::int64_t GN = 64;
  const int iters = 5;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  auto run = [&](bool prefetch, int depth) {
    std::vector<double> losses(static_cast<std::size_t>(iters), 0.0);
    run_ranks(2, 2, [&](ThreadComm& comm) {
      DistributedTrainerOptions opts;
      opts.lr = 0.05f;
      opts.global_batch = GN;
      opts.prefetch = prefetch;
      opts.prefetch_depth = depth;
      auto backend = QueueBackend::ccl_like(2);
      DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
      for (int i = 0; i < iters; ++i) {
        const double loss = trainer.train(1);
        if (comm.rank() == 0) losses[static_cast<std::size_t>(i)] = loss;
      }
    });
    return losses;
  };

  const std::vector<double> off = run(false, 1);
  for (int depth = 1; depth <= 4; ++depth) {
    const std::vector<double> on = run(true, depth);
    for (int i = 0; i < iters; ++i) {
      EXPECT_EQ(on[static_cast<std::size_t>(i)],
                off[static_cast<std::size_t>(i)])
          << "depth " << depth << " iteration " << i;
    }
  }
}

SyntheticCtrDataset ctr_tiny_data() {
  CtrParams p;
  p.dense_dim = 8;
  p.rows = {2000, 1000, 3000, 500};
  p.pooling = 1;
  p.index_skew = 1.2;
  p.dense_scale = 1.2f;
  p.sparse_scale = 0.9f;
  p.seed = 99;
  return SyntheticCtrDataset(p);
}

DlrmConfig ctr_tiny_config() {
  DlrmConfig c;
  c.name = "ctr-tiny";
  c.minibatch = 128;
  c.global_batch_strong = 128;
  c.local_batch_weak = 64;
  c.pooling = 1;
  c.dim = 16;
  c.table_rows = {2000, 1000, 3000, 500};
  c.bottom_mlp = {8, 32, 16};
  c.top_mlp = {32, 1};
  c.validate();
  return c;
}

TEST(DistributedTrainer, EvaluateIsIdenticalAcrossRanksAndImproves) {
  const DlrmConfig c = ctr_tiny_config();
  const DlrmConfig& cc = c;
  const SyntheticCtrDataset data = ctr_tiny_data();
  const std::int64_t GN = 128;
  const std::int64_t eval_first = GN * 2000;  // held out beyond training
  std::vector<double> before(2), after(2);

  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.1f;
    opts.global_batch = GN;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    before[static_cast<std::size_t>(comm.rank())] =
        trainer.evaluate(eval_first, 2048);
    trainer.train(150);
    after[static_cast<std::size_t>(comm.rank())] =
        trainer.evaluate(eval_first, 2048);
  });

  // Every rank gathers the same global logits -> the same AUC, exactly.
  EXPECT_EQ(before[0], before[1]);
  EXPECT_EQ(after[0], after[1]);
  EXPECT_NEAR(before[0], 0.5, 0.06);  // untrained ≈ chance
  EXPECT_GT(after[0], 0.62) << "distributed training failed to beat chance";
}

TEST(DistributedTrainer, TrainWithEvalMergesEmptyIntervalsAndAppliesSchedule) {
  const DlrmConfig c = ctr_tiny_config();
  const DlrmConfig& cc = c;
  const SyntheticCtrDataset data = ctr_tiny_data();
  const std::int64_t GN = 128;

  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.1f;
    opts.global_batch = GN;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    // 2 total iterations but 8 requested checkpoints: empty intervals must
    // be merged, never reported as loss-0.0 points.
    const LrSchedule schedule = [](double frac) {
      return static_cast<float>(0.1 * (1.0 - 0.5 * frac));
    };
    const auto points =
        trainer.train_with_eval(GN * 2, /*eval_samples=*/512,
                                /*eval_points=*/8, schedule);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_DOUBLE_EQ(points[0].epoch_fraction, 0.5);
    EXPECT_DOUBLE_EQ(points[1].epoch_fraction, 1.0);
    for (const auto& p : points) {
      EXPECT_GT(p.train_loss, 0.0);
      EXPECT_GT(p.auc, 0.0);
    }
    // The schedule's final value must have been applied.
    EXPECT_FLOAT_EQ(trainer.lr(), 0.05f);
  });
}

TEST(DistributedTrainer, ReferenceLoaderModeTrainsIdentically) {
  // kFullGlobalBatch materializes more bytes but must produce the same
  // batches, hence the same losses, as kLocalSlice.
  const DlrmConfig c = tiny_config();
  const DlrmConfig& cc = c;
  const std::int64_t GN = 64;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  auto run = [&](LoaderMode mode) {
    double loss = 0.0;
    run_ranks(2, 2, [&](ThreadComm& comm) {
      DistributedTrainerOptions opts;
      opts.lr = 0.05f;
      opts.global_batch = GN;
      opts.loader_mode = mode;
      auto backend = QueueBackend::ccl_like(2);
      DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
      const double l = trainer.train(4);
      if (comm.rank() == 0) loss = l;
    });
    return loss;
  };

  EXPECT_EQ(run(LoaderMode::kLocalSlice), run(LoaderMode::kFullGlobalBatch));
}

}  // namespace
}  // namespace dlrm
