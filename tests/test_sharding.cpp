// Sharding-plan tests: planner placement properties, row-range shard-view
// equivalence against unsharded tables, bit-parity of the kRoundRobin plan
// with the pre-refactor (hard-coded t % R) trainer, cost-driven plan parity
// with single-process training, and uneven local batches (GN % R != 0).
#include "core/sharding.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/dist_trainer.hpp"
#include "core/model.hpp"

namespace dlrm {
namespace {

// ---------------------------------------------------------------------------
// Planner unit tests
// ---------------------------------------------------------------------------

TEST(ShardingPlan, RoundRobinMatchesModuloPlacement) {
  const std::vector<std::int64_t> rows{300, 200, 250, 150, 220, 180};
  const ShardingPlan plan = ShardingPlan::round_robin(rows, 4);
  ASSERT_EQ(plan.num_shards(), 6);
  EXPECT_FALSE(plan.has_split_tables());
  for (std::int64_t t = 0; t < 6; ++t) {
    const Shard& sh = plan.shard(t);  // canonical order == table order here
    EXPECT_EQ(sh.table, t);
    EXPECT_EQ(sh.rank, static_cast<int>(t % 4));
    EXPECT_EQ(sh.row_begin, 0);
    EXPECT_EQ(sh.row_end, rows[static_cast<std::size_t>(t)]);
  }
}

TEST(ShardingPlan, GreedyBalancedIsolatesTheHotTable) {
  // One table 8x the cost of the rest: LPT must give its rank nothing else,
  // and must beat round-robin's modelled imbalance.
  const std::vector<std::int64_t> rows(8, 1000);
  std::vector<double> costs(8, 1.0);
  costs[0] = 8.0;
  const ShardingPlan greedy = ShardingPlan::greedy_balanced(rows, 4, costs);
  ASSERT_EQ(greedy.num_shards(), 8);
  const int hot_rank = greedy.shard(0).rank;
  EXPECT_EQ(greedy.shards_of_rank(hot_rank).size(), 1u);

  // Round-robin with the same costs puts table 4 on the hot rank too.
  ShardingPlan rr = ShardingPlan::round_robin(rows, 4);
  double rr_max = 0.0;
  for (int r = 0; r < 4; ++r) {
    double load = 0.0;
    for (std::int64_t sid : rr.shards_of_rank(r)) {
      load += costs[static_cast<std::size_t>(rr.shard(sid).table)];
    }
    rr_max = std::max(rr_max, load);
  }
  double greedy_max = 0.0;
  for (int r = 0; r < 4; ++r) greedy_max = std::max(greedy_max, greedy.rank_cost(r));
  EXPECT_LT(greedy_max, rr_max);
  // The hot table alone bounds LPT's makespan: nothing else shares its rank.
  EXPECT_DOUBLE_EQ(greedy_max, 8.0);
}

TEST(ShardingPlan, GreedyBalancedIsDeterministic) {
  const std::vector<std::int64_t> rows{100, 200, 300, 400, 500};
  const std::vector<double> costs{3.0, 1.0, 4.0, 1.0, 5.0};
  const ShardingPlan a = ShardingPlan::greedy_balanced(rows, 3, costs);
  const ShardingPlan b = ShardingPlan::greedy_balanced(rows, 3, costs);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  for (std::int64_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_EQ(a.shard(s).rank, b.shard(s).rank);
  }
}

TEST(ShardingPlan, RowSplitCapsRankRowsBelowTheBiggestTable) {
  // 16000-row table in a 30000-row set on 4 ranks: the auto threshold
  // (ceil(total/R) = 7500) splits it into 3 shards, so no rank has to hold
  // the whole table — the "table larger than one rank's share" unlock.
  std::vector<std::int64_t> rows(8, 2000);
  rows[0] = 16000;
  std::vector<double> costs(8, 1.0);
  costs[0] = 8.0;
  const ShardingPlan plan = ShardingPlan::row_split(rows, 4, costs, 0);
  EXPECT_TRUE(plan.has_split_tables());
  const auto& splits = plan.shards_of_table(0);
  EXPECT_GE(splits.size(), 2u);
  // Shards tile table 0.
  std::int64_t next = 0;
  for (std::int64_t sid : splits) {
    EXPECT_EQ(plan.shard(sid).row_begin, next);
    next = plan.shard(sid).row_end;
  }
  EXPECT_EQ(next, 16000);
  for (int r = 0; r < 4; ++r) {
    EXPECT_LT(plan.rank_rows(r), 16000) << "rank " << r;
  }
}

TEST(ShardingPlan, RowSplitRespectsExplicitThreshold) {
  std::vector<std::int64_t> rows{10000, 1000};
  std::vector<double> costs{10.0, 1.0};
  const ShardingPlan plan = ShardingPlan::row_split(rows, 2, costs, 5000);
  EXPECT_EQ(plan.shards_of_table(0).size(), 2u);   // 10000 / 5000
  EXPECT_EQ(plan.shards_of_table(1).size(), 1u);   // below threshold
}

TEST(ShardingPlan, CustomRejectsNonTilingShards) {
  std::vector<Shard> shards;
  shards.push_back({.table = 0, .row_begin = 0, .row_end = 50, .rank = 0});
  shards.push_back({.table = 0, .row_begin = 60, .row_end = 100, .rank = 1});
  EXPECT_THROW(ShardingPlan::custom(1, 2, shards), CheckError);
}

// With all the lookup mass measured in the head quarter of the table, the
// head shard must carry (almost) the whole table cost and the tail shards
// (almost) none — the re-costing that fixes the ROADMAP's "Zipf head
// shards are under-costed" gap.
TEST(ShardingPlan, RowSplitCostsFollowMeasuredHistogram) {
  std::vector<std::int64_t> rows{8000};
  std::vector<double> costs{1.0};
  std::vector<std::vector<double>> hists{{100.0, 0.0, 0.0, 0.0}};  // head-only
  const ShardingPlan plan =
      ShardingPlan::row_split(rows, 4, costs, 2000, &hists);
  ASSERT_EQ(plan.shards_of_table(0).size(), 4u);
  const Shard& head = plan.shard(plan.shards_of_table(0)[0]);
  EXPECT_EQ(head.row_begin, 0);
  EXPECT_NEAR(head.cost, 1.0, 1e-9);  // all measured mass is in rows [0,2000)
  for (std::size_t k = 1; k < 4; ++k) {
    EXPECT_LT(plan.shard(plan.shards_of_table(0)[k]).cost, 1e-6);
  }
  // LPT with honest costs leaves the head shard alone on its rank.
  EXPECT_EQ(plan.shards_of_rank(head.rank).size(), 1u);
}

// Bucket mass straddling a shard boundary is apportioned pro-rata, and a
// flat histogram reproduces the historical uniform row-share costing.
TEST(ShardingPlan, RowSplitHistogramProRataAndUniformFallback) {
  std::vector<std::int64_t> rows{9000};
  std::vector<double> costs{2.0};
  // 3 even buckets of 3000 rows vs 2 shards of 4500: shard 0 takes bucket
  // 0 plus half of bucket 1.
  std::vector<std::vector<double>> hists{{60.0, 30.0, 10.0}};
  const ShardingPlan plan =
      ShardingPlan::row_split(rows, 2, costs, 4500, &hists);
  ASSERT_EQ(plan.shards_of_table(0).size(), 2u);
  EXPECT_NEAR(plan.shard(plan.shards_of_table(0)[0]).cost,
              2.0 * (60.0 + 15.0) / 100.0, 1e-9);
  EXPECT_NEAR(plan.shard(plan.shards_of_table(0)[1]).cost,
              2.0 * (15.0 + 10.0) / 100.0, 1e-9);

  std::vector<std::vector<double>> flat{{25.0, 25.0, 25.0, 25.0}};
  const ShardingPlan measured =
      ShardingPlan::row_split(rows, 2, costs, 4500, &flat);
  const ShardingPlan uniform = ShardingPlan::row_split(rows, 2, costs, 4500);
  for (std::int64_t s = 0; s < uniform.num_shards(); ++s) {
    EXPECT_NEAR(measured.shard(s).cost, uniform.shard(s).cost, 1e-9);
  }
  // An all-zero histogram carries no information → uniform fallback too.
  std::vector<std::vector<double>> zero{{0.0, 0.0}};
  const ShardingPlan fallback =
      ShardingPlan::row_split(rows, 2, costs, 4500, &zero);
  for (std::int64_t s = 0; s < uniform.num_shards(); ++s) {
    EXPECT_NEAR(fallback.shard(s).cost, uniform.shard(s).cost, 1e-9);
  }
}

// The measurement pass itself: a Zipf index stream (rank 0 hottest) must
// yield a front-loaded histogram; lookup rates match the nominal pooling.
TEST(Sharding, MeasureLookupStatsSeesZipfHead) {
  CtrParams params;
  params.dense_dim = 4;
  params.rows = {20000, 2000};
  params.pooling = 2;
  params.index_skew = 1.05;
  SyntheticCtrDataset data(params);
  const LookupStats stats = measure_lookup_stats(data, 512, 16);
  ASSERT_EQ(stats.row_histograms.size(), 2u);
  const auto& head_hist = stats.row_histograms[0];
  ASSERT_EQ(head_hist.size(), 16u);
  double total = 0.0, front = 0.0;
  for (std::size_t b = 0; b < head_hist.size(); ++b) {
    total += head_hist[b];
    if (b < 4) front += head_hist[b];
  }
  EXPECT_NEAR(total, 512.0 * 2.0, 1e-9);  // every lookup lands in a bucket
  // Criteo-like skew concentrates well over half the mass in the head
  // quarter of the rows (a uniform stream would put 25% there).
  EXPECT_GT(front / total, 0.5);
  EXPECT_NEAR(stats.lookups_per_sample[0], 2.0, 1e-9);
}

TEST(Sharding, MeasureTableLookupsSeesPerTablePooling) {
  std::vector<std::int64_t> rows(4, 1000);
  std::vector<std::int64_t> poolings{8, 1, 2, 1};
  RandomDataset data(4, rows, poolings, 5);
  const std::vector<double> lookups = measure_table_lookups(data, 64);
  ASSERT_EQ(lookups.size(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(lookups[t], static_cast<double>(poolings[t]));
  }
  const KernelModel kernel(clx_8280(), KernelEffs{});
  const auto costs = estimate_table_costs(kernel, rows, lookups, 16, 256);
  EXPECT_GT(costs[0], 3.0 * costs[1]);  // 8x lookups → much costlier table
}

// ---------------------------------------------------------------------------
// Row-range shard views of EmbeddingTable
// ---------------------------------------------------------------------------

TEST(ShardView, InitMatchesTheFullTableRows) {
  const std::int64_t M = 100, E = 8;
  EmbeddingTable full(M, E);
  Rng r1(123);
  full.init(r1, 0.5f);

  EmbeddingTable shard(60, E, EmbedPrecision::kFp32, /*row_begin=*/40,
                       /*global_rows=*/M);
  Rng r2(123);
  shard.init(r2, 0.5f);

  std::vector<float> a(E), b(E);
  for (std::int64_t row = 0; row < 60; ++row) {
    full.read_row(40 + row, a.data());
    shard.read_row(row, b.data());
    for (std::int64_t e = 0; e < E; ++e) {
      ASSERT_EQ(a[static_cast<std::size_t>(e)], b[static_cast<std::size_t>(e)])
          << "row " << row;
    }
  }
}

TEST(ShardView, RowSplitForwardAndUpdateMatchUnshardedTable) {
  const std::int64_t M = 64, E = 4, N = 32;
  const std::int64_t split = 24;  // shards [0,24) and [24,64)

  EmbeddingTable full(M, E);
  Rng rf(9);
  full.init(rf, 0.3f);
  EmbeddingTable lo(split, E, EmbedPrecision::kFp32, 0, M);
  EmbeddingTable hi(M - split, E, EmbedPrecision::kFp32, split, M);
  Rng rl(9), rh(9);
  lo.init(rl, 0.3f);
  hi.init(rh, 0.3f);

  // Random multi-hot bags over the full table.
  BagBatch bags;
  const std::int64_t P = 3;
  bags.indices.reshape({N * P});
  bags.offsets.reshape({N + 1});
  Rng ri(31);
  for (std::int64_t i = 0; i <= N; ++i) bags.offsets[i] = i * P;
  for (std::int64_t s = 0; s < N * P; ++s) bags.indices[s] = ri.next_index(M);

  BagBatch lo_bags, hi_bags;
  rewrite_bags_to_shard(bags, 0, split, lo_bags);
  rewrite_bags_to_shard(bags, split, M, hi_bags);
  EXPECT_EQ(lo_bags.lookups() + hi_bags.lookups(), bags.lookups());

  // Forward: partial sums of the shards reduce to the full bag sums.
  Tensor<float> out_full({N, E}), out_lo({N, E}), out_hi({N, E});
  full.forward(bags, out_full.data());
  lo.forward(lo_bags, out_lo.data());
  hi.forward(hi_bags, out_hi.data());
  for (std::int64_t i = 0; i < N * E; ++i) {
    EXPECT_NEAR(out_lo[i] + out_hi[i], out_full[i], 1e-5f) << "elem " << i;
  }

  // Fused backward/update: each row receives the same update sequence in
  // the same order on the shard as on the full table → bit-exact rows.
  Tensor<float> dy({N, E});
  Rng rd(77);
  for (std::int64_t i = 0; i < N * E; ++i) dy[i] = rd.uniform(-1.0f, 1.0f);
  full.fused_backward_update(dy.data(), bags, 0.1f, UpdateStrategy::kRaceFree);
  lo.fused_backward_update(dy.data(), lo_bags, 0.1f, UpdateStrategy::kRaceFree);
  hi.fused_backward_update(dy.data(), hi_bags, 0.1f, UpdateStrategy::kRaceFree);

  std::vector<float> a(E), b(E);
  for (std::int64_t row = 0; row < M; ++row) {
    full.read_row(row, a.data());
    if (row < split) {
      lo.read_row(row, b.data());
    } else {
      hi.read_row(row - split, b.data());
    }
    for (std::int64_t e = 0; e < E; ++e) {
      ASSERT_EQ(a[static_cast<std::size_t>(e)], b[static_cast<std::size_t>(e)])
          << "row " << row;
    }
  }
}

TEST(Sharding, RewriteBagsHandlesEmptyBags) {
  BagBatch bags;
  bags.indices.reshape({4});
  bags.offsets.reshape({4});  // 3 bags: {5}, {}, {90, 7, 5}
  bags.offsets[0] = 0;
  bags.offsets[1] = 1;
  bags.offsets[2] = 1;
  bags.offsets[3] = 4;
  bags.indices[0] = 5;
  bags.indices[1] = 90;
  bags.indices[2] = 7;
  bags.indices[3] = 5;
  BagBatch out;
  rewrite_bags_to_shard(bags, 0, 10, out);
  ASSERT_EQ(out.batch(), 3);
  EXPECT_EQ(out.lookups(), 3);
  EXPECT_EQ(out.offsets[1], 1);  // {5}
  EXPECT_EQ(out.offsets[2], 1);  // {}
  EXPECT_EQ(out.offsets[3], 3);  // {7, 5}
  EXPECT_EQ(out.indices[0], 5);
  EXPECT_EQ(out.indices[1], 7);
  EXPECT_EQ(out.indices[2], 5);
  out.validate(10);

  rewrite_bags_to_shard(bags, 10, 100, out);
  ASSERT_EQ(out.batch(), 3);
  EXPECT_EQ(out.lookups(), 1);
  EXPECT_EQ(out.indices[0], 80);  // 90 shifted by -10
  out.validate(90);
}

// ---------------------------------------------------------------------------
// Training-loop parity
// ---------------------------------------------------------------------------

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};  // S = 6
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

std::vector<double> distributed_losses(const DlrmConfig& c, const Dataset& data,
                                       std::int64_t gn, int R, int iters,
                                       DistributedTrainerOptions opts) {
  std::vector<double> losses(static_cast<std::size_t>(iters), 0.0);
  const DlrmConfig& cc = c;
  opts.global_batch = gn;
  run_ranks(R, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    for (int i = 0; i < iters; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) losses[static_cast<std::size_t>(i)] = loss;
    }
  });
  return losses;
}

std::vector<double> single_process_losses(const DlrmConfig& c,
                                          const Dataset& data, std::int64_t gn,
                                          int iters, std::uint64_t seed,
                                          float lr) {
  DlrmModel model(c, {}, seed);
  Trainer trainer(model, data, {.lr = lr, .batch = gn, .seed = seed});
  std::vector<double> out;
  for (int i = 0; i < iters; ++i) out.push_back(trainer.train(1));
  return out;
}

// Golden per-step global losses captured from the PRE-refactor trainer
// (hard-coded table t → rank t % R placement) at commit 935a61a, with the
// exact same config/dataset/options as below: tiny_config, RandomDataset
// seed 11, GN=64, lr=0.05, seed=77, default DistributedTrainerOptions,
// ccl_like(2) backend, run_ranks(R, 2). The kRoundRobin ShardingPlan must
// reproduce them bit-for-bit. Floating-point note: captured with the tier-1
// build flags (-O3 -march=native); unoptimized/sanitizer builds may contract
// differently, so the bitwise comparison is gated on __OPTIMIZE__.
struct GoldenCase {
  Precision precision;
  int ranks;
  double losses[8];
};

const GoldenCase kGolden[] = {
    {Precision::kFp32, 1, {0x1.a3f2ecp-1, 0x1.a7d156p-1, 0x1.7a20a2p-1, 0x1.731b32p-1, 0x1.74caacp-1, 0x1.80f42ap-1, 0x1.780c9ep-1, 0x1.65a926p-1}},
    {Precision::kFp32, 2, {0x1.a3f2ecp-1, 0x1.a7d154p-1, 0x1.7a20a2p-1, 0x1.731b34p-1, 0x1.74caacp-1, 0x1.80f42ap-1, 0x1.780cap-1, 0x1.65a928p-1}},
    {Precision::kFp32, 4, {0x1.a3f2ecp-1, 0x1.a7d154p-1, 0x1.7a20a4p-1, 0x1.731b32p-1, 0x1.74caaep-1, 0x1.80f42ap-1, 0x1.780cap-1, 0x1.65a926p-1}},
    {Precision::kBf16, 1, {0x1.a2498p-1, 0x1.a66772p-1, 0x1.79a0ep-1, 0x1.72ea26p-1, 0x1.74949cp-1, 0x1.80e686p-1, 0x1.77c144p-1, 0x1.65f3bap-1}},
    {Precision::kBf16, 2, {0x1.a2498p-1, 0x1.a669ecp-1, 0x1.79abdcp-1, 0x1.72d0e8p-1, 0x1.748d7cp-1, 0x1.80ddbp-1, 0x1.77c6f8p-1, 0x1.65edd4p-1}},
    {Precision::kBf16, 4, {0x1.a2498p-1, 0x1.a66a6ep-1, 0x1.79abd4p-1, 0x1.72e706p-1, 0x1.74932ap-1, 0x1.80ee1ep-1, 0x1.77cdd8p-1, 0x1.65e51ep-1}},
};

TEST(ShardingParity, RoundRobinReproducesPreRefactorLossesBitExactly) {
  for (const GoldenCase& g : kGolden) {
    SCOPED_TRACE(std::string(to_string(g.precision)) + " R" +
                 std::to_string(g.ranks));
    DlrmConfig c = tiny_config();
    c.mlp_precision = g.precision;
    RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.seed = 77;
    const std::vector<double> losses =
        distributed_losses(c, data, 64, g.ranks, 8, opts);
    for (int i = 0; i < 8; ++i) {
#ifdef __OPTIMIZE__
      EXPECT_EQ(losses[static_cast<std::size_t>(i)], g.losses[i])
          << "iteration " << i;
#else
      // Debug/sanitizer builds: same arithmetic, different FP contraction —
      // the sequence must still match to float-level precision.
      EXPECT_NEAR(losses[static_cast<std::size_t>(i)], g.losses[i], 1e-5)
          << "iteration " << i;
#endif
    }
  }
}

using PlanParityCase = std::tuple<ShardingPolicy, Precision>;

class ShardingPlanParityTest
    : public ::testing::TestWithParam<PlanParityCase> {};

// Cost-driven plans move tables (and split rows) but must train the same
// model: per-iteration global losses match the single-process reference on
// the same GN stream to reduction-order tolerance.
TEST_P(ShardingPlanParityTest, MatchesSingleProcessOnSkewedTables) {
  const auto [policy, precision] = GetParam();
  DlrmConfig c = tiny_config();
  // Skew: one table 8x the rows, with a split-friendly shape.
  c.table_rows = {1600, 200, 250, 150, 220, 180};
  c.mlp_precision = precision;
  const std::int64_t GN = 64;
  const int iters = 6;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  const std::vector<double> ref =
      single_process_losses(c, data, GN, iters, 77, 0.05f);

  for (int R : {2, 4}) {
    SCOPED_TRACE("R" + std::to_string(R));
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.seed = 77;
    opts.sharding.policy = policy;
    opts.sharding.row_split_threshold = 600;  // force splits of table 0
    const std::vector<double> dist =
        distributed_losses(c, data, GN, R, iters, opts);
    const double tol = precision == Precision::kBf16 ? 2e-2 : 3e-3;
    for (int i = 0; i < iters; ++i) {
      EXPECT_NEAR(dist[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)], tol)
          << "iteration " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ShardingPlanParityTest,
    ::testing::Values(
        PlanParityCase{ShardingPolicy::kGreedyBalanced, Precision::kFp32},
        PlanParityCase{ShardingPolicy::kRowSplit, Precision::kFp32},
        PlanParityCase{ShardingPolicy::kGreedyBalanced, Precision::kBf16},
        PlanParityCase{ShardingPolicy::kRowSplit, Precision::kBf16}),
    [](const ::testing::TestParamInfo<PlanParityCase>& tpi) {
      return std::string(to_string(std::get<0>(tpi.param))) + "_" +
             std::string(to_string(std::get<1>(tpi.param)));
    });

// Row-split plans actually split here: verify the plan the trainer built,
// and that a rank-local shard is smaller than the table it serves.
TEST(ShardingParity, RowSplitTrainsATableBiggerThanAnyRankShare) {
  DlrmConfig c = tiny_config();
  c.table_rows = {1600, 200, 250, 150, 220, 180};
  const DlrmConfig& cc = c;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  run_ranks(4, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = 64;
    opts.sharding.policy = ShardingPolicy::kRowSplit;
    opts.sharding.row_split_threshold = 600;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    const ShardingPlan& plan = trainer.model().plan();
    EXPECT_TRUE(plan.has_split_tables());
    EXPECT_GE(plan.shards_of_table(0).size(), 2u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_LT(plan.rank_rows(r), 1600) << "rank " << r;
    }
    // Convergence itself is covered by the parity suite (losses match the
    // single-process reference step for step); here assert the split run
    // trains sanely near the BCE floor of this label-noise dataset.
    const double first = trainer.train(4);
    const double last = trainer.train(4);
    EXPECT_LT(first, 1.0);
    EXPECT_LT(last, 0.75);
    // Placement accounting is SPMD-consistent and positive.
    const auto imb = trainer.embedding_imbalance();
    EXPECT_GT(imb.mean_sec, 0.0);
    EXPECT_GE(imb.max_sec, imb.mean_sec);
  });
}

// Uneven local batches: GN % R != 0 trains correctly (weighted global mean
// still matches the single-process reference) and evaluation allgathers the
// uneven slices into identical AUC on every rank.
TEST(ShardingParity, UnevenLocalBatchesMatchSingleProcess) {
  DlrmConfig c = tiny_config();
  const std::int64_t GN = 100;  // 100 % 3 != 0
  const int R = 3;
  const int iters = 6;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);

  const std::vector<double> ref =
      single_process_losses(c, data, GN, iters, 77, 0.05f);
  DistributedTrainerOptions opts;
  opts.lr = 0.05f;
  opts.seed = 77;
  const std::vector<double> dist =
      distributed_losses(c, data, GN, R, iters, opts);
  for (int i = 0; i < iters; ++i) {
    EXPECT_NEAR(dist[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)], 3e-3)
        << "iteration " << i;
  }
}

TEST(ShardingParity, UnevenEvaluateIsIdenticalAcrossRanks) {
  DlrmConfig c = tiny_config();
  const DlrmConfig& cc = c;
  const std::int64_t GN = 100;
  const int R = 3;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  std::vector<double> auc(static_cast<std::size_t>(R), 0.0);

  run_ranks(R, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.lr = 0.05f;
    opts.global_batch = GN;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    EXPECT_EQ(trainer.local_batch(),
              GN * (comm.rank() + 1) / R - GN * comm.rank() / R);
    trainer.train(3);
    auc[static_cast<std::size_t>(comm.rank())] = trainer.evaluate(GN * 50, 300);
  });
  EXPECT_EQ(auc[0], auc[1]);
  EXPECT_EQ(auc[1], auc[2]);
  EXPECT_GT(auc[0], 0.0);
}

}  // namespace
}  // namespace dlrm
