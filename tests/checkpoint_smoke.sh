#!/usr/bin/env bash
# train_cli save/kill/resume smoke (ctest tier1).
#
# Three runs of the same deterministic stream:
#   straight — 12 uninterrupted iterations (the reference trajectory);
#   part 1   — 9 iterations snapshotting at step 6, then "killed" (exits;
#              steps 7-9 are lost work past the snapshot);
#   part 2   — resumes the snapshot and trains to 12.
# The resumed run must reproduce the straight run's steps 7..12 (and its
# final reported loss) bit-for-bit: train_cli prints STEP_LOSS lines with
# %.17g, so a literal diff is the assertion.
#
# Legs: single-process (warm-restores the Trainer's MiniBatch pipeline),
# 2-rank × 2-worker (warm-restores the sharded distributed pipeline) —
# the first post-restore STEP_LOSS equality is the warm-restore regression:
# a mispositioned or cold-flushed pipeline would feed the wrong batch —
# then the same two through --async-ckpt (background saves must commit the
# same restorable bytes), and a kill-during-background-save leg that leaves
# torn step-suffixed files behind and requires resume to sweep them.
set -euo pipefail

TRAIN_CLI="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dlrm_ckpt_smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

run_leg() {
  local leg="$1"; shift
  local flags=(--config=small --scale-rows=256 --scale-batch=32 \
               --print-step-losses "$@")
  local ckpt="${WORK}/ckpt-${leg}"

  "${TRAIN_CLI}" "${flags[@]}" --iters=12 > "${WORK}/${leg}-straight.log"
  "${TRAIN_CLI}" "${flags[@]}" --iters=9 --checkpoint-dir="${ckpt}" \
      --save-every=6 > "${WORK}/${leg}-part1.log"
  "${TRAIN_CLI}" "${flags[@]}" --iters=12 --checkpoint-dir="${ckpt}" \
      --resume > "${WORK}/${leg}-part2.log"

  grep '^resumed from' "${WORK}/${leg}-part2.log" | grep -q 'at step 6' || {
    echo "FAIL(${leg}): part 2 did not resume from the step-6 snapshot" >&2
    cat "${WORK}/${leg}-part2.log" >&2
    exit 1
  }

  grep '^STEP_LOSS' "${WORK}/${leg}-straight.log" | tail -6 \
      > "${WORK}/${leg}-straight.tail"
  grep '^STEP_LOSS' "${WORK}/${leg}-part2.log" > "${WORK}/${leg}-resumed.steps"
  if ! diff "${WORK}/${leg}-straight.tail" "${WORK}/${leg}-resumed.steps"; then
    echo "FAIL(${leg}): resumed per-step losses diverge from the" \
         "uninterrupted run" >&2
    exit 1
  fi
  echo "leg ${leg}: resumed steps 7-12 bit-identical"
}

run_leg single --prefetch-workers=2
run_leg dist2 --ranks=2 --prefetch-workers=2

# Background-checkpointing legs: identical protocol through --async-ckpt
# (the committed bytes must behave exactly like a synchronous snapshot).
run_leg async --prefetch-workers=2 --async-ckpt
run_leg async2 --ranks=2 --prefetch-workers=2 --async-ckpt --keep-last=2

# Kill-during-background-save: fabricate the debris an async save killed
# before its manifest rename leaves behind (step-suffixed files newer than
# the committed step plus a *.tmp staging file) and require resume to sweep
# it and still reproduce the straight run bit-for-bit.
ASYNC_CKPT="${WORK}/ckpt-asynckill"
"${TRAIN_CLI}" --config=small --scale-rows=256 --scale-batch=32 \
    --print-step-losses --prefetch-workers=2 --iters=9 --checkpoint-dir="${ASYNC_CKPT}" \
    --save-every=6 --async-ckpt > "${WORK}/asynckill-part1.log"
printf 'torn' > "${ASYNC_CKPT}/rank-00000-s9.dlrmckpt"
printf 'torn' > "${ASYNC_CKPT}/manifest-s9.dlrmckpt"
printf 'torn' > "${ASYNC_CKPT}/stale.dlrmckpt.tmp"
"${TRAIN_CLI}" --config=small --scale-rows=256 --scale-batch=32 \
    --print-step-losses --prefetch-workers=2 --iters=12 --checkpoint-dir="${ASYNC_CKPT}" \
    --resume > "${WORK}/asynckill-part2.log"
grep '^resumed from' "${WORK}/asynckill-part2.log" | grep -q 'at step 6' || {
  echo "FAIL(asynckill): resume ignored the committed step-6 snapshot" >&2
  cat "${WORK}/asynckill-part2.log" >&2
  exit 1
}
for debris in rank-00000-s9.dlrmckpt manifest-s9.dlrmckpt stale.dlrmckpt.tmp; do
  [ ! -e "${ASYNC_CKPT}/${debris}" ] || {
    echo "FAIL(asynckill): torn file ${debris} survived resume" >&2
    exit 1
  }
done
grep '^STEP_LOSS' "${WORK}/asynckill-part2.log" > "${WORK}/asynckill-resumed.steps"
if ! diff "${WORK}/single-straight.tail" "${WORK}/asynckill-resumed.steps"; then
  echo "FAIL(asynckill): resume after torn-file sweep diverges" >&2
  exit 1
fi
echo "leg asynckill: torn files swept, resumed steps 7-12 bit-identical"

# Single-process leg bookkeeping for the summary check below.
cp "${WORK}/single-straight.tail" "${WORK}/straight.tail"
cp "${WORK}/single-part2.log" "${WORK}/part2.log"

# Final reported loss: part 2's summary averages the 6 iterations it
# trained; recompute the same window from the straight run's step losses
# and require agreement (the per-step diff above is the bit-exact
# assertion; this checks the user-facing summary line).
resumed_final="$(sed -n 's/.*final mean loss \([0-9.]*\).*/\1/p' "${WORK}/part2.log")"
straight_window="$(awk '{s += $3} END {printf "%.4f", s / NR}' "${WORK}/straight.tail")"
echo "final loss over steps 7-12: straight ${straight_window}, resumed ${resumed_final}"
awk -v a="${resumed_final}" -v b="${straight_window}" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d < 5e-4) }' || {
  echo "FAIL: resumed final loss ${resumed_final} != straight window ${straight_window}" >&2
  exit 1
}
echo "checkpoint smoke OK"
