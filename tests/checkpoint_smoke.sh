#!/usr/bin/env bash
# train_cli save/kill/resume smoke (ctest tier1).
#
# Three runs of the same deterministic stream:
#   straight — 12 uninterrupted iterations (the reference trajectory);
#   part 1   — 9 iterations snapshotting at step 6, then "killed" (exits;
#              steps 7-9 are lost work past the snapshot);
#   part 2   — resumes the snapshot and trains to 12.
# The resumed run must reproduce the straight run's steps 7..12 (and its
# final reported loss) bit-for-bit: train_cli prints STEP_LOSS lines with
# %.17g, so a literal diff is the assertion.
set -euo pipefail

TRAIN_CLI="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dlrm_ckpt_smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

FLAGS=(--config=small --scale-rows=256 --scale-batch=32 --print-step-losses)
CKPT="${WORK}/ckpt"

"${TRAIN_CLI}" "${FLAGS[@]}" --iters=12 > "${WORK}/straight.log"
"${TRAIN_CLI}" "${FLAGS[@]}" --iters=9 --checkpoint-dir="${CKPT}" \
    --save-every=6 > "${WORK}/part1.log"
"${TRAIN_CLI}" "${FLAGS[@]}" --iters=12 --checkpoint-dir="${CKPT}" \
    --resume > "${WORK}/part2.log"

grep '^resumed from' "${WORK}/part2.log" | grep -q 'at step 6' || {
  echo "FAIL: part 2 did not resume from the step-6 snapshot" >&2
  cat "${WORK}/part2.log" >&2
  exit 1
}

grep '^STEP_LOSS' "${WORK}/straight.log" | tail -6 > "${WORK}/straight.tail"
grep '^STEP_LOSS' "${WORK}/part2.log" > "${WORK}/resumed.steps"
if ! diff "${WORK}/straight.tail" "${WORK}/resumed.steps"; then
  echo "FAIL: resumed per-step losses diverge from the uninterrupted run" >&2
  exit 1
fi

# Final reported loss: part 2's summary averages the 6 iterations it
# trained; recompute the same window from the straight run's step losses
# and require agreement (the per-step diff above is the bit-exact
# assertion; this checks the user-facing summary line).
resumed_final="$(sed -n 's/.*final mean loss \([0-9.]*\).*/\1/p' "${WORK}/part2.log")"
straight_window="$(awk '{s += $3} END {printf "%.4f", s / NR}' "${WORK}/straight.tail")"
echo "final loss over steps 7-12: straight ${straight_window}, resumed ${resumed_final}"
awk -v a="${resumed_final}" -v b="${straight_window}" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d < 5e-4) }' || {
  echo "FAIL: resumed final loss ${resumed_final} != straight window ${straight_window}" >&2
  exit 1
}
echo "checkpoint smoke OK"
