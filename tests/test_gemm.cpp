// Correctness tests for the batch-reduce GEMM microkernels against the
// scalar reference.
#include "kernels/gemm.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {
namespace {

// (count, m, k, n)
using BrgemmShape = std::tuple<int, int, int, int>;

class BatchReduceGemmTest : public ::testing::TestWithParam<BrgemmShape> {};

TEST_P(BatchReduceGemmTest, MatchesReference) {
  const auto [count, m, k, n] = GetParam();
  Rng rng(count * 1000 + m + k + n);

  std::vector<Tensor<float>> as, bs;
  std::vector<const float*> aptrs, bptrs;
  for (int i = 0; i < count; ++i) {
    as.emplace_back(std::vector<std::int64_t>{m, k});
    bs.emplace_back(std::vector<std::int64_t>{k, n});
    fill_uniform(as.back(), rng, 1.0f);
    fill_uniform(bs.back(), rng, 1.0f);
    aptrs.push_back(as.back().data());
    bptrs.push_back(bs.back().data());
  }

  Tensor<float> c({m, n}), ref({m, n});
  c.fill(0.5f);
  ref.fill(0.5f);

  batchreduce_gemm(aptrs.data(), bptrs.data(), c.data(), count, m, k, n,
                   /*accumulate=*/true);
  for (int i = 0; i < count; ++i) {
    gemm_reference(aptrs[static_cast<std::size_t>(i)],
                   bptrs[static_cast<std::size_t>(i)], ref.data(), m, k, n,
                   1.0f, 1.0f);
  }
  EXPECT_LE(max_abs_diff(c, ref), 1e-4f);
}

TEST_P(BatchReduceGemmTest, NonAccumulateOverwrites) {
  const auto [count, m, k, n] = GetParam();
  Rng rng(7);
  std::vector<Tensor<float>> as, bs;
  std::vector<const float*> aptrs, bptrs;
  for (int i = 0; i < count; ++i) {
    as.emplace_back(std::vector<std::int64_t>{m, k});
    bs.emplace_back(std::vector<std::int64_t>{k, n});
    fill_uniform(as.back(), rng, 1.0f);
    fill_uniform(bs.back(), rng, 1.0f);
    aptrs.push_back(as.back().data());
    bptrs.push_back(bs.back().data());
  }
  Tensor<float> c({m, n}), ref({m, n});
  c.fill(123.0f);  // garbage that must be ignored
  ref.zero();
  batchreduce_gemm(aptrs.data(), bptrs.data(), c.data(), count, m, k, n,
                   /*accumulate=*/false);
  for (int i = 0; i < count; ++i) {
    gemm_reference(aptrs[static_cast<std::size_t>(i)],
                   bptrs[static_cast<std::size_t>(i)], ref.data(), m, k, n,
                   1.0f, 1.0f);
  }
  EXPECT_LE(max_abs_diff(c, ref), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BatchReduceGemmTest,
    ::testing::Values(
        // Specialized widths n = 16/32/64 plus generic widths.
        BrgemmShape{1, 4, 8, 16}, BrgemmShape{4, 32, 64, 16},
        BrgemmShape{2, 16, 32, 32}, BrgemmShape{8, 32, 64, 64},
        BrgemmShape{3, 5, 7, 9}, BrgemmShape{2, 1, 13, 1},
        BrgemmShape{16, 48, 64, 64}, BrgemmShape{1, 1, 1, 1},
        BrgemmShape{5, 24, 13, 37}));

TEST(BatchReduceGemmAt, MatchesReferenceWithTransposedA) {
  Rng rng(99);
  const int count = 3, m = 16, k = 24, n = 32;
  // A_i stored [k][m] (transposed), reference uses A^T.
  std::vector<Tensor<float>> as, bs;
  std::vector<const float*> aptrs, bptrs;
  for (int i = 0; i < count; ++i) {
    as.emplace_back(std::vector<std::int64_t>{k, m});
    bs.emplace_back(std::vector<std::int64_t>{k, n});
    fill_uniform(as.back(), rng, 1.0f);
    fill_uniform(bs.back(), rng, 1.0f);
    aptrs.push_back(as.back().data());
    bptrs.push_back(bs.back().data());
  }
  Tensor<float> c({m, n});
  batchreduce_gemm_at(aptrs.data(), bptrs.data(), c.data(), count, m, k, n,
                      /*accumulate=*/false);
  // Reference: transpose A then multiply.
  Tensor<float> ref({m, n});
  ref.zero();
  for (int i = 0; i < count; ++i) {
    Tensor<float> at({m, k});
    for (int im = 0; im < m; ++im) {
      for (int ik = 0; ik < k; ++ik) {
        at[im * k + ik] = as[static_cast<std::size_t>(i)][ik * m + im];
      }
    }
    gemm_reference(at.data(), bptrs[static_cast<std::size_t>(i)], ref.data(),
                   m, k, n, 1.0f, 1.0f);
  }
  EXPECT_LE(max_abs_diff(c, ref), 1e-4f);
}

TEST(BatchReduceGemmStrided, HandlesLeadingDimensions) {
  Rng rng(3);
  const int m = 8, k = 12, n = 16;
  const std::int64_t lda = 20, ldb = 24, ldc = 18;
  Tensor<float> a({m, lda}), b({k, ldb}), c({m, ldc});
  fill_uniform(a, rng, 1.0f);
  fill_uniform(b, rng, 1.0f);
  c.fill(-7.0f);

  const float* ap = a.data();
  const float* bp = b.data();
  batchreduce_gemm_strided(&ap, &bp, c.data(), 1, m, k, n, lda, ldb, ldc,
                           /*accumulate=*/false);

  for (int im = 0; im < m; ++im) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int ik = 0; ik < k; ++ik) acc += a[im * lda + ik] * b[ik * ldb + j];
      ASSERT_NEAR(c[im * ldc + j], acc, 1e-4f);
    }
    // Padding beyond n stays untouched.
    for (std::int64_t j = n; j < ldc; ++j) ASSERT_EQ(c[im * ldc + j], -7.0f);
  }
}

TEST(GemmFlatParallel, MatchesReferenceLargeShape) {
  Rng rng(4);
  const std::int64_t m = 129, k = 65, n = 77;
  Tensor<float> a({m, k}), b({k, n}), c({m, n}), ref({m, n});
  fill_uniform(a, rng, 1.0f);
  fill_uniform(b, rng, 1.0f);
  gemm_flat_parallel(a.data(), b.data(), c.data(), m, k, n, false);
  gemm_reference(a.data(), b.data(), ref.data(), m, k, n, 1.0f, 0.0f);
  EXPECT_LE(max_abs_diff(c, ref), 1e-3f);
}

TEST(GemmReference, AlphaBeta) {
  Tensor<float> a({2, 2}), b({2, 2}), c({2, 2});
  a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
  b[0] = 1; b[1] = 0; b[2] = 0; b[3] = 1;  // identity
  c.fill(10.0f);
  gemm_reference(a.data(), b.data(), c.data(), 2, 2, 2, 2.0f, 0.5f);
  EXPECT_FLOAT_EQ(c[0], 2 * 1 + 5);
  EXPECT_FLOAT_EQ(c[3], 2 * 4 + 5);
}

}  // namespace
}  // namespace dlrm
