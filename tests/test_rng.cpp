// Tests for the PRNG and the Zipf sampler used to synthesize skewed
// embedding-index streams.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dlrm {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformDoublesInRange) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, NextIndexBoundsAndCoverage) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.next_index(10);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

// Checkpoint/restore of a stream mid-flight: the continuation after
// set_state must be bit-identical to the donor stream, across every draw
// kind. Resume parity of the training loop depends on this.
TEST(Rng, StateRoundTripMidStream) {
  Rng donor(9);
  for (int i = 0; i < 1000; ++i) (void)donor.next_u64();
  const RngState snapshot = donor.state();

  Rng restored(12345);  // different seed: set_state must fully overwrite
  restored.set_state(snapshot);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(restored.next_u64(), donor.next_u64());
    ASSERT_EQ(restored.next_float(), donor.next_float());
    ASSERT_EQ(restored.next_index(97), donor.next_index(97));
  }
}

// The tricky half of the state: gaussian() caches its second Box–Muller
// value, so a snapshot taken between the two halves of a pair must carry
// the cache or the restored stream slips by one draw.
TEST(Rng, StateCapturesGaussianCache) {
  Rng donor(10);
  (void)donor.gaussian();  // second half now cached
  const RngState snapshot = donor.state();
  EXPECT_TRUE(snapshot.has_cached);

  Rng restored(0);
  restored.set_state(snapshot);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(restored.gaussian(), donor.gaussian());
  }

  // And a snapshot with a drained cache round-trips too.
  (void)donor.gaussian();  // odd draw count since the refill: cache drained
  const RngState empty = donor.state();
  EXPECT_FALSE(empty.has_cached);
  Rng restored2(0);
  restored2.set_state(empty);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(restored2.gaussian(), donor.gaussian());
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Zipf, UniformWhenSZero) {
  Rng rng(8);
  ZipfSampler zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[static_cast<std::size_t>(zipf(rng))];
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(Zipf, InBounds) {
  Rng rng(9);
  for (double s : {0.5, 0.9, 1.0, 1.2, 2.0}) {
    ZipfSampler zipf(1000, s);
    for (int i = 0; i < 20000; ++i) {
      const auto v = zipf(rng);
      ASSERT_GE(v, 0) << "s=" << s;
      ASSERT_LT(v, 1000) << "s=" << s;
    }
  }
}

TEST(Zipf, FrequenciesFollowPowerLaw) {
  // Empirical frequency of rank k should be ~ k^-s: check the ratio between
  // rank 1 and rank 10 within loose statistical bounds.
  Rng rng(10);
  const double s = 1.0;
  ZipfSampler zipf(10000, s);
  std::vector<int> counts(10000, 0);
  const int n = 2000000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(zipf(rng))];
  // count(0)/count(9) ≈ (10/1)^s = 10
  ASSERT_GT(counts[9], 0);
  const double ratio = static_cast<double>(counts[0]) / counts[9];
  EXPECT_NEAR(ratio, 10.0, 2.0);
  // Monotone head: the first few ranks strictly dominate the tail.
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[100], counts[5000]);
}

TEST(Zipf, HigherSkewConcentratesMass) {
  Rng rng(11);
  auto head_mass = [&](double s) {
    ZipfSampler zipf(100000, s);
    int head = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) head += (zipf(rng) < 100);
    return static_cast<double>(head) / n;
  };
  const double m_low = head_mass(0.6);
  const double m_high = head_mass(1.4);
  EXPECT_GT(m_high, m_low + 0.2);
}

}  // namespace
}  // namespace dlrm
