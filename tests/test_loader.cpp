// Tests for the hybrid-parallel data loader, including the reference
// "reads the full global minibatch" behaviour (Fig. 13 artifact).
#include "data/loader.hpp"

#include <gtest/gtest.h>

namespace dlrm {
namespace {

void expect_equal_hybrid(const HybridBatch& a, const HybridBatch& b) {
  EXPECT_EQ(max_abs_diff(a.dense, b.dense), 0.0f);
  EXPECT_EQ(max_abs_diff(a.labels, b.labels), 0.0f);
  ASSERT_EQ(a.owned_bags.size(), b.owned_bags.size());
  for (std::size_t k = 0; k < a.owned_bags.size(); ++k) {
    ASSERT_EQ(a.owned_bags[k].batch(), b.owned_bags[k].batch());
    ASSERT_EQ(a.owned_bags[k].lookups(), b.owned_bags[k].lookups());
    for (std::int64_t i = 0; i < a.owned_bags[k].lookups(); ++i) {
      ASSERT_EQ(a.owned_bags[k].indices[i], b.owned_bags[k].indices[i]);
    }
    for (std::int64_t i = 0; i <= a.owned_bags[k].batch(); ++i) {
      ASSERT_EQ(a.owned_bags[k].offsets[i], b.owned_bags[k].offsets[i]);
    }
  }
}

TEST(DataLoader, LocalSliceMatchesFullGlobalBatch) {
  RandomDataset data(8, 6, 200, 3, 5);
  const std::int64_t GN = 24;
  const int R = 4;
  for (int rank = 0; rank < R; ++rank) {
    std::vector<std::int64_t> owned;
    for (std::int64_t t = rank; t < 6; t += R) owned.push_back(t);

    DataLoader naive(data, GN, rank, R, owned, LoaderMode::kFullGlobalBatch);
    DataLoader opt(data, GN, rank, R, owned, LoaderMode::kLocalSlice);
    HybridBatch a, b;
    naive.next(3, a);
    opt.next(3, b);

    EXPECT_EQ(max_abs_diff(a.dense, b.dense), 0.0f);
    EXPECT_EQ(max_abs_diff(a.labels, b.labels), 0.0f);
    ASSERT_EQ(a.owned_bags.size(), b.owned_bags.size());
    for (std::size_t k = 0; k < a.owned_bags.size(); ++k) {
      ASSERT_EQ(a.owned_bags[k].lookups(), b.owned_bags[k].lookups());
      for (std::int64_t i = 0; i < a.owned_bags[k].lookups(); ++i) {
        ASSERT_EQ(a.owned_bags[k].indices[i], b.owned_bags[k].indices[i]);
      }
    }
  }
}

TEST(DataLoader, SliceContentsMatchGlobalStream) {
  RandomDataset data(4, 2, 100, 2, 9);
  const std::int64_t GN = 16;
  DataLoader loader(data, GN, /*rank=*/1, /*ranks=*/2, {1},
                    LoaderMode::kLocalSlice);
  HybridBatch hb;
  loader.next(0, hb);
  EXPECT_EQ(loader.local_batch(), 8);

  MiniBatch global;
  data.fill(0, GN, global);
  // Rank 1's dense slice is samples [8, 16).
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      ASSERT_EQ(hb.dense[i * 4 + j], global.dense[(8 + i) * 4 + j]);
    }
    ASSERT_EQ(hb.labels[i], global.labels[8 + i]);
  }
  // Owned table 1 bags cover the FULL global batch.
  ASSERT_EQ(hb.owned_bags[0].batch(), GN);
  for (std::int64_t i = 0; i < hb.owned_bags[0].lookups(); ++i) {
    ASSERT_EQ(hb.owned_bags[0].indices[i], global.bags[1].indices[i]);
  }
}

// The two loader modes must be observationally identical for EVERY rank
// geometry — the optimized kLocalSlice path only changes WHAT is
// materialized, never the contents — and its per-iteration byte footprint
// must be strictly smaller as soon as the work is actually spread (R > 1).
// At R = 1 both modes materialize the whole global batch, so the footprints
// coincide.
TEST(DataLoader, ModeEquivalenceForEveryRankGeometry) {
  RandomDataset data(8, 6, 200, 3, 41);
  const std::int64_t GN = 24;  // divides by every R below
  for (int R : {1, 2, 3, 4}) {
    for (int rank = 0; rank < R; ++rank) {
      SCOPED_TRACE("ranks " + std::to_string(R) + " rank " +
                   std::to_string(rank));
      std::vector<std::int64_t> owned;
      for (std::int64_t t = rank; t < 6; t += R) owned.push_back(t);

      DataLoader naive(data, GN, rank, R, owned, LoaderMode::kFullGlobalBatch);
      DataLoader opt(data, GN, rank, R, owned, LoaderMode::kLocalSlice);
      HybridBatch a, b;
      for (std::int64_t iter : {0, 3}) {
        naive.next(iter, a);
        opt.next(iter, b);
        expect_equal_hybrid(a, b);
      }
      if (R > 1) {
        EXPECT_LT(opt.bytes_per_iteration(), naive.bytes_per_iteration());
      } else {
        EXPECT_EQ(opt.bytes_per_iteration(), naive.bytes_per_iteration());
      }
    }
  }
}

TEST(DataLoader, NaiveModeMaterializesMoreBytes) {
  RandomDataset data(13, 26, 1000, 1, 2);
  const std::int64_t GN = 256;
  DataLoader naive(data, GN, 0, 8, {0, 8, 16, 24}, LoaderMode::kFullGlobalBatch);
  DataLoader opt(data, GN, 0, 8, {0, 8, 16, 24}, LoaderMode::kLocalSlice);
  // The reference loader reads GN samples; the optimized one reads LN dense
  // samples + the owned tables' index streams.
  EXPECT_GT(naive.bytes_per_iteration(), opt.bytes_per_iteration());
  EXPECT_EQ(naive.bytes_per_iteration(), GN * data.bytes_per_sample());
}

TEST(DataLoader, SuccessiveIterationsAdvanceTheStream) {
  RandomDataset data(4, 1, 50, 2, 21);
  DataLoader loader(data, 8, 0, 1, {0}, LoaderMode::kLocalSlice);
  HybridBatch a, b;
  loader.next(0, a);
  Tensor<float> first = a.dense.clone();
  loader.next(1, b);
  EXPECT_GT(max_abs_diff(first, b.dense), 0.0f);
  // And iteration 0 is reproducible.
  loader.next(0, a);
  EXPECT_EQ(max_abs_diff(first, a.dense), 0.0f);
}

TEST(DataLoader, RejectsBadGeometry) {
  RandomDataset data(4, 2, 50, 2, 22);
  EXPECT_THROW(DataLoader(data, 2, 0, 3, {0}, LoaderMode::kLocalSlice),
               CheckError);  // GN < ranks
  EXPECT_THROW(DataLoader(data, 9, 3, 3, {0}, LoaderMode::kLocalSlice),
               CheckError);  // rank out of range
  EXPECT_THROW(DataLoader(data, 9, 0, 3, {5}, LoaderMode::kLocalSlice),
               CheckError);  // owned table out of range
}

// GN % R != 0 is supported: local slices follow the chunk convention
// LN_r = GN*(r+1)/R - GN*r/R, tile the global batch exactly, and both
// loader modes still agree sample for sample.
TEST(DataLoader, UnevenGeometryTilesTheGlobalBatch) {
  RandomDataset data(4, 2, 100, 2, 22);
  const std::int64_t GN = 10;
  const int R = 3;
  MiniBatch global;
  data.fill(0, GN, global);
  std::int64_t covered = 0;
  for (int rank = 0; rank < R; ++rank) {
    SCOPED_TRACE("rank " + std::to_string(rank));
    DataLoader naive(data, GN, rank, R, {0, 1}, LoaderMode::kFullGlobalBatch);
    DataLoader opt(data, GN, rank, R, {0, 1}, LoaderMode::kLocalSlice);
    EXPECT_EQ(opt.local_batch(), GN * (rank + 1) / R - GN * rank / R);
    HybridBatch a, b;
    naive.next(0, a);
    opt.next(0, b);
    expect_equal_hybrid(a, b);
    // The slice really is the chunk of the global stream.
    const std::int64_t base = GN * rank / R;
    for (std::int64_t i = 0; i < opt.local_batch(); ++i) {
      ASSERT_EQ(b.labels[i], global.labels[base + i]);
    }
    covered += opt.local_batch();
  }
  EXPECT_EQ(covered, GN);
}

TEST(DataLoader, NextFullMatchesDatasetFill) {
  RandomDataset data(4, 2, 50, 2, 23);
  DataLoader loader(data, 12, 0, 1, {0, 1}, LoaderMode::kLocalSlice);
  MiniBatch a, b;
  loader.next_full(2, a);
  data.fill(24, 12, b);
  EXPECT_EQ(max_abs_diff(a.dense, b.dense), 0.0f);
}

}  // namespace
}  // namespace dlrm
