// Tests for the DDP gradient allreducer (bucketing, averaging, async overlap).
#include "comm/ddp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {
namespace {

struct FakeParams {
  std::vector<Tensor<float>> params, grads;
  std::vector<ParamSlot> slots;

  explicit FakeParams(const std::vector<std::int64_t>& sizes) {
    for (auto n : sizes) {
      params.emplace_back(std::vector<std::int64_t>{n});
      grads.emplace_back(std::vector<std::int64_t>{n});
      params.back().zero();
      slots.push_back({params.back().data(), grads.back().data(), n});
    }
  }
};

class DdpTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DdpTest, AveragesGradientsAcrossRanks) {
  const auto [R, buckets] = GetParam();
  run_ranks(R, 0, [&, buckets = buckets](ThreadComm& comm) {
    FakeParams fp({100, 37, 256, 5});
    // grad[i] = rank + i mod 7 → average = (R-1)/2 + i mod 7.
    for (auto& g : fp.grads) {
      for (std::int64_t i = 0; i < g.size(); ++i) {
        g[i] = static_cast<float>(comm.rank()) + static_cast<float>(i % 7);
      }
    }
    DdpAllreducer ddp(comm, nullptr, buckets);
    ddp.attach(fp.slots);
    EXPECT_EQ(ddp.total_elems(), 100 + 37 + 256 + 5);
    ddp.run();
    const float base = static_cast<float>(R - 1) / 2.0f;
    for (auto& g : fp.grads) {
      for (std::int64_t i = 0; i < g.size(); ++i) {
        ASSERT_NEAR(g[i], base + static_cast<float>(i % 7), 1e-5f);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Cases, DdpTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3)));

class DdpBf16Test : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DdpBf16Test, Bf16WireAveragesWithinRounding) {
  // bf16 wire format: grads are RNE-rounded to bf16 before the reduce, the
  // reduction accumulates in fp32, and the averaged result widens exactly.
  // One rounding on pack + one on the reduced chunk bounds the relative
  // error by ~2 * 2^-8.
  const auto [R, buckets] = GetParam();
  run_ranks(R, 0, [&, buckets = buckets](ThreadComm& comm) {
    FakeParams fp({100, 37, 256, 5});
    for (auto& g : fp.grads) {
      for (std::int64_t i = 0; i < g.size(); ++i) {
        g[i] = static_cast<float>(comm.rank()) + static_cast<float>(i % 7);
      }
    }
    DdpAllreducer ddp(comm, nullptr, buckets, Precision::kBf16);
    EXPECT_EQ(ddp.wire_precision(), Precision::kBf16);
    ddp.attach(fp.slots);
    ddp.run();
    const float base = static_cast<float>(R - 1) / 2.0f;
    for (auto& g : fp.grads) {
      for (std::int64_t i = 0; i < g.size(); ++i) {
        const float expect = base + static_cast<float>(i % 7);
        ASSERT_NEAR(g[i], expect, std::max(1e-6f, 2.0f * expect * 0x1.0p-8f));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Cases, DdpBf16Test,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3)));

TEST(DdpBf16, ExactlyRepresentableGradsReduceExactly) {
  // Small integer grads are exact in bf16 and their sums stay exact: the
  // bf16 wire must then reproduce the fp32 result bit for bit.
  run_ranks(4, 0, [](ThreadComm& comm) {
    FakeParams fp({64});
    for (std::int64_t i = 0; i < 64; ++i) {
      fp.grads[0][i] = static_cast<float>((comm.rank() + i) % 8);
    }
    DdpAllreducer ddp(comm, nullptr, 2, Precision::kBf16);
    ddp.attach(fp.slots);
    ddp.run();
    for (std::int64_t i = 0; i < 64; ++i) {
      float expect = 0.0f;
      for (int r = 0; r < 4; ++r) expect += static_cast<float>((r + i) % 8);
      ASSERT_FLOAT_EQ(fp.grads[0][i], expect / 4.0f);
    }
  });
}

TEST(DdpBf16, AsyncMatchesBlocking) {
  const int R = 4;
  Tensor<float> blocking({R, 393}), async_result({R, 393});
  for (int use_async = 0; use_async < 2; ++use_async) {
    Tensor<float>& out = use_async ? async_result : blocking;
    run_ranks(R, 0, [&](ThreadComm& comm) {
      FakeParams fp({393});
      Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
      for (std::int64_t i = 0; i < 393; ++i) {
        fp.grads[0][i] = rng.uniform(-1.0f, 1.0f);
      }
      auto backend = use_async ? QueueBackend::ccl_like(2) : nullptr;
      DdpAllreducer ddp(comm, backend.get(), 2, Precision::kBf16);
      ddp.attach(fp.slots);
      ddp.start();
      ddp.finish();
      for (std::int64_t i = 0; i < 393; ++i) {
        out[comm.rank() * 393 + i] = fp.grads[0][i];
      }
    });
  }
  // Deterministic rounding → identical results regardless of overlap.
  EXPECT_LE(max_abs_diff(blocking, async_result), 0.0f);
}

TEST(Ddp, AsyncMatchesBlocking) {
  const int R = 4;
  Tensor<float> blocking({R, 393}), async_result({R, 393});
  for (int use_async = 0; use_async < 2; ++use_async) {
    Tensor<float>& out = use_async ? async_result : blocking;
    run_ranks(R, 0, [&](ThreadComm& comm) {
      FakeParams fp({393});
      Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
      for (std::int64_t i = 0; i < 393; ++i) {
        fp.grads[0][i] = rng.uniform(-1.0f, 1.0f);
      }
      auto backend = use_async ? QueueBackend::ccl_like(2) : nullptr;
      DdpAllreducer ddp(comm, backend.get(), 2);
      ddp.attach(fp.slots);
      ddp.start();
      ddp.finish();
      for (std::int64_t i = 0; i < 393; ++i) {
        out[comm.rank() * 393 + i] = fp.grads[0][i];
      }
    });
  }
  EXPECT_LE(max_abs_diff(blocking, async_result), 1e-6f);
}

TEST(Ddp, OverlapWithComputeProducesSameResult) {
  // Emulates the trainer's schedule: start() → compute → finish().
  const int R = 3;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    FakeParams fp({1024});
    fp.grads[0].fill(static_cast<float>(comm.rank() + 1));
    auto backend = QueueBackend::mpi_like();
    DdpAllreducer ddp(comm, backend.get(), 1);
    ddp.attach(fp.slots);
    ddp.start();
    // "Compute": busy work while the allreduce progresses on the worker.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
    ddp.finish();
    const float expect = static_cast<float>(1 + 2 + 3) / 3.0f;
    for (std::int64_t i = 0; i < 1024; ++i) {
      ASSERT_FLOAT_EQ(fp.grads[0][i], expect);
    }
  });
}

TEST(Ddp, InstrumentationAccumulates) {
  run_ranks(2, 0, [](ThreadComm& comm) {
    FakeParams fp({4096});
    fp.grads[0].fill(1.0f);
    DdpAllreducer ddp(comm, nullptr, 1);
    ddp.attach(fp.slots);
    ddp.run();
    EXPECT_GE(ddp.framework_sec(), 0.0);
    EXPECT_GE(ddp.wait_sec(), 0.0);
  });
}

TEST(Ddp, StartTwiceWithoutFinishThrows) {
  run_ranks(1, 0, [](ThreadComm& comm) {
    FakeParams fp({8});
    DdpAllreducer ddp(comm, nullptr, 1);
    ddp.attach(fp.slots);
    ddp.start();
    EXPECT_THROW(ddp.start(), CheckError);
    ddp.finish();
  });
}

TEST(Ddp, ParamsUntouchedOnlyGradsChange) {
  run_ranks(2, 0, [](ThreadComm& comm) {
    FakeParams fp({64});
    fp.params[0].fill(3.0f);
    fp.grads[0].fill(static_cast<float>(comm.rank()));
    DdpAllreducer ddp(comm, nullptr, 1);
    ddp.attach(fp.slots);
    ddp.run();
    for (std::int64_t i = 0; i < 64; ++i) {
      ASSERT_FLOAT_EQ(fp.params[0][i], 3.0f);
      ASSERT_FLOAT_EQ(fp.grads[0][i], 0.5f);
    }
  });
}

}  // namespace
}  // namespace dlrm
