// Tests for the embedding-output exchange strategies: all three must be
// numerically identical and correctly route table slices between owners and
// batch slices (hybrid parallelism realignment, paper Sect. IV.B).
#include "comm/exchange.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "tensor/tensor.hpp"

namespace dlrm {
namespace {

// Deterministic marker for (table, global row, element).
float marker(std::int64_t t, std::int64_t row, std::int64_t e) {
  return static_cast<float>(t * 100000 + row * 100 + e);
}

// (ranks, tables, dim, global batch, strategy)
using ExCase = std::tuple<int, std::int64_t, std::int64_t, std::int64_t, ExchangeStrategy>;

class ExchangeTest : public ::testing::TestWithParam<ExCase> {};

TEST_P(ExchangeTest, ForwardRoutesTableSlices) {
  const auto [R, S, E, GN, strategy] = GetParam();
  run_ranks(R, 0, [&, S = S, E = E, GN = GN, strategy = strategy](ThreadComm& comm) {
    EmbeddingExchange ex(comm, nullptr, strategy, S, E, GN);
    const std::int64_t LN = ex.local_batch();

    // Each owned table's [GN][E] output carries its marker values.
    std::vector<Tensor<float>> outs;
    std::vector<const float*> ptrs;
    for (std::int64_t t : ex.owned_ids()) {
      outs.emplace_back(std::vector<std::int64_t>{GN, E});
      for (std::int64_t r = 0; r < GN; ++r) {
        for (std::int64_t e = 0; e < E; ++e) {
          outs.back()[r * E + e] = marker(t, r, e);
        }
      }
      ptrs.push_back(outs.back().data());
    }

    Tensor<float> sliced({S, LN, E});
    auto h = ex.start_forward(ptrs);
    ex.finish_forward(h, sliced.data());

    // Every rank must now see, for every table, its own batch slice
    // (chunk convention, so GN % R != 0 geometries line up too).
    const std::int64_t base = chunk_begin(GN, comm.rank(), comm.size());
    for (std::int64_t t = 0; t < S; ++t) {
      for (std::int64_t r = 0; r < LN; ++r) {
        for (std::int64_t e = 0; e < E; ++e) {
          ASSERT_EQ(sliced[(t * LN + r) * E + e], marker(t, base + r, e))
              << "rank " << comm.rank() << " t " << t << " r " << r;
        }
      }
    }
  });
}

TEST_P(ExchangeTest, BackwardRoutesGradientsToOwners) {
  const auto [R, S, E, GN, strategy] = GetParam();
  run_ranks(R, 0, [&, S = S, E = E, GN = GN, strategy = strategy](ThreadComm& comm) {
    EmbeddingExchange ex(comm, nullptr, strategy, S, E, GN);
    const std::int64_t LN = ex.local_batch();

    // Gradient for table t, my slice row r: marker with the global row id.
    const std::int64_t base = chunk_begin(GN, comm.rank(), comm.size());
    Tensor<float> dsliced({S, LN, E});
    for (std::int64_t t = 0; t < S; ++t) {
      for (std::int64_t r = 0; r < LN; ++r) {
        for (std::int64_t e = 0; e < E; ++e) {
          dsliced[(t * LN + r) * E + e] = marker(t, base + r, e);
        }
      }
    }

    std::vector<Tensor<float>> grads;
    std::vector<float*> gptrs;
    for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
      grads.emplace_back(std::vector<std::int64_t>{GN, E});
      grads.back().fill(-1.0f);
      gptrs.push_back(grads.back().data());
    }

    auto h = ex.start_backward(dsliced.data());
    ex.finish_backward(h, gptrs);

    for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
      const std::int64_t t = ex.owned_ids()[static_cast<std::size_t>(k)];
      for (std::int64_t r = 0; r < GN; ++r) {
        for (std::int64_t e = 0; e < E; ++e) {
          ASSERT_EQ(grads[static_cast<std::size_t>(k)][r * E + e], marker(t, r, e))
              << "rank " << comm.rank() << " table " << t << " row " << r;
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExchangeTest,
    ::testing::Values(
        // Even table distribution.
        ExCase{2, 8, 4, 16, ExchangeStrategy::kScatterList},
        ExCase{2, 8, 4, 16, ExchangeStrategy::kFusedScatter},
        ExCase{2, 8, 4, 16, ExchangeStrategy::kAlltoall},
        ExCase{4, 8, 8, 32, ExchangeStrategy::kAlltoall},
        // Uneven: 26 tables over 4 ranks (the MLPerf shape).
        ExCase{4, 26, 4, 16, ExchangeStrategy::kScatterList},
        ExCase{4, 26, 4, 16, ExchangeStrategy::kFusedScatter},
        ExCase{4, 26, 4, 16, ExchangeStrategy::kAlltoall},
        // One table per rank (max model parallelism of the Small config).
        ExCase{8, 8, 2, 16, ExchangeStrategy::kAlltoall},
        // GN % R != 0 regression (carried PR 3/6 gap): every strategy must
        // carry uneven chunk-convention slices, not just the alltoallv path.
        ExCase{2, 8, 4, 33, ExchangeStrategy::kScatterList},
        ExCase{2, 8, 4, 33, ExchangeStrategy::kFusedScatter},
        ExCase{2, 8, 4, 33, ExchangeStrategy::kAlltoall},
        ExCase{4, 8, 4, 33, ExchangeStrategy::kScatterList},
        ExCase{4, 8, 4, 33, ExchangeStrategy::kFusedScatter},
        ExCase{4, 8, 4, 33, ExchangeStrategy::kAlltoall},
        // Uneven batch AND uneven table distribution together.
        ExCase{4, 26, 4, 33, ExchangeStrategy::kScatterList},
        ExCase{4, 26, 4, 33, ExchangeStrategy::kFusedScatter}),
    [](const ::testing::TestParamInfo<ExCase>& tpi) {
      return std::string(to_string(std::get<4>(tpi.param))) + "_R" +
             std::to_string(std::get<0>(tpi.param)) + "_S" +
             std::to_string(std::get<1>(tpi.param)) + "_E" +
             std::to_string(std::get<2>(tpi.param)) + "_GN" +
             std::to_string(std::get<3>(tpi.param));
    });

// bf16 payload: pure-movement collectives must deliver exactly the RNE
// rounding of what the fp32 exchange delivers, element for element, in both
// directions — for every strategy and table distribution.
class ExchangeBf16Test : public ::testing::TestWithParam<ExCase> {};

TEST_P(ExchangeBf16Test, PayloadMatchesRoundedFp32) {
  const auto [R, S, E, GN, strategy] = GetParam();
  Tensor<float> fwd_ref({R, S, GN / R, E}), fwd16({R, S, GN / R, E});
  // grads: worst-case owned tables per rank is ceil(S/R).
  const std::int64_t max_owned = (S + R - 1) / R;
  Tensor<float> bwd_ref({R, max_owned, GN, E}), bwd16({R, max_owned, GN, E});
  bwd_ref.zero();
  bwd16.zero();

  for (int pass = 0; pass < 2; ++pass) {
    const Precision payload = pass == 0 ? Precision::kFp32 : Precision::kBf16;
    Tensor<float>& fwd_out = pass == 0 ? fwd_ref : fwd16;
    Tensor<float>& bwd_out = pass == 0 ? bwd_ref : bwd16;
    run_ranks(R, 0, [&, S = S, E = E, GN = GN, strategy = strategy](ThreadComm& comm) {
      EmbeddingExchange ex(comm, nullptr, strategy, S, E, GN, payload);
      EXPECT_EQ(ex.payload_precision(), payload);
      const std::int64_t LN = ex.local_batch();

      std::vector<Tensor<float>> outs;
      std::vector<const float*> ptrs;
      for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
        outs.emplace_back(std::vector<std::int64_t>{GN, E});
        Rng trng(static_cast<std::uint64_t>(
            ex.owned_ids()[static_cast<std::size_t>(k)]));
        fill_uniform(outs.back(), trng, 1.0f);
        ptrs.push_back(outs.back().data());
      }
      auto h = ex.start_forward(ptrs);
      ex.finish_forward(h, fwd_out.data() + comm.rank() * S * LN * E);

      Tensor<float> dsliced({S, LN, E});
      Rng drng(static_cast<std::uint64_t>(comm.rank()) + 123);
      fill_uniform(dsliced, drng, 1.0f);
      std::vector<Tensor<float>> grads;
      std::vector<float*> gptrs;
      for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
        grads.emplace_back(std::vector<std::int64_t>{GN, E});
        gptrs.push_back(grads.back().data());
      }
      auto hb = ex.start_backward(dsliced.data());
      ex.finish_backward(hb, gptrs);
      for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
        float* dst = bwd_out.data() + (comm.rank() * max_owned + k) * GN * E;
        for (std::int64_t i = 0; i < GN * E; ++i) dst[i] = grads[static_cast<std::size_t>(k)][i];
      }
    });
  }

  for (std::int64_t i = 0; i < fwd_ref.size(); ++i) {
    ASSERT_EQ(fwd16[i], bf16_to_f32(f32_to_bf16_rne(fwd_ref[i]))) << "fwd " << i;
  }
  for (std::int64_t i = 0; i < bwd_ref.size(); ++i) {
    ASSERT_EQ(bwd16[i], bwd_ref[i] == 0.0f
                            ? 0.0f
                            : bf16_to_f32(f32_to_bf16_rne(bwd_ref[i])))
        << "bwd " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExchangeBf16Test,
    ::testing::Values(ExCase{2, 8, 4, 16, ExchangeStrategy::kScatterList},
                      ExCase{2, 8, 4, 16, ExchangeStrategy::kFusedScatter},
                      ExCase{2, 8, 4, 16, ExchangeStrategy::kAlltoall},
                      ExCase{4, 26, 4, 16, ExchangeStrategy::kScatterList},
                      ExCase{4, 26, 4, 16, ExchangeStrategy::kFusedScatter},
                      ExCase{4, 26, 4, 16, ExchangeStrategy::kAlltoall}),
    [](const ::testing::TestParamInfo<ExCase>& tpi) {
      return std::string(to_string(std::get<4>(tpi.param))) + "_R" +
             std::to_string(std::get<0>(tpi.param)) + "_S" +
             std::to_string(std::get<1>(tpi.param));
    });

TEST(ExchangeStrategies, AllThreeBitwiseIdentical) {
  const int R = 4;
  const std::int64_t S = 10, E = 8, GN = 32;
  // Collect per-strategy results and compare outside the rank scope.
  std::vector<Tensor<float>> results(3);
  for (int si = 0; si < 3; ++si) {
    const auto strategy = static_cast<ExchangeStrategy>(si);
    Tensor<float>& result = results[static_cast<std::size_t>(si)];
    result.reshape({R, S, GN / R, E});
    run_ranks(R, 0, [&](ThreadComm& comm) {
      EmbeddingExchange ex(comm, nullptr, strategy, S, E, GN);
      std::vector<Tensor<float>> outs;
      std::vector<const float*> ptrs;
      Rng rng(static_cast<std::uint64_t>(comm.rank()) * 31 + 5);
      for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
        outs.emplace_back(std::vector<std::int64_t>{GN, E});
        // Seed by table id so content is strategy-independent.
        Rng trng(static_cast<std::uint64_t>(ex.owned_ids()[static_cast<std::size_t>(k)]));
        fill_uniform(outs.back(), trng, 1.0f);
        ptrs.push_back(outs.back().data());
      }
      const std::int64_t LN = ex.local_batch();
      auto h = ex.start_forward(ptrs);
      ex.finish_forward(h, result.data() + comm.rank() * S * LN * E);
    });
  }
  EXPECT_EQ(max_abs_diff(results[0], results[1]), 0.0f);
  EXPECT_EQ(max_abs_diff(results[0], results[2]), 0.0f);
}

TEST(Exchange, AsyncBackendMatchesBlocking) {
  const int R = 4;
  const std::int64_t S = 8, E = 16, GN = 32;
  Tensor<float> blocking({R, S, GN / R, E}), async({R, S, GN / R, E});
  for (int use_async = 0; use_async < 2; ++use_async) {
    Tensor<float>& result = use_async ? async : blocking;
    run_ranks(R, 0, [&](ThreadComm& comm) {
      auto backend = use_async ? QueueBackend::ccl_like(2) : nullptr;
      EmbeddingExchange ex(comm, backend.get(), ExchangeStrategy::kAlltoall, S,
                           E, GN);
      std::vector<Tensor<float>> outs;
      std::vector<const float*> ptrs;
      for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
        outs.emplace_back(std::vector<std::int64_t>{GN, E});
        Rng trng(static_cast<std::uint64_t>(ex.owned_ids()[static_cast<std::size_t>(k)]) + 99);
        fill_uniform(outs.back(), trng, 1.0f);
        ptrs.push_back(outs.back().data());
      }
      const std::int64_t LN = ex.local_batch();
      auto h = ex.start_forward(ptrs);
      ex.finish_forward(h, result.data() + comm.rank() * S * LN * E);
    });
  }
  EXPECT_EQ(max_abs_diff(blocking, async), 0.0f);
}

TEST(Exchange, VolumeMatchesEq2) {
  // Eq. 2: SZ_alltoall = S * N * E (global volume in elements).
  run_ranks(2, 0, [](ThreadComm& comm) {
    EmbeddingExchange ex(comm, nullptr, ExchangeStrategy::kAlltoall, 8, 64, 128);
    EXPECT_EQ(ex.total_volume(), 8 * 128 * 64);
  });
}

// GN % R != 0: all three strategies now carry uneven chunk-convention
// slices (the scatter paths moved to scatterv/gatherv), so construction
// succeeds everywhere and every rank gets its chunk-sized local batch.
TEST(Exchange, IndivisibleBatchAllStrategies) {
  for (auto strategy :
       {ExchangeStrategy::kScatterList, ExchangeStrategy::kFusedScatter,
        ExchangeStrategy::kAlltoall}) {
    run_ranks(3, 0, [strategy](ThreadComm& comm) {
      const std::int64_t GN = 16;  // 16 % 3 != 0
      EmbeddingExchange ex(comm, nullptr, strategy, 6, 4, GN);
      EXPECT_EQ(ex.local_batch(),
                GN * (comm.rank() + 1) / 3 - GN * comm.rank() / 3);
    });
  }
}

// bf16 payload over uneven slices: the scatterv/gatherv paths are pure
// movement, so each delivered element is exactly the RNE rounding of the
// fp32 marker — for every strategy, GN=33 over R=2.
TEST(Exchange, UnevenBf16PayloadExactRne) {
  const std::int64_t S = 4, E = 3, GN = 33;
  const int R = 2;
  for (auto strategy :
       {ExchangeStrategy::kScatterList, ExchangeStrategy::kFusedScatter,
        ExchangeStrategy::kAlltoall}) {
    run_ranks(R, 0, [&, strategy](ThreadComm& comm) {
      EmbeddingExchange ex(comm, nullptr, strategy, S, E, GN,
                           Precision::kBf16);
      const std::int64_t LN = ex.local_batch();
      const std::int64_t base = chunk_begin(GN, comm.rank(), comm.size());

      std::vector<Tensor<float>> outs;
      std::vector<const float*> ptrs;
      for (std::int64_t t : ex.owned_ids()) {
        outs.emplace_back(std::vector<std::int64_t>{GN, E});
        for (std::int64_t r = 0; r < GN; ++r) {
          for (std::int64_t e = 0; e < E; ++e) {
            outs.back()[r * E + e] = marker(t, r, e);
          }
        }
        ptrs.push_back(outs.back().data());
      }
      Tensor<float> sliced({S, LN, E});
      auto h = ex.start_forward(ptrs);
      ex.finish_forward(h, sliced.data());
      for (std::int64_t t = 0; t < S; ++t) {
        for (std::int64_t r = 0; r < LN; ++r) {
          for (std::int64_t e = 0; e < E; ++e) {
            ASSERT_EQ(sliced[(t * LN + r) * E + e],
                      bf16_to_f32(f32_to_bf16_rne(marker(t, base + r, e))))
                << to_string(strategy) << " t " << t << " r " << r;
          }
        }
      }

      Tensor<float> dsliced({S, LN, E});
      for (std::int64_t t = 0; t < S; ++t) {
        for (std::int64_t r = 0; r < LN; ++r) {
          for (std::int64_t e = 0; e < E; ++e) {
            dsliced[(t * LN + r) * E + e] = marker(t, base + r, e);
          }
        }
      }
      std::vector<Tensor<float>> grads;
      std::vector<float*> gptrs;
      for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
        grads.emplace_back(std::vector<std::int64_t>{GN, E});
      }
      for (auto& g : grads) gptrs.push_back(g.data());
      auto hb = ex.start_backward(dsliced.data());
      ex.finish_backward(hb, gptrs);
      for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
        const std::int64_t t = ex.owned_ids()[static_cast<std::size_t>(k)];
        for (std::int64_t r = 0; r < GN; ++r) {
          for (std::int64_t e = 0; e < E; ++e) {
            ASSERT_EQ(grads[static_cast<std::size_t>(k)][r * E + e],
                      bf16_to_f32(f32_to_bf16_rne(marker(t, r, e))))
                << to_string(strategy) << " table " << t << " row " << r;
          }
        }
      }
    });
  }
}

// Uneven slices round-trip: forward delivers each rank its chunk of every
// table's [GN][E] output; backward returns each owner the full [GN][E]
// gradient reassembled from the uneven slices.
TEST(Exchange, UnevenSlicesRoundTrip) {
  const std::int64_t S = 5, E = 3, GN = 10;
  const int R = 3;
  for (auto strategy :
       {ExchangeStrategy::kScatterList, ExchangeStrategy::kFusedScatter,
        ExchangeStrategy::kAlltoall}) {
  run_ranks(R, 0, [&, strategy](ThreadComm& comm) {
    EmbeddingExchange ex(comm, nullptr, strategy, S, E, GN);
    const std::int64_t ln = ex.local_batch();
    const std::int64_t base = GN * comm.rank() / R;

    // Owner fills table t's output with value(t, sample, e).
    auto value = [](std::int64_t t, std::int64_t n, std::int64_t e) {
      return static_cast<float>(1000 * t + 10 * n + e);
    };
    std::vector<Tensor<float>> outs;
    std::vector<const float*> ptrs;
    for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
      const std::int64_t t = ex.owned_ids()[static_cast<std::size_t>(k)];
      outs.emplace_back(std::vector<std::int64_t>{GN, E});
      for (std::int64_t n = 0; n < GN; ++n) {
        for (std::int64_t e = 0; e < E; ++e) {
          outs.back()[n * E + e] = value(t, n, e);
        }
      }
    }
    for (auto& o : outs) ptrs.push_back(o.data());

    Tensor<float> sliced({S, ln, E});
    auto h = ex.start_forward(ptrs);
    ex.finish_forward(h, sliced.data());
    for (std::int64_t t = 0; t < S; ++t) {
      for (std::int64_t i = 0; i < ln; ++i) {
        for (std::int64_t e = 0; e < E; ++e) {
          ASSERT_EQ(sliced[(t * ln + i) * E + e], value(t, base + i, e));
        }
      }
    }

    // Backward: dsliced = value + 0.5 → owners get full [GN][E] grads.
    Tensor<float> dsliced({S, ln, E});
    for (std::int64_t t = 0; t < S; ++t) {
      for (std::int64_t i = 0; i < ln; ++i) {
        for (std::int64_t e = 0; e < E; ++e) {
          dsliced[(t * ln + i) * E + e] = value(t, base + i, e) + 0.5f;
        }
      }
    }
    std::vector<Tensor<float>> grads;
    std::vector<float*> gptrs;
    for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
      grads.emplace_back(std::vector<std::int64_t>{GN, E});
    }
    for (auto& g : grads) gptrs.push_back(g.data());
    auto hb = ex.start_backward(dsliced.data());
    ex.finish_backward(hb, gptrs);
    for (std::int64_t k = 0; k < ex.owned_tables(); ++k) {
      const std::int64_t t = ex.owned_ids()[static_cast<std::size_t>(k)];
      for (std::int64_t n = 0; n < GN; ++n) {
        for (std::int64_t e = 0; e < E; ++e) {
          ASSERT_EQ(grads[static_cast<std::size_t>(k)][n * E + e],
                    value(t, n, e) + 0.5f);
        }
      }
    }
  });
  }
}

}  // namespace
}  // namespace dlrm
