// Tests for the Table I configs and their Table II derived characteristics.
#include "core/config.hpp"

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace dlrm {
namespace {

TEST(Configs, SmallMatchesTableI) {
  const DlrmConfig c = small_config();
  EXPECT_EQ(c.minibatch, 2048);
  EXPECT_EQ(c.global_batch_strong, 8192);
  EXPECT_EQ(c.local_batch_weak, 1024);
  EXPECT_EQ(c.pooling, 50);
  EXPECT_EQ(c.tables(), 8);
  EXPECT_EQ(c.dim, 64);
  EXPECT_EQ(c.table_rows[0], 1000000);
  EXPECT_EQ(c.bottom_mlp.front(), 512);
  EXPECT_EQ(c.bottom_mlp.back(), 64);
  EXPECT_EQ(c.top_mlp.back(), 1);
}

TEST(Configs, SmallTableIIValues) {
  const DlrmConfig c = small_config();
  // Memory for tables: 8 * 1e6 * 64 * 4 B ≈ 2 GB.
  EXPECT_EQ(c.table_bytes(), 8LL * 1000000 * 64 * 4);
  // Allreduce size ≈ 9.5 MB (paper Table II).
  const double mb = static_cast<double>(c.allreduce_elems()) * 4 / (1024.0 * 1024.0);
  EXPECT_NEAR(mb, 9.5, 0.3);
  // Alltoall volume for GN=8K ≈ 16 MiB (paper: 15.8 MB).
  const double a2a =
      static_cast<double>(c.alltoall_elems(8192)) * 4 / (1024.0 * 1024.0);
  EXPECT_NEAR(a2a, 16.0, 0.5);
  EXPECT_EQ(c.max_ranks(), 8);
}

TEST(Configs, LargeTableIIValues) {
  const DlrmConfig c = large_config();
  EXPECT_EQ(c.tables(), 64);
  EXPECT_EQ(c.dim, 256);
  // Tables: 64 * 6e6 * 256 * 4 B ≈ 384 GiB.
  const double gib = static_cast<double>(c.table_bytes()) / (1024.0 * 1024.0 * 1024.0);
  EXPECT_NEAR(gib, 366.0, 10.0);  // paper rounds to 384 GB
  // Allreduce ≈ 1047 MB.
  const double mb = static_cast<double>(c.allreduce_elems()) * 4 / (1024.0 * 1024.0);
  EXPECT_NEAR(mb, 1047.0, 60.0);
  // Alltoall for GN=16K = 64*16384*256*4 B = 1 GiB.
  const double a2a =
      static_cast<double>(c.alltoall_elems(16384)) * 4 / (1024.0 * 1024.0);
  EXPECT_NEAR(a2a, 1024.0, 1.0);
  EXPECT_EQ(c.max_ranks(), 64);
  // Needs at least 4 sockets at 96 GiB usable per socket (paper: min 4).
  EXPECT_EQ(c.min_sockets(96.0 * 1024 * 1024 * 1024), 4);
}

TEST(Configs, MlperfTableIIValues) {
  const DlrmConfig c = mlperf_config();
  EXPECT_EQ(c.tables(), 26);
  EXPECT_EQ(c.dim, 128);
  EXPECT_EQ(c.pooling, 1);
  // Tables ≈ 98 GB (paper Table II; decimal GB).
  const double gb = static_cast<double>(c.table_bytes()) / 1e9;
  EXPECT_NEAR(gb, 98.0, 3.0);
  // Allreduce ≈ 9.0 MB — only reproduced by the 1024-1024-512-256-1 top MLP
  // (see the header note about the paper's Table I/II inconsistency).
  const double mb = static_cast<double>(c.allreduce_elems()) * 4 / (1024.0 * 1024.0);
  EXPECT_NEAR(mb, 9.0, 0.3);
  // Alltoall for GN=16K ≈ 208 MiB.
  const double a2a =
      static_cast<double>(c.alltoall_elems(16384)) * 4 / (1024.0 * 1024.0);
  EXPECT_NEAR(a2a, 208.0, 8.0);
  EXPECT_EQ(c.max_ranks(), 26);
  // Fits one socket only with the 192 GB memory configuration (paper: "1*");
  // the standard 96 GB/socket nodes cannot hold the 96 GB of tables.
  EXPECT_EQ(c.min_sockets(192e9), 1);
  EXPECT_GT(c.min_sockets(96e9), 1);
}

TEST(Configs, InteractionWidths) {
  // Small: 9 features of 64 → 64 + 36 = 100 → padded 128.
  const DlrmConfig s = small_config();
  EXPECT_EQ(s.interaction_payload(), 100);
  EXPECT_EQ(s.interaction_out(), 128);
  // MLPerf: 27 features of 128 → 479 → padded 480.
  const DlrmConfig m = mlperf_config();
  EXPECT_EQ(m.interaction_payload(), 479);
  EXPECT_EQ(m.interaction_out(), 480);
  // Top MLP input is the interaction output.
  EXPECT_EQ(m.top_mlp_full().front(), 480);
}

TEST(Configs, ScaledDownPreservesTopology) {
  const DlrmConfig c = mlperf_config().scaled_down(1000, 8);
  EXPECT_EQ(c.tables(), 26);
  EXPECT_EQ(c.dim, 128);
  EXPECT_EQ(c.bottom_mlp, mlperf_config().bottom_mlp);
  EXPECT_LT(c.table_bytes(), mlperf_config().table_bytes());
  EXPECT_EQ(c.minibatch, 2048 / 8);
  // Tiny tables are clamped to at least 64 rows.
  for (auto m : c.table_rows) EXPECT_GE(m, 64);
}

TEST(Configs, ValidateCatchesMistakes) {
  DlrmConfig c = small_config();
  c.bottom_mlp.back() = 32;  // != dim
  EXPECT_THROW(c.validate(), CheckError);
  c = small_config();
  c.top_mlp.back() = 2;
  EXPECT_THROW(c.validate(), CheckError);
  c = small_config();
  c.table_rows.clear();
  EXPECT_THROW(c.validate(), CheckError);
}

}  // namespace
}  // namespace dlrm
