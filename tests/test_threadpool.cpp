// Tests for the thread pool and parallel_for primitives.
#include "common/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

namespace dlrm {
namespace {

TEST(ThreadPool, RunExecutesEveryTidOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(6);
  for (std::int64_t n : {0, 1, 5, 6, 7, 100, 1000, 12345}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(0, n, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelForDynamicCoversRangeExactlyOnce) {
  ThreadPool pool(6);
  for (std::int64_t grain : {1, 3, 16, 1000}) {
    const std::int64_t n = 5000;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for_dynamic(0, n, grain, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "grain=" << grain;
    }
  }
}

TEST(ThreadPool, NonZeroBeginHandled) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100, 200, [&](std::int64_t lo, std::int64_t hi) {
    std::int64_t local = 0;
    for (std::int64_t i = lo; i < hi; ++i) local += i;
    sum += local;
  });
  std::int64_t expect = 0;
  for (std::int64_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, RepeatedJobsStress) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> total{0};
  for (int iter = 0; iter < 500; ++iter) {
    pool.parallel_for(0, 64, [&](std::int64_t lo, std::int64_t hi) {
      total += hi - lo;
    });
  }
  EXPECT_EQ(total.load(), 500 * 64);
}

TEST(PoolScope, InstallsAndRestoresCurrentPool) {
  ThreadPool inner(2);
  ThreadPool* before = &current_pool();
  {
    PoolScope scope(inner);
    EXPECT_EQ(&current_pool(), &inner);
    // Free function dispatches to the scoped pool.
    std::atomic<int> chunks{0};
    parallel_run([&](int) { chunks++; });
    EXPECT_EQ(chunks.load(), 2);
  }
  EXPECT_EQ(&current_pool(), before);
}

TEST(PoolScope, NestedScopes) {
  ThreadPool a(2), b(3);
  PoolScope sa(a);
  EXPECT_EQ(current_pool().size(), 2);
  {
    PoolScope sb(b);
    EXPECT_EQ(current_pool().size(), 3);
  }
  EXPECT_EQ(current_pool().size(), 2);
}

TEST(PoolScope, RankThreadsGetIndependentPools) {
  // Emulates the distributed runtime: each rank thread installs its own pool
  // and kernels parallelize within it without interference.
  constexpr int kRanks = 4;
  std::vector<std::thread> ranks;
  std::vector<std::int64_t> sums(kRanks, 0);
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([r, &sums] {
      ThreadPool pool(2);
      PoolScope scope(pool);
      std::atomic<std::int64_t> sum{0};
      parallel_for(0, 1000, [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t local = 0;
        for (std::int64_t i = lo; i < hi; ++i) local += i;
        sum += local;
      });
      sums[static_cast<std::size_t>(r)] = sum.load();
    });
  }
  for (auto& t : ranks) t.join();
  for (auto s : sums) EXPECT_EQ(s, 499500);
}

}  // namespace
}  // namespace dlrm
