// Tests for the dot-product and concat interaction ops.
#include "kernels/interaction.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {
namespace {

struct Feats {
  std::vector<Tensor<float>> storage;
  std::vector<const float*> ptrs;
  std::vector<Tensor<float>> grad_storage;
  std::vector<float*> grad_ptrs;
};

Feats make_feats(std::int64_t f, std::int64_t n, std::int64_t e, std::uint64_t seed) {
  Feats out;
  Rng rng(seed);
  for (std::int64_t i = 0; i < f; ++i) {
    out.storage.emplace_back(std::vector<std::int64_t>{n, e});
    fill_uniform(out.storage.back(), rng, 1.0f);
    out.ptrs.push_back(out.storage.back().data());
    out.grad_storage.emplace_back(std::vector<std::int64_t>{n, e});
    out.grad_storage.back().zero();
    out.grad_ptrs.push_back(out.grad_storage.back().data());
  }
  return out;
}

TEST(DotInteraction, OutputDims) {
  // MLPerf shape: 27 features of width 128 → 128 + 27*26/2 = 479, padded 480.
  DotInteraction op(27, 128, 32);
  EXPECT_EQ(op.payload_dim(), 479);
  EXPECT_EQ(op.out_dim(), 480);
  // Small config: 9 features of width 64 → 64 + 36 = 100, padded 128.
  DotInteraction small(9, 64, 32);
  EXPECT_EQ(small.payload_dim(), 100);
  EXPECT_EQ(small.out_dim(), 128);
  // No padding requested.
  DotInteraction nopad(9, 64, 1);
  EXPECT_EQ(nopad.out_dim(), 100);
}

TEST(DotInteraction, ForwardMatchesNaive) {
  const std::int64_t f = 5, n = 8, e = 12;
  DotInteraction op(f, e, 1);
  Feats feats = make_feats(f, n, e, 3);

  Tensor<float> out({n, op.out_dim()});
  op.forward(feats.ptrs, n, out.data());

  for (std::int64_t s = 0; s < n; ++s) {
    const float* row = out.data() + s * op.out_dim();
    // Dense payload.
    for (std::int64_t k = 0; k < e; ++k) {
      ASSERT_EQ(row[k], feats.storage[0][s * e + k]);
    }
    // Pairwise dots, strictly lower triangle, row-major over (i, j<i).
    std::int64_t w = e;
    for (std::int64_t i = 1; i < f; ++i) {
      for (std::int64_t j = 0; j < i; ++j) {
        float dot = 0.0f;
        for (std::int64_t k = 0; k < e; ++k) {
          dot += feats.storage[static_cast<std::size_t>(i)][s * e + k] *
                 feats.storage[static_cast<std::size_t>(j)][s * e + k];
        }
        ASSERT_NEAR(row[w++], dot, 1e-4f);
      }
    }
  }
}

TEST(DotInteraction, PaddingIsZero) {
  const std::int64_t f = 3, n = 4, e = 8;
  DotInteraction op(f, e, 32);  // payload 11 → padded 32
  Feats feats = make_feats(f, n, e, 4);
  Tensor<float> out({n, op.out_dim()});
  out.fill(5.0f);
  op.forward(feats.ptrs, n, out.data());
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t w = op.payload_dim(); w < op.out_dim(); ++w) {
      ASSERT_EQ(out[s * op.out_dim() + w], 0.0f);
    }
  }
}

TEST(DotInteraction, BackwardMatchesNumericalGradient) {
  const std::int64_t f = 4, n = 3, e = 6;
  DotInteraction op(f, e, 32);
  Feats feats = make_feats(f, n, e, 7);

  Tensor<float> coeff({n, op.out_dim()});
  Rng rng(8);
  fill_uniform(coeff, rng, 1.0f);

  auto loss_of = [&]() {
    Tensor<float> out({n, op.out_dim()});
    op.forward(feats.ptrs, n, out.data());
    double l = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i) l += out[i] * coeff[i];
    return l;
  };

  op.backward(feats.ptrs, coeff.data(), n, feats.grad_ptrs);

  const double eps = 1e-3;
  for (std::int64_t i = 0; i < f; ++i) {
    auto& t = feats.storage[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < t.size(); j += 3) {
      const float saved = t[j];
      t[j] = saved + static_cast<float>(eps);
      const double lp = loss_of();
      t[j] = saved - static_cast<float>(eps);
      const double lm = loss_of();
      t[j] = saved;
      const double num = (lp - lm) / (2 * eps);
      ASSERT_NEAR(num, feats.grad_storage[static_cast<std::size_t>(i)][j], 5e-2)
          << "feat " << i << " elem " << j;
    }
  }
}

TEST(ConcatInteraction, RoundTrip) {
  const std::int64_t f = 4, n = 6, e = 10;
  ConcatInteraction op(f, e, 32);
  EXPECT_EQ(op.out_dim(), 64);  // 40 padded to 64
  Feats feats = make_feats(f, n, e, 9);

  Tensor<float> out({n, op.out_dim()});
  op.forward(feats.ptrs, n, out.data());
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t i = 0; i < f; ++i) {
      for (std::int64_t k = 0; k < e; ++k) {
        ASSERT_EQ(out[s * op.out_dim() + i * e + k],
                  feats.storage[static_cast<std::size_t>(i)][s * e + k]);
      }
    }
  }

  // Backward is the exact adjoint of forward: a pure split.
  Tensor<float> dout({n, op.out_dim()});
  Rng rng(10);
  fill_uniform(dout, rng, 1.0f);
  op.backward(dout.data(), n, feats.grad_ptrs);
  for (std::int64_t s = 0; s < n; ++s) {
    for (std::int64_t i = 0; i < f; ++i) {
      for (std::int64_t k = 0; k < e; ++k) {
        ASSERT_EQ(feats.grad_storage[static_cast<std::size_t>(i)][s * e + k],
                  dout[s * op.out_dim() + i * e + k]);
      }
    }
  }
}

}  // namespace
}  // namespace dlrm
