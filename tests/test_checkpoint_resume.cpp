// Resume-parity matrix for the sharded checkpoint subsystem (slow label):
//
//  * Same-geometry bit-exactness: for R ∈ {1, 2, 4} × {fp32, bf16} ×
//    {round_robin, greedy_balanced, row_split}, training 3 steps, saving,
//    and continuing in a FRESH trainer must reproduce the per-step global
//    losses of the uninterrupted run bit-for-bit (both runs execute in this
//    process with identical arithmetic, so exact double equality is the
//    correct assertion in every build mode).
//
//  * Cross-geometry restore: an R=4 row-split snapshot restores into an
//    R=2 round-robin run and a single-process run. The reassembled state is
//    compared BIT-EXACTLY against the canonical state (resharding must be a
//    pure copy); the post-restore loss trajectory is compared against the
//    uninterrupted R=2 run to reduction-order tolerance — different rank
//    counts sum gradients in different orders, which is exactly the
//    couple-of-ULPs drift the PR-3 golden tables document across R.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/dist_trainer.hpp"
#include "core/model.hpp"

namespace dlrm {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dlrm_resume_" + name);
  fs::remove_all(dir);
  return dir.string();
}

// Split-friendly skewed table set (same shape as the sharding parity
// suites): table 0 is 8x the rest so row_split actually splits it.
DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "resume-tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {1600, 200, 250, 150, 220, 180};
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

DistributedTrainerOptions make_options(Precision precision,
                                       ShardingPolicy policy) {
  DistributedTrainerOptions opts;
  opts.lr = 0.05f;
  opts.global_batch = 64;
  opts.seed = 77;
  opts.sharding.policy = policy;
  opts.sharding.row_split_threshold = 600;
  opts.dist.embed_precision = precision == Precision::kBf16
                                  ? EmbedPrecision::kBf16Split
                                  : EmbedPrecision::kFp32;
  return opts;
}

constexpr int kSaveStep = 3;
constexpr int kPostSteps = 3;

using ResumeCase = std::tuple<int, Precision, ShardingPolicy>;

class CheckpointResumeParityTest : public ::testing::TestWithParam<ResumeCase> {
};

TEST_P(CheckpointResumeParityTest, ResumedRunIsBitExact) {
  const auto [R, precision, policy] = GetParam();
  DlrmConfig c = tiny_config();
  c.mlp_precision = precision;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const DistributedTrainerOptions opts = make_options(precision, policy);
  const std::string dir =
      test_dir(std::to_string(R) + "_" + to_string(precision) + "_" +
               to_string(policy));

  // Uninterrupted run; snapshots at step kSaveStep and keeps going.
  std::vector<double> want(kPostSteps, 0.0);
  const DlrmConfig& cc = c;
  run_ranks(R, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    for (int i = 0; i < kSaveStep; ++i) (void)trainer.train(1);
    trainer.save_checkpoint(dir);
    for (int i = 0; i < kPostSteps; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) want[static_cast<std::size_t>(i)] = loss;
    }
  });

  // Fresh trainers restore the snapshot and must continue identically.
  std::vector<double> got(kPostSteps, 0.0);
  run_ranks(R, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    ASSERT_TRUE(trainer.resume_from(dir));
    EXPECT_EQ(trainer.iterations_done(), kSaveStep);
    for (int i = 0; i < kPostSteps; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) got[static_cast<std::size_t>(i)] = loss;
    }
  });

  for (int i = 0; i < kPostSteps; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              want[static_cast<std::size_t>(i)])
        << "post-restore step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CheckpointResumeParityTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(Precision::kFp32, Precision::kBf16),
                       ::testing::Values(ShardingPolicy::kRoundRobin,
                                         ShardingPolicy::kGreedyBalanced,
                                         ShardingPolicy::kRowSplit)),
    [](const ::testing::TestParamInfo<ResumeCase>& info) {
      return "R" + std::to_string(std::get<0>(info.param)) + "_" +
             std::string(to_string(std::get<1>(info.param))) + "_" +
             std::string(to_string(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------------
// Cross-geometry restore: R=4 row-split snapshot → R=2 round-robin and R=1.
// ---------------------------------------------------------------------------

/// Canonical byte image of every logical table: each owned shard exported
/// into its global row range. Disjoint ranges — ranks write without locks.
std::vector<std::vector<unsigned char>> table_images(const DlrmConfig& c) {
  std::vector<std::vector<unsigned char>> images;
  for (std::int64_t rows : c.table_rows) {
    images.emplace_back(static_cast<std::size_t>(rows * c.dim * 4));
  }
  return images;
}

void export_owned_shards(DistributedDlrm& model,
                         std::vector<std::vector<unsigned char>>& images) {
  const std::vector<Shard> shards = model.owned_shards();
  for (std::size_t k = 0; k < shards.size(); ++k) {
    EmbeddingTable& t = model.owned_table(static_cast<std::int64_t>(k));
    const Shard& sh = shards[k];
    t.export_rows(0, sh.rows(),
                  images[static_cast<std::size_t>(sh.table)].data() +
                      sh.row_begin * t.checkpoint_row_bytes());
  }
}

TEST(CheckpointCrossGeometry, RowSplit4RestoresIntoRoundRobin2AndSingle) {
  DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir = test_dir("cross_geometry");
  const DlrmConfig& cc = c;

  // Writer: R=4 row-split, 3 steps, snapshot.
  run_ranks(4, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(),
                               make_options(Precision::kFp32,
                                            ShardingPolicy::kRowSplit));
    for (int i = 0; i < kSaveStep; ++i) (void)trainer.train(1);
    trainer.save_checkpoint(dir);
  });
  EXPECT_EQ(ckpt::CheckpointReader(dir).saved_plan().ranks(), 4);
  EXPECT_TRUE(ckpt::CheckpointReader(dir).saved_plan().has_split_tables());

  // Uninterrupted R=2 round-robin reference trajectory.
  std::vector<double> straight(kSaveStep + kPostSteps, 0.0);
  const DistributedTrainerOptions r2opts =
      make_options(Precision::kFp32, ShardingPolicy::kRoundRobin);
  run_ranks(2, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), r2opts);
    for (std::size_t i = 0; i < straight.size(); ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) straight[i] = loss;
    }
  });

  // Cross-geometry restore into R=2 round-robin: reassembled state exported
  // for the bit-exact check, then the trajectory continues.
  auto restored2 = table_images(c);
  std::vector<double> resumed(kPostSteps, 0.0);
  run_ranks(2, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), r2opts);
    ASSERT_TRUE(trainer.resume_from(dir));
    EXPECT_EQ(trainer.iterations_done(), kSaveStep);
    export_owned_shards(trainer.model(), restored2);
    for (int i = 0; i < kPostSteps; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) resumed[static_cast<std::size_t>(i)] = loss;
    }
  });

  // Same snapshot into a single-process trainer: the canonical assembly.
  auto restored1 = table_images(c);
  {
    DlrmModel model(c, {}, 42);
    Trainer trainer(model, data, {.lr = 0.05f, .batch = c.minibatch});
    ASSERT_TRUE(trainer.resume_from(dir));
    for (std::int64_t t = 0; t < model.tables(); ++t) {
      model.table(t).export_rows(0, c.table_rows[static_cast<std::size_t>(t)],
                                 restored1[static_cast<std::size_t>(t)].data());
    }
  }

  // Bit-exact resharding: the R=4 row-split shards reassembled under the
  // R=2 plan hold byte-identical rows to the single-process assembly.
  for (std::size_t t = 0; t < restored1.size(); ++t) {
    EXPECT_EQ(restored1[t], restored2[t]) << "table " << t;
  }

  // Trajectory: the restored R=2 run tracks the uninterrupted R=2 run from
  // the first post-restore step, up to the cross-R reduction-order drift of
  // the state at the save point (same tolerance class as the sharding
  // parity suites; bit-exactness across rank counts is not a property even
  // without checkpointing).
  for (int i = 0; i < kPostSteps; ++i) {
    EXPECT_NEAR(resumed[static_cast<std::size_t>(i)],
                straight[static_cast<std::size_t>(kSaveStep + i)], 3e-3)
        << "post-restore step " << i;
  }
}

// ---------------------------------------------------------------------------
// Warm restore: the data pipeline refills before step 1 trains.
// ---------------------------------------------------------------------------

// resume_from must leave the prefetch pipeline positioned at the saved
// stream cursor and already refilled — the first post-restore step consumes
// prefetched data instead of paying the full loader cost, and no reseek is
// ever charged to the training stream (losses bit-exact as ever).
TEST(CheckpointWarmRestore, DistributedPipelineIsPrefilledAtSavedCursor) {
  DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir = test_dir("warm_distributed");
  const DlrmConfig& cc = c;
  DistributedTrainerOptions opts =
      make_options(Precision::kFp32, ShardingPolicy::kRoundRobin);
  opts.prefetch_workers = 2;

  std::vector<double> want(kPostSteps, 0.0);
  run_ranks(2, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    for (int i = 0; i < kSaveStep; ++i) (void)trainer.train(1);
    trainer.save_checkpoint(dir);
    for (int i = 0; i < kPostSteps; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) want[static_cast<std::size_t>(i)] = loss;
    }
  });
  EXPECT_EQ(ckpt::CheckpointReader(dir).data_cursor(), kSaveStep);

  std::vector<double> got(kPostSteps, 0.0);
  run_ranks(2, 2, [&](ThreadComm& comm) {
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(cc, data, comm, backend.get(), opts);
    ASSERT_TRUE(trainer.resume_from(dir));
    // Warm: cursor repositioned, ring already full, nothing was flushed.
    EXPECT_EQ(trainer.prefetch().next_iter(), kSaveStep);
    EXPECT_GE(trainer.prefetch().ready_batches(), opts.prefetch_depth);
    EXPECT_EQ(trainer.prefetch().reseeks(), 0);
    for (int i = 0; i < kPostSteps; ++i) {
      const double loss = trainer.train(1);
      if (comm.rank() == 0) got[static_cast<std::size_t>(i)] = loss;
    }
    // Sequential consumption from the restored cursor: still no reseeks.
    EXPECT_EQ(trainer.prefetch().reseeks(), 0);
  });

  for (int i = 0; i < kPostSteps; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              want[static_cast<std::size_t>(i)])
        << "post-restore step " << i;
  }
}

// Single-process Trainer with the pipeline on: same warm-restore contract
// (train_cli's default configuration, which checkpoint_smoke.sh kills and
// resumes end to end).
TEST(CheckpointWarmRestore, TrainerPipelineIsPrefilledAtSavedCursor) {
  DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::string dir = test_dir("warm_single");
  const TrainerOptions topts = {.lr = 0.05f,
                                .batch = c.minibatch,
                                .prefetch = true,
                                .prefetch_depth = 2,
                                .prefetch_workers = 2};

  std::vector<double> want(kPostSteps, 0.0);
  {
    DlrmModel model(c, {}, 42);
    Trainer trainer(model, data, topts);
    for (int i = 0; i < kSaveStep; ++i) (void)trainer.train(1);
    trainer.save_checkpoint(dir);
    for (int i = 0; i < kPostSteps; ++i) {
      want[static_cast<std::size_t>(i)] = trainer.train(1);
    }
  }

  std::vector<double> got(kPostSteps, 0.0);
  {
    DlrmModel model(c, {}, 42);
    Trainer trainer(model, data, topts);
    ASSERT_TRUE(trainer.resume_from(dir));
    ASSERT_NE(trainer.prefetch(), nullptr);
    EXPECT_EQ(trainer.prefetch()->next_iter(), kSaveStep);
    EXPECT_GE(trainer.prefetch()->ready_batches(), topts.prefetch_depth);
    EXPECT_EQ(trainer.prefetch()->reseeks(), 0);
    for (int i = 0; i < kPostSteps; ++i) {
      got[static_cast<std::size_t>(i)] = trainer.train(1);
    }
    EXPECT_EQ(trainer.prefetch()->reseeks(), 0);
  }

  for (int i = 0; i < kPostSteps; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              want[static_cast<std::size_t>(i)])
        << "post-restore step " << i;
  }
}

}  // namespace
}  // namespace dlrm
