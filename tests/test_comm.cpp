// Tests for the in-process rank world and its collectives.
#include "comm/thread_comm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "common/threadpool.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {
namespace {

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, AllreduceSumsAcrossRanks) {
  const int R = GetParam();
  const std::int64_t n = 1037;  // odd size exercises uneven chunking
  run_ranks(R, 0, [&](ThreadComm& comm) {
    std::vector<float> data(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(i)] =
          static_cast<float>(i % 13) + comm.rank();
    }
    comm.allreduce(data.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      const float expect = static_cast<float>((i % 13)) * R +
                           static_cast<float>(R * (R - 1)) / 2.0f;
      ASSERT_FLOAT_EQ(data[static_cast<std::size_t>(i)], expect)
          << "rank " << comm.rank() << " i " << i;
    }
  });
}

TEST_P(CollectivesTest, ReduceScatterThenAllgatherEqualsAllreduce) {
  const int R = GetParam();
  const std::int64_t n = 640;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    std::vector<float> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n));
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 7);
    for (std::int64_t i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
      b[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
    }
    comm.allreduce(a.data(), n);
    comm.reduce_scatter(b.data(), n);
    comm.allgather_chunks(b.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-5f);
    }
  });
}

TEST_P(CollectivesTest, AlltoallExchangesBlocks) {
  const int R = GetParam();
  const std::int64_t per = 17;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    std::vector<float> send(static_cast<std::size_t>(R * per));
    std::vector<float> recv(static_cast<std::size_t>(R * per));
    // send block p carries value 100*rank + p.
    for (int p = 0; p < R; ++p) {
      for (std::int64_t i = 0; i < per; ++i) {
        send[static_cast<std::size_t>(p * per + i)] =
            static_cast<float>(100 * comm.rank() + p);
      }
    }
    comm.alltoall(send.data(), recv.data(), per);
    for (int p = 0; p < R; ++p) {
      for (std::int64_t i = 0; i < per; ++i) {
        ASSERT_FLOAT_EQ(recv[static_cast<std::size_t>(p * per + i)],
                        static_cast<float>(100 * p + comm.rank()));
      }
    }
  });
}

TEST_P(CollectivesTest, AlltoallvWithUnevenCounts) {
  const int R = GetParam();
  run_ranks(R, 0, [&](ThreadComm& comm) {
    // Rank r sends (p+1) floats to peer p, tagged r*1000 + p.
    std::vector<std::int64_t> scounts(static_cast<std::size_t>(R)),
        sdispls(static_cast<std::size_t>(R)), rcounts(static_cast<std::size_t>(R)),
        rdispls(static_cast<std::size_t>(R));
    std::int64_t stotal = 0;
    for (int p = 0; p < R; ++p) {
      scounts[static_cast<std::size_t>(p)] = p + 1;
      sdispls[static_cast<std::size_t>(p)] = stotal;
      stotal += p + 1;
    }
    std::int64_t rtotal = 0;
    for (int p = 0; p < R; ++p) {
      rcounts[static_cast<std::size_t>(p)] = comm.rank() + 1;
      rdispls[static_cast<std::size_t>(p)] = rtotal;
      rtotal += comm.rank() + 1;
    }
    std::vector<float> send(static_cast<std::size_t>(stotal));
    std::vector<float> recv(static_cast<std::size_t>(rtotal));
    for (int p = 0; p < R; ++p) {
      for (std::int64_t i = 0; i < scounts[static_cast<std::size_t>(p)]; ++i) {
        send[static_cast<std::size_t>(sdispls[static_cast<std::size_t>(p)] + i)] =
            static_cast<float>(comm.rank() * 1000 + p);
      }
    }
    comm.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                   rcounts.data(), rdispls.data());
    for (int p = 0; p < R; ++p) {
      for (std::int64_t i = 0; i < rcounts[static_cast<std::size_t>(p)]; ++i) {
        ASSERT_FLOAT_EQ(
            recv[static_cast<std::size_t>(rdispls[static_cast<std::size_t>(p)] + i)],
            static_cast<float>(p * 1000 + comm.rank()));
      }
    }
  });
}

TEST_P(CollectivesTest, BroadcastFromEveryRoot) {
  const int R = GetParam();
  run_ranks(R, 0, [&](ThreadComm& comm) {
    for (int root = 0; root < R; ++root) {
      std::vector<float> data(64, comm.rank() == root ? 42.0f + root : -1.0f);
      comm.broadcast(data.data(), 64, root);
      for (float v : data) ASSERT_FLOAT_EQ(v, 42.0f + root);
    }
  });
}

TEST_P(CollectivesTest, BroadcastI64FromEveryRoot) {
  const int R = GetParam();
  run_ranks(R, 0, [&](ThreadComm& comm) {
    for (int root = 0; root < R; ++root) {
      std::vector<std::int64_t> data(33);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = comm.rank() == root
                      ? (std::int64_t{1} << 40) + root * 100 +
                            static_cast<std::int64_t>(i)
                      : -1;
      }
      comm.broadcast_i64(data.data(), 33, root);
      for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data[i], (std::int64_t{1} << 40) + root * 100 +
                               static_cast<std::int64_t>(i));
      }
    }
  });
}

TEST_P(CollectivesTest, ScatterGatherRoundTrip) {
  const int R = GetParam();
  const std::int64_t chunk = 23;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    for (int root = 0; root < R; ++root) {
      std::vector<float> send;
      if (comm.rank() == root) {
        send.resize(static_cast<std::size_t>(R * chunk));
        for (std::int64_t i = 0; i < R * chunk; ++i) {
          send[static_cast<std::size_t>(i)] = static_cast<float>(i) + root;
        }
      }
      std::vector<float> mine(static_cast<std::size_t>(chunk));
      comm.scatter(comm.rank() == root ? send.data() : nullptr, mine.data(),
                   chunk, root);
      for (std::int64_t i = 0; i < chunk; ++i) {
        ASSERT_FLOAT_EQ(mine[static_cast<std::size_t>(i)],
                        static_cast<float>(comm.rank() * chunk + i) + root);
      }
      // Gather back and verify at root.
      std::vector<float> gathered;
      if (comm.rank() == root) gathered.resize(static_cast<std::size_t>(R * chunk));
      comm.gather(mine.data(), comm.rank() == root ? gathered.data() : nullptr,
                  chunk, root);
      if (comm.rank() == root) {
        for (std::int64_t i = 0; i < R * chunk; ++i) {
          ASSERT_FLOAT_EQ(gathered[static_cast<std::size_t>(i)],
                          static_cast<float>(i) + root);
        }
      }
    }
  });
}

TEST_P(CollectivesTest, ManySequentialCollectivesStress) {
  const int R = GetParam();
  run_ranks(R, 0, [&](ThreadComm& comm) {
    std::vector<float> data(128);
    for (int iter = 0; iter < 200; ++iter) {
      for (auto& v : data) v = 1.0f;
      comm.allreduce(data.data(), 128);
      ASSERT_FLOAT_EQ(data[0], static_cast<float>(R));
      comm.barrier();
    }
  });
}

TEST_P(CollectivesTest, Bf16AllreduceSumsWithFp32Accumulation) {
  const int R = GetParam();
  const std::int64_t n = 1037;  // odd size exercises uneven chunking
  run_ranks(R, 0, [&](ThreadComm& comm) {
    // Small integers are exact in bf16 and so are their sums (< 256): the
    // bf16 allreduce must be exact here, proving fp32 accumulation (naive
    // pairwise bf16 adds would round intermediate sums for R > 2).
    std::vector<std::uint16_t> data(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(i)] =
          f32_to_bf16_rne(static_cast<float>(i % 13 + comm.rank()));
    }
    comm.allreduce_bf16(data.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      const float expect = static_cast<float>((i % 13)) * R +
                           static_cast<float>(R * (R - 1)) / 2.0f;
      ASSERT_EQ(bf16_to_f32(data[static_cast<std::size_t>(i)]), expect)
          << "rank " << comm.rank() << " i " << i;
    }
  });
}

TEST_P(CollectivesTest, Bf16AllreduceWithinRoundingOfFp32) {
  const int R = GetParam();
  const std::int64_t n = 512;
  run_ranks(R, 0, [&](ThreadComm& comm) {
    std::vector<float> ref(static_cast<std::size_t>(n));
    std::vector<std::uint16_t> low(static_cast<std::size_t>(n));
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 31);
    for (std::int64_t i = 0; i < n; ++i) {
      // Use bf16-exact inputs so the only rounding is the final one.
      const float v = bf16_to_f32(f32_to_bf16_rne(rng.uniform(-1.0f, 1.0f)));
      ref[static_cast<std::size_t>(i)] = v;
      low[static_cast<std::size_t>(i)] = f32_to_bf16_rne(v);
    }
    comm.allreduce(ref.data(), n);
    comm.allreduce_bf16(low.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      const float r = ref[static_cast<std::size_t>(i)];
      const float l = bf16_to_f32(low[static_cast<std::size_t>(i)]);
      ASSERT_NEAR(l, r, std::max(1e-6f, std::fabs(r) * 0x1.0p-8f)) << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(CommWorld, RankValidation) {
  auto world = CommWorld::create(2);
  EXPECT_THROW(ThreadComm(world, 2), CheckError);
  EXPECT_THROW(ThreadComm(world, -1), CheckError);
  EXPECT_THROW(CommWorld::create(0), CheckError);
}

TEST(RunRanks, PropagatesExceptions) {
  EXPECT_THROW(run_ranks(2, 0,
                         [](ThreadComm& comm) {
                           comm.barrier();
                           if (comm.rank() == 0) throw std::runtime_error("boom");
                         }),
               std::runtime_error);
}

TEST(RunRanks, InstallsPerRankPools) {
  run_ranks(3, 2, [](ThreadComm&) {
    EXPECT_EQ(current_pool().size(), 2);
  });
}

}  // namespace
}  // namespace dlrm
