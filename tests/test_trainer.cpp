// Tests for the single-process trainer: convergence on the planted-teacher
// click dataset (the mechanism behind Fig. 16).
#include "core/trainer.hpp"

#include <gtest/gtest.h>

namespace dlrm {
namespace {

DlrmConfig ctr_tiny_config() {
  DlrmConfig c;
  c.name = "ctr-tiny";
  c.minibatch = 128;
  c.global_batch_strong = 256;
  c.local_batch_weak = 128;
  c.pooling = 1;
  c.dim = 16;
  c.table_rows = {2000, 1000, 3000, 500};
  c.bottom_mlp = {8, 32, 16};
  c.top_mlp = {32, 1};
  c.validate();
  return c;
}

SyntheticCtrDataset ctr_tiny_data(const DlrmConfig& c) {
  CtrParams p;
  p.dense_dim = c.bottom_mlp.front();
  p.rows = c.table_rows;
  p.pooling = c.pooling;
  // Tests keep most of the signal in the dense features + hot rows so a
  // short run converges; the Fig. 16 bench uses a longer, sparser setup.
  p.index_skew = 1.2;
  p.dense_scale = 1.2f;
  p.sparse_scale = 0.9f;
  p.seed = 99;
  return SyntheticCtrDataset(p);
}

TEST(Trainer, LearnsPlantedSignalAboveChance) {
  const DlrmConfig c = ctr_tiny_config();
  SyntheticCtrDataset data = ctr_tiny_data(c);
  DlrmModel model(c, {}, 21);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data, {.lr = 0.1f, .batch = 128, .seed = 21});

  const double before = trainer.evaluate(200000, 4096);
  EXPECT_NEAR(before, 0.5, 0.06);  // untrained ≈ chance
  trainer.train(300);
  const double after = trainer.evaluate(200000, 4096);
  EXPECT_GT(after, 0.62) << "training failed to beat chance";
  // Should approach (not exceed by much) the Bayes bound.
  const double teacher = data.teacher_auc(4096);
  EXPECT_LT(after, teacher + 0.05);
}

TEST(Trainer, EvalPointsAreOrderedAndImprove) {
  const DlrmConfig c = ctr_tiny_config();
  SyntheticCtrDataset data = ctr_tiny_data(c);
  DlrmModel model(c, {}, 22);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data, {.lr = 0.1f, .batch = 128, .seed = 22});

  auto points = trainer.train_with_eval(/*train_samples=*/128 * 300,
                                        /*eval_samples=*/2048,
                                        /*eval_points=*/4);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_NEAR(points[i].epoch_fraction, 0.25 * (i + 1), 1e-9);
  }
  // Final AUC must improve on the first checkpoint (monotone-ish learning).
  EXPECT_GT(points.back().auc, points.front().auc - 0.02);
  EXPECT_GT(points.back().auc, 0.60);
}

// Regression: eval_points > total iterations used to run train(0) on the
// empty intervals and report their mean over an empty Meter — a bogus 0.0
// train_loss. Empty intervals are now merged into the next checkpoint.
TEST(Trainer, TrainWithEvalMergesEmptyIntervals) {
  const DlrmConfig c = ctr_tiny_config();
  SyntheticCtrDataset data = ctr_tiny_data(c);
  DlrmModel model(c, {}, 24);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data, {.lr = 0.05f, .batch = 128, .seed = 24});

  // 2 total iterations, 8 requested checkpoints -> only 2 materialize.
  auto points = trainer.train_with_eval(/*train_samples=*/128 * 2,
                                        /*eval_samples=*/512,
                                        /*eval_points=*/8);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].epoch_fraction, 0.5);
  EXPECT_DOUBLE_EQ(points[1].epoch_fraction, 1.0);
  for (const auto& p : points) {
    EXPECT_GT(p.train_loss, 0.0) << "empty interval reported as loss 0.0";
  }
  EXPECT_EQ(trainer.iterations_done(), 2);
}

TEST(Trainer, TrainWithEvalAppliesLrSchedule) {
  const DlrmConfig c = ctr_tiny_config();
  SyntheticCtrDataset data = ctr_tiny_data(c);
  DlrmModel model(c, {}, 25);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data, {.lr = 0.2f, .batch = 128, .seed = 25});

  std::vector<double> seen;
  auto points = trainer.train_with_eval(
      128 * 4, 512, 2, [&](double frac) {
        seen.push_back(frac);
        return static_cast<float>(0.2 * (1.0 - frac));
      });
  ASSERT_EQ(points.size(), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.5);
  EXPECT_DOUBLE_EQ(seen[1], 1.0);
  EXPECT_FLOAT_EQ(trainer.lr(), 0.0f);  // schedule's final value sticks
}

TEST(Trainer, IterationCounterAdvances) {
  const DlrmConfig c = ctr_tiny_config();
  SyntheticCtrDataset data = ctr_tiny_data(c);
  DlrmModel model(c, {}, 23);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  Trainer trainer(model, opt, data, {.lr = 0.05f, .batch = 128, .seed = 23});
  trainer.train(3);
  EXPECT_EQ(trainer.iterations_done(), 3);
  trainer.train(2);
  EXPECT_EQ(trainer.iterations_done(), 5);
}

}  // namespace
}  // namespace dlrm
