// The key integration test of the hybrid-parallel substrate: an R-rank
// distributed DLRM must match the single-process model step for step
// (model-parallel embeddings + data-parallel MLPs + alltoall + DDP ≡ one
// big-batch model).
#include "core/distributed.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/model.hpp"
#include "data/loader.hpp"
#include "stats/metrics.hpp"

namespace dlrm {
namespace {

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 32;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};  // S = 6
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

// Runs `iters` single-process training steps on global batches and returns
// the logits of a final forward pass plus a probe row of table 0.
struct SingleResult {
  Tensor<float> logits;
  std::vector<float> probe_row;
};

SingleResult run_single(const DlrmConfig& c, const RandomDataset& data,
                        std::int64_t gn, int iters, std::uint64_t seed) {
  DlrmModel model(c, {}, seed);
  model.set_batch(gn);
  SgdFp32 opt;
  opt.attach(model.mlp_param_slots());
  MiniBatch mb;
  for (int i = 0; i < iters; ++i) {
    data.fill(i * gn, gn, mb);
    model.train_step(mb, 0.05f, opt);
  }
  data.fill(0, gn, mb);
  SingleResult out{model.forward(mb).clone(), {}};
  out.probe_row.resize(static_cast<std::size_t>(c.dim));
  model.table(0).read_row(7, out.probe_row.data());
  return out;
}

using DistCase = std::tuple<int, ExchangeStrategy, bool>;  // ranks, strategy, overlap

class DistributedEquivalenceTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedEquivalenceTest, MatchesSingleProcess) {
  const auto [R, strategy, overlap] = GetParam();
  const DlrmConfig c = tiny_config();
  const std::int64_t GN = 64;
  const int iters = 4;
  const std::uint64_t seed = 77;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const DlrmConfig& cc = c;

  const SingleResult ref = run_single(cc, data, GN, iters, seed);

  Tensor<float> dist_logits({GN});
  std::vector<float> dist_probe(static_cast<std::size_t>(c.dim));
  run_ranks(R, 2, [&, strategy = strategy, overlap = overlap](ThreadComm& comm) {
    DistributedOptions opts;
    opts.exchange = strategy;
    opts.overlap = overlap;
    opts.lr = 0.05f;
    opts.seed = seed;
    auto backend = overlap ? QueueBackend::ccl_like(2) : nullptr;
    DistributedDlrm model(cc, opts, comm, backend.get(), GN);

    DataLoader loader(data, GN, comm.rank(), comm.size(), model.owned_tables(),
                      LoaderMode::kLocalSlice);
    HybridBatch hb;
    for (int i = 0; i < iters; ++i) {
      loader.next(i, hb);
      model.train_step(hb);
    }
    loader.next(0, hb);
    const Tensor<float>& logits = model.forward(hb);
    const std::int64_t ln = model.local_batch();
    for (std::int64_t i = 0; i < ln; ++i) {
      dist_logits[comm.rank() * ln + i] = logits[i];
    }
    if (comm.rank() == 0) {
      // Table 0 is owned by rank 0 under round-robin.
      model.owned_table(0).read_row(7, dist_probe.data());
    }
  });

  EXPECT_LE(max_abs_diff(ref.logits, dist_logits), 2e-3f);
  for (std::int64_t e = 0; e < c.dim; ++e) {
    EXPECT_NEAR(ref.probe_row[static_cast<std::size_t>(e)],
                dist_probe[static_cast<std::size_t>(e)], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistributedEquivalenceTest,
    ::testing::Values(DistCase{2, ExchangeStrategy::kAlltoall, false},
                      DistCase{2, ExchangeStrategy::kAlltoall, true},
                      DistCase{2, ExchangeStrategy::kScatterList, false},
                      DistCase{2, ExchangeStrategy::kFusedScatter, false},
                      DistCase{4, ExchangeStrategy::kAlltoall, true},
                      DistCase{4, ExchangeStrategy::kFusedScatter, true}),
    [](const ::testing::TestParamInfo<DistCase>& tpi) {
      return "R" + std::to_string(std::get<0>(tpi.param)) + "_" +
             std::string(to_string(std::get<1>(tpi.param))) +
             (std::get<2>(tpi.param) ? "_overlap" : "_blocking");
    });

TEST(DistributedDlrm, LossDecreasesAcrossRanks) {
  const DlrmConfig c = tiny_config();
  const std::int64_t GN = 64;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 19);
  const DlrmConfig& cc = c;

  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedOptions opts;
    opts.lr = 0.05f;
    auto backend = QueueBackend::mpi_like();
    DistributedDlrm model(cc, opts, comm, backend.get(), GN);
    DataLoader loader(data, GN, comm.rank(), comm.size(), model.owned_tables(),
                      LoaderMode::kLocalSlice);
    HybridBatch hb;
    loader.next(0, hb);
    const double first = model.train_step(hb);
    double last = first;
    for (int i = 0; i < 60; ++i) last = model.train_step(hb);  // overfit
    EXPECT_LT(last, first * 0.8) << "rank " << comm.rank();
  });
}

TEST(DistributedDlrm, CommInstrumentationPopulated) {
  const DlrmConfig c = tiny_config();
  const DlrmConfig& cc = c;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 23);
  run_ranks(2, 1, [&](ThreadComm& comm) {
    DistributedOptions opts;
    opts.overlap = false;  // blocking instrumentation mode
    DistributedDlrm model(cc, opts, comm, nullptr, 64);
    DataLoader loader(data, 64, comm.rank(), comm.size(), model.owned_tables(),
                      LoaderMode::kLocalSlice);
    HybridBatch hb;
    loader.next(0, hb);
    Profiler prof;
    model.train_step(hb, &prof);
    EXPECT_GT(prof.count("emb_fwd"), 0);
    EXPECT_GT(prof.count("alltoall_fwd_finish"), 0);
    EXPECT_GT(prof.count("allreduce_finish"), 0);
    EXPECT_GE(model.last_alltoall_wait_sec() +
                  model.last_alltoall_framework_sec(), 0.0);
  });
}

TEST(DistributedDlrm, SingleRankDegeneratesToLocalModel) {
  // R=1: no communication, model must behave exactly like DlrmModel.
  const DlrmConfig c = tiny_config();
  const DlrmConfig& cc = c;
  const std::int64_t GN = 32;
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 29);
  const SingleResult ref = run_single(cc, data, GN, 2, 31);

  run_ranks(1, 2, [&](ThreadComm& comm) {
    DistributedOptions opts;
    opts.lr = 0.05f;
    opts.seed = 31;
    DistributedDlrm model(cc, opts, comm, nullptr, GN);
    DataLoader loader(data, GN, 0, 1, model.owned_tables(),
                      LoaderMode::kLocalSlice);
    HybridBatch hb;
    for (int i = 0; i < 2; ++i) {
      loader.next(i, hb);
      model.train_step(hb);
    }
    loader.next(0, hb);
    const Tensor<float>& logits = model.forward(hb);
    for (std::int64_t i = 0; i < GN; ++i) {
      ASSERT_NEAR(logits[i], ref.logits[i], 1e-4f);
    }
  });
}

}  // namespace
}  // namespace dlrm
