// Tests for the analytic DLRM iteration simulator: every qualitative claim
// of the paper's evaluation (Figs. 7-15) must hold in the model.
#include "cluster/simulator.hpp"

#include <gtest/gtest.h>

#include "cluster/costmodel.hpp"

namespace dlrm {
namespace {

SimOptions cluster_opts(SimBackend backend, ExchangeStrategy strategy,
                        bool overlap) {
  SimOptions o;
  o.socket = clx_8280();
  o.topo = Topology::pruned_fat_tree(64);
  o.backend = backend;
  o.strategy = strategy;
  o.overlap = overlap;
  return o;
}

TEST(KernelModel, ReferenceRowCostReproducesFig7Anchors) {
  // Small: 2048 batch * 50 lookups * 8 tables ≈ 4.3 s; MLPerf: 2048*1*26
  // lookups ≈ 0.27 s — the two Reference columns of Fig. 7.
  KernelModel km(skx_8180(), KernelEffs{});
  const double small_ref =
      km.embedding_update_time(UpdateStrategy::kReference, 8, 2048, 50, 64,
                               false, false, 28);
  EXPECT_NEAR(small_ref, 4.26, 0.5);
  const double mlperf_ref =
      km.embedding_update_time(UpdateStrategy::kReference, 26, 2048, 1, 128,
                               false, false, 28);
  EXPECT_NEAR(mlperf_ref, 0.277, 0.05);
}

TEST(Simulator, Fig7SingleSocketOrdering) {
  // Reference >> any optimized strategy; on the skewed MLPerf stream the
  // race-free update clearly beats atomic/RTM (the contention effect).
  DlrmSimulator small(small_config(), [] {
    SimOptions o;
    o.socket = skx_8180();
    o.skewed_indices = false;
    return o;
  }());
  const double ref = small.single_socket_ms(UpdateStrategy::kReference, 2048, false);
  const double atomic = small.single_socket_ms(UpdateStrategy::kAtomicXchg, 2048, true);
  const double rtm = small.single_socket_ms(UpdateStrategy::kRtm, 2048, true);
  const double racefree = small.single_socket_ms(UpdateStrategy::kRaceFree, 2048, true);
  EXPECT_GT(ref / racefree, 50.0) << "the ~110x story";
  EXPECT_LT(ref / racefree, 250.0);
  // Uniform indices: all three parallel strategies within ~15%.
  EXPECT_NEAR(atomic / racefree, 1.0, 0.15);
  EXPECT_NEAR(rtm / racefree, 1.0, 0.15);

  DlrmSimulator mlperf(mlperf_config(), [] {
    SimOptions o;
    o.socket = skx_8180();
    o.skewed_indices = true;  // terabyte-like hot rows
    return o;
  }());
  const double m_ref = mlperf.single_socket_ms(UpdateStrategy::kReference, 2048, false);
  const double m_atomic = mlperf.single_socket_ms(UpdateStrategy::kAtomicXchg, 2048, true);
  const double m_racefree = mlperf.single_socket_ms(UpdateStrategy::kRaceFree, 2048, true);
  EXPECT_GT(m_ref / m_racefree, 4.0) << "the ~8x MLPerf story";
  EXPECT_GT(m_atomic, m_racefree * 1.5) << "contention must hurt atomics";
}

TEST(Simulator, Fig8EmbeddingShareDropsAfterOptimization) {
  // Paper: after optimization, embeddings ≈ 30% of the small config time
  // and < 20% of MLPerf; in the reference they dominate (99%).
  DlrmSimulator small(small_config(), {});
  const auto ref = small.single_socket_split(UpdateStrategy::kReference, 2048, false);
  EXPECT_GT(ref.emb_ms / ref.total_ms(), 0.9);
  const auto opt = small.single_socket_split(UpdateStrategy::kRaceFree, 2048, true);
  EXPECT_LT(opt.emb_ms / opt.total_ms(), 0.5);
  EXPECT_GT(opt.mlp_ms / opt.total_ms(), 0.3);
}

TEST(Simulator, StrongScalingSpeedupGrowsAndEfficiencyDecays) {
  const DlrmConfig cfg = large_config();
  DlrmSimulator sim(cfg, cluster_opts(SimBackend::kCcl, ExchangeStrategy::kAlltoall, true));
  const double base = sim.iteration(4, cfg.global_batch_strong).total_ms();
  double prev_speedup = 1.0;
  for (int r : {8, 16, 32, 64}) {
    const double t = sim.iteration(r, cfg.global_batch_strong).total_ms();
    const double speedup = base / t;
    EXPECT_GT(speedup, prev_speedup) << r;
    // Efficiency relative to the 4-rank baseline decays below 1.
    EXPECT_LT(speedup / (r / 4.0), 1.05) << r;
    prev_speedup = speedup;
  }
  // End-to-end: paper reports ~5-6x from 8x more sockets (~60-71% eff).
  const double speedup64 =
      base / sim.iteration(64, cfg.global_batch_strong).total_ms();
  EXPECT_GT(speedup64, 3.0);
  EXPECT_LT(speedup64, 16.0);
}

TEST(Simulator, AlltoallBeatsFusedScatterBeatsScatterList) {
  const DlrmConfig cfg = mlperf_config();
  for (int r : {4, 8, 16}) {
    const double t_list =
        DlrmSimulator(cfg, cluster_opts(SimBackend::kMpi, ExchangeStrategy::kScatterList, true))
            .iteration(r, cfg.global_batch_strong).total_ms();
    const double t_fused =
        DlrmSimulator(cfg, cluster_opts(SimBackend::kMpi, ExchangeStrategy::kFusedScatter, true))
            .iteration(r, cfg.global_batch_strong).total_ms();
    const double t_a2a =
        DlrmSimulator(cfg, cluster_opts(SimBackend::kMpi, ExchangeStrategy::kAlltoall, true))
            .iteration(r, cfg.global_batch_strong).total_ms();
    EXPECT_LE(t_fused, t_list * 1.001) << r;
    EXPECT_LT(t_a2a, t_fused) << r;
    // Paper: native alltoall yields > 2x over scatter-based at scale.
    if (r >= 8) {
      EXPECT_GT(t_list / t_a2a, 1.3) << r;
    }
  }
}

TEST(Simulator, CclBeatsMpiWhenOverlapping) {
  const DlrmConfig cfg = large_config();
  for (int r : {8, 32, 64}) {
    const double mpi =
        DlrmSimulator(cfg, cluster_opts(SimBackend::kMpi, ExchangeStrategy::kAlltoall, true))
            .iteration(r, cfg.global_batch_strong).total_ms();
    const double ccl =
        DlrmSimulator(cfg, cluster_opts(SimBackend::kCcl, ExchangeStrategy::kAlltoall, true))
            .iteration(r, cfg.global_batch_strong).total_ms();
    EXPECT_LT(ccl, mpi) << r;
  }
}

TEST(Simulator, MpiComputeInflatesUnderOverlap) {
  // Fig. 10: with the MPI backend, overlap inflates even the compute time.
  const DlrmConfig cfg = large_config();
  DlrmSimulator mpi(cfg, cluster_opts(SimBackend::kMpi, ExchangeStrategy::kAlltoall, true));
  DlrmSimulator blocking(cfg, cluster_opts(SimBackend::kMpi, ExchangeStrategy::kAlltoall, false));
  const auto o = mpi.iteration(32, cfg.global_batch_strong);
  const auto b = blocking.iteration(32, cfg.global_batch_strong);
  EXPECT_GT(o.compute_ms(), b.compute_ms() * 1.1);
}

TEST(Simulator, MpiInOrderArtifactMovesAllreduceIntoAlltoallWait) {
  // Fig. 11: overlapped MPI shows a huge Alltoall-Wait and near-zero
  // Allreduce-Wait; CCL charges each collective its own cost.
  const DlrmConfig cfg = large_config();
  const auto mpi =
      DlrmSimulator(cfg, cluster_opts(SimBackend::kMpi, ExchangeStrategy::kAlltoall, true))
          .iteration(64, cfg.global_batch_strong);
  EXPECT_EQ(mpi.ar_wait_ms, 0.0);
  EXPECT_GT(mpi.a2a_wait_ms, mpi.a2a_raw_ms) << "absorbed allreduce cost";
  const auto ccl =
      DlrmSimulator(cfg, cluster_opts(SimBackend::kCcl, ExchangeStrategy::kAlltoall, true))
          .iteration(64, cfg.global_batch_strong);
  EXPECT_GT(ccl.ar_wait_ms, 0.0);
  EXPECT_LE(ccl.a2a_wait_ms, ccl.a2a_raw_ms + 1e-9);
}

TEST(Simulator, MlperfCommCrossoverAlltoallToAllreduce) {
  // Fig. 11 right: MLPerf starts alltoall-bound at low ranks and becomes
  // allreduce-bound at 16-26 ranks (blocking mode shows the raw costs).
  const DlrmConfig cfg = mlperf_config();
  DlrmSimulator sim(cfg, cluster_opts(SimBackend::kCcl, ExchangeStrategy::kAlltoall, false));
  const auto low = sim.iteration(2, cfg.global_batch_strong);
  EXPECT_GT(low.a2a_raw_ms, low.ar_raw_ms);
  const auto high = sim.iteration(26, cfg.global_batch_strong);
  EXPECT_GT(high.ar_raw_ms, high.a2a_raw_ms);
}

TEST(Simulator, WeakScalingBeatsStrongScalingEfficiency) {
  // Paper: Large weak scaling reaches ~84% at 64R vs ~60-71% strong.
  const DlrmConfig cfg = large_config();
  DlrmSimulator sim(cfg, cluster_opts(SimBackend::kCcl, ExchangeStrategy::kAlltoall, true));
  const int r0 = 4, r1 = 64;
  // Strong: fixed GN.
  const double strong_eff =
      sim.iteration(r0, cfg.global_batch_strong).total_ms() /
      sim.iteration(r1, cfg.global_batch_strong).total_ms() / (r1 / r0);
  // Weak: fixed LN → per-iteration time should stay nearly flat; efficiency
  // = t(r0) / t(r1).
  const double weak_eff =
      sim.iteration(r0, cfg.local_batch_weak * r0).total_ms() /
      sim.iteration(r1, cfg.local_batch_weak * r1).total_ms();
  EXPECT_GT(weak_eff, strong_eff);
  EXPECT_GT(weak_eff, 0.5);
  EXPECT_LE(weak_eff, 1.05);
}

TEST(Simulator, NaiveLoaderGrowsWithWeakScaling) {
  // Fig. 13 artifact: the reference loader reads the full global batch, so
  // its per-iteration cost grows with the rank count under weak scaling.
  const DlrmConfig cfg = mlperf_config();
  SimOptions o = cluster_opts(SimBackend::kCcl, ExchangeStrategy::kAlltoall, true);
  o.naive_loader = true;
  DlrmSimulator naive(cfg, o);
  o.naive_loader = false;
  DlrmSimulator fixed(cfg, o);
  const double naive8 = naive.iteration(8, cfg.local_batch_weak * 8).loader_ms;
  const double naive26 = naive.iteration(26, cfg.local_batch_weak * 26).loader_ms;
  EXPECT_NEAR(naive26 / naive8, 26.0 / 8.0, 0.1);
  const double fixed8 = fixed.iteration(8, cfg.local_batch_weak * 8).loader_ms;
  const double fixed26 = fixed.iteration(26, cfg.local_batch_weak * 26).loader_ms;
  EXPECT_NEAR(fixed26 / fixed8, 1.0, 0.35);
}

TEST(Simulator, EightSocketNodeBehavesLikeSmallCluster) {
  // Fig. 15: the UPI node scales like a small cluster; alltoall does not
  // improve 4 -> 8 sockets.
  const DlrmConfig cfg = mlperf_config();
  SimOptions o;
  o.socket = skx_8180();
  o.topo = Topology::twisted_hypercube8();
  o.backend = SimBackend::kCcl;
  o.overlap = true;
  o.skewed_indices = true;
  DlrmSimulator sim(cfg, o);
  const auto r4 = sim.iteration(4, cfg.global_batch_strong);
  const auto r8 = sim.iteration(8, cfg.global_batch_strong);
  EXPECT_LT(r8.total_ms(), r4.total_ms());  // still faster overall
  // Alltoall raw cost does not drop meaningfully 4 -> 8.
  EXPECT_GT(r8.a2a_raw_ms, r4.a2a_raw_ms * 0.55);
}

TEST(Simulator, SingleRankHasNoCommunication) {
  DlrmSimulator sim(small_config(), {});
  const auto it = sim.iteration(1, 2048);
  EXPECT_EQ(it.comm_ms(), 0.0);
  EXPECT_GT(it.compute_ms(), 0.0);
}

TEST(Simulator, RanksBeyondTablesRejected) {
  DlrmSimulator sim(small_config(), cluster_opts(SimBackend::kCcl, ExchangeStrategy::kAlltoall, true));
  EXPECT_THROW(sim.iteration(16, 8192), CheckError);  // Small has 8 tables
}

}  // namespace
}  // namespace dlrm
