#!/usr/bin/env bash
# serve_cli end-to-end smoke (ctest tier1).
#
# Two legs over a ~2-second Poisson load:
#   frozen    — one published snapshot; --check-serving additionally
#               requires every served score to equal a per-request offline
#               forward on the same snapshot, bit-for-bit;
#   republish — serve-while-training: snapshots republished and handed
#               over at micro-batch boundaries while the load runs.
# Both legs must answer every request, report nonzero throughput, and emit
# a parseable BENCH_JSON row.
set -euo pipefail

SERVE_CLI="$1"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dlrm_serve_smoke.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

run_leg() {
  local leg="$1"; shift
  "${SERVE_CLI}" --config=small --scale-rows=256 --scale-batch=16 \
      --qps=1000 --requests=2000 --fanout=4 --max-batch=32 \
      --max-wait-us=1000 --check-serving "$@" > "${WORK}/${leg}.log" || {
    echo "FAIL(${leg}): serve_cli exited nonzero" >&2
    cat "${WORK}/${leg}.log" >&2
    exit 1
  }
  grep -q '^CHECK OK' "${WORK}/${leg}.log" || {
    echo "FAIL(${leg}): serving check did not pass" >&2
    cat "${WORK}/${leg}.log" >&2
    exit 1
  }
  local json
  json="$(grep '^BENCH_JSON' "${WORK}/${leg}.log")"
  [[ -n "${json}" ]] || {
    echo "FAIL(${leg}): no BENCH_JSON row" >&2
    exit 1
  }
  # Parseable row with nonzero throughput and all requests answered.
  echo "${json#BENCH_JSON }" | python3 -c '
import json, sys
row = json.loads(sys.stdin.read())
assert row["requests"] == 2000, row
assert row["throughput_rps"] > 0, row
assert row["p50_ms"] > 0 and row["p50_ms"] <= row["p99_ms"], row
assert row["mean_batch"] >= 1, row
' || {
    echo "FAIL(${leg}): BENCH_JSON row unparseable or inconsistent" >&2
    echo "${json}" >&2
    exit 1
  }
  echo "leg ${leg}: $(grep '^served' "${WORK}/${leg}.log")"
}

run_leg frozen
run_leg republish --publish-every=250

echo "serving smoke OK"
