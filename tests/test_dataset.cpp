// Tests for the synthetic datasets and their determinism/addressability
// guarantees (any rank can regenerate any slice).
#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dlrm {
namespace {

TEST(RandomDataset, ShapesAndBounds) {
  RandomDataset data(16, 4, 100, 5, 1);
  MiniBatch mb;
  data.fill(0, 32, mb);
  EXPECT_EQ(mb.batch(), 32);
  EXPECT_EQ(mb.dense.size(), 32 * 16);
  ASSERT_EQ(mb.bags.size(), 4u);
  for (const auto& b : mb.bags) {
    EXPECT_EQ(b.batch(), 32);
    EXPECT_EQ(b.lookups(), 32 * 5);
    EXPECT_NO_THROW(b.validate(100));
  }
  for (std::int64_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(mb.labels[i] == 0.0f || mb.labels[i] == 1.0f);
  }
}

TEST(RandomDataset, DeterministicAndAddressable) {
  RandomDataset data(8, 3, 50, 4, 7);
  MiniBatch a, b;
  data.fill(100, 16, a);
  data.fill(100, 16, b);
  EXPECT_EQ(max_abs_diff(a.dense, b.dense), 0.0f);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::int64_t i = 0; i < a.bags[t].lookups(); ++i) {
      ASSERT_EQ(a.bags[t].indices[i], b.bags[t].indices[i]);
    }
  }
  // A shifted window reproduces overlapping samples exactly.
  MiniBatch c;
  data.fill(108, 16, c);
  for (std::int64_t i = 0; i < 8 * 8; ++i) {
    ASSERT_EQ(c.dense[i], a.dense[(8 + i / 8) * 8 + i % 8]);
  }
}

TEST(RandomDataset, TableBagsMatchFullGeneration) {
  // fill_table_bags must reproduce exactly the indices of fill() — the
  // contract that lets model-parallel ranks skip materializing everything.
  RandomDataset data(8, 5, 77, 3, 13);
  MiniBatch full;
  data.fill(40, 24, full);
  for (std::int64_t t = 0; t < 5; ++t) {
    BagBatch bags;
    data.fill_table_bags(t, 40, 24, bags);
    ASSERT_EQ(bags.lookups(), full.bags[static_cast<std::size_t>(t)].lookups());
    for (std::int64_t i = 0; i < bags.lookups(); ++i) {
      ASSERT_EQ(bags.indices[i], full.bags[static_cast<std::size_t>(t)].indices[i])
          << "table " << t << " lookup " << i;
    }
  }
}

CtrParams small_ctr() {
  CtrParams p;
  p.dense_dim = 8;
  p.tables = 4;
  p.rows = {1000, 500, 2000, 100};
  p.pooling = 2;
  p.seed = 11;
  return p;
}

TEST(SyntheticCtr, ShapesAndDeterminism) {
  SyntheticCtrDataset data(small_ctr());
  EXPECT_EQ(data.tables(), 4);
  EXPECT_EQ(data.rows(2), 2000);
  MiniBatch a, b;
  data.fill(5, 20, a);
  data.fill(5, 20, b);
  EXPECT_EQ(max_abs_diff(a.dense, b.dense), 0.0f);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_NO_THROW(a.bags[t].validate(data.rows(static_cast<std::int64_t>(t))));
  }
}

TEST(SyntheticCtr, TableBagsMatchFullGeneration) {
  SyntheticCtrDataset data(small_ctr());
  MiniBatch full;
  data.fill(0, 32, full);
  for (std::int64_t t = 0; t < 4; ++t) {
    BagBatch bags;
    data.fill_table_bags(t, 0, 32, bags);
    for (std::int64_t i = 0; i < bags.lookups(); ++i) {
      ASSERT_EQ(bags.indices[i], full.bags[static_cast<std::size_t>(t)].indices[i]);
    }
  }
}

TEST(SyntheticCtr, LabelsCorrelateWithPlantedSignal) {
  // The teacher must produce a clearly learnable signal: its own AUC
  // (Bayes bound) should be well above chance.
  SyntheticCtrDataset data(small_ctr());
  const double auc = data.teacher_auc(20000);
  EXPECT_GT(auc, 0.70);
  EXPECT_LT(auc, 0.98);
}

TEST(SyntheticCtr, IndicesAreSkewed) {
  // Zipf indices: the top 1% of rows should take a disproportionate share.
  CtrParams p = small_ctr();
  p.index_skew = 1.05;
  SyntheticCtrDataset data(p);
  MiniBatch mb;
  data.fill(0, 4096, mb);
  std::int64_t head = 0, total = 0;
  for (std::int64_t i = 0; i < mb.bags[0].lookups(); ++i) {
    head += mb.bags[0].indices[i] < 10;  // top 1% of 1000 rows
    ++total;
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.15);
}

TEST(SyntheticCtr, CtrIsRealistic) {
  // With the default negative bias the positive rate sits well below 50%.
  SyntheticCtrDataset data(small_ctr());
  MiniBatch mb;
  data.fill(0, 8192, mb);
  double pos = 0;
  for (std::int64_t i = 0; i < mb.batch(); ++i) pos += mb.labels[i];
  const double rate = pos / static_cast<double>(mb.batch());
  EXPECT_GT(rate, 0.05);
  EXPECT_LT(rate, 0.45);
}

TEST(Dataset, BytesPerSample) {
  RandomDataset data(13, 26, 100, 1, 3);
  // 13 dense f32 + label + 26 * 1 int64 indices.
  EXPECT_EQ(data.bytes_per_sample(), 13 * 4 + 4 + 26 * 8);
}

}  // namespace
}  // namespace dlrm
