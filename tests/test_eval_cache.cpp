// Held-out eval-range cache (DistributedTrainer): repeat evaluate() calls
// over the same range must skip the loader/prefetch machinery entirely
// after the first pass — bit-identical AUC, materialize-pass counter stuck
// at 1, dedicated eval pipeline idle — and the cache must invalidate when
// the requested range changes or caching is disabled.
#include "core/dist_trainer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/model.hpp"

namespace dlrm {
namespace {

DlrmConfig tiny_config() {
  DlrmConfig c;
  c.name = "tiny";
  c.minibatch = 64;
  c.global_batch_strong = 64;
  c.local_batch_weak = 16;
  c.pooling = 2;
  c.dim = 16;
  c.table_rows = {300, 200, 250, 150, 220, 180};
  c.bottom_mlp = {12, 32, 16};
  c.top_mlp = {32, 16, 1};
  c.validate();
  return c;
}

TEST(EvalCache, RepeatPassesAreBitIdenticalAndSkipRematerialization) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::int64_t GN = 64;
  const std::int64_t eval_first = 100 * GN, eval_n = 4 * GN;
  const int passes = 3;

  // Reference: caching off — every pass streams through the eval pipeline.
  std::vector<double> ref(passes, 0.0);
  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.global_batch = GN;
    opts.cache_eval_range = false;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    trainer.train(2);
    for (int p = 0; p < passes; ++p) {
      const double auc = trainer.evaluate(eval_first, eval_n);
      if (comm.rank() == 0) ref[static_cast<std::size_t>(p)] = auc;
    }
    EXPECT_EQ(trainer.eval_materialize_passes(), passes);
    EXPECT_EQ(trainer.eval_cache_batches(), 0);
  });

  // Cached: one materialization, identical AUC on every pass, and the
  // dedicated eval pipeline loads nothing after the first pass.
  run_ranks(2, 2, [&](ThreadComm& comm) {
    DistributedTrainerOptions opts;
    opts.global_batch = GN;
    opts.cache_eval_range = true;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    trainer.train(2);
    std::vector<double> got;
    for (int p = 0; p < passes; ++p) {
      got.push_back(trainer.evaluate(eval_first, eval_n));
    }
    EXPECT_EQ(trainer.eval_materialize_passes(), 1);
    EXPECT_EQ(trainer.eval_cache_batches(), eval_n / GN);
    ASSERT_NE(trainer.eval_prefetch(), nullptr);
    const std::int64_t loaded_after_first = trainer.eval_prefetch()->batches_loaded();
    trainer.evaluate(eval_first, eval_n);
    EXPECT_EQ(trainer.eval_prefetch()->batches_loaded(), loaded_after_first);
    if (comm.rank() == 0) {
      for (int p = 0; p < passes; ++p) {
        EXPECT_EQ(got[static_cast<std::size_t>(p)],
                  ref[static_cast<std::size_t>(p)])
            << "pass " << p;
      }
    }
  });
}

TEST(EvalCache, RangeChangeInvalidates) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::int64_t GN = 64;

  run_ranks(2, 2, [&](ThreadComm& comm) {
    (void)comm;
    DistributedTrainerOptions opts;
    opts.global_batch = GN;
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    trainer.train(1);

    const std::int64_t a = 100 * GN, b = 200 * GN, n = 2 * GN;
    const double auc_a1 = trainer.evaluate(a, n);
    EXPECT_EQ(trainer.eval_materialize_passes(), 1);
    trainer.evaluate(b, n);  // different range: re-materializes
    EXPECT_EQ(trainer.eval_materialize_passes(), 2);
    trainer.evaluate(b, n);  // cached again
    EXPECT_EQ(trainer.eval_materialize_passes(), 2);
    const double auc_a2 = trainer.evaluate(a, n);  // a was evicted
    EXPECT_EQ(trainer.eval_materialize_passes(), 3);
    EXPECT_EQ(auc_a1, auc_a2);
  });
}

TEST(EvalCache, OverlongRangeStreamsUncached) {
  const DlrmConfig c = tiny_config();
  RandomDataset data(c.bottom_mlp.front(), c.table_rows, c.pooling, 11);
  const std::int64_t GN = 64;

  run_ranks(2, 2, [&](ThreadComm& comm) {
    (void)comm;
    DistributedTrainerOptions opts;
    opts.global_batch = GN;
    opts.eval_cache_max_batches = 2;  // range below needs 3
    auto backend = QueueBackend::ccl_like(2);
    DistributedTrainer trainer(c, data, comm, backend.get(), opts);
    trainer.train(1);
    trainer.evaluate(100 * GN, 3 * GN);
    trainer.evaluate(100 * GN, 3 * GN);
    EXPECT_EQ(trainer.eval_materialize_passes(), 2);
    EXPECT_EQ(trainer.eval_cache_batches(), 0);
  });
}

}  // namespace
}  // namespace dlrm
