// Tests for the first-class learning-rate schedule objects.
#include "optim/lr_schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dlrm {
namespace {

TEST(LrSchedule, EmptyIsFalsy) {
  LrSchedule s;
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.name(), "none");
}

TEST(LrSchedule, ConstantReturnsTheSameLrEverywhere) {
  const LrSchedule s = LrSchedule::constant(0.25f);
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.name(), "constant");
  for (double f : {0.0, 0.3, 0.99, 1.0}) EXPECT_FLOAT_EQ(s(f), 0.25f);
}

TEST(LrSchedule, StepDecayHalvesAtIntervals) {
  // frac is the END of the interval being trained: the first quarter
  // (frac ≤ 0.25) must still run at the base lr.
  const LrSchedule s = LrSchedule::step_decay(0.8f, 0.5f, 0.25);
  EXPECT_FLOAT_EQ(s(0.0), 0.8f);
  EXPECT_FLOAT_EQ(s(0.2), 0.8f);
  EXPECT_FLOAT_EQ(s(0.25), 0.8f);   // exact end of the first interval
  EXPECT_FLOAT_EQ(s(0.26), 0.4f);   // one step
  EXPECT_FLOAT_EQ(s(0.5), 0.4f);
  EXPECT_FLOAT_EQ(s(0.55), 0.2f);   // two steps
  EXPECT_FLOAT_EQ(s(0.80), 0.1f);   // three steps
  EXPECT_FLOAT_EQ(s(1.0), 0.1f);    // four intervals → three boundaries
}

TEST(LrSchedule, WarmupLinearRampsThenDecays) {
  const LrSchedule s = LrSchedule::warmup_linear(1.0f, 0.2, 0.0f);
  EXPECT_FLOAT_EQ(s(0.0), 0.0f);
  EXPECT_FLOAT_EQ(s(0.1), 0.5f);   // halfway up the ramp
  EXPECT_FLOAT_EQ(s(0.2), 1.0f);   // peak
  EXPECT_FLOAT_EQ(s(0.6), 0.5f);   // halfway down
  EXPECT_FLOAT_EQ(s(1.0), 0.0f);
}

TEST(LrSchedule, PolyDecayMatchesTheFig16Shape) {
  // The Fig. 16 bench schedule: 0.20 * (1 - 0.97 frac)^1.5 + 0.0005.
  const LrSchedule s = LrSchedule::poly_decay(0.20f, 0.0005f, 1.5, 0.97);
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const float expected =
        static_cast<float>(0.20 * std::pow(1.0 - 0.97 * f, 1.5) + 0.0005);
    EXPECT_FLOAT_EQ(s(f), expected) << "frac " << f;
  }
  EXPECT_EQ(s.name(), "poly");
}

TEST(LrSchedule, WrapsLambdasImplicitly) {
  const LrSchedule s = [](double frac) {
    return static_cast<float>(0.1 * (1.0 - frac));
  };
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.name(), "custom");
  EXPECT_FLOAT_EQ(s(0.5), 0.05f);
}

TEST(LrSchedule, ParseRecognizesAllFamilies) {
  LrSchedule s;
  ASSERT_TRUE(parse_lr_schedule("", 0.1f, &s));
  EXPECT_FALSE(static_cast<bool>(s));
  ASSERT_TRUE(parse_lr_schedule("none", 0.1f, &s));
  EXPECT_FALSE(static_cast<bool>(s));

  ASSERT_TRUE(parse_lr_schedule("constant", 0.1f, &s));
  EXPECT_FLOAT_EQ(s(0.7), 0.1f);

  ASSERT_TRUE(parse_lr_schedule("step", 0.1f, &s));
  EXPECT_FLOAT_EQ(s(0.3), 0.05f);  // default: halve every quarter
  ASSERT_TRUE(parse_lr_schedule("step:0.1:0.5", 0.1f, &s));
  EXPECT_FLOAT_EQ(s(0.6), 0.01f);

  ASSERT_TRUE(parse_lr_schedule("warmup:0.5:0", 0.2f, &s));
  EXPECT_FLOAT_EQ(s(0.25), 0.1f);

  ASSERT_TRUE(parse_lr_schedule("poly:1:1", 0.4f, &s));
  EXPECT_FLOAT_EQ(s(0.5), 0.2f + 0.4f / 400.0f);

  EXPECT_FALSE(parse_lr_schedule("bogus", 0.1f, &s));
}

}  // namespace
}  // namespace dlrm
