// EmbeddingBag lookup, backward and sparse-update kernels
// (paper Sect. III.A, Algorithms 1–4).
//
// The update pass is the kernel that dominated the unoptimized DLRM (99% of
// runtime) and the one with interesting parallelization trade-offs:
//
//   * kReference  — the naive "functionality-first" framework kernel: serial,
//                   materializes a dense gradient the size of the full table
//                   and sweeps the whole table to apply it. This is the 110x
//                   denominator of the paper.
//   * kAtomicXchg — parallel over lookups; float atomic-add via CAS loop.
//   * kRtm        — parallel over lookups; row-granular transactional section
//                   (striped-lock software emulation of Intel RTM: same
//                   cache-line-ownership behaviour, SIMD body allowed).
//   * kRaceFree   — Algorithm 4: rows statically partitioned across threads,
//                   every thread scans all indices and updates only its own
//                   rows. Race-free, deterministic, locality friendly; the
//                   winner under heavy index reuse (MLPerf/Criteo).
//
// backward() materializes per-lookup gradients dL[NS][E] (Algorithm 2) and
// apply_update() consumes them (Algorithm 3/4). fused_backward_update() is
// the fusion the paper measured at up to 1.6x for embedding updates.
//
// Precision modes (paper Sect. VII): fp32; BF16 Split-SGD (hi/lo 16-bit
// halves, implicit fp32 master weights); Split-SGD with only 8 low bits
// (shown insufficient in the paper); fp16 with stochastic rounding (ref
// [13]; fails to reach SOTA in the paper).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {

/// Multi-hot lookup batch for one table: bag n reads rows
/// indices[offsets[n] .. offsets[n+1]).
struct BagBatch {
  Tensor<std::int64_t> indices;  // [NS] row ids
  Tensor<std::int64_t> offsets;  // [N+1], offsets[0] == 0

  std::int64_t batch() const { return offsets.size() - 1; }
  std::int64_t lookups() const { return indices.size(); }

  /// Validates internal consistency against a table with `rows` rows.
  void validate(std::int64_t rows) const;
};

enum class UpdateStrategy { kReference, kAtomicXchg, kRtm, kRaceFree };

enum class EmbedPrecision {
  kFp32,
  kBf16Split,      // Split-SGD-BF16: hi is the bf16 model weight, lo hidden LSBs
  kBf16Split8,     // only 8 extra LSBs retained (paper: not enough)
  kFp16Stochastic, // fp16 weights, stochastic-rounded updates (ref [13])
  kFp24            // FP24 (1-8-15) weights, RNE-rounded updates (Fig. 16)
};

const char* to_string(UpdateStrategy s);
const char* to_string(EmbedPrecision p);

/// How rows are admitted into the hot-row cache tier.
enum class EmbCachePolicy {
  kOff,      // no cache
  kHist,     // one-shot admission from LookupStats row histograms
  kCounter   // runtime per-row counters with periodic decay + re-admission
};

const char* to_string(EmbCachePolicy p);

/// Hot-row working-tier configuration. Embedding lookups are heavily
/// Zipf-skewed; the cache keeps the top-K rows as fp32 *master* state in one
/// contiguous arena so hot traffic stays in a few MB instead of streaming the
/// whole table.
struct EmbCacheOptions {
  std::int64_t capacity = 0;  // max resident rows per table; 0 disables
  EmbCachePolicy policy = EmbCachePolicy::kOff;
  std::int64_t refresh_every = 64;  // kCounter: forwards between refreshes
  int decay_shift = 1;              // kCounter: counters >>= shift per refresh

  bool enabled() const {
    return policy != EmbCachePolicy::kOff && capacity > 0;
  }
};

struct EmbCacheStats {
  std::int64_t hits = 0;        // forward lookups served from the arena
  std::int64_t misses = 0;      // forward lookups served from cold storage
  std::int64_t evictions = 0;   // rows written back and dropped
  std::int64_t admissions = 0;  // rows loaded into the arena
  std::int64_t refreshes = 0;   // kCounter re-admission passes
  std::int64_t capacity = 0;    // arena rows
  std::int64_t resident = 0;    // currently cached rows

  double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// One embedding table W[M][E] with pluggable update strategy and storage
/// precision. A table can also be a row-range *shard view* of a larger
/// logical table (model-parallel row splitting): it stores only rows
/// [row_begin, row_begin + rows) of a [global_rows][E] table, is addressed
/// with shard-local row ids, and init() draws exactly the values the
/// corresponding rows of the full table would receive.
class EmbeddingTable {
 public:
  EmbeddingTable(std::int64_t rows, std::int64_t dim,
                 EmbedPrecision precision = EmbedPrecision::kFp32);

  /// Row-range shard view: rows [row_begin, row_begin + rows) of a logical
  /// [global_rows][dim] table.
  EmbeddingTable(std::int64_t rows, std::int64_t dim, EmbedPrecision precision,
                 std::int64_t row_begin, std::int64_t global_rows);

  std::int64_t rows() const { return rows_; }
  std::int64_t dim() const { return dim_; }
  EmbedPrecision precision() const { return precision_; }
  /// First global row of this shard (0 for a full table).
  std::int64_t row_begin() const { return row_begin_; }
  /// Rows of the logical table this shard belongs to (== rows() when full).
  std::int64_t global_rows() const { return global_rows_; }

  /// Initializes rows U(-scale, scale). For a shard view, `rng` is the full
  /// table's generator: the leading global rows are drawn and discarded so
  /// the stored rows match the full table bit-for-bit.
  void init(Rng& rng, float scale);

  /// Algorithm 1: out[n][:] = sum over bag n of W[idx][:]. out is [N][E].
  void forward(const BagBatch& bags, float* out) const;

  /// Algorithm 2: expands dY[N][E] into per-lookup gradients dL[NS][E].
  void backward(const float* dy, const BagBatch& bags,
                Tensor<float>& dlookup) const;

  /// Algorithm 3/4: W[I[s]] -= lr * dL[s] under the chosen strategy.
  void apply_update(const Tensor<float>& dlookup, const BagBatch& bags,
                    float lr, UpdateStrategy strategy);

  /// Fused Algorithm 2+3: W[I[s]] -= lr * dY[bag(s)] without materializing
  /// dL. Up to 1.6x faster than backward()+apply_update().
  void fused_backward_update(const float* dy, const BagBatch& bags, float lr,
                             UpdateStrategy strategy);

  /// Bytes of the canonical checkpoint encoding of one row: the *complete*
  /// storage state (model weight + hidden Split-SGD low halves), so an
  /// export/import round trip is bit-exact for every precision. The
  /// encoding depends only on (precision, dim) — never on how the logical
  /// table is sharded — so a checkpoint row written by one shard geometry
  /// can be imported by any other.
  std::int64_t checkpoint_row_bytes() const {
    return checkpoint_row_bytes(precision_, dim_);
  }
  /// Same, without a table instance (migration planning on ranks that own
  /// no shard of a table still needs the wire size).
  static std::int64_t checkpoint_row_bytes(EmbedPrecision precision,
                                           std::int64_t dim);

  /// Serializes rows [first, first + n) (shard-local ids) into `out`
  /// (n * checkpoint_row_bytes() bytes, rows consecutive).
  void export_rows(std::int64_t first, std::int64_t n,
                   unsigned char* out) const;

  /// Restores rows [first, first + n) from an export_rows payload produced
  /// by a table of the same precision and dim (any shard geometry).
  void import_rows(std::int64_t first, std::int64_t n,
                   const unsigned char* in);

  /// Reads one row into an fp32 buffer (decoding low-precision storage).
  void read_row(std::int64_t row, float* out) const;

  /// Writes one row from fp32 (encoding into the storage precision).
  void write_row(std::int64_t row, const float* values);

  /// Bytes of persistent storage (model + optimizer state). Split-SGD is the
  /// point of comparison: bf16 model + 16-bit optimizer state == fp32 bytes,
  /// while fp16-with-master-weights would be 3x the fp16 model size.
  std::int64_t storage_bytes() const;

  /// Bytes of *model* storage touched by forward/backward (the 2x bandwidth
  /// saving of Split-SGD shows up here).
  std::int64_t model_bytes() const;

  // ---- Hot-row cache tier -------------------------------------------------
  //
  // A software-managed working tier: resident rows live as fp32 *master*
  // state (the exact decoded storage state, low halves included) in one
  // contiguous arena. Forward/update dispatch per lookup between the arena
  // and cold storage; eviction re-encodes through the same bit-exact codec
  // as export_rows, so results are bit-identical with the cache on or off.
  // The cache is derived state: checkpoints (export_rows) read through it
  // and never record it.

  /// (Re)configures the cache. Any resident rows are written back first.
  /// `capacity` is clamped to rows(). kHist expects a follow-up call to
  /// admit_top_rows_from_histogram(); kCounter self-manages admission.
  void configure_cache(const EmbCacheOptions& opts);

  bool cache_enabled() const { return !cache_slot_.empty(); }
  const EmbCacheOptions& cache_options() const { return cache_opts_; }

  /// Replaces the resident set with `rows` (shard-local ids, unique,
  /// truncated to capacity). Rows already resident stay in place; the rest
  /// are written back / loaded as needed.
  void admit_rows(const std::int64_t* rows, std::int64_t n);

  /// Picks the top-capacity rows of this shard by histogram density and
  /// admits them. `histogram` is a LookupStats row histogram over the
  /// *logical global* table (any bucket count); bucket mass is apportioned
  /// pro rata to this shard's row range.
  void admit_top_rows_from_histogram(const std::vector<double>& histogram);

  /// Writes every resident row back to cold storage (rows stay resident).
  void flush_cache();

  EmbCacheStats cache_stats() const;
  void reset_cache_stats();

  /// Arena + index bytes currently allocated for the cache tier.
  std::int64_t cache_bytes() const;

 private:
  template <typename UpdateRow>
  void update_dispatch(const BagBatch& bags, UpdateStrategy strategy,
                       const UpdateRow& touch_row);

  void update_row_fp32(std::int64_t row, const float* grad, float lr);
  void update_row_lowp(std::int64_t row, const float* grad, float lr,
                       std::uint64_t salt);

  /// Arena pointer for `row`, or nullptr when not resident (or cache off).
  float* cached_row(std::int64_t row) {
    if (cache_slot_.empty()) return nullptr;
    const std::int32_t s = cache_slot_[static_cast<std::size_t>(row)];
    return s < 0 ? nullptr : cache_.data() + static_cast<std::int64_t>(s) * dim_;
  }
  const float* cached_row(std::int64_t row) const {
    return const_cast<EmbeddingTable*>(this)->cached_row(row);
  }

  void load_master_row(std::int64_t row, float* out) const;
  void store_master_row(std::int64_t row, const float* master);
  void encode_row_bytes(const float* master, unsigned char* out) const;
  void evict_slot(std::int64_t slot);
  void update_master_row(float* master, std::int64_t row, const float* grad,
                         float lr, std::uint64_t salt);
  void forward_cached(const BagBatch& bags, float* out) const;
  /// kCounter bookkeeping: serial per-forward row counting + periodic
  /// decay/re-admission. Logically const (derived state only).
  void note_forward_counters(const BagBatch& bags) const;

  std::int64_t rows_, dim_;
  EmbedPrecision precision_;
  std::int64_t row_begin_ = 0, global_rows_ = 0;

  Tensor<float> w_;                // kFp32
  Tensor<std::uint16_t> hi_;       // bf16 bits / fp16 bits
  Tensor<std::uint16_t> lo_;       // Split-SGD low halves

  // Cache tier (all derived state; mutable so const forward() can maintain
  // hit counters and kCounter admission without changing its signature).
  EmbCacheOptions cache_opts_;
  mutable std::vector<float> cache_;            // [capacity][dim] fp32 masters
  mutable std::vector<std::int32_t> cache_slot_;  // [rows] row -> slot or -1
  mutable std::vector<std::int64_t> slot_row_;    // [capacity] slot -> row or -1
  mutable std::vector<std::uint32_t> freq_;       // kCounter per-row counters
  mutable std::int64_t forwards_since_refresh_ = 0;
  mutable std::int64_t cache_resident_ = 0;
  mutable std::atomic<std::int64_t> cache_hits_{0};
  mutable std::atomic<std::int64_t> cache_misses_{0};
  mutable std::int64_t cache_evictions_ = 0;
  mutable std::int64_t cache_admissions_ = 0;
  mutable std::int64_t cache_refreshes_ = 0;
};

/// Float atomic add via 32-bit CAS loop (strategy kAtomicXchg).
inline void atomic_add_float(float* addr, float value) {
  auto* word = reinterpret_cast<std::uint32_t*>(addr);
  std::uint32_t expected = __atomic_load_n(word, __ATOMIC_RELAXED);
  for (;;) {
    const float updated = std::bit_cast<float>(expected) + value;
    const std::uint32_t desired = std::bit_cast<std::uint32_t>(updated);
    if (__atomic_compare_exchange_n(word, &expected, desired, /*weak=*/true,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
      return;
    }
  }
}

}  // namespace dlrm
