// EmbeddingBag lookup, backward and sparse-update kernels
// (paper Sect. III.A, Algorithms 1–4).
//
// The update pass is the kernel that dominated the unoptimized DLRM (99% of
// runtime) and the one with interesting parallelization trade-offs:
//
//   * kReference  — the naive "functionality-first" framework kernel: serial,
//                   materializes a dense gradient the size of the full table
//                   and sweeps the whole table to apply it. This is the 110x
//                   denominator of the paper.
//   * kAtomicXchg — parallel over lookups; float atomic-add via CAS loop.
//   * kRtm        — parallel over lookups; row-granular transactional section
//                   (striped-lock software emulation of Intel RTM: same
//                   cache-line-ownership behaviour, SIMD body allowed).
//   * kRaceFree   — Algorithm 4: rows statically partitioned across threads,
//                   every thread scans all indices and updates only its own
//                   rows. Race-free, deterministic, locality friendly; the
//                   winner under heavy index reuse (MLPerf/Criteo).
//
// backward() materializes per-lookup gradients dL[NS][E] (Algorithm 2) and
// apply_update() consumes them (Algorithm 3/4). fused_backward_update() is
// the fusion the paper measured at up to 1.6x for embedding updates.
//
// Precision modes (paper Sect. VII): fp32; BF16 Split-SGD (hi/lo 16-bit
// halves, implicit fp32 master weights); Split-SGD with only 8 low bits
// (shown insufficient in the paper); fp16 with stochastic rounding (ref
// [13]; fails to reach SOTA in the paper).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {

/// Multi-hot lookup batch for one table: bag n reads rows
/// indices[offsets[n] .. offsets[n+1]).
struct BagBatch {
  Tensor<std::int64_t> indices;  // [NS] row ids
  Tensor<std::int64_t> offsets;  // [N+1], offsets[0] == 0

  std::int64_t batch() const { return offsets.size() - 1; }
  std::int64_t lookups() const { return indices.size(); }

  /// Validates internal consistency against a table with `rows` rows.
  void validate(std::int64_t rows) const;
};

enum class UpdateStrategy { kReference, kAtomicXchg, kRtm, kRaceFree };

enum class EmbedPrecision {
  kFp32,
  kBf16Split,      // Split-SGD-BF16: hi is the bf16 model weight, lo hidden LSBs
  kBf16Split8,     // only 8 extra LSBs retained (paper: not enough)
  kFp16Stochastic, // fp16 weights, stochastic-rounded updates (ref [13])
  kFp24            // FP24 (1-8-15) weights, RNE-rounded updates (Fig. 16)
};

const char* to_string(UpdateStrategy s);
const char* to_string(EmbedPrecision p);

/// One embedding table W[M][E] with pluggable update strategy and storage
/// precision. A table can also be a row-range *shard view* of a larger
/// logical table (model-parallel row splitting): it stores only rows
/// [row_begin, row_begin + rows) of a [global_rows][E] table, is addressed
/// with shard-local row ids, and init() draws exactly the values the
/// corresponding rows of the full table would receive.
class EmbeddingTable {
 public:
  EmbeddingTable(std::int64_t rows, std::int64_t dim,
                 EmbedPrecision precision = EmbedPrecision::kFp32);

  /// Row-range shard view: rows [row_begin, row_begin + rows) of a logical
  /// [global_rows][dim] table.
  EmbeddingTable(std::int64_t rows, std::int64_t dim, EmbedPrecision precision,
                 std::int64_t row_begin, std::int64_t global_rows);

  std::int64_t rows() const { return rows_; }
  std::int64_t dim() const { return dim_; }
  EmbedPrecision precision() const { return precision_; }
  /// First global row of this shard (0 for a full table).
  std::int64_t row_begin() const { return row_begin_; }
  /// Rows of the logical table this shard belongs to (== rows() when full).
  std::int64_t global_rows() const { return global_rows_; }

  /// Initializes rows U(-scale, scale). For a shard view, `rng` is the full
  /// table's generator: the leading global rows are drawn and discarded so
  /// the stored rows match the full table bit-for-bit.
  void init(Rng& rng, float scale);

  /// Algorithm 1: out[n][:] = sum over bag n of W[idx][:]. out is [N][E].
  void forward(const BagBatch& bags, float* out) const;

  /// Algorithm 2: expands dY[N][E] into per-lookup gradients dL[NS][E].
  void backward(const float* dy, const BagBatch& bags,
                Tensor<float>& dlookup) const;

  /// Algorithm 3/4: W[I[s]] -= lr * dL[s] under the chosen strategy.
  void apply_update(const Tensor<float>& dlookup, const BagBatch& bags,
                    float lr, UpdateStrategy strategy);

  /// Fused Algorithm 2+3: W[I[s]] -= lr * dY[bag(s)] without materializing
  /// dL. Up to 1.6x faster than backward()+apply_update().
  void fused_backward_update(const float* dy, const BagBatch& bags, float lr,
                             UpdateStrategy strategy);

  /// Bytes of the canonical checkpoint encoding of one row: the *complete*
  /// storage state (model weight + hidden Split-SGD low halves), so an
  /// export/import round trip is bit-exact for every precision. The
  /// encoding depends only on (precision, dim) — never on how the logical
  /// table is sharded — so a checkpoint row written by one shard geometry
  /// can be imported by any other.
  std::int64_t checkpoint_row_bytes() const;

  /// Serializes rows [first, first + n) (shard-local ids) into `out`
  /// (n * checkpoint_row_bytes() bytes, rows consecutive).
  void export_rows(std::int64_t first, std::int64_t n,
                   unsigned char* out) const;

  /// Restores rows [first, first + n) from an export_rows payload produced
  /// by a table of the same precision and dim (any shard geometry).
  void import_rows(std::int64_t first, std::int64_t n,
                   const unsigned char* in);

  /// Reads one row into an fp32 buffer (decoding low-precision storage).
  void read_row(std::int64_t row, float* out) const;

  /// Writes one row from fp32 (encoding into the storage precision).
  void write_row(std::int64_t row, const float* values);

  /// Bytes of persistent storage (model + optimizer state). Split-SGD is the
  /// point of comparison: bf16 model + 16-bit optimizer state == fp32 bytes,
  /// while fp16-with-master-weights would be 3x the fp16 model size.
  std::int64_t storage_bytes() const;

  /// Bytes of *model* storage touched by forward/backward (the 2x bandwidth
  /// saving of Split-SGD shows up here).
  std::int64_t model_bytes() const;

 private:
  template <typename UpdateRow>
  void update_dispatch(const BagBatch& bags, UpdateStrategy strategy,
                       const UpdateRow& touch_row);

  void update_row_fp32(std::int64_t row, const float* grad, float lr);
  void update_row_lowp(std::int64_t row, const float* grad, float lr,
                       std::uint64_t salt);

  std::int64_t rows_, dim_;
  EmbedPrecision precision_;
  std::int64_t row_begin_ = 0, global_rows_ = 0;

  Tensor<float> w_;                // kFp32
  Tensor<std::uint16_t> hi_;       // bf16 bits / fp16 bits
  Tensor<std::uint16_t> lo_;       // Split-SGD low halves
};

/// Float atomic add via 32-bit CAS loop (strategy kAtomicXchg).
inline void atomic_add_float(float* addr, float value) {
  auto* word = reinterpret_cast<std::uint32_t*>(addr);
  std::uint32_t expected = __atomic_load_n(word, __ATOMIC_RELAXED);
  for (;;) {
    const float updated = std::bit_cast<float>(expected) + value;
    const std::uint32_t desired = std::bit_cast<std::uint32_t>(updated);
    if (__atomic_compare_exchange_n(word, &expected, desired, /*weak=*/true,
                                    __ATOMIC_RELAXED, __ATOMIC_RELAXED)) {
      return;
    }
  }
}

}  // namespace dlrm
