#include "kernels/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "common/threadpool.hpp"
#include "kernels/gemm.hpp"

namespace dlrm {

std::int64_t pick_block(std::int64_t dim, std::int64_t target) {
  DLRM_CHECK(dim > 0, "dimension must be positive");
  for (std::int64_t b = std::min(dim, target); b > 1; --b) {
    if (dim % b == 0) return b;
  }
  return 1;
}

namespace {

inline float sigmoidf(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void apply_activation(Activation act, float* p, std::int64_t n) {
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      for (std::int64_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
      return;
    case Activation::kSigmoid:
      for (std::int64_t i = 0; i < n; ++i) p[i] = sigmoidf(p[i]);
      return;
  }
}

// dz = dy * act'(y), where y is the post-activation value.
void apply_activation_grad_buf(Activation act, const float* y, float* dy,
                               std::int64_t n) {
  switch (act) {
    case Activation::kNone:
      return;
    case Activation::kRelu:
      for (std::int64_t i = 0; i < n; ++i) dy[i] = y[i] > 0.0f ? dy[i] : 0.0f;
      return;
    case Activation::kSigmoid:
      for (std::int64_t i = 0; i < n; ++i) dy[i] *= y[i] * (1.0f - y[i]);
      return;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FullyConnected
// ---------------------------------------------------------------------------

FullyConnected::FullyConnected(std::int64_t c, std::int64_t k, Activation act,
                               BlockTargets targets, Precision precision)
    : c_(c),
      k_(k),
      act_(act),
      prec_(precision),
      bc_(pick_block(c, targets.bc)),
      bk_(pick_block(k, targets.bk)),
      w_(k, c, bk_, bc_),
      dw_(k, c, bk_, bc_),
      bias_({k}),
      dbias_({k}),
      wt_(c, k, bc_, bk_) {
  w_.raw().zero();
  dw_.raw().zero();
  bias_.zero();
  dbias_.zero();
  if (prec_ == Precision::kBf16) {
    wv_ = VnniWeights(k, c, bk_, bc_);
    wtv_ = VnniWeights(c, k, bc_, bk_);
  }
}

void FullyConnected::init(Rng& rng) {
  // He initialization on the flat view, then pack.
  Tensor<float> flat({k_, c_});
  fill_gaussian(flat, rng, std::sqrt(2.0f / static_cast<float>(c_)));
  w_.pack_from(flat.data());
  bias_.zero();
  wt_valid_ = false;
  wtv_valid_ = false;
}

void FullyConnected::forward(const BlockedActivations& x,
                             BlockedActivations& y) const {
  DLRM_CHECK(x.c() == c_ && y.c() == k_ && x.n() == y.n(),
             "FullyConnected::forward shape mismatch");
  DLRM_CHECK(x.bc() == bc_ && y.bc() == bk_ && x.bn() == y.bn(),
             "FullyConnected::forward blocking mismatch");
  wt_valid_ = false;  // weights may have been updated since last backward

  const std::int64_t nb = x.nb(), kb = w_.kb(), cb = w_.cb();
  const std::int64_t bn = x.bn();
  const float* bias = bias_.data();
  const Activation act = act_;

  parallel_for(0, kb * nb, [&, bn](std::int64_t lo, std::int64_t hi) {
    std::vector<const float*> aptrs(static_cast<std::size_t>(cb));
    std::vector<const float*> bptrs(static_cast<std::size_t>(cb));
    for (std::int64_t idx = lo; idx < hi; ++idx) {
      const std::int64_t ikb = idx / nb;
      const std::int64_t inb = idx % nb;
      for (std::int64_t icb = 0; icb < cb; ++icb) {
        aptrs[static_cast<std::size_t>(icb)] = x.block(icb, inb);
        bptrs[static_cast<std::size_t>(icb)] = w_.block(ikb, icb);
      }
      float* out = const_cast<float*>(y.block(ikb, inb));
      batchreduce_gemm(aptrs.data(), bptrs.data(), out,
                       static_cast<int>(cb), static_cast<int>(bn),
                       static_cast<int>(bc_), static_cast<int>(bk_),
                       /*accumulate=*/false);
      // Bias + activation while the tile is hot in cache.
      const float* brow = bias + ikb * bk_;
      for (std::int64_t in = 0; in < bn; ++in) {
        float* row = out + in * bk_;
        for (std::int64_t j = 0; j < bk_; ++j) row[j] += brow[j];
      }
      apply_activation(act, out, bn * bk_);
    }
  });
}

void FullyConnected::apply_activation_grad(const BlockedActivations& y,
                                           BlockedActivations& dy) const {
  if (act_ == Activation::kNone) return;
  const std::int64_t total = y.raw().size();
  const float* yp = y.raw().data();
  float* dp = dy.raw().data();
  parallel_for(0, total, [&](std::int64_t lo, std::int64_t hi) {
    apply_activation_grad_buf(act_, yp + lo, dp + lo, hi - lo);
  });
}

void FullyConnected::backward_data(const BlockedActivations& dy,
                                   BlockedActivations& dx) const {
  // Pack W^T lazily: WT[Cb][Kb][bk][bc] from W[Kb][Cb][bc][bk].
  if (!wt_valid_) {
    const std::int64_t kb = w_.kb(), cb = w_.cb();
    parallel_for(0, cb * kb, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t idx = lo; idx < hi; ++idx) {
        const std::int64_t icb = idx / kb;
        const std::int64_t ikb = idx % kb;
        const float* src = w_.block(ikb, icb);  // [bc][bk]
        float* dst = wt_.block(icb, ikb);       // [bk][bc]
        for (std::int64_t ic = 0; ic < bc_; ++ic) {
          for (std::int64_t ik = 0; ik < bk_; ++ik) {
            dst[ik * bc_ + ic] = src[ic * bk_ + ik];
          }
        }
      }
    });
    wt_valid_ = true;
  }

  const std::int64_t nb = dy.nb(), kb = w_.kb(), cb = w_.cb();
  const std::int64_t bn = dy.bn();
  parallel_for(0, cb * nb, [&, bn](std::int64_t lo, std::int64_t hi) {
    std::vector<const float*> aptrs(static_cast<std::size_t>(kb));
    std::vector<const float*> bptrs(static_cast<std::size_t>(kb));
    for (std::int64_t idx = lo; idx < hi; ++idx) {
      const std::int64_t icb = idx / nb;
      const std::int64_t inb = idx % nb;
      for (std::int64_t ikb = 0; ikb < kb; ++ikb) {
        aptrs[static_cast<std::size_t>(ikb)] = dy.block(ikb, inb);
        bptrs[static_cast<std::size_t>(ikb)] = wt_.block(icb, ikb);
      }
      float* out = const_cast<float*>(dx.block(icb, inb));
      batchreduce_gemm(aptrs.data(), bptrs.data(), out,
                       static_cast<int>(kb), static_cast<int>(bn),
                       static_cast<int>(bk_), static_cast<int>(bc_),
                       /*accumulate=*/false);
    }
  });
}

void FullyConnected::backward_weights(const BlockedActivations& x,
                                      const BlockedActivations& dy) {
  const std::int64_t nb = x.nb(), kb = w_.kb(), cb = w_.cb();
  const std::int64_t bn = x.bn();

  // dW block (ikb, icb) [bc][bk] = sum_inb X.block(icb,inb)^T * dY.block(ikb,inb).
  parallel_for(0, kb * cb, [&, bn](std::int64_t lo, std::int64_t hi) {
    std::vector<const float*> aptrs(static_cast<std::size_t>(nb));
    std::vector<const float*> bptrs(static_cast<std::size_t>(nb));
    for (std::int64_t idx = lo; idx < hi; ++idx) {
      const std::int64_t ikb = idx / cb;
      const std::int64_t icb = idx % cb;
      for (std::int64_t inb = 0; inb < nb; ++inb) {
        aptrs[static_cast<std::size_t>(inb)] = x.block(icb, inb);
        bptrs[static_cast<std::size_t>(inb)] = dy.block(ikb, inb);
      }
      batchreduce_gemm_at(aptrs.data(), bptrs.data(), dw_.block(ikb, icb),
                          static_cast<int>(nb), static_cast<int>(bc_),
                          static_cast<int>(bn), static_cast<int>(bk_),
                          /*accumulate=*/false);
    }
  });

  // Bias gradient: db[k] = sum_n dy[n][k]; parallel over K blocks.
  float* db = dbias_.data();
  parallel_for(0, kb, [&, bn](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t ikb = lo; ikb < hi; ++ikb) {
      float* dbrow = db + ikb * bk_;
      for (std::int64_t j = 0; j < bk_; ++j) dbrow[j] = 0.0f;
      for (std::int64_t inb = 0; inb < nb; ++inb) {
        const float* tile = dy.block(ikb, inb);
        for (std::int64_t in = 0; in < bn; ++in) {
          const float* row = tile + in * bk_;
          for (std::int64_t j = 0; j < bk_; ++j) dbrow[j] += row[j];
        }
      }
    }
  });
}

void FullyConnected::backward(const BlockedActivations& x,
                              const BlockedActivations& y,
                              BlockedActivations& dy, BlockedActivations& dx) {
  apply_activation_grad(y, dy);
  backward_weights(x, dy);
  backward_data(dy, dx);
}

// ---------------------------------------------------------------------------
// FullyConnected — bf16 data path (paper Sect. III.C)
// ---------------------------------------------------------------------------

void FullyConnected::forward(const BlockedActivationsBf16& x,
                             BlockedActivationsBf16& y) const {
  DLRM_CHECK(prec_ == Precision::kBf16, "layer not built in bf16 mode");
  DLRM_CHECK(x.c() == c_ && y.c() == k_ && x.n() == y.n(),
             "FullyConnected::forward shape mismatch");
  DLRM_CHECK(x.bc() == bc_ && y.bc() == bk_ && x.bn() == y.bn(),
             "FullyConnected::forward blocking mismatch");
  // Refresh the bf16 VNNI mirror of w_ (lossless under Split-SGD, RNE
  // otherwise) on every forward, mirroring the fp32 path's invalidation
  // policy: weights may have been stepped or overwritten since the last
  // call, and the tile-parallel repack is O(K*C) against the pass's
  // O(N*K*C). W^T is rebuilt lazily by backward_data.
  wv_.pack_from(w_);
  wtv_valid_ = false;
  wt_valid_ = false;

  const std::int64_t nb = x.nb(), kb = w_.kb(), cb = w_.cb();
  const std::int64_t bn = x.bn();
  const float* bias = bias_.data();
  const Activation act = act_;

  parallel_for(0, kb * nb, [&, bn](std::int64_t lo, std::int64_t hi) {
    std::vector<const bf16*> aptrs(static_cast<std::size_t>(cb));
    std::vector<const bf16*> bptrs(static_cast<std::size_t>(cb));
    std::vector<float> tile(static_cast<std::size_t>(bn * bk_));
    for (std::int64_t idx = lo; idx < hi; ++idx) {
      const std::int64_t ikb = idx / nb;
      const std::int64_t inb = idx % nb;
      for (std::int64_t icb = 0; icb < cb; ++icb) {
        aptrs[static_cast<std::size_t>(icb)] = x.block(icb, inb);
        bptrs[static_cast<std::size_t>(icb)] = wv_.block(ikb, icb);
      }
      batchreduce_gemm_bf16(aptrs.data(), bptrs.data(), tile.data(),
                            static_cast<int>(cb), static_cast<int>(bn),
                            static_cast<int>(bc_), static_cast<int>(bk_),
                            /*accumulate=*/false);
      // Bias + activation in fp32 while the tile is hot, then one RNE
      // down-convert into the bf16 activation tensor.
      const float* brow = bias + ikb * bk_;
      for (std::int64_t in = 0; in < bn; ++in) {
        float* row = tile.data() + in * bk_;
        for (std::int64_t j = 0; j < bk_; ++j) row[j] += brow[j];
      }
      apply_activation(act, tile.data(), bn * bk_);
      f32_to_bf16_n(tile.data(), const_cast<bf16*>(y.block(ikb, inb)),
                    bn * bk_);
    }
  });
}

void FullyConnected::apply_activation_grad(const BlockedActivationsBf16& y,
                                           BlockedActivationsBf16& dy) const {
  if (act_ == Activation::kNone) return;
  const std::int64_t total = y.raw().size();
  const bf16* yp = y.raw().data();
  bf16* dp = dy.raw().data();
  const Activation act = act_;
  parallel_for(0, total, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float yv = to_float(yp[i]);
      if (act == Activation::kRelu) {
        if (yv <= 0.0f) dp[i] = bf16();
      } else {  // sigmoid
        dp[i] = bf16(to_float(dp[i]) * yv * (1.0f - yv));
      }
    }
  });
}

void FullyConnected::backward_data(const BlockedActivationsBf16& dy,
                                   BlockedActivationsBf16& dx) const {
  DLRM_CHECK(prec_ == Precision::kBf16, "layer not built in bf16 mode");
  if (!wtv_valid_) {
    wtv_.pack_transposed_from(w_);
    wtv_valid_ = true;
  }

  const std::int64_t nb = dy.nb(), kb = w_.kb(), cb = w_.cb();
  const std::int64_t bn = dy.bn();
  parallel_for(0, cb * nb, [&, bn](std::int64_t lo, std::int64_t hi) {
    std::vector<const bf16*> aptrs(static_cast<std::size_t>(kb));
    std::vector<const bf16*> bptrs(static_cast<std::size_t>(kb));
    std::vector<float> tile(static_cast<std::size_t>(bn * bc_));
    for (std::int64_t idx = lo; idx < hi; ++idx) {
      const std::int64_t icb = idx / nb;
      const std::int64_t inb = idx % nb;
      for (std::int64_t ikb = 0; ikb < kb; ++ikb) {
        aptrs[static_cast<std::size_t>(ikb)] = dy.block(ikb, inb);
        bptrs[static_cast<std::size_t>(ikb)] = wtv_.block(icb, ikb);
      }
      batchreduce_gemm_bf16(aptrs.data(), bptrs.data(), tile.data(),
                            static_cast<int>(kb), static_cast<int>(bn),
                            static_cast<int>(bk_), static_cast<int>(bc_),
                            /*accumulate=*/false);
      f32_to_bf16_n(tile.data(), const_cast<bf16*>(dx.block(icb, inb)),
                    bn * bc_);
    }
  });
}

void FullyConnected::backward_weights(const BlockedActivationsBf16& x,
                                      const BlockedActivationsBf16& dy) {
  DLRM_CHECK(prec_ == Precision::kBf16, "layer not built in bf16 mode");
  const std::int64_t nb = x.nb(), kb = w_.kb(), cb = w_.cb();
  const std::int64_t bn = x.bn();

  // dW stays fp32: it feeds ParamSlot, DDP and the split-SGD update.
  parallel_for(0, kb * cb, [&, bn](std::int64_t lo, std::int64_t hi) {
    std::vector<const bf16*> aptrs(static_cast<std::size_t>(nb));
    std::vector<const bf16*> bptrs(static_cast<std::size_t>(nb));
    for (std::int64_t idx = lo; idx < hi; ++idx) {
      const std::int64_t ikb = idx / cb;
      const std::int64_t icb = idx % cb;
      for (std::int64_t inb = 0; inb < nb; ++inb) {
        aptrs[static_cast<std::size_t>(inb)] = x.block(icb, inb);
        bptrs[static_cast<std::size_t>(inb)] = dy.block(ikb, inb);
      }
      batchreduce_gemm_bf16_at(aptrs.data(), bptrs.data(), dw_.block(ikb, icb),
                               static_cast<int>(nb), static_cast<int>(bc_),
                               static_cast<int>(bn), static_cast<int>(bk_),
                               /*accumulate=*/false);
    }
  });

  // Bias gradient in fp32: db[k] = sum_n dy[n][k].
  float* db = dbias_.data();
  parallel_for(0, kb, [&, bn](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t ikb = lo; ikb < hi; ++ikb) {
      float* dbrow = db + ikb * bk_;
      for (std::int64_t j = 0; j < bk_; ++j) dbrow[j] = 0.0f;
      for (std::int64_t inb = 0; inb < nb; ++inb) {
        const bf16* tile = dy.block(ikb, inb);
        for (std::int64_t in = 0; in < bn; ++in) {
          const bf16* row = tile + in * bk_;
          for (std::int64_t j = 0; j < bk_; ++j) dbrow[j] += to_float(row[j]);
        }
      }
    }
  });
}

void FullyConnected::backward(const BlockedActivationsBf16& x,
                              const BlockedActivationsBf16& y,
                              BlockedActivationsBf16& dy,
                              BlockedActivationsBf16& dx) {
  apply_activation_grad(y, dy);
  backward_weights(x, dy);
  backward_data(dy, dx);
}

// ---------------------------------------------------------------------------
// Mlp
// ---------------------------------------------------------------------------

Mlp::Mlp(std::vector<std::int64_t> dims, Activation hidden_act,
         Activation final_act, BlockTargets targets, Precision precision)
    : dims_(std::move(dims)), targets_(targets), prec_(precision) {
  DLRM_CHECK(dims_.size() >= 2, "Mlp needs at least one layer");
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i) {
    const Activation act =
        (i + 2 == dims_.size()) ? final_act : hidden_act;
    layers_.emplace_back(dims_[i], dims_[i + 1], act, targets_, prec_);
  }
}

void Mlp::init(Rng& rng) {
  for (auto& l : layers_) l.init(rng);
}

void Mlp::set_batch(std::int64_t n) {
  if (n == n_) return;
  n_ = n;
  const std::int64_t bn = pick_block(n, targets_.bn);
  acts_.clear();
  dacts_.clear();
  acts16_.clear();
  dacts16_.clear();
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const std::int64_t width = dims_[i];
    const std::int64_t blk =
        (i == 0) ? layers_.front().bc()
                 : layers_[i - 1].bk();  // boundary width block
    if (prec_ == Precision::kBf16) {
      acts16_.emplace_back(n, width, bn, blk);
      dacts16_.emplace_back(n, width, bn, blk);
    } else {
      acts_.emplace_back(n, width, bn, blk);
      dacts_.emplace_back(n, width, bn, blk);
    }
  }
  out_flat_.reshape({n, dims_.back()});
  dx_flat_.reshape({n, dims_.front()});
}

const Tensor<float>& Mlp::forward(const Tensor<float>& x_flat) {
  DLRM_CHECK(n_ > 0, "call set_batch first");
  DLRM_CHECK(x_flat.size() == n_ * dims_.front(), "input size mismatch");
  if (prec_ == Precision::kBf16) {
    acts16_.front().pack_from(x_flat.data());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      layers_[i].forward(acts16_[i], acts16_[i + 1]);
    }
    acts16_.back().unpack_to(out_flat_.data());
    return out_flat_;
  }
  acts_.front().pack_from(x_flat.data());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].forward(acts_[i], acts_[i + 1]);
  }
  acts_.back().unpack_to(out_flat_.data());
  return out_flat_;
}

const Tensor<float>& Mlp::backward(const Tensor<float>& dy_flat) {
  DLRM_CHECK(dy_flat.size() == n_ * dims_.back(), "grad size mismatch");
  if (prec_ == Precision::kBf16) {
    dacts16_.back().pack_from(dy_flat.data());
    for (std::size_t i = layers_.size(); i-- > 0;) {
      layers_[i].backward(acts16_[i], acts16_[i + 1], dacts16_[i + 1],
                          dacts16_[i]);
    }
    dacts16_.front().unpack_to(dx_flat_.data());
    return dx_flat_;
  }
  dacts_.back().pack_from(dy_flat.data());
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i].backward(acts_[i], acts_[i + 1], dacts_[i + 1], dacts_[i]);
  }
  dacts_.front().unpack_to(dx_flat_.data());
  return dx_flat_;
}

std::int64_t Mlp::param_count() const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.param_count();
  return total;
}

std::vector<ParamSlot> Mlp::param_slots() {
  std::vector<ParamSlot> slots;
  for (auto& l : layers_) {
    slots.push_back({l.weights().raw().data(), l.weight_grads().raw().data(),
                     l.weights().raw().size()});
    slots.push_back({l.bias().data(), l.bias_grads().data(), l.bias().size()});
  }
  return slots;
}

// ---------------------------------------------------------------------------
// MlpFlat baseline
// ---------------------------------------------------------------------------

namespace {

// C[M][N] += A^T * B with A stored [K][M]: flat BWD-by-weights GEMM.
void gemm_flat_at_parallel(const float* a, const float* b, float* c,
                           std::int64_t m, std::int64_t k, std::int64_t n) {
  parallel_for(0, m, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t im = lo; im < hi; ++im) {
      float* __restrict__ crow = c + im * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
      for (std::int64_t ik = 0; ik < k; ++ik) {
        const float av = a[ik * m + im];
        const float* __restrict__ brow = b + ik * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

}  // namespace

MlpFlat::MlpFlat(std::vector<std::int64_t> dims, Activation hidden_act,
                 Activation final_act)
    : dims_(std::move(dims)) {
  DLRM_CHECK(dims_.size() >= 2, "MlpFlat needs at least one layer");
  const std::size_t layers = dims_.size() - 1;
  for (std::size_t i = 0; i < layers; ++i) {
    acts_fn_.push_back(i + 1 == layers ? final_act : hidden_act);
    w_ck_.emplace_back(std::vector<std::int64_t>{dims_[i], dims_[i + 1]});
    w_kc_.emplace_back(std::vector<std::int64_t>{dims_[i + 1], dims_[i]});
    dw_ck_.emplace_back(std::vector<std::int64_t>{dims_[i], dims_[i + 1]});
    bias_.emplace_back(std::vector<std::int64_t>{dims_[i + 1]});
    dbias_.emplace_back(std::vector<std::int64_t>{dims_[i + 1]});
    bias_.back().zero();
  }
}

void MlpFlat::init(Rng& rng) {
  for (std::size_t i = 0; i < w_ck_.size(); ++i) {
    const std::int64_t c = dims_[i], k = dims_[i + 1];
    // Draw in [K][C] order so that the same seed produces exactly the same
    // weights as Mlp::init (needed by the equivalence tests and Fig. 5).
    fill_gaussian(w_kc_[i], rng, std::sqrt(2.0f / static_cast<float>(c)));
    for (std::int64_t ik = 0; ik < k; ++ik) {
      for (std::int64_t ic = 0; ic < c; ++ic) {
        w_ck_[i][ic * k + ik] = w_kc_[i][ik * c + ic];
      }
    }
    bias_[i].zero();
  }
}

void MlpFlat::set_batch(std::int64_t n) {
  if (n == n_) return;
  n_ = n;
  zs_.clear();
  dzs_.clear();
  for (auto d : dims_) {
    zs_.emplace_back(std::vector<std::int64_t>{n, d});
    dzs_.emplace_back(std::vector<std::int64_t>{n, d});
  }
}

const Tensor<float>& MlpFlat::forward(const Tensor<float>& x_flat) {
  DLRM_CHECK(n_ > 0, "call set_batch first");
  for (std::int64_t i = 0; i < x_flat.size(); ++i) zs_[0][i] = x_flat[i];
  for (std::size_t l = 0; l < w_ck_.size(); ++l) {
    const std::int64_t c = dims_[l], k = dims_[l + 1];
    gemm_flat_parallel(zs_[l].data(), w_ck_[l].data(), zs_[l + 1].data(), n_,
                       c, k, /*accumulate=*/false);
    float* z = zs_[l + 1].data();
    const float* bias = bias_[l].data();
    parallel_for(0, n_, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t in = lo; in < hi; ++in) {
        float* row = z + in * k;
        for (std::int64_t j = 0; j < k; ++j) row[j] += bias[j];
        apply_activation(acts_fn_[l], row, k);
      }
    });
  }
  return zs_.back();
}

const Tensor<float>& MlpFlat::backward(const Tensor<float>& dy_flat) {
  for (std::int64_t i = 0; i < dy_flat.size(); ++i) dzs_.back()[i] = dy_flat[i];
  for (std::size_t l = w_ck_.size(); l-- > 0;) {
    const std::int64_t c = dims_[l], k = dims_[l + 1];
    float* dz = dzs_[l + 1].data();
    const float* z = zs_[l + 1].data();
    parallel_for(0, n_ * k, [&](std::int64_t lo, std::int64_t hi) {
      apply_activation_grad_buf(acts_fn_[l], z + lo, dz + lo, hi - lo);
    });
    // dW[C][K] = X^T dY ; db = colsum(dY)
    gemm_flat_at_parallel(zs_[l].data(), dz, dw_ck_[l].data(), c, n_, k);
    float* db = dbias_[l].data();
    for (std::int64_t j = 0; j < k; ++j) db[j] = 0.0f;
    for (std::int64_t in = 0; in < n_; ++in) {
      const float* row = dz + in * k;
      for (std::int64_t j = 0; j < k; ++j) db[j] += row[j];
    }
    // dX[N][C] = dY * W[K][C]
    gemm_flat_parallel(dz, w_kc_[l].data(), dzs_[l].data(), n_, k, c,
                       /*accumulate=*/false);
  }
  return dzs_.front();
}

}  // namespace dlrm
