// Batch-reduce GEMM microkernel (paper Sect. III.B, ref [20]).
//
// The batch-reduce GEMM is the single building block of all three MLP
// training passes: it multiplies a *batch* of small A_i/B_i tile pairs and
// reduces the products into one C tile:
//
//     C[M][N] (+)= sum_i  A_i[M][K] * B_i[K][N]     (row-major tiles)
//
// Keeping C resident in registers/L1 across the whole reduction is what makes
// the blocked MLP reach a high fraction of peak even for small minibatches.
// The paper JITs these kernels (libxsmm); we reach the same structure with
// compile-time specializations for the common tile widths.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dlrm {

/// C[M][N] (+)= sum_{i<count} A_i[M][K_i] * B_i[K_i][N].
/// All tiles row-major and contiguous; `accumulate == false` zeroes C first.
/// K is uniform across the batch (lda == K, ldb == N).
void batchreduce_gemm(const float* const* a, const float* const* b, float* c,
                      int count, int m, int k, int n, bool accumulate);

/// Strided variant used on *unpacked* (flat) tensors: row strides may exceed
/// the tile extents. This is the kernel behind the "large GEMM on flat
/// layout" baseline of Fig. 5 — identical arithmetic, worse locality.
void batchreduce_gemm_strided(const float* const* a, const float* const* b,
                              float* c, int count, int m, int k, int n,
                              std::int64_t lda, std::int64_t ldb,
                              std::int64_t ldc, bool accumulate);

/// Reference single-call GEMM: C[M][N] = alpha * A[M][K] * B[K][N] + beta * C.
/// Used for correctness checks and for the naive baselines.
void gemm_reference(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, float alpha, float beta);

/// Threaded flat GEMM (parallel over row blocks of C, no packing): the
/// stand-in for a framework's multi-threaded MKL call on flat tensors.
void gemm_flat_parallel(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t n,
                        bool accumulate);

/// C[M][N] (+)= A^T[M][K] * B[K][N] where A is stored as [K][M] row-major.
/// Used by the backward-by-weights pass (activations transposed on the fly).
void batchreduce_gemm_at(const float* const* a, const float* const* b,
                         float* c, int count, int m, int k, int n,
                         bool accumulate);

// ---------------------------------------------------------------------------
// bf16 batch-reduce GEMM (paper Sect. III.C): bf16 A/B tiles, fp32
// accumulators. The B tiles carry the VNNI pairing [ceil(K/2)][N][2] — two
// consecutive reduction elements adjacent in memory — so each inner step is
// the scalar emulation of an AVX512-BF16 vdpbf16ps: acc += a0*b0 + a1*b1
// with products and sums in fp32. Odd K is zero-padded on the B side and
// tail-handled on the A side.
// ---------------------------------------------------------------------------

/// C[M][N] (+)= sum_{i<count} A_i[M][K] * B_i[K][N] with A_i row-major bf16
/// tiles and B_i VNNI-paired bf16 tiles ([ceil(K/2)][N][2]). C stays fp32.
void batchreduce_gemm_bf16(const bf16* const* a, const bf16* const* b,
                           float* c, int count, int m, int k, int n,
                           bool accumulate);

/// C[M][N] (+)= A^T[M][K] * B[K][N] with A_i stored [K][M] row-major bf16
/// (activations read transposed on the fly, backward-by-weights) and B_i
/// plain row-major bf16 [K][N]. C stays fp32.
void batchreduce_gemm_bf16_at(const bf16* const* a, const bf16* const* b,
                              float* c, int count, int m, int k, int n,
                              bool accumulate);

}  // namespace dlrm
