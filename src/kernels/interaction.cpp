#include "kernels/interaction.hpp"

#include <vector>

#include "common/log.hpp"
#include "common/threadpool.hpp"

namespace dlrm {

namespace {

std::int64_t round_up(std::int64_t v, std::int64_t multiple) {
  if (multiple <= 1) return v;
  return (v + multiple - 1) / multiple * multiple;
}

}  // namespace

DotInteraction::DotInteraction(std::int64_t features, std::int64_t dim,
                               std::int64_t pad_multiple)
    : f_(features), e_(dim), out_dim_(round_up(e_ + f_ * (f_ - 1) / 2, pad_multiple)) {
  DLRM_CHECK(features >= 1 && dim >= 1, "bad interaction shape");
}

void DotInteraction::forward(const std::vector<const float*>& feats,
                             std::int64_t batch, float* out) const {
  DLRM_CHECK(static_cast<std::int64_t>(feats.size()) == f_,
             "feature count mismatch");
  const std::int64_t f = f_, e = e_, od = out_dim_;

  parallel_for_dynamic(0, batch, /*grain=*/32, [&](std::int64_t lo, std::int64_t hi) {
    // Thread-local scratch: Z[F][E] gathered rows and P's lower triangle.
    std::vector<float> z(static_cast<std::size_t>(f * e));
    for (std::int64_t n = lo; n < hi; ++n) {
      for (std::int64_t i = 0; i < f; ++i) {
        const float* src = feats[static_cast<std::size_t>(i)] + n * e;
        for (std::int64_t k = 0; k < e; ++k) z[static_cast<std::size_t>(i * e + k)] = src[k];
      }
      float* row = out + n * od;
      // Dense feature payload first.
      for (std::int64_t k = 0; k < e; ++k) row[k] = z[static_cast<std::size_t>(k)];
      // Strictly-lower triangle of Z Z^T.
      std::int64_t w = e;
      for (std::int64_t i = 1; i < f; ++i) {
        const float* zi = z.data() + i * e;
        for (std::int64_t j = 0; j < i; ++j) {
          const float* zj = z.data() + j * e;
          float dot = 0.0f;
          for (std::int64_t k = 0; k < e; ++k) dot += zi[k] * zj[k];
          row[w++] = dot;
        }
      }
      for (; w < od; ++w) row[w] = 0.0f;  // padding
    }
  });
}

void DotInteraction::backward(const std::vector<const float*>& feats,
                              const float* dout, std::int64_t batch,
                              const std::vector<float*>& dfeats) const {
  DLRM_CHECK(static_cast<std::int64_t>(feats.size()) == f_ &&
                 static_cast<std::int64_t>(dfeats.size()) == f_,
             "feature count mismatch");
  const std::int64_t f = f_, e = e_, od = out_dim_;

  parallel_for_dynamic(0, batch, /*grain=*/32, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> z(static_cast<std::size_t>(f * e));
    std::vector<float> dz(static_cast<std::size_t>(f * e));
    for (std::int64_t n = lo; n < hi; ++n) {
      for (std::int64_t i = 0; i < f; ++i) {
        const float* src = feats[static_cast<std::size_t>(i)] + n * e;
        for (std::int64_t k = 0; k < e; ++k) z[static_cast<std::size_t>(i * e + k)] = src[k];
      }
      const float* drow = dout + n * od;
      for (auto& v : dz) v = 0.0f;
      // dZ = (dP + dP^T) Z with dP the strictly-lower-triangular payload:
      // each scalar g = d(z_i . z_j) contributes g*z_j to dz_i and g*z_i to dz_j.
      std::int64_t w = e;
      for (std::int64_t i = 1; i < f; ++i) {
        float* dzi = dz.data() + i * e;
        const float* zi = z.data() + i * e;
        for (std::int64_t j = 0; j < i; ++j) {
          const float g = drow[w++];
          float* dzj = dz.data() + j * e;
          const float* zj = z.data() + j * e;
          for (std::int64_t k = 0; k < e; ++k) {
            dzi[k] += g * zj[k];
            dzj[k] += g * zi[k];
          }
        }
      }
      // Dense payload gradient flows straight into feature 0.
      for (std::int64_t k = 0; k < e; ++k) dz[static_cast<std::size_t>(k)] += drow[k];
      for (std::int64_t i = 0; i < f; ++i) {
        float* dst = dfeats[static_cast<std::size_t>(i)] + n * e;
        for (std::int64_t k = 0; k < e; ++k) dst[k] = dz[static_cast<std::size_t>(i * e + k)];
      }
    }
  });
}

ConcatInteraction::ConcatInteraction(std::int64_t features, std::int64_t dim,
                                     std::int64_t pad_multiple)
    : f_(features), e_(dim), out_dim_(round_up(features * dim, pad_multiple)) {
  DLRM_CHECK(features >= 1 && dim >= 1, "bad interaction shape");
}

void ConcatInteraction::forward(const std::vector<const float*>& feats,
                                std::int64_t batch, float* out) const {
  DLRM_CHECK(static_cast<std::int64_t>(feats.size()) == f_,
             "feature count mismatch");
  const std::int64_t f = f_, e = e_, od = out_dim_;
  parallel_for_dynamic(0, batch, /*grain=*/64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t n = lo; n < hi; ++n) {
      float* row = out + n * od;
      std::int64_t w = 0;
      for (std::int64_t i = 0; i < f; ++i) {
        const float* src = feats[static_cast<std::size_t>(i)] + n * e;
        for (std::int64_t k = 0; k < e; ++k) row[w++] = src[k];
      }
      for (; w < od; ++w) row[w] = 0.0f;
    }
  });
}

void ConcatInteraction::backward(const float* dout, std::int64_t batch,
                                 const std::vector<float*>& dfeats) const {
  const std::int64_t f = f_, e = e_, od = out_dim_;
  parallel_for_dynamic(0, batch, /*grain=*/64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t n = lo; n < hi; ++n) {
      const float* row = dout + n * od;
      for (std::int64_t i = 0; i < f; ++i) {
        float* dst = dfeats[static_cast<std::size_t>(i)] + n * e;
        for (std::int64_t k = 0; k < e; ++k) dst[k] = row[i * e + k];
      }
    }
  });
}

}  // namespace dlrm
