// Interaction ops combining the bottom-MLP output with the embedding-table
// outputs (paper Sect. II).
//
// DotInteraction is DLRM's default: per sample, stack the F = S+1 feature
// vectors into Z[F][E], form the self dot-product P = Z Z^T (a batched small
// GEMM), and emit the strictly-lower triangle of P concatenated with the
// dense feature. The output is optionally zero-padded to a multiple of 32 so
// the first top-MLP layer gets an efficient blocking factor (e.g. MLPerf's
// 479-wide interaction output becomes 480).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dlrm {

/// Self dot-product interaction (batched GEMM kernel).
class DotInteraction {
 public:
  /// `features` = S+1 (bottom MLP output + S embedding outputs), each of
  /// width `dim`. If `pad_multiple` > 1 the output width is rounded up.
  DotInteraction(std::int64_t features, std::int64_t dim,
                 std::int64_t pad_multiple = 32);

  std::int64_t features() const { return f_; }
  std::int64_t dim() const { return e_; }
  /// Unpadded payload width: E + F*(F-1)/2.
  std::int64_t payload_dim() const { return e_ + f_ * (f_ - 1) / 2; }
  std::int64_t out_dim() const { return out_dim_; }

  /// feats[i] points to a [batch][dim] matrix; out is [batch][out_dim()].
  /// feats[0] is the dense (bottom MLP) feature copied to the front.
  void forward(const std::vector<const float*>& feats, std::int64_t batch,
               float* out) const;

  /// dout: [batch][out_dim()]; dfeats[i]: [batch][dim] (overwritten).
  void backward(const std::vector<const float*>& feats, const float* dout,
                std::int64_t batch, const std::vector<float*>& dfeats) const;

 private:
  std::int64_t f_, e_, out_dim_;
};

/// Trivial concat interaction (the paper mentions it as the simple option).
class ConcatInteraction {
 public:
  ConcatInteraction(std::int64_t features, std::int64_t dim,
                    std::int64_t pad_multiple = 32);

  std::int64_t out_dim() const { return out_dim_; }

  void forward(const std::vector<const float*>& feats, std::int64_t batch,
               float* out) const;
  void backward(const float* dout, std::int64_t batch,
                const std::vector<float*>& dfeats) const;

 private:
  std::int64_t f_, e_, out_dim_;
};

}  // namespace dlrm
