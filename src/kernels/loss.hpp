// Binary cross-entropy loss with logits (DLRM's click/no-click objective).
//
// The paper does not analyze the loss (negligible cost); we implement the
// numerically stable formulation and its gradient for completeness.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/log.hpp"

namespace dlrm {

/// Mean BCE-with-logits over a batch:
///   loss_n = max(x,0) - x*y + log(1 + exp(-|x|))
/// Also fills dlogits[n] = (sigmoid(x_n) - y_n) / N (gradient of the mean).
inline double bce_with_logits(const float* logits, const float* labels,
                              std::int64_t n, float* dlogits) {
  DLRM_CHECK(n > 0, "empty batch");
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float x = logits[i];
    const float y = labels[i];
    const float ax = x >= 0.0f ? x : -x;
    total += static_cast<double>((x > 0.0f ? x : 0.0f) - x * y +
                                 std::log1p(std::exp(-ax)));
    if (dlogits != nullptr) {
      const float sig = 1.0f / (1.0f + std::exp(-x));
      dlogits[i] = (sig - y) * inv_n;
    }
  }
  return total / static_cast<double>(n);
}

}  // namespace dlrm
