#include "kernels/embedding.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "common/log.hpp"
#include "common/threadpool.hpp"

namespace dlrm {

void BagBatch::validate(std::int64_t rows) const {
  DLRM_CHECK(offsets.size() >= 1, "offsets must have N+1 entries");
  DLRM_CHECK(offsets[0] == 0, "offsets[0] must be 0");
  for (std::int64_t n = 0; n + 1 < offsets.size(); ++n) {
    DLRM_CHECK(offsets[n] <= offsets[n + 1], "offsets must be non-decreasing");
  }
  DLRM_CHECK(offsets[offsets.size() - 1] == indices.size(),
             "offsets must cover all indices");
  for (std::int64_t s = 0; s < indices.size(); ++s) {
    DLRM_CHECK(indices[s] >= 0 && indices[s] < rows, "index out of range");
  }
}

const char* to_string(UpdateStrategy s) {
  switch (s) {
    case UpdateStrategy::kReference:
      return "Reference";
    case UpdateStrategy::kAtomicXchg:
      return "AtomicXchg";
    case UpdateStrategy::kRtm:
      return "RTM";
    case UpdateStrategy::kRaceFree:
      return "RaceFree";
  }
  return "?";
}

const char* to_string(EmbCachePolicy p) {
  switch (p) {
    case EmbCachePolicy::kOff:
      return "off";
    case EmbCachePolicy::kHist:
      return "hist";
    case EmbCachePolicy::kCounter:
      return "counter";
  }
  return "?";
}

const char* to_string(EmbedPrecision p) {
  switch (p) {
    case EmbedPrecision::kFp32:
      return "FP32";
    case EmbedPrecision::kBf16Split:
      return "BF16-Split";
    case EmbedPrecision::kBf16Split8:
      return "BF16-Split8";
    case EmbedPrecision::kFp16Stochastic:
      return "FP16-Stochastic";
    case EmbedPrecision::kFp24:
      return "FP24";
  }
  return "?";
}

namespace {

// Striped row locks emulating RTM transactions: acquiring the stripe stands
// in for the transactional cache-line ownership; the body may use SIMD just
// like an RTM region (the paper's motivation for RTM over per-element CAS).
constexpr std::size_t kLockStripes = 4096;

std::atomic_flag& row_lock(std::int64_t row) {
  static std::atomic_flag stripes[kLockStripes] = {};
  return stripes[static_cast<std::size_t>(row) & (kLockStripes - 1)];
}

class StripeGuard {
 public:
  explicit StripeGuard(std::int64_t row) : flag_(row_lock(row)) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // spin; transactions are short
    }
  }
  ~StripeGuard() { flag_.clear(std::memory_order_release); }
  StripeGuard(const StripeGuard&) = delete;
  StripeGuard& operator=(const StripeGuard&) = delete;

 private:
  std::atomic_flag& flag_;
};

}  // namespace

EmbeddingTable::EmbeddingTable(std::int64_t rows, std::int64_t dim,
                               EmbedPrecision precision)
    : EmbeddingTable(rows, dim, precision, /*row_begin=*/0,
                     /*global_rows=*/rows) {}

EmbeddingTable::EmbeddingTable(std::int64_t rows, std::int64_t dim,
                               EmbedPrecision precision,
                               std::int64_t row_begin, std::int64_t global_rows)
    : rows_(rows), dim_(dim), precision_(precision), row_begin_(row_begin),
      global_rows_(global_rows) {
  DLRM_CHECK(rows > 0 && dim > 0, "table shape must be positive");
  DLRM_CHECK(row_begin_ >= 0 && row_begin_ + rows_ <= global_rows_,
             "shard row range must lie inside the logical table");
  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      w_.reshape({rows, dim});
      w_.zero();
      break;
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8:
      hi_.reshape({rows, dim});
      lo_.reshape({rows, dim});
      hi_.fill(0);
      lo_.fill(0);
      break;
    case EmbedPrecision::kFp16Stochastic:
      hi_.reshape({rows, dim});
      hi_.fill(0);
      break;
  }
}

void EmbeddingTable::init(Rng& rng, float scale) {
  // Shard views consume the logical table's draw stream up to row_begin so
  // stored rows are bit-identical to the same rows of an unsharded table.
  for (std::int64_t skip = 0; skip < row_begin_ * dim_; ++skip) {
    (void)rng.uniform(-scale, scale);
  }
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t e = 0; e < dim_; ++e) {
      const float v = rng.uniform(-scale, scale);
      const std::int64_t i = r * dim_ + e;
      switch (precision_) {
        case EmbedPrecision::kFp32:
          w_[i] = v;
          break;
        case EmbedPrecision::kFp24:
          w_[i] = f32_to_f24_rne(v);
          break;
        case EmbedPrecision::kBf16Split:
        case EmbedPrecision::kBf16Split8: {
          const SplitF32 s = split_f32(v);
          hi_[i] = s.hi;
          lo_[i] = precision_ == EmbedPrecision::kBf16Split
                       ? s.lo
                       : static_cast<std::uint16_t>(s.lo & 0xFF00u);
          break;
        }
        case EmbedPrecision::kFp16Stochastic:
          hi_[i] = f32_to_f16_rne(v);
          break;
      }
    }
  }
}

std::int64_t EmbeddingTable::checkpoint_row_bytes(EmbedPrecision precision,
                                                  std::int64_t dim) {
  switch (precision) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      return dim * 4;  // fp24 is stored widened in fp32; copy it verbatim
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8:
      return dim * 4;  // bf16 hi half + hidden lo half per element
    case EmbedPrecision::kFp16Stochastic:
      return dim * 2;
  }
  return 0;
}

void EmbeddingTable::export_rows(std::int64_t first, std::int64_t n,
                                 unsigned char* out) const {
  DLRM_CHECK(first >= 0 && n >= 0 && first + n <= rows_,
             "export_rows range outside the shard");
  const std::int64_t elems = n * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      std::memcpy(out, w_.data() + first * dim_,
                  static_cast<std::size_t>(elems) * 4);
      break;
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8:
      // Per row: hi[dim] then lo[dim] — both halves, so the implicit fp32
      // master weight survives the round trip bit-for-bit.
      for (std::int64_t r = 0; r < n; ++r) {
        unsigned char* dst = out + r * checkpoint_row_bytes();
        const std::int64_t base = (first + r) * dim_;
        std::memcpy(dst, hi_.data() + base, static_cast<std::size_t>(dim_) * 2);
        std::memcpy(dst + dim_ * 2, lo_.data() + base,
                    static_cast<std::size_t>(dim_) * 2);
      }
      break;
    case EmbedPrecision::kFp16Stochastic:
      std::memcpy(out, hi_.data() + first * dim_,
                  static_cast<std::size_t>(elems) * 2);
      break;
  }
  // Read through the cache tier: resident rows carry the authoritative
  // master state, so re-encode them over the cold-storage bytes. Keeps the
  // checkpoint encoding independent of cache configuration.
  if (!cache_slot_.empty()) {
    const std::int64_t rb = checkpoint_row_bytes();
    for (std::int64_t r = first; r < first + n; ++r) {
      if (const float* m = cached_row(r)) {
        encode_row_bytes(m, out + (r - first) * rb);
      }
    }
  }
}

void EmbeddingTable::import_rows(std::int64_t first, std::int64_t n,
                                 const unsigned char* in) {
  DLRM_CHECK(first >= 0 && n >= 0 && first + n <= rows_,
             "import_rows range outside the shard");
  const std::int64_t elems = n * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      std::memcpy(w_.data() + first * dim_, in,
                  static_cast<std::size_t>(elems) * 4);
      break;
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8:
      for (std::int64_t r = 0; r < n; ++r) {
        const unsigned char* src = in + r * checkpoint_row_bytes();
        const std::int64_t base = (first + r) * dim_;
        std::memcpy(hi_.data() + base, src, static_cast<std::size_t>(dim_) * 2);
        std::memcpy(lo_.data() + base, src + dim_ * 2,
                    static_cast<std::size_t>(dim_) * 2);
      }
      break;
    case EmbedPrecision::kFp16Stochastic:
      std::memcpy(hi_.data() + first * dim_, in,
                  static_cast<std::size_t>(elems) * 2);
      break;
  }
  // Write through: refresh the cached masters of any resident row in range.
  if (!cache_slot_.empty()) {
    for (std::int64_t r = first; r < first + n; ++r) {
      if (float* m = cached_row(r)) load_master_row(r, m);
    }
  }
}

void EmbeddingTable::read_row(std::int64_t row, float* out) const {
  if (const float* m = cached_row(row)) {
    // Model-weight view of the cached master: bf16 variants expose only the
    // hi half (top 16 bits of the master), everything else is the master
    // itself.
    const bool mask = precision_ == EmbedPrecision::kBf16Split ||
                      precision_ == EmbedPrecision::kBf16Split8;
    for (std::int64_t e = 0; e < dim_; ++e) {
      out[e] = mask ? std::bit_cast<float>(
                          std::bit_cast<std::uint32_t>(m[e]) & 0xFFFF0000u)
                    : m[e];
    }
    return;
  }
  const std::int64_t base = row * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      for (std::int64_t e = 0; e < dim_; ++e) out[e] = w_[base + e];
      return;
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8:
      // Model weights are the bf16 hi halves only.
      for (std::int64_t e = 0; e < dim_; ++e) out[e] = bf16_to_f32(hi_[base + e]);
      return;
    case EmbedPrecision::kFp16Stochastic:
      for (std::int64_t e = 0; e < dim_; ++e) out[e] = f16_to_f32(hi_[base + e]);
      return;
  }
}

void EmbeddingTable::write_row(std::int64_t row, const float* values) {
  const std::int64_t base = row * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
      for (std::int64_t e = 0; e < dim_; ++e) w_[base + e] = values[e];
      break;
    case EmbedPrecision::kFp24:
      for (std::int64_t e = 0; e < dim_; ++e) w_[base + e] = f32_to_f24_rne(values[e]);
      break;
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8:
      for (std::int64_t e = 0; e < dim_; ++e) {
        const SplitF32 s = split_f32(values[e]);
        hi_[base + e] = s.hi;
        lo_[base + e] = precision_ == EmbedPrecision::kBf16Split
                            ? s.lo
                            : static_cast<std::uint16_t>(s.lo & 0xFF00u);
      }
      break;
    case EmbedPrecision::kFp16Stochastic:
      for (std::int64_t e = 0; e < dim_; ++e) hi_[base + e] = f32_to_f16_rne(values[e]);
      break;
  }
  if (float* m = cached_row(row)) load_master_row(row, m);
}

// ---- Hot-row cache tier ----------------------------------------------------

void EmbeddingTable::load_master_row(std::int64_t row, float* out) const {
  const std::int64_t base = row * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      for (std::int64_t e = 0; e < dim_; ++e) out[e] = w_[base + e];
      return;
    case EmbedPrecision::kBf16Split:
      for (std::int64_t e = 0; e < dim_; ++e) {
        out[e] = combine_f32(hi_[base + e], lo_[base + e]);
      }
      return;
    case EmbedPrecision::kBf16Split8:
      for (std::int64_t e = 0; e < dim_; ++e) {
        out[e] = combine_f32_partial(hi_[base + e], lo_[base + e], 8);
      }
      return;
    case EmbedPrecision::kFp16Stochastic:
      for (std::int64_t e = 0; e < dim_; ++e) out[e] = f16_to_f32(hi_[base + e]);
      return;
  }
}

void EmbeddingTable::encode_row_bytes(const float* master,
                                      unsigned char* out) const {
  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      std::memcpy(out, master, static_cast<std::size_t>(dim_) * 4);
      return;
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8: {
      auto* hi = reinterpret_cast<std::uint16_t*>(out);
      auto* lo = reinterpret_cast<std::uint16_t*>(out + dim_ * 2);
      for (std::int64_t e = 0; e < dim_; ++e) {
        const SplitF32 s = split_f32(master[e]);
        hi[e] = s.hi;
        lo[e] = precision_ == EmbedPrecision::kBf16Split
                    ? s.lo
                    : static_cast<std::uint16_t>(s.lo & 0xFF00u);
      }
      return;
    }
    case EmbedPrecision::kFp16Stochastic: {
      auto* hi = reinterpret_cast<std::uint16_t*>(out);
      // Masters hold exact fp16-representable values, so RNE is an identity
      // re-encode.
      for (std::int64_t e = 0; e < dim_; ++e) hi[e] = f32_to_f16_rne(master[e]);
      return;
    }
  }
}

void EmbeddingTable::store_master_row(std::int64_t row, const float* master) {
  const std::int64_t base = row * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24:
      for (std::int64_t e = 0; e < dim_; ++e) w_[base + e] = master[e];
      return;
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8:
      for (std::int64_t e = 0; e < dim_; ++e) {
        const SplitF32 s = split_f32(master[e]);
        hi_[base + e] = s.hi;
        lo_[base + e] = precision_ == EmbedPrecision::kBf16Split
                            ? s.lo
                            : static_cast<std::uint16_t>(s.lo & 0xFF00u);
      }
      return;
    case EmbedPrecision::kFp16Stochastic:
      for (std::int64_t e = 0; e < dim_; ++e) {
        hi_[base + e] = f32_to_f16_rne(master[e]);
      }
      return;
  }
}

void EmbeddingTable::evict_slot(std::int64_t slot) {
  const std::int64_t row = slot_row_[static_cast<std::size_t>(slot)];
  if (row < 0) return;
  store_master_row(row, cache_.data() + slot * dim_);
  slot_row_[static_cast<std::size_t>(slot)] = -1;
  cache_slot_[static_cast<std::size_t>(row)] = -1;
  --cache_resident_;
  ++cache_evictions_;
}

void EmbeddingTable::configure_cache(const EmbCacheOptions& opts) {
  flush_cache();
  cache_opts_ = opts;
  cache_.clear();
  cache_slot_.clear();
  slot_row_.clear();
  freq_.clear();
  cache_resident_ = 0;
  forwards_since_refresh_ = 0;
  reset_cache_stats();
  if (!opts.enabled()) {
    cache_opts_.policy = EmbCachePolicy::kOff;
    cache_opts_.capacity = 0;
    return;
  }
  cache_opts_.capacity = std::min<std::int64_t>(opts.capacity, rows_);
  DLRM_CHECK(cache_opts_.capacity <= (std::int64_t{1} << 31) - 1,
             "cache capacity exceeds slot index range");
  cache_.assign(static_cast<std::size_t>(cache_opts_.capacity * dim_), 0.0f);
  cache_slot_.assign(static_cast<std::size_t>(rows_), -1);
  slot_row_.assign(static_cast<std::size_t>(cache_opts_.capacity), -1);
  if (cache_opts_.policy == EmbCachePolicy::kCounter) {
    freq_.assign(static_cast<std::size_t>(rows_), 0);
    if (cache_opts_.refresh_every < 1) cache_opts_.refresh_every = 1;
  }
}

void EmbeddingTable::admit_rows(const std::int64_t* rows, std::int64_t n) {
  if (cache_slot_.empty()) return;
  n = std::min<std::int64_t>(n, cache_opts_.capacity);
  // Evict residents that fall out of the new set.
  std::vector<char> keep(static_cast<std::size_t>(cache_opts_.capacity), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t s = cache_slot_[static_cast<std::size_t>(rows[i])];
    if (s >= 0) keep[static_cast<std::size_t>(s)] = 1;
  }
  for (std::int64_t s = 0; s < cache_opts_.capacity; ++s) {
    if (slot_row_[static_cast<std::size_t>(s)] >= 0 &&
        !keep[static_cast<std::size_t>(s)]) {
      evict_slot(s);
    }
  }
  // Load newcomers into free slots in order.
  std::int64_t scan = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t row = rows[i];
    DLRM_CHECK(row >= 0 && row < rows_, "admit_rows id outside the shard");
    if (cache_slot_[static_cast<std::size_t>(row)] >= 0) continue;
    while (slot_row_[static_cast<std::size_t>(scan)] >= 0) ++scan;
    load_master_row(row, cache_.data() + scan * dim_);
    slot_row_[static_cast<std::size_t>(scan)] = row;
    cache_slot_[static_cast<std::size_t>(row)] = static_cast<std::int32_t>(scan);
    ++cache_resident_;
    ++cache_admissions_;
  }
}

void EmbeddingTable::admit_top_rows_from_histogram(
    const std::vector<double>& histogram) {
  if (cache_slot_.empty() || histogram.empty()) return;
  const std::int64_t buckets = static_cast<std::int64_t>(histogram.size());
  // Rank buckets by lookup density; within equal density prefer lower row
  // ids (the Zipf head lives there under rank-ordered id assignment).
  std::vector<std::int64_t> order(static_cast<std::size_t>(buckets));
  for (std::int64_t b = 0; b < buckets; ++b) order[static_cast<std::size_t>(b)] = b;
  std::vector<double> density(static_cast<std::size_t>(buckets), 0.0);
  for (std::int64_t b = 0; b < buckets; ++b) {
    const std::int64_t begin = global_rows_ * b / buckets;
    const std::int64_t end = global_rows_ * (b + 1) / buckets;
    if (end > begin) {
      density[static_cast<std::size_t>(b)] =
          histogram[static_cast<std::size_t>(b)] /
          static_cast<double>(end - begin);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return density[static_cast<std::size_t>(a)] >
                            density[static_cast<std::size_t>(b)];
                   });
  std::vector<std::int64_t> picked;
  picked.reserve(static_cast<std::size_t>(cache_opts_.capacity));
  const std::int64_t shard_begin = row_begin_;
  const std::int64_t shard_end = row_begin_ + rows_;
  for (const std::int64_t b : order) {
    if (static_cast<std::int64_t>(picked.size()) >= cache_opts_.capacity) break;
    const std::int64_t begin =
        std::max(global_rows_ * b / buckets, shard_begin);
    const std::int64_t end =
        std::min(global_rows_ * (b + 1) / buckets, shard_end);
    for (std::int64_t g = begin; g < end; ++g) {
      if (static_cast<std::int64_t>(picked.size()) >= cache_opts_.capacity) break;
      picked.push_back(g - shard_begin);
    }
  }
  admit_rows(picked.data(), static_cast<std::int64_t>(picked.size()));
}

void EmbeddingTable::flush_cache() {
  if (cache_slot_.empty()) return;
  for (std::int64_t s = 0; s < cache_opts_.capacity; ++s) {
    const std::int64_t row = slot_row_[static_cast<std::size_t>(s)];
    if (row >= 0) store_master_row(row, cache_.data() + s * dim_);
  }
}

EmbCacheStats EmbeddingTable::cache_stats() const {
  EmbCacheStats st;
  st.hits = cache_hits_.load(std::memory_order_relaxed);
  st.misses = cache_misses_.load(std::memory_order_relaxed);
  st.evictions = cache_evictions_;
  st.admissions = cache_admissions_;
  st.refreshes = cache_refreshes_;
  st.capacity = cache_opts_.capacity;
  st.resident = cache_resident_;
  return st;
}

void EmbeddingTable::reset_cache_stats() {
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  cache_evictions_ = 0;
  cache_admissions_ = 0;
  cache_refreshes_ = 0;
}

std::int64_t EmbeddingTable::cache_bytes() const {
  return static_cast<std::int64_t>(cache_.size()) * 4 +
         static_cast<std::int64_t>(cache_slot_.size()) * 4 +
         static_cast<std::int64_t>(slot_row_.size()) * 8 +
         static_cast<std::int64_t>(freq_.size()) * 4;
}

void EmbeddingTable::note_forward_counters(const BagBatch& bags) const {
  // Serial (called before the parallel bag loops), so plain counters are
  // race-free; only derived cache state changes, never logical values.
  auto* self = const_cast<EmbeddingTable*>(this);
  const std::int64_t ns = bags.lookups();
  const std::int64_t* idx = bags.indices.data();
  for (std::int64_t s = 0; s < ns; ++s) {
    ++self->freq_[static_cast<std::size_t>(idx[s])];
  }
  ++self->forwards_since_refresh_;
  const bool cold_start = cache_resident_ == 0;
  if (!cold_start && forwards_since_refresh_ < cache_opts_.refresh_every) {
    return;
  }
  self->forwards_since_refresh_ = 0;
  ++self->cache_refreshes_;
  // Re-admit the top-capacity rows by current counter value (deterministic
  // tie-break on row id), then decay so stale popularity ages out.
  std::vector<std::int64_t> hot;
  hot.reserve(static_cast<std::size_t>(rows_));
  for (std::int64_t r = 0; r < rows_; ++r) {
    if (freq_[static_cast<std::size_t>(r)] > 0) hot.push_back(r);
  }
  const std::size_t k = static_cast<std::size_t>(
      std::min<std::int64_t>(cache_opts_.capacity,
                             static_cast<std::int64_t>(hot.size())));
  std::partial_sort(hot.begin(), hot.begin() + static_cast<std::ptrdiff_t>(k),
                    hot.end(), [&](std::int64_t a, std::int64_t b) {
                      const std::uint32_t fa = freq_[static_cast<std::size_t>(a)];
                      const std::uint32_t fb = freq_[static_cast<std::size_t>(b)];
                      return fa != fb ? fa > fb : a < b;
                    });
  self->admit_rows(hot.data(), static_cast<std::int64_t>(k));
  for (std::int64_t r = 0; r < rows_; ++r) {
    self->freq_[static_cast<std::size_t>(r)] >>=
        static_cast<unsigned>(cache_opts_.decay_shift);
  }
}

void EmbeddingTable::forward(const BagBatch& bags, float* out) const {
  if (cache_enabled()) {
    if (cache_opts_.policy == EmbCachePolicy::kCounter) {
      note_forward_counters(bags);
    }
    forward_cached(bags, out);
    return;
  }
  const std::int64_t n = bags.batch();
  const std::int64_t* idx = bags.indices.data();
  const std::int64_t* off = bags.offsets.data();
  const std::int64_t dim = dim_;

  if (precision_ == EmbedPrecision::kFp32 ||
      precision_ == EmbedPrecision::kFp24) {
    const float* w = w_.data();
    parallel_for_dynamic(0, n, /*grain=*/16, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t b = lo; b < hi; ++b) {
        float* __restrict__ dst = out + b * dim;
        for (std::int64_t e = 0; e < dim; ++e) dst[e] = 0.0f;
        for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
          const float* __restrict__ src = w + idx[s] * dim;
          for (std::int64_t e = 0; e < dim; ++e) dst[e] += src[e];
        }
      }
    });
    return;
  }

  // Low-precision storage: decode rows on the fly (this *is* the 2x
  // bandwidth saving: only 16-bit model weights stream from memory).
  const std::uint16_t* hi = hi_.data();
  const bool is_f16 = precision_ == EmbedPrecision::kFp16Stochastic;
  parallel_for_dynamic(0, n, /*grain=*/16, [&](std::int64_t lo, std::int64_t hiend) {
    for (std::int64_t b = lo; b < hiend; ++b) {
      float* __restrict__ dst = out + b * dim;
      for (std::int64_t e = 0; e < dim; ++e) dst[e] = 0.0f;
      for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
        const std::uint16_t* __restrict__ src = hi + idx[s] * dim;
        if (is_f16) {
          for (std::int64_t e = 0; e < dim; ++e) dst[e] += f16_to_f32(src[e]);
        } else {
          for (std::int64_t e = 0; e < dim; ++e) dst[e] += bf16_to_f32(src[e]);
        }
      }
    }
  });
}

// Tier-dispatching bag sum: resident rows read from the contiguous fp32
// arena, cold rows decode from precision storage exactly like the uncached
// kernel — the value added per lookup is bit-identical either way.
void EmbeddingTable::forward_cached(const BagBatch& bags, float* out) const {
  const std::int64_t n = bags.batch();
  const std::int64_t* idx = bags.indices.data();
  const std::int64_t* off = bags.offsets.data();
  const std::int64_t dim = dim_;
  const float* arena = cache_.data();
  const std::int32_t* slot = cache_slot_.data();

  // Per-block hit/miss tallies, folded into the shared counters with one
  // relaxed atomic add per block.
  auto run = [&](auto&& accumulate_row) {
    parallel_for_dynamic(
        0, n, /*grain=*/16, [&](std::int64_t lo, std::int64_t hi) {
          std::int64_t hits = 0, misses = 0;
          for (std::int64_t b = lo; b < hi; ++b) {
            float* __restrict__ dst = out + b * dim;
            for (std::int64_t e = 0; e < dim; ++e) dst[e] = 0.0f;
            for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
              const std::int64_t row = idx[s];
              const std::int32_t sl = slot[static_cast<std::size_t>(row)];
              if (sl >= 0) {
                ++hits;
                const float* __restrict__ src =
                    arena + static_cast<std::int64_t>(sl) * dim;
                accumulate_row(dst, src, /*cached=*/true);
              } else {
                ++misses;
                accumulate_row(dst, nullptr, /*cached=*/false, row);
              }
            }
          }
          cache_hits_.fetch_add(hits, std::memory_order_relaxed);
          cache_misses_.fetch_add(misses, std::memory_order_relaxed);
        });
  };

  switch (precision_) {
    case EmbedPrecision::kFp32:
    case EmbedPrecision::kFp24: {
      const float* w = w_.data();
      run([&](float* __restrict__ dst, const float* __restrict__ src,
              bool cached, std::int64_t row = 0) {
        if (!cached) src = w + row * dim;
        for (std::int64_t e = 0; e < dim; ++e) dst[e] += src[e];
      });
      return;
    }
    case EmbedPrecision::kBf16Split:
    case EmbedPrecision::kBf16Split8: {
      // Model weight == hi half only: masters carry the hidden lo halves in
      // their mantissa tails, so the cached add must mask them off to stay
      // bit-identical with the bf16 decode of the cold path.
      const std::uint16_t* hi = hi_.data();
      run([&](float* __restrict__ dst, const float* __restrict__ src,
              bool cached, std::int64_t row = 0) {
        if (cached) {
          for (std::int64_t e = 0; e < dim; ++e) {
            dst[e] += std::bit_cast<float>(
                std::bit_cast<std::uint32_t>(src[e]) & 0xFFFF0000u);
          }
        } else {
          const std::uint16_t* __restrict__ h = hi + row * dim;
          for (std::int64_t e = 0; e < dim; ++e) dst[e] += bf16_to_f32(h[e]);
        }
      });
      return;
    }
    case EmbedPrecision::kFp16Stochastic: {
      // Masters hold exact fp16-representable values: add them directly.
      const std::uint16_t* hi = hi_.data();
      run([&](float* __restrict__ dst, const float* __restrict__ src,
              bool cached, std::int64_t row = 0) {
        if (cached) {
          for (std::int64_t e = 0; e < dim; ++e) dst[e] += src[e];
        } else {
          const std::uint16_t* __restrict__ h = hi + row * dim;
          for (std::int64_t e = 0; e < dim; ++e) dst[e] += f16_to_f32(h[e]);
        }
      });
      return;
    }
  }
}

void EmbeddingTable::backward(const float* dy, const BagBatch& bags,
                              Tensor<float>& dlookup) const {
  const std::int64_t n = bags.batch();
  const std::int64_t* off = bags.offsets.data();
  const std::int64_t dim = dim_;
  if (dlookup.size() != bags.lookups() * dim) {
    dlookup.reshape({bags.lookups(), dim});
  }
  float* dl = dlookup.data();
  parallel_for_dynamic(0, n, /*grain=*/16, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t b = lo; b < hi; ++b) {
      const float* __restrict__ src = dy + b * dim;
      for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
        float* __restrict__ dst = dl + s * dim;
        for (std::int64_t e = 0; e < dim; ++e) dst[e] = src[e];
      }
    }
  });
}

// Cache-hit update: mutates the resident fp32 master so that after the
// update `master == exact decoded storage state` still holds for every
// precision — i.e. this mirrors update_row_lowp bit-for-bit, including the
// stochastic-rounding rng stream, just without touching cold storage.
void EmbeddingTable::update_master_row(float* master, std::int64_t row,
                                       const float* grad, float lr,
                                       std::uint64_t salt) {
  switch (precision_) {
    case EmbedPrecision::kFp32:
      for (std::int64_t e = 0; e < dim_; ++e) master[e] -= lr * grad[e];
      return;
    case EmbedPrecision::kFp24:
      for (std::int64_t e = 0; e < dim_; ++e) {
        master[e] = f32_to_f24_rne(master[e] - lr * grad[e]);
      }
      return;
    case EmbedPrecision::kBf16Split:
      // split/combine is a lossless 16/16 bit split, so the fast path is a
      // plain fp32 subtract — this is where the cached tier wins over the
      // combine/split round trip of the cold path.
      for (std::int64_t e = 0; e < dim_; ++e) master[e] -= lr * grad[e];
      return;
    case EmbedPrecision::kBf16Split8:
      for (std::int64_t e = 0; e < dim_; ++e) {
        const SplitF32 s = split_f32(master[e] - lr * grad[e]);
        master[e] = combine_f32_partial(s.hi, s.lo, 8);
      }
      return;
    case EmbedPrecision::kFp16Stochastic: {
      std::uint64_t state = salt ^ (static_cast<std::uint64_t>(row) << 20);
      for (std::int64_t e = 0; e < dim_; ++e) {
        const float updated = master[e] - lr * grad[e];
        const std::uint16_t rnd =
            static_cast<std::uint16_t>(detail::splitmix64(state) >> 48);
        master[e] = f16_to_f32(f32_to_f16_stochastic(updated, rnd));
      }
      return;
    }
  }
}

void EmbeddingTable::update_row_fp32(std::int64_t row, const float* grad,
                                     float lr) {
  if (float* m = cached_row(row)) {
    for (std::int64_t e = 0; e < dim_; ++e) m[e] -= lr * grad[e];
    return;
  }
  float* __restrict__ w = w_.data() + row * dim_;
  for (std::int64_t e = 0; e < dim_; ++e) w[e] -= lr * grad[e];
}

void EmbeddingTable::update_row_lowp(std::int64_t row, const float* grad,
                                     float lr, std::uint64_t salt) {
  if (float* m = cached_row(row)) {
    update_master_row(m, row, grad, lr, salt);
    return;
  }
  const std::int64_t base = row * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
      update_row_fp32(row, grad, lr);
      return;
    case EmbedPrecision::kFp24:
      for (std::int64_t e = 0; e < dim_; ++e) {
        w_[base + e] = f32_to_f24_rne(w_[base + e] - lr * grad[e]);
      }
      return;
    case EmbedPrecision::kBf16Split:
      for (std::int64_t e = 0; e < dim_; ++e) {
        // Reconstruct the implicit fp32 master weight, update at full
        // accuracy, re-split. This is the whole Split-SGD trick.
        float master = combine_f32(hi_[base + e], lo_[base + e]);
        master -= lr * grad[e];
        const SplitF32 s = split_f32(master);
        hi_[base + e] = s.hi;
        lo_[base + e] = s.lo;
      }
      return;
    case EmbedPrecision::kBf16Split8:
      for (std::int64_t e = 0; e < dim_; ++e) {
        float master = combine_f32_partial(hi_[base + e], lo_[base + e], 8);
        master -= lr * grad[e];
        const SplitF32 s = split_f32(master);
        hi_[base + e] = s.hi;
        lo_[base + e] = static_cast<std::uint16_t>(s.lo & 0xFF00u);
      }
      return;
    case EmbedPrecision::kFp16Stochastic: {
      std::uint64_t state = salt ^ (static_cast<std::uint64_t>(row) << 20);
      for (std::int64_t e = 0; e < dim_; ++e) {
        const float updated = f16_to_f32(hi_[base + e]) - lr * grad[e];
        const std::uint16_t rnd =
            static_cast<std::uint16_t>(detail::splitmix64(state) >> 48);
        hi_[base + e] = f32_to_f16_stochastic(updated, rnd);
      }
      return;
    }
  }
}

namespace {

// Thread-count and row-range helper for the race-free strategy (Alg 4).
struct RowRange {
  std::int64_t begin, end;
};

RowRange owned_rows(std::int64_t rows, int tid, int nthreads) {
  return {rows * tid / nthreads, rows * (tid + 1) / nthreads};
}

}  // namespace

void EmbeddingTable::apply_update(const Tensor<float>& dlookup,
                                  const BagBatch& bags, float lr,
                                  UpdateStrategy strategy) {
  const std::int64_t ns = bags.lookups();
  DLRM_CHECK(dlookup.size() == ns * dim_, "per-lookup grad shape mismatch");
  const std::int64_t* idx = bags.indices.data();
  const float* dl = dlookup.data();
  const std::int64_t dim = dim_;

  switch (strategy) {
    case UpdateStrategy::kReference: {
      // Naive framework kernel: serial, dense full-table gradient that is
      // allocated, zeroed and applied with a whole-table sweep. O(M*E) work
      // independent of NS — authentically terrible, kept as the baseline.
      Tensor<float> dense({rows_, dim_});
      dense.zero();
      for (std::int64_t s = 0; s < ns; ++s) {
        float* __restrict__ dst = dense.data() + idx[s] * dim;
        const float* __restrict__ src = dl + s * dim;
        for (std::int64_t e = 0; e < dim; ++e) dst[e] += src[e];
      }
      for (std::int64_t r = 0; r < rows_; ++r) {
        update_row_lowp(r, dense.data() + r * dim, lr, 0x9E3779B9ull);
      }
      return;
    }
    case UpdateStrategy::kAtomicXchg: {
      DLRM_CHECK(precision_ == EmbedPrecision::kFp32,
                 "AtomicXchg requires fp32 storage (32-bit CAS granularity)");
      float* w = w_.data();
      float* arena = cache_.data();
      const std::int32_t* slot = cache_slot_.empty() ? nullptr
                                                     : cache_slot_.data();
      parallel_for_dynamic(0, ns, /*grain=*/64, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t s = lo; s < hi; ++s) {
          float* __restrict__ row = w + idx[s] * dim;
          if (slot) {
            const std::int32_t sl = slot[static_cast<std::size_t>(idx[s])];
            if (sl >= 0) row = arena + static_cast<std::int64_t>(sl) * dim;
          }
          const float* __restrict__ g = dl + s * dim;
          for (std::int64_t e = 0; e < dim; ++e) {
            atomic_add_float(&row[e], -lr * g[e]);
          }
        }
      });
      return;
    }
    case UpdateStrategy::kRtm: {
      parallel_for_dynamic(0, ns, /*grain=*/64, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t s = lo; s < hi; ++s) {
          StripeGuard guard(idx[s]);
          update_row_lowp(idx[s], dl + s * dim, lr,
                          0xA5A5A5A5ull + static_cast<std::uint64_t>(s));
        }
      });
      return;
    }
    case UpdateStrategy::kRaceFree: {
      const int nthreads = current_pool().size();
      parallel_run([&](int tid) {
        const RowRange range = owned_rows(rows_, tid, nthreads);
        for (std::int64_t s = 0; s < ns; ++s) {
          const std::int64_t row = idx[s];
          if (row >= range.begin && row < range.end) {
            update_row_lowp(row, dl + s * dim, lr,
                            0xC3C3C3C3ull + static_cast<std::uint64_t>(s));
          }
        }
      });
      return;
    }
  }
}

void EmbeddingTable::fused_backward_update(const float* dy,
                                           const BagBatch& bags, float lr,
                                           UpdateStrategy strategy) {
  const std::int64_t n = bags.batch();
  const std::int64_t* idx = bags.indices.data();
  const std::int64_t* off = bags.offsets.data();
  const std::int64_t dim = dim_;

  switch (strategy) {
    case UpdateStrategy::kReference: {
      // Fused serial: already skips the dense scratch — this is the
      // "optimized serial" lower bound, not the naive framework path.
      for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
          update_row_lowp(idx[s], dy + b * dim, lr,
                          0x11111111ull + static_cast<std::uint64_t>(s));
        }
      }
      return;
    }
    case UpdateStrategy::kAtomicXchg: {
      DLRM_CHECK(precision_ == EmbedPrecision::kFp32,
                 "AtomicXchg requires fp32 storage (32-bit CAS granularity)");
      float* w = w_.data();
      float* arena = cache_.data();
      const std::int32_t* slot = cache_slot_.empty() ? nullptr
                                                     : cache_slot_.data();
      parallel_for_dynamic(0, n, /*grain=*/16, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t b = lo; b < hi; ++b) {
          const float* __restrict__ g = dy + b * dim;
          for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
            float* __restrict__ row = w + idx[s] * dim;
            if (slot) {
              const std::int32_t sl = slot[static_cast<std::size_t>(idx[s])];
              if (sl >= 0) row = arena + static_cast<std::int64_t>(sl) * dim;
            }
            for (std::int64_t e = 0; e < dim; ++e) {
              atomic_add_float(&row[e], -lr * g[e]);
            }
          }
        }
      });
      return;
    }
    case UpdateStrategy::kRtm: {
      parallel_for_dynamic(0, n, /*grain=*/16, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t b = lo; b < hi; ++b) {
          for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
            StripeGuard guard(idx[s]);
            update_row_lowp(idx[s], dy + b * dim, lr,
                            0x22222222ull + static_cast<std::uint64_t>(s));
          }
        }
      });
      return;
    }
    case UpdateStrategy::kRaceFree: {
      const int nthreads = current_pool().size();
      parallel_run([&](int tid) {
        const RowRange range = owned_rows(rows_, tid, nthreads);
        for (std::int64_t b = 0; b < n; ++b) {
          const float* __restrict__ g = dy + b * dim;
          for (std::int64_t s = off[b]; s < off[b + 1]; ++s) {
            const std::int64_t row = idx[s];
            if (row >= range.begin && row < range.end) {
              update_row_lowp(row, g, lr,
                              0x33333333ull + static_cast<std::uint64_t>(s));
            }
          }
        }
      });
      return;
    }
  }
}

std::int64_t EmbeddingTable::storage_bytes() const {
  const std::int64_t elems = rows_ * dim_;
  switch (precision_) {
    case EmbedPrecision::kFp32:
      return elems * 4;
    case EmbedPrecision::kBf16Split:
      return elems * 2 + elems * 2;  // == fp32, master weights implicit
    case EmbedPrecision::kBf16Split8:
      return elems * 2 + elems * 1;
    case EmbedPrecision::kFp16Stochastic:
      return elems * 2;
    case EmbedPrecision::kFp24:
      return elems * 3;  // logically 24-bit; stored widened in fp32 here
  }
  return 0;
}

std::int64_t EmbeddingTable::model_bytes() const {
  const std::int64_t elems = rows_ * dim_;
  return precision_ == EmbedPrecision::kFp32 ? elems * 4 : elems * 2;
}

}  // namespace dlrm
