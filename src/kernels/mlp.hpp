// Fully connected layers and MLP stacks (paper Sect. III.B, Algorithm 5).
//
// Two implementations are provided:
//   * FullyConnected / Mlp — the paper's blocked-layout implementation built
//     on the batch-reduce GEMM microkernel. Weights live in [Kb][Cb][bc][bk],
//     activations in [Cb][Nb][bn][bc]; all three training passes (FWD,
//     BWD-by-data, BWD-by-weights) are tile-parallel.
//   * MlpFlat — the "one large multi-threaded GEMM per layer on flat
//     tensors" baseline (what a framework's MKL path does); used by the
//     Fig. 5 comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/param_slot.hpp"
#include "common/rng.hpp"
#include "tensor/blocked.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {

enum class Activation { kNone, kRelu, kSigmoid };

/// Largest divisor of `dim` that is <= `target` (>= 1). Used to select legal
/// blocking factors for arbitrary layer sizes (e.g. the 13-wide MLPerf
/// bottom-MLP input or the width-1 top-MLP output).
std::int64_t pick_block(std::int64_t dim, std::int64_t target);

/// Default blocking targets; chosen so tiles fit registers/L1 comfortably.
struct BlockTargets {
  std::int64_t bn = 32;
  std::int64_t bc = 64;
  std::int64_t bk = 64;
};

/// One fully connected layer y = act(W x + bias) on blocked tensors.
///
/// The canonical weights always live in fp32 blocked storage (w_), which is
/// what ParamSlot exposes to optimizers and DDP. In bf16 mode the compute
/// path reads bf16 mirrors instead: a VNNI-paired copy of W refreshed from
/// w_ at every forward (after the optimizer step; under Split-SGD w_ sits on
/// the bf16 grid so the repack is lossless), and a lazily refreshed VNNI
/// W^T for the backward-by-data pass. Activations flow through bf16 with
/// fp32 accumulators; bias and all gradients stay fp32 (paper Sect. III.C).
class FullyConnected {
 public:
  FullyConnected(std::int64_t c, std::int64_t k, Activation act,
                 BlockTargets targets = {},
                 Precision precision = Precision::kFp32);

  std::int64_t in_features() const { return c_; }
  std::int64_t out_features() const { return k_; }
  Activation activation() const { return act_; }
  Precision precision() const { return prec_; }

  /// Initializes weights N(0, sqrt(2/C)) and zero bias.
  void init(Rng& rng);

  /// y[Kb][Nb][bn][bk] = act(W * x + bias). x: [Cb][Nb][bn][bc].
  /// The activation output is also retained internally for the backward pass.
  void forward(const BlockedActivations& x, BlockedActivations& y) const;

  /// Computes dx from dy (BWD-by-data) and dW, db (BWD-by-weights).
  /// `dy` is the gradient w.r.t. the *post-activation* output and is
  /// modified in place (multiplied by act'(y)).
  /// `y` must be the tensor produced by the matching forward call.
  void backward(const BlockedActivations& x, const BlockedActivations& y,
                BlockedActivations& dy, BlockedActivations& dx);

  /// BWD-by-weights only (dy already pre-multiplied by act').
  void backward_weights(const BlockedActivations& x,
                        const BlockedActivations& dy);

  /// BWD-by-data only (dy already pre-multiplied by act').
  void backward_data(const BlockedActivations& dy, BlockedActivations& dx) const;

  /// Applies act'(y) to dy in place (the first step of backward()).
  void apply_activation_grad(const BlockedActivations& y,
                             BlockedActivations& dy) const;

  // bf16 data path (legal only when precision() == kBf16): bf16 activation
  // tiles in and out, fp32 accumulation inside the tiles, fp32 dW/db.
  void forward(const BlockedActivationsBf16& x, BlockedActivationsBf16& y) const;
  void backward(const BlockedActivationsBf16& x, const BlockedActivationsBf16& y,
                BlockedActivationsBf16& dy, BlockedActivationsBf16& dx);
  void backward_weights(const BlockedActivationsBf16& x,
                        const BlockedActivationsBf16& dy);
  void backward_data(const BlockedActivationsBf16& dy,
                     BlockedActivationsBf16& dx) const;
  void apply_activation_grad(const BlockedActivationsBf16& y,
                             BlockedActivationsBf16& dy) const;

  BlockedWeights& weights() { return w_; }
  const BlockedWeights& weights() const { return w_; }
  BlockedWeights& weight_grads() { return dw_; }
  Tensor<float>& bias() { return bias_; }
  Tensor<float>& bias_grads() { return dbias_; }

  std::int64_t bc() const { return bc_; }
  std::int64_t bk() const { return bk_; }

  /// Number of parameters (weights + bias) — the layer's allreduce size
  /// contribution (Eq. 1 of the paper).
  std::int64_t param_count() const { return c_ * k_ + k_; }

 private:
  std::int64_t c_, k_;
  Activation act_;
  Precision prec_;
  std::int64_t bc_, bk_;
  BlockedWeights w_;
  BlockedWeights dw_;
  Tensor<float> bias_;
  Tensor<float> dbias_;
  mutable BlockedWeights wt_;  // transposed weights for BWD-by-data (fp32)
  mutable bool wt_valid_ = false;
  // bf16 mirrors of w_ (allocated only in bf16 mode): wv_ is repacked on
  // every forward (same freshness policy as the fp32 wt_ cache), wtv_
  // lazily between forward and the next backward_data.
  mutable VnniWeights wv_;   // VNNI-paired W for FWD
  mutable VnniWeights wtv_;  // VNNI-paired W^T for BWD-by-data
  mutable bool wtv_valid_ = false;
};

/// A stack of fully connected layers with uniform hidden activation and a
/// configurable final activation.
class Mlp {
 public:
  /// dims = [input, hidden..., output]; at least one layer. `precision`
  /// selects the storage/compute type of the whole stack's data path; the
  /// flat fp32 forward/backward interfaces are unchanged either way.
  Mlp(std::vector<std::int64_t> dims, Activation hidden_act,
      Activation final_act, BlockTargets targets = {},
      Precision precision = Precision::kFp32);

  Precision precision() const { return prec_; }

  void init(Rng& rng);

  /// (Re)allocates activation buffers for minibatch n.
  void set_batch(std::int64_t n);

  std::int64_t batch() const { return n_; }
  std::int64_t in_features() const { return dims_.front(); }
  std::int64_t out_features() const { return dims_.back(); }
  std::size_t layer_count() const { return layers_.size(); }
  FullyConnected& layer(std::size_t i) { return layers_[i]; }
  const FullyConnected& layer(std::size_t i) const { return layers_[i]; }

  /// Forward through all layers. x_flat: [N][input]. Output view is flat
  /// [N][output], unpacked into an internal buffer.
  const Tensor<float>& forward(const Tensor<float>& x_flat);

  /// Backward through all layers; fills weight/bias grads of every layer and
  /// returns the gradient w.r.t. the input, flat [N][input].
  const Tensor<float>& backward(const Tensor<float>& dy_flat);

  /// Flat output of the most recent forward() call.
  const Tensor<float>& forward_output() const { return out_flat_; }

  /// Sum over layers of (C*K + K) — the DDP allreduce element count (Eq. 1).
  std::int64_t param_count() const;

  /// Flat list of {param, grad} blocks for the optimizer / DDP allreduce.
  std::vector<ParamSlot> param_slots();

 private:
  std::vector<std::int64_t> dims_;
  BlockTargets targets_;
  Precision prec_ = Precision::kFp32;
  std::vector<FullyConnected> layers_;
  std::int64_t n_ = 0;

  std::vector<BlockedActivations> acts_;   // acts_[0] = packed input (fp32)
  std::vector<BlockedActivations> dacts_;  // gradient buffers per boundary
  std::vector<BlockedActivationsBf16> acts16_;   // bf16-mode activations
  std::vector<BlockedActivationsBf16> dacts16_;  // bf16-mode gradients
  Tensor<float> out_flat_;
  Tensor<float> dx_flat_;
};

/// Baseline: flat-layout MLP computing one large threaded GEMM per pass per
/// layer (no packing, no tiling). Numerically identical to Mlp.
class MlpFlat {
 public:
  MlpFlat(std::vector<std::int64_t> dims, Activation hidden_act,
          Activation final_act);

  void init(Rng& rng);
  void set_batch(std::int64_t n);

  const Tensor<float>& forward(const Tensor<float>& x_flat);
  const Tensor<float>& backward(const Tensor<float>& dy_flat);

  std::int64_t out_features() const { return dims_.back(); }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<Activation> acts_fn_;
  std::int64_t n_ = 0;
  // Per layer: weights stored both as [C][K] (fwd) and [K][C] (bwd-data).
  std::vector<Tensor<float>> w_ck_, w_kc_, bias_, dw_ck_, dbias_;
  std::vector<Tensor<float>> zs_;  // per-boundary activations, flat
  std::vector<Tensor<float>> dzs_;
};

}  // namespace dlrm
