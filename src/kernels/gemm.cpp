#include "kernels/gemm.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/threadpool.hpp"

namespace dlrm {

namespace {

// Fixed-width inner kernel: the accumulator row tile acc[NB] stays in vector
// registers for the full K x count reduction (GCC/Clang auto-vectorize the
// j-loops with FMA under -O3 -march=native).
template <int NB>
void brgemm_fixed(const float* const* a, const float* const* b, float* c,
                  int count, int m, int k, bool accumulate) {
  for (int im = 0; im < m; ++im) {
    float acc[NB];
    float* __restrict__ crow = c + static_cast<std::int64_t>(im) * NB;
    if (accumulate) {
      for (int j = 0; j < NB; ++j) acc[j] = crow[j];
    } else {
      for (int j = 0; j < NB; ++j) acc[j] = 0.0f;
    }
    for (int i = 0; i < count; ++i) {
      const float* __restrict__ arow = a[i] + static_cast<std::int64_t>(im) * k;
      const float* __restrict__ bmat = b[i];
      for (int ik = 0; ik < k; ++ik) {
        const float av = arow[ik];
        const float* __restrict__ brow = bmat + static_cast<std::int64_t>(ik) * NB;
        for (int j = 0; j < NB; ++j) acc[j] += av * brow[j];
      }
    }
    for (int j = 0; j < NB; ++j) crow[j] = acc[j];
  }
}

// Generic runtime-width fallback for odd tile widths (e.g. bk = 1 on the
// final top-MLP layer, bc = 13 on the MLPerf bottom MLP input).
void brgemm_generic(const float* const* a, const float* const* b, float* c,
                    int count, int m, int k, int n, bool accumulate) {
  for (int im = 0; im < m; ++im) {
    float* __restrict__ crow = c + static_cast<std::int64_t>(im) * n;
    if (!accumulate) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    for (int i = 0; i < count; ++i) {
      const float* __restrict__ arow = a[i] + static_cast<std::int64_t>(im) * k;
      const float* __restrict__ bmat = b[i];
      for (int ik = 0; ik < k; ++ik) {
        const float av = arow[ik];
        const float* __restrict__ brow = bmat + static_cast<std::int64_t>(ik) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// bf16 fixed-width inner kernel: fp32 accumulator tile acc[NB] stays in
// vector registers across the K x count reduction; each step consumes a VNNI
// pair of B rows, emulating vdpbf16ps (bf16 products, fp32 accumulate).
template <int NB>
void brgemm_bf16_fixed(const bf16* const* a, const bf16* const* b, float* c,
                       int count, int m, int k, bool accumulate) {
  const int kp = k / 2;
  for (int im = 0; im < m; ++im) {
    float acc[NB];
    float* __restrict__ crow = c + static_cast<std::int64_t>(im) * NB;
    if (accumulate) {
      for (int j = 0; j < NB; ++j) acc[j] = crow[j];
    } else {
      for (int j = 0; j < NB; ++j) acc[j] = 0.0f;
    }
    for (int i = 0; i < count; ++i) {
      const bf16* __restrict__ arow = a[i] + static_cast<std::int64_t>(im) * k;
      const bf16* __restrict__ bmat = b[i];
      for (int p = 0; p < kp; ++p) {
        const float a0 = to_float(arow[2 * p]);
        const float a1 = to_float(arow[2 * p + 1]);
        const bf16* __restrict__ bpair =
            bmat + static_cast<std::int64_t>(p) * NB * 2;
        for (int j = 0; j < NB; ++j) {
          acc[j] += a0 * to_float(bpair[2 * j]) + a1 * to_float(bpair[2 * j + 1]);
        }
      }
      if (k & 1) {
        // Tail reduction element: the B pad lane holds +0, so only the first
        // lane of the last pair contributes.
        const float a0 = to_float(arow[k - 1]);
        const bf16* __restrict__ bpair =
            bmat + static_cast<std::int64_t>(kp) * NB * 2;
        for (int j = 0; j < NB; ++j) acc[j] += a0 * to_float(bpair[2 * j]);
      }
    }
    for (int j = 0; j < NB; ++j) crow[j] = acc[j];
  }
}

// Generic runtime-width bf16 fallback for odd tile widths.
void brgemm_bf16_generic(const bf16* const* a, const bf16* const* b, float* c,
                         int count, int m, int k, int n, bool accumulate) {
  const int kp = k / 2;
  for (int im = 0; im < m; ++im) {
    float* __restrict__ crow = c + static_cast<std::int64_t>(im) * n;
    if (!accumulate) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    for (int i = 0; i < count; ++i) {
      const bf16* __restrict__ arow = a[i] + static_cast<std::int64_t>(im) * k;
      const bf16* __restrict__ bmat = b[i];
      for (int p = 0; p < kp; ++p) {
        const float a0 = to_float(arow[2 * p]);
        const float a1 = to_float(arow[2 * p + 1]);
        const bf16* __restrict__ bpair =
            bmat + static_cast<std::int64_t>(p) * n * 2;
        for (int j = 0; j < n; ++j) {
          crow[j] += a0 * to_float(bpair[2 * j]) + a1 * to_float(bpair[2 * j + 1]);
        }
      }
      if (k & 1) {
        const float a0 = to_float(arow[k - 1]);
        const bf16* __restrict__ bpair =
            bmat + static_cast<std::int64_t>(kp) * n * 2;
        for (int j = 0; j < n; ++j) crow[j] += a0 * to_float(bpair[2 * j]);
      }
    }
  }
}

}  // namespace

void batchreduce_gemm(const float* const* a, const float* const* b, float* c,
                      int count, int m, int k, int n, bool accumulate) {
  switch (n) {
    case 16:
      brgemm_fixed<16>(a, b, c, count, m, k, accumulate);
      return;
    case 32:
      brgemm_fixed<32>(a, b, c, count, m, k, accumulate);
      return;
    case 64:
      brgemm_fixed<64>(a, b, c, count, m, k, accumulate);
      return;
    default:
      brgemm_generic(a, b, c, count, m, k, n, accumulate);
  }
}

void batchreduce_gemm_strided(const float* const* a, const float* const* b,
                              float* c, int count, int m, int k, int n,
                              std::int64_t lda, std::int64_t ldb,
                              std::int64_t ldc, bool accumulate) {
  for (int im = 0; im < m; ++im) {
    float* __restrict__ crow = c + im * ldc;
    if (!accumulate) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    for (int i = 0; i < count; ++i) {
      const float* __restrict__ arow = a[i] + im * lda;
      const float* __restrict__ bmat = b[i];
      for (int ik = 0; ik < k; ++ik) {
        const float av = arow[ik];
        const float* __restrict__ brow = bmat + ik * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void batchreduce_gemm_at(const float* const* a, const float* const* b,
                         float* c, int count, int m, int k, int n,
                         bool accumulate) {
  // A_i stored [K][M]; we read column im as a strided vector. The k-loop
  // remains the reduction; B rows stream exactly as in the plain kernel.
  for (int im = 0; im < m; ++im) {
    float* __restrict__ crow = c + static_cast<std::int64_t>(im) * n;
    if (!accumulate) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    for (int i = 0; i < count; ++i) {
      const float* __restrict__ acol = a[i] + im;  // stride m
      const float* __restrict__ bmat = b[i];
      for (int ik = 0; ik < k; ++ik) {
        const float av = acol[static_cast<std::int64_t>(ik) * m];
        const float* __restrict__ brow = bmat + static_cast<std::int64_t>(ik) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void batchreduce_gemm_bf16(const bf16* const* a, const bf16* const* b,
                           float* c, int count, int m, int k, int n,
                           bool accumulate) {
  switch (n) {
    case 16:
      brgemm_bf16_fixed<16>(a, b, c, count, m, k, accumulate);
      return;
    case 32:
      brgemm_bf16_fixed<32>(a, b, c, count, m, k, accumulate);
      return;
    case 64:
      brgemm_bf16_fixed<64>(a, b, c, count, m, k, accumulate);
      return;
    default:
      brgemm_bf16_generic(a, b, c, count, m, k, n, accumulate);
  }
}

void batchreduce_gemm_bf16_at(const bf16* const* a, const bf16* const* b,
                              float* c, int count, int m, int k, int n,
                              bool accumulate) {
  // A_i stored [K][M] bf16; column im is a strided read. B_i is a plain
  // [K][N] bf16 activation-gradient tile (produced per iteration, so not
  // worth VNNI-reformatting); all products accumulate in fp32.
  for (int im = 0; im < m; ++im) {
    float* __restrict__ crow = c + static_cast<std::int64_t>(im) * n;
    if (!accumulate) {
      for (int j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    for (int i = 0; i < count; ++i) {
      const bf16* __restrict__ acol = a[i] + im;  // stride m
      const bf16* __restrict__ bmat = b[i];
      for (int ik = 0; ik < k; ++ik) {
        const float av = to_float(acol[static_cast<std::int64_t>(ik) * m]);
        const bf16* __restrict__ brow = bmat + static_cast<std::int64_t>(ik) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * to_float(brow[j]);
      }
    }
  }
}

void gemm_reference(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t k, std::int64_t n, float alpha, float beta) {
  for (std::int64_t im = 0; im < m; ++im) {
    float* crow = c + im * n;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a + im * k;
    for (std::int64_t ik = 0; ik < k; ++ik) {
      const float av = alpha * arow[ik];
      const float* brow = b + ik * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_flat_parallel(const float* a, const float* b, float* c,
                        std::int64_t m, std::int64_t k, std::int64_t n,
                        bool accumulate) {
  // Parallel over rows of C; each thread performs rank-1 style updates on its
  // row range. No packing: B is streamed from memory for every row block,
  // which is exactly the locality deficit of "one large GEMM" on flat
  // tensors that Fig. 5 quantifies.
  parallel_for(0, m, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t im = lo; im < hi; ++im) {
      float* __restrict__ crow = c + im * n;
      if (!accumulate) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
      }
      const float* __restrict__ arow = a + im * k;
      for (std::int64_t ik = 0; ik < k; ++ik) {
        const float av = arow[ik];
        const float* __restrict__ brow = b + ik * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

}  // namespace dlrm
