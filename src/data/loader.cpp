#include "data/loader.hpp"

#include "common/log.hpp"
#include "common/timer.hpp"

namespace dlrm {

DataLoader::DataLoader(const Dataset& data, std::int64_t global_batch,
                       int rank, int ranks,
                       std::vector<std::int64_t> owned_tables, LoaderMode mode)
    : data_(data),
      gn_(global_batch),
      rank_(rank),
      ranks_(ranks),
      owned_(std::move(owned_tables)),
      mode_(mode) {
  DLRM_CHECK(ranks_ >= 1 && rank_ >= 0 && rank_ < ranks_, "bad rank");
  DLRM_CHECK(gn_ % ranks_ == 0, "global batch must divide by ranks");
  ln_ = gn_ / ranks_;
  for (auto t : owned_) {
    DLRM_CHECK(t >= 0 && t < data_.tables(), "owned table out of range");
  }
}

void DataLoader::next(std::int64_t iter, HybridBatch& out) {
  const Timer timer;
  const std::int64_t first = iter * gn_;
  const std::int64_t my_first = first + rank_ * ln_;

  if (out.dense.size() != ln_ * data_.dense_dim()) {
    out.dense.reshape({ln_, data_.dense_dim()});
    out.labels.reshape({ln_});
  }
  out.owned_bags.resize(owned_.size());

  if (mode_ == LoaderMode::kFullGlobalBatch) {
    // Reference behaviour: materialize everything, then slice.
    data_.fill(first, gn_, scratch_);
    const std::int64_t d = data_.dense_dim();
    for (std::int64_t i = 0; i < ln_; ++i) {
      const std::int64_t src = rank_ * ln_ + i;
      for (std::int64_t j = 0; j < d; ++j) {
        out.dense[i * d + j] = scratch_.dense[src * d + j];
      }
      out.labels[i] = scratch_.labels[src];
    }
    const std::int64_t p = data_.pooling();
    for (std::size_t k = 0; k < owned_.size(); ++k) {
      const auto& src = scratch_.bags[static_cast<std::size_t>(owned_[k])];
      auto& dst = out.owned_bags[k];
      if (dst.indices.size() != gn_ * p) {
        dst.indices.reshape({gn_ * p});
        dst.offsets.reshape({gn_ + 1});
        for (std::int64_t i = 0; i <= gn_; ++i) dst.offsets[i] = i * p;
      }
      for (std::int64_t i = 0; i < gn_ * p; ++i) dst.indices[i] = src.indices[i];
    }
  } else {
    // Optimized behaviour: only the local slice + owned tables' global bags.
    MiniBatch slice;
    data_.fill(my_first, ln_, slice);
    const std::int64_t d = data_.dense_dim();
    for (std::int64_t i = 0; i < ln_ * d; ++i) out.dense[i] = slice.dense[i];
    for (std::int64_t i = 0; i < ln_; ++i) out.labels[i] = slice.labels[i];
    for (std::size_t k = 0; k < owned_.size(); ++k) {
      data_.fill_table_bags(owned_[k], first, gn_, out.owned_bags[k]);
    }
  }
  last_sec_ = timer.elapsed_sec();
}

void DataLoader::next_full(std::int64_t iter, MiniBatch& out) {
  const Timer timer;
  data_.fill(iter * gn_, gn_, out);
  last_sec_ = timer.elapsed_sec();
}

std::int64_t DataLoader::bytes_per_iteration() const {
  if (mode_ == LoaderMode::kFullGlobalBatch) {
    return gn_ * data_.bytes_per_sample();
  }
  // Local dense/labels + owned tables' global index streams.
  return ln_ * (data_.dense_dim() * 4 + 4) +
         static_cast<std::int64_t>(owned_.size()) * gn_ * data_.pooling() * 8;
}

}  // namespace dlrm
