#include "data/loader.hpp"

#include "common/log.hpp"
#include "common/partition.hpp"
#include "common/timer.hpp"

namespace dlrm {

void rewrite_bags_to_shard(const BagBatch& full, std::int64_t row_begin,
                           std::int64_t row_end, BagBatch& out) {
  const std::int64_t n = full.batch();
  if (out.offsets.size() != n + 1) out.offsets.reshape({n + 1});
  // Count pass so the index tensor is sized exactly. The kept count varies
  // per batch, so this reallocates most iterations — deliberate: BagBatch's
  // lookups() == indices.size() invariant requires exact sizing, and one
  // small allocation is noise next to materializing the batch (and runs on
  // the prefetch thread anyway).
  std::int64_t kept = 0;
  for (std::int64_t s = 0; s < full.indices.size(); ++s) {
    if (full.indices[s] >= row_begin && full.indices[s] < row_end) ++kept;
  }
  if (out.indices.size() != kept) out.indices.reshape({kept});
  std::int64_t w = 0;
  out.offsets[0] = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t s = full.offsets[b]; s < full.offsets[b + 1]; ++s) {
      const std::int64_t row = full.indices[s];
      if (row >= row_begin && row < row_end) out.indices[w++] = row - row_begin;
    }
    out.offsets[b + 1] = w;
  }
}

namespace {

std::vector<Shard> full_table_shards(const Dataset& data,
                                     const std::vector<std::int64_t>& tables,
                                     int rank) {
  std::vector<Shard> shards;
  for (std::int64_t t : tables) {
    DLRM_CHECK(t >= 0 && t < data.tables(), "owned table out of range");
    Shard sh;
    sh.table = t;
    sh.row_begin = 0;
    sh.row_end = data.rows(t);
    sh.rank = rank;
    shards.push_back(sh);
  }
  return shards;
}

std::vector<Shard> rank_shards(const ShardingPlan& plan, int rank) {
  std::vector<Shard> shards;
  for (std::int64_t sid : plan.shards_of_rank(rank)) {
    shards.push_back(plan.shard(sid));
  }
  return shards;
}

}  // namespace

DataLoader::DataLoader(ShardListTag, const Dataset& data,
                       std::int64_t global_batch, int rank, int ranks,
                       std::vector<Shard> owned_shards, LoaderMode mode)
    : data_(data),
      gn_(global_batch),
      rank_(rank),
      ranks_(ranks),
      owned_(std::move(owned_shards)),
      mode_(mode) {
  DLRM_CHECK(ranks_ >= 1 && rank_ >= 0 && rank_ < ranks_, "bad rank");
  DLRM_CHECK(gn_ >= ranks_, "global batch must cover all ranks");
  first_local_ = chunk_begin(gn_, rank_, ranks_);
  ln_ = chunk_size(gn_, rank_, ranks_);
  for (const auto& sh : owned_) {
    DLRM_CHECK(sh.table >= 0 && sh.table < data_.tables(),
               "owned table out of range");
    DLRM_CHECK(sh.row_begin >= 0 && sh.row_begin < sh.row_end &&
                   sh.row_end <= data_.rows(sh.table),
               "shard row range outside the table");
  }
}

DataLoader::DataLoader(const Dataset& data, std::int64_t global_batch,
                       int rank, int ranks, const ShardingPlan& plan,
                       LoaderMode mode)
    : DataLoader(ShardListTag{}, data, global_batch, rank, ranks,
                 rank_shards(plan, rank), mode) {}

DataLoader::DataLoader(const Dataset& data, std::int64_t global_batch,
                       int rank, int ranks,
                       const std::vector<std::int64_t>& owned_tables,
                       LoaderMode mode)
    : DataLoader(ShardListTag{}, data, global_batch, rank, ranks,
                 full_table_shards(data, owned_tables, rank), mode) {}

std::unique_ptr<DataLoader> DataLoader::clone() const {
  return std::unique_ptr<DataLoader>(new DataLoader(
      ShardListTag{}, data_, gn_, rank_, ranks_, owned_, mode_));
}

void DataLoader::next(std::int64_t iter, HybridBatch& out) {
  const Timer timer;
  const std::int64_t first = iter * gn_;
  const std::int64_t my_first = first + first_local_;

  if (out.dense.size() != ln_ * data_.dense_dim()) {
    out.dense.reshape({ln_, data_.dense_dim()});
    out.labels.reshape({ln_});
  }
  out.owned_bags.resize(owned_.size());

  if (mode_ == LoaderMode::kFullGlobalBatch) {
    // Reference behaviour: materialize everything, then slice.
    data_.fill(first, gn_, scratch_);
    const std::int64_t d = data_.dense_dim();
    for (std::int64_t i = 0; i < ln_; ++i) {
      const std::int64_t src = first_local_ + i;
      for (std::int64_t j = 0; j < d; ++j) {
        out.dense[i * d + j] = scratch_.dense[src * d + j];
      }
      out.labels[i] = scratch_.labels[src];
    }
    for (std::size_t k = 0; k < owned_.size(); ++k) {
      const Shard& sh = owned_[k];
      const auto& src = scratch_.bags[static_cast<std::size_t>(sh.table)];
      auto& dst = out.owned_bags[k];
      if (sh.row_begin != 0 || sh.row_end != data_.rows(sh.table)) {
        rewrite_bags_to_shard(src, sh.row_begin, sh.row_end, dst);
        continue;
      }
      if (dst.indices.size() != src.indices.size()) {
        dst.indices.reshape({src.indices.size()});
        dst.offsets.reshape({gn_ + 1});
      }
      for (std::int64_t i = 0; i <= gn_; ++i) dst.offsets[i] = src.offsets[i];
      for (std::int64_t i = 0; i < src.indices.size(); ++i) {
        dst.indices[i] = src.indices[i];
      }
    }
  } else {
    // Optimized behaviour: only the local slice + owned shards' global bags.
    MiniBatch slice;
    data_.fill(my_first, ln_, slice);
    const std::int64_t d = data_.dense_dim();
    for (std::int64_t i = 0; i < ln_ * d; ++i) out.dense[i] = slice.dense[i];
    for (std::int64_t i = 0; i < ln_; ++i) out.labels[i] = slice.labels[i];
    for (std::size_t k = 0; k < owned_.size(); ++k) {
      const Shard& sh = owned_[k];
      if (sh.row_begin == 0 && sh.row_end == data_.rows(sh.table)) {
        data_.fill_table_bags(sh.table, first, gn_, out.owned_bags[k]);
      } else {
        data_.fill_table_bags(sh.table, first, gn_, bag_scratch_);
        rewrite_bags_to_shard(bag_scratch_, sh.row_begin, sh.row_end,
                              out.owned_bags[k]);
      }
    }
  }
  last_sec_ = timer.elapsed_sec();
}

void DataLoader::next_full(std::int64_t iter, MiniBatch& out) {
  const Timer timer;
  data_.fill(iter * gn_, gn_, out);
  last_sec_ = timer.elapsed_sec();
}

std::int64_t DataLoader::bytes_per_iteration() const {
  if (mode_ == LoaderMode::kFullGlobalBatch) {
    return gn_ * data_.bytes_per_sample();
  }
  // Local dense/labels + owned shards' global index streams (a row-split
  // shard still materializes its table's whole stream before the rewrite).
  std::int64_t bytes = ln_ * (data_.dense_dim() * 4 + 4);
  for (const auto& sh : owned_) {
    bytes += gn_ * data_.pooling(sh.table) * 8;
  }
  return bytes;
}

}  // namespace dlrm
