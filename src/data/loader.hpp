// Minibatch loaders for single-process and hybrid-parallel training.
//
// The paper observed that the reference DLRM data loader "always reads the
// data for the full global minibatch on each rank", making the loader cost
// grow linearly with the rank count under weak scaling (visible in Fig. 13's
// MLPerf compute bars). DataLoader reproduces both behaviours:
//
//   * kFullGlobalBatch — materializes all GN samples on every rank, then
//                        slices (the reference behaviour).
//   * kLocalSlice      — materializes only what the rank consumes: LN dense
//                        rows + labels, plus the GLOBAL bag batch for the
//                        shards this rank owns (model parallelism needs the
//                        whole minibatch for owned shards).
//
// Ownership is expressed as shards (table, row-range) from a ShardingPlan:
// full-table shards stream their table's bags unchanged; row-split shards
// get the bags *rewritten to shard-local rows* (indices outside the shard's
// row range dropped, the rest shifted by -row_begin) so the shard owner can
// compute its partial bag sums with an ordinary EmbeddingTable.
//
// GN need not divide by the rank count: local slices follow the chunk
// convention LN_r = GN*(r+1)/R - GN*r/R (matching ThreadComm's allgather).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sharding.hpp"
#include "data/dataset.hpp"

namespace dlrm {

enum class LoaderMode { kFullGlobalBatch, kLocalSlice };

/// Hybrid-parallel minibatch view for one rank: data-parallel slice of dense
/// features/labels plus model-parallel global bags for owned shards.
struct HybridBatch {
  Tensor<float> dense;   // [LN][D]
  Tensor<float> labels;  // [LN]
  /// One per owned shard, each GN bags; indices are shard-local rows.
  std::vector<BagBatch> owned_bags;
};

/// Rewrites `full` (bags over a whole table) to shard-local bags: keeps only
/// indices in [row_begin, row_end), shifted by -row_begin; offsets shrink
/// accordingly (bags may become empty). A full-range shard is a plain copy.
void rewrite_bags_to_shard(const BagBatch& full, std::int64_t row_begin,
                           std::int64_t row_end, BagBatch& out);

class DataLoader {
 public:
  /// Loads what rank `rank` of `plan` consumes: its LN slice plus global
  /// bags (rewritten to shard-local rows) for each shard it owns.
  DataLoader(const Dataset& data, std::int64_t global_batch, int rank,
             int ranks, const ShardingPlan& plan, LoaderMode mode);

  /// Historical convenience: full-table ownership by table id.
  DataLoader(const Dataset& data, std::int64_t global_batch, int rank,
             int ranks, const std::vector<std::int64_t>& owned_tables,
             LoaderMode mode);

  std::int64_t global_batch() const { return gn_; }
  std::int64_t local_batch() const { return ln_; }
  const std::vector<Shard>& owned_shards() const { return owned_; }

  /// A fresh loader over the same dataset/geometry with its own scratch
  /// buffers — what each prefetch worker drives (next() reuses internal
  /// staging, so one instance must never be shared across threads).
  std::unique_ptr<DataLoader> clone() const;

  /// Loads iteration `iter` (samples [iter*GN, (iter+1)*GN) of the stream).
  void next(std::int64_t iter, HybridBatch& out);

  /// Single-process convenience: the whole global batch as a MiniBatch.
  void next_full(std::int64_t iter, MiniBatch& out);

  /// Seconds spent in the last next() call (the loader cost the paper saw
  /// growing under weak scaling in the reference mode).
  double last_load_sec() const { return last_sec_; }

  /// Bytes materialized per iteration under the current mode.
  std::int64_t bytes_per_iteration() const;

 private:
  struct ShardListTag {};
  DataLoader(ShardListTag, const Dataset& data, std::int64_t global_batch,
             int rank, int ranks, std::vector<Shard> owned_shards,
             LoaderMode mode);

  const Dataset& data_;
  std::int64_t gn_, ln_, first_local_;  // local slice [first_local_, +ln_)
  int rank_, ranks_;
  std::vector<Shard> owned_;
  LoaderMode mode_;
  double last_sec_ = 0.0;
  MiniBatch scratch_;   // full-batch staging for kFullGlobalBatch
  BagBatch bag_scratch_;  // whole-table staging for row-split shards
};

}  // namespace dlrm
