// Minibatch loaders for single-process and hybrid-parallel training.
//
// The paper observed that the reference DLRM data loader "always reads the
// data for the full global minibatch on each rank", making the loader cost
// grow linearly with the rank count under weak scaling (visible in Fig. 13's
// MLPerf compute bars). DataLoader reproduces both behaviours:
//
//   * kFullGlobalBatch — materializes all GN samples on every rank, then
//                        slices (the reference behaviour).
//   * kLocalSlice      — materializes only what the rank consumes: LN dense
//                        rows + labels, plus the GLOBAL bag batch for the
//                        tables this rank owns (model parallelism needs the
//                        whole minibatch for owned tables).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace dlrm {

enum class LoaderMode { kFullGlobalBatch, kLocalSlice };

/// Hybrid-parallel minibatch view for one rank: data-parallel slice of dense
/// features/labels plus model-parallel global bags for owned tables.
struct HybridBatch {
  Tensor<float> dense;   // [LN][D]
  Tensor<float> labels;  // [LN]
  std::vector<BagBatch> owned_bags;  // one per owned table, each GN bags
};

class DataLoader {
 public:
  /// `owned_tables`: global table ids this rank owns (model parallel).
  DataLoader(const Dataset& data, std::int64_t global_batch, int rank,
             int ranks, std::vector<std::int64_t> owned_tables,
             LoaderMode mode);

  std::int64_t global_batch() const { return gn_; }
  std::int64_t local_batch() const { return ln_; }

  /// Loads iteration `iter` (samples [iter*GN, (iter+1)*GN) of the stream).
  void next(std::int64_t iter, HybridBatch& out);

  /// Single-process convenience: the whole global batch as a MiniBatch.
  void next_full(std::int64_t iter, MiniBatch& out);

  /// Seconds spent in the last next() call (the loader cost the paper saw
  /// growing under weak scaling in the reference mode).
  double last_load_sec() const { return last_sec_; }

  /// Bytes materialized per iteration under the current mode.
  std::int64_t bytes_per_iteration() const;

 private:
  const Dataset& data_;
  std::int64_t gn_, ln_;
  int rank_, ranks_;
  std::vector<std::int64_t> owned_;
  LoaderMode mode_;
  double last_sec_ = 0.0;
  MiniBatch scratch_;  // full-batch staging for kFullGlobalBatch
};

}  // namespace dlrm
