// Synthetic workload generation (paper Sect. V.D).
//
// Two generators:
//   * RandomDataset       — the paper's "random dataset" used for the Small
//                           and Large configs: uniform indices, Gaussian
//                           dense features, Bernoulli(1/2) labels.
//   * SyntheticCtrDataset — stands in for the Criteo Terabyte click logs of
//                           the MLPerf config: indices follow a Zipf
//                           distribution (hot rows → the cache-line
//                           contention of Fig. 7/8) and labels come from a
//                           planted logistic teacher so that DLRM training
//                           can actually reach ROC-AUC ≈ 0.80 (Fig. 16).
//
// Every sample is a pure function of (dataset seed, global sample index), so
// any rank can materialize any slice of any global minibatch independently —
// this is what lets the optimized loader read only its share while the
// naive loader reads the full global batch (the weak-scaling artifact of
// Fig. 13).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "kernels/embedding.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {

/// One minibatch of DLRM input: dense features, labels, and one bag batch
/// per embedding table.
struct MiniBatch {
  Tensor<float> dense;           // [N][D]
  Tensor<float> labels;          // [N]
  std::vector<BagBatch> bags;    // S entries, each with N bags

  std::int64_t batch() const { return labels.size(); }
};

/// Interface: deterministic sample-addressable synthetic dataset.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::int64_t dense_dim() const = 0;
  virtual std::int64_t tables() const = 0;
  /// Rows of table t.
  virtual std::int64_t rows(std::int64_t t) const = 0;
  /// Lookups per bag (nominal / maximum pooling factor P).
  virtual std::int64_t pooling() const = 0;
  /// Lookups per bag of table t (heterogeneous pooling: hot tables can be
  /// looked up more often per sample — the production skew of Gupta et al.).
  virtual std::int64_t pooling(std::int64_t t) const {
    (void)t;
    return pooling();
  }

  /// Fills `out` with samples [first, first + n) of the global stream.
  /// Deterministic: the same (first, n) always produces the same data.
  virtual void fill(std::int64_t first, std::int64_t n, MiniBatch& out) const = 0;

  /// Fills only the bag batch of table `t` for samples [first, first + n) —
  /// what a model-parallel rank needs for a table it owns.
  virtual void fill_table_bags(std::int64_t t, std::int64_t first,
                               std::int64_t n, BagBatch& out) const = 0;

  /// Bytes a loader must materialize per sample (dense + label + indices).
  std::int64_t bytes_per_sample() const {
    std::int64_t lookups = 0;
    for (std::int64_t t = 0; t < tables(); ++t) lookups += pooling(t);
    return dense_dim() * 4 + 4 + lookups * 8;
  }
};

/// Uniform-index dataset (Small / Large configs). Supports heterogeneous
/// per-table cardinalities (the MLPerf/Criteo table shape).
class RandomDataset final : public Dataset {
 public:
  RandomDataset(std::int64_t dense_dim, std::vector<std::int64_t> table_rows,
                std::int64_t pooling, std::uint64_t seed);
  /// Heterogeneous pooling: one lookup count per table.
  RandomDataset(std::int64_t dense_dim, std::vector<std::int64_t> table_rows,
                std::vector<std::int64_t> poolings, std::uint64_t seed);
  /// Convenience: `tables` tables of uniform `rows_per_table` rows.
  RandomDataset(std::int64_t dense_dim, std::int64_t tables,
                std::int64_t rows_per_table, std::int64_t pooling,
                std::uint64_t seed);

  std::int64_t dense_dim() const override { return d_; }
  std::int64_t tables() const override {
    return static_cast<std::int64_t>(rows_.size());
  }
  std::int64_t rows(std::int64_t t) const override {
    return rows_[static_cast<std::size_t>(t)];
  }
  std::int64_t pooling() const override { return p_; }
  std::int64_t pooling(std::int64_t t) const override {
    return pool_[static_cast<std::size_t>(t)];
  }

  void fill(std::int64_t first, std::int64_t n, MiniBatch& out) const override;
  void fill_table_bags(std::int64_t t, std::int64_t first, std::int64_t n,
                       BagBatch& out) const override;

 private:
  std::int64_t d_, p_;  // p_ = max per-table pooling (nominal)
  std::vector<std::int64_t> rows_;
  std::vector<std::int64_t> pool_;  // per-table pooling factors
  std::uint64_t seed_;
};

/// Parameters of the planted-teacher click-log generator.
struct CtrParams {
  std::int64_t dense_dim = 13;
  std::int64_t tables = 26;
  std::vector<std::int64_t> rows;  // per-table row counts
  std::int64_t pooling = 1;
  double index_skew = 1.05;   // Zipf exponent (Criteo-like head concentration)
  float dense_scale = 0.6f;   // teacher weight scale for dense features
  float sparse_scale = 1.4f;  // teacher weight scale for sparse features
  float bias = -1.1f;         // global logit bias (CTR << 50%)
  std::uint64_t seed = 2020;
};

/// Criteo-Terabyte stand-in with a learnable planted signal.
class SyntheticCtrDataset final : public Dataset {
 public:
  explicit SyntheticCtrDataset(CtrParams params);

  std::int64_t dense_dim() const override { return params_.dense_dim; }
  std::int64_t tables() const override {
    return static_cast<std::int64_t>(params_.rows.size());
  }
  std::int64_t rows(std::int64_t t) const override {
    return params_.rows[static_cast<std::size_t>(t)];
  }
  using Dataset::pooling;
  std::int64_t pooling() const override { return params_.pooling; }

  void fill(std::int64_t first, std::int64_t n, MiniBatch& out) const override;
  void fill_table_bags(std::int64_t t, std::int64_t first, std::int64_t n,
                       BagBatch& out) const override;

  /// The teacher's ROC-AUC upper bound estimate over `n` fresh samples
  /// (Bayes-optimal score = the true logit). Training should approach it.
  double teacher_auc(std::int64_t n) const;

 private:
  // Teacher row effect for (table t, row): deterministic hash → N(0,1)-ish.
  float row_effect(std::int64_t t, std::int64_t row) const;
  // Generates sample `idx` (indices + dense + logit), appending indices.
  void gen_sample(std::int64_t idx, float* dense, std::int64_t* indices,
                  float* label) const;

  CtrParams params_;
  std::vector<ZipfSampler> zipf_;
  std::vector<float> w_dense_;
};

/// Shapes a MiniBatch's tensors for (n samples, dataset layout); reuses
/// storage when already correctly sized.
void shape_minibatch(const Dataset& data, std::int64_t n, MiniBatch& out);

}  // namespace dlrm
