// Runtime feedback controller over the prefetch pipeline's shape.
//
// InTune (Nagrecha et al., PAPERS.md) shows recommender training is
// routinely input-bound and that a controller over the *measured* loader
// cost recovers the loss; the cross-stack characterization (Hsia et al.)
// shows the input-vs-compute balance shifts with model and batch
// configuration, so no static --prefetch-workers/--prefetch-depth setting
// is right everywhere. PipelineController closes the loop over the
// accounting PrefetchPipeline already keeps: each step the trainer feeds
// it the exposed wait and the step wall time; at window boundaries the
// controller compares the window's exposed-stall fraction against a
// target and grows (workers first, then ring depth) or shrinks (reverse
// order, with hysteresis) the pipeline shape within configured bounds.
//
// The controller only *decides*; the owning trainer performs the resize
// with the same drain -> rebuild -> seek()+prefill() mechanics reshard and
// warm restore use. The pipeline's reassembly contract (batch i owned by
// worker i mod W; the stream is bit-identical for any W and depth) makes
// every resize loss-neutral by construction.
//
// Determinism: decide() is a pure function of the fed sums and the
// controller's own counters — no clocks, no RNG. DistributedTrainer
// allreduces the window's [exposed, wall] sums first, so every rank feeds
// identical values and the SPMD decision is identical everywhere.
#pragma once

#include <cstdint>
#include <vector>

namespace dlrm {

struct AutotuneOptions {
  /// false = the controller is inert (static pipeline shape).
  bool enabled = false;
  /// Exposed-stall fraction the controller steers the window mean below:
  /// sum(exposed wait) / sum(step wall) over one window.
  double stall_target = 0.05;
  /// Steps per decision window (resizes only happen at window boundaries,
  /// which are step-counted and therefore SPMD-identical across ranks).
  std::int64_t window = 8;
  /// Bounds the controller moves within. Growth doubles workers up to
  /// max_workers, then doubles the ring depth up to max_depth; shrinking
  /// reverses that order down to the floors.
  int min_workers = 1;
  int max_workers = 8;
  int min_depth = 1;
  int max_depth = 8;
  /// Shrink hysteresis: only shrink after `shrink_streak` consecutive
  /// windows measured below stall_target * shrink_margin (a dead band
  /// between grow and shrink thresholds prevents flapping).
  double shrink_margin = 0.25;
  std::int64_t shrink_streak = 2;
  /// Windows to hold still after a resize, letting the rebuilt (and
  /// prefilled) pipeline settle before the next measurement counts.
  std::int64_t hold_windows = 1;
};

/// What the trainer should do at a window boundary.
struct PipelineDecision {
  bool resize = false;  // true: rebuild the pipeline at (workers, depth)
  int workers = 0;      // target shape (current shape when !resize)
  int depth = 0;
  double stall_frac = 0.0;  // the window's measured exposed-stall fraction
};

/// One convergence-trace entry per decision window: the shape the window
/// ran at, its measured stall fraction, and whether it triggered a resize.
struct AutotuneSample {
  std::int64_t step = 0;
  double stall_frac = 0.0;
  int workers = 0;
  int depth = 0;
  bool resized = false;
};

class PipelineController {
 public:
  /// Disabled controller (default-constructed trainers before wiring).
  PipelineController() = default;
  /// Starts at the trainer's configured (workers, depth); when enabled the
  /// initial shape must already lie within the configured bounds.
  PipelineController(AutotuneOptions options, int workers, int depth);

  bool enabled() const { return options_.enabled; }

  /// Per-step observation: seconds the step spent blocked on the pipeline
  /// (exposed) and the step's wall time. Call once per optimizer step.
  void observe(double exposed_sec, double wall_sec);

  /// True once `window` observations accumulated — time to decide().
  bool window_complete() const { return window_steps_ >= options_.window; }

  /// The pending window's local sums (what a distributed trainer
  /// allreduces before feeding decide()).
  double window_exposed_sec() const { return window_exposed_; }
  double window_wall_sec() const { return window_wall_; }

  /// Closes the window: computes the stall fraction from the (possibly
  /// allreduced) sums, updates the target shape, records the convergence
  /// trace, and resets the window. `step` only labels the trace entry.
  PipelineDecision decide(double exposed_sum, double wall_sum,
                          std::int64_t step);

  /// The shape the controller currently wants the pipeline at.
  int workers() const { return workers_; }
  int depth() const { return depth_; }

  std::int64_t resizes() const { return resizes_; }
  std::int64_t windows() const { return windows_; }
  double last_stall_frac() const { return last_stall_frac_; }
  const AutotuneOptions& options() const { return options_; }
  /// One entry per closed window — the convergence trace bench_fig13 and
  /// the end-of-run summary read.
  const std::vector<AutotuneSample>& trace() const { return trace_; }

 private:
  AutotuneOptions options_{};
  int workers_ = 1;
  int depth_ = 1;
  double window_exposed_ = 0.0;
  double window_wall_ = 0.0;
  std::int64_t window_steps_ = 0;
  std::int64_t hold_ = 0;          // windows left before resizing again
  std::int64_t low_streak_ = 0;    // consecutive windows in the shrink band
  std::int64_t resizes_ = 0;
  std::int64_t windows_ = 0;
  double last_stall_frac_ = 0.0;
  std::vector<AutotuneSample> trace_;
};

}  // namespace dlrm
