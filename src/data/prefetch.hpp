// Multi-worker sharded asynchronous data pipeline.
//
// The paper's Fig. 13 shows the reference loader's cost growing with rank
// count because it is paid synchronously inside every step, and InTune-style
// profiling shows a single producer thread saturating long before it can
// feed many compute cores. PrefetchPipeline generalizes the PR 2
// double-buffered producer to W worker threads: worker w materializes the
// deterministic interleaved shard {i : i mod W == w} of the batch stream
// into a bounded ring of slots, and the consumer reassembles the stream
// in iteration order. The consumer only blocks when every owner of the
// next batch has fallen behind — that blocked time is the *exposed* loader
// cost; the rest is hidden under compute.
//
// Determinism: every batch is a pure function of (dataset seed, global
// iteration), each worker drives its own loader clone, and the slot ring
// hands batches to the consumer strictly in iteration order — so the
// stream is bit-identical for any worker count W, any depth, and prefetch
// on or off. Non-sequential access (the legacy eval-through-the-training-
// pipeline path) flushes the ring and restarts every worker at the
// requested iteration; seek()/prefill() do the same repositioning
// explicitly and warm the ring before the first post-restore step.
//
// Slot ring invariants (all under mu_):
//   * S = depth + 1 slots; slot k hosts iterations base_ + k + m*S.
//   * A worker claims iteration i only when slot_of(i) is kFree AND its
//     next_iter equals i — so claims per slot happen in stream order and
//     at most S batches (ready + loading + checked out) exist at once,
//     which is both the backpressure bound and the deadlock-freedom
//     argument (the slot of the iteration the consumer waits for can only
//     be claimed by that iteration's owner).
//   * A seek bumps remapping_, waits for in-flight loads to drain (stale
//     results are discarded), then remaps every slot and worker cursor.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "data/loader.hpp"

namespace dlrm {

struct PrefetchOptions {
  /// false = synchronous passthrough (the load runs inline, no threads).
  bool enabled = true;
  /// Pipeline depth N: how many batches the workers may run ahead of the
  /// consumer (bounded-ring backpressure). 1 = classic double buffering.
  int depth = 2;
  /// Worker threads sharing the stream: batch i is owned by worker i % W.
  int workers = 1;
  /// Test instrumentation: called by worker `w` (outside the pipeline lock)
  /// just before it materializes iteration `iter`. Lets the stress suite
  /// inject randomized producer stalls; leave empty in production.
  std::function<void(int w, std::int64_t iter)> stall_hook = {};
};

/// The worker/ring engine, generic over the batch type so the same pipeline
/// feeds DistributedTrainer (HybridBatch via DataLoader::next) and Trainer
/// (MiniBatch via DataLoader::next_full). `Batch` must be default-
/// constructible; load functions must be callable from worker threads and
/// touch only their own loader state.
template <typename Batch>
class PrefetchPipeline {
 public:
  using LoadFn = std::function<void(std::int64_t iter, Batch& out)>;

  /// `sync_load` serves the disabled (passthrough) mode from the consumer
  /// thread; `worker_loads[w]` is the private load function of worker w
  /// (exactly options.workers entries when enabled).
  PrefetchPipeline(LoadFn sync_load, std::vector<LoadFn> worker_loads,
                   PrefetchOptions options)
      : sync_load_(std::move(sync_load)),
        worker_loads_(std::move(worker_loads)),
        options_(std::move(options)) {
    if (!options_.enabled) return;
    DLRM_CHECK(options_.depth >= 1, "prefetch depth must be >= 1");
    DLRM_CHECK(options_.workers >= 1, "prefetch workers must be >= 1");
    DLRM_CHECK(static_cast<int>(worker_loads_.size()) == options_.workers,
               "need one load function per prefetch worker");
    slots_.resize(static_cast<std::size_t>(options_.depth) + 1);
    for (int k = 0; k < ring_size(); ++k) {
      slots_[static_cast<std::size_t>(k)].next_iter = k;
    }
    worker_next_.resize(static_cast<std::size_t>(options_.workers));
    for (int w = 0; w < options_.workers; ++w) {
      worker_next_[static_cast<std::size_t>(w)] = w;
    }
    threads_.reserve(static_cast<std::size_t>(options_.workers));
    for (int w = 0; w < options_.workers; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~PrefetchPipeline() {
    if (threads_.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_worker_.notify_all();
    cv_consumer_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  /// Returns the batch for iteration `iter`. The reference stays valid
  /// until the next call. Calling with iter != previous+1 reseeks the
  /// pipeline (flush + restart of every worker, counted in reseeks()).
  const Batch& next(std::int64_t iter) {
    if (!options_.enabled) return sync_next(iter);

    const Timer wait_timer;
    std::unique_lock<std::mutex> lock(mu_);
    release_checked_out();
    if (iter != expect_) {
      ++reseeks_;
      do_seek(lock, iter);
    }
    const int k = slot_of(iter);
    Slot& slot = slots_[static_cast<std::size_t>(k)];
    cv_consumer_.wait(lock, [&] {
      return slot.state == Slot::kReady && slot.iter == iter;
    });
    slot.state = Slot::kCheckedOut;
    checked_out_ = k;
    ++expect_;
    last_wait_sec_ = wait_timer.elapsed_sec();
    last_load_sec_ = slot.load_sec;
    total_wait_sec_ += last_wait_sec_;
    total_load_sec_ += last_load_sec_;
    return slot.batch;
  }

  /// Repositions the stream so the next call to next() expects `iter` and
  /// the workers refill from there — without consuming a batch and without
  /// counting as a reseek (this is the explicit post-restore warm-up path).
  void seek(std::int64_t iter) {
    if (!options_.enabled) {
      expect_ = iter;
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    release_checked_out();
    if (iter != expect_) do_seek(lock, iter);
  }

  /// Blocks until at least min(n, depth) batches are materialized and
  /// ready for hand-off (n < 0 = a full pipeline). Combined with seek(),
  /// this closes the "first post-restore step pays the full loader cost"
  /// gap: restore seeks to the saved cursor and refills before step 1.
  void prefill(int n = -1) {
    if (!options_.enabled) return;
    std::unique_lock<std::mutex> lock(mu_);
    // depth == ring_size() - 1 ready slots are reachable even with a batch
    // checked out, so the cap below is always satisfiable.
    const int want = n < 0 ? options_.depth : std::min(n, options_.depth);
    cv_consumer_.wait(lock, [&] { return stop_ || ready_count() >= want; });
  }

  bool enabled() const { return options_.enabled; }
  int depth() const { return options_.depth; }
  int workers() const { return options_.enabled ? options_.workers : 0; }

  /// Seconds the last next() spent blocked waiting on the workers — the
  /// loader cost still *exposed* to the training step.
  double last_wait_sec() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_wait_sec_;
  }
  /// Seconds a worker spent materializing the last returned batch (its
  /// full load cost, whether hidden or exposed).
  double last_load_sec() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_load_sec_;
  }

  /// Cumulative accounting across all next() calls. Guarded by mu_ like
  /// the writes in next(), so samplers (e.g. PipelineController, a
  /// monitoring thread) never race the consumer's accounting update.
  double total_wait_sec() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_wait_sec_;
  }
  double total_load_sec() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_load_sec_;
  }

  /// Batches fully materialized by the workers so far (includes batches
  /// prefetched ahead and batches discarded by a reseek).
  std::int64_t batches_loaded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return loaded_;
  }

  /// Batches currently materialized and waiting for hand-off.
  int ready_batches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ready_count();
  }

  /// Implicit pipeline flushes caused by non-sequential next() calls (the
  /// legacy eval path reseeks twice per eval pass; the dedicated eval
  /// stream keeps this at zero on the training pipeline).
  std::int64_t reseeks() const { return reseeks_; }

  /// The iteration the next sequential next() call will return — the
  /// stream cursor (advanced by next(), repositioned by seek()).
  std::int64_t next_iter() const { return expect_; }

 private:
  struct Slot {
    enum State { kFree, kLoading, kReady, kCheckedOut };
    Batch batch;
    State state = kFree;
    std::int64_t iter = -1;       // iteration held while kLoading..kCheckedOut
    std::int64_t next_iter = 0;   // iteration this slot will host next
    double load_sec = 0.0;
  };

  int ring_size() const { return static_cast<int>(slots_.size()); }

  int slot_of(std::int64_t iter) const {  // mu_ held; iter >= base_
    return static_cast<int>((iter - base_) % ring_size());
  }

  int ready_count() const {  // mu_ held
    int n = 0;
    for (const Slot& s : slots_) n += s.state == Slot::kReady ? 1 : 0;
    return n;
  }

  bool claimable(int w) const {  // mu_ held
    if (remapping_) return false;
    const std::int64_t iter = worker_next_[static_cast<std::size_t>(w)];
    const Slot& s = slots_[static_cast<std::size_t>(slot_of(iter))];
    return s.state == Slot::kFree && s.next_iter == iter;
  }

  void release_checked_out() {  // mu_ held
    if (checked_out_ < 0) return;
    Slot& s = slots_[static_cast<std::size_t>(checked_out_)];
    s.state = Slot::kFree;
    s.next_iter = s.iter + ring_size();
    checked_out_ = -1;
    cv_worker_.notify_all();
  }

  /// mu_ held via `lock`; the checked-out slot must already be released.
  void do_seek(std::unique_lock<std::mutex>& lock, std::int64_t iter) {
    // Drain: workers mid-load finish into their slots (harmless — the
    // results are discarded), and no new claim can start while remapping_.
    remapping_ = true;
    cv_consumer_.wait(lock, [&] { return loading_ == 0; });
    base_ = iter;
    expect_ = iter;
    for (int k = 0; k < ring_size(); ++k) {
      Slot& s = slots_[static_cast<std::size_t>(k)];
      s.state = Slot::kFree;
      s.iter = -1;
      s.next_iter = base_ + k;
    }
    const int W = options_.workers;
    for (int w = 0; w < W; ++w) {
      // Smallest i >= base_ with i mod W == w (base_ may be any sign-free
      // iteration index; iterations are never negative).
      const std::int64_t off = (w - base_ % W + W) % W;
      worker_next_[static_cast<std::size_t>(w)] = base_ + off;
    }
    remapping_ = false;
    cv_worker_.notify_all();
  }

  void worker_loop(int w) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_worker_.wait(lock, [&] { return stop_ || claimable(w); });
      if (stop_) return;
      const std::int64_t iter = worker_next_[static_cast<std::size_t>(w)];
      Slot& slot = slots_[static_cast<std::size_t>(slot_of(iter))];
      slot.state = Slot::kLoading;
      slot.iter = iter;
      worker_next_[static_cast<std::size_t>(w)] += options_.workers;
      ++loading_;
      lock.unlock();

      if (options_.stall_hook) options_.stall_hook(w, iter);
      const Timer t;
      worker_loads_[static_cast<std::size_t>(w)](iter, slot.batch);
      const double sec = t.elapsed_sec();

      lock.lock();
      --loading_;
      ++loaded_;
      if (remapping_) {
        // A seek started while we were loading: discard; do_seek remaps
        // this slot once the drain completes.
        slot.state = Slot::kFree;
      } else {
        slot.load_sec = sec;
        slot.state = Slot::kReady;
      }
      cv_consumer_.notify_all();
    }
  }

  const Batch& sync_next(std::int64_t iter) {
    const Timer t;
    sync_load_(iter, sync_batch_);
    // No worker threads exist in disabled mode, but the accounting still
    // goes under mu_ so the (lock-guarded) accessors stay uniform.
    std::lock_guard<std::mutex> lock(mu_);
    last_load_sec_ = t.elapsed_sec();
    last_wait_sec_ = last_load_sec_;  // fully exposed: nothing is hidden
    total_wait_sec_ += last_wait_sec_;
    total_load_sec_ += last_load_sec_;
    expect_ = iter + 1;
    ++loaded_;
    return sync_batch_;
  }

  LoadFn sync_load_;
  std::vector<LoadFn> worker_loads_;
  PrefetchOptions options_;

  // Ring state (guarded by mu_). Slots cycle: free -> loading -> ready ->
  // checked out (lent to the consumer) -> free.
  mutable std::mutex mu_;
  std::condition_variable cv_worker_;    // slot claimable / stop / remap done
  std::condition_variable cv_consumer_;  // slot ready / drain progress
  std::vector<Slot> slots_;
  std::vector<std::int64_t> worker_next_;  // next iteration worker w loads
  std::int64_t base_ = 0;    // seek base: slot k hosts base_ + k + m*S
  std::int64_t expect_ = 0;  // next iteration the consumer will take
  int checked_out_ = -1;     // slot currently lent to the consumer
  int loading_ = 0;          // slots being written by workers right now
  bool remapping_ = false;   // seek drain in progress: no new claims
  bool stop_ = false;
  std::int64_t loaded_ = 0;
  std::vector<std::thread> threads_;

  // Wait/load accounting (written by the consumer under mu_; accessors
  // lock mu_ too so external samplers never read a torn update).
  std::int64_t reseeks_ = 0;
  double last_wait_sec_ = 0.0, last_load_sec_ = 0.0;
  double total_wait_sec_ = 0.0, total_load_sec_ = 0.0;

  Batch sync_batch_;  // passthrough staging when disabled
};

/// Per-worker loader clones plus their bound load functions — the wiring
/// both pipeline owners need (PrefetchLoader over DataLoader::next, Trainer
/// over DataLoader::next_full). The clones must outlive the pipeline whose
/// workers drive them.
template <typename Batch>
struct WorkerLoaders {
  std::vector<std::unique_ptr<DataLoader>> clones;
  std::vector<typename PrefetchPipeline<Batch>::LoadFn> fns;
};

/// Clones `loader` once per enabled worker and binds the `load` member
/// (&DataLoader::next or &DataLoader::next_full) to each clone.
template <typename Batch>
WorkerLoaders<Batch> make_worker_loaders(
    const DataLoader& loader, const PrefetchOptions& options,
    void (DataLoader::*load)(std::int64_t, Batch&)) {
  WorkerLoaders<Batch> out;
  if (!options.enabled || options.workers < 1) return out;
  out.clones.reserve(static_cast<std::size_t>(options.workers));
  out.fns.reserve(static_cast<std::size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    out.clones.push_back(loader.clone());
    DataLoader* l = out.clones.back().get();
    out.fns.push_back(
        [l, load](std::int64_t iter, Batch& b) { (l->*load)(iter, b); });
  }
  return out;
}

/// The hybrid-parallel instantiation: W workers over per-worker clones of a
/// DataLoader (DataLoader::next uses internal scratch, so each worker must
/// drive its own instance), handing HybridBatches to one rank's trainer.
class PrefetchLoader {
 public:
  /// Wraps `loader`. While enabled, each worker drives a private clone of
  /// `loader`; the synchronous passthrough (and callers asking the loader
  /// for geometry/bytes) keep using `loader` itself, which must outlive
  /// this object.
  PrefetchLoader(DataLoader& loader, PrefetchOptions options);

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// See PrefetchPipeline::next.
  const HybridBatch& next(std::int64_t iter) { return pipe_.next(iter); }
  /// See PrefetchPipeline::seek / prefill (warm restore after resume).
  void seek(std::int64_t iter) { pipe_.seek(iter); }
  void prefill(int n = -1) { pipe_.prefill(n); }

  bool enabled() const { return pipe_.enabled(); }
  int depth() const { return pipe_.depth(); }
  int workers() const { return pipe_.workers(); }

  double last_wait_sec() const { return pipe_.last_wait_sec(); }
  double last_load_sec() const { return pipe_.last_load_sec(); }
  double total_wait_sec() const { return pipe_.total_wait_sec(); }
  double total_load_sec() const { return pipe_.total_load_sec(); }
  std::int64_t batches_loaded() const { return pipe_.batches_loaded(); }
  int ready_batches() const { return pipe_.ready_batches(); }
  std::int64_t reseeks() const { return pipe_.reseeks(); }
  std::int64_t next_iter() const { return pipe_.next_iter(); }

 private:
  WorkerLoaders<HybridBatch> workers_;
  PrefetchPipeline<HybridBatch> pipe_;
};

}  // namespace dlrm
