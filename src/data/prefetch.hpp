// Asynchronous double-buffered data pipeline over DataLoader.
//
// The paper's Fig. 13 shows the reference loader's cost growing with rank
// count because it is paid synchronously inside every step. PrefetchLoader
// moves DataLoader::next() onto a background producer thread with a bounded
// ring of pre-materialized HybridBatches, so iteration i+1's data loads while
// iteration i computes. The consumer only blocks when the producer has fallen
// behind — that blocked time is the *exposed* loader cost; the rest is hidden
// under compute.
//
// Determinism: batches are produced by the same DataLoader::next(iter) calls
// in the same order as the synchronous path, and every sample is a pure
// function of (dataset seed, global index), so prefetch on/off yields
// bit-identical batches. Non-sequential access (e.g. switching between the
// training and evaluation streams) flushes the pipeline and restarts the
// producer at the requested iteration.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "data/loader.hpp"

namespace dlrm {

struct PrefetchOptions {
  /// false = synchronous passthrough (DataLoader::next inline, no thread).
  bool enabled = true;
  /// Pipeline depth N: how many batches the producer may run ahead of the
  /// consumer (bounded-queue backpressure). 1 = classic double buffering.
  int depth = 2;
};

class PrefetchLoader {
 public:
  /// Wraps `loader`. While enabled, the producer thread is the only caller
  /// of loader.next(); the loader must outlive this object.
  PrefetchLoader(DataLoader& loader, PrefetchOptions options);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// Returns the batch for iteration `iter` (samples [iter*GN, (iter+1)*GN)
  /// of the stream). The reference stays valid until the next call. Calling
  /// with iter != previous+1 reseeks the pipeline (flush + restart).
  const HybridBatch& next(std::int64_t iter);

  bool enabled() const { return options_.enabled; }
  int depth() const { return options_.depth; }

  /// Seconds the last next() spent blocked waiting on the producer — the
  /// loader cost still *exposed* to the training step.
  double last_wait_sec() const { return last_wait_sec_; }
  /// Seconds the producer spent materializing the last returned batch
  /// (its full DataLoader cost, whether hidden or exposed).
  double last_load_sec() const { return last_load_sec_; }

  /// Cumulative accounting across all next() calls.
  double total_wait_sec() const { return total_wait_sec_; }
  double total_load_sec() const { return total_load_sec_; }

  /// Batches fully materialized by the producer so far (includes batches
  /// prefetched ahead and batches discarded by a reseek).
  std::int64_t batches_loaded() const;

 private:
  struct Slot {
    HybridBatch batch;
    std::int64_t iter = -1;
    std::uint64_t epoch = 0;
    double load_sec = 0.0;
  };

  void producer_loop();
  const HybridBatch& sync_next(std::int64_t iter);

  DataLoader& loader_;
  PrefetchOptions options_;

  // Pipeline state (guarded by mu_). Slots cycle: free -> loading -> ready
  // -> checked out (returned to the consumer) -> free.
  mutable std::mutex mu_;
  std::condition_variable cv_producer_;  // free slot available / stop / seek
  std::condition_variable cv_consumer_;  // ready slot available
  std::vector<Slot> slots_;
  std::deque<int> free_;   // slot indices the producer may fill
  std::deque<int> ready_;  // filled slots in iteration order
  int checked_out_ = -1;   // slot currently lent to the consumer
  std::int64_t produce_iter_ = 0;  // next iteration the producer will load
  std::uint64_t epoch_ = 0;        // bumped on reseek; stale loads discarded
  std::int64_t loaded_ = 0;
  bool stop_ = false;
  std::thread producer_;

  // Consumer-side accounting (consumer thread only).
  std::int64_t expect_iter_ = 0;
  double last_wait_sec_ = 0.0, last_load_sec_ = 0.0;
  double total_wait_sec_ = 0.0, total_load_sec_ = 0.0;

  HybridBatch sync_batch_;  // passthrough staging when disabled
};

}  // namespace dlrm
