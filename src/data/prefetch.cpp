#include "data/prefetch.hpp"

namespace dlrm {

PrefetchLoader::PrefetchLoader(DataLoader& loader, PrefetchOptions options)
    : workers_(make_worker_loaders<HybridBatch>(loader, options,
                                                &DataLoader::next)),
      pipe_([&loader](std::int64_t iter,
                      HybridBatch& out) { loader.next(iter, out); },
            workers_.fns, std::move(options)) {}

}  // namespace dlrm
