#include "data/prefetch.hpp"

#include "common/log.hpp"
#include "common/timer.hpp"

namespace dlrm {

PrefetchLoader::PrefetchLoader(DataLoader& loader, PrefetchOptions options)
    : loader_(loader), options_(options) {
  if (!options_.enabled) return;
  DLRM_CHECK(options_.depth >= 1, "prefetch depth must be >= 1");
  // depth slots may run ahead of the consumer; one extra slot stays lent out
  // to the consumer while it computes on the previous batch.
  slots_.resize(static_cast<std::size_t>(options_.depth) + 1);
  for (int i = 0; i < static_cast<int>(slots_.size()); ++i) free_.push_back(i);
  producer_ = std::thread([this] { producer_loop(); });
}

PrefetchLoader::~PrefetchLoader() {
  if (!producer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_producer_.notify_all();
  cv_consumer_.notify_all();
  producer_.join();
}

void PrefetchLoader::producer_loop() {
  for (;;) {
    int idx;
    std::int64_t iter;
    std::uint64_t epoch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_producer_.wait(lock, [&] { return stop_ || !free_.empty(); });
      if (stop_) return;
      idx = free_.front();
      free_.pop_front();
      iter = produce_iter_++;
      epoch = epoch_;
    }

    Slot& slot = slots_[static_cast<std::size_t>(idx)];
    loader_.next(iter, slot.batch);
    slot.iter = iter;
    slot.epoch = epoch;
    slot.load_sec = loader_.last_load_sec();

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++loaded_;
      if (epoch == epoch_) {
        ready_.push_back(idx);
      } else {
        free_.push_back(idx);  // reseek happened mid-load: discard
      }
    }
    cv_consumer_.notify_all();
    // A discarded slot means the producer can immediately retry; a ready one
    // may unblock a waiting consumer. Either way wake the producer check too
    // (it re-evaluates free_ on its own loop iteration).
  }
}

const HybridBatch& PrefetchLoader::sync_next(std::int64_t iter) {
  loader_.next(iter, sync_batch_);
  last_load_sec_ = loader_.last_load_sec();
  last_wait_sec_ = last_load_sec_;  // fully exposed: nothing is hidden
  total_wait_sec_ += last_wait_sec_;
  total_load_sec_ += last_load_sec_;
  ++expect_iter_;
  return sync_batch_;
}

const HybridBatch& PrefetchLoader::next(std::int64_t iter) {
  if (!options_.enabled) return sync_next(iter);

  const Timer wait_timer;
  int idx;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Return the slot lent out by the previous call.
    if (checked_out_ >= 0) {
      free_.push_back(checked_out_);
      checked_out_ = -1;
      cv_producer_.notify_one();
    }
    // Non-sequential access: flush everything queued and restart the
    // producer at `iter`. Slots still loading are tagged with the old epoch
    // and get discarded when they land.
    if (iter != expect_iter_) {
      ++epoch_;
      for (int r : ready_) free_.push_back(r);
      ready_.clear();
      produce_iter_ = iter;
      expect_iter_ = iter;
      cv_producer_.notify_one();
    }
    cv_consumer_.wait(lock, [&] {
      return !ready_.empty() &&
             slots_[static_cast<std::size_t>(ready_.front())].epoch == epoch_;
    });
    idx = ready_.front();
    ready_.pop_front();
    checked_out_ = idx;
  }
  last_wait_sec_ = wait_timer.elapsed_sec();

  const Slot& slot = slots_[static_cast<std::size_t>(idx)];
  DLRM_CHECK(slot.iter == iter, "prefetch hand-off out of order");
  last_load_sec_ = slot.load_sec;
  total_wait_sec_ += last_wait_sec_;
  total_load_sec_ += last_load_sec_;
  ++expect_iter_;
  return slot.batch;
}

std::int64_t PrefetchLoader::batches_loaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return loaded_;
}

}  // namespace dlrm
