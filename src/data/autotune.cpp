#include "data/autotune.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dlrm {

PipelineController::PipelineController(AutotuneOptions options, int workers,
                                       int depth)
    : options_(options), workers_(workers), depth_(depth) {
  DLRM_CHECK(workers >= 1, "autotune: initial workers must be >= 1");
  DLRM_CHECK(depth >= 1, "autotune: initial depth must be >= 1");
  if (!options_.enabled) return;
  DLRM_CHECK(options_.window >= 1, "autotune: window must be >= 1");
  DLRM_CHECK(options_.min_workers >= 1 &&
                 options_.max_workers >= options_.min_workers,
             "autotune: worker bounds must satisfy 1 <= min <= max");
  DLRM_CHECK(options_.min_depth >= 1 &&
                 options_.max_depth >= options_.min_depth,
             "autotune: depth bounds must satisfy 1 <= min <= max");
  DLRM_CHECK(workers >= options_.min_workers &&
                 workers <= options_.max_workers,
             "autotune: initial workers outside [min_workers, max_workers]");
  DLRM_CHECK(depth >= options_.min_depth && depth <= options_.max_depth,
             "autotune: initial depth outside [min_depth, max_depth]");
  DLRM_CHECK(options_.hold_windows >= 0, "autotune: hold_windows must be >= 0");
  DLRM_CHECK(options_.shrink_streak >= 1,
             "autotune: shrink_streak must be >= 1");
}

void PipelineController::observe(double exposed_sec, double wall_sec) {
  if (!options_.enabled) return;
  window_exposed_ += exposed_sec;
  window_wall_ += wall_sec;
  ++window_steps_;
}

PipelineDecision PipelineController::decide(double exposed_sum,
                                            double wall_sum,
                                            std::int64_t step) {
  PipelineDecision d;
  d.workers = workers_;
  d.depth = depth_;
  if (!options_.enabled) return d;

  const double frac = wall_sum > 0.0 ? exposed_sum / wall_sum : 0.0;
  d.stall_frac = frac;
  last_stall_frac_ = frac;
  ++windows_;
  trace_.push_back(AutotuneSample{step, frac, workers_, depth_, false});

  // Reset the window before any early return so the next one starts clean.
  window_exposed_ = 0.0;
  window_wall_ = 0.0;
  window_steps_ = 0;

  if (hold_ > 0) {
    --hold_;
    return d;
  }

  if (frac > options_.stall_target) {
    // Input-bound: add parallelism first (more workers hide longer
    // loads), then buffer depth (a deeper ring rides out jitter).
    low_streak_ = 0;
    if (workers_ < options_.max_workers) {
      workers_ = std::min(workers_ * 2, options_.max_workers);
      d.resize = true;
    } else if (depth_ < options_.max_depth) {
      depth_ = std::min(depth_ * 2, options_.max_depth);
      d.resize = true;
    }
  } else if (frac < options_.stall_target * options_.shrink_margin) {
    // Comfortably under target: shrink in reverse order, but only after a
    // streak of low windows so one quiet window doesn't flap the shape.
    ++low_streak_;
    if (low_streak_ >= options_.shrink_streak) {
      low_streak_ = 0;
      if (depth_ > options_.min_depth) {
        depth_ = std::max(depth_ / 2, options_.min_depth);
        d.resize = true;
      } else if (workers_ > options_.min_workers) {
        workers_ = std::max(workers_ / 2, options_.min_workers);
        d.resize = true;
      }
    }
  } else {
    low_streak_ = 0;
  }

  if (d.resize) {
    ++resizes_;
    hold_ = options_.hold_windows;
    d.workers = workers_;
    d.depth = depth_;
    trace_.back().resized = true;
  }
  return d;
}

}  // namespace dlrm
