#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace dlrm {

void shape_minibatch(const Dataset& data, std::int64_t n, MiniBatch& out) {
  if (out.dense.size() != n * data.dense_dim()) {
    out.dense.reshape({n, data.dense_dim()});
  }
  if (out.labels.size() != n) out.labels.reshape({n});
  out.bags.resize(static_cast<std::size_t>(data.tables()));
  for (std::int64_t t = 0; t < data.tables(); ++t) {
    auto& b = out.bags[static_cast<std::size_t>(t)];
    const std::int64_t p = data.pooling(t);
    if (b.indices.size() != n * p) {
      b.indices.reshape({n * p});
      b.offsets.reshape({n + 1});
      for (std::int64_t i = 0; i <= n; ++i) b.offsets[i] = i * p;
    }
  }
}

// ---------------------------------------------------------------------------
// RandomDataset
// ---------------------------------------------------------------------------

RandomDataset::RandomDataset(std::int64_t dense_dim,
                             std::vector<std::int64_t> table_rows,
                             std::int64_t pooling, std::uint64_t seed)
    : RandomDataset(dense_dim, std::move(table_rows),
                    std::vector<std::int64_t>(), seed) {
  DLRM_CHECK(pooling > 0, "bad dataset shape");
  p_ = pooling;
  pool_.assign(rows_.size(), pooling);
}

RandomDataset::RandomDataset(std::int64_t dense_dim,
                             std::vector<std::int64_t> table_rows,
                             std::vector<std::int64_t> poolings,
                             std::uint64_t seed)
    : d_(dense_dim), p_(1), rows_(std::move(table_rows)),
      pool_(std::move(poolings)), seed_(seed) {
  DLRM_CHECK(d_ > 0 && !rows_.empty(), "bad dataset shape");
  for (auto m : rows_) DLRM_CHECK(m > 0, "table rows must be positive");
  if (pool_.empty()) pool_.assign(rows_.size(), 1);  // delegating ctor fills in
  DLRM_CHECK(pool_.size() == rows_.size(), "need one pooling factor per table");
  for (auto p : pool_) {
    DLRM_CHECK(p > 0, "pooling factors must be positive");
    p_ = std::max(p_, p);
  }
}

RandomDataset::RandomDataset(std::int64_t dense_dim, std::int64_t tables,
                             std::int64_t rows_per_table, std::int64_t pooling,
                             std::uint64_t seed)
    : RandomDataset(dense_dim,
                    std::vector<std::int64_t>(static_cast<std::size_t>(tables),
                                              rows_per_table),
                    pooling, seed) {}

void RandomDataset::fill(std::int64_t first, std::int64_t n,
                         MiniBatch& out) const {
  shape_minibatch(*this, n, out);
  const std::int64_t s = tables();
  for (std::int64_t i = 0; i < n; ++i) {
    Rng rng(seed_ ^ (0x5851F42D4C957F2Dull * static_cast<std::uint64_t>(first + i)));
    float* dense = out.dense.data() + i * d_;
    for (std::int64_t j = 0; j < d_; ++j) dense[j] = rng.gaussian();
    out.labels[i] = rng.next_float() < 0.5f ? 0.0f : 1.0f;
    for (std::int64_t t = 0; t < s; ++t) {
      const std::int64_t p = pool_[static_cast<std::size_t>(t)];
      std::int64_t* idx = out.bags[static_cast<std::size_t>(t)].indices.data() + i * p;
      for (std::int64_t k = 0; k < p; ++k) {
        idx[k] = rng.next_index(rows_[static_cast<std::size_t>(t)]);
      }
    }
  }
}

void RandomDataset::fill_table_bags(std::int64_t t, std::int64_t first,
                                    std::int64_t n, BagBatch& out) const {
  const std::int64_t p = pool_[static_cast<std::size_t>(t)];
  if (out.indices.size() != n * p) {
    out.indices.reshape({n * p});
    out.offsets.reshape({n + 1});
    for (std::int64_t i = 0; i <= n; ++i) out.offsets[i] = i * p;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    Rng rng(seed_ ^ (0x5851F42D4C957F2Dull * static_cast<std::uint64_t>(first + i)));
    // Reproduce the per-sample stream: skip dense + label + earlier tables.
    for (std::int64_t j = 0; j < d_; ++j) (void)rng.gaussian();
    (void)rng.next_float();
    for (std::int64_t tt = 0; tt < t; ++tt) {
      for (std::int64_t k = 0; k < pool_[static_cast<std::size_t>(tt)]; ++k) {
        (void)rng.next_index(rows_[static_cast<std::size_t>(tt)]);
      }
    }
    std::int64_t* idx = out.indices.data() + i * p;
    for (std::int64_t k = 0; k < p; ++k) {
      idx[k] = rng.next_index(rows_[static_cast<std::size_t>(t)]);
    }
  }
}

// ---------------------------------------------------------------------------
// SyntheticCtrDataset
// ---------------------------------------------------------------------------

SyntheticCtrDataset::SyntheticCtrDataset(CtrParams params)
    : params_(std::move(params)) {
  DLRM_CHECK(!params_.rows.empty(), "need at least one table");
  DLRM_CHECK(params_.dense_dim > 0 && params_.pooling > 0, "bad shape");
  zipf_.reserve(params_.rows.size());
  for (auto m : params_.rows) {
    DLRM_CHECK(m > 0, "table rows must be positive");
    zipf_.emplace_back(m, params_.index_skew);
  }
  // Teacher dense weights: fixed, unit-normalized direction.
  Rng rng(params_.seed * 7919 + 13);
  w_dense_.resize(static_cast<std::size_t>(params_.dense_dim));
  float norm = 0.0f;
  for (auto& w : w_dense_) {
    w = rng.gaussian();
    norm += w * w;
  }
  norm = std::sqrt(std::max(norm, 1e-12f));
  for (auto& w : w_dense_) w = w / norm * params_.dense_scale;
}

float SyntheticCtrDataset::row_effect(std::int64_t t, std::int64_t row) const {
  // Deterministic per-(table,row) effect without storing 200M floats: hash
  // the pair and map to an approximate standard normal (sum of 4 uniforms).
  std::uint64_t h = params_.seed ^ (static_cast<std::uint64_t>(t) << 40) ^
                    static_cast<std::uint64_t>(row) * 0x9E3779B97F4A7C15ull;
  float sum = 0.0f;
  for (int i = 0; i < 4; ++i) {
    sum += static_cast<float>(detail::splitmix64(h) >> 40) * 0x1.0p-24f;
  }
  // Irwin–Hall(4): mean 2, var 1/3 → standardize.
  return (sum - 2.0f) * 1.7320508f;
}

void SyntheticCtrDataset::gen_sample(std::int64_t idx, float* dense,
                                     std::int64_t* indices,
                                     float* label) const {
  const std::int64_t S = tables();
  const std::int64_t P = params_.pooling;
  Rng rng(params_.seed ^
          (0xD1342543DE82EF95ull * static_cast<std::uint64_t>(idx + 1)));
  float logit = params_.bias;
  for (std::int64_t j = 0; j < params_.dense_dim; ++j) {
    dense[j] = rng.gaussian();
    logit += dense[j] * w_dense_[static_cast<std::size_t>(j)];
  }
  const float snorm =
      params_.sparse_scale / std::sqrt(static_cast<float>(S * P));
  for (std::int64_t t = 0; t < S; ++t) {
    for (std::int64_t k = 0; k < P; ++k) {
      const std::int64_t row = zipf_[static_cast<std::size_t>(t)](rng);
      indices[t * P + k] = row;
      logit += row_effect(t, row) * snorm;
    }
  }
  const float p = 1.0f / (1.0f + std::exp(-logit));
  *label = rng.next_float() < p ? 1.0f : 0.0f;
}

void SyntheticCtrDataset::fill(std::int64_t first, std::int64_t n,
                               MiniBatch& out) const {
  shape_minibatch(*this, n, out);
  const std::int64_t S = tables(), P = params_.pooling;
  std::vector<std::int64_t> idx(static_cast<std::size_t>(S * P));
  for (std::int64_t i = 0; i < n; ++i) {
    gen_sample(first + i, out.dense.data() + i * params_.dense_dim, idx.data(),
               out.labels.data() + i);
    for (std::int64_t t = 0; t < S; ++t) {
      std::int64_t* dst = out.bags[static_cast<std::size_t>(t)].indices.data() + i * P;
      for (std::int64_t k = 0; k < P; ++k) dst[k] = idx[static_cast<std::size_t>(t * P + k)];
    }
  }
}

void SyntheticCtrDataset::fill_table_bags(std::int64_t t, std::int64_t first,
                                          std::int64_t n, BagBatch& out) const {
  const std::int64_t P = params_.pooling;
  if (out.indices.size() != n * P) {
    out.indices.reshape({n * P});
    out.offsets.reshape({n + 1});
    for (std::int64_t i = 0; i <= n; ++i) out.offsets[i] = i * P;
  }
  const std::int64_t S = tables();
  std::vector<float> dense(static_cast<std::size_t>(params_.dense_dim));
  std::vector<std::int64_t> idx(static_cast<std::size_t>(S * P));
  float label;
  for (std::int64_t i = 0; i < n; ++i) {
    gen_sample(first + i, dense.data(), idx.data(), &label);
    std::int64_t* dst = out.indices.data() + i * P;
    for (std::int64_t k = 0; k < P; ++k) dst[k] = idx[static_cast<std::size_t>(t * P + k)];
  }
}

double SyntheticCtrDataset::teacher_auc(std::int64_t n) const {
  // Rank the true logits against the sampled labels (Mann–Whitney U).
  std::vector<float> dense(static_cast<std::size_t>(params_.dense_dim));
  std::vector<std::int64_t> idx(static_cast<std::size_t>(tables() * params_.pooling));
  std::vector<std::pair<float, float>> scored(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    float label;
    gen_sample(i, dense.data(), idx.data(), &label);
    // Recompute the logit the generator used.
    Rng rng(params_.seed ^
            (0xD1342543DE82EF95ull * static_cast<std::uint64_t>(i + 1)));
    float logit = params_.bias;
    for (std::int64_t j = 0; j < params_.dense_dim; ++j) {
      const float x = rng.gaussian();
      logit += x * w_dense_[static_cast<std::size_t>(j)];
    }
    const float snorm = params_.sparse_scale /
                        std::sqrt(static_cast<float>(tables() * params_.pooling));
    for (std::int64_t t = 0; t < tables(); ++t) {
      for (std::int64_t k = 0; k < params_.pooling; ++k) {
        const std::int64_t row = zipf_[static_cast<std::size_t>(t)](rng);
        logit += row_effect(t, row) * snorm;
      }
    }
    scored[static_cast<std::size_t>(i)] = {logit, label};
  }
  std::sort(scored.begin(), scored.end());
  // Rank-sum AUC.
  double rank_sum = 0.0;
  std::int64_t positives = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (scored[static_cast<std::size_t>(i)].second > 0.5f) {
      rank_sum += static_cast<double>(i + 1);
      ++positives;
    }
  }
  const std::int64_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  return (rank_sum - static_cast<double>(positives) * (positives + 1) / 2.0) /
         (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace dlrm
