// Blocked 4-D tensor layouts for the fully connected layers (paper Sect.
// III.B).
//
// Flat activations X[N][C] are packed as  Xb[Cb][Nb][bn][bc]
// Flat weights     W[K][C] are packed as  Wb[Kb][Cb][bc][bk]
// Flat outputs     Y[N][K] are packed as  Yb[Kb][Nb][bn][bk]
//
// The activation format [Cb][Nb][bn][bc] is the paper's deviation from prior
// work: it makes the backward-by-weights pass (where activations play the
// role of weights) as cache-friendly as the forward pass.
#pragma once

#include <cstdint>

#include "common/log.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {

/// Describes the blocking of a [rows][cols] matrix into 4-D tiles.
struct Blocking {
  std::int64_t rows = 0;  // e.g. N (activations) or K (weights)
  std::int64_t cols = 0;  // e.g. C
  std::int64_t row_block = 0;  // bn or bk
  std::int64_t col_block = 0;  // bc

  std::int64_t row_blocks() const { return rows / row_block; }
  std::int64_t col_blocks() const { return cols / col_block; }

  void validate() const {
    DLRM_CHECK(rows > 0 && cols > 0 && row_block > 0 && col_block > 0);
    DLRM_CHECK(rows % row_block == 0, "row dim must be divisible by block");
    DLRM_CHECK(cols % col_block == 0, "col dim must be divisible by block");
  }
};

/// Activation tensor in [Cb][Nb][bn][bc] layout.
class BlockedActivations {
 public:
  BlockedActivations() = default;
  BlockedActivations(std::int64_t n, std::int64_t c, std::int64_t bn,
                     std::int64_t bc)
      : b_{n, c, bn, bc} {
    b_.validate();
    data_.reshape({b_.col_blocks(), b_.row_blocks(), bn, bc});
  }

  std::int64_t n() const { return b_.rows; }
  std::int64_t c() const { return b_.cols; }
  std::int64_t bn() const { return b_.row_block; }
  std::int64_t bc() const { return b_.col_block; }
  std::int64_t nb() const { return b_.row_blocks(); }
  std::int64_t cb() const { return b_.col_blocks(); }

  float* block(std::int64_t icb, std::int64_t inb) {
    return data_.data() + ((icb * nb() + inb) * bn()) * bc();
  }
  const float* block(std::int64_t icb, std::int64_t inb) const {
    return data_.data() + ((icb * nb() + inb) * bn()) * bc();
  }

  Tensor<float>& raw() { return data_; }
  const Tensor<float>& raw() const { return data_; }

  /// Packs a flat row-major [N][C] matrix into this blocked tensor.
  void pack_from(const float* flat) {
    for (std::int64_t icb = 0; icb < cb(); ++icb) {
      for (std::int64_t inb = 0; inb < nb(); ++inb) {
        float* dst = block(icb, inb);
        for (std::int64_t in = 0; in < bn(); ++in) {
          const float* src = flat + (inb * bn() + in) * c() + icb * bc();
          for (std::int64_t ic = 0; ic < bc(); ++ic) {
            dst[in * bc() + ic] = src[ic];
          }
        }
      }
    }
  }

  /// Unpacks into a flat row-major [N][C] matrix.
  void unpack_to(float* flat) const {
    for (std::int64_t icb = 0; icb < cb(); ++icb) {
      for (std::int64_t inb = 0; inb < nb(); ++inb) {
        const float* src = block(icb, inb);
        for (std::int64_t in = 0; in < bn(); ++in) {
          float* dst = flat + (inb * bn() + in) * c() + icb * bc();
          for (std::int64_t ic = 0; ic < bc(); ++ic) {
            dst[ic] = src[in * bc() + ic];
          }
        }
      }
    }
  }

 private:
  Blocking b_;
  Tensor<float> data_;
};

/// Weight tensor in [Kb][Cb][bc][bk] layout.
class BlockedWeights {
 public:
  BlockedWeights() = default;
  BlockedWeights(std::int64_t k, std::int64_t c, std::int64_t bk,
                 std::int64_t bc)
      : b_{k, c, bk, bc} {
    b_.validate();
    data_.reshape({b_.row_blocks(), b_.col_blocks(), bc, bk});
  }

  std::int64_t k() const { return b_.rows; }
  std::int64_t c() const { return b_.cols; }
  std::int64_t bk() const { return b_.row_block; }
  std::int64_t bc() const { return b_.col_block; }
  std::int64_t kb() const { return b_.row_blocks(); }
  std::int64_t cb() const { return b_.col_blocks(); }

  float* block(std::int64_t ikb, std::int64_t icb) {
    return data_.data() + ((ikb * cb() + icb) * bc()) * bk();
  }
  const float* block(std::int64_t ikb, std::int64_t icb) const {
    return data_.data() + ((ikb * cb() + icb) * bc()) * bk();
  }

  Tensor<float>& raw() { return data_; }
  const Tensor<float>& raw() const { return data_; }

  /// Packs a flat row-major [K][C] weight matrix into [Kb][Cb][bc][bk].
  void pack_from(const float* flat) {
    for (std::int64_t ikb = 0; ikb < kb(); ++ikb) {
      for (std::int64_t icb = 0; icb < cb(); ++icb) {
        float* dst = block(ikb, icb);
        for (std::int64_t ic = 0; ic < bc(); ++ic) {
          for (std::int64_t ik = 0; ik < bk(); ++ik) {
            dst[ic * bk() + ik] =
                flat[(ikb * bk() + ik) * c() + icb * bc() + ic];
          }
        }
      }
    }
  }

  /// Unpacks into a flat row-major [K][C] matrix.
  void unpack_to(float* flat) const {
    for (std::int64_t ikb = 0; ikb < kb(); ++ikb) {
      for (std::int64_t icb = 0; icb < cb(); ++icb) {
        const float* src = block(ikb, icb);
        for (std::int64_t ic = 0; ic < bc(); ++ic) {
          for (std::int64_t ik = 0; ik < bk(); ++ik) {
            flat[(ikb * bk() + ik) * c() + icb * bc() + ic] =
                src[ic * bk() + ik];
          }
        }
      }
    }
  }

 private:
  Blocking b_;
  Tensor<float> data_;
};

}  // namespace dlrm
