// Blocked 4-D tensor layouts for the fully connected layers (paper Sect.
// III.B), generic over the storage type (fp32 or bf16).
//
// Flat activations X[N][C] are packed as  Xb[Cb][Nb][bn][bc]
// Flat weights     W[K][C] are packed as  Wb[Kb][Cb][bc][bk]
// Flat outputs     Y[N][K] are packed as  Yb[Kb][Nb][bn][bk]
//
// The activation format [Cb][Nb][bn][bc] is the paper's deviation from prior
// work: it makes the backward-by-weights pass (where activations play the
// role of weights) as cache-friendly as the forward pass.
//
// The bf16 instantiations store 2-byte elements; pack_from/unpack_to always
// speak fp32 at the boundary and convert with RNE on the way in (exact
// widening on the way out), so the flat interfaces of Mlp are precision
// agnostic. For bf16 weights the paper additionally requires the VNNI pairing
// [bc/2][bk][2] so dot-product instructions consume two reduction elements at
// once; VnniWeights packs that layout (from fp32 blocked weights, which in
// Split-SGD training already live on the bf16 grid, making the conversion
// lossless).
#pragma once

#include <cstdint>

#include "common/log.hpp"
#include "common/threadpool.hpp"
#include "common/types.hpp"
#include "tensor/tensor.hpp"

namespace dlrm {

namespace detail {

/// Storage conversion for blocked tensors: fp32 at the flat boundary.
template <typename T>
struct Convert;

template <>
struct Convert<float> {
  static float store(float v) { return v; }
  static float load(float v) { return v; }
};

template <>
struct Convert<bf16> {
  static bf16 store(float v) { return bf16(v); }  // RNE
  static float load(bf16 v) { return bf16_to_f32(v.bits); }
};

}  // namespace detail

/// Describes the blocking of a [rows][cols] matrix into 4-D tiles.
struct Blocking {
  std::int64_t rows = 0;  // e.g. N (activations) or K (weights)
  std::int64_t cols = 0;  // e.g. C
  std::int64_t row_block = 0;  // bn or bk
  std::int64_t col_block = 0;  // bc

  std::int64_t row_blocks() const { return rows / row_block; }
  std::int64_t col_blocks() const { return cols / col_block; }

  void validate() const {
    DLRM_CHECK(rows > 0 && cols > 0 && row_block > 0 && col_block > 0);
    DLRM_CHECK(rows % row_block == 0, "row dim must be divisible by block");
    DLRM_CHECK(cols % col_block == 0, "col dim must be divisible by block");
  }
};

/// Activation tensor in [Cb][Nb][bn][bc] layout; T is float or bf16.
template <typename T>
class BlockedActivationsT {
 public:
  BlockedActivationsT() = default;
  BlockedActivationsT(std::int64_t n, std::int64_t c, std::int64_t bn,
                      std::int64_t bc)
      : b_{n, c, bn, bc} {
    b_.validate();
    data_.reshape({b_.col_blocks(), b_.row_blocks(), bn, bc});
  }

  std::int64_t n() const { return b_.rows; }
  std::int64_t c() const { return b_.cols; }
  std::int64_t bn() const { return b_.row_block; }
  std::int64_t bc() const { return b_.col_block; }
  std::int64_t nb() const { return b_.row_blocks(); }
  std::int64_t cb() const { return b_.col_blocks(); }

  T* block(std::int64_t icb, std::int64_t inb) {
    return data_.data() + ((icb * nb() + inb) * bn()) * bc();
  }
  const T* block(std::int64_t icb, std::int64_t inb) const {
    return data_.data() + ((icb * nb() + inb) * bn()) * bc();
  }

  Tensor<T>& raw() { return data_; }
  const Tensor<T>& raw() const { return data_; }

  /// Packs a flat row-major [N][C] fp32 matrix into this blocked tensor,
  /// converting to the storage type (RNE for bf16).
  void pack_from(const float* flat) {
    for (std::int64_t icb = 0; icb < cb(); ++icb) {
      for (std::int64_t inb = 0; inb < nb(); ++inb) {
        T* dst = block(icb, inb);
        for (std::int64_t in = 0; in < bn(); ++in) {
          const float* src = flat + (inb * bn() + in) * c() + icb * bc();
          for (std::int64_t ic = 0; ic < bc(); ++ic) {
            dst[in * bc() + ic] = detail::Convert<T>::store(src[ic]);
          }
        }
      }
    }
  }

  /// Unpacks into a flat row-major [N][C] fp32 matrix (exact for bf16).
  void unpack_to(float* flat) const {
    for (std::int64_t icb = 0; icb < cb(); ++icb) {
      for (std::int64_t inb = 0; inb < nb(); ++inb) {
        const T* src = block(icb, inb);
        for (std::int64_t in = 0; in < bn(); ++in) {
          float* dst = flat + (inb * bn() + in) * c() + icb * bc();
          for (std::int64_t ic = 0; ic < bc(); ++ic) {
            dst[ic] = detail::Convert<T>::load(src[in * bc() + ic]);
          }
        }
      }
    }
  }

 private:
  Blocking b_;
  Tensor<T> data_;
};

using BlockedActivations = BlockedActivationsT<float>;
using BlockedActivationsBf16 = BlockedActivationsT<bf16>;

/// Weight tensor in [Kb][Cb][bc][bk] layout; T is float or bf16.
template <typename T>
class BlockedWeightsT {
 public:
  BlockedWeightsT() = default;
  BlockedWeightsT(std::int64_t k, std::int64_t c, std::int64_t bk,
                  std::int64_t bc)
      : b_{k, c, bk, bc} {
    b_.validate();
    data_.reshape({b_.row_blocks(), b_.col_blocks(), bc, bk});
  }

  std::int64_t k() const { return b_.rows; }
  std::int64_t c() const { return b_.cols; }
  std::int64_t bk() const { return b_.row_block; }
  std::int64_t bc() const { return b_.col_block; }
  std::int64_t kb() const { return b_.row_blocks(); }
  std::int64_t cb() const { return b_.col_blocks(); }

  T* block(std::int64_t ikb, std::int64_t icb) {
    return data_.data() + ((ikb * cb() + icb) * bc()) * bk();
  }
  const T* block(std::int64_t ikb, std::int64_t icb) const {
    return data_.data() + ((ikb * cb() + icb) * bc()) * bk();
  }

  Tensor<T>& raw() { return data_; }
  const Tensor<T>& raw() const { return data_; }

  /// Packs a flat row-major [K][C] fp32 weight matrix into [Kb][Cb][bc][bk].
  void pack_from(const float* flat) {
    for (std::int64_t ikb = 0; ikb < kb(); ++ikb) {
      for (std::int64_t icb = 0; icb < cb(); ++icb) {
        T* dst = block(ikb, icb);
        for (std::int64_t ic = 0; ic < bc(); ++ic) {
          for (std::int64_t ik = 0; ik < bk(); ++ik) {
            dst[ic * bk() + ik] = detail::Convert<T>::store(
                flat[(ikb * bk() + ik) * c() + icb * bc() + ic]);
          }
        }
      }
    }
  }

  /// Unpacks into a flat row-major [K][C] fp32 matrix. Iterates ik outer /
  /// ic inner so the flat side is written contiguously (the strided reads
  /// stay inside one L1-resident [bc][bk] tile) — this sits on the exposed
  /// capture path of background checkpointing.
  void unpack_to(float* flat) const {
    for (std::int64_t ikb = 0; ikb < kb(); ++ikb) {
      for (std::int64_t icb = 0; icb < cb(); ++icb) {
        const T* src = block(ikb, icb);
        for (std::int64_t ik = 0; ik < bk(); ++ik) {
          float* dst = flat + (ikb * bk() + ik) * c() + icb * bc();
          for (std::int64_t ic = 0; ic < bc(); ++ic) {
            dst[ic] = detail::Convert<T>::load(src[ic * bk() + ik]);
          }
        }
      }
    }
  }

 private:
  Blocking b_;
  Tensor<T> data_;
};

using BlockedWeights = BlockedWeightsT<float>;
using BlockedWeightsBf16 = BlockedWeightsT<bf16>;

/// bf16 weights in the VNNI-paired layout the paper's bf16 kernels consume:
/// tile (ikb, icb) holds the logical [bc][bk] sub-matrix stored as
/// [ceil(bc/2)][bk][2] — two consecutive reduction elements sit adjacent so a
/// dot-product instruction (AVX512-BF16 vdpbf16ps) reads one [bk][2] row pair
/// per step. Odd reduction blocks are zero-padded.
///
/// The same class also serves the backward-by-data pass: constructed with
/// (rows=C, cols=K, row_block=bc, col_block=bk) and filled via
/// pack_transposed_from, it holds W^T with the bk dimension paired.
class VnniWeights {
 public:
  VnniWeights() = default;
  VnniWeights(std::int64_t k, std::int64_t c, std::int64_t bk, std::int64_t bc)
      : b_{k, c, bk, bc}, pairs_((bc + 1) / 2) {
    b_.validate();
    data_.reshape({b_.row_blocks(), b_.col_blocks(), pairs_, bk * 2});
    data_.zero();  // odd-bc padding lanes must read as +0
  }

  std::int64_t k() const { return b_.rows; }
  std::int64_t c() const { return b_.cols; }
  std::int64_t bk() const { return b_.row_block; }
  std::int64_t bc() const { return b_.col_block; }
  std::int64_t kb() const { return b_.row_blocks(); }
  std::int64_t cb() const { return b_.col_blocks(); }
  std::int64_t pairs() const { return pairs_; }

  bf16* block(std::int64_t ikb, std::int64_t icb) {
    return data_.data() + ((ikb * cb() + icb) * pairs_) * bk() * 2;
  }
  const bf16* block(std::int64_t ikb, std::int64_t icb) const {
    return data_.data() + ((ikb * cb() + icb) * pairs_) * bk() * 2;
  }

  /// Repacks fp32 blocked weights [Kb][Cb][bc][bk] into VNNI pairs (RNE;
  /// lossless when the source already lives on the bf16 grid, as under
  /// Split-SGD). Shapes and blocking must match.
  void pack_from(const BlockedWeights& w) {
    DLRM_CHECK(w.k() == k() && w.c() == c() && w.bk() == bk() && w.bc() == bc(),
               "VnniWeights::pack_from shape mismatch");
    // Runs on the critical path of every bf16 forward: tile-parallel.
    parallel_for(0, kb() * cb(), [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t idx = lo; idx < hi; ++idx) {
        const std::int64_t ikb = idx / cb();
        const std::int64_t icb = idx % cb();
        const float* src = w.block(ikb, icb);  // [bc][bk]
        bf16* dst = block(ikb, icb);           // [pairs][bk][2]
        for (std::int64_t p = 0; p < pairs_; ++p) {
          const std::int64_t c0 = 2 * p, c1 = 2 * p + 1;
          for (std::int64_t ik = 0; ik < bk(); ++ik) {
            dst[(p * bk() + ik) * 2 + 0] = bf16(src[c0 * bk() + ik]);
            dst[(p * bk() + ik) * 2 + 1] =
                c1 < bc() ? bf16(src[c1 * bk() + ik]) : bf16();
          }
        }
      }
    });
  }

  /// Fills this VNNI tensor with W^T from fp32 blocked weights stored
  /// [Kb][Cb][bc][bk]: this object must be shaped (rows=C, cols=K,
  /// row_block=bc, col_block=bk); the reduction (paired) dimension is bk.
  void pack_transposed_from(const BlockedWeights& w) {
    DLRM_CHECK(w.k() == c() && w.c() == k() && w.bk() == bc() && w.bc() == bk(),
               "VnniWeights::pack_transposed_from shape mismatch");
    // Our tile (icb', ikb') holds logical WT[bk'][bc'] with bk' = w.bc and
    // reduction block w.bk: read w.block(ikb', icb') [w.bc][w.bk] transposed.
    parallel_for(0, kb() * cb(), [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t idx = lo; idx < hi; ++idx) {
        const std::int64_t irb = idx / cb();   // C block of WT
        const std::int64_t icb2 = idx % cb();  // K block
        const float* src = w.block(icb2, irb);  // [w.bc = our bk][w.bk = our bc]
        bf16* dst = block(irb, icb2);           // [pairs of our bc][our bk][2]
        for (std::int64_t p = 0; p < pairs_; ++p) {
          const std::int64_t r0 = 2 * p, r1 = 2 * p + 1;
          for (std::int64_t j = 0; j < bk(); ++j) {
            // WT tile element [reduction r][output j] = src[j * w.bk() + r]
            // (note: this object's bc() equals w.bk()).
            dst[(p * bk() + j) * 2 + 0] = bf16(src[j * bc() + r0]);
            dst[(p * bk() + j) * 2 + 1] =
                r1 < bc() ? bf16(src[j * bc() + r1]) : bf16();
          }
        }
      }
    });
  }

 private:
  Blocking b_;
  std::int64_t pairs_ = 0;
  Tensor<bf16> data_;
};

}  // namespace dlrm
