// Dense row-major tensors with cache-line aligned storage.
//
// This is intentionally a small, fast container — not an expression library.
// Kernels operate on raw pointers obtained from these tensors; shapes are
// validated at the API boundary with DLRM_CHECK.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "common/aligned.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace dlrm {

/// Owning, row-major, aligned dense tensor of up to 4 dimensions.
template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::int64_t> shape) { reshape(std::move(shape)); }

  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  /// Reallocates to a new shape; contents are uninitialized.
  void reshape(std::vector<std::int64_t> shape) {
    DLRM_CHECK(!shape.empty() && shape.size() <= 4, "rank must be 1..4");
    std::int64_t n = 1;
    for (auto d : shape) {
      DLRM_CHECK(d >= 0, "negative dimension");
      n *= d;
    }
    shape_ = std::move(shape);
    size_ = n;
    data_ = aligned_array<T>(static_cast<std::size_t>(n));
  }

  std::int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(int i) const {
    DLRM_DCHECK(i >= 0 && i < static_cast<int>(shape_.size()));
    return shape_[static_cast<std::size_t>(i)];
  }
  int rank() const { return static_cast<int>(shape_.size()); }

  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }

  T& operator[](std::int64_t i) {
    DLRM_DCHECK(i >= 0 && i < size_);
    return data_[i];
  }
  const T& operator[](std::int64_t i) const {
    DLRM_DCHECK(i >= 0 && i < size_);
    return data_[i];
  }

  /// 2-D accessor (rank-2 tensors).
  T& at(std::int64_t i, std::int64_t j) {
    DLRM_DCHECK(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  const T& at(std::int64_t i, std::int64_t j) const {
    DLRM_DCHECK(rank() == 2);
    return data_[i * shape_[1] + j];
  }

  void fill(T value) {
    for (std::int64_t i = 0; i < size_; ++i) data_[i] = value;
  }
  void zero() { fill(T{}); }

  /// Deep copy (Tensor is move-only by default to avoid silent copies).
  Tensor clone() const {
    Tensor out(shape_);
    for (std::int64_t i = 0; i < size_; ++i) out.data_[i] = data_[i];
    return out;
  }

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

 private:
  std::vector<std::int64_t> shape_;
  std::int64_t size_ = 0;
  AlignedPtr<T> data_;
};

/// Fills a float tensor with U(-scale, scale) values.
inline void fill_uniform(Tensor<float>& t, Rng& rng, float scale) {
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng.uniform(-scale, scale);
  }
}

/// Fills a float tensor with N(0, stddev) values (MLP weight init).
inline void fill_gaussian(Tensor<float>& t, Rng& rng, float stddev) {
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng.gaussian() * stddev;
  }
}

/// Max |a - b| over two equally sized tensors (test/validation helper).
inline float max_abs_diff(const Tensor<float>& a, const Tensor<float>& b) {
  DLRM_CHECK(a.size() == b.size(), "size mismatch");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const float d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > m) m = d;
  }
  return m;
}

}  // namespace dlrm
