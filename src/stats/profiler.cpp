#include "stats/profiler.hpp"

#include <cstdio>

namespace dlrm {

double Profiler::total_sec_prefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [name, sw] : counters_) {
    if (name.rfind(prefix, 0) == 0) total += sw.total_sec();
  }
  return total;
}

std::string Profiler::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s\n", "op", "calls",
                "total ms", "mean ms");
  out += line;
  for (const auto& [name, sw] : counters_) {
    std::snprintf(line, sizeof(line), "%-32s %10lld %12.3f %12.4f\n",
                  name.c_str(), static_cast<long long>(sw.count()),
                  sw.total_ms(), sw.mean_ms());
    out += line;
  }
  return out;
}

}  // namespace dlrm
