// Per-operation wall-clock profiler.
//
// Mirrors the instrumentation the paper added to PyTorch: per-op timers plus
// the communication split into "framework" (packing, launching, averaging)
// and "wait" (blocked on the backend) components shown in Figs. 10–14.
//
// Thread-safe: counters are bumped concurrently from the trainer thread, the
// prefetch workers, and the serving batcher/load-generator threads, so every
// access to the counter map goes through one mutex. Counter updates are rare
// (per op, not per element) so the lock is uncontended in practice.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/timer.hpp"

namespace dlrm {

class Profiler {
 public:
  /// Adds `sec` to the named counter.
  void add(const std::string& name, double sec) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name].add_sec(sec);
  }

  /// RAII scope timer: Profiler::Scope s(prof, "embedding_fwd");
  class Scope {
   public:
    Scope(Profiler& prof, std::string name)
        : prof_(prof), name_(std::move(name)), start_(now_sec()) {}
    ~Scope() { prof_.add(name_, now_sec() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler& prof_;
    std::string name_;
    double start_;
  };

  double total_sec(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second.total_sec();
  }
  double mean_ms(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second.mean_ms();
  }
  std::int64_t count(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.count();
  }

  /// Sum of all counters whose name starts with `prefix`.
  double total_sec_prefix(const std::string& prefix) const;

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
  }

  /// Formats an aligned table: name, calls, total ms, mean ms.
  std::string report() const;

  /// Snapshot of all counters (copy, taken under the lock — callers iterate
  /// without racing concurrent add()s).
  std::map<std::string, Stopwatch> counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Stopwatch> counters_;
};

}  // namespace dlrm
