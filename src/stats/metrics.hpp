// Evaluation metrics: ROC-AUC (the paper's Fig. 16 metric) and loss meters.
#pragma once

#include <cstdint>
#include <vector>

namespace dlrm {

/// ROC-AUC via the rank-sum (Mann–Whitney U) formulation with proper tie
/// handling (tied scores receive their average rank). Returns 0.5 when one
/// class is absent.
double roc_auc(const float* scores, const float* labels, std::int64_t n);

/// Streaming AUC accumulator: collect (score, label) pairs batch by batch,
/// then compute once.
class AucAccumulator {
 public:
  void add(const float* scores, const float* labels, std::int64_t n);
  void clear();
  std::int64_t count() const { return static_cast<std::int64_t>(scores_.size()); }
  double compute() const;

 private:
  std::vector<float> scores_;
  std::vector<float> labels_;
};

/// Running average of a scalar (training loss).
class Meter {
 public:
  void add(double value) {
    sum_ += value;
    ++count_;
  }
  void clear() {
    sum_ = 0.0;
    count_ = 0;
  }
  std::int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

 private:
  double sum_ = 0.0;
  std::int64_t count_ = 0;
};

}  // namespace dlrm
