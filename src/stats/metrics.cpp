#include "stats/metrics.hpp"

#include <algorithm>
#include <numeric>

namespace dlrm {

double roc_auc(const float* scores, const float* labels, std::int64_t n) {
  if (n <= 0) return 0.5;
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return scores[a] < scores[b];
  });

  double rank_sum_pos = 0.0;
  std::int64_t positives = 0;
  std::int64_t i = 0;
  while (i < n) {
    // Tie group [i, j): average rank for all members.
    std::int64_t j = i;
    while (j < n && scores[order[static_cast<std::size_t>(j)]] ==
                        scores[order[static_cast<std::size_t>(i)]]) {
      ++j;
    }
    const double avg_rank = static_cast<double>(i + j + 1) / 2.0;  // 1-based
    for (std::int64_t k = i; k < j; ++k) {
      if (labels[order[static_cast<std::size_t>(k)]] > 0.5f) {
        rank_sum_pos += avg_rank;
        ++positives;
      }
    }
    i = j;
  }
  const std::int64_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  return (rank_sum_pos -
          static_cast<double>(positives) * (positives + 1) / 2.0) /
         (static_cast<double>(positives) * static_cast<double>(negatives));
}

void AucAccumulator::add(const float* scores, const float* labels,
                         std::int64_t n) {
  scores_.insert(scores_.end(), scores, scores + n);
  labels_.insert(labels_.end(), labels, labels + n);
}

void AucAccumulator::clear() {
  scores_.clear();
  labels_.clear();
}

double AucAccumulator::compute() const {
  return roc_auc(scores_.data(), labels_.data(),
                 static_cast<std::int64_t>(scores_.size()));
}

}  // namespace dlrm
