#include "serve/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "data/loader.hpp"
#include "serve/snapshot.hpp"

namespace dlrm::serve {

namespace {

bool is_full_shard(const Shard& sh, const DlrmConfig& config) {
  return sh.row_begin == 0 &&
         sh.row_end == config.table_rows[static_cast<std::size_t>(sh.table)];
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedSnapshot

ShardedSnapshot::ShardedSnapshot(const DlrmConfig& config, ModelOptions options,
                                 const ShardingPlan& plan, std::uint64_t seed)
    : config_(config),
      plan_(plan),
      bottom_(config.bottom_mlp, Activation::kRelu, Activation::kRelu,
              options.blocks, config.mlp_precision),
      top_(config.top_mlp_full(), Activation::kRelu, Activation::kNone,
           options.blocks, config.mlp_precision),
      interaction_(config.tables() + 1, config.dim,
                   config.interaction_pad <= 1 ? 1 : config.interaction_pad) {
  config_.validate();
  DLRM_CHECK(!plan_.empty(), "sharded snapshot needs a non-empty plan");
  DLRM_CHECK(plan_.tables() == config_.tables(),
             "plan/table-count mismatch");
  // Same init discipline as DlrmModel so an unpublished snapshot is at
  // least well-formed; publication overwrites every value anyway.
  Rng mlp_rng(seed);
  bottom_.init(mlp_rng);
  top_.init(mlp_rng);
  tables_.reserve(plan_.shards().size());
  for (const Shard& sh : plan_.shards()) {
    const auto t = static_cast<std::size_t>(sh.table);
    tables_.push_back(std::make_unique<EmbeddingTable>(
        sh.rows(), config_.dim, options.embed_precision, sh.row_begin,
        config_.table_rows[t]));
    Rng trng(seed + 1000003ull * static_cast<std::uint64_t>(sh.table + 1));
    tables_.back()->init(trng,
                         1.0f / std::sqrt(static_cast<float>(config_.dim)));
  }
  DLRM_CHECK(interaction_.out_dim() == config_.interaction_out(),
             "interaction width mismatch");
}

void ShardedSnapshot::publish_from(DlrmModel& src, std::int64_t version) {
  DLRM_CHECK(src.tables() == config_.tables(),
             "sharded snapshot table count mismatch");
  for (std::int64_t s = 0; s < plan_.num_shards(); ++s) {
    const Shard& sh = plan_.shard(s);
    EmbeddingTable& from = src.table(sh.table);
    EmbeddingTable& to = shard_table(s);
    DLRM_CHECK(from.rows() == config_.table_rows[static_cast<std::size_t>(
                                  sh.table)] &&
                   from.dim() == to.dim() &&
                   from.precision() == to.precision(),
               "sharded snapshot shard geometry mismatch");
    const std::size_t bytes =
        static_cast<std::size_t>(sh.rows() * from.checkpoint_row_bytes());
    if (row_buf_.size() < bytes) row_buf_.resize(bytes);
    from.export_rows(sh.row_begin, sh.rows(), row_buf_.data());
    to.import_rows(0, sh.rows(), row_buf_.data());
  }
  copy_mlp_canonical(src.bottom_mlp(), bottom_, flat_buf_);
  copy_mlp_canonical(src.top_mlp(), top_, flat_buf_);
  version_ = version;
}

void ShardedSnapshot::publish_from_checkpoint(const std::string& dir) {
  ckpt::CheckpointReader reader(dir);
  // Borrow the saved global batch so check_model validates only the model
  // identity (same convention as ModelSnapshot).
  reader.check_model(ckpt::ModelConfigKey::from(
      config_, tables_.empty() ? EmbedPrecision::kFp32 : tables_[0]->precision(),
      reader.saved_key().global_batch));
  reader.load_dense(bottom_, top_);
  for (std::int64_t s = 0; s < plan_.num_shards(); ++s) {
    reader.load_shard_rows(plan_.shard(s), shard_table(s));
  }
  version_ = reader.step();
}

const Tensor<float>& ShardedSnapshot::forward_dense(
    const Tensor<float>& dense, const std::vector<const float*>& table_feats,
    std::int64_t n) {
  DLRM_CHECK(static_cast<std::int64_t>(table_feats.size()) == config_.tables(),
             "forward_dense needs one feature block per table");
  if (n != n_) {
    n_ = n;
    bottom_.set_batch(n);
    top_.set_batch(n);
    interact_out_.reshape({n, interaction_.out_dim()});
    logits_.reshape({n});
  }
  // Mirrors DlrmModel::forward's dense sequence exactly (bit-exactness).
  const Tensor<float>& z0 = bottom_.forward(dense);
  feats_.clear();
  feats_.push_back(z0.data());
  for (const float* f : table_feats) feats_.push_back(f);
  interaction_.forward(feats_, n_, interact_out_.data());
  const Tensor<float>& out = top_.forward(interact_out_);
  for (std::int64_t i = 0; i < n_; ++i) logits_[i] = out[i];
  return logits_;
}

// ---------------------------------------------------------------------------
// ShardedInferenceEngine

ShardedInferenceEngine::ShardedInferenceEngine(ShardedSnapshot& snapshot,
                                               const Dataset& data,
                                               ShardedEngineOptions options,
                                               Profiler* prof)
    : active_(&snapshot),
      data_(data),
      options_(options),
      prof_(prof),
      ranks_(snapshot.plan().ranks()),
      queue_(options.queue_capacity, options.admission),
      scratch_(static_cast<std::size_t>(snapshot.plan().ranks())),
      errors_(static_cast<std::size_t>(snapshot.plan().ranks())) {
  DLRM_CHECK(options_.policy.max_batch >= 1, "max_batch must be >= 1");
  DLRM_CHECK(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
  DLRM_CHECK(snapshot.plan().tables() == data_.tables(),
             "plan/dataset table count mismatch");
}

ShardedInferenceEngine::~ShardedInferenceEngine() { stop(); }

void ShardedInferenceEngine::start() {
  DLRM_CHECK(!running_, "engine already running");
  queue_.open();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    wall_start_ = now_sec();
    wall_end_ = 0.0;
  }
  world_ = CommWorld::create(ranks_);
  errors_.assign(static_cast<std::size_t>(ranks_), nullptr);
  threads_.clear();
  for (int r = 0; r < ranks_; ++r) {
    threads_.emplace_back([this, r] {
      try {
        ThreadComm comm(world_, r);
        if (r == 0) {
          batcher_body(comm);
        } else {
          follower_body(comm);
        }
      } catch (...) {
        errors_[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  running_ = true;
}

void ShardedInferenceEngine::stop() {
  if (!running_) return;
  queue_.close();
  for (auto& t : threads_) t.join();
  threads_.clear();
  world_.reset();
  running_ = false;
  {
    // All ranks are gone; adopt any still-pending snapshot so a waiting
    // publisher is released.
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (pending_ != nullptr) {
      active_ = pending_;
      pending_ = nullptr;
    }
  }
  snap_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    wall_end_ = now_sec();
  }
  for (auto& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

bool ShardedInferenceEngine::submit(Request r) {
  switch (queue_.submit(r, /*blocking=*/true)) {
    case SubmitResult::kOk:
      return true;
    case SubmitResult::kShed:
      note_refused(r);
      return false;
    default:
      return false;
  }
}

bool ShardedInferenceEngine::try_submit(Request r) {
  switch (queue_.submit(r, /*blocking=*/false)) {
    case SubmitResult::kOk:
      return true;
    case SubmitResult::kShed:
      note_refused(r);
      return false;
    case SubmitResult::kFull: {
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++rejected_;
      }
      note_refused(r);
      return false;
    }
    default:
      return false;
  }
}

void ShardedInferenceEngine::note_refused(const Request& r) {
  const double lat_ms = (now_sec() - r.submit_sec) * 1e3;
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_ms_.push_back(lat_ms);
  if (lat_ms > options_.slo_ms) ++slo_violations_;
}

void ShardedInferenceEngine::set_snapshot(ShardedSnapshot* snap) {
  DLRM_CHECK(snap != nullptr, "set_snapshot needs a snapshot");
  DLRM_CHECK(snap->plan().ranks() == ranks_,
             "replacement snapshot must keep the rank count");
  std::lock_guard<std::mutex> lock(snap_mu_);
  pending_ = snap;
}

bool ShardedInferenceEngine::wait_snapshot_swapped(double timeout_sec) {
  std::unique_lock<std::mutex> lock(snap_mu_);
  const auto adopted = [&] { return pending_ == nullptr; };
  if (timeout_sec < 0.0) {
    snap_cv_.wait(lock, adopted);
    return true;
  }
  return snap_cv_.wait_for(lock, std::chrono::duration<double>(timeout_sec),
                           adopted);
}

void ShardedInferenceEngine::batcher_body(ThreadComm& comm) {
  std::vector<Request> batch;
  while (collect_batch(queue_, options_.policy, batch)) {
    process_batch(comm, batch);
  }
  // Release the followers (op 0 = stop).
  std::int64_t header[2] = {0, 0};
  comm.broadcast_i64(header, 2, /*root=*/0);
}

void ShardedInferenceEngine::follower_body(ThreadComm& comm) {
  RankScratch& rs = scratch_[static_cast<std::size_t>(comm.rank())];
  for (;;) {
    rs.header.assign(2, 0);
    comm.broadcast_i64(rs.header.data(), 2, /*root=*/0);
    if (rs.header[0] == 0) return;  // stop
    const std::int64_t nreq = rs.header[1];
    rs.payload.assign(static_cast<std::size_t>(2 * nreq), 0);
    comm.broadcast_i64(rs.payload.data(), 2 * nreq, /*root=*/0);
    // The broadcast barriers order rank 0's active_ write (at the batch
    // boundary, before the header went out) before this read.
    rs.reqs.resize(static_cast<std::size_t>(nreq));
    for (std::int64_t i = 0; i < nreq; ++i) {
      rs.reqs[static_cast<std::size_t>(i)] = {
          rs.payload[static_cast<std::size_t>(2 * i)],
          rs.payload[static_cast<std::size_t>(2 * i + 1)]};
    }
    fill_send(comm.rank(), rs);
    comm.gatherv(rs.send.data(), static_cast<std::int64_t>(rs.send.size()),
                 nullptr, nullptr, nullptr, /*root=*/0);
  }
}

void ShardedInferenceEngine::build_table_bags(std::int64_t t,
                                              const std::vector<ReqKey>& reqs,
                                              RankScratch& rs, BagBatch& out) {
  rs.idx_acc.clear();
  rs.off_acc.clear();
  rs.off_acc.push_back(0);
  for (const ReqKey& rk : reqs) {
    data_.fill_table_bags(t, rk.key, rk.fanout, rs.req_bags);
    const std::int64_t base = static_cast<std::int64_t>(rs.idx_acc.size());
    const std::int64_t nl = rs.req_bags.lookups();
    rs.idx_acc.insert(rs.idx_acc.end(), rs.req_bags.indices.data(),
                      rs.req_bags.indices.data() + nl);
    for (std::int64_t b = 1; b <= rs.req_bags.batch(); ++b) {
      rs.off_acc.push_back(base + rs.req_bags.offsets[b]);
    }
  }
  out.indices.reshape({static_cast<std::int64_t>(rs.idx_acc.size())});
  std::copy(rs.idx_acc.begin(), rs.idx_acc.end(), out.indices.data());
  out.offsets.reshape({static_cast<std::int64_t>(rs.off_acc.size())});
  std::copy(rs.off_acc.begin(), rs.off_acc.end(), out.offsets.data());
}

void ShardedInferenceEngine::fill_send(int rank, RankScratch& rs) {
  const ShardingPlan& plan = active_->plan();
  const DlrmConfig& config = active_->config();
  const std::int64_t e = config.dim;
  std::int64_t pos = 0;
  rs.send.clear();
  for (std::int64_t s : plan.shards_of_rank(rank)) {
    const Shard& sh = plan.shard(s);
    build_table_bags(sh.table, rs.reqs, rs, rs.full_bags);
    EmbeddingTable& tbl = active_->shard_table(s);
    if (is_full_shard(sh, config)) {
      // Whole-table shard: pooled [N][E] output, exactly the single-process
      // embedding forward on identical storage.
      const std::int64_t n = rs.full_bags.batch();
      rs.send.resize(static_cast<std::size_t>(pos + n * e));
      tbl.forward(rs.full_bags, rs.send.data() + pos);
      pos += n * e;
    } else {
      // Row-split shard: ship the decoded row of every in-range lookup in
      // original index order. Partial per-bag sums would NOT be bit-exact
      // (fp addition is non-associative across shard boundaries); rank 0
      // merges the rows in the full table's index order instead.
      rewrite_bags_to_shard(rs.full_bags, sh.row_begin, sh.row_end,
                            rs.local_bags);
      const std::int64_t nl = rs.local_bags.lookups();
      rs.send.resize(static_cast<std::size_t>(pos + nl * e));
      float* out = rs.send.data() + pos;
      for (std::int64_t i = 0; i < nl; ++i) {
        tbl.read_row(rs.local_bags.indices[i], out + i * e);
      }
      pos += nl * e;
    }
  }
}

void ShardedInferenceEngine::process_batch(ThreadComm& comm,
                                           const std::vector<Request>& reqs) {
  {
    // Adopt a pending snapshot at the batch boundary, BEFORE the header
    // broadcast: the broadcast's barriers then order this write before
    // every follower's active_ reads for this batch.
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (pending_ != nullptr) {
      active_ = pending_;
      pending_ = nullptr;
      snap_cv_.notify_all();
    }
  }

  RankScratch& rs = scratch_[0];
  const auto nreq = static_cast<std::int64_t>(reqs.size());
  std::int64_t total = 0;
  rs.reqs.resize(static_cast<std::size_t>(nreq));
  rs.payload.assign(static_cast<std::size_t>(2 * nreq), 0);
  for (std::int64_t i = 0; i < nreq; ++i) {
    const Request& r = reqs[static_cast<std::size_t>(i)];
    DLRM_CHECK(r.fanout >= 1, "request fanout must be >= 1");
    total += r.fanout;
    rs.reqs[static_cast<std::size_t>(i)] = {r.key, r.fanout};
    rs.payload[static_cast<std::size_t>(2 * i)] = r.key;
    rs.payload[static_cast<std::size_t>(2 * i + 1)] = r.fanout;
  }
  // pow2 bucketing (same rule as InferenceEngine::execute_batch): pad the
  // batch to the next power-of-two sample count with synthetic
  // single-sample requests replicating sample 0, appended BEFORE the
  // broadcast so every rank materializes identically padded bags without
  // any protocol change. Pad rows ride the whole lookup/gather/merge/dense
  // pipeline and are discarded: the response loop below only reads the
  // real rows, which sit at unchanged offsets ahead of the pads.
  std::int64_t exec = total;
  if (options_.bucket_batches) {
    exec = 1;
    while (exec < total) exec *= 2;
  }
  for (std::int64_t m = total; m < exec; ++m) {
    rs.reqs.push_back({reqs[0].key, 1});
    rs.payload.push_back(reqs[0].key);
    rs.payload.push_back(1);
  }
  const auto nsend = static_cast<std::int64_t>(rs.reqs.size());
  rs.header.assign({std::int64_t{1}, nsend});
  comm.broadcast_i64(rs.header.data(), 2, /*root=*/0);
  comm.broadcast_i64(rs.payload.data(), 2 * nsend, /*root=*/0);

  const ShardingPlan& plan = active_->plan();
  const DlrmConfig& config = active_->config();
  const std::int64_t e = config.dim;
  const auto num_tables = static_cast<std::size_t>(plan.tables());

  const double t0 = now_sec();

  // Whole-table bags for every split table (the merge and the gatherv
  // layout both need them on rank 0).
  table_bags_.resize(num_tables);
  table_bags_built_.assign(num_tables, false);
  shard_floats_.assign(static_cast<std::size_t>(plan.num_shards()), 0);
  for (std::int64_t s = 0; s < plan.num_shards(); ++s) {
    const Shard& sh = plan.shard(s);
    if (is_full_shard(sh, config)) {
      shard_floats_[static_cast<std::size_t>(s)] = exec * e;
      continue;
    }
    const auto t = static_cast<std::size_t>(sh.table);
    if (!table_bags_built_[t]) {
      build_table_bags(sh.table, rs.reqs, rs, table_bags_[t]);
      table_bags_built_[t] = true;
    }
    std::int64_t in_range = 0;
    const BagBatch& bags = table_bags_[t];
    for (std::int64_t i = 0; i < bags.lookups(); ++i) {
      const std::int64_t idx = bags.indices[i];
      if (idx >= sh.row_begin && idx < sh.row_end) ++in_range;
    }
    shard_floats_[static_cast<std::size_t>(s)] = in_range * e;
  }

  // gatherv layout: rank p's block is its shards in shards_of_rank order.
  counts_.assign(static_cast<std::size_t>(ranks_), 0);
  displs_.assign(static_cast<std::size_t>(ranks_), 0);
  shard_offset_.assign(static_cast<std::size_t>(plan.num_shards()), 0);
  std::int64_t cursor = 0;
  for (int p = 0; p < ranks_; ++p) {
    displs_[static_cast<std::size_t>(p)] = cursor;
    for (std::int64_t s : plan.shards_of_rank(p)) {
      shard_offset_[static_cast<std::size_t>(s)] = cursor;
      cursor += shard_floats_[static_cast<std::size_t>(s)];
      counts_[static_cast<std::size_t>(p)] +=
          shard_floats_[static_cast<std::size_t>(s)];
    }
  }
  recv_.resize(static_cast<std::size_t>(cursor));

  // Rank 0's own shard lookups, then collect everyone's.
  fill_send(0, rs);
  comm.gatherv(rs.send.data(), static_cast<std::int64_t>(rs.send.size()),
               recv_.data(), counts_.data(), displs_.data(), /*root=*/0);

  // Assemble the dense slab (pad rows replicate sample 0, exactly the
  // dense side of the synthetic pad requests broadcast above).
  const std::int64_t d = data_.dense_dim();
  dense_.reshape({exec, d});
  std::int64_t row = 0;
  for (const Request& r : reqs) {
    data_.fill(r.key, r.fanout, rscratch_);
    std::memcpy(dense_.data() + row * d, rscratch_.dense.data(),
                static_cast<std::size_t>(r.fanout * d) * sizeof(float));
    row += r.fanout;
  }
  for (std::int64_t m = total; m < exec; ++m) {
    std::memcpy(dense_.data() + m * d, dense_.data(),
                static_cast<std::size_t>(d) * sizeof(float));
  }

  // Per-table features: whole-table shards point straight into recv_;
  // split tables merge per lookup in the full table's index order, which
  // reproduces the single-process forward's fp32 accumulation bit-for-bit.
  merged_.resize(num_tables);
  feat_ptrs_.assign(num_tables, nullptr);
  shard_cursor_ = shard_offset_;
  for (std::size_t t = 0; t < num_tables; ++t) {
    const auto& sids = plan.shards_of_table(static_cast<std::int64_t>(t));
    if (sids.size() == 1 &&
        is_full_shard(plan.shard(sids[0]), config)) {
      feat_ptrs_[t] =
          recv_.data() + shard_offset_[static_cast<std::size_t>(sids[0])];
      continue;
    }
    Tensor<float>& m = merged_[t];
    m.reshape({exec, e});
    const BagBatch& bags = table_bags_[t];
    for (std::int64_t n = 0; n < exec; ++n) {
      float* dst = m.data() + n * e;
      std::fill(dst, dst + e, 0.0f);
      for (std::int64_t j = bags.offsets[n]; j < bags.offsets[n + 1]; ++j) {
        const std::int64_t idx = bags.indices[j];
        std::int64_t owner = -1;
        for (std::int64_t cand : sids) {
          const Shard& sh = plan.shard(cand);
          if (idx >= sh.row_begin && idx < sh.row_end) {
            owner = cand;
            break;
          }
        }
        DLRM_DCHECK(owner >= 0, "lookup index outside every shard");
        const float* src =
            recv_.data() + shard_cursor_[static_cast<std::size_t>(owner)];
        for (std::int64_t k = 0; k < e; ++k) dst[k] += src[k];
        shard_cursor_[static_cast<std::size_t>(owner)] += e;
      }
    }
    feat_ptrs_[t] = m.data();
  }
  if (prof_ != nullptr) {
    prof_->add("serve_assemble", now_sec() - t0);
    if (exec > total) {
      prof_->add("serve_padded", static_cast<double>(exec - total));
    }
  }

  const double fwd0 = now_sec();
  const Tensor<float>& logits = active_->forward_dense(dense_, feat_ptrs_, exec);
  if (prof_ != nullptr) prof_->add("serve_forward", now_sec() - fwd0);

  const double done = now_sec();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_;
    samples_ += total;
    std::int64_t rrow = 0;
    for (const Request& r : reqs) {
      Response resp;
      resp.id = r.id;
      resp.latency_ms = (done - r.submit_sec) * 1e3;
      resp.batch = total;
      resp.version = active_->version();
      resp.score0 = logits[rrow];
      resp.slo = r.slo;
      const auto c = static_cast<std::size_t>(r.slo);
      latencies_ms_.push_back(resp.latency_ms);
      class_lat_[c].push_back(resp.latency_ms);
      ++served_class_[c];
      if (resp.latency_ms > options_.slo_ms) ++slo_violations_;
      if (prof_ != nullptr) prof_->add("serve_latency", done - r.submit_sec);
      responses_.push_back(resp);
      rrow += r.fanout;
    }
  }
  for (const Request& r : reqs) {
    queue_.record_latency(r.slo, (done - r.submit_sec) * 1e3);
  }
}

std::vector<Response> ShardedInferenceEngine::run_trace(
    const std::vector<Request>& trace) {
  DLRM_CHECK(!running_, "run_trace needs a stopped engine");
  std::size_t first_resp;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    wall_start_ = now_sec();
    wall_end_ = 0.0;
    first_resp = responses_.size();
  }
  run_ranks(ranks_, 0, [&](ThreadComm& comm) {
    if (comm.rank() != 0) {
      follower_body(comm);
      return;
    }
    // Same greedy max_batch packing as InferenceEngine::run_trace.
    std::vector<Request> batch;
    std::int64_t samples = 0;
    for (const Request& r : trace) {
      if (!batch.empty() && samples + r.fanout > options_.policy.max_batch) {
        process_batch(comm, batch);
        batch.clear();
        samples = 0;
      }
      batch.push_back(r);
      samples += r.fanout;
    }
    if (!batch.empty()) process_batch(comm, batch);
    std::int64_t header[2] = {0, 0};
    comm.broadcast_i64(header, 2, /*root=*/0);
  });
  std::lock_guard<std::mutex> lock(stats_mu_);
  wall_end_ = now_sec();
  return {responses_.begin() + static_cast<std::ptrdiff_t>(first_resp),
          responses_.end()};
}

ServeStats ShardedInferenceEngine::stats() const {
  const QueueCounters qc = queue_.counters();
  const AdmissionState astate = queue_.admission_state();
  const double ap99 = queue_.admission_p99_ms();

  std::lock_guard<std::mutex> lock(stats_mu_);
  ServeStats s;
  s.requests = static_cast<std::int64_t>(responses_.size());
  s.batches = batches_;
  s.samples = samples_;
  s.slo_violations = slo_violations_;
  s.rejected = rejected_;
  std::vector<double> sorted = latencies_ms_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = percentile_nearest_rank(sorted, 0.50);
  s.p95_ms = percentile_nearest_rank(sorted, 0.95);
  s.p99_ms = percentile_nearest_rank(sorted, 0.99);
  s.max_ms = sorted.empty() ? 0.0 : sorted.back();
  s.mean_batch = batches_ > 0 ? static_cast<double>(samples_) /
                                    static_cast<double>(batches_)
                              : 0.0;
  const double end = wall_end_ > 0.0 ? wall_end_ : now_sec();
  s.wall_sec = std::max(1e-9, end - wall_start_);
  s.throughput_rps = static_cast<double>(s.requests) / s.wall_sec;
  s.admission_state = astate;
  s.admission_p99_ms = ap99;
  for (int c = 0; c < kNumSloClasses; ++c) {
    auto& cs = s.by_class[static_cast<std::size_t>(c)];
    cs.admitted = qc.admitted[static_cast<std::size_t>(c)];
    cs.served = served_class_[static_cast<std::size_t>(c)];
    cs.shed = qc.shed[static_cast<std::size_t>(c)];
    cs.deferred = qc.deferred[static_cast<std::size_t>(c)];
    std::vector<double> csorted = class_lat_[static_cast<std::size_t>(c)];
    std::sort(csorted.begin(), csorted.end());
    cs.p50_ms = percentile_nearest_rank(csorted, 0.50);
    cs.p95_ms = percentile_nearest_rank(csorted, 0.95);
    cs.p99_ms = percentile_nearest_rank(csorted, 0.99);
    cs.max_ms = csorted.empty() ? 0.0 : csorted.back();
    s.shed += cs.shed;
  }
  return s;
}

std::vector<Response> ShardedInferenceEngine::responses() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return responses_;
}

void ShardedInferenceEngine::reset_stats() {
  queue_.reset_counters();
  std::lock_guard<std::mutex> lock(stats_mu_);
  responses_.clear();
  latencies_ms_.clear();
  for (auto& v : class_lat_) v.clear();
  served_class_.fill(0);
  batches_ = samples_ = slo_violations_ = rejected_ = 0;
  wall_start_ = now_sec();
  wall_end_ = 0.0;
}

}  // namespace dlrm::serve
