// Published model snapshot for online serving.
//
// Serving must never read weights a concurrent trainer is mutating. A
// ModelSnapshot owns a second, forward-only DlrmModel and copies the live
// weights into it at a step boundary through the checkpoint subsystem's
// canonical encodings — embedding rows via the per-precision row codec
// (export_rows/import_rows) and MLP layers via the canonical flat-fp32
// dense form (unpack_to/pack_from). Both codecs are bit-exact round trips,
// so a served forward on the snapshot is bit-identical to an offline
// forward on the source weights at publication time. The bf16 VNNI mirrors
// inside FullyConnected are repacked from the canonical fp32 weights on
// every forward, so publication never leaves a stale mirror behind.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace dlrm::serve {

/// Copies one MLP through the canonical flat-fp32 encoding (the same form
/// the checkpoint manifest stores) — a bit-exact publication. `flat` is
/// caller-provided staging, grown on demand. Shared by ModelSnapshot and
/// the sharded serving tier (serve/sharded.hpp).
void copy_mlp_canonical(Mlp& src, Mlp& dst, std::vector<float>& flat);

class ModelSnapshot {
 public:
  /// Builds the forward-only replica. Weights are meaningless until the
  /// first publish_from / publish_from_checkpoint call.
  ModelSnapshot(const DlrmConfig& config, ModelOptions options,
                std::uint64_t seed = 1);

  /// Copies `src`'s weights (bit-exact) and stamps `version` (typically the
  /// trainer's step). The caller must quiesce training for the duration —
  /// call between optimizer steps. Never call while an InferenceEngine is
  /// forwarding on THIS snapshot; publish into an idle snapshot and hand it
  /// over with InferenceEngine::set_snapshot instead.
  void publish_from(DlrmModel& src, std::int64_t version);

  /// Loads the snapshot in `dir` written by Trainer or DistributedTrainer
  /// of any geometry (cross-geometry resharding via load_shard_rows).
  /// Version becomes the saved step.
  void publish_from_checkpoint(const std::string& dir);

  /// Monotone publication stamp; -1 until the first publish.
  std::int64_t version() const { return version_; }
  const DlrmConfig& config() const { return config_; }
  DlrmModel& model() { return model_; }

  /// Forward-only scoring; reallocates activation buffers when the batch
  /// size changes (dynamic micro-batches vary per execution).
  const Tensor<float>& forward(const MiniBatch& mb, Profiler* prof = nullptr);

 private:
  DlrmConfig config_;
  DlrmModel model_;
  std::int64_t version_ = -1;
  std::vector<unsigned char> row_buf_;  // export_rows/import_rows staging
  std::vector<float> flat_buf_;         // canonical dense staging
};

}  // namespace dlrm::serve
