// Batched online inference over a published model snapshot.
//
// The serving pipeline mirrors the open-source recommendation-serving
// harnesses built around DLRM: producer threads push requests into a
// bounded MPMC queue; one batcher thread drains it into dynamic
// micro-batches under a (max_batch, max_wait_us) policy and runs the
// forward pass on a ModelSnapshot. Requests carry a fan-out (candidate
// items scored per request), so a micro-batch packs whole requests until
// the sample budget is reached. Per-request latencies feed p50/p95/p99 and
// SLO-violation accounting; the same counters also land in the shared
// Profiler ("serve_*" scopes) next to the training breakdown.
//
// Snapshot handover is double-buffered: a trainer publishes into an idle
// ModelSnapshot and calls set_snapshot; the batcher swaps it in at the
// next micro-batch boundary, so serve-while-training never reads weights
// mid-mutation.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "serve/admission.hpp"
#include "serve/snapshot.hpp"
#include "stats/profiler.hpp"

namespace dlrm::serve {

// Request and the SLO-class machinery live in serve/admission.hpp.

struct Response {
  std::int64_t id = 0;
  double latency_ms = 0.0;
  std::int64_t batch = 0;        // samples in the micro-batch that served it
  std::int64_t version = -1;     // snapshot version that scored it
  float score0 = 0.0f;           // logit of the request's first candidate
  SloClass slo = SloClass::kInteractive;
};

struct BatchPolicy {
  /// Sample budget per micro-batch; 1 disables batching. A single request
  /// whose fanout exceeds the budget still runs (alone).
  std::int64_t max_batch = 32;
  /// Linger time: how long the batcher waits for more requests before
  /// executing a partial batch.
  std::int64_t max_wait_us = 1000;
};

struct EngineOptions {
  BatchPolicy policy;
  /// Bound per SLO class (each class gets its own queue of this depth).
  std::int64_t queue_capacity = 1024;
  double slo_ms = 5.0;
  /// p99-driven batch-class shedding; disabled unless p99_target_ms > 0.
  AdmissionOptions admission;
  /// Round every executed batch up to the next power of two (padding with
  /// copies of the batch's first sample; padded rows are scored and
  /// discarded). Dynamic batching produces a different size almost every
  /// micro-batch, and each new size re-shapes the MiniBatch and the
  /// snapshot's activation workspace; bucketing collapses the size
  /// diversity to ~log2(max_batch) shapes so steady-state serving stops
  /// reallocating. Padded-row overhead lands in the "serve_padded" counter.
  bool bucket_batches = false;
};

/// Aggregate serving statistics; percentiles by nearest rank. The global
/// percentiles cover every request with a timing record — served ones AND
/// shed/rejected ones (scored against their intended-arrival stamp), so
/// overload tails are not hidden by coordinated omission. Per-class
/// percentiles cover served requests of that class only.
struct ServeStats {
  struct ClassStats {
    std::int64_t admitted = 0;  // accepted into the queue
    std::int64_t served = 0;    // scored (responses)
    std::int64_t shed = 0;      // refused by the admission controller
    std::int64_t deferred = 0;  // held in queue while the controller deferred
    double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  };

  std::int64_t requests = 0;  // served requests (== responses)
  std::int64_t batches = 0;
  std::int64_t samples = 0;
  std::int64_t slo_violations = 0;
  std::int64_t rejected = 0;  // try_submit refusals (queue full)
  std::int64_t shed = 0;      // admission-controller refusals (all classes)
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  double mean_batch = 0.0;
  double throughput_rps = 0.0;  // requests / wall between start() and stop()
  double wall_sec = 0.0;
  AdmissionState admission_state = AdmissionState::kOpen;
  double admission_p99_ms = 0.0;  // controller's rolling interactive p99
  std::array<ClassStats, kNumSloClasses> by_class{};
};

class InferenceEngine : public RequestSink {
 public:
  /// `snapshot` must outlive the engine (as must any snapshot later handed
  /// over via set_snapshot). `data` provides the request feature stream.
  InferenceEngine(ModelSnapshot& snapshot, const Dataset& data,
                  EngineOptions options, Profiler* prof = nullptr);
  ~InferenceEngine() override;

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Spawns the batcher thread and opens the queue.
  void start();
  /// Closes the queue, drains every enqueued request, joins the batcher.
  /// Idempotent.
  void stop();
  bool running() const { return running_; }

  /// Blocking enqueue (waits while the class queue is full). Returns false
  /// once the queue is closed, or when the admission controller sheds the
  /// request (shed requests keep a timing record against their
  /// intended-arrival stamp).
  bool submit(Request r) override;
  /// Non-blocking enqueue; false (and `rejected`/`shed` accounting plus a
  /// timing record) when full or shed; false without accounting when
  /// closed.
  bool try_submit(Request r) override;

  /// Hands over a freshly published snapshot; takes effect at the next
  /// micro-batch boundary. Safe to call while serving.
  void set_snapshot(ModelSnapshot* snap);

  /// Blocks until the last set_snapshot handover has been adopted (at a
  /// micro-batch boundary, or at stop()); returns whether it was. Only
  /// then is the snapshot it replaced guaranteed unreferenced by the
  /// batcher — a double-buffering publisher MUST observe true here before
  /// republishing into the retired buffer, or the next publish races the
  /// in-flight forward. A non-negative `timeout_sec` bounds the wait
  /// (adoption needs traffic: an idle batcher only adopts at stop()).
  bool wait_snapshot_swapped(double timeout_sec = -1.0);

  /// Offline replay on the caller thread (engine must not be running):
  /// packs `trace` in order under the same (max_batch) rule the live
  /// batcher uses with a saturated queue, executes each micro-batch, and
  /// returns responses in request order. Deterministic: the same trace and
  /// snapshot always produce identical batching and scores.
  std::vector<Response> run_trace(const std::vector<Request>& trace);

  ServeStats stats() const;
  std::vector<Response> responses() const;
  void reset_stats();

 private:
  void batcher_loop();
  /// Swaps in a pending snapshot, assembles one MiniBatch from `reqs`,
  /// forwards, and records responses + latency accounting.
  void execute_batch(const std::vector<Request>& reqs);
  /// Timing record for a refused (shed / queue-full) request: latency
  /// against the intended-arrival stamp, so overload percentiles keep the
  /// worst requests (no coordinated omission in the shed path).
  void note_refused(const Request& r);

  ModelSnapshot* snap_;
  const Dataset& data_;
  EngineOptions options_;
  Profiler* prof_;

  // Per-class request queues + admission control.
  RequestQueue queue_;

  // Pending snapshot handover (swapped at batch boundaries; snap_cv_
  // signals adoption so publishers can reclaim the retired buffer).
  std::mutex snap_mu_;
  std::condition_variable snap_cv_;
  ModelSnapshot* pending_ = nullptr;

  // Results + accounting.
  mutable std::mutex stats_mu_;
  std::vector<Response> responses_;
  std::vector<double> latencies_ms_;  // served + refused timing records
  std::array<std::vector<double>, kNumSloClasses> class_lat_;  // served only
  std::array<std::int64_t, kNumSloClasses> served_class_{};
  std::int64_t batches_ = 0, samples_ = 0, slo_violations_ = 0, rejected_ = 0;
  double wall_start_ = 0.0, wall_end_ = 0.0;

  // Batch assembly scratch (batcher thread only).
  MiniBatch mb_, rscratch_;

  std::thread batcher_;
  bool running_ = false;
};

}  // namespace dlrm::serve
