#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace dlrm::serve {

namespace {

/// Exponential inter-arrival gap for rate `qps` (1 - u keeps log() finite).
double exp_gap(Rng& rng, double qps) {
  return -std::log(1.0 - rng.next_double()) / qps;
}

}  // namespace

PoissonLoadGen::PoissonLoadGen(InferenceEngine& engine, LoadGenOptions options)
    : engine_(engine), options_(options) {
  DLRM_CHECK(options_.qps > 0.0, "qps must be positive");
  DLRM_CHECK(options_.fanout >= 1, "fanout must be >= 1");
  DLRM_CHECK(options_.key_space >= 1, "key_space must be >= 1");
}

void PoissonLoadGen::run() {
  Rng rng(options_.seed);
  const ZipfSampler keys(options_.key_space, options_.zipf_s);
  double next = now_sec();
  for (std::int64_t i = 0; i < options_.requests; ++i) {
    next += exp_gap(rng, options_.qps);
    const double wait = next - now_sec();
    if (wait > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
    Request r;
    r.id = i;
    r.key = keys(rng);
    r.fanout = options_.fanout;
    r.submit_sec = next;  // intended arrival: open-loop latency accounting
    if (options_.drop_when_full) {
      if (engine_.try_submit(r)) {
        ++sent_;
      } else {
        ++dropped_;
      }
    } else {
      if (engine_.submit(r)) ++sent_;
    }
  }
}

std::vector<Request> make_trace(const LoadGenOptions& options) {
  Rng rng(options.seed);
  const ZipfSampler keys(options.key_space, options.zipf_s);
  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(options.requests));
  double t = 0.0;
  for (std::int64_t i = 0; i < options.requests; ++i) {
    t += exp_gap(rng, options.qps);
    Request r;
    r.id = i;
    r.key = keys(rng);
    r.fanout = options.fanout;
    r.submit_sec = t;
    trace.push_back(r);
  }
  return trace;
}

}  // namespace dlrm::serve
