#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace dlrm::serve {

namespace {

/// Exponential inter-arrival gap for rate `qps` (1 - u keeps log() finite).
double exp_gap(Rng& rng, double qps) {
  return -std::log(1.0 - rng.next_double()) / qps;
}

/// Class draw AFTER the key draw, and only when the mix is actually mixed,
/// so BOTH single-class traces (all-interactive AND all-batch) consume
/// exactly the pre-class-mix RNG sequence — keys, fanouts and arrival
/// times stay byte-identical to a class-free trace at either extreme.
SloClass draw_class(Rng& rng, double interactive_frac) {
  if (interactive_frac >= 1.0) return SloClass::kInteractive;
  if (interactive_frac <= 0.0) return SloClass::kBatch;
  return rng.next_double() < interactive_frac ? SloClass::kInteractive
                                              : SloClass::kBatch;
}

void check(const LoadGenOptions& o) {
  DLRM_CHECK(o.qps > 0.0, "qps must be positive");
  DLRM_CHECK(o.fanout >= 1, "fanout must be >= 1");
  DLRM_CHECK(o.key_space >= 1, "key_space must be >= 1");
  DLRM_CHECK(o.interactive_frac >= 0.0 && o.interactive_frac <= 1.0,
             "interactive_frac must be in [0, 1]");
}

}  // namespace

PoissonLoadGen::PoissonLoadGen(RequestSink& sink, LoadGenOptions options)
    : sink_(sink), options_(options) {
  check(options_);
}

void PoissonLoadGen::run() {
  Rng rng(options_.seed);
  const ZipfSampler keys(options_.key_space, options_.zipf_s);
  double next = now_sec();
  for (std::int64_t i = 0; i < options_.requests; ++i) {
    next += exp_gap(rng, options_.qps);
    const double wait = next - now_sec();
    if (wait > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
    Request r;
    r.id = i;
    r.key = keys(rng);
    r.fanout = options_.fanout;
    r.submit_sec = next;  // intended arrival: open-loop latency accounting
    r.slo = draw_class(rng, options_.interactive_frac);
    if (options_.drop_when_full) {
      if (sink_.try_submit(r)) {
        ++sent_;
      } else {
        ++dropped_;
      }
    } else {
      if (sink_.submit(r)) {
        ++sent_;
      } else {
        ++dropped_;  // closed queue or admission shed
      }
    }
  }
}

std::vector<Request> make_trace(const LoadGenOptions& options) {
  check(options);
  Rng rng(options.seed);
  const ZipfSampler keys(options.key_space, options.zipf_s);
  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(options.requests));
  double t = 0.0;
  for (std::int64_t i = 0; i < options.requests; ++i) {
    t += exp_gap(rng, options.qps);
    Request r;
    r.id = i;
    r.key = keys(rng);
    r.fanout = options.fanout;
    r.submit_sec = t;
    r.slo = draw_class(rng, options.interactive_frac);
    trace.push_back(r);
  }
  return trace;
}

}  // namespace dlrm::serve
