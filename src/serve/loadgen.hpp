// Synthetic open-loop load generator for the serving path.
//
// Arrivals are Poisson (exponential inter-arrival gaps at a configured
// QPS) and request keys are Zipf-skewed over the sample stream, matching
// the production access skew the paper's embedding analysis leans on.
// Open loop: each request is stamped with its *intended* arrival time, so
// queueing delay under overload shows up in the latency percentiles
// instead of being hidden by coordinated omission.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/engine.hpp"

namespace dlrm::serve {

struct LoadGenOptions {
  double qps = 1000.0;
  std::int64_t requests = 1000;
  std::int64_t fanout = 4;        // candidates scored per request
  std::int64_t key_space = 1 << 20;  // sample-stream keys drawn from [0, n)
  double zipf_s = 0.9;            // key skew; 0 = uniform
  std::uint64_t seed = 7;
  /// true: try_submit and count drops (load shedding); false: block on a
  /// full queue (backpressure).
  bool drop_when_full = false;
  /// Class mix: fraction of interactive traffic (the rest is batch class).
  /// Both extremes — 1.0 (all interactive) and 0.0 (all batch) — draw no
  /// extra randomness, so either single-class trace is byte-identical to a
  /// pre-class-mix one (same keys, fanouts and arrival times).
  double interactive_frac = 1.0;
};

class PoissonLoadGen {
 public:
  /// Drives any sink (single-process or sharded engine).
  PoissonLoadGen(RequestSink& sink, LoadGenOptions options);

  /// Generates and submits options.requests requests on the caller thread,
  /// pacing to the Poisson schedule. Returns when the last request was
  /// submitted (or dropped).
  void run();

  std::int64_t sent() const { return sent_; }
  std::int64_t dropped() const { return dropped_; }

 private:
  RequestSink& sink_;
  LoadGenOptions options_;
  std::int64_t sent_ = 0;
  std::int64_t dropped_ = 0;
};

/// Deterministic request trace with the same key/fanout distribution the
/// live generator produces (submit stamps at the nominal schedule). Feed to
/// InferenceEngine::run_trace for reproducible offline replay.
std::vector<Request> make_trace(const LoadGenOptions& options);

}  // namespace dlrm::serve
