#include "serve/admission.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "serve/engine.hpp"

namespace dlrm::serve {

namespace {

// Bounded re-check interval for drain-side waits: a held batch queue has no
// edge to wake on when the controller's state flips via record_latency on
// another thread racing the wait, so poppers re-evaluate at least this often.
constexpr double kPollSec = 1e-3;

}  // namespace

double percentile_nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank > 0) --rank;  // nearest-rank, 1-based -> 0-based
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.enabled()) {
    DLRM_CHECK(options_.window >= 1, "admission window must be >= 1");
    DLRM_CHECK(options_.min_samples >= 1, "min_samples must be >= 1");
    DLRM_CHECK(options_.exit_frac <= options_.defer_frac &&
                   options_.defer_frac <= options_.shed_frac,
               "admission thresholds must satisfy exit <= defer <= shed");
    window_.resize(static_cast<std::size_t>(options_.window));
  }
}

void AdmissionController::record(SloClass slo, double latency_ms) {
  if (!options_.enabled() || slo != SloClass::kInteractive) return;
  window_[static_cast<std::size_t>(next_)] = latency_ms;
  next_ = (next_ + 1) % options_.window;
  ++count_;
  const auto filled =
      static_cast<std::size_t>(std::min(count_, options_.window));
  scratch_.assign(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(filled));
  std::sort(scratch_.begin(), scratch_.end());
  p99_ms_ = percentile_nearest_rank(scratch_, 0.99);
  if (count_ < options_.min_samples) return;

  const double defer_at = options_.defer_frac * options_.p99_target_ms;
  const double shed_at = options_.shed_frac * options_.p99_target_ms;
  const double exit_at = options_.exit_frac * options_.p99_target_ms;
  switch (state_) {
    case AdmissionState::kOpen:
      if (p99_ms_ >= shed_at) {
        state_ = AdmissionState::kShed;
      } else if (p99_ms_ >= defer_at) {
        state_ = AdmissionState::kDefer;
      }
      break;
    case AdmissionState::kDefer:
      if (p99_ms_ >= shed_at) {
        state_ = AdmissionState::kShed;
      } else if (p99_ms_ <= exit_at) {
        state_ = AdmissionState::kOpen;
      }
      break;
    case AdmissionState::kShed:
      // Hysteresis: only a genuine recovery (below exit, not merely below
      // the shed threshold) re-admits batch traffic.
      if (p99_ms_ <= exit_at) state_ = AdmissionState::kOpen;
      break;
  }
}

RequestQueue::RequestQueue(std::int64_t capacity_per_class,
                           AdmissionOptions admission)
    : capacity_(capacity_per_class), ctrl_(admission) {
  DLRM_CHECK(capacity_ >= 1, "queue capacity must be >= 1");
}

void RequestQueue::open() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = false;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

SubmitResult RequestQueue::submit(const Request& r, bool blocking) {
  const auto c = static_cast<std::size_t>(r.slo);
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return SubmitResult::kClosed;
  if (r.slo == SloClass::kBatch && ctrl_.shed_batch()) {
    ++counters_.shed[c];
    return SubmitResult::kShed;
  }
  if (static_cast<std::int64_t>(queues_[c].size()) >= capacity_) {
    if (!blocking) return SubmitResult::kFull;
    not_full_.wait(lock, [&] {
      return closed_ ||
             static_cast<std::int64_t>(queues_[c].size()) < capacity_;
    });
    if (closed_) return SubmitResult::kClosed;
    // State may have flipped while we were blocked.
    if (r.slo == SloClass::kBatch && ctrl_.shed_batch()) {
      ++counters_.shed[c];
      return SubmitResult::kShed;
    }
  }
  queues_[c].push_back(Entry{r, false});
  ++counters_.admitted[c];
  lock.unlock();
  not_empty_.notify_one();
  return SubmitResult::kOk;
}

int RequestQueue::eligible_class_locked() {
  if (closed_) {
    // Shutdown drain: everything admitted is served, priority still applies.
    for (int c = 0; c < kNumSloClasses; ++c) {
      if (!queues_[static_cast<std::size_t>(c)].empty()) return c;
    }
    return -1;
  }
  if (!queues_[0].empty()) return 0;
  auto& batch = queues_[1];
  if (!batch.empty()) {
    if (!ctrl_.hold_batch()) return 1;
    if (!batch.front().deferred) {
      batch.front().deferred = true;
      ++counters_.deferred[1];
    }
  }
  return -1;
}

bool RequestQueue::pop_first(Request& out) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const int c = eligible_class_locked();
    if (c >= 0) {
      out = queues_[static_cast<std::size_t>(c)].front().r;
      queues_[static_cast<std::size_t>(c)].pop_front();
      lock.unlock();
      not_full_.notify_one();
      return true;
    }
    bool drained = closed_;
    for (const auto& q : queues_) drained = drained && q.empty();
    if (drained) return false;
    not_empty_.wait_for(lock, std::chrono::duration<double>(kPollSec));
  }
}

PopStatus RequestQueue::pop_fitting(std::int64_t budget, double deadline_sec,
                                    Request& out) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Eligibility first: with work queued, the batcher packs greedily even
    // past its linger deadline (matches run_trace's saturated-queue rule).
    const int c = eligible_class_locked();
    if (c >= 0) {
      auto& q = queues_[static_cast<std::size_t>(c)];
      if (q.front().r.fanout > budget) return PopStatus::kTooBig;
      out = q.front().r;
      q.pop_front();
      lock.unlock();
      not_full_.notify_one();
      return PopStatus::kPopped;
    }
    if (closed_) return PopStatus::kDrained;
    const double rem = deadline_sec - now_sec();
    if (rem <= 0.0) return PopStatus::kTimeout;
    not_empty_.wait_for(lock,
                        std::chrono::duration<double>(std::min(rem, kPollSec)));
  }
}

void RequestQueue::record_latency(SloClass slo, double latency_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ctrl_.record(slo, latency_ms);
  }
  // A recovered p99 can make held batch work eligible again.
  not_empty_.notify_all();
}

QueueCounters RequestQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void RequestQueue::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = QueueCounters{};
}

AdmissionState RequestQueue::admission_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ctrl_.state();
}

double RequestQueue::admission_p99_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ctrl_.rolling_p99_ms();
}

bool collect_batch(RequestQueue& queue, const BatchPolicy& policy,
                   std::vector<Request>& out) {
  out.clear();
  Request first;
  if (!queue.pop_first(first)) return false;
  out.push_back(first);
  std::int64_t samples = first.fanout;
  const double deadline =
      now_sec() + static_cast<double>(policy.max_wait_us) * 1e-6;
  while (samples < policy.max_batch) {
    Request r;
    if (queue.pop_fitting(policy.max_batch - samples, deadline, r) !=
        PopStatus::kPopped) {
      break;
    }
    out.push_back(r);
    samples += r.fanout;
  }
  return true;
}

}  // namespace dlrm::serve
