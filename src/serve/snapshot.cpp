#include "serve/snapshot.hpp"

#include <algorithm>

#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"

namespace dlrm::serve {

/// pack_from refreshes nothing else: the bf16 VNNI mirrors are rebuilt from
/// these canonical weights on every forward, so this is a complete
/// publication.
void copy_mlp_canonical(Mlp& src, Mlp& dst, std::vector<float>& flat) {
  DLRM_CHECK(src.layer_count() == dst.layer_count(),
             "snapshot MLP topology mismatch");
  for (std::size_t l = 0; l < src.layer_count(); ++l) {
    FullyConnected& s = src.layer(l);
    FullyConnected& d = dst.layer(l);
    DLRM_CHECK(s.in_features() == d.in_features() &&
                   s.out_features() == d.out_features(),
               "snapshot MLP layer shape mismatch");
    const std::size_t n =
        static_cast<std::size_t>(s.out_features() * s.in_features());
    if (flat.size() < n) flat.resize(n);
    s.weights().unpack_to(flat.data());
    d.weights().pack_from(flat.data());
    std::copy(s.bias().data(), s.bias().data() + s.bias().size(),
              d.bias().data());
  }
}

ModelSnapshot::ModelSnapshot(const DlrmConfig& config, ModelOptions options,
                             std::uint64_t seed)
    : config_(config), model_(config, options, seed) {}

void ModelSnapshot::publish_from(DlrmModel& src, std::int64_t version) {
  DLRM_CHECK(src.tables() == model_.tables(), "snapshot table count mismatch");
  for (std::int64_t t = 0; t < src.tables(); ++t) {
    EmbeddingTable& from = src.table(t);
    EmbeddingTable& to = model_.table(t);
    DLRM_CHECK(from.rows() == to.rows() && from.dim() == to.dim() &&
                   from.precision() == to.precision(),
               "snapshot table geometry mismatch");
    const std::size_t bytes =
        static_cast<std::size_t>(from.rows() * from.checkpoint_row_bytes());
    if (row_buf_.size() < bytes) row_buf_.resize(bytes);
    from.export_rows(0, from.rows(), row_buf_.data());
    to.import_rows(0, to.rows(), row_buf_.data());
  }
  copy_mlp_canonical(src.bottom_mlp(), model_.bottom_mlp(), flat_buf_);
  copy_mlp_canonical(src.top_mlp(), model_.top_mlp(), flat_buf_);
  version_ = version;
}

void ModelSnapshot::publish_from_checkpoint(const std::string& dir) {
  ckpt::CheckpointReader reader(dir);
  // Serving doesn't care which global batch trained the snapshot; borrow
  // the saved one so check_model validates only the model identity.
  reader.check_model(ckpt::ModelConfigKey::from(
      config_, model_.options().embed_precision,
      reader.saved_key().global_batch));
  reader.load_dense(model_.bottom_mlp(), model_.top_mlp());
  for (std::int64_t t = 0; t < model_.tables(); ++t) {
    const Shard full{t, 0, model_.table(t).rows(), /*rank=*/0, /*cost=*/0.0};
    reader.load_shard_rows(full, model_.table(t));
  }
  version_ = reader.step();
}

const Tensor<float>& ModelSnapshot::forward(const MiniBatch& mb,
                                            Profiler* prof) {
  if (model_.batch() != mb.batch()) model_.set_batch(mb.batch());
  return model_.forward(mb, prof);
}

}  // namespace dlrm::serve
