// Model-parallel sharded serving tier (the inference-side counterpart of
// the training-time hybrid parallelism).
//
// A model whose embedding tables needed a ShardingPlan to *train* could not
// be served by the single-process InferenceEngine at all — every serving
// rank would have to hold every table. This tier runs R serving ranks over
// a ThreadComm, each holding only the embedding shards its rank owns under
// any ShardingPlan geometry (row-split included), published bit-exactly
// through the same checkpoint codecs ModelSnapshot uses.
//
// Request flow (one SPMD "op" per micro-batch):
//   rank 0  — owns the RequestQueue and the batcher (admission control,
//             SLO classes and strict-priority draining included),
//             broadcasts the batch header + (key, fanout) payload;
//   all     — materialize the batch's bag stream for their owned shards
//             (bags rewritten to shard-local rows for split tables), run
//             the embedding lookups, and gatherv the per-shard outputs to
//             rank 0;
//   rank 0  — assembles per-table features (split-table shards are merged
//             per lookup in original index order, so fp32 accumulation
//             order — and therefore every bit of the result — matches the
//             single-process forward), runs the dense stack (bottom MLP +
//             interaction + top MLP) on the assembled batch, and records
//             responses/latencies.
//
// Determinism contract: ShardedInferenceEngine::run_trace is bit-exact
// against InferenceEngine::run_trace on the same trace for every plan
// geometry and embedding precision (tests/test_sharded_serving.cpp holds
// the R∈{1,2,4} × {round_robin,row_split} × {fp32,bf16} matrix).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/thread_comm.hpp"
#include "core/model.hpp"
#include "core/sharding.hpp"
#include "serve/engine.hpp"

namespace dlrm::serve {

/// Sharded counterpart of ModelSnapshot: one EmbeddingTable per plan shard
/// (canonical order) plus one dense stack (bottom/top MLP + interaction)
/// that rank 0 runs on the assembled batch. Weights are published through
/// the bit-exact checkpoint codecs, so serving results equal an offline
/// forward on the source weights at publication time.
class ShardedSnapshot {
 public:
  /// Builds the shard replicas; weights are meaningless until the first
  /// publish_from / publish_from_checkpoint. The hot-row cache tier is
  /// never configured on shard replicas (forward-only serving reads).
  ShardedSnapshot(const DlrmConfig& config, ModelOptions options,
                  const ShardingPlan& plan, std::uint64_t seed = 1);

  /// Copies `src`'s weights (bit-exact): every shard imports its row range
  /// through export_rows/import_rows, the dense stack through the canonical
  /// flat-fp32 form. Same quiescence contract as ModelSnapshot::publish_from.
  void publish_from(DlrmModel& src, std::int64_t version);

  /// Loads from a checkpoint of any training geometry (cross-geometry
  /// resharding via load_shard_rows). Version becomes the saved step.
  void publish_from_checkpoint(const std::string& dir);

  std::int64_t version() const { return version_; }
  const DlrmConfig& config() const { return config_; }
  const ShardingPlan& plan() const { return plan_; }

  /// Shard replica by canonical shard index.
  EmbeddingTable& shard_table(std::int64_t s) {
    return *tables_[static_cast<std::size_t>(s)];
  }

  /// Dense stack on the assembled batch: `table_feats[t]` points to table
  /// t's [n][dim] pooled embedding output. Bit-identical to
  /// DlrmModel::forward given identical inputs. Single caller (rank 0).
  const Tensor<float>& forward_dense(
      const Tensor<float>& dense, const std::vector<const float*>& table_feats,
      std::int64_t n);

 private:
  DlrmConfig config_;
  ShardingPlan plan_;
  std::vector<std::unique_ptr<EmbeddingTable>> tables_;  // canonical order
  Mlp bottom_, top_;
  DotInteraction interaction_;
  std::int64_t n_ = 0;  // current dense-stack batch
  Tensor<float> interact_out_;
  Tensor<float> logits_;
  std::vector<const float*> feats_;     // [1 + tables] forward scratch
  std::vector<unsigned char> row_buf_;  // export_rows/import_rows staging
  std::vector<float> flat_buf_;         // canonical dense staging
  std::int64_t version_ = -1;
};

struct ShardedEngineOptions {
  BatchPolicy policy;
  /// Bound per SLO class (rank 0's queue).
  std::int64_t queue_capacity = 1024;
  double slo_ms = 5.0;
  /// p99-driven batch-class shedding; disabled unless p99_target_ms > 0.
  AdmissionOptions admission;
  /// Pad every micro-batch to the next power-of-two sample count with
  /// synthetic single-sample requests replicating sample 0, appended on
  /// rank 0 BEFORE the payload broadcast — so every rank builds identically
  /// padded bags and the gather/merge/dense pipeline runs at pow2 shapes
  /// (cache-friendly GEMM tiles, same rule as EngineOptions.bucket_batches).
  /// Pad rows are scored and discarded; real scores are bitwise identical
  /// to the single-process pow2 engine. Counted via "serve_padded".
  bool bucket_batches = false;
};

/// R-rank model-parallel inference engine. The public surface mirrors
/// InferenceEngine (RequestSink, set_snapshot handover, run_trace,
/// ServeStats) so callers and the load generator treat both uniformly.
class ShardedInferenceEngine : public RequestSink {
 public:
  /// `snapshot` (and any snapshot later handed over) must outlive the
  /// engine; its plan fixes the rank count.
  ShardedInferenceEngine(ShardedSnapshot& snapshot, const Dataset& data,
                         ShardedEngineOptions options,
                         Profiler* prof = nullptr);
  ~ShardedInferenceEngine() override;

  ShardedInferenceEngine(const ShardedInferenceEngine&) = delete;
  ShardedInferenceEngine& operator=(const ShardedInferenceEngine&) = delete;

  int ranks() const { return ranks_; }

  /// Spawns the R serving-rank threads (rank 0 batches, the rest follow)
  /// and opens the queue.
  void start();
  /// Closes the queue, drains it, joins all ranks. Rethrows the first
  /// rank exception, if any. Idempotent.
  void stop();
  bool running() const { return running_; }

  /// Same submit semantics as InferenceEngine (admission shedding keeps a
  /// timing record against the intended-arrival stamp).
  bool submit(Request r) override;
  bool try_submit(Request r) override;

  /// Double-buffered snapshot handover; adopted by rank 0 at the next
  /// micro-batch boundary. The new snapshot's plan must have the same rank
  /// count.
  void set_snapshot(ShardedSnapshot* snap);
  bool wait_snapshot_swapped(double timeout_sec = -1.0);

  /// Offline replay (engine must not be running): spins up R transient
  /// ranks, packs `trace` under the same greedy max_batch rule the
  /// single-process engine uses, and returns responses in request order.
  /// Deterministic and bit-exact vs InferenceEngine::run_trace.
  std::vector<Response> run_trace(const std::vector<Request>& trace);

  ServeStats stats() const;
  std::vector<Response> responses() const;
  void reset_stats();

 private:
  /// Compact request form broadcast to followers.
  struct ReqKey {
    std::int64_t key = 0;
    std::int64_t fanout = 0;
  };

  /// Per-rank scratch; element r is touched only by rank thread r.
  struct RankScratch {
    std::vector<ReqKey> reqs;          // decoded broadcast payload
    std::vector<std::int64_t> header;  // broadcast staging
    std::vector<std::int64_t> payload;
    BagBatch req_bags;                  // one request's bags (fill scratch)
    std::vector<std::int64_t> idx_acc;  // concatenated batch bag staging
    std::vector<std::int64_t> off_acc;
    BagBatch full_bags;   // whole-table bags for the batch
    BagBatch local_bags;  // shard-local rewrite of full_bags
    std::vector<float> send;  // concatenated per-shard lookup outputs
  };

  void batcher_body(ThreadComm& comm);
  void follower_body(ThreadComm& comm);
  /// Rank 0: adopt pending snapshot, broadcast the batch, run its own
  /// shard lookups, gather, merge, dense forward, record responses.
  void process_batch(ThreadComm& comm, const std::vector<Request>& reqs);
  /// Builds the whole-table bag batch for table `t` over `reqs`.
  void build_table_bags(std::int64_t t, const std::vector<ReqKey>& reqs,
                        RankScratch& rs, BagBatch& out);
  /// Fills rs.send with this rank's concatenated shard outputs.
  void fill_send(int rank, RankScratch& rs);
  void note_refused(const Request& r);

  ShardedSnapshot* active_;  // written by rank 0 at batch boundaries only
  const Dataset& data_;
  ShardedEngineOptions options_;
  Profiler* prof_;
  const int ranks_;

  RequestQueue queue_;

  // Pending snapshot handover (see InferenceEngine).
  std::mutex snap_mu_;
  std::condition_variable snap_cv_;
  ShardedSnapshot* pending_ = nullptr;

  // Results + accounting (rank 0 writes, any thread reads via stats()).
  mutable std::mutex stats_mu_;
  std::vector<Response> responses_;
  std::vector<double> latencies_ms_;
  std::array<std::vector<double>, kNumSloClasses> class_lat_;
  std::array<std::int64_t, kNumSloClasses> served_class_{};
  std::int64_t batches_ = 0, samples_ = 0, slo_violations_ = 0, rejected_ = 0;
  double wall_start_ = 0.0, wall_end_ = 0.0;

  std::vector<RankScratch> scratch_;  // [ranks]

  // Rank-0 merge/assembly scratch.
  std::vector<std::int64_t> shard_floats_;   // per canonical shard
  std::vector<std::int64_t> shard_offset_;   // recv offset per shard
  std::vector<std::int64_t> shard_cursor_;   // merge read cursors
  std::vector<std::int64_t> counts_, displs_;  // gatherv layout [ranks]
  std::vector<float> recv_;                    // gathered shard outputs
  std::vector<Tensor<float>> merged_;          // per split table [N][E]
  std::vector<BagBatch> table_bags_;           // rank 0's per-table full bags
  std::vector<bool> table_bags_built_;
  Tensor<float> dense_;       // [N][D]
  MiniBatch rscratch_;        // per-request dense fill staging
  std::vector<const float*> feat_ptrs_;  // per-table feature pointers

  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> errors_;
  std::shared_ptr<CommWorld> world_;
  bool running_ = false;
};

}  // namespace dlrm::serve
