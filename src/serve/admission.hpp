// SLO classes and p99-driven admission control for the serving tier.
//
// Production recommender serving runs two kinds of traffic through one
// model: interactive requests with a hard tail-latency target, and batch /
// best-effort requests (precompute, backfills) that only care about
// throughput. A fixed queue cap treats both the same, so batch floods
// inflate the interactive p99 long before anything is rejected. This
// module replaces the single bounded queue with:
//
//   * per-class bounded queues with strict-priority draining (interactive
//     requests are always batched first),
//   * an AdmissionController that watches the *measured* rolling p99 of
//     the interactive class and, as it approaches the configured target,
//     first defers batch draining (kDefer) and then sheds batch arrivals
//     outright (kShed), with hysteresis so batch traffic is re-admitted
//     only once the p99 has genuinely recovered.
//
// Shed requests are still accounted against their intended-arrival stamps
// by the engines (see note_refused), so open-loop percentiles under
// shedding do not silently drop the worst requests (no coordinated
// omission in the shed path).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace dlrm::serve {

/// Nearest-rank percentile over an ascending-sorted sample vector (the
/// repo-wide serving percentile convention).
double percentile_nearest_rank(const std::vector<double>& sorted, double q);

enum class SloClass : std::uint8_t {
  kInteractive = 0,  // user-facing; tail-latency target applies
  kBatch = 1,        // best-effort; first to defer / shed under pressure
};

inline constexpr int kNumSloClasses = 2;

inline const char* to_string(SloClass c) {
  return c == SloClass::kInteractive ? "interactive" : "batch";
}

/// One scoring request: `key` addresses the deterministic sample stream
/// (the request's user/context), `fanout` consecutive samples are scored.
struct Request {
  std::int64_t id = 0;
  std::int64_t key = 0;
  std::int64_t fanout = 1;
  double submit_sec = 0.0;  // arrival stamp (open-loop: intended arrival)
  SloClass slo = SloClass::kInteractive;
};

/// Anything that accepts requests (InferenceEngine, ShardedInferenceEngine);
/// lets the load generator drive either engine through one interface.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  /// Blocking enqueue; false once closed (or when admission sheds it).
  virtual bool submit(Request r) = 0;
  /// Non-blocking enqueue; false when full, shed, or closed.
  virtual bool try_submit(Request r) = 0;
};

struct AdmissionOptions {
  /// Interactive-class p99 target in ms; <= 0 disables the controller
  /// (both classes then share only the per-class capacity bound).
  double p99_target_ms = 0.0;
  /// Enter kDefer when rolling p99 >= defer_frac * target.
  double defer_frac = 0.7;
  /// Enter kShed when rolling p99 >= shed_frac * target.
  double shed_frac = 0.9;
  /// Hysteresis: leave kDefer/kShed only once p99 <= exit_frac * target.
  double exit_frac = 0.6;
  /// Rolling window of interactive latencies the p99 is computed over.
  std::int64_t window = 256;
  /// No transitions until this many interactive samples have been seen.
  std::int64_t min_samples = 32;

  bool enabled() const { return p99_target_ms > 0.0; }
};

enum class AdmissionState : std::uint8_t {
  kOpen = 0,   // admit + drain both classes
  kDefer = 1,  // admit batch, but hold it in queue (priority drain only)
  kShed = 2,   // refuse new batch arrivals outright
};

inline const char* to_string(AdmissionState s) {
  switch (s) {
    case AdmissionState::kOpen: return "open";
    case AdmissionState::kDefer: return "defer";
    default: return "shed";
  }
}

/// Hysteresis state machine over the rolling interactive p99. Not
/// internally synchronized: RequestQueue calls it under its own mutex.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Feeds one served-request latency; only the interactive class moves
  /// the window / state.
  void record(SloClass slo, double latency_ms);

  AdmissionState state() const { return state_; }
  bool shed_batch() const { return state_ == AdmissionState::kShed; }
  bool hold_batch() const { return state_ != AdmissionState::kOpen; }
  double rolling_p99_ms() const { return p99_ms_; }
  std::int64_t samples() const { return count_; }

 private:
  const AdmissionOptions options_;
  std::vector<double> window_;   // ring buffer of interactive latencies
  std::vector<double> scratch_;  // sorted copy for the percentile
  std::int64_t next_ = 0;        // ring cursor
  std::int64_t count_ = 0;       // total interactive samples seen
  double p99_ms_ = 0.0;
  AdmissionState state_ = AdmissionState::kOpen;
};

enum class SubmitResult : std::uint8_t { kOk, kShed, kFull, kClosed };

/// What pop_fitting observed (collect_batch's linger loop drives on this).
enum class PopStatus : std::uint8_t {
  kPopped,   // a request was returned
  kTooBig,   // eligible front exceeds the remaining sample budget
  kTimeout,  // linger deadline passed with nothing eligible
  kDrained,  // queue closed and fully drained
};

struct QueueCounters {
  std::array<std::int64_t, kNumSloClasses> admitted{};
  std::array<std::int64_t, kNumSloClasses> shed{};
  std::array<std::int64_t, kNumSloClasses> deferred{};
};

/// Per-class bounded MPMC queues with strict-priority draining and the
/// admission controller wired into both ends: arrivals consult it for
/// shedding, the drain side consults it before releasing batch work.
class RequestQueue {
 public:
  RequestQueue(std::int64_t capacity_per_class, AdmissionOptions admission);

  void open();
  /// Close: new submits fail, poppers drain what is left then see
  /// kDrained/false. Wakes every waiter.
  void close();

  /// blocking=true waits while the class queue is full (backpressure);
  /// blocking=false returns kFull instead. Batch-class arrivals are
  /// refused with kShed while the controller sheds.
  SubmitResult submit(const Request& r, bool blocking);

  /// Blocking pop of the highest-priority eligible request; false once
  /// closed and drained.
  bool pop_first(Request& out);

  /// Pop the highest-priority eligible request iff its fanout fits
  /// `budget`; otherwise report why not. Waits (bounded) until
  /// `deadline_sec` when nothing is eligible.
  PopStatus pop_fitting(std::int64_t budget, double deadline_sec, Request& out);

  /// Served-latency feedback for the controller (also wakes the drain side:
  /// a recovered p99 can release held batch work).
  void record_latency(SloClass slo, double latency_ms);

  QueueCounters counters() const;
  void reset_counters();
  AdmissionState admission_state() const;
  double admission_p99_ms() const;

 private:
  /// Highest-priority class with an eligible (drainable) front, or -1.
  /// Marks the batch front "deferred" (once) when the controller holds it.
  int eligible_class_locked();

  const std::int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  struct Entry {
    Request r;
    bool deferred = false;  // counted once when held back by the controller
  };
  std::array<std::deque<Entry>, kNumSloClasses> queues_;
  AdmissionController ctrl_;
  QueueCounters counters_;
  bool closed_ = true;
};

struct BatchPolicy;  // engine.hpp

/// Shared batcher core: blocking-pops the first request, then lingers up to
/// policy.max_wait_us packing whole eligible requests until the sample
/// budget is hit. Returns false once the queue is closed and drained.
/// Both engines' batcher loops and nothing else call this.
bool collect_batch(RequestQueue& queue, const BatchPolicy& policy,
                   std::vector<Request>& out);

}  // namespace dlrm::serve
