#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/log.hpp"
#include "common/timer.hpp"

namespace dlrm::serve {

InferenceEngine::InferenceEngine(ModelSnapshot& snapshot, const Dataset& data,
                                 EngineOptions options, Profiler* prof)
    : snap_(&snapshot),
      data_(data),
      options_(options),
      prof_(prof),
      queue_(options.queue_capacity, options.admission) {
  DLRM_CHECK(options_.policy.max_batch >= 1, "max_batch must be >= 1");
  DLRM_CHECK(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
}

InferenceEngine::~InferenceEngine() { stop(); }

void InferenceEngine::start() {
  DLRM_CHECK(!running_, "engine already running");
  queue_.open();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    wall_start_ = now_sec();
    wall_end_ = 0.0;
  }
  running_ = true;
  batcher_ = std::thread([this] { batcher_loop(); });
}

void InferenceEngine::stop() {
  if (!running_) return;
  queue_.close();
  batcher_.join();
  running_ = false;
  {
    // The batcher is gone; adopt any still-pending snapshot so a waiting
    // publisher is released (every prior forward happened-before the join).
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (pending_ != nullptr) {
      snap_ = pending_;
      pending_ = nullptr;
    }
  }
  snap_cv_.notify_all();
  std::lock_guard<std::mutex> lock(stats_mu_);
  wall_end_ = now_sec();
}

bool InferenceEngine::submit(Request r) {
  switch (queue_.submit(r, /*blocking=*/true)) {
    case SubmitResult::kOk:
      return true;
    case SubmitResult::kShed:
      note_refused(r);
      return false;
    default:  // kClosed (kFull cannot happen when blocking)
      return false;
  }
}

bool InferenceEngine::try_submit(Request r) {
  switch (queue_.submit(r, /*blocking=*/false)) {
    case SubmitResult::kOk:
      return true;
    case SubmitResult::kShed:
      note_refused(r);
      return false;
    case SubmitResult::kFull: {
      // Load shed: only a full OPEN queue counts as a rejection.
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++rejected_;
      }
      note_refused(r);
      return false;
    }
    default:  // kClosed: refused without accounting
      return false;
  }
}

void InferenceEngine::note_refused(const Request& r) {
  const double lat_ms = (now_sec() - r.submit_sec) * 1e3;
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_ms_.push_back(lat_ms);
  if (lat_ms > options_.slo_ms) ++slo_violations_;
}

void InferenceEngine::set_snapshot(ModelSnapshot* snap) {
  DLRM_CHECK(snap != nullptr, "set_snapshot needs a snapshot");
  std::lock_guard<std::mutex> lock(snap_mu_);
  pending_ = snap;
}

bool InferenceEngine::wait_snapshot_swapped(double timeout_sec) {
  std::unique_lock<std::mutex> lock(snap_mu_);
  const auto adopted = [&] { return pending_ == nullptr; };
  if (timeout_sec < 0.0) {
    snap_cv_.wait(lock, adopted);
    return true;
  }
  return snap_cv_.wait_for(lock, std::chrono::duration<double>(timeout_sec),
                           adopted);
}

void InferenceEngine::batcher_loop() {
  // collect_batch blocks for the first request, then lingers packing whole
  // requests until the sample budget is hit or the wait window expires. A
  // saturated queue fills the batch immediately, so the packing matches
  // run_trace's greedy rule; strict class priority and admission deferral
  // live inside RequestQueue.
  std::vector<Request> batch;
  while (collect_batch(queue_, options_.policy, batch)) {
    execute_batch(batch);
  }
}

void InferenceEngine::execute_batch(const std::vector<Request>& reqs) {
  {
    // Adopt a pending snapshot at the batch boundary. The single batcher
    // thread's previous forward finished before this lock, so signalling
    // here proves the replaced snapshot is unreferenced (wait_snapshot_
    // swapped's happens-before edge for republishing into it).
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (pending_ != nullptr) {
      snap_ = pending_;
      pending_ = nullptr;
      snap_cv_.notify_all();
    }
  }

  std::int64_t total = 0;
  for (const Request& r : reqs) {
    DLRM_CHECK(r.fanout >= 1, "request fanout must be >= 1");
    total += r.fanout;
  }
  // Bucketing: execute at the next power of two so the MiniBatch and the
  // snapshot's activations only ever see ~log2(max_batch) distinct shapes.
  std::int64_t exec = total;
  if (options_.bucket_batches) {
    exec = 1;
    while (exec < total) exec *= 2;
  }

  {
    // Assemble one MiniBatch from the per-request sample ranges. Pooling is
    // fixed per table, so every per-sample extent is regular and whole rows
    // concatenate; shape_minibatch's offsets already describe the result.
    const double t0 = now_sec();
    shape_minibatch(data_, exec, mb_);
    const std::int64_t d = data_.dense_dim();
    std::int64_t row = 0;
    for (const Request& r : reqs) {
      data_.fill(r.key, r.fanout, rscratch_);
      std::memcpy(mb_.dense.data() + row * d, rscratch_.dense.data(),
                  static_cast<std::size_t>(r.fanout * d) * sizeof(float));
      std::memcpy(mb_.labels.data() + row, rscratch_.labels.data(),
                  static_cast<std::size_t>(r.fanout) * sizeof(float));
      for (std::int64_t t = 0; t < data_.tables(); ++t) {
        const std::int64_t p = data_.pooling(t);
        std::memcpy(
            mb_.bags[static_cast<std::size_t>(t)].indices.data() + row * p,
            rscratch_.bags[static_cast<std::size_t>(t)].indices.data(),
            static_cast<std::size_t>(r.fanout * p) * sizeof(std::int64_t));
      }
      row += r.fanout;
    }
    // Pad rows replicate sample 0: valid features, scored and discarded.
    for (; row < exec; ++row) {
      std::memcpy(mb_.dense.data() + row * d, mb_.dense.data(),
                  static_cast<std::size_t>(d) * sizeof(float));
      mb_.labels[row] = mb_.labels[0];
      for (std::int64_t t = 0; t < data_.tables(); ++t) {
        const std::int64_t p = data_.pooling(t);
        std::int64_t* idx =
            mb_.bags[static_cast<std::size_t>(t)].indices.data();
        std::memcpy(idx + row * p, idx,
                    static_cast<std::size_t>(p) * sizeof(std::int64_t));
      }
    }
    if (prof_ != nullptr) {
      prof_->add("serve_assemble", now_sec() - t0);
      if (exec > total) {
        prof_->add("serve_padded", static_cast<double>(exec - total));
      }
    }
  }

  const double fwd0 = now_sec();
  const Tensor<float>* logits = &snap_->forward(mb_, prof_);
  if (prof_ != nullptr) prof_->add("serve_forward", now_sec() - fwd0);

  const double done = now_sec();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++batches_;
    samples_ += total;
    std::int64_t row = 0;
    for (const Request& r : reqs) {
      Response resp;
      resp.id = r.id;
      resp.latency_ms = (done - r.submit_sec) * 1e3;
      resp.batch = total;
      resp.version = snap_->version();
      resp.score0 = (*logits)[row];
      resp.slo = r.slo;
      const auto c = static_cast<std::size_t>(r.slo);
      latencies_ms_.push_back(resp.latency_ms);
      class_lat_[c].push_back(resp.latency_ms);
      ++served_class_[c];
      if (resp.latency_ms > options_.slo_ms) ++slo_violations_;
      if (prof_ != nullptr) prof_->add("serve_latency", done - r.submit_sec);
      responses_.push_back(resp);
      row += r.fanout;
    }
  }
  // Feed served latencies back to the admission controller outside the
  // stats lock (record_latency takes the queue lock and wakes the drain).
  for (const Request& r : reqs) {
    queue_.record_latency(r.slo, (done - r.submit_sec) * 1e3);
  }
}

std::vector<Response> InferenceEngine::run_trace(
    const std::vector<Request>& trace) {
  DLRM_CHECK(!running_, "run_trace needs a stopped engine");
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    wall_start_ = now_sec();
    wall_end_ = 0.0;
  }
  std::vector<Request> batch;
  std::int64_t samples = 0;
  std::size_t first_resp;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    first_resp = responses_.size();
  }
  for (const Request& r : trace) {
    if (!batch.empty() &&
        samples + r.fanout > options_.policy.max_batch) {
      execute_batch(batch);
      batch.clear();
      samples = 0;
    }
    batch.push_back(r);
    samples += r.fanout;
  }
  if (!batch.empty()) execute_batch(batch);
  std::lock_guard<std::mutex> lock(stats_mu_);
  wall_end_ = now_sec();
  return {responses_.begin() + static_cast<std::ptrdiff_t>(first_resp),
          responses_.end()};
}

ServeStats InferenceEngine::stats() const {
  // Queue-side state first (its own lock) to avoid nesting under stats_mu_.
  const QueueCounters qc = queue_.counters();
  const AdmissionState astate = queue_.admission_state();
  const double ap99 = queue_.admission_p99_ms();

  std::lock_guard<std::mutex> lock(stats_mu_);
  ServeStats s;
  s.requests = static_cast<std::int64_t>(responses_.size());
  s.batches = batches_;
  s.samples = samples_;
  s.slo_violations = slo_violations_;
  s.rejected = rejected_;
  std::vector<double> sorted = latencies_ms_;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = percentile_nearest_rank(sorted, 0.50);
  s.p95_ms = percentile_nearest_rank(sorted, 0.95);
  s.p99_ms = percentile_nearest_rank(sorted, 0.99);
  s.max_ms = sorted.empty() ? 0.0 : sorted.back();
  s.mean_batch = batches_ > 0
                     ? static_cast<double>(samples_) / static_cast<double>(batches_)
                     : 0.0;
  const double end = wall_end_ > 0.0 ? wall_end_ : now_sec();
  s.wall_sec = std::max(1e-9, end - wall_start_);
  s.throughput_rps = static_cast<double>(s.requests) / s.wall_sec;
  s.admission_state = astate;
  s.admission_p99_ms = ap99;
  for (int c = 0; c < kNumSloClasses; ++c) {
    auto& cs = s.by_class[static_cast<std::size_t>(c)];
    cs.admitted = qc.admitted[static_cast<std::size_t>(c)];
    cs.served = served_class_[static_cast<std::size_t>(c)];
    cs.shed = qc.shed[static_cast<std::size_t>(c)];
    cs.deferred = qc.deferred[static_cast<std::size_t>(c)];
    std::vector<double> csorted = class_lat_[static_cast<std::size_t>(c)];
    std::sort(csorted.begin(), csorted.end());
    cs.p50_ms = percentile_nearest_rank(csorted, 0.50);
    cs.p95_ms = percentile_nearest_rank(csorted, 0.95);
    cs.p99_ms = percentile_nearest_rank(csorted, 0.99);
    cs.max_ms = csorted.empty() ? 0.0 : csorted.back();
    s.shed += cs.shed;
  }
  return s;
}

std::vector<Response> InferenceEngine::responses() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return responses_;
}

void InferenceEngine::reset_stats() {
  queue_.reset_counters();
  std::lock_guard<std::mutex> lock(stats_mu_);
  responses_.clear();
  latencies_ms_.clear();
  for (auto& v : class_lat_) v.clear();
  served_class_.fill(0);
  batches_ = samples_ = slo_violations_ = rejected_ = 0;
  wall_start_ = now_sec();
  wall_end_ = 0.0;
}

}  // namespace dlrm::serve
