#include "core/trainer.hpp"

#include <algorithm>

#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"

namespace dlrm {

namespace {

/// The single-process "geometry": every table is one full shard on rank 0,
/// which is how a Trainer snapshot interoperates with sharded ones.
ShardingPlan single_process_plan(const DlrmConfig& config) {
  return ShardingPlan::round_robin(config.table_rows, /*ranks=*/1);
}

}  // namespace

Trainer::Trainer(DlrmModel& model, Optimizer& opt, const Dataset& data,
                 TrainerOptions options)
    : model_(model), opt_(opt), data_(data), options_(options) {
  DLRM_CHECK(options_.batch > 0, "batch must be positive");
  model_.set_batch(options_.batch);
  init_pipeline();
}

Trainer::Trainer(DlrmModel& model, const Dataset& data, TrainerOptions options)
    : model_(model),
      owned_opt_(make_dense_optimizer(model.config().mlp_precision)),
      opt_(*owned_opt_),
      data_(data),
      options_(options) {
  DLRM_CHECK(options_.batch > 0, "batch must be positive");
  owned_opt_->attach(model_.mlp_param_slots());
  model_.set_batch(options_.batch);
  init_pipeline();
}

void Trainer::init_pipeline() {
  if (!options_.prefetch) return;
  // Full-batch single-process stream: each worker drives its own loader
  // clone through next_full, which materializes exactly the data_.fill
  // call the synchronous path makes — so the stream is bit-identical to
  // running without the pipeline.
  loader_ = std::make_unique<DataLoader>(data_, options_.batch, /*rank=*/0,
                                         /*ranks=*/1,
                                         std::vector<std::int64_t>{},
                                         LoaderMode::kLocalSlice);
  const PrefetchOptions popts{.enabled = true,
                              .depth = options_.prefetch_depth,
                              .workers = options_.prefetch_workers};
  auto workers =
      make_worker_loaders<MiniBatch>(*loader_, popts, &DataLoader::next_full);
  DataLoader* sync = loader_.get();
  pipeline_ = std::make_unique<PrefetchPipeline<MiniBatch>>(
      [sync](std::int64_t iter, MiniBatch& out) { sync->next_full(iter, out); },
      std::move(workers.fns), popts);
  // The clones must outlive the pipeline threads; keep them alongside.
  worker_loaders_ = std::move(workers.clones);
}

double Trainer::train(std::int64_t iters, Profiler* prof) {
  Meter loss;
  for (std::int64_t i = 0; i < iters; ++i) {
    if (pipeline_ != nullptr) {
      loss.add(model_.train_step(pipeline_->next(iter_), options_.lr, opt_,
                                 prof));
    } else {
      data_.fill(iter_ * options_.batch, options_.batch, scratch_);
      loss.add(model_.train_step(scratch_, options_.lr, opt_, prof));
    }
    ++iter_;
    if (ckpt_every_ > 0 && iter_ % ckpt_every_ == 0) {
      save_checkpoint(ckpt_dir_);
    }
  }
  return loss.mean();
}

void Trainer::set_checkpointing(std::string dir, std::int64_t save_every) {
  DLRM_CHECK(!dir.empty(), "checkpoint directory must not be empty");
  ckpt_dir_ = std::move(dir);
  ckpt_every_ = save_every;
}

void Trainer::save_checkpoint(const std::string& dir) {
  ckpt::CheckpointWriter writer(dir, /*rank=*/0, iter_);
  const ShardingPlan plan = single_process_plan(model_.config());
  std::vector<EmbeddingTable*> tables;
  for (std::int64_t t = 0; t < model_.tables(); ++t) {
    tables.push_back(&model_.table(t));
  }
  // Canonical shard order == table order: round_robin emits one full-table
  // shard per table, sorted by table id.
  writer.write_shards(plan.shards(), tables);
  const auto key = ckpt::ModelConfigKey::from(
      model_.config(), model_.options().embed_precision, options_.batch);
  ckpt::TrainerState state;
  state.step = iter_;
  state.lr = options_.lr;
  state.data_cursor = iter_;  // next training-stream iteration to consume
  writer.write_manifest(key, state, plan, model_.bottom_mlp(),
                        model_.top_mlp(), opt_);
  writer.remove_stale_shards();  // manifest committed: GC superseded files
}

bool Trainer::resume_from(const std::string& dir) {
  if (!ckpt::CheckpointReader::exists(dir)) return false;
  ckpt::CheckpointReader reader(dir);
  reader.check_model(ckpt::ModelConfigKey::from(
      model_.config(), model_.options().embed_precision, options_.batch));
  reader.load_dense(model_.bottom_mlp(), model_.top_mlp());
  reader.load_optimizer(opt_);
  const ShardingPlan plan = single_process_plan(model_.config());
  for (std::int64_t t = 0; t < model_.tables(); ++t) {
    reader.load_shard_rows(plan.shard(t), model_.table(t));
  }
  iter_ = reader.step();
  options_.lr = reader.lr();
  // Training consumption is keyed on iter_, so a snapshot whose stream
  // cursor diverged from its step (no current writer produces one) would
  // silently replay or skip batches — refuse it instead.
  DLRM_CHECK(reader.data_cursor() == reader.step(),
             "saved data-stream cursor diverges from the saved step; "
             "cursor-driven consumption is not wired yet");
  if (pipeline_ != nullptr) {
    // Warm restart: reposition the workers at the saved stream cursor and
    // refill, so the first post-restore step consumes a full pipeline.
    pipeline_->seek(reader.data_cursor());
    pipeline_->prefill();
  }
  return true;
}

double Trainer::evaluate(std::int64_t first, std::int64_t n) {
  AucAccumulator auc;
  MiniBatch mb;
  const std::int64_t bs = options_.batch;
  for (std::int64_t off = 0; off < n; off += bs) {
    const std::int64_t take = std::min(bs, n - off);
    // Keep the model batch fixed: evaluate full batches, padding by wrap.
    data_.fill(first + off, bs, mb);
    const Tensor<float>& scores = model_.predict(mb);
    auc.add(scores.data(), mb.labels.data(), take);
  }
  return auc.compute();
}

std::vector<EvalPoint> Trainer::train_with_eval(std::int64_t train_samples,
                                                std::int64_t eval_samples,
                                                int eval_points,
                                                const LrSchedule& lr_schedule) {
  return detail::train_with_eval_loop(*this, options_.batch, train_samples,
                                      eval_samples, eval_points, lr_schedule);
}

}  // namespace dlrm
