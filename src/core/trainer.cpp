#include "core/trainer.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dlrm {

Trainer::Trainer(DlrmModel& model, Optimizer& opt, const Dataset& data,
                 TrainerOptions options)
    : model_(model), opt_(opt), data_(data), options_(options) {
  DLRM_CHECK(options_.batch > 0, "batch must be positive");
  model_.set_batch(options_.batch);
}

Trainer::Trainer(DlrmModel& model, const Dataset& data, TrainerOptions options)
    : model_(model),
      owned_opt_(make_dense_optimizer(model.config().mlp_precision)),
      opt_(*owned_opt_),
      data_(data),
      options_(options) {
  DLRM_CHECK(options_.batch > 0, "batch must be positive");
  owned_opt_->attach(model_.mlp_param_slots());
  model_.set_batch(options_.batch);
}

double Trainer::train(std::int64_t iters, Profiler* prof) {
  Meter loss;
  for (std::int64_t i = 0; i < iters; ++i) {
    data_.fill(iter_ * options_.batch, options_.batch, scratch_);
    loss.add(model_.train_step(scratch_, options_.lr, opt_, prof));
    ++iter_;
  }
  return loss.mean();
}

double Trainer::evaluate(std::int64_t first, std::int64_t n) {
  AucAccumulator auc;
  MiniBatch mb;
  const std::int64_t bs = options_.batch;
  for (std::int64_t off = 0; off < n; off += bs) {
    const std::int64_t take = std::min(bs, n - off);
    // Keep the model batch fixed: evaluate full batches, padding by wrap.
    data_.fill(first + off, bs, mb);
    const Tensor<float>& scores = model_.predict(mb);
    auc.add(scores.data(), mb.labels.data(), take);
  }
  return auc.compute();
}

std::vector<EvalPoint> Trainer::train_with_eval(std::int64_t train_samples,
                                                std::int64_t eval_samples,
                                                int eval_points,
                                                const LrSchedule& lr_schedule) {
  return detail::train_with_eval_loop(*this, options_.batch, train_samples,
                                      eval_samples, eval_points, lr_schedule);
}

}  // namespace dlrm
