#include "core/trainer.hpp"

#include <algorithm>
#include <utility>

#include "ckpt/async.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"

namespace dlrm {

namespace {

/// The single-process "geometry": every table is one full shard on rank 0,
/// which is how a Trainer snapshot interoperates with sharded ones.
ShardingPlan single_process_plan(const DlrmConfig& config) {
  return ShardingPlan::round_robin(config.table_rows, /*ranks=*/1);
}

}  // namespace

Trainer::Trainer(DlrmModel& model, Optimizer& opt, const Dataset& data,
                 TrainerOptions options)
    : model_(model), opt_(opt), data_(data), options_(options) {
  DLRM_CHECK(options_.batch > 0, "batch must be positive");
  DLRM_CHECK(options_.grad_accum >= 1, "grad_accum must be >= 1");
  DLRM_CHECK(options_.batch % options_.grad_accum == 0,
             "batch must divide evenly into grad_accum micro-batches");
  micro_batch_ = options_.batch / options_.grad_accum;
  model_.set_batch(micro_batch_);
  if (options_.grad_accum > 1) accum_.attach(model_.mlp_param_slots());
  init_pipeline();
}

Trainer::Trainer(DlrmModel& model, const Dataset& data, TrainerOptions options)
    : model_(model),
      owned_opt_(make_dense_optimizer(model.config().mlp_precision)),
      opt_(*owned_opt_),
      data_(data),
      options_(options) {
  DLRM_CHECK(options_.batch > 0, "batch must be positive");
  DLRM_CHECK(options_.grad_accum >= 1, "grad_accum must be >= 1");
  DLRM_CHECK(options_.batch % options_.grad_accum == 0,
             "batch must divide evenly into grad_accum micro-batches");
  micro_batch_ = options_.batch / options_.grad_accum;
  owned_opt_->attach(model_.mlp_param_slots());
  model_.set_batch(micro_batch_);
  if (options_.grad_accum > 1) accum_.attach(model_.mlp_param_slots());
  init_pipeline();
}

Trainer::~Trainer() = default;

void Trainer::init_pipeline() {
  if (!options_.prefetch) return;
  // Micro-batch single-process stream: each worker drives its own loader
  // clone through next_full, which materializes exactly the data_.fill
  // call the synchronous path makes — so the stream is bit-identical to
  // running without the pipeline. The loader runs at the micro-batch size;
  // with grad_accum == 1 that is the full batch, as before.
  loader_ = std::make_unique<DataLoader>(data_, micro_batch_, /*rank=*/0,
                                         /*ranks=*/1,
                                         std::vector<std::int64_t>{},
                                         LoaderMode::kLocalSlice);
  tuner_ = PipelineController(options_.autotune, options_.prefetch_workers,
                              options_.prefetch_depth);
  rebuild_pipeline(options_.prefetch_workers, options_.prefetch_depth);
}

void Trainer::rebuild_pipeline(int workers, int depth) {
  // Join any existing worker threads before their loader clones go away.
  pipeline_.reset();
  worker_loaders_.clear();
  const PrefetchOptions popts{
      .enabled = true, .depth = depth, .workers = workers};
  auto wl =
      make_worker_loaders<MiniBatch>(*loader_, popts, &DataLoader::next_full);
  // The clones must outlive the pipeline threads; keep them alongside.
  worker_loaders_ = std::move(wl.clones);
  DataLoader* sync = loader_.get();
  pipeline_ = std::make_unique<PrefetchPipeline<MiniBatch>>(
      [sync](std::int64_t iter, MiniBatch& out) { sync->next_full(iter, out); },
      std::move(wl.fns), popts);
}

void Trainer::maybe_autotune(double exposed_sec, double wall_sec,
                             Profiler* prof) {
  if (!tuner_.enabled() || pipeline_ == nullptr) return;
  tuner_.observe(exposed_sec, wall_sec);
  if (!tuner_.window_complete()) return;
  const PipelineDecision d = tuner_.decide(
      tuner_.window_exposed_sec(), tuner_.window_wall_sec(), iter_);
  if (prof != nullptr) prof->add("pipeline_stall_frac", d.stall_frac);
  if (!d.resize) return;
  // Same drain -> rebuild -> seek()+prefill() mechanics as reshard and warm
  // restore: the reassembly contract makes the batch stream independent of
  // the pipeline shape, so this resize is invisible to the loss sequence.
  rebuild_pipeline(d.workers, d.depth);
  pipeline_->seek(iter_ * options_.grad_accum);
  pipeline_->prefill();
  if (prof != nullptr) prof->add("pipeline_resize_count", 1.0);
}

double Trainer::train(std::int64_t iters, Profiler* prof) {
  Meter loss;
  const int A = options_.grad_accum;
  for (std::int64_t i = 0; i < iters; ++i) {
    const Timer step_timer;
    double step_exposed = 0.0;
    if (A == 1) {
      if (pipeline_ != nullptr) {
        const MiniBatch& mb = pipeline_->next(iter_);
        step_exposed += pipeline_->last_wait_sec();
        loss.add(model_.train_step(mb, options_.lr, opt_, prof));
      } else {
        data_.fill(iter_ * micro_batch_, micro_batch_, scratch_);
        loss.add(model_.train_step(scratch_, options_.lr, opt_, prof));
      }
    } else {
      // One accumulation window: A micro-steps with dlogits scaled by 1/A,
      // dense grads summed in fp32 (fixed order), one optimizer apply.
      const float scale = 1.0f / static_cast<float>(A);
      double wloss = 0.0;
      for (int a = 0; a < A; ++a) {
        const std::int64_t micro = iter_ * A + a;
        if (pipeline_ != nullptr) {
          const MiniBatch& mb = pipeline_->next(micro);
          step_exposed += pipeline_->last_wait_sec();
          wloss += model_.micro_step(mb, options_.lr, scale, prof);
        } else {
          data_.fill(micro * micro_batch_, micro_batch_, scratch_);
          wloss += model_.micro_step(scratch_, options_.lr, scale, prof);
        }
        accum_.add();
      }
      const Timer flush;
      accum_.fold_into_slots();
      opt_.step(options_.lr);
      if (prof != nullptr) prof->add("accum_flush", flush.elapsed_sec());
      loss.add(wloss / A);
    }
    ++iter_;
    maybe_autotune(step_exposed, step_timer.elapsed_sec(), prof);
    if (ckpt_opts_.save_every > 0 && iter_ % ckpt_opts_.save_every == 0) {
      save_now(prof);
    }
  }
  return loss.mean();
}

void Trainer::set_checkpointing(std::string dir, std::int64_t save_every) {
  CheckpointOptions opts;
  opts.save_every = save_every;
  set_checkpointing(std::move(dir), opts);
}

void Trainer::set_checkpointing(std::string dir, CheckpointOptions opts) {
  DLRM_CHECK(!dir.empty(), "checkpoint directory must not be empty");
  DLRM_CHECK(opts.keep_last >= 1, "keep_last must be >= 1");
  ckpt_dir_ = std::move(dir);
  ckpt_opts_ = opts;
  async_.reset();  // re-created on demand with the new settings
}

void Trainer::finish_checkpoints() {
  if (async_ != nullptr) async_->wait_idle();
}

void Trainer::save_now(Profiler* prof) {
  const Timer stall;
  if (ckpt_opts_.async) {
    if (async_ == nullptr) {
      async_ = std::make_unique<ckpt::AsyncCheckpointWriter>(
          ckpt_dir_, /*rank=*/0, /*ranks=*/1, ckpt_opts_.keep_last);
    }
    // Capture only: serialize the state into the staging buffer and hand it
    // to the writer thread. The exposed stall is this capture plus any
    // back-pressure from a still-draining previous snapshot.
    ckpt::StagedSave save = async_->take_buffer();
    save.step = iter_;
    const ShardingPlan plan = single_process_plan(model_.config());
    std::vector<EmbeddingTable*> tables;
    for (std::int64_t t = 0; t < model_.tables(); ++t) {
      tables.push_back(&model_.table(t));
    }
    ckpt::build_shard_sections_into(save.shard_sections, iter_, plan.shards(),
                                    tables);
    save.has_manifest = true;
    const auto key = ckpt::ModelConfigKey::from(
        model_.config(), model_.options().embed_precision, options_.batch);
    ckpt::TrainerState state;
    state.step = iter_;
    state.lr = options_.lr;
    state.data_cursor = iter_ * options_.grad_accum;
    ckpt::build_manifest_sections_into(save.manifest_sections, key, state,
                                       plan, model_.bottom_mlp(),
                                       model_.top_mlp(), opt_);
    async_->submit(std::move(save));
  } else {
    save_checkpoint(ckpt_dir_);
  }
  const double sec = stall.elapsed_sec();
  ckpt_stall_sec_ += sec;
  if (prof != nullptr) prof->add("ckpt_stall_us", sec);
}

void Trainer::save_checkpoint(const std::string& dir) {
  ckpt::CheckpointWriter writer(dir, /*rank=*/0, iter_, ckpt_opts_.keep_last);
  const ShardingPlan plan = single_process_plan(model_.config());
  std::vector<EmbeddingTable*> tables;
  for (std::int64_t t = 0; t < model_.tables(); ++t) {
    tables.push_back(&model_.table(t));
  }
  // Canonical shard order == table order: round_robin emits one full-table
  // shard per table, sorted by table id.
  writer.write_shards(plan.shards(), tables);
  const auto key = ckpt::ModelConfigKey::from(
      model_.config(), model_.options().embed_precision, options_.batch);
  ckpt::TrainerState state;
  state.step = iter_;
  state.lr = options_.lr;
  // Next training-stream position in loader (micro-batch) units.
  state.data_cursor = iter_ * options_.grad_accum;
  writer.write_manifest(key, state, plan, model_.bottom_mlp(),
                        model_.top_mlp(), opt_);
  writer.remove_stale_shards();  // manifest committed: GC superseded files
}

bool Trainer::resume_from(const std::string& dir) {
  if (!ckpt::CheckpointReader::exists(dir)) return false;
  ckpt::CheckpointReader reader(dir);
  // A crash mid-background-save can leave .tmp files or step-suffixed files
  // beyond the committed manifest; they are dead weight, never read.
  ckpt::gc_torn_files(dir, reader.step());
  reader.check_model(ckpt::ModelConfigKey::from(
      model_.config(), model_.options().embed_precision, options_.batch));
  reader.load_dense(model_.bottom_mlp(), model_.top_mlp());
  reader.load_optimizer(opt_);
  const ShardingPlan plan = single_process_plan(model_.config());
  for (std::int64_t t = 0; t < model_.tables(); ++t) {
    reader.load_shard_rows(plan.shard(t), model_.table(t));
  }
  iter_ = reader.step();
  options_.lr = reader.lr();
  // The stream cursor advances grad_accum micro-batches per step; a mismatch
  // means the snapshot was taken under a different accumulation window and
  // resuming would silently replay or skip batches — refuse it instead.
  DLRM_CHECK(reader.data_cursor() == reader.step() * options_.grad_accum,
             "saved data-stream cursor does not match step x grad_accum; "
             "resume with the grad_accum the snapshot was taken with");
  if (pipeline_ != nullptr) {
    // Warm restart: reposition the workers at the saved stream cursor and
    // refill, so the first post-restore step consumes a full pipeline.
    pipeline_->seek(reader.data_cursor());
    pipeline_->prefill();
  }
  return true;
}

double Trainer::evaluate(std::int64_t first, std::int64_t n) {
  AucAccumulator auc;
  MiniBatch mb;
  const std::int64_t bs = micro_batch_;
  for (std::int64_t off = 0; off < n; off += bs) {
    const std::int64_t take = std::min(bs, n - off);
    // Keep the model batch fixed: evaluate full batches, padding by wrap.
    data_.fill(first + off, bs, mb);
    const Tensor<float>& scores = model_.predict(mb);
    auc.add(scores.data(), mb.labels.data(), take);
  }
  return auc.compute();
}

std::vector<EvalPoint> Trainer::train_with_eval(std::int64_t train_samples,
                                                std::int64_t eval_samples,
                                                int eval_points,
                                                const LrSchedule& lr_schedule) {
  return detail::train_with_eval_loop(*this, options_.batch, train_samples,
                                      eval_samples, eval_points, lr_schedule);
}

}  // namespace dlrm
