// Hybrid-parallel distributed DLRM training (paper Sect. IV).
//
// Parallelization strategy, generalizing the paper:
//   * Embedding tables — MODEL parallel under a pluggable ShardingPlan:
//     round-robin full tables (the paper's t % R layout), cost-balanced
//     full tables, or row-split shards. Each owned shard is computed for
//     the full global minibatch GN (partial bag sums for row splits).
//   * MLPs — DATA parallel: replicated on every rank, each processing its
//     local slice LN (chunk convention; GN need not divide by R); weight
//     gradients are allreduced (DDP).
//   * The interaction op consumes per-slice features, so a personalized
//     all-to-all realigns the embedding outputs before it (EmbeddingExchange)
//     and realigns gradients after it in the backward pass.
//
// Overlap schedule (when a QueueBackend is supplied):
//   fwd : embedding fwd (GN) → start alltoall → bottom MLP fwd (LN, overlaps)
//         → finish alltoall → interaction → top MLP → loss
//   bwd : top MLP bwd → interaction bwd → start alltoall(grads) → bottom MLP
//         bwd (overlaps) → start DDP allreduce → finish alltoall → embedding
//         update (overlaps allreduce) → finish DDP → optimizer step
// This realizes "allreduce can be overlapped over the entire backward pass
// whereas alltoall only with the bottom MLP" (Sect. VI.D).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/backend.hpp"
#include "comm/ddp.hpp"
#include "comm/exchange.hpp"
#include "comm/thread_comm.hpp"
#include "core/config.hpp"
#include "core/sharding.hpp"
#include "data/loader.hpp"
#include "kernels/embedding.hpp"
#include "kernels/interaction.hpp"
#include "kernels/mlp.hpp"
#include "optim/accum.hpp"
#include "optim/optimizer.hpp"
#include "stats/profiler.hpp"

namespace dlrm {

struct DistributedOptions {
  ExchangeStrategy exchange = ExchangeStrategy::kAlltoall;
  UpdateStrategy update_strategy = UpdateStrategy::kRaceFree;
  EmbedPrecision embed_precision = EmbedPrecision::kFp32;
  /// Blocking communication (the paper's instrumentation mode) when false.
  bool overlap = true;
  int ddp_buckets = 2;
  BlockTargets blocks{};
  float lr = 0.1f;
  std::uint64_t seed = 42;
  /// When the config's MLP precision is bf16, also move gradients and
  /// exchanged embedding rows as 2-byte bf16 payloads (half the wire volume
  /// of Eqs. 1–2). Set false to ablate: bf16 compute with fp32 comm.
  bool bf16_wire = true;
  /// Hot-row working tier applied to every owned shard (capacity is per
  /// shard, clamped to its rows). kHist admission additionally wants a call
  /// to configure_embedding_cache() with row histograms; kCounter
  /// self-manages. Bit-identical to the uncached path for every precision.
  EmbCacheOptions emb_cache{};
};

/// One rank's shard of the hybrid-parallel DLRM. Construct one per rank
/// thread (e.g. inside run_ranks) and drive train_step per iteration.
class DistributedDlrm {
 public:
  /// `backend` may be null → all communication is blocking. `plan` places
  /// the embedding tables; an empty plan selects round-robin (the
  /// historical layout). All ranks must construct with the same plan.
  DistributedDlrm(const DlrmConfig& config, DistributedOptions options,
                  ThreadComm& comm, QueueBackend* backend,
                  std::int64_t global_batch, ShardingPlan plan = {});

  std::int64_t global_batch() const { return gn_; }
  std::int64_t local_batch() const { return ln_; }
  const DlrmConfig& config() const { return config_; }
  const DistributedOptions& options() const { return options_; }
  const ShardingPlan& plan() const { return exchange_->plan(); }
  /// Table ids of this rank's shards (one entry per owned shard).
  const std::vector<std::int64_t>& owned_tables() const {
    return exchange_->owned_ids();
  }
  /// The shards this rank owns, in canonical order.
  std::vector<Shard> owned_shards() const;

  /// One training iteration on a hybrid batch (local dense slice + owned
  /// shards' global bags). Returns the local mean BCE loss.
  double train_step(const HybridBatch& hb, Profiler* prof = nullptr);

  /// One gradient-accumulation micro-iteration at the model's (micro)
  /// global batch. The loss gradient is pre-scaled by `window_scale` (1/A
  /// for a window of A micro-batches, on top of the uneven-slice
  /// re-weighting), dense grads are accumulated into `accum`, and the
  /// sparse embedding update applies immediately with the same scaling.
  /// When `flush` is false the DDP allreduce and the dense optimizer step
  /// are skipped entirely; on the window-closing call (`flush` true) the
  /// accumulated grads fold back into the layers, ONE allreduce runs —
  /// overlapped with the embedding update, exactly like train_step — and
  /// the optimizer applies. `accum` must be attached to this model's MLP
  /// slots (attach_accumulator). Returns the (unscaled) micro-batch loss.
  double accumulate_step(const HybridBatch& hb, GradAccumulator& accum,
                         float window_scale, bool flush,
                         Profiler* prof = nullptr);

  /// Attaches `accum` to this rank's MLP parameter slots (the same slots,
  /// in the same order, DDP and the dense optimizer use).
  void attach_accumulator(GradAccumulator& accum);

  /// Forward only; returns local logits [LN] (for evaluation).
  const Tensor<float>& forward(const HybridBatch& hb, Profiler* prof = nullptr);

  /// Adjusts the learning rate (lr-decay schedules; applies to the sparse
  /// embedding update and the dense optimizer step alike).
  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

  Mlp& bottom_mlp() { return bottom_; }
  Mlp& top_mlp() { return top_; }
  /// k-th owned shard's table storage.
  EmbeddingTable& owned_table(std::int64_t k) { return *tables_[static_cast<std::size_t>(k)]; }
  /// The rank's dense optimizer (replicated state — rank 0's copy is what a
  /// checkpoint records).
  Optimizer& dense_optimizer() { return *opt_; }

  /// Comm instrumentation of the last train_step.
  double last_alltoall_wait_sec() const { return a2a_wait_; }
  double last_alltoall_framework_sec() const { return a2a_frame_; }
  double last_allreduce_wait_sec() const { return ddp_.wait_sec(); }
  double last_allreduce_framework_sec() const { return ddp_.framework_sec(); }
  /// Completed DDP allreduces since construction (one per window under
  /// gradient accumulation, one per step without).
  std::int64_t allreduce_runs() const { return ddp_.runs(); }

  /// Cumulative wall time this rank spent in embedding kernels (forward +
  /// fused backward/update) across all steps — the model-parallel work a
  /// ShardingPlan balances. Always measured (independent of the Profiler).
  double embedding_sec() const { return emb_sec_; }

  // ---- Hot-row cache tier ---------------------------------------------

  /// (Re)configures the working tier on every owned shard. `row_hists`
  /// (one LookupStats histogram per logical table, any bucket count) seeds
  /// kHist admission; kCounter admission is runtime-managed and ignores it.
  void configure_embedding_cache(
      const EmbCacheOptions& opts,
      const std::vector<std::vector<double>>* row_hists = nullptr);

  /// Cache counters summed over owned shards, cumulative across reshards
  /// (migrated-away shards' tallies are carried over).
  EmbCacheStats cache_stats() const;
  void reset_cache_stats();

  // ---- Runtime lookup statistics + live re-balancing ------------------

  /// Starts accumulating per-table lookup rates and row histograms from the
  /// bag streams this rank actually trains on (`buckets` row-range buckets
  /// per table). Costs a scalar pass over the indices each step; off by
  /// default.
  void enable_lookup_stats(std::int64_t buckets);
  bool lookup_stats_enabled() const { return stats_buckets_ > 0; }
  /// Samples observed since enable/reset (same on every rank).
  std::int64_t lookup_stats_samples() const { return stats_samples_; }

  /// SPMD: sums every rank's accumulated statistics (each shard owner only
  /// sees its own rows' traffic) into the global LookupStats every rank
  /// agrees on — the input for make_sharding_plan_from_stats.
  LookupStats lookup_stats_allreduced();
  void reset_lookup_stats();

  struct ReshardResult {
    bool changed = false;          // false: new plan equals the current one
    std::int64_t rows_moved = 0;   // rows that crossed ranks (global)
    std::int64_t bytes_moved = 0;  // wire volume of the migration (global)
    double stall_sec = 0.0;        // this rank's wall time inside reshard
  };

  /// SPMD: migrates the embedding state onto `new_plan` — export row spans,
  /// one alltoallv to the new owners, import — then swaps the exchange
  /// routing. Bit-exact: every row's storage (hidden Split-SGD halves
  /// included) survives verbatim via the checkpoint row codec; no training
  /// state is lost. The cache tier is reconfigured on the migrated shards
  /// (`row_hists` seeds kHist re-admission). All ranks must pass the same
  /// plan.
  ReshardResult reshard(const ShardingPlan& new_plan,
                        const std::vector<std::vector<double>>* row_hists =
                            nullptr);

 private:
  void backward(const HybridBatch& hb, const Tensor<float>& dlogits,
                Profiler* prof, GradAccumulator* accum = nullptr,
                bool flush = true);
  void note_lookup_stats(const HybridBatch& hb);

  DlrmConfig config_;
  DistributedOptions options_;
  ThreadComm& comm_;
  QueueBackend* backend_;
  std::int64_t gn_, ln_;

  Mlp bottom_, top_;
  std::vector<std::unique_ptr<EmbeddingTable>> tables_;  // owned shards only
  DotInteraction interaction_;
  // unique_ptr so reshard() can swap in the new plan's routing (the exchange
  // holds reference members and is deliberately not assignable).
  std::unique_ptr<EmbeddingExchange> exchange_;
  DdpAllreducer ddp_;
  std::unique_ptr<Optimizer> opt_;  // matches config.mlp_precision

  // Activations / gradients (local slice unless noted).
  std::vector<Tensor<float>> emb_out_;   // per owned shard [GN][E]
  std::vector<Tensor<float>> demb_own_;  // per owned shard [GN][E]
  Tensor<float> sliced_;                 // [S][LN][E]
  Tensor<float> dsliced_;                // [S][LN][E]
  Tensor<float> interact_out_, dinteract_;
  Tensor<float> logits_, dlogits2d_, dz0_;

  double a2a_wait_ = 0.0, a2a_frame_ = 0.0;
  double emb_sec_ = 0.0;

  // Cache counters of shards migrated away, so cache_stats() stays
  // cumulative across reshards.
  EmbCacheStats cache_carry_{};

  // Runtime lookup statistics (global-table bucket space, so they survive
  // reshards unchanged).
  std::int64_t stats_buckets_ = 0;
  std::int64_t stats_samples_ = 0;
  std::vector<double> stats_lookups_;               // per table
  std::vector<std::vector<double>> stats_hist_;     // per table, B_t buckets
};

}  // namespace dlrm
