// DLRM model configurations (paper Table I) and their derived distributed
// characteristics (paper Table II, Eqs. 1–2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dlrm {

/// A DLRM topology + benchmark parameters.
struct DlrmConfig {
  std::string name;

  // Minibatch sizes (Table I).
  std::int64_t minibatch = 2048;            // single-socket MB
  std::int64_t global_batch_strong = 8192;  // GN for strong scaling
  std::int64_t local_batch_weak = 1024;     // LN for weak scaling

  // Embedding side.
  std::int64_t pooling = 50;               // P, avg lookups per table
  std::int64_t dim = 64;                   // E
  std::vector<std::int64_t> table_rows;    // M per table (size S)
  double index_skew = 0.0;                 // Zipf s of the index stream

  // MLPs: full layer-size chains including input and output widths.
  // bottom_mlp.back() must equal dim (the interaction feature width).
  std::vector<std::int64_t> bottom_mlp;
  // top_mlp lists hidden widths and the final width 1; its input width is
  // derived from the interaction output.
  std::vector<std::int64_t> top_mlp;

  // Interaction output padding multiple (0/1 = no padding).
  std::int64_t interaction_pad = 32;

  // MLP data-path precision (paper Sect. III.C / Fig. 16): bf16 runs the
  // whole dense stack — blocked tensors, batch-reduce GEMMs, gradient wire
  // format — in bf16 with fp32 accumulation and Split-SGD master weights.
  Precision mlp_precision = Precision::kFp32;

  std::int64_t tables() const { return static_cast<std::int64_t>(table_rows.size()); }

  /// Interaction output width before padding: E + (S+1)S/2 with S+1 features.
  std::int64_t interaction_payload() const {
    const std::int64_t f = tables() + 1;
    return dim + f * (f - 1) / 2;
  }
  std::int64_t interaction_out() const {
    const std::int64_t pad = interaction_pad <= 1 ? 1 : interaction_pad;
    return (interaction_payload() + pad - 1) / pad * pad;
  }

  /// Full top-MLP chain including the derived input width.
  std::vector<std::int64_t> top_mlp_full() const;

  /// Memory for all embedding tables in bytes (fp32), Table II row 1.
  std::int64_t table_bytes() const;

  /// Eq. 1: allreduce element count = sum over all MLP layers of
  /// f_in*f_out + f_out (weights + bias gradients).
  std::int64_t allreduce_elems() const;

  /// Allreduce wire volume in bytes for a given gradient payload precision:
  /// bf16 payloads (2 bytes/elem) halve the Table II volumes.
  std::int64_t allreduce_bytes(Precision wire) const {
    return allreduce_elems() * (wire == Precision::kBf16 ? 2 : 4);
  }

  /// Eq. 2: total alltoall element volume for global minibatch `gn`.
  std::int64_t alltoall_elems(std::int64_t gn) const { return tables() * gn * dim; }

  /// Maximum ranks for pure model-parallel embeddings: one table per rank.
  std::int64_t max_ranks() const { return tables(); }

  /// Minimum sockets needed to hold the tables, given per-socket memory.
  std::int64_t min_sockets(double socket_mem_bytes) const;

  /// Proportionally shrunk copy (rows and batches divided) for running the
  /// paper-shaped configs on a small test machine; topology is unchanged.
  DlrmConfig scaled_down(std::int64_t row_divisor,
                         std::int64_t batch_divisor) const;

  void validate() const;
};

/// Table I "Small" — the model problem from the DLRM release paper.
DlrmConfig small_config();

/// Table I "Large" — small scaled up in every aspect for scale-out runs.
DlrmConfig large_config();

/// Table I "MLPerf" — the MLPerf recommendation benchmark on Criteo
/// Terabyte. Notes: the paper's Table I lists the top MLP as 512-512-256-1,
/// but its own Table II reports a 9.0 MB allreduce, which only matches the
/// MLPerf v0.7 top MLP 1024-1024-512-256-1 — we use the latter so Table II
/// reproduces. Table rows use the published per-table Criteo Terabyte
/// cardinalities (max 40M).
DlrmConfig mlperf_config();

}  // namespace dlrm
