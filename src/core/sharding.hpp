// Pluggable embedding-table sharding (paper Sect. IV, generalized).
//
// The paper's hybrid parallelism assigns table t to rank t % R — fine when
// tables are uniform, but production DLRM table sets are heavily skewed
// (Gupta et al.): one hot table can serialize every iteration on its owner
// while the other ranks idle, and a single giant table cannot exceed one
// rank's memory. A ShardingPlan decouples placement from table order:
//
//   * kRoundRobin     — table t → rank t % R, one full-table shard per
//                       table. Bit-compatible with the historical layout.
//   * kGreedyBalanced — LPT bin-packing of full-table shards onto ranks by
//                       a per-table cost estimate (cluster/costmodel kernel
//                       times fed with measured dataset lookup statistics).
//   * kRowSplit       — tables above a row threshold are split into
//                       row-range shards placed on multiple ranks; bag
//                       indices are rewritten to shard-local rows and the
//                       forward path partial-sum-reduces the shard outputs.
//
// A plan is a pure function of (policy, table shapes, costs, rank count), so
// every rank computes the identical plan independently — no coordination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/costmodel.hpp"

namespace dlrm {

class Dataset;

enum class ShardingPolicy { kRoundRobin, kGreedyBalanced, kRowSplit };

const char* to_string(ShardingPolicy p);

/// One (table, row-range) slice assigned to a rank. Full-table shards have
/// row_begin == 0 and row_end == rows(table).
struct Shard {
  std::int64_t table = 0;
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;  // exclusive
  int rank = 0;
  double cost = 0.0;  // planner's cost estimate (seconds/iteration)

  std::int64_t rows() const { return row_end - row_begin; }
};

/// Immutable placement of every table's rows onto ranks. Shards are kept in
/// canonical order — sorted by (table, row_begin) — and referenced by their
/// canonical index everywhere (exchange layouts, loaders, tests).
class ShardingPlan {
 public:
  ShardingPlan() = default;

  /// table t → rank t % R, one shard per table (the historical layout).
  static ShardingPlan round_robin(const std::vector<std::int64_t>& table_rows,
                                  int ranks);

  /// Longest-processing-time bin packing of full-table shards: tables sorted
  /// by descending cost, each assigned to the least-loaded rank. `costs` has
  /// one entry per table (see estimate_table_costs); ties break towards the
  /// lower table id / rank id so the plan is deterministic.
  static ShardingPlan greedy_balanced(
      const std::vector<std::int64_t>& table_rows, int ranks,
      const std::vector<double>& costs);

  /// Tables with more than `row_threshold` rows are split into even
  /// row-range shards (at most `ranks` of them), then all shards are
  /// LPT-packed like greedy_balanced. `row_threshold` <= 0 selects
  /// ceil(total_rows / ranks). Without `row_hists` a shard's cost is the
  /// table cost times its *row* fraction (uniform-index assumption); with
  /// them it is the table cost times the shard's measured *lookup* fraction
  /// (bucket masses apportioned pro-rata at shard boundaries), so a Zipf
  /// head shard is costed at its real weight instead of its row share —
  /// one entry per table, see measure_lookup_stats().
  static ShardingPlan row_split(
      const std::vector<std::int64_t>& table_rows, int ranks,
      const std::vector<double>& costs, std::int64_t row_threshold,
      const std::vector<std::vector<double>>* row_hists = nullptr);

  /// Arbitrary placement (tests, external tuners). Every table's shards
  /// must tile its rows contiguously from row 0; `label` is only reported.
  static ShardingPlan custom(std::int64_t tables, int ranks,
                             std::vector<Shard> shards,
                             ShardingPolicy label = ShardingPolicy::kRowSplit);

  bool empty() const { return shards_.empty(); }
  ShardingPolicy policy() const { return policy_; }
  int ranks() const { return ranks_; }
  std::int64_t tables() const { return tables_; }
  std::int64_t num_shards() const {
    return static_cast<std::int64_t>(shards_.size());
  }

  /// All shards in canonical (table, row_begin) order.
  const std::vector<Shard>& shards() const { return shards_; }
  const Shard& shard(std::int64_t s) const {
    return shards_[static_cast<std::size_t>(s)];
  }

  /// Canonical shard indices owned by rank r, in increasing order.
  const std::vector<std::int64_t>& shards_of_rank(int r) const {
    return by_rank_[static_cast<std::size_t>(r)];
  }
  /// Canonical shard indices of table t, in increasing row order.
  const std::vector<std::int64_t>& shards_of_table(std::int64_t t) const {
    return by_table_[static_cast<std::size_t>(t)];
  }

  /// True when some table is split across more than one shard.
  bool has_split_tables() const { return split_tables_; }

  /// Rows resident on rank r (memory footprint driver).
  std::int64_t rank_rows(int r) const;
  /// Planner cost estimate summed over rank r's shards.
  double rank_cost(int r) const;
  /// max over ranks of rank_cost / mean over ranks (1.0 = perfectly even).
  double cost_imbalance() const;

  /// One line per rank: owned shards and their cost share.
  std::string describe() const;

 private:
  ShardingPlan(ShardingPolicy policy, std::int64_t tables, int ranks,
               std::vector<Shard> shards);

  ShardingPolicy policy_ = ShardingPolicy::kRoundRobin;
  std::int64_t tables_ = 0;
  int ranks_ = 0;
  bool split_tables_ = false;
  std::vector<Shard> shards_;
  std::vector<std::vector<std::int64_t>> by_rank_;
  std::vector<std::vector<std::int64_t>> by_table_;
};

/// Measured lookup statistics of a dataset's bag stream — what the
/// cost-driven planners consume. Everything is computed from one
/// deterministic materialization pass, so every rank derives the identical
/// plan without coordination.
struct LookupStats {
  /// Mean lookups per sample, one entry per table.
  std::vector<double> lookups_per_sample;
  /// Per-table lookup-count histogram over even row-range buckets (bucket b
  /// of B covers rows [M*b/B, M*(b+1)/B)). Zipf streams concentrate mass in
  /// the head buckets — exactly what the uniform row-fraction costing of
  /// row-split shards used to miss.
  std::vector<std::vector<double>> row_histograms;
};

/// Materializes `samples` samples of the bag stream once and measures both
/// per-table lookup rates and per-row-range histograms (`buckets` buckets
/// per table, clamped to the table's row count).
LookupStats measure_lookup_stats(const Dataset& data, std::int64_t samples,
                                 std::int64_t buckets);

/// Mean lookups per sample for every table, measured by materializing
/// `samples` samples of the dataset's bag stream (deterministic, so every
/// rank computes identical statistics).
std::vector<double> measure_table_lookups(const Dataset& data,
                                          std::int64_t samples);

/// Per-table cost estimate in seconds per iteration of `global_batch`
/// samples: cost-model embedding forward + fused race-free update for the
/// table's measured lookup rate. This is what the LPT planners pack.
std::vector<double> estimate_table_costs(
    const KernelModel& kernel, const std::vector<std::int64_t>& table_rows,
    const std::vector<double>& lookups_per_sample, std::int64_t dim,
    std::int64_t global_batch);

struct ShardingOptions {
  ShardingPolicy policy = ShardingPolicy::kRoundRobin;
  /// kRowSplit: split tables above this many rows (<= 0 = ceil(total/R)).
  std::int64_t row_split_threshold = 0;
  /// Samples of the dataset bag stream used for lookup statistics.
  std::int64_t stat_samples = 512;
  /// Row-range buckets per table for the kRowSplit lookup histograms.
  std::int64_t hist_buckets = 64;
};

/// Builds the plan every rank agrees on: round-robin ignores costs; the
/// cost-driven planners combine the cluster cost model with lookup
/// statistics measured from `data` (pass nullptr to fall back to uniform
/// per-table lookups). The KernelModel defaults to the paper's CLX-8280.
ShardingPlan make_sharding_plan(const ShardingOptions& options,
                                const std::vector<std::int64_t>& table_rows,
                                std::int64_t dim, std::int64_t global_batch,
                                int ranks, const Dataset* data);

/// Same planner fed with *given* lookup statistics instead of a fresh
/// measurement pass — the entry point for live re-balancing, where the
/// stats come from the training stream actually observed so far
/// (DistributedDlrm::lookup_stats_allreduced) rather than a construction-time
/// sample. Deterministic in its inputs, so ranks that agree on `stats`
/// derive the identical plan.
ShardingPlan make_sharding_plan_from_stats(
    const ShardingOptions& options, const std::vector<std::int64_t>& table_rows,
    std::int64_t dim, std::int64_t global_batch, int ranks,
    const LookupStats& stats);

}  // namespace dlrm
