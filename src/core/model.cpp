#include "core/model.hpp"

#include <cmath>

#include "common/log.hpp"
#include "kernels/loss.hpp"

namespace dlrm {

namespace {

// Profiler helper that is a no-op with a null profiler.
struct MaybeScope {
  MaybeScope(Profiler* prof, const char* name)
      : prof_(prof), name_(name), start_(now_sec()) {}
  ~MaybeScope() {
    if (prof_ != nullptr) prof_->add(name_, now_sec() - start_);
  }
  Profiler* prof_;
  const char* name_;
  double start_;
};

}  // namespace

DlrmModel::DlrmModel(const DlrmConfig& config, ModelOptions options,
                     std::uint64_t seed)
    : config_(config),
      options_(options),
      bottom_(config.bottom_mlp, Activation::kRelu, Activation::kRelu,
              options.blocks, config.mlp_precision),
      top_(config.top_mlp_full(), Activation::kRelu, Activation::kNone,
           options.blocks, config.mlp_precision),
      interaction_(config.tables() + 1, config.dim,
                   config.interaction_pad <= 1 ? 1 : config.interaction_pad) {
  config_.validate();
  Rng mlp_rng(seed);
  bottom_.init(mlp_rng);
  top_.init(mlp_rng);
  tables_.reserve(static_cast<std::size_t>(config_.tables()));
  for (std::int64_t t = 0; t < config_.tables(); ++t) {
    tables_.push_back(std::make_unique<EmbeddingTable>(
        config_.table_rows[static_cast<std::size_t>(t)], config_.dim,
        options_.embed_precision));
    // Per-table seed → identical tables in distributed runs regardless of
    // which rank owns them.
    Rng trng(seed + 1000003ull * static_cast<std::uint64_t>(t + 1));
    tables_.back()->init(trng, 1.0f / std::sqrt(static_cast<float>(config_.dim)));
    if (options_.emb_cache.enabled()) {
      tables_.back()->configure_cache(options_.emb_cache);
    }
  }
  DLRM_CHECK(interaction_.out_dim() == config_.interaction_out(),
             "interaction width mismatch");
}

void DlrmModel::set_batch(std::int64_t n) {
  if (n == n_) return;
  n_ = n;
  bottom_.set_batch(n);
  top_.set_batch(n);
  emb_out_.clear();
  demb_.clear();
  for (std::int64_t t = 0; t < config_.tables(); ++t) {
    emb_out_.emplace_back(std::vector<std::int64_t>{n, config_.dim});
    demb_.emplace_back(std::vector<std::int64_t>{n, config_.dim});
  }
  interact_out_.reshape({n, interaction_.out_dim()});
  dinteract_.reshape({n, interaction_.out_dim()});
  logits_.reshape({n});
  dlogits2d_.reshape({n, 1});
  dz0_.reshape({n, config_.dim});
}

const Tensor<float>& DlrmModel::forward(const MiniBatch& mb, Profiler* prof) {
  DLRM_CHECK(mb.batch() == n_, "batch mismatch; call set_batch");
  DLRM_CHECK(static_cast<std::int64_t>(mb.bags.size()) == config_.tables(),
             "need one bag batch per table");

  {
    MaybeScope s(prof, "emb_fwd");
    for (std::int64_t t = 0; t < config_.tables(); ++t) {
      tables_[static_cast<std::size_t>(t)]->forward(
          mb.bags[static_cast<std::size_t>(t)],
          emb_out_[static_cast<std::size_t>(t)].data());
    }
  }

  const Tensor<float>* z0;
  {
    MaybeScope s(prof, "bottom_mlp_fwd");
    z0 = &bottom_.forward(mb.dense);
  }

  {
    MaybeScope s(prof, "interaction_fwd");
    std::vector<const float*> feats;
    feats.reserve(static_cast<std::size_t>(config_.tables() + 1));
    feats.push_back(z0->data());
    for (auto& e : emb_out_) feats.push_back(e.data());
    interaction_.forward(feats, n_, interact_out_.data());
  }

  {
    MaybeScope s(prof, "top_mlp_fwd");
    const Tensor<float>& out = top_.forward(interact_out_);
    for (std::int64_t i = 0; i < n_; ++i) logits_[i] = out[i];
  }
  return logits_;
}

void DlrmModel::backward(const MiniBatch& mb, const Tensor<float>& dlogits,
                         float lr, Profiler* prof) {
  DLRM_CHECK(dlogits.size() == n_, "dlogits shape mismatch");

  {
    MaybeScope s(prof, "top_mlp_bwd");
    for (std::int64_t i = 0; i < n_; ++i) dlogits2d_[i] = dlogits[i];
    const Tensor<float>& di = top_.backward(dlogits2d_);
    for (std::int64_t i = 0; i < dinteract_.size(); ++i) dinteract_[i] = di[i];
  }

  {
    MaybeScope s(prof, "interaction_bwd");
    std::vector<const float*> feats;
    std::vector<float*> dfeats;
    feats.push_back(bottom_.forward_output().data());
    dfeats.push_back(dz0_.data());
    for (std::int64_t t = 0; t < config_.tables(); ++t) {
      feats.push_back(emb_out_[static_cast<std::size_t>(t)].data());
      dfeats.push_back(demb_[static_cast<std::size_t>(t)].data());
    }
    interaction_.backward(feats, dinteract_.data(), n_, dfeats);
  }

  {
    MaybeScope s(prof, "bottom_mlp_bwd");
    bottom_.backward(dz0_);
  }

  {
    MaybeScope s(prof, "emb_bwd_upd");
    for (std::int64_t t = 0; t < config_.tables(); ++t) {
      auto& table = *tables_[static_cast<std::size_t>(t)];
      const auto& bags = mb.bags[static_cast<std::size_t>(t)];
      const float* dy = demb_[static_cast<std::size_t>(t)].data();
      if (options_.fused_embedding_update) {
        table.fused_backward_update(dy, bags, lr, options_.update_strategy);
      } else {
        table.backward(dy, bags, dlookup_);
        table.apply_update(dlookup_, bags, lr, options_.update_strategy);
      }
    }
  }
}

double DlrmModel::micro_step(const MiniBatch& mb, float lr, float scale,
                             Profiler* prof) {
  const Tensor<float>& logits = forward(mb, prof);
  Tensor<float> dlogits({n_});
  double loss;
  {
    MaybeScope s(prof, "loss");
    loss = bce_with_logits(logits.data(), mb.labels.data(), n_, dlogits.data());
  }
  // scale == 1 skips the pass, keeping the unaccumulated path bit-identical.
  if (scale != 1.0f) {
    for (std::int64_t i = 0; i < n_; ++i) dlogits[i] *= scale;
  }
  backward(mb, dlogits, lr, prof);
  return loss;
}

double DlrmModel::train_step(const MiniBatch& mb, float lr, Optimizer& opt,
                             Profiler* prof) {
  const double loss = micro_step(mb, lr, 1.0f, prof);
  {
    MaybeScope s(prof, "opt_step");
    opt.step(lr);
  }
  return loss;
}

std::vector<ParamSlot> DlrmModel::mlp_param_slots() {
  std::vector<ParamSlot> slots = top_.param_slots();
  auto bottom = bottom_.param_slots();
  slots.insert(slots.end(), bottom.begin(), bottom.end());
  return slots;
}

std::int64_t DlrmModel::model_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& t : tables_) bytes += t->storage_bytes();
  bytes += (bottom_.param_count() + top_.param_count()) * 4;
  return bytes;
}

}  // namespace dlrm
