#include "core/sharding.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "cluster/machine.hpp"
#include "common/log.hpp"
#include "data/dataset.hpp"

namespace dlrm {

const char* to_string(ShardingPolicy p) {
  switch (p) {
    case ShardingPolicy::kRoundRobin:
      return "RoundRobin";
    case ShardingPolicy::kGreedyBalanced:
      return "GreedyBalanced";
    case ShardingPolicy::kRowSplit:
      return "RowSplit";
  }
  return "?";
}

ShardingPlan::ShardingPlan(ShardingPolicy policy, std::int64_t tables,
                           int ranks, std::vector<Shard> shards)
    : policy_(policy), tables_(tables), ranks_(ranks), shards_(std::move(shards)) {
  // Canonical order: by (table, row_begin). The exchange, loaders and tests
  // all index shards by this order, so it must be a total order.
  std::sort(shards_.begin(), shards_.end(), [](const Shard& a, const Shard& b) {
    return a.table != b.table ? a.table < b.table : a.row_begin < b.row_begin;
  });
  by_rank_.assign(static_cast<std::size_t>(ranks_), {});
  by_table_.assign(static_cast<std::size_t>(tables_), {});
  for (std::int64_t s = 0; s < num_shards(); ++s) {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    DLRM_CHECK(sh.rank >= 0 && sh.rank < ranks_, "shard rank out of range");
    DLRM_CHECK(sh.table >= 0 && sh.table < tables_, "shard table out of range");
    DLRM_CHECK(sh.row_begin >= 0 && sh.row_begin < sh.row_end,
               "shard row range must be non-empty");
    by_rank_[static_cast<std::size_t>(sh.rank)].push_back(s);
    by_table_[static_cast<std::size_t>(sh.table)].push_back(s);
  }
  for (std::int64_t t = 0; t < tables_; ++t) {
    const auto& ss = by_table_[static_cast<std::size_t>(t)];
    DLRM_CHECK(!ss.empty(), "every table needs at least one shard");
    if (ss.size() > 1) split_tables_ = true;
    // Row ranges must tile the table contiguously from row 0.
    std::int64_t next = 0;
    for (std::int64_t s : ss) {
      DLRM_CHECK(shards_[static_cast<std::size_t>(s)].row_begin == next,
                 "shard row ranges must tile the table");
      next = shards_[static_cast<std::size_t>(s)].row_end;
    }
  }
}

ShardingPlan ShardingPlan::round_robin(
    const std::vector<std::int64_t>& table_rows, int ranks) {
  DLRM_CHECK(ranks >= 1, "need at least one rank");
  std::vector<Shard> shards;
  for (std::size_t t = 0; t < table_rows.size(); ++t) {
    Shard sh;
    sh.table = static_cast<std::int64_t>(t);
    sh.row_begin = 0;
    sh.row_end = table_rows[t];
    sh.rank = static_cast<int>(t % static_cast<std::size_t>(ranks));
    sh.cost = static_cast<double>(table_rows[t]);
    shards.push_back(sh);
  }
  return ShardingPlan(ShardingPolicy::kRoundRobin,
                      static_cast<std::int64_t>(table_rows.size()), ranks,
                      std::move(shards));
}

namespace {

/// LPT: assign shards (already costed) to the least-loaded rank, processing
/// in descending cost order. Deterministic tie-breaks: earlier canonical
/// shard first, lower rank id first.
void lpt_assign(std::vector<Shard>& shards, int ranks) {
  std::vector<std::size_t> order(shards.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shards[a].cost > shards[b].cost;
  });
  std::vector<double> load(static_cast<std::size_t>(ranks), 0.0);
  for (std::size_t i : order) {
    int best = 0;
    for (int r = 1; r < ranks; ++r) {
      if (load[static_cast<std::size_t>(r)] < load[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    shards[i].rank = best;
    load[static_cast<std::size_t>(best)] += shards[i].cost;
  }
}

std::vector<double> checked_costs(const std::vector<std::int64_t>& table_rows,
                                  const std::vector<double>& costs) {
  DLRM_CHECK(costs.size() == table_rows.size(),
             "need one cost estimate per table");
  // Zero/negative costs would break LPT's ordering; clamp to a tiny epsilon
  // so every shard still contributes to its rank's load.
  std::vector<double> c = costs;
  for (auto& v : c) v = std::max(v, 1e-12);
  return c;
}

}  // namespace

ShardingPlan ShardingPlan::greedy_balanced(
    const std::vector<std::int64_t>& table_rows, int ranks,
    const std::vector<double>& costs) {
  DLRM_CHECK(ranks >= 1, "need at least one rank");
  const std::vector<double> c = checked_costs(table_rows, costs);
  std::vector<Shard> shards;
  for (std::size_t t = 0; t < table_rows.size(); ++t) {
    Shard sh;
    sh.table = static_cast<std::int64_t>(t);
    sh.row_begin = 0;
    sh.row_end = table_rows[t];
    sh.cost = c[t];
    shards.push_back(sh);
  }
  lpt_assign(shards, ranks);
  return ShardingPlan(ShardingPolicy::kGreedyBalanced,
                      static_cast<std::int64_t>(table_rows.size()), ranks,
                      std::move(shards));
}

namespace {

/// Fraction of a table's measured lookups that land in [row_begin, row_end),
/// from an even-bucket histogram; buckets straddling a shard boundary
/// contribute pro-rata. Returns a negative value when the histogram carries
/// no information (empty or all-zero), signalling the uniform fallback.
double histogram_fraction(const std::vector<double>& hist, std::int64_t rows,
                          std::int64_t row_begin, std::int64_t row_end) {
  if (hist.empty()) return -1.0;
  double total = 0.0;
  for (double h : hist) total += h;
  if (total <= 0.0) return -1.0;
  const std::int64_t b = static_cast<std::int64_t>(hist.size());
  double mass = 0.0;
  for (std::int64_t i = 0; i < b; ++i) {
    const std::int64_t lo = rows * i / b, hi = rows * (i + 1) / b;
    if (hi <= lo) continue;
    const std::int64_t olo = std::max(lo, row_begin);
    const std::int64_t ohi = std::min(hi, row_end);
    if (ohi <= olo) continue;
    mass += hist[static_cast<std::size_t>(i)] * static_cast<double>(ohi - olo) /
            static_cast<double>(hi - lo);
  }
  return mass / total;
}

}  // namespace

ShardingPlan ShardingPlan::row_split(
    const std::vector<std::int64_t>& table_rows, int ranks,
    const std::vector<double>& costs, std::int64_t row_threshold,
    const std::vector<std::vector<double>>* row_hists) {
  DLRM_CHECK(ranks >= 1, "need at least one rank");
  const std::vector<double> c = checked_costs(table_rows, costs);
  DLRM_CHECK(row_hists == nullptr || row_hists->size() == table_rows.size(),
             "need one row histogram per table");
  if (row_threshold <= 0) {
    std::int64_t total = 0;
    for (auto m : table_rows) total += m;
    row_threshold = (total + ranks - 1) / ranks;
  }
  std::vector<Shard> shards;
  for (std::size_t t = 0; t < table_rows.size(); ++t) {
    const std::int64_t rows = table_rows[t];
    std::int64_t pieces = 1;
    if (rows > row_threshold) {
      pieces = std::min<std::int64_t>((rows + row_threshold - 1) / row_threshold,
                                      ranks);
    }
    for (std::int64_t k = 0; k < pieces; ++k) {
      Shard sh;
      sh.table = static_cast<std::int64_t>(t);
      sh.row_begin = rows * k / pieces;
      sh.row_end = rows * (k + 1) / pieces;
      // Measured costing: the shard's share of the table's lookups, from
      // the per-row-range histogram (a Zipf head shard is worth far more
      // than its row fraction). Uniform row-share fallback when no
      // histogram was measured.
      double frac = -1.0;
      if (row_hists != nullptr) {
        frac = histogram_fraction((*row_hists)[t], rows, sh.row_begin,
                                  sh.row_end);
      }
      if (frac < 0.0) {
        frac = static_cast<double>(sh.rows()) / static_cast<double>(rows);
      }
      sh.cost = c[t] * frac;
      shards.push_back(sh);
    }
  }
  lpt_assign(shards, ranks);
  return ShardingPlan(ShardingPolicy::kRowSplit,
                      static_cast<std::int64_t>(table_rows.size()), ranks,
                      std::move(shards));
}

ShardingPlan ShardingPlan::custom(std::int64_t tables, int ranks,
                                  std::vector<Shard> shards,
                                  ShardingPolicy label) {
  return ShardingPlan(label, tables, ranks, std::move(shards));
}

std::int64_t ShardingPlan::rank_rows(int r) const {
  std::int64_t rows = 0;
  for (std::int64_t s : shards_of_rank(r)) {
    rows += shards_[static_cast<std::size_t>(s)].rows();
  }
  return rows;
}

double ShardingPlan::rank_cost(int r) const {
  double cost = 0.0;
  for (std::int64_t s : shards_of_rank(r)) {
    cost += shards_[static_cast<std::size_t>(s)].cost;
  }
  return cost;
}

double ShardingPlan::cost_imbalance() const {
  double max = 0.0, sum = 0.0;
  for (int r = 0; r < ranks_; ++r) {
    const double c = rank_cost(r);
    max = std::max(max, c);
    sum += c;
  }
  const double mean = sum / std::max(ranks_, 1);
  return mean > 0.0 ? max / mean : 1.0;
}

std::string ShardingPlan::describe() const {
  std::string out = std::string(to_string(policy_)) + " plan: " +
                    std::to_string(num_shards()) + " shards of " +
                    std::to_string(tables_) + " tables on " +
                    std::to_string(ranks_) + " ranks\n";
  char buf[160];
  for (int r = 0; r < ranks_; ++r) {
    std::snprintf(buf, sizeof(buf), "  rank %d: cost %.3g, rows %lld, shards", r,
                  rank_cost(r), static_cast<long long>(rank_rows(r)));
    out += buf;
    for (std::int64_t s : shards_of_rank(r)) {
      const Shard& sh = shards_[static_cast<std::size_t>(s)];
      if (sh.rows() == 0) continue;
      std::snprintf(buf, sizeof(buf), " t%lld[%lld:%lld)",
                    static_cast<long long>(sh.table),
                    static_cast<long long>(sh.row_begin),
                    static_cast<long long>(sh.row_end));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

LookupStats measure_lookup_stats(const Dataset& data, std::int64_t samples,
                                 std::int64_t buckets) {
  DLRM_CHECK(samples > 0, "need a positive sample count");
  DLRM_CHECK(buckets >= 1, "need at least one histogram bucket");
  const std::int64_t s = data.tables();
  LookupStats stats;
  stats.lookups_per_sample.assign(static_cast<std::size_t>(s), 0.0);
  stats.row_histograms.assign(static_cast<std::size_t>(s), {});
  // One fill() pass materializes every table's bag stream at once —
  // per-table fill_table_bags would replay the whole sample RNG stream S
  // times (O(S^2) draws), and this runs on every rank at construction.
  MiniBatch batch;
  data.fill(0, samples, batch);
  for (std::int64_t t = 0; t < s; ++t) {
    const BagBatch& bags = batch.bags[static_cast<std::size_t>(t)];
    stats.lookups_per_sample[static_cast<std::size_t>(t)] =
        static_cast<double>(bags.lookups()) / static_cast<double>(samples);
    const std::int64_t rows = data.rows(t);
    const std::int64_t b = std::min(buckets, rows);
    auto& hist = stats.row_histograms[static_cast<std::size_t>(t)];
    hist.assign(static_cast<std::size_t>(b), 0.0);
    for (std::int64_t i = 0; i < bags.lookups(); ++i) {
      hist[static_cast<std::size_t>(bags.indices[i] * b / rows)] += 1.0;
    }
  }
  return stats;
}

std::vector<double> measure_table_lookups(const Dataset& data,
                                          std::int64_t samples) {
  return measure_lookup_stats(data, samples, 1).lookups_per_sample;
}

std::vector<double> estimate_table_costs(
    const KernelModel& kernel, const std::vector<std::int64_t>& table_rows,
    const std::vector<double>& lookups_per_sample, std::int64_t dim,
    std::int64_t global_batch) {
  DLRM_CHECK(lookups_per_sample.size() == table_rows.size(),
             "need one lookup statistic per table");
  const int cores = kernel.socket().cores;
  std::vector<double> costs(table_rows.size(), 0.0);
  for (std::size_t t = 0; t < table_rows.size(); ++t) {
    // The cost model takes an integer pooling factor; scale its unit-pooling
    // estimate by the measured (fractional) lookup rate instead so skewed
    // lookup streams separate tables with equal row counts.
    const double rate = std::max(lookups_per_sample[t], 0.0);
    const double fwd =
        kernel.embedding_fwd_time(1, global_batch, 1, dim, cores) * rate;
    const double upd =
        kernel.embedding_update_time(UpdateStrategy::kRaceFree, 1, global_batch,
                                     1, dim, /*skewed=*/false, /*fused=*/true,
                                     cores) *
        rate;
    costs[t] = fwd + upd;
  }
  return costs;
}

ShardingPlan make_sharding_plan(const ShardingOptions& options,
                                const std::vector<std::int64_t>& table_rows,
                                std::int64_t dim, std::int64_t global_batch,
                                int ranks, const Dataset* data) {
  if (options.policy == ShardingPolicy::kRoundRobin) {
    return ShardingPlan::round_robin(table_rows, ranks);
  }
  // Row-split plans additionally need the per-row-range histograms; the
  // whole-table planner only uses per-table lookup rates (buckets = 1 keeps
  // the shared measurement pass cheap).
  const bool split = options.policy == ShardingPolicy::kRowSplit;
  LookupStats stats;
  if (data != nullptr) {
    stats = measure_lookup_stats(*data, options.stat_samples,
                                 split ? options.hist_buckets : 1);
  } else {
    stats.lookups_per_sample.assign(table_rows.size(), 1.0);
    stats.row_histograms.assign(table_rows.size(), {});
  }
  return make_sharding_plan_from_stats(options, table_rows, dim, global_batch,
                                       ranks, stats);
}

ShardingPlan make_sharding_plan_from_stats(
    const ShardingOptions& options, const std::vector<std::int64_t>& table_rows,
    std::int64_t dim, std::int64_t global_batch, int ranks,
    const LookupStats& stats) {
  if (options.policy == ShardingPolicy::kRoundRobin) {
    return ShardingPlan::round_robin(table_rows, ranks);
  }
  const KernelModel kernel(clx_8280(), KernelEffs{});
  const std::vector<double> costs = estimate_table_costs(
      kernel, table_rows, stats.lookups_per_sample, dim, global_batch);
  if (options.policy == ShardingPolicy::kGreedyBalanced) {
    return ShardingPlan::greedy_balanced(table_rows, ranks, costs);
  }
  const bool have_hists =
      !stats.row_histograms.empty() &&
      !stats.row_histograms.front().empty();
  return ShardingPlan::row_split(table_rows, ranks, costs,
                                 options.row_split_threshold,
                                 have_hists ? &stats.row_histograms : nullptr);
}

}  // namespace dlrm
