// Distributed hybrid-parallel training loop (one instance per rank).
//
// Mirrors the single-process Trainer API on top of the Sect. IV hybrid
// parallelization: per-rank DataLoader (local dense slice + owned tables'
// global bags) feeding a DistributedDlrm, with the loader running behind a
// PrefetchLoader so data materialization overlaps compute — the pipeline
// lever the reference MLPerf loader lacks (its cost grows with rank count in
// Fig. 13 *and* is paid synchronously inside every step).
//
// All collective-bearing methods (train / evaluate / train_with_eval) are
// SPMD: every rank of the ThreadComm world must call them with identical
// arguments in the same order. Reported losses are GLOBAL means (allreduced
// over ranks), so rank 0's numbers match a single-process Trainer run on the
// same GN stream; evaluate() gathers all local logits and computes the same
// ROC-AUC on every rank.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/distributed.hpp"
#include "core/trainer.hpp"
#include "data/prefetch.hpp"
#include "stats/metrics.hpp"

namespace dlrm {

/// Live shard re-balancing: the trainer watches the per-rank embedding-time
/// spread over a sliding window and, when it exceeds `threshold` at a step
/// boundary, recomputes the ShardingPlan from the lookup statistics of the
/// training stream observed so far and migrates the embedding state onto it
/// (DistributedDlrm::reshard — bit-exact, no training-state loss).
struct RebalanceOptions {
  /// Window max/mean embedding-time ratio that triggers a migration
  /// (1.0 = perfectly balanced). <= 0 disables re-balancing entirely.
  double threshold = 0.0;
  /// Steps between SPMD imbalance checks (each costs one tiny allgather).
  std::int64_t check_every = 32;
  /// Upper bound on migrations per run (hysteresis against plan flapping).
  std::int64_t max_rebalances = 4;
  /// Policy for the recomputed plan. Round-robin is pointless here;
  /// kGreedyBalanced keeps tables whole (bit-identical training math),
  /// kRowSplit additionally splits hot tables by the observed row
  /// histograms.
  ShardingPolicy policy = ShardingPolicy::kGreedyBalanced;
  /// kRowSplit only: split tables above this many rows (<= 0 = auto).
  std::int64_t row_split_threshold = 0;

  bool enabled() const { return threshold > 0.0; }
};

struct DistributedTrainerOptions {
  float lr = 0.1f;
  std::int64_t global_batch = 2048;
  std::uint64_t seed = 42;
  /// Gradient-accumulation window (see TrainerOptions::grad_accum):
  /// `global_batch` is the EFFECTIVE batch, the model/loaders run at
  /// global_batch/grad_accum, and exactly ONE DDP allreduce + dense
  /// optimizer step runs per window — the allreduce count drops by
  /// grad_accum× along with the activation footprint.
  int grad_accum = 1;
  /// kLocalSlice = the optimized loader; kFullGlobalBatch reproduces the
  /// reference behaviour (Fig. 13's growing loader cost).
  LoaderMode loader_mode = LoaderMode::kLocalSlice;
  /// Background multi-worker data pipeline (see PrefetchPipeline). Off =
  /// the loader runs synchronously inside the step, fully exposed.
  bool prefetch = true;
  int prefetch_depth = 2;
  /// Worker threads sharding the stream (batch i owned by worker i % W);
  /// losses are bit-identical for any value. Applies to both the training
  /// and the dedicated eval pipeline.
  int prefetch_workers = 1;
  /// Elastic pipeline shape (see src/data/autotune.hpp): when enabled (and
  /// prefetch is on), a PipelineController watches the measured
  /// exposed-stall fraction and resizes workers/depth at window boundaries,
  /// starting from (prefetch_workers, prefetch_depth). The window sums are
  /// allreduced first, so the decision is SPMD-identical on every rank; the
  /// dedicated eval stream and rebalance-rebuilt pipelines pick up the
  /// tuned shape. Loss sequences stay bit-identical to a static shape.
  AutotuneOptions autotune{};
  /// true = evaluate() runs on its own loader/prefetch stream (own cursor,
  /// own depth), so eval passes never reseek or flush the training
  /// pipeline. false = the PR 2 behaviour: eval batches stream through the
  /// training pipeline, paying a flush + cold refill per eval pass (kept
  /// for the parity suite and as an ablation).
  bool dedicated_eval_stream = true;
  /// Depth of the dedicated eval pipeline (its cursor and backpressure are
  /// fully independent of the training stream's).
  int eval_prefetch_depth = 2;
  /// Cache the materialized held-out range after the first evaluate() pass
  /// (deep-copied HybridBatches): train_with_eval scores the *same* range at
  /// every eval point, so repeat passes skip the loader/prefetch machinery
  /// entirely — bit-identical AUC, no re-materialization. Invalidated when
  /// the requested range changes and on reshard (the bags are plan-shaped).
  bool cache_eval_range = true;
  /// Ranges longer than this many global batches stream uncached (bound on
  /// resident memory; the default covers every eval range in the repo).
  std::int64_t eval_cache_max_batches = 256;
  /// Embedding-table placement: round-robin (the paper's t % R layout),
  /// cost-balanced, or row-split. The cost-driven planners measure lookup
  /// statistics from the dataset, so every rank derives the same plan.
  ShardingOptions sharding{};
  /// Exchange/overlap/precision knobs; its lr and seed fields are
  /// overridden by the ones above. dist.emb_cache configures the hot-row
  /// tier (kHist admission is seeded from the same measured lookup stats
  /// the cost-driven planners use).
  DistributedOptions dist{};
  /// Live re-balancing knobs (off by default).
  RebalanceOptions rebalance{};
  /// Non-empty: place tables with exactly this plan instead of deriving one
  /// from `sharding` (tests pin the target plan of a migration run;
  /// external tuners inject hand-built placements).
  ShardingPlan initial_plan{};
};

/// One rank's trainer. Construct inside the rank thread (e.g. run_ranks)
/// and drive it in lockstep with the other ranks.
class DistributedTrainer {
 public:
  DistributedTrainer(const DlrmConfig& config, const Dataset& data,
                     ThreadComm& comm, QueueBackend* backend,
                     DistributedTrainerOptions options);

  ~DistributedTrainer();

  /// Runs `iters` training iterations; returns the mean GLOBAL loss (mean
  /// BCE over the full GN batch, allreduced — identical on every rank).
  double train(std::int64_t iters, Profiler* prof = nullptr);

  /// Distributed ROC-AUC on samples [first, first+n): each rank scores its
  /// slices, logits/labels are allgathered, every rank returns the same
  /// value. `first` must be a multiple of the global batch.
  double evaluate(std::int64_t first, std::int64_t n);

  /// Trains on `train_samples` total samples with periodic distributed AUC
  /// evaluation — the distributed counterpart of Trainer::train_with_eval,
  /// with the same empty-interval merging and optional lr schedule.
  std::vector<EvalPoint> train_with_eval(std::int64_t train_samples,
                                         std::int64_t eval_samples,
                                         int eval_points,
                                         const LrSchedule& lr_schedule = {});

  void set_lr(float lr) {
    options_.lr = lr;
    model_.set_lr(lr);
  }
  float lr() const { return options_.lr; }

  std::int64_t iterations_done() const { return iter_; }
  /// The EFFECTIVE global batch (one optimizer step's worth of samples).
  /// The model itself runs at global_batch() / grad_accum — see
  /// model().global_batch() for the micro size.
  std::int64_t global_batch() const { return options_.global_batch; }
  std::int64_t local_batch() const { return model_.local_batch(); }

  // Checkpoint/restore (src/ckpt). SPMD like every collective-bearing
  // method: all ranks call with the same arguments at the same iteration.
  // Each rank writes its own shard file (no gather through rank 0; rank 0
  // also writes the manifest with the replicated dense state), and restore
  // maps the *saved* plan's shards onto this run's plan — the saved rank
  // count and sharding policy may differ from the current ones.

  /// Periodic snapshots into `dir` every `save_every` train() iterations
  /// (0 = only at eval points and explicit calls).
  void set_checkpointing(std::string dir, std::int64_t save_every = 0);

  /// Full control: async background saves, retention depth, save interval.
  /// In async mode the training thread only captures its shard state (and
  /// rank 0 the dense manifest) into a staging buffer; per-rank writer
  /// threads serialize and the LAST rank's arrival releases the manifest
  /// commit — no ThreadComm collectives on the save path at all.
  void set_checkpointing(std::string dir, CheckpointOptions opts);

  /// Drains this rank's in-flight background save (no-op in sync mode).
  /// After every rank's call returns, the snapshot is committed on disk.
  void finish_checkpoints();

  /// Cumulative wall time train() stalled on snapshots on THIS rank (full
  /// save + barriers in sync mode; capture + back-pressure in async mode).
  double checkpoint_stall_sec() const { return ckpt_stall_sec_; }

  /// Writes a full snapshot now (SPMD; returns once the snapshot is
  /// committed on every rank).
  void save_checkpoint(const std::string& dir);

  /// Restores a snapshot of any geometry; false when none exists in `dir`.
  bool resume_from(const std::string& dir);

  /// Hook for train_with_eval_loop; no-op unless checkpointing is enabled.
  /// Routes through the configured save mode (sync or background).
  void checkpoint_at_eval() {
    if (!ckpt_dir_.empty()) save_now(nullptr);
  }

  DistributedDlrm& model() { return model_; }
  DataLoader& loader() { return *loader_; }
  const PrefetchLoader& prefetch() const { return *prefetch_; }

  /// The dedicated eval pipeline (created lazily by the first evaluate()
  /// call when dedicated_eval_stream is on); nullptr before that or when
  /// eval streams through the training pipeline.
  const PrefetchLoader* eval_prefetch() const { return eval_prefetch_.get(); }

  /// Number of evaluate() passes that materialized data through the
  /// pipeline (cache misses). With cache_eval_range on and a fixed range
  /// this stays 1 however many passes run — i.e. re-materializations after
  /// the first pass == 0.
  std::int64_t eval_materialize_passes() const {
    return eval_materialize_passes_;
  }
  /// Batches currently held by the eval-range cache (0 = invalidated).
  std::int64_t eval_cache_batches() const {
    return static_cast<std::int64_t>(eval_cache_.size());
  }

  /// Loader-overlap accounting across all train() iterations so far:
  /// exposed = step time spent blocked on data, hidden = materialization
  /// cost that ran under compute. With prefetch off, hidden is 0 and
  /// exposed is the full loader cost. Also threaded into the Profiler as
  /// "loader_exposed"/"loader_hidden" counters.
  double loader_exposed_sec() const { return loader_exposed_; }
  double loader_hidden_sec() const { return loader_hidden_; }

  /// Per-rank embedding-time spread so far — the placement quality a
  /// ShardingPlan controls: max and mean over ranks of
  /// DistributedDlrm::embedding_sec(). SPMD (allgathers one float per
  /// rank); every rank returns the same values. Also threaded into the
  /// Profiler as "emb_rank_max"/"emb_rank_mean" when one is passed to
  /// train().
  struct EmbImbalance {
    double max_sec = 0.0;
    double mean_sec = 0.0;
    /// Hot-row cache traffic summed over all ranks' shards (0 when the
    /// tier is off).
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    /// max/mean, 1.0 = perfectly balanced.
    double ratio() const { return mean_sec > 0.0 ? max_sec / mean_sec : 1.0; }
    double cache_hit_rate() const {
      const std::int64_t total = cache_hits + cache_misses;
      return total > 0
                 ? static_cast<double>(cache_hits) / static_cast<double>(total)
                 : 0.0;
    }
  };
  EmbImbalance embedding_imbalance();
  /// Same spread restricted to the window since the last re-balance check —
  /// what the trigger compares against the threshold (cumulative totals
  /// would dilute a developing imbalance under an old balanced prefix).
  EmbImbalance embedding_imbalance_window();

  /// SPMD: recompute the plan from runtime lookup stats and migrate NOW,
  /// regardless of threshold/check_every (tests and external schedulers;
  /// requires rebalance to be enabled or lookup stats to be accumulating).
  /// Returns false if the recomputed plan equals the current one.
  bool rebalance_now(Profiler* prof = nullptr);

  struct RebalanceStats {
    std::int64_t checks = 0;       // threshold evaluations
    std::int64_t rebalances = 0;   // migrations actually performed
    std::int64_t rows_migrated = 0;
    double stall_sec = 0.0;        // total migration wall time (this rank)
    std::int64_t first_trigger_step = -1;
  };
  const RebalanceStats& rebalance_stats() const { return rebalance_stats_; }

  /// The elastic-pipeline controller (inert unless options.autotune.enabled
  /// and prefetch is on): resize count, windows, stall trace, final shape.
  const PipelineController& pipeline_controller() const { return tuner_; }

 private:
  double allreduce_mean(double local);
  void maybe_rebalance(Profiler* prof);
  /// Feeds the controller one step's observation; at window boundaries
  /// allreduces the window sums (SPMD — every rank hits the same boundary)
  /// and, on a resize decision, rebuilds the pipeline at the new shape.
  void maybe_autotune(double exposed_sec, double wall_sec, Profiler* prof);
  /// The pipeline shape rebuilds should use: the controller's current
  /// (workers, depth) when autotuning, the static options otherwise.
  PrefetchOptions pipeline_options() const;
  /// Snapshot through the configured mode; accumulates the exposed stall
  /// into checkpoint_stall_sec() and the "ckpt_stall_us" profiler counter.
  void save_now(Profiler* prof);
  /// The pipeline evaluate() draws from: the lazily-built dedicated eval
  /// stream, or the training pipeline on the legacy reseek path.
  PrefetchLoader& eval_pipeline();

  ThreadComm& comm_;
  DistributedTrainerOptions options_;
  const Dataset* data_;  // outlives the trainer; loaders rebuild on reshard
  DistributedDlrm model_;
  // unique_ptrs so a re-balance can rebuild the pipeline on the new plan
  // (loaders reference the plan's shard list and are not re-assignable).
  std::unique_ptr<DataLoader> loader_;
  std::unique_ptr<PrefetchLoader> prefetch_;
  std::unique_ptr<DataLoader> eval_loader_;
  std::unique_ptr<PrefetchLoader> eval_prefetch_;
  std::int64_t iter_ = 0;
  double loader_exposed_ = 0.0, loader_hidden_ = 0.0;
  PipelineController tuner_;
  // Eval-range cache: deep copies of the held-out range's batches keyed by
  // (first, n). Dropped on reshard — the cached bags are shard-local to the
  // old plan.
  std::vector<HybridBatch> eval_cache_;
  std::int64_t eval_cache_first_ = -1, eval_cache_len_ = -1;
  std::int64_t eval_materialize_passes_ = 0;
  Tensor<float> eval_scores_, eval_labels_;  // [GN] allgather staging
  GradAccumulator accum_;  // attached only when grad_accum > 1
  std::string ckpt_dir_;
  CheckpointOptions ckpt_opts_;
  std::unique_ptr<ckpt::AsyncCheckpointWriter> async_;
  double ckpt_stall_sec_ = 0.0;
  RebalanceStats rebalance_stats_;
  double window_baseline_sec_ = 0.0;  // embedding_sec at window start
};

}  // namespace dlrm
