// Single-process DLRM model (paper Sect. II, Fig. 1): bottom MLP + sparse
// embedding bags + dot interaction + top MLP + BCE loss.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/param_slot.hpp"
#include "core/config.hpp"
#include "data/dataset.hpp"
#include "kernels/embedding.hpp"
#include "kernels/interaction.hpp"
#include "kernels/mlp.hpp"
#include "optim/optimizer.hpp"
#include "stats/profiler.hpp"

namespace dlrm {

/// Knobs independent of the topology (Table I) itself. The MLP data-path
/// precision is part of DlrmConfig (`mlp_precision`), mirroring how the
/// paper treats precision as a property of the training configuration.
struct ModelOptions {
  EmbedPrecision embed_precision = EmbedPrecision::kFp32;
  UpdateStrategy update_strategy = UpdateStrategy::kRaceFree;
  /// false reproduces the framework's separate backward + update kernels;
  /// true uses the fused kernel (Sect. III.A, up to 1.6x on updates).
  bool fused_embedding_update = true;
  BlockTargets blocks{};
  /// Hot-row working tier applied to every table (capacity per table,
  /// clamped to its rows). kHist admission additionally wants the caller
  /// to seed rows (measure_lookup_stats + admit_top_rows_from_histogram);
  /// kCounter self-manages. Bit-identical to the uncached path.
  EmbCacheOptions emb_cache{};
};

class DlrmModel {
 public:
  DlrmModel(const DlrmConfig& config, ModelOptions options, std::uint64_t seed);

  const DlrmConfig& config() const { return config_; }
  const ModelOptions& options() const { return options_; }

  /// (Re)allocates activation buffers for minibatch n.
  void set_batch(std::int64_t n);
  std::int64_t batch() const { return n_; }

  /// Forward pass; returns logits [N]. `mb` must carry all S bag batches.
  const Tensor<float>& forward(const MiniBatch& mb, Profiler* prof = nullptr);

  /// Backward pass from dlogits [N]; fills MLP weight/bias grads and applies
  /// the sparse embedding update with learning rate `lr`.
  void backward(const MiniBatch& mb, const Tensor<float>& dlogits, float lr,
                Profiler* prof = nullptr);

  /// forward + loss + backward + dense optimizer step. Returns the loss.
  double train_step(const MiniBatch& mb, float lr, Optimizer& opt,
                    Profiler* prof = nullptr);

  /// One gradient-accumulation micro-iteration: forward + loss + backward
  /// with the loss gradient pre-scaled by `scale` (1/A for a window of A
  /// micro-batches). Applies the sparse embedding update (scaled the same
  /// way) but NOT the dense optimizer step — the caller accumulates the
  /// dense grads and applies the optimizer at the window boundary. Returns
  /// the (unscaled) micro-batch loss. scale == 1 is exactly train_step
  /// minus the optimizer step.
  double micro_step(const MiniBatch& mb, float lr, float scale,
                    Profiler* prof = nullptr);

  /// Inference scores (logits) without touching gradients.
  const Tensor<float>& predict(const MiniBatch& mb) { return forward(mb); }

  Mlp& bottom_mlp() { return bottom_; }
  Mlp& top_mlp() { return top_; }
  EmbeddingTable& table(std::int64_t t) { return *tables_[static_cast<std::size_t>(t)]; }
  std::int64_t tables() const { return static_cast<std::int64_t>(tables_.size()); }
  const DotInteraction& interaction() const { return interaction_; }

  /// All dense parameter blocks (bottom + top MLP), for optimizers/DDP.
  std::vector<ParamSlot> mlp_param_slots();

  /// Persistent model bytes (tables + MLP params).
  std::int64_t model_bytes() const;

 private:
  DlrmConfig config_;
  ModelOptions options_;
  Mlp bottom_, top_;
  std::vector<std::unique_ptr<EmbeddingTable>> tables_;
  DotInteraction interaction_;

  std::int64_t n_ = 0;
  std::vector<Tensor<float>> emb_out_;   // per table [N][E]
  std::vector<Tensor<float>> demb_;      // per table [N][E]
  Tensor<float> interact_out_;           // [N][D_int]
  Tensor<float> dinteract_;              // [N][D_int]
  Tensor<float> logits_;                 // [N]
  Tensor<float> dlogits2d_;              // [N][1] staging
  Tensor<float> dz0_;                    // [N][E]
  Tensor<float> dlookup_;                // unfused update scratch
};

}  // namespace dlrm
