#include "core/config.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dlrm {

std::vector<std::int64_t> DlrmConfig::top_mlp_full() const {
  std::vector<std::int64_t> full;
  full.reserve(top_mlp.size() + 1);
  full.push_back(interaction_out());
  full.insert(full.end(), top_mlp.begin(), top_mlp.end());
  return full;
}

std::int64_t DlrmConfig::table_bytes() const {
  std::int64_t rows = 0;
  for (auto m : table_rows) rows += m;
  return rows * dim * 4;
}

namespace {

std::int64_t mlp_params(const std::vector<std::int64_t>& dims) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    total += dims[i] * dims[i + 1] + dims[i + 1];
  }
  return total;
}

}  // namespace

std::int64_t DlrmConfig::allreduce_elems() const {
  return mlp_params(bottom_mlp) + mlp_params(top_mlp_full());
}

std::int64_t DlrmConfig::min_sockets(double socket_mem_bytes) const {
  DLRM_CHECK(socket_mem_bytes > 0, "need positive socket memory");
  std::int64_t sockets = 1;
  while (static_cast<double>(table_bytes()) > socket_mem_bytes * static_cast<double>(sockets)) {
    ++sockets;
  }
  return sockets;
}

DlrmConfig DlrmConfig::scaled_down(std::int64_t row_divisor,
                                   std::int64_t batch_divisor) const {
  DLRM_CHECK(row_divisor >= 1 && batch_divisor >= 1, "divisors must be >= 1");
  DlrmConfig c = *this;
  c.name = name + "-scaled";
  for (auto& m : c.table_rows) m = std::max<std::int64_t>(64, m / row_divisor);
  c.minibatch = std::max<std::int64_t>(64, minibatch / batch_divisor);
  c.global_batch_strong =
      std::max<std::int64_t>(128, global_batch_strong / batch_divisor);
  c.local_batch_weak = std::max<std::int64_t>(64, local_batch_weak / batch_divisor);
  return c;
}

void DlrmConfig::validate() const {
  DLRM_CHECK(!table_rows.empty(), "need at least one embedding table");
  for (auto m : table_rows) DLRM_CHECK(m > 0, "table rows must be positive");
  DLRM_CHECK(dim > 0 && pooling > 0, "bad embedding shape");
  DLRM_CHECK(bottom_mlp.size() >= 2, "bottom MLP needs >= 1 layer");
  DLRM_CHECK(bottom_mlp.back() == dim,
             "bottom MLP must end at the embedding dim (interaction width)");
  DLRM_CHECK(!top_mlp.empty() && top_mlp.back() == 1,
             "top MLP must end with width 1");
  DLRM_CHECK(minibatch > 0 && global_batch_strong > 0 && local_batch_weak > 0,
             "bad batch sizes");
}

DlrmConfig small_config() {
  DlrmConfig c;
  c.name = "Small";
  c.minibatch = 2048;
  c.global_batch_strong = 8192;
  c.local_batch_weak = 1024;
  c.pooling = 50;
  c.dim = 64;
  c.table_rows.assign(8, 1000000);  // S = 8, M = 1e6
  c.index_skew = 0.0;               // random dataset
  c.bottom_mlp = {512, 512, 64};    // input 512, 2 layers of size 512 → E
  c.top_mlp = {1024, 1024, 1024, 1};  // 4 layers of size 1024
  c.validate();
  return c;
}

DlrmConfig large_config() {
  DlrmConfig c;
  c.name = "Large";
  c.minibatch = 2048;  // not runnable on one socket (capacity), kept for ratio
  c.global_batch_strong = 16384;
  c.local_batch_weak = 512;
  c.pooling = 100;
  c.dim = 256;
  c.table_rows.assign(64, 6000000);  // S = 64, M = 6e6
  c.index_skew = 0.0;
  // 8 bottom layers of size 2048 ending at E = 256.
  c.bottom_mlp = {2048, 2048, 2048, 2048, 2048, 2048, 2048, 2048, 256};
  // 16 top layers of size 4096 ending at 1.
  c.top_mlp.assign(15, 4096);
  c.top_mlp.push_back(1);
  c.validate();
  return c;
}

DlrmConfig mlperf_config() {
  DlrmConfig c;
  c.name = "MLPerf";
  c.minibatch = 2048;
  c.global_batch_strong = 16384;
  c.local_batch_weak = 2048;
  c.pooling = 1;
  c.dim = 128;
  // Criteo Terabyte per-table cardinalities (MLPerf v0.7, capped at 40M).
  c.table_rows = {39884406, 39043,    17289,    7420,     20263,    3,
                  7120,     1543,     63,       38532951, 2953546,  403346,
                  10,       2208,     11938,    155,      4,        976,
                  14,       39979771, 25641295, 39664984, 585935,   12972,
                  108,      36};
  c.index_skew = 1.05;  // Criteo-like head concentration (hot rows)
  c.bottom_mlp = {13, 512, 256, 128};
  // See header note: 1024-1024-512-256-1 reproduces Table II's 9.0 MB.
  c.top_mlp = {1024, 1024, 512, 256, 1};
  c.validate();
  return c;
}

}  // namespace dlrm
